// Benchmarks: one per paper table/figure (reporting that experiment's
// headline value as a custom metric) plus micro-benchmarks of the PIEO
// primitive operations, the scheduler framework, and the hierarchy.
//
// Run with: go test -bench=. -benchmem
package pieo

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"pieo/internal/algos"
	"pieo/internal/dict"
	"pieo/internal/experiments"
	"pieo/internal/flowq"
	"pieo/internal/hier"
	"pieo/internal/hwmodel"
	"pieo/internal/hwsim"
	"pieo/internal/netsim"
	"pieo/internal/pifo"
	"pieo/internal/pipeline"
	"pieo/internal/sched"
	"pieo/internal/stats"
	"pieo/internal/wire"
)

// --- PIEO primitive micro-benchmarks (§6.2 scheduling rate) ---

func benchSizes() []int { return []int{1 << 10, 1 << 12, 1 << 14, 30000} }

// warmList builds a half-full list of capacity n.
func warmList(n int, eligible bool) (*List, *rand.Rand) {
	l := NewList(n)
	rng := rand.New(rand.NewSource(42))
	send := Never
	if eligible {
		send = Always
	}
	for i := 0; i < n/2; i++ {
		if err := l.Enqueue(Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: send}); err != nil {
			panic(err)
		}
	}
	return l, rng
}

func BenchmarkPIEOEnqueueDequeue(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			l, rng := warmList(n, true)
			id := uint32(n)
			before := l.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					id++
					_ = l.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 16)), SendTime: Always})
				} else {
					l.Dequeue(0)
				}
			}
			s := l.Stats()
			b.ReportMetric(float64(s.Cycles-before.Cycles)/float64(b.N), "hwcycles/op")
			b.ReportMetric(float64(s.SublistReads+s.SublistWrites-before.SublistReads-before.SublistWrites)/float64(b.N), "sram-accesses/op")
		})
	}
}

func BenchmarkPIEODequeueFlow(b *testing.B) {
	l, _ := warmList(1<<14, false)
	ids := make([]uint32, 0, 1<<13)
	for i := 0; i < 1<<13; i++ {
		ids = append(ids, uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		e, ok := l.DequeueFlow(id)
		if ok {
			_ = l.Enqueue(e)
		}
	}
}

func BenchmarkPIEODequeueRange(b *testing.B) {
	// Hierarchical logical-PIEO extraction: 100 nodes of 100 ids each.
	l, _ := warmList(10000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint32((i % 100) * 100)
		e, ok := l.DequeueRange(0, lo, lo+99)
		if ok {
			_ = l.Enqueue(e)
		}
	}
}

// --- Uncontended single-thread core datapath ---
//
// The hotpath acceptance benchmarks: one goroutine driving a backend
// through the §3.1 primitives with no lock contention, so the numbers
// isolate the core datapath (position search, sublist shifts, metadata
// refresh) that EXPERIMENTS.md "hotpath" tracks. Sizes deliberately
// bracket the paper's 30K operating point and extend to 2^19, where the
// √n sublist geometry makes sequential scans expensive enough to matter.

func coreBenchSizes() []int { return []int{1 << 10, 30000, 1 << 19} }

// coreBenchBackends enumerates the exact backends worth measuring
// uncontended. The flat reference model is excluded: its O(n) scans at
// 2^19 would take minutes per benchmark.
func coreBenchBackends() []string { return []string{"core", "sharded", "cffs", "sharded+cffs"} }

// warmBackend builds a half-full backend of capacity n with uniformly
// random ranks, all eligible.
func warmBackend(b *testing.B, name string, n int) (Backend, *rand.Rand) {
	be, err := NewBackend(name, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n/2; i++ {
		if err := be.Enqueue(Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 20)), SendTime: Always}); err != nil {
			b.Fatal(err)
		}
	}
	return be, rng
}

func BenchmarkCoreEnqueue(b *testing.B) {
	for _, name := range coreBenchBackends() {
		for _, n := range coreBenchSizes() {
			b.Run(fmt.Sprintf("backend=%s/n=%d", name, n), func(b *testing.B) {
				be, rng := warmBackend(b, name, n)
				id := uint32(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id++
					if err := be.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: Always}); err != nil {
						// Refill transient: drain back to half full with the
						// timer stopped so only enqueues are measured.
						b.StopTimer()
						for be.Len() > n/2 {
							be.Dequeue(0)
						}
						b.StartTimer()
						if err := be.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: Always}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func BenchmarkCoreDequeue(b *testing.B) {
	for _, name := range coreBenchBackends() {
		for _, n := range coreBenchSizes() {
			b.Run(fmt.Sprintf("backend=%s/n=%d", name, n), func(b *testing.B) {
				be, rng := warmBackend(b, name, n)
				id := uint32(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := be.Dequeue(0); !ok {
						// Drained: refill to half full with the timer stopped
						// so only dequeues are measured.
						b.StopTimer()
						for be.Len() < n/2 {
							id++
							_ = be.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: Always})
						}
						b.StartTimer()
						if _, ok := be.Dequeue(0); !ok {
							b.Fatal("refilled backend empty")
						}
					}
				}
			})
		}
	}
}

// BenchmarkCoreMixed alternates enqueue and dequeue at steady-state
// half-occupancy — the EXPERIMENTS.md "hotpath" headline shape.
func BenchmarkCoreMixed(b *testing.B) {
	for _, name := range coreBenchBackends() {
		for _, n := range coreBenchSizes() {
			b.Run(fmt.Sprintf("backend=%s/n=%d", name, n), func(b *testing.B) {
				be, rng := warmBackend(b, name, n)
				id := uint32(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%2 == 0 {
						id++
						_ = be.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: Always})
					} else {
						be.Dequeue(0)
					}
				}
			})
		}
	}
}

// BenchmarkCoreMixedBatch is BenchmarkCoreMixed through the batch APIs:
// 64-entry EnqueueBatch alternating with DequeueUpTo(64), measuring the
// per-element amortization the backend.Batcher capability buys.
func BenchmarkCoreMixedBatch(b *testing.B) {
	const batch = 64
	for _, name := range coreBenchBackends() {
		for _, n := range coreBenchSizes() {
			b.Run(fmt.Sprintf("backend=%s/n=%d", name, n), func(b *testing.B) {
				be, rng := warmBackend(b, name, n)
				id := uint32(n)
				in := make([]Entry, batch)
				out := make([]Entry, 0, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += 2 * batch {
					for j := range in {
						id++
						in[j] = Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: Always}
					}
					if _, err := EnqueueBatch(be, in); err != nil {
						b.Fatal(err)
					}
					out = DequeueUpTo(be, 0, batch, out[:0])
					if len(out) != batch {
						b.Fatal("batch dequeue came up short")
					}
				}
			})
		}
	}
}

// BenchmarkSparseEligibility pins the regression the timing-wheel
// eligibility index fixes: a 2^19-element backlog of paced flows where
// under 1% are eligible at any instant, driven through the Carousel
// wake->dispatch round — a dequeue probe that misses (sparse
// eligibility makes this the common case), the next-release query, and
// the dispatch+re-arm at the promised instant. index=scan disables the
// wheel first (the recorded pre-wheel path: summary-block scans for the
// miss, a snapshot scan for the wake); index=wheel is the O(1) index.
// EXPERIMENTS.md records reference numbers for both.
func BenchmarkSparseEligibility(b *testing.B) {
	const n = 1 << 19
	for _, name := range coreBenchBackends() {
		for _, idx := range []string{"scan", "wheel"} {
			b.Run(fmt.Sprintf("backend=%s/n=%d/index=%s", name, n, idx), func(b *testing.B) {
				be, err := NewBackend(name, n)
				if err != nil {
					b.Fatal(err)
				}
				ix, ok := be.(EligIndexed)
				if !ok {
					b.Fatalf("backend %q lacks the EligIndexed capability", name)
				}
				if idx == "scan" {
					ix.DisableEligIndex()
				}
				// Open-loop pacing: each flow re-arms one horizon ahead, so
				// releases stay spread and the eligible fraction at any
				// instant is bounded by (elements released per round)/n < 1%.
				const horizon = Time(n) * 16
				rng := rand.New(rand.NewSource(42))
				next := make([]Time, n)
				for i := 0; i < n; i++ {
					next[i] = 1 + Time(rng.Int63n(int64(horizon)))
					if err := be.Enqueue(Entry{ID: uint32(i), Rank: uint64(next[i]), SendTime: next[i]}); err != nil {
						b.Fatal(err)
					}
				}
				var now Time
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Drain everything due at now (dispatch + re-arm one
					// horizon ahead); the final miss is the sparse-eligibility
					// probe the wheel answers in O(1).
					dispatched := false
					for {
						ent, ok := be.Dequeue(now)
						if !ok {
							break
						}
						dispatched = true
						f := ent.ID
						next[f] += horizon
						if err := be.Enqueue(Entry{ID: f, Rank: uint64(next[f]), SendTime: next[f]}); err != nil {
							b.Fatal(err)
						}
					}
					if now > 0 && !dispatched {
						b.Fatal("wake hint delivered no eligible element")
					}
					// The next-release query: O(1) wheel read vs summary scan.
					wake := ix.NextWakeAfter(now)
					if wake == Never {
						b.Fatal("backlogged backend reported no next release")
					}
					now = wake
				}
			})
		}
	}
}

// --- Contended concurrent backends ---
//
// benchContended drives a concurrency-safe backend with 8 producer
// goroutines (b.SetParallelism(8) forces the count regardless of
// GOMAXPROCS) racing one consumer goroutine draining continuously —
// the per-connection-producers/one-transmit-scheduler shape SyncList's
// doc comment describes. Reported ns/op is the producer-side enqueue
// cost under contention; ErrFull is backpressure (the consumer is
// behind), answered by yielding and retrying.
func benchContended(b *testing.B, be Backend) {
	var ids atomic.Uint32
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // consumer
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := be.Dequeue(0); !ok {
				runtime.Gosched()
			}
		}
	}()
	b.SetParallelism(8)
	b.ResetTimer() // constructing a large backend is setup, not throughput
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := ids.Add(1)
			for {
				// Monotone ranks model the common fair-queueing shape
				// (virtual finish times grow and rarely collide), so the
				// dequeue side exercises rank ordering, not a pathological
				// all-ranks-tied FIFO storm.
				err := be.Enqueue(Entry{ID: id, Rank: uint64(id), SendTime: Always})
				if err == nil {
					break
				}
				if err == ErrFull {
					runtime.Gosched()
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	close(stop)
	<-done
}

// Capacity 1<<19 puts the backends deep in the regime the sharded engine
// exists for (√n sublist scans and shifts dominating the mutex hold
// time); 32 shards keeps per-shard geometry at √(n/K) ≈ 128. Steady
// state holds the list at capacity, so run with a benchtime well above
// the fill transient (b.N >= ~4x capacity) when comparing backends —
// EXPERIMENTS.md records reference numbers at -benchtime 10s.
func BenchmarkSyncListContended(b *testing.B) {
	benchContended(b, NewSyncList(1<<19))
}

func BenchmarkShardedContended(b *testing.B) {
	benchContended(b, NewShardedList(1<<19, 32))
}

// BenchmarkShardedCombiningContended is the same storm against the
// flat-combining ingress geometry the "combining" experiment records
// (K=8 so shard locks actually contend; rings engage when TryLock
// fails). Compare against BenchmarkShardedCombiningOffContended to
// isolate what the ring layer buys — on a single hardware thread the
// two are within noise because TryLock almost never fails.
func BenchmarkShardedCombiningContended(b *testing.B) {
	benchContended(b, NewShardedList(1<<19, 8))
}

func BenchmarkShardedCombiningOffContended(b *testing.B) {
	e := NewShardedList(1<<19, 8)
	e.SetCombining(false)
	benchContended(b, e)
}

func BenchmarkPIFOBaselineEnqueueDequeue(b *testing.B) {
	// The PIFO flip-flop model at its maximum feasible size (1K).
	l := pifo.New(1 << 10)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 512; i++ {
		_ = l.Enqueue(pifo.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_ = l.Enqueue(pifo.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16))})
		} else {
			l.Dequeue()
		}
	}
}

// --- One benchmark per paper artifact ---

// BenchmarkFig2WF2QOrders regenerates Fig 2 and reports the two-PIFO
// emulation's max order deviation.
func BenchmarkFig2WF2QOrders(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig2()
		dev = mustFloat(b, tab.Rows[3][2])
	}
	b.ReportMetric(dev, "two-pifo-max-dev")
}

// BenchmarkFig8LogicScaling regenerates Fig 8 and reports PIEO's ALM
// share at the 30K operating point.
func BenchmarkFig8LogicScaling(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r := hwmodel.PIEOResources(hwmodel.PIEOGeometry(30000))
		pct = r.ALMPercent(hwmodel.StratixV)
	}
	b.ReportMetric(pct, "pieo-alm-%@30K")
	b.ReportMetric(hwmodel.PIFOResources(1<<10).ALMPercent(hwmodel.StratixV), "pifo-alm-%@1K")
}

// BenchmarkFig9SRAMScaling regenerates Fig 9's 30K point.
func BenchmarkFig9SRAMScaling(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r := hwmodel.PIEOResources(hwmodel.PIEOGeometry(30000))
		pct = r.SRAMPercent(hwmodel.StratixV)
	}
	b.ReportMetric(pct, "pieo-sram-%@30K")
}

// BenchmarkFig10ClockRate regenerates Fig 10's operating points.
func BenchmarkFig10ClockRate(b *testing.B) {
	var mhz float64
	for i := 0; i < b.N; i++ {
		mhz = hwmodel.PIEOClockMHz(hwmodel.PIEOGeometry(30000))
	}
	b.ReportMetric(mhz, "pieo-mhz@30K")
	b.ReportMetric(hwmodel.NsPerOp(mhz, hwmodel.CyclesPerOp), "pieo-ns/op@30K")
	b.ReportMetric(hwmodel.PIFOClockMHz(1<<10), "pifo-mhz@1K")
}

// BenchmarkScalabilityHeadline regenerates the >30x headline.
func BenchmarkScalabilityHeadline(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pifoMax := hwmodel.MaxPIFOFit(hwmodel.StratixV)
		pieoMax := hwmodel.MaxPIEOFit(hwmodel.StratixV)
		ratio = float64(pieoMax) / float64(pifoMax)
	}
	b.ReportMetric(ratio, "scalability-ratio")
}

// BenchmarkFig11RateLimit runs one Fig 11 rate point (16 Gbps) per
// iteration and reports the enforcement error.
func BenchmarkFig11RateLimit(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		got, _ := experiments.RunEnforcementPoint(16)
		errPct = 100 * (got - 16) / 16
	}
	b.ReportMetric(errPct, "rate-error-%")
}

// BenchmarkFig12FairQueue runs one Fig 12 rate point per iteration and
// reports the intra-VM Jain fairness index.
func BenchmarkFig12FairQueue(b *testing.B) {
	var jain float64
	for i := 0; i < b.N; i++ {
		_, flows := experiments.RunEnforcementPoint(16)
		jain = stats.JainIndex(flows)
	}
	b.ReportMetric(jain, "jain-index")
}

// BenchmarkOrderDeviation runs the §2.3 O(N) deviation instance at
// N=1024 and reports max deviation / N.
func BenchmarkOrderDeviation(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.DeviationFraction(1024)
	}
	b.ReportMetric(frac, "max-dev/N")
}

// BenchmarkAblationSublistSize sweeps sublist geometry at N=4096.
func BenchmarkAblationSublistSize(b *testing.B) {
	for _, s := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			l := NewListWithSublistSize(4096, s)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 2048; i++ {
				_ = l.Enqueue(Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: Always})
			}
			id := uint32(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					id++
					_ = l.Enqueue(Entry{ID: id, Rank: uint64(rng.Intn(1 << 16)), SendTime: Always})
				} else {
					l.Dequeue(0)
				}
			}
			b.ReportMetric(float64(hwmodel.PIEOResources(hwmodel.GeometryWithSublistSize(4096, s)).ALMs), "model-alms")
		})
	}
}

// BenchmarkAblationTriggerModel compares the dequeue-path cost of
// output- vs input-triggered pacing (§3.2.1).
func BenchmarkAblationTriggerModel(b *testing.B) {
	progs := map[string]*sched.Program{
		"output": {
			Name: "pace-output",
			PreEnqueue: func(s *sched.Scheduler, now Time, f *sched.Flow) {
				head, _ := f.Queue.Head()
				f.Rank = uint64(head.SendAt)
				f.SendTime = head.SendAt
			},
		},
		"input": {
			Name:  "pace-input",
			Model: sched.InputTriggered,
			PrePacket: func(s *sched.Scheduler, now Time, f *sched.Flow, p *flowq.Packet) {
				p.Rank = uint64(p.SendAt)
			},
		},
	}
	for name, prog := range progs {
		b.Run(name, func(b *testing.B) {
			s := sched.New(prog, 1024, 40)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < b.N+2048; i++ {
				s.OnArrival(0, flowq.Packet{
					Flow:   flowq.FlowID(rng.Intn(1024)),
					Size:   1500,
					SendAt: Time(rng.Intn(1 << 20)),
					Seq:    uint64(i),
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.NextPacket(Time(1) << 40); !ok {
					b.Fatal("scheduler drained early")
				}
			}
		})
	}
}

// BenchmarkPipelineIssueRates regenerates the §6.2 pipelining study and
// reports the port-aware issue rate on independent streams.
func BenchmarkPipelineIssueRates(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r := pipeline.Simulate(pipeline.IndependentStream(4096, 64), pipeline.PortAware)
		rate = r.OpsPerCycle
	}
	b.ReportMetric(rate, "port-aware-ops/cycle")
	b.ReportMetric(pipeline.Simulate(pipeline.IndependentStream(4096, 64), pipeline.NonPipelined).OpsPerCycle, "non-pipelined-ops/cycle")
}

// BenchmarkDevicesSweep regenerates the cross-device comparison and
// reports the PIEO/PIFO advantage on the Stratix 10.
func BenchmarkDevicesSweep(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		adv = float64(hwmodel.MaxPIEOFitOn(hwmodel.Stratix10)) / float64(hwmodel.MaxPIFOFitOn(hwmodel.Stratix10))
	}
	b.ReportMetric(adv, "stratix10-advantage-x")
}

// BenchmarkApproxStructures regenerates the §2.3 approximation study
// and reports the 64-band FIFO's mean order deviation.
func BenchmarkApproxStructures(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		tab := experiments.Approx()
		for _, row := range tab.Rows {
			if row[0] == "multi-priority FIFO" && strings.HasPrefix(row[1], "64 ") {
				dev = mustFloat(b, row[3])
			}
		}
	}
	b.ReportMetric(dev, "64band-mean-dev")
}

// BenchmarkHwsimMachine measures the structural datapath elaboration
// (per-op cost of the component-level model) and reports SRAM accesses.
func BenchmarkHwsimMachine(b *testing.B) {
	m := hwsim.New(1 << 12)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1<<11; i++ {
		if err := m.Enqueue(hwsim.Word{FlowID: uint32(i), Rank: uint64(rng.Intn(1 << 16))}); err != nil {
			b.Fatal(err)
		}
	}
	id := uint32(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			id++
			_ = m.Enqueue(hwsim.Word{FlowID: id, Rank: uint64(rng.Intn(1 << 16))})
		} else {
			m.Dequeue(0)
		}
	}
	s := m.Stats()
	b.ReportMetric(float64(s.Cycles)/float64(b.N+1<<11), "hwcycles/op")
}

// BenchmarkPacingPrecision regenerates the §1 pacing study and reports
// the software baseline's p99 error (hardware is exactly 0).
func BenchmarkPacingPrecision(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		tab := experiments.PacingPrecision()
		p99 = mustFloat(b, tab.Rows[1][2])
	}
	b.ReportMetric(p99, "software-p99-err-ns")
}

// BenchmarkWireDecode measures the zero-alloc frame decoder.
func BenchmarkWireDecode(b *testing.B) {
	frame := wire.BuildFrame(wire.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 443, Protocol: wire.ProtoTCP,
	}, 1400)
	var d wire.Decoder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictionaryOps exercises the §8 dictionary abstraction.
func BenchmarkDictionaryOps(b *testing.B) {
	d := dict.New[uint64](1 << 14)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1<<13; i++ {
		d.Insert(uint64(rng.Intn(1<<30)), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(1 << 30))
		switch i % 4 {
		case 0:
			d.Insert(k, uint64(i))
		case 1:
			d.Search(k)
		case 2:
			d.Ceiling(k)
		case 3:
			d.Delete(k)
		}
	}
}

// --- Scheduler and hierarchy throughput ---

func BenchmarkSchedulerAlgorithms(b *testing.B) {
	progs := map[string]*sched.Program{
		"fifo": algos.FIFO(),
		"drr":  algos.DRR(),
		"wfq":  algos.WFQ(),
		"wf2q": algos.WF2Q(),
		"sp":   algos.StrictPriority(),
	}
	for name, prog := range progs {
		b.Run(name, func(b *testing.B) {
			s := sched.New(prog, 257, 40)
			for f := 0; f < 256; f++ {
				s.Flow(flowq.FlowID(f)).Priority = uint64(f % 8)
			}
			var seq uint64
			for f := 0; f < 256; f++ {
				for k := 0; k < 8; k++ {
					seq++
					s.OnArrival(0, flowq.Packet{Flow: flowq.FlowID(f), Size: 1500, Seq: seq})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, ok := s.NextPacket(Time(i))
				if !ok {
					b.Fatal("drained")
				}
				seq++
				s.OnArrival(Time(i), flowq.Packet{Flow: p.Flow, Size: 1500, Seq: seq})
			}
		})
	}
}

func BenchmarkHierarchyTwoLevel(b *testing.B) {
	// The §6.3 topology: 10 VMs x 10 flows, TB over WF2Q+.
	h := hier.New(40, hier.TokenBucket())
	id := flowq.FlowID(0)
	var vms []*hier.Node
	for v := 0; v < 10; v++ {
		vm := h.Root().AddNode("vm", hier.WF2Q())
		for f := 0; f < 10; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()
	for _, vm := range vms {
		vm.Self().RateGbps = 3.8
		vm.Self().Burst = 12000
		vm.Self().Tokens = 12000
	}
	var seq uint64
	for f := flowq.FlowID(0); f < 100; f++ {
		for k := 0; k < 4; k++ {
			seq++
			h.OnArrival(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
		}
	}
	b.ResetTimer()
	now := Time(0)
	for i := 0; i < b.N; i++ {
		p, ok := h.NextPacket(now)
		if !ok {
			// All VMs paced out: jump to the next wake.
			if at, ok := h.NextWake(now); ok {
				now = at
				continue
			}
			b.Fatal("hierarchy drained")
		}
		seq++
		h.OnArrival(now, flowq.Packet{Flow: p.Flow, Size: 1500, Seq: seq})
		now += 300
	}
}

// BenchmarkNetsimEndToEnd measures full simulation throughput
// (events/sec) for a WF2Q+ scheduler at 100 flows.
func BenchmarkNetsimEndToEnd(b *testing.B) {
	s := sched.New(algos.WF2Q(), 101, 40)
	sim := netsim.New(netsim.Link{RateGbps: 40}, s)
	var seq uint64
	sim.OnTransmit = func(now Time, p flowq.Packet) {
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < 100; f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
		}
	}
	b.ResetTimer()
	// Each iteration simulates one more microsecond of link time.
	for i := 0; i < b.N; i++ {
		sim.Run(Time(i+1) * 1000)
	}
	b.ReportMetric(float64(sim.Sent())/float64(b.N), "pkts/us")
}

func mustFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}
