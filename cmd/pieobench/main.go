// Command pieobench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pieobench -experiment fig8        # one experiment
//	pieobench -experiment all         # everything (default)
//	pieobench -list                   # list experiment ids
//	pieobench -experiment hotpath -cpuprofile cpu.pprof
//	pieobench -experiment combining -json   # also write BENCH_combining.json
//	pieobench -experiment hotpath -backend core,cffs,sharded+cffs
//
// The -backend flag selects, by backend-registry name, which backends
// the datapath-measuring experiments sweep — any registered backend
// works, with no per-backend switch in the harness.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the experiment run, for `go tool pprof` analysis of the software
// datapath (the "hotpath" experiment is the intended subject, but the
// profiles cover whichever experiments run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"

	"pieo/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run, or 'all'")
	format := flag.String("format", "table", "output format: table|csv")
	jsonOut := flag.Bool("json", false, "additionally write BENCH_<experiment>.json per experiment (machine-readable rows plus host metadata)")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	backends := flag.String("backend", "", "comma-separated registry backend names the measuring experiments sweep (default: "+strings.Join(experiments.Backends(), ",")+"); any registered name works")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if flag.NArg() > 0 {
		// A bare `pieobench hotpath` would otherwise run every experiment,
		// silently ignoring what the user asked for.
		fmt.Fprintf(os.Stderr, "pieobench: unexpected argument %q (select experiments with -experiment, backends with -backend)\n", flag.Arg(0))
		os.Exit(1)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *backends != "" {
		if err := experiments.SetBackends(strings.Split(*backends, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		tab, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			exit(1, *cpuprofile)
		}
		switch *format {
		case "table":
			tab.Fprint(os.Stdout)
		case "csv":
			tab.FprintCSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "pieobench: unknown format %q\n", *format)
			exit(1, *cpuprofile)
		}
		if *jsonOut {
			if err := writeBenchJSON(tab); err != nil {
				fmt.Fprintln(os.Stderr, "pieobench: json:", err)
				exit(1, *cpuprofile)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
			exit(1, *cpuprofile)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
			exit(1, *cpuprofile)
		}
	}
}

// benchJSON is the BENCH_<experiment>.json schema: the experiment's rows
// keyed by column name (so ns/op, allocs/op, backend, n survive column
// reordering), plus the host metadata a CI artifact needs to be
// comparable across runs.
type benchJSON struct {
	Experiment string              `json:"experiment"`
	Title      string              `json:"title"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	GitSHA     string              `json:"git_sha"`
	Columns    []string            `json:"columns"`
	Rows       []map[string]string `json:"rows"`
	Notes      []string            `json:"notes"`
}

// writeBenchJSON renders tab as BENCH_<id>.json in the working
// directory — the machine-readable artifact the CI bench-smoke job
// uploads so perf regressions leave a diffable trail.
func writeBenchJSON(tab *experiments.Table) error {
	out := benchJSON{
		Experiment: tab.ID,
		Title:      tab.Title,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Columns:    tab.Columns,
		Notes:      tab.Notes,
		Rows:       make([]map[string]string, 0, len(tab.Rows)),
	}
	for _, row := range tab.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			if i < len(tab.Columns) {
				m[tab.Columns[i]] = cell
			}
		}
		out.Rows = append(out.Rows, m)
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+tab.ID+".json", append(data, '\n'), 0o644)
}

// gitSHA best-efforts the commit hash for artifact provenance; outside a
// git checkout (or without git on PATH) it degrades to "unknown".
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// exit stops an active CPU profile before terminating: os.Exit skips
// deferred calls, which would otherwise leave a truncated profile.
func exit(code int, cpuprofile string) {
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	os.Exit(code)
}
