// Command pieobench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pieobench -experiment fig8        # one experiment
//	pieobench -experiment all         # everything (default)
//	pieobench -list                   # list experiment ids
//	pieobench -experiment hotpath -cpuprofile cpu.pprof
//	pieobench -experiment combining -json   # also write BENCH_combining.json
//	pieobench -experiment hotpath -backend core,cffs,sharded+cffs
//	pieobench -experiment combining -procs 1,2,4,8 -json
//
// The -backend flag selects, by backend-registry name, which backends
// the datapath-measuring experiments sweep — any registered backend
// works, with no per-backend switch in the harness.
//
// The -procs flag re-runs the selected experiments once per listed
// GOMAXPROCS value; with -json the rows of every run are merged —
// each stamped with its experiment id and gomaxprocs — into a single
// BENCH_scaling.json keyed (experiment, backend, K, procs). The
// "scaling" experiment manages its own GOMAXPROCS sweep internally
// and is the usual way to produce BENCH_scaling.json; -procs exists
// to put ANY experiment under the same sweep.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the experiment run, for `go tool pprof` analysis of the software
// datapath (the "hotpath" experiment is the intended subject, but the
// profiles cover whichever experiments run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pieo/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run, or 'all'")
	format := flag.String("format", "table", "output format: table|csv")
	jsonOut := flag.Bool("json", false, "additionally write BENCH_<experiment>.json per experiment (machine-readable rows plus host metadata)")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	backends := flag.String("backend", "", "comma-separated registry backend names the measuring experiments sweep (default: "+strings.Join(experiments.Backends(), ",")+"); any registered name works")
	procsFlag := flag.String("procs", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8): re-run the selected experiments under each value; with -json, merge all rows into one BENCH_scaling.json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if flag.NArg() > 0 {
		// A bare `pieobench hotpath` would otherwise run every experiment,
		// silently ignoring what the user asked for.
		fmt.Fprintf(os.Stderr, "pieobench: unexpected argument %q (select experiments with -experiment, backends with -backend)\n", flag.Arg(0))
		os.Exit(1)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *backends != "" {
		if err := experiments.SetBackends(strings.Split(*backends, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	if *procsFlag != "" {
		if err := runSweep(*procsFlag, ids, *format, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			exit(1, *cpuprofile)
		}
		writeMemProfile(*memprofile, *cpuprofile)
		return
	}
	for _, id := range ids {
		tab, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			exit(1, *cpuprofile)
		}
		switch *format {
		case "table":
			tab.Fprint(os.Stdout)
		case "csv":
			tab.FprintCSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "pieobench: unknown format %q\n", *format)
			exit(1, *cpuprofile)
		}
		if *jsonOut {
			if err := writeBenchJSON(tab); err != nil {
				fmt.Fprintln(os.Stderr, "pieobench: json:", err)
				exit(1, *cpuprofile)
			}
		}
	}

	writeMemProfile(*memprofile, *cpuprofile)
}

// writeMemProfile writes the heap profile (if requested) after the
// experiments have run; exits through exit() so an active CPU profile
// is flushed on failure.
func writeMemProfile(memprofile, cpuprofile string) {
	if memprofile == "" {
		return
	}
	f, err := os.Create(memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
		exit(1, cpuprofile)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
		exit(1, cpuprofile)
	}
}

// runSweep is the -procs path: every selected experiment re-runs under
// each GOMAXPROCS value, the per-run tables print normally, and (with
// -json) every row lands — stamped with its experiment id and effective
// gomaxprocs — in one merged BENCH_scaling.json, the
// (experiment, backend, K, procs)-keyed artifact CI uploads.
func runSweep(spec string, ids []string, format string, jsonOut bool) error {
	var procs []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return fmt.Errorf("-procs: %q is not a positive integer", f)
		}
		procs = append(procs, v)
	}
	merged := benchJSON{
		Experiment: "scaling",
		Title:      "GOMAXPROCS sweep: " + strings.Join(ids, ", "),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Columns:    []string{"experiment", "gomaxprocs"},
	}
	seen := map[string]bool{"experiment": true, "gomaxprocs": true}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		for _, id := range ids {
			tab, err := experiments.Run(id)
			if err != nil {
				return err
			}
			fmt.Printf("-- GOMAXPROCS=%d --\n", p)
			switch format {
			case "table":
				tab.Fprint(os.Stdout)
			case "csv":
				tab.FprintCSV(os.Stdout)
			default:
				return fmt.Errorf("unknown format %q", format)
			}
			for _, c := range tab.Columns {
				if !seen[c] {
					seen[c] = true
					merged.Columns = append(merged.Columns, c)
				}
			}
			for _, m := range rowMaps(tab) {
				m["experiment"] = tab.ID
				stampGomaxprocs(m, p)
				merged.Rows = append(merged.Rows, m)
			}
			for _, n := range tab.Notes {
				merged.Notes = append(merged.Notes, fmt.Sprintf("[%s@procs=%d] %s", tab.ID, p, n))
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	if !jsonOut {
		return nil
	}
	data, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_scaling.json", append(data, '\n'), 0o644)
}

// benchJSON is the BENCH_<experiment>.json schema: the experiment's rows
// keyed by column name (so ns/op, allocs/op, backend, n survive column
// reordering), plus the host metadata a CI artifact needs to be
// comparable across runs. The top-level gomaxprocs records the process
// setting at startup; every row ALSO carries its own "gomaxprocs" key,
// because a -procs sweep (and the scaling experiment itself) measures
// different rows under different settings — per-row is authoritative.
type benchJSON struct {
	Experiment string              `json:"experiment"`
	Title      string              `json:"title"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	GitSHA     string              `json:"git_sha"`
	Columns    []string            `json:"columns"`
	Rows       []map[string]string `json:"rows"`
	Notes      []string            `json:"notes"`
}

// rowMaps converts tab's positional rows into column-keyed maps.
func rowMaps(tab *experiments.Table) []map[string]string {
	out := make([]map[string]string, 0, len(tab.Rows))
	for _, row := range tab.Rows {
		m := make(map[string]string, len(row)+2)
		for i, cell := range row {
			if i < len(tab.Columns) {
				m[tab.Columns[i]] = cell
			}
		}
		out = append(out, m)
	}
	return out
}

// stampGomaxprocs records the GOMAXPROCS a row was measured under. An
// experiment that sweeps procs itself (scaling) publishes the true
// per-row value in its "procs" column, which wins over the process-wide
// setting the harness knows about.
func stampGomaxprocs(m map[string]string, processProcs int) {
	if v, ok := m["procs"]; ok {
		m["gomaxprocs"] = v
		return
	}
	m["gomaxprocs"] = strconv.Itoa(processProcs)
}

// writeBenchJSON renders tab as BENCH_<id>.json in the working
// directory — the machine-readable artifact the CI bench-smoke job
// uploads so perf regressions leave a diffable trail.
func writeBenchJSON(tab *experiments.Table) error {
	out := benchJSON{
		Experiment: tab.ID,
		Title:      tab.Title,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Columns:    tab.Columns,
		Notes:      tab.Notes,
		Rows:       rowMaps(tab),
	}
	hasCol := false
	for _, c := range out.Columns {
		if c == "gomaxprocs" {
			hasCol = true
			break
		}
	}
	if !hasCol {
		out.Columns = append(append([]string{}, out.Columns...), "gomaxprocs")
	}
	for _, m := range out.Rows {
		stampGomaxprocs(m, runtime.GOMAXPROCS(0))
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+tab.ID+".json", append(data, '\n'), 0o644)
}

// gitSHA best-efforts the commit hash for artifact provenance; outside a
// git checkout (or without git on PATH) it degrades to "unknown".
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// exit stops an active CPU profile before terminating: os.Exit skips
// deferred calls, which would otherwise leave a truncated profile.
func exit(code int, cpuprofile string) {
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	os.Exit(code)
}
