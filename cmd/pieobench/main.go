// Command pieobench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pieobench -experiment fig8        # one experiment
//	pieobench -experiment all         # everything (default)
//	pieobench -list                   # list experiment ids
//	pieobench -experiment hotpath -cpuprofile cpu.pprof
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the experiment run, for `go tool pprof` analysis of the software
// datapath (the "hotpath" experiment is the intended subject, but the
// profiles cover whichever experiments run).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pieo/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run, or 'all'")
	format := flag.String("format", "table", "output format: table|csv")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		tab, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			exit(1, *cpuprofile)
		}
		switch *format {
		case "table":
			tab.Fprint(os.Stdout)
		case "csv":
			tab.FprintCSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "pieobench: unknown format %q\n", *format)
			exit(1, *cpuprofile)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
			exit(1, *cpuprofile)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pieobench: memprofile:", err)
			exit(1, *cpuprofile)
		}
	}
}

// exit stops an active CPU profile before terminating: os.Exit skips
// deferred calls, which would otherwise leave a truncated profile.
func exit(code int, cpuprofile string) {
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	os.Exit(code)
}
