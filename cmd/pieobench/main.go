// Command pieobench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pieobench -experiment fig8        # one experiment
//	pieobench -experiment all         # everything (default)
//	pieobench -list                   # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"pieo/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run, or 'all'")
	format := flag.String("format", "table", "output format: table|csv")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		tab, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pieobench:", err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			tab.Fprint(os.Stdout)
		case "csv":
			tab.FprintCSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "pieobench: unknown format %q\n", *format)
			os.Exit(1)
		}
	}
}
