// Command pieosim runs a packet scheduling algorithm over a synthetic
// workload on a simulated link and reports per-flow throughput, latency,
// and PIEO list statistics.
//
// Examples:
//
//	pieosim -algo wf2q -flows 8 -weights 4,2,1,1,1,1,1,1
//	pieosim -algo tokenbucket -flows 4 -rate 2.5 -duration 10
//	pieosim -algo drr -flows 16 -workload poisson -load 0.8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"pieo/internal/algos"
	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/netsim"
	"pieo/internal/pktgen"
	_ "pieo/internal/refmodel" // register the "ref" backend
	"pieo/internal/sched"
	_ "pieo/internal/shard" // register the "sharded" backend
	"pieo/internal/stats"
)

func main() {
	var (
		algo     = flag.String("algo", "wf2q", "scheduling algorithm: fifo|drr|wfq|wf2q|tokenbucket|rcsp|priority|sjf|edf|lstf")
		flows    = flag.Int("flows", 8, "number of flows")
		link     = flag.Float64("link", 40, "link rate in Gbps")
		duration = flag.Float64("duration", 5, "simulated duration in milliseconds")
		workload = flag.String("workload", "backlogged", "workload: backlogged|cbr|poisson|onoff")
		load     = flag.Float64("load", 0.9, "offered load as a fraction of link rate (open-loop workloads)")
		mtu      = flag.Uint("mtu", 1500, "packet size in bytes")
		weights  = flag.String("weights", "", "comma-separated per-flow weights (fair queueing)")
		rate     = flag.Float64("rate", 1, "per-flow rate limit in Gbps (tokenbucket)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		backName = flag.String("backend", "core", "ordered-list backend: "+strings.Join(backend.Names(), "|"))
	)
	flag.Parse()

	prog, err := program(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pieosim:", err)
		os.Exit(1)
	}
	be, err := backend.New(*backName, *flows+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pieosim:", err)
		os.Exit(1)
	}
	s := sched.NewOn(prog, be, *link)

	// Control plane: configure the flows.
	for i := 0; i < *flows; i++ {
		f := s.Flow(flowq.FlowID(i))
		f.Priority = uint64(i)
		f.RateGbps = *rate
		f.Burst = 4 * float64(*mtu)
		f.Tokens = f.Burst
	}
	if *weights != "" {
		for i, w := range strings.Split(*weights, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(w), 10, 64)
			if err != nil || v == 0 {
				fmt.Fprintf(os.Stderr, "pieosim: bad weight %q\n", w)
				os.Exit(1)
			}
			if i < *flows {
				s.SetWeight(flowq.FlowID(i), v)
			}
		}
	}

	until := clock.Time(*duration * 1e6) // ms -> ns
	sim := netsim.New(netsim.Link{RateGbps: *link}, s)

	perFlow := make([]uint64, *flows)
	var delays []float64
	var seq uint64
	closedLoop := *workload == "backlogged"
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		perFlow[int(p.Flow)] += uint64(p.Size)
		delays = append(delays, float64(now-p.Arrival))
		if closedLoop {
			seq++
			sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Arrival: now, Seq: seq})
		}
	}

	// Workload.
	rng := rand.New(rand.NewSource(*seed))
	size := pktgen.FixedSize(uint32(*mtu))
	switch *workload {
	case "backlogged":
		for i := 0; i < *flows; i++ {
			for k := 0; k < 4; k++ {
				seq++
				sim.InjectOne(0, flowq.Packet{Flow: flowq.FlowID(i), Size: uint32(*mtu), Seq: seq})
			}
		}
	case "cbr", "poisson", "onoff":
		perFlowGbps := *link * *load / float64(*flows)
		gap := pktgen.GapForRate(perFlowGbps, uint32(*mtu))
		gens := make([]pktgen.Generator, *flows)
		count := int(uint64(until) / uint64(gap))
		for i := 0; i < *flows; i++ {
			id := flowq.FlowID(i)
			switch *workload {
			case "cbr":
				gens[i] = &pktgen.CBR{Flow: id, Size: size, Gap: gap, Count: count}
			case "poisson":
				gens[i] = &pktgen.Poisson{Flow: id, Size: size, MeanGap: float64(gap), Count: count, Rng: rng}
			case "onoff":
				gens[i] = &pktgen.OnOff{Flow: id, Size: size, BurstLen: 8, PktGap: gap / 4, IdleGap: 7 * gap, Count: count}
			}
		}
		sim.Inject(pktgen.Merge(gens...))
	default:
		fmt.Fprintf(os.Stderr, "pieosim: unknown workload %q\n", *workload)
		os.Exit(1)
	}

	sim.Run(until)

	// Report.
	fmt.Printf("algorithm: %s (%s)   link: %.0f Gbps   duration: %.2f ms   workload: %s\n",
		prog.Name, prog.Model, *link, *duration, *workload)
	fmt.Printf("packets sent: %d   link utilization: %.1f%%\n", sim.Sent(), 100*sim.Utilization())
	var shares []float64
	fmt.Println("flow  bytes        Gbps")
	for i, b := range perFlow {
		gbps := float64(b) * 8 / float64(until)
		shares = append(shares, gbps)
		fmt.Printf("%-4d  %-11d  %.3f\n", i, b, gbps)
	}
	fmt.Printf("fairness (Jain): %.4f\n", stats.JainIndex(shares))
	if len(delays) > 0 {
		sort.Float64s(delays)
		sum := stats.Summarize(delays)
		fmt.Printf("queueing delay ns: p50=%.0f p99=%.0f max=%.0f\n", sum.P50, sum.P99, sum.Max)
	}
	ls := s.List.Stats()
	fmt.Printf("backend %q: %d enq, %d deq (%d empty), %d flow-deq, %d range-deq\n",
		*backName, ls.Enqueues, ls.Dequeues, ls.EmptyDequeues, ls.FlowDequeues, ls.RangeDequeues)
	if hw, ok := s.List.(backend.HardwareModeled); ok {
		hs := hw.HardwareStats()
		fmt.Printf("hardware model: %d cycles, %d sublist reads, %d writes\n",
			hs.Cycles, hs.SublistReads, hs.SublistWrites)
	}
}

func program(algo string) (*sched.Program, error) {
	switch algo {
	case "fifo":
		return algos.FIFO(), nil
	case "drr":
		return algos.DRR(), nil
	case "wfq":
		return algos.WFQ(), nil
	case "wf2q":
		return algos.WF2Q(), nil
	case "tokenbucket", "tb":
		return algos.TokenBucket(), nil
	case "rcsp":
		return algos.RCSP(), nil
	case "priority", "sp":
		return algos.StrictPriority(), nil
	case "sjf":
		return algos.SJF(), nil
	case "edf":
		return algos.EDF(), nil
	case "lstf":
		return algos.LSTF(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
