// Command pieotrace prints worked examples of the PIEO datapath in the
// style of the paper's Fig 6 (enqueue) and Fig 7 (dequeue): a 16-element
// ordered list split into sublists of 4, showing the Ordered-Sublist-
// Array and both sublist orderings before and after each operation,
// including the Invariant-1 spill/refill traffic.
//
// Run: go run ./cmd/pieotrace
package main

import (
	"fmt"

	"pieo/internal/core"
)

func dump(l *core.List, label string) {
	fmt.Printf("-- %s (len=%d) --\n", label, l.Len())
	for _, v := range l.DumpSublists() {
		fmt.Println("  ", v)
	}
	if err := l.CheckInvariants(); err != nil {
		fmt.Println("  INVARIANT VIOLATION:", err)
	}
	fmt.Println()
}

func opDelta(l *core.List, prev core.Stats) string {
	s := l.Stats()
	return fmt.Sprintf("cycles +%d, sublist reads +%d, writes +%d",
		s.Cycles-prev.Cycles, s.SublistReads-prev.SublistReads, s.SublistWrites-prev.SublistWrites)
}

func main() {
	l := core.New(16) // sublists of 4, like Fig 6/7

	fmt.Println("=== PIEO ordered list walk-through (16 elements, sublists of 4) ===")
	fmt.Println("Each element is [flow_id, rank, send_time]; a dequeue at time t")
	fmt.Println("extracts the smallest-ranked element with send_time <= t.")
	fmt.Println()

	// Populate a state reminiscent of Fig 6/7's example.
	seed := []core.Entry{
		{ID: 7, Rank: 9, SendTime: 88},
		{ID: 2, Rank: 9, SendTime: 97},
		{ID: 0, Rank: 44, SendTime: 34},
		{ID: 15, Rank: 0, SendTime: 55},
		{ID: 1, Rank: 50, SendTime: 5},
		{ID: 9, Rank: 62, SendTime: 50},
		{ID: 11, Rank: 81, SendTime: 5},
		{ID: 4, Rank: 102, SendTime: 9},
		{ID: 8, Rank: 352, SendTime: 5},
		{ID: 6, Rank: 402, SendTime: 6},
		{ID: 3, Rank: 714, SendTime: 0},
		{ID: 10, Rank: 753, SendTime: 0},
		{ID: 12, Rank: 902, SendTime: 12},
		{ID: 14, Rank: 921, SendTime: 6},
		{ID: 13, Rank: 960, SendTime: 9},
	}
	for _, e := range seed {
		if err := l.Enqueue(e); err != nil {
			panic(err)
		}
	}
	dump(l, "initial state (15 elements)")

	// --- Fig 6-style enqueue into a full sublist ---
	prev := l.Stats()
	e := core.Entry{ID: 5, Rank: 12, SendTime: 2}
	fmt.Printf(">>> enqueue(%v)\n", e)
	fmt.Println("cycle 1: parallel compare (smallest_rank > 12) over the pointer array;")
	fmt.Println("         priority encoder selects the target sublist")
	fmt.Println("cycle 2: read the sublist from SRAM (and a neighbor/fresh sublist if full)")
	fmt.Println("cycle 3: parallel compare inside the sublist finds the insert position;")
	fmt.Println("         a full sublist pushes its tail out (Invariant 1)")
	fmt.Println("cycle 4: write back and update the pointer-array metadata")
	if err := l.Enqueue(e); err != nil {
		panic(err)
	}
	fmt.Println("   cost:", opDelta(l, prev))
	fmt.Println()
	dump(l, "after enqueue")

	// --- Fig 7-style dequeue at curr_time = 6 ---
	prev = l.Stats()
	fmt.Println(">>> dequeue() at curr_time = 6")
	fmt.Println("cycle 1: priority encoder finds the first sublist with")
	fmt.Println("         smallest_send_time <= 6 — rank order guarantees it holds")
	fmt.Println("         the globally smallest-ranked eligible element")
	fmt.Println("cycle 2: read it from SRAM (plus a donor neighbor if it was full)")
	fmt.Println("cycle 3: first entry with send_time <= 6 is the winner;")
	fmt.Println("         a refill keeps the sublist full (Invariant 1)")
	fmt.Println("cycle 4: write back and update metadata")
	got, ok := l.Dequeue(6)
	fmt.Printf("   returned: %v (ok=%v)   cost: %s\n\n", got, ok, opDelta(l, prev))
	dump(l, "after dequeue")

	// --- dequeue(f) ---
	prev = l.Stats()
	fmt.Println(">>> dequeue(f=9): extract a specific flow regardless of eligibility")
	got, ok = l.DequeueFlow(9)
	fmt.Printf("   returned: %v (ok=%v)   cost: %s\n\n", got, ok, opDelta(l, prev))
	dump(l, "after dequeue(f)")

	s := l.Stats()
	fmt.Printf("totals: %d enqueues, %d dequeues, %d flow-dequeues, %d cycles, %d SRAM reads, %d writes\n",
		s.Enqueues, s.Dequeues, s.FlowDequeues, s.Cycles, s.SublistReads, s.SublistWrites)
}
