package pieo

import "pieo/internal/dict"

// Dict is the §8 "PIEO as an abstract dictionary data type": an ordered
// (key, value) store built on the PIEO ordered list, supporting search,
// insert, delete and update in the same O(1)-model time as the
// scheduling operations, plus successor (Ceiling) and range queries that
// hashtables cannot answer.
type Dict[V any] struct {
	*dict.Dict[V]
}

// NewDict creates a dictionary holding up to capacity pairs.
func NewDict[V any](capacity int) Dict[V] {
	return Dict[V]{dict.New[V](capacity)}
}
