// Fair queueing: WF²Q+ (§4.1) — the algorithm that motivated PIEO,
// because its "smallest finish time among flows whose start time has
// passed" rule needs predicate-filtered dequeue. Four flows with weights
// 4:2:1:1 share a 40 Gbps link; measured shares match the weights.
//
// Run: go run ./examples/fairqueue
package main

import (
	"fmt"

	"pieo"
)

func main() {
	const (
		linkGbps = 40
		duration = pieo.Time(10_000_000) // 10 ms
		mtu      = 1500
	)
	weights := map[pieo.FlowID]uint64{1: 4, 2: 2, 3: 1, 4: 1}

	s := pieo.NewScheduler(pieo.WF2Q(), 8, linkGbps)
	for id, w := range weights {
		s.SetWeight(id, w)
	}

	sim := pieo.NewSim(pieo.Link{RateGbps: linkGbps}, s)
	bytes := map[pieo.FlowID]uint64{}
	var seq uint64
	sim.OnTransmit = func(now pieo.Time, p pieo.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, pieo.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for id := range weights {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, pieo.Packet{Flow: id, Size: mtu, Seq: seq})
		}
	}
	sim.Run(duration)

	var totalW uint64
	for _, w := range weights {
		totalW += w
	}
	fmt.Printf("WF2Q+ on a %d Gbps link, weights 4:2:1:1, %v ms simulated\n", linkGbps, uint64(duration)/1_000_000)
	fmt.Println("flow  weight  ideal Gbps  measured Gbps")
	for id := pieo.FlowID(1); id <= 4; id++ {
		ideal := float64(linkGbps) * float64(weights[id]) / float64(totalW)
		got := float64(bytes[id]) * 8 / float64(duration)
		fmt.Printf("%-4d  %-6d  %-10.2f  %.3f\n", id, weights[id], ideal, got)
	}
	fmt.Printf("link utilization: %.1f%% (work-conserving)\n", 100*sim.Utilization())
}
