// Hierarchical scheduling: the paper's §6.3 flagship experiment in
// miniature. A two-level tree on a 40 Gbps link: Token Bucket rate
// limits each VM at the top level, WF²Q+ shares each VM's budget fairly
// across its flows at the bottom level. Each level is one physical PIEO,
// logically partitioned per node via index-range predicates (§4.3).
//
// Run: go run ./examples/hierarchical
package main

import (
	"fmt"

	"pieo"
)

func main() {
	const (
		linkGbps = 40
		duration = pieo.Time(20_000_000) // 20 ms
		mtu      = 1500
		nVMs     = 4
		perVM    = 5
	)
	limits := []float64{4, 8, 12, 6}

	h := pieo.NewHierarchy(linkGbps, pieo.TokenBucketPolicy())
	var vms []*pieo.Node
	id := pieo.FlowID(0)
	for v := 0; v < nVMs; v++ {
		vm := h.Root().AddNode(fmt.Sprintf("vm%d", v), pieo.WF2QPolicy())
		for f := 0; f < perVM; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()

	// Control plane: per-VM rate limits.
	for v, vm := range vms {
		self := vm.Self()
		self.RateGbps = limits[v]
		self.Burst = 8 * mtu
		self.Tokens = self.Burst
	}

	sim := pieo.NewSim(pieo.Link{RateGbps: linkGbps}, h)
	flowBytes := make([]uint64, nVMs*perVM)
	var seq uint64
	sim.OnTransmit = func(now pieo.Time, p pieo.Packet) {
		flowBytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, pieo.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := pieo.FlowID(0); f < nVMs*perVM; f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, pieo.Packet{Flow: f, Size: mtu, Seq: seq})
		}
	}
	sim.Run(duration)

	fmt.Printf("two-level hierarchy: %d VMs x %d flows on %d Gbps, %v ms simulated\n",
		nVMs, perVM, linkGbps, uint64(duration)/1_000_000)
	fmt.Println("vm   limit  measured  per-flow Gbps (WF2Q+ shares inside the VM)")
	for v := 0; v < nVMs; v++ {
		var vmBytes uint64
		row := ""
		for f := 0; f < perVM; f++ {
			b := flowBytes[v*perVM+f]
			vmBytes += b
			row += fmt.Sprintf(" %.2f", float64(b)*8/float64(duration))
		}
		fmt.Printf("vm%-2d %-6.1f %-9.3f%s\n", v, limits[v], float64(vmBytes)*8/float64(duration), row)
	}
	fmt.Printf("link utilization: %.1f%%\n", 100*sim.Utilization())
}
