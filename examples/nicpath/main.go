// NIC datapath: the full Fig 1 pipeline on real frames. Raw
// Ethernet/IPv4 packets from three tenants are decoded, classified into
// flows by 5-tuple, queued per flow, and scheduled by WF²Q+ with
// per-tenant weights — the end-to-end shape of a programmable NIC
// scheduler.
//
// Run: go run ./examples/nicpath
package main

import (
	"fmt"
	"math/rand"

	"pieo"
)

func main() {
	const (
		linkGbps = 40
		duration = pieo.Time(5_000_000) // 5 ms
	)

	// Three tenants, identified by source subnet; weight by SLA tier.
	tenantOf := func(t pieo.FiveTuple) int { return int(t.SrcIP[2]) }
	weights := []uint64{4, 2, 1}

	s := pieo.NewScheduler(pieo.WF2Q(), 64, linkGbps)
	classifier := pieo.NewClassifier(64)
	var decoder pieo.FrameDecoder

	sim := pieo.NewSim(pieo.Link{RateGbps: linkGbps}, s)
	tenantBytes := make([]uint64, 3)
	flowTenant := map[pieo.FlowID]int{}
	var seq uint64

	// ingest decodes a frame, classifies it, and hands it to the
	// scheduler — the NIC receive-to-TX-queue path.
	ingest := func(at pieo.Time, frame []byte) {
		tuple, err := decoder.Decode(frame)
		if err != nil {
			fmt.Println("drop:", err)
			return
		}
		id, ok := classifier.Classify(tuple)
		if !ok {
			fmt.Println("drop: flow table full")
			return
		}
		if _, seen := flowTenant[id]; !seen {
			tenant := tenantOf(tuple)
			flowTenant[id] = tenant
			s.SetWeight(id, weights[tenant])
		}
		seq++
		sim.InjectOne(at, pieo.Packet{Flow: id, Size: uint32(len(frame)), Seq: seq})
	}

	// Traffic: each tenant runs four UDP flows of MTU frames; tenants
	// stay backlogged via closed-loop regeneration.
	rng := rand.New(rand.NewSource(1))
	frameFor := func(tenant, flow int) []byte {
		return pieo.BuildFrame(pieo.FiveTuple{
			SrcIP:    [4]byte{10, 0, byte(tenant), byte(flow)},
			DstIP:    [4]byte{192, 168, 0, 1},
			SrcPort:  uint16(10000 + flow),
			DstPort:  443,
			Protocol: 17, // UDP
		}, 1400+rng.Intn(58))
	}
	sim.OnTransmit = func(now pieo.Time, p pieo.Packet) {
		tenant := flowTenant[p.Flow]
		tenantBytes[tenant] += uint64(p.Size)
		ingest(now, frameFor(tenant, int(p.Flow)%4)) // keep the tenant backlogged
	}
	for tenant := 0; tenant < 3; tenant++ {
		for flow := 0; flow < 4; flow++ {
			for k := 0; k < 4; k++ {
				ingest(0, frameFor(tenant, flow))
			}
		}
	}

	sim.Run(duration)

	fmt.Printf("decoded+classified %d flows across 3 tenants; %d frames on the wire\n",
		classifier.Flows(), sim.Sent())
	var totalW uint64
	for _, w := range weights {
		totalW += w
	}
	fmt.Println("tenant  weight  ideal Gbps  measured Gbps")
	for tenant, b := range tenantBytes {
		ideal := float64(linkGbps) * float64(weights[tenant]) / float64(totalW)
		fmt.Printf("%-6d  %-6d  %-10.2f  %.2f\n", tenant, weights[tenant], ideal, float64(b)*8/float64(duration))
	}
}
