// Quickstart: the PIEO primitive in isolation.
//
// A PIEO list orders elements by a programmable rank and attaches an
// eligibility predicate (encoded as a send time) to each. Dequeue
// returns the smallest-ranked ELIGIBLE element — the primitive behind
// "schedule the smallest ranked eligible element", which a plain
// priority queue (PIFO) cannot express.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"pieo"
)

func main() {
	l := pieo.NewList(16)

	// Three flows with ranks 10 < 20 < 30. Flow 1 has the best rank but
	// is not eligible until t=1000 (think: a rate limiter deferred it).
	must(l.Enqueue(pieo.Entry{ID: 1, Rank: 10, SendTime: 1000}))
	must(l.Enqueue(pieo.Entry{ID: 2, Rank: 20, SendTime: pieo.Always}))
	must(l.Enqueue(pieo.Entry{ID: 3, Rank: 30, SendTime: 500}))

	fmt.Println("list (rank order):")
	for _, e := range l.Snapshot() {
		fmt.Println("  ", e)
	}

	// At t=0 only flow 2 is eligible: PIEO skips the better-ranked but
	// ineligible flow 1. A PIFO would be stuck behind flow 1.
	e, _ := l.Dequeue(0)
	fmt.Println("dequeue at t=0:   ", e, "(flow 1 not yet eligible)")

	// At t=600 flow 3 has become eligible; flow 1 still has not.
	e, _ = l.Dequeue(600)
	fmt.Println("dequeue at t=600: ", e)

	// Nothing is eligible now — dequeue says so instead of blocking.
	if _, ok := l.Dequeue(600); !ok {
		fmt.Println("dequeue at t=600:  nothing eligible (flow 1 waits until t=1000)")
	}

	// At t=1000 flow 1 finally goes out.
	e, _ = l.Dequeue(1000)
	fmt.Println("dequeue at t=1000:", e)

	// dequeue(f): extract a specific element to update its attributes
	// asynchronously (priority aging, pause/resume, ...).
	must(l.Enqueue(pieo.Entry{ID: 7, Rank: 99, SendTime: pieo.Always}))
	if e, ok := l.DequeueFlow(7); ok {
		e.Rank = 1 // boost
		must(l.Enqueue(e))
		fmt.Println("flow 7 boosted to rank 1 via dequeue(f) + enqueue(f)")
	}

	// The list also reports its hardware-model cost.
	s := l.Stats()
	fmt.Printf("hardware model: %d ops in %d cycles (4 cycles/op), %d sublist reads, %d writes\n",
		s.Enqueues+s.Dequeues+s.FlowDequeues, s.Cycles, s.SublistReads, s.SublistWrites)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
