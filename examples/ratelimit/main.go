// Rate limiting: the Token Bucket program (§4.2) shaping three tenants
// on a 40 Gbps link — the paper's multi-tenant cloud motivation, flat
// version. Each tenant is limited independently; the link runs
// non-work-conserving (idle gaps even with backlog).
//
// Run: go run ./examples/ratelimit
package main

import (
	"fmt"

	"pieo"
)

func main() {
	const (
		linkGbps = 40
		duration = pieo.Time(20_000_000) // 20 ms
		mtu      = 1500
	)
	limits := map[pieo.FlowID]float64{1: 2, 2: 5, 3: 10}

	s := pieo.NewScheduler(pieo.TokenBucket(), 8, linkGbps)
	for id, limit := range limits {
		f := s.Flow(id)
		f.RateGbps = limit
		f.Burst = 4 * mtu
		f.Tokens = f.Burst // start with a full bucket
	}

	sim := pieo.NewSim(pieo.Link{RateGbps: linkGbps}, s)
	bytes := map[pieo.FlowID]uint64{}
	var seq uint64
	sim.OnTransmit = func(now pieo.Time, p pieo.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		// Closed loop: tenants are always backlogged.
		seq++
		sim.InjectOne(now, pieo.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for id := range limits {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, pieo.Packet{Flow: id, Size: mtu, Seq: seq})
		}
	}
	sim.Run(duration)

	fmt.Printf("link: %d Gbps, %d tenants, %v ms simulated\n", linkGbps, len(limits), uint64(duration)/1_000_000)
	fmt.Println("tenant  limit Gbps  measured Gbps  error")
	for id := pieo.FlowID(1); id <= 3; id++ {
		got := float64(bytes[id]) * 8 / float64(duration)
		fmt.Printf("%-6d  %-10.1f  %-13.3f  %+.2f%%\n", id, limits[id], got, 100*(got-limits[id])/limits[id])
	}
	fmt.Printf("link utilization: %.1f%% (non-work-conserving: idle despite backlog)\n", 100*sim.Utilization())
}
