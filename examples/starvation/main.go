// Asynchronous scheduling (§4.4): strict priority with starvation
// avoidance. A low-priority flow would starve behind two chatty
// high-priority flows; a periodic aging alarm uses PIEO's dequeue(f)
// operation to pull the starving flow out of the ordered list, raise its
// priority, and push it back — something PIFO cannot do, because it
// cannot touch elements below the head.
//
// Run: go run ./examples/starvation
package main

import (
	"fmt"

	"pieo"
)

func main() {
	const (
		linkGbps  = 40
		duration  = pieo.Time(2_000_000) // 2 ms
		mtu       = 1500
		threshold = pieo.Time(50_000) // starving after 50 us unserved
	)

	// Each alarm firing raises a starving flow one priority level and
	// restarts its aging window (§4.4), so the rescue takes
	// (20-10) * threshold = 0.5 ms of sustained starvation.
	run := func(aging bool) (bytes map[pieo.FlowID]uint64) {
		s := pieo.NewScheduler(pieo.StrictPriority(), 8, linkGbps)
		s.Flow(1).Priority = 10
		s.Flow(2).Priority = 10
		s.Flow(3).Priority = 20 // the background flow that starves

		sim := pieo.NewSim(pieo.Link{RateGbps: linkGbps}, s)
		bytes = map[pieo.FlowID]uint64{}
		var seq uint64
		ids := []pieo.FlowID{1, 2, 3}
		sim.OnTransmit = func(now pieo.Time, p pieo.Packet) {
			bytes[p.Flow] += uint64(p.Size)
			seq++
			sim.InjectOne(now, pieo.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
			if aging {
				// The async alarm: boost any flow unserved for the
				// threshold. (In hardware this is a timer event; here we
				// piggyback on transmit completions.)
				pieo.AgeStarvedFlows(s, now, threshold, 0, ids)
			}
		}
		for _, id := range ids {
			for k := 0; k < 4; k++ {
				seq++
				sim.InjectOne(0, pieo.Packet{Flow: id, Size: mtu, Seq: seq})
			}
		}
		sim.Run(duration)
		return bytes
	}

	without := run(false)
	with := run(true)

	fmt.Printf("strict priority on %d Gbps, flows 1,2 at priority 10, flow 3 at 20; %v ms\n",
		linkGbps, uint64(duration)/1_000_000)
	fmt.Println("flow  no-aging Gbps  with-aging Gbps")
	for id := pieo.FlowID(1); id <= 3; id++ {
		fmt.Printf("%-4d  %-13.3f  %.3f\n", id,
			float64(without[id])*8/float64(duration),
			float64(with[id])*8/float64(duration))
	}
	if without[3] == 0 {
		fmt.Println("flow 3 starved completely without aging")
	}
	if with[3] > 0 {
		fmt.Println("the aging alarm (dequeue(f) -> boost -> enqueue(f)) rescued flow 3")
	}
}
