package pieo

import "testing"

// TestEveryProgramConstructor sanity-checks the whole §4 catalogue
// through the public facade: each program schedules a two-flow backlog
// without panicking and conserves packets.
func TestEveryProgramConstructor(t *testing.T) {
	progs := map[string]*Program{
		"fifo": FIFO(), "drr": DRR(), "wfq": WFQ(), "wf2q": WF2Q(),
		"tb": TokenBucket(), "rcsp": RCSP(), "sp": StrictPriority(),
		"sjf": SJF(), "srtf": SRTF(), "edf": EDF(), "lstf": LSTF(),
		"pacer": Pacer(),
	}
	for name, prog := range progs {
		s := NewScheduler(prog, 8, 40)
		for id := FlowID(1); id <= 2; id++ {
			f := s.Flow(id)
			f.Priority = uint64(id)
			f.RateGbps = 100 // effectively unshapped for tb
			f.Burst = 1e6
			f.Tokens = f.Burst
		}
		for i := 0; i < 4; i++ {
			s.OnArrival(0, Packet{Flow: FlowID(i%2 + 1), Size: 1500, Seq: uint64(i), Deadline: Time(10000 + i)})
		}
		got := 0
		for i := 0; i < 4; i++ {
			if _, ok := s.NextPacket(Time(1) << 40); ok {
				got++
			}
		}
		if got != 4 {
			t.Errorf("%s: transmitted %d of 4", name, got)
		}
	}
}

// TestEveryPolicyConstructor does the same for the hierarchy policies.
func TestEveryPolicyConstructor(t *testing.T) {
	policies := map[string]func() *Policy{
		"rr": RoundRobinPolicy, "sp": StrictPriorityPolicy,
		"wfq": WFQPolicy, "wf2q": WF2QPolicy, "tb": TokenBucketPolicy,
	}
	for name, mk := range policies {
		h := NewHierarchy(40, mk())
		vm := h.Root().AddNode("vm", RoundRobinPolicy())
		vm.AddFlow(1)
		vm.AddFlow(2)
		h.Build()
		self := vm.Self()
		self.RateGbps = 100
		self.Burst = 1e6
		self.Tokens = self.Burst
		for i := 0; i < 4; i++ {
			h.OnArrival(0, Packet{Flow: FlowID(i%2 + 1), Size: 1500, Seq: uint64(i)})
		}
		got := 0
		for i := 0; i < 4; i++ {
			if _, ok := h.NextPacket(Time(1) << 40); ok {
				got++
			}
		}
		if got != 4 {
			t.Errorf("%s: transmitted %d of 4", name, got)
		}
	}
}

func TestFacadeDictionary(t *testing.T) {
	d := NewDict[string](8)
	d.Insert(5, "five")
	d.Insert(9, "nine")
	if k, v, ok := d.Ceiling(6); !ok || k != 9 || v != "nine" {
		t.Fatalf("Ceiling = %d,%q,%v", k, v, ok)
	}
	if _, ok := d.Search(5); !ok {
		t.Fatal("Search(5) failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestFacadeHardwareModelSweep(t *testing.T) {
	// Exercise the remaining exported hardware-model surface.
	g := PIEOGeometry(2048)
	if g.SublistSize == 0 || g.NumSublists == 0 {
		t.Fatalf("geometry = %+v", g)
	}
	l := NewListWithSublistSize(64, 4)
	if l.SublistSize() != 4 {
		t.Fatalf("SublistSize = %d", l.SublistSize())
	}
	if !PIEOResources(g).FitsOn(StratixV) {
		t.Fatal("PIEO@2K does not fit")
	}
	if PIEOClockMHz(g) <= 0 {
		t.Fatal("clock model broken")
	}
}

func TestFacadeAsyncHelpers(t *testing.T) {
	s := NewScheduler(StrictPriority(), 8, 40)
	s.Flow(1).Priority = 5
	s.OnArrival(0, Packet{Flow: 1, Size: 100})
	PauseFlow(s, 0, 1)
	if _, ok := s.NextPacket(0); ok {
		t.Fatal("paused flow scheduled")
	}
	ResumeFlow(s, 0, 1)
	if _, ok := s.NextPacket(0); !ok {
		t.Fatal("resumed flow not scheduled")
	}
	s.OnArrival(1, Packet{Flow: 1, Size: 100})
	s.Flow(1).LastScheduled = 0
	if n := AgeStarvedFlows(s, 1_000_000, 100, 0, []FlowID{1}); n != 1 {
		t.Fatalf("AgeStarvedFlows boosted %d, want 1", n)
	}
}
