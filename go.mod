module pieo

go 1.22
