// Package algos expresses the paper's §4 catalogue of packet scheduling
// algorithms against the PIEO programming framework: the work-conserving
// class (DRR, WFQ, WF²Q+), the non-work-conserving class (Token Bucket,
// RCSP), priority scheduling (strict priority, SJF, SRTF, EDF, LSTF), and
// the asynchronous patterns (starvation avoidance by priority aging,
// D3-style pause/resume on network feedback).
//
// Every algorithm is just a sched.Program: a rank function, a predicate
// function, and optionally a custom post-dequeue — demonstrating the
// paper's thesis that "schedule the smallest ranked eligible element"
// expresses all of them.
package algos

import (
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/sched"
)

// DRR returns Deficit Round Robin (§4.1): every flow has rank 1 and an
// always-true predicate, so PIEO's FIFO tie-breaking yields round-robin
// order; the custom post-dequeue transmits packets until the flow's
// deficit counter runs out.
func DRR() *sched.Program {
	return &sched.Program{
		Name: "drr",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			f.Rank = 1
			f.SendTime = clock.Always
		},
		PostDequeue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) []flowq.Packet {
			f.Deficit += f.Quantum
			var burst []flowq.Packet
			for {
				head, ok := f.Queue.Head()
				if !ok || uint64(head.Size) > f.Deficit {
					break
				}
				f.Deficit -= uint64(head.Size)
				p, _ := f.Queue.Pop()
				burst = append(burst, p)
			}
			if f.Queue.Empty() {
				f.Deficit = 0
			} else {
				s.EnqueueFlow(now, f)
			}
			f.LastScheduled = now
			return burst
		},
	}
}

// fqScale converts a packet's wire time into a flow's virtual service:
// wire_time * sum_weights / flow_weight, so a flow with twice the weight
// accumulates finish time half as fast.
func fqScale(s *sched.Scheduler, f *sched.Flow, size uint32) uint64 {
	x := uint64(s.WireTime(size))
	sum := s.SumWeights
	if sum == 0 {
		sum = 1
	}
	return x * sum / f.Weight
}

// WFQ returns Weighted Fair Queuing (§4.1): rank is the head packet's
// virtual finish time, the predicate is always true, and system virtual
// time advances by the wire time of every transmitted packet.
func WFQ() *sched.Program {
	return &sched.Program{
		Name: "wfq",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			// Fig 2(a): start = max(finish, V) only when the flow begins
			// a new busy period; continuously backlogged flows chain
			// exactly from their previous finish (otherwise they bleed
			// service credit every packet).
			start := f.VirtualFinish
			if f.NewlyBacklogged {
				if v := uint64(s.V.Now()); v > start {
					start = v
				}
			}
			f.VirtualFinish = start + fqScale(s, f, head.Size)
			f.Rank = f.VirtualFinish
			f.SendTime = clock.Always
		},
		PostDequeue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) []flowq.Packet {
			head, _ := f.Queue.Head()
			s.V.Set(s.V.Now() + clock.Time(s.WireTime(head.Size)))
			return s.DefaultPostDequeue(now, f)
		},
	}
}

// WF2Q returns Worst-case Fair Weighted Fair Queuing (WF²Q+, §4.1, Fig
// 2(a)) — the algorithm PIFO cannot express (§2.3). Rank is the virtual
// finish time; the predicate is (virtual_time >= virtual_start); the
// virtual clock advances by each transmission and jumps to the minimum
// start time among backlogged flows, which the PIEO list answers in O(1)
// via its eligibility metadata (MinSendTime).
func WF2Q() *sched.Program {
	return &sched.Program{
		Name: "wf2q+",
		DequeueTime: func(s *sched.Scheduler, now clock.Time) clock.Time {
			return s.V.Now()
		},
		OnIdle: func(s *sched.Scheduler, now clock.Time) bool {
			// Fig 2(a)'s idle-link rule: when backlogged flows exist but
			// none is eligible (a busy period starting after idle time
			// left every start ahead of V), jump the virtual clock to
			// the minimum start time.
			ms, ok := s.List.MinSendTime()
			if !ok || ms <= s.V.Now() {
				return false
			}
			s.V.Set(ms)
			return true
		},
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			// start = max(finish, V) only at busy-period starts; a
			// continuously backlogged flow's next packet starts exactly
			// at its previous finish (Fig 2(a)'s two cases).
			start := f.VirtualFinish
			if f.NewlyBacklogged {
				if v := uint64(s.V.Now()); v > start {
					start = v
				}
			}
			f.VirtualStart = start
			f.VirtualFinish = start + fqScale(s, f, head.Size)
			f.Rank = f.VirtualFinish
			f.SendTime = clock.Time(f.VirtualStart)
		},
		PostDequeue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) []flowq.Packet {
			p, ok := f.Queue.Pop()
			if !ok {
				panic("wf2q+: scheduled flow with empty queue")
			}
			// Re-enqueue the serviced flow first (its next packet's start
			// uses the pre-update V), so the Fig 2(a) virtual-time floor
			// — V(t+x) = max(V(t)+x, min start among backlogged flows) —
			// sees every backlogged flow, including this one. The PIEO
			// list answers the min in O(1) from its eligibility metadata.
			if !f.Queue.Empty() {
				s.EnqueueFlow(now, f)
			}
			minStart := clock.Never
			if ms, ok := s.List.MinSendTime(); ok {
				minStart = ms
			}
			s.V.OnTransmit(clock.Time(s.WireTime(p.Size)), minStart)
			f.LastScheduled = now
			return []flowq.Packet{p}
		},
	}
}

// TokenBucket returns the classic non-work-conserving shaper (§4.2):
// each flow accumulates f.RateGbps tokens against a depth of f.Burst
// bytes; the send time of the head packet is deferred until the bucket
// covers it, and both rank and predicate are that send time, evaluated
// against the wall clock.
//
// The control plane should set Flow.Tokens = Flow.Burst when configuring
// a flow so its bucket starts full; otherwise the bucket fills from empty
// starting at simulation time zero.
func TokenBucket() *sched.Program {
	return &sched.Program{
		Name: "token-bucket",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			f.Tokens += f.RateGbps / 8 * float64(now-f.LastRefill)
			if f.Tokens > f.Burst {
				f.Tokens = f.Burst
			}
			sendTime := now
			if float64(head.Size) > f.Tokens {
				deficit := float64(head.Size) - f.Tokens
				sendTime = now + clock.Time(deficit*8/f.RateGbps)
			}
			f.Tokens -= float64(head.Size)
			f.LastRefill = now
			f.Rank = uint64(sendTime)
			f.SendTime = sendTime
		},
	}
}

// RCSP returns Rate-Controlled Static-Priority queuing (§4.2): traffic
// shaping assigns each packet an eligibility time on arrival (the
// Packet.SendAt field), and among flows whose head packet is eligible,
// the highest static priority wins.
func RCSP() *sched.Program {
	return &sched.Program{
		Name: "rcsp",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			f.Rank = f.Priority
			f.SendTime = head.SendAt
		},
	}
}

// StrictPriority returns strict priority scheduling (§4.4, §4.5): rank is
// the flow's priority, predicate always true. PIEO emulates a plain
// priority queue this way.
func StrictPriority() *sched.Program {
	return &sched.Program{
		Name: "strict-priority",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			f.Rank = f.Priority
			f.SendTime = clock.Always
		},
	}
}

// AgeStarvedFlows is the §4.4 starvation-avoidance alarm: for every flow
// that has waited longer than threshold since it was last scheduled,
// asynchronously extract it, raise its priority one level (never past
// floor), and re-enqueue it. It returns the number of flows boosted.
// Callers invoke it from a periodic timer or any custom async event.
func AgeStarvedFlows(s *sched.Scheduler, now clock.Time, threshold clock.Time, floor uint64, ids []flowq.FlowID) int {
	boosted := 0
	for _, id := range ids {
		f := s.Flow(id)
		if !s.List.Contains(uint32(id)) {
			continue
		}
		if now-f.LastScheduled < threshold {
			continue
		}
		s.Alarm(now, id, func(f *sched.Flow) {
			if f.Priority > floor {
				f.Priority--
			}
			f.LastScheduled = now // restart the aging window
		})
		boosted++
	}
	return boosted
}

// Pause blocks a flow on asynchronous network feedback (§4.4, D3-style
// quenching): the flow is pulled out of the ordered list and stays out
// until Resume.
func Pause(s *sched.Scheduler, now clock.Time, id flowq.FlowID) {
	s.Alarm(now, id, func(f *sched.Flow) { f.Blocked = true })
}

// Resume unblocks a flow paused by Pause and re-enqueues it if it is
// backlogged.
func Resume(s *sched.Scheduler, now clock.Time, id flowq.FlowID) {
	s.Alarm(now, id, func(f *sched.Flow) { f.Blocked = false })
}

// SJF returns Shortest Job First (§4.5): rank is the flow's total queued
// bytes, refreshed asynchronously as packets arrive, so smaller jobs
// preempt larger ones at flow granularity.
func SJF() *sched.Program {
	return &sched.Program{
		Name: "sjf",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			f.Rank = f.Queue.Bytes()
			f.SendTime = clock.Always
		},
		OnArrival: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			// A new packet grew the job: refresh the flow's rank via the
			// asynchronous dequeue(f)+enqueue(f) path (§4.4).
			if s.List.Contains(uint32(f.ID)) {
				s.Alarm(now, f.ID, func(*sched.Flow) {})
			}
		},
	}
}

// SRTF returns Shortest Remaining Time First (§4.5). Because the rank is
// recomputed at every re-enqueue from the bytes still queued, the rank
// tracks remaining work as the flow drains.
func SRTF() *sched.Program {
	p := SJF()
	p.Name = "srtf"
	return p
}

// EDF returns Earliest Deadline First (§4.5): rank is the head packet's
// absolute deadline.
func EDF() *sched.Program {
	return &sched.Program{
		Name: "edf",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			f.Rank = uint64(head.Deadline)
			f.SendTime = clock.Always
		},
	}
}

// LSTF returns Least Slack Time First (§4.5, the near-universal scheduler
// of UPS): rank is the head packet's slack — time to deadline minus wire
// time — at enqueue.
func LSTF() *sched.Program {
	return &sched.Program{
		Name: "lstf",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			wire := s.WireTime(head.Size)
			slack := uint64(0)
			if head.Deadline > now+wire {
				slack = uint64(head.Deadline - now - wire)
			}
			f.Rank = slack
			f.SendTime = clock.Always
		},
	}
}

// FIFO returns plain arrival-order scheduling (§2.3's baseline
// primitive), expressed in PIEO by giving every flow the same rank: the
// list's FIFO tie-break does the rest. Packets across flows leave in
// flow-enqueue order, packets within a flow in arrival order.
func FIFO() *sched.Program {
	return &sched.Program{Name: "fifo"} // all defaults: rank 1, always eligible
}

// Pacer returns a per-packet pacing program (§1's "protocols that rely
// on very accurate packet pacing"), input-triggered: every packet carries
// its own precomputed release time in SendAt, and the flow adopts it as
// both rank and predicate.
func Pacer() *sched.Program {
	return &sched.Program{
		Name:  "pacer",
		Model: sched.InputTriggered,
		PrePacket: func(s *sched.Scheduler, now clock.Time, f *sched.Flow, p *flowq.Packet) {
			p.Rank = uint64(p.SendAt)
		},
	}
}
