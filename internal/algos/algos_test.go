package algos

import (
	"math"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/netsim"
	"pieo/internal/sched"
	"pieo/internal/stats"
)

const linkGbps = 40

// runBacklogged drives nFlows always-backlogged flows of pktSize bytes
// through prog for the given duration and returns bytes transmitted per
// flow. configure (optional) edits control-plane state before traffic.
func runBacklogged(t *testing.T, prog *sched.Program, nFlows int, pktSize uint32, duration clock.Time, configure func(*sched.Scheduler)) map[flowq.FlowID]uint64 {
	t.Helper()
	s := sched.New(prog, nFlows+1, linkGbps)
	for i := 0; i < nFlows; i++ {
		s.Flow(flowq.FlowID(i))
	}
	if configure != nil {
		configure(s)
	}
	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	bytes := make(map[flowq.FlowID]uint64)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		// Closed-loop backlog: replace every transmitted packet so queues
		// never drain (the paper's §6.3 packet-generator workload).
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for i := 0; i < nFlows; i++ {
		for k := 0; k < 4; k++ { // a small initial backlog per flow
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: flowq.FlowID(i), Size: pktSize, Seq: seq})
		}
	}
	sim.Run(duration)
	return bytes
}

func shareRatio(bytes map[flowq.FlowID]uint64, a, b flowq.FlowID) float64 {
	return float64(bytes[a]) / float64(bytes[b])
}

func TestDRREqualQuanta(t *testing.T) {
	bytes := runBacklogged(t, DRR(), 4, 1500, 2_000_000, nil)
	var shares []float64
	for i := 0; i < 4; i++ {
		shares = append(shares, float64(bytes[flowq.FlowID(i)]))
	}
	if j := stats.JainIndex(shares); j < 0.999 {
		t.Fatalf("DRR equal quanta Jain index = %v, want ~1 (%v)", j, bytes)
	}
}

func TestDRRQuantumRatio(t *testing.T) {
	bytes := runBacklogged(t, DRR(), 2, 1500, 4_000_000, func(s *sched.Scheduler) {
		s.Flow(0).Quantum = 3000
		s.Flow(1).Quantum = 1500
	})
	if r := shareRatio(bytes, 0, 1); math.Abs(r-2) > 0.1 {
		t.Fatalf("DRR 2:1 quanta share ratio = %v, want ~2 (%v)", r, bytes)
	}
}

func TestDRRQuantumSmallerThanPacket(t *testing.T) {
	// Deficit must accumulate across rounds when the quantum is smaller
	// than the packet size (classic DRR edge case).
	bytes := runBacklogged(t, DRR(), 2, 1500, 2_000_000, func(s *sched.Scheduler) {
		s.Flow(0).Quantum = 400 // needs 4 visits per packet
		s.Flow(1).Quantum = 400
	})
	if bytes[0] == 0 || bytes[1] == 0 {
		t.Fatalf("flows starved with sub-packet quantum: %v", bytes)
	}
	if r := shareRatio(bytes, 0, 1); math.Abs(r-1) > 0.1 {
		t.Fatalf("share ratio = %v, want ~1 (%v)", r, bytes)
	}
}

func TestWFQWeightedShares(t *testing.T) {
	bytes := runBacklogged(t, WFQ(), 3, 1500, 4_000_000, func(s *sched.Scheduler) {
		s.SetWeight(0, 4)
		s.SetWeight(1, 2)
		s.SetWeight(2, 1)
	})
	if r := shareRatio(bytes, 0, 1); math.Abs(r-2) > 0.15 {
		t.Fatalf("WFQ w4:w2 ratio = %v, want ~2 (%v)", r, bytes)
	}
	if r := shareRatio(bytes, 1, 2); math.Abs(r-2) > 0.15 {
		t.Fatalf("WFQ w2:w1 ratio = %v, want ~2 (%v)", r, bytes)
	}
}

func TestWF2QEqualShares(t *testing.T) {
	bytes := runBacklogged(t, WF2Q(), 10, 1500, 4_000_000, nil)
	var shares []float64
	for i := 0; i < 10; i++ {
		shares = append(shares, float64(bytes[flowq.FlowID(i)]))
	}
	if j := stats.JainIndex(shares); j < 0.999 {
		t.Fatalf("WF2Q+ equal weights Jain index = %v (%v)", j, bytes)
	}
}

func TestWF2QWeightedShares(t *testing.T) {
	bytes := runBacklogged(t, WF2Q(), 2, 1500, 4_000_000, func(s *sched.Scheduler) {
		s.SetWeight(0, 3)
		s.SetWeight(1, 1)
	})
	if r := shareRatio(bytes, 0, 1); math.Abs(r-3) > 0.2 {
		t.Fatalf("WF2Q+ w3:w1 ratio = %v, want ~3 (%v)", r, bytes)
	}
}

func TestWF2QByteFairnessMixedSizes(t *testing.T) {
	// Fairness must hold in BYTES when flows use different packet sizes:
	// a 1500B-packet flow and a 300B-packet flow with equal weights get
	// equal byte shares (the small-packet flow is served 5x as often).
	s := sched.New(WF2Q(), 4, linkGbps)
	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	bytes := map[flowq.FlowID]uint64{}
	sizes := map[flowq.FlowID]uint32{1: 1500, 2: 300}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for id, size := range sizes {
		for k := 0; k < 8; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: id, Size: size, Seq: seq})
		}
	}
	sim.Run(4_000_000)
	r := float64(bytes[1]) / float64(bytes[2])
	if math.Abs(r-1) > 0.05 {
		t.Fatalf("byte share ratio = %v, want ~1 (%v)", r, bytes)
	}
}

func TestWF2QWorkConserving(t *testing.T) {
	// Work-conserving: a single backlogged flow gets the whole link.
	s := sched.New(WF2Q(), 4, linkGbps)
	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	for i := 0; i < 100; i++ {
		sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
	}
	sim.Run(100_000_000)
	if sim.Sent() != 100 {
		t.Fatalf("Sent = %d, want 100", sim.Sent())
	}
	if u := sim.Utilization(); u < 0.999 {
		t.Fatalf("Utilization = %v, want 1.0 (work conserving)", u)
	}
}

func TestWF2QIdleThenBusy(t *testing.T) {
	// Regression: after a flow drains and the link idles, its virtual
	// finish time is far ahead of V. When it becomes backlogged again,
	// its start ( = stale finish) exceeds V and nothing is eligible —
	// the Fig 2(a) idle-link rule must jump V to the minimum start or
	// the scheduler deadlocks.
	s := sched.New(WF2Q(), 4, linkGbps)
	var seq uint64
	for i := 0; i < 5; i++ {
		seq++
		s.OnArrival(0, flowq.Packet{Flow: 1, Size: 1500, Seq: seq})
	}
	for i := 0; i < 5; i++ {
		if _, ok := s.NextPacket(0); !ok {
			t.Fatalf("initial drain stalled at %d", i)
		}
	}
	// Idle gap; the flow returns.
	seq++
	s.OnArrival(1_000_000, flowq.Packet{Flow: 1, Size: 1500, Seq: seq})
	p, ok := s.NextPacket(1_000_000)
	if !ok || p.Flow != 1 {
		t.Fatalf("post-idle NextPacket = %+v ok=%v; virtual clock did not jump", p, ok)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	// One backlogged flow limited to 10 Gbps on a 40 Gbps link: the
	// measured rate must match the configured limit, and the link must
	// go idle (non-work-conserving).
	const limit = 10.0
	duration := clock.Time(10_000_000) // 10 ms
	s := sched.New(TokenBucket(), 4, linkGbps)
	f := s.Flow(1)
	f.RateGbps = limit
	f.Burst = 1500

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	meter := stats.NewRateMeter(0)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		meter.Record(now, p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: 1, Size: 1500, Seq: seq})
	}
	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: 0})
	sim.Run(duration)
	meter.CloseAt(duration)

	if got := meter.Gbps(); math.Abs(got-limit) > 0.3 {
		t.Fatalf("token bucket rate = %.2f Gbps, want ~%.0f", got, limit)
	}
	if u := sim.Utilization(); u > 0.35 {
		t.Fatalf("Utilization = %v; a 10G-limited flow on a 40G link must leave it mostly idle", u)
	}
}

func TestTokenBucketBurstAllowsBackToBack(t *testing.T) {
	// A deep bucket lets an idle flow send a burst at line rate before
	// settling to the token rate.
	s := sched.New(TokenBucket(), 4, linkGbps)
	f := s.Flow(1)
	f.RateGbps = 1
	f.Burst = 6000 // four MTU packets
	f.Tokens = f.Burst

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }
	for i := 0; i < 4; i++ {
		sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
	}
	sim.Run(100_000_000)
	if len(done) != 4 {
		t.Fatalf("transmitted %d, want 4", len(done))
	}
	// All four fit the initial bucket: back-to-back at wire speed
	// (300 ns each at 40G).
	if done[3] != 1200 {
		t.Fatalf("burst completed at %v, want 1200 (line-rate back-to-back)", done[3])
	}
}

func TestRCSPPriorityAmongEligible(t *testing.T) {
	s := sched.New(RCSP(), 4, linkGbps)
	s.Flow(1).Priority = 2
	s.Flow(2).Priority = 1

	// Flow 1's packet is eligible immediately; flow 2's only at t=1000.
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, SendAt: 0})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100, SendAt: 1000})

	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 1 {
		t.Fatalf("NextPacket(0) = flow %d, want 1 (only eligible)", p.Flow)
	}
	s.OnArrival(500, flowq.Packet{Flow: 1, Size: 100, SendAt: 500})
	// At t=1000 both are eligible: higher priority (flow 2) wins.
	p, ok = s.NextPacket(1000)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket(1000) = flow %d, want 2 (higher priority)", p.Flow)
	}
}

func TestStrictPriorityOrdering(t *testing.T) {
	s := sched.New(StrictPriority(), 8, linkGbps)
	for id, prio := range map[flowq.FlowID]uint64{1: 3, 2: 1, 3: 2} {
		s.Flow(id).Priority = prio
		s.OnArrival(0, flowq.Packet{Flow: id, Size: 100})
	}
	want := []flowq.FlowID{2, 3, 1}
	for i, w := range want {
		p, ok := s.NextPacket(0)
		if !ok || p.Flow != w {
			t.Fatalf("NextPacket #%d = flow %d, want %d", i, p.Flow, w)
		}
	}
}

func TestAgeStarvedFlows(t *testing.T) {
	s := sched.New(StrictPriority(), 8, linkGbps)
	high := s.Flow(1)
	high.Priority = 1
	low := s.Flow(2)
	low.Priority = 5

	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})

	// Flow 1 keeps winning while flow 2 starves.
	p, _ := s.NextPacket(10)
	if p.Flow != 1 {
		t.Fatalf("expected flow 1 first, got %d", p.Flow)
	}
	// Aging alarm: flow 2 has waited 1000 ticks, threshold 500. Flow 1
	// was just served, so sweeping both flows only boosts flow 2; boost
	// repeatedly until it outranks flow 1.
	ids := []flowq.FlowID{1, 2}
	high.LastScheduled = 999
	for i := 0; i < 5; i++ {
		AgeStarvedFlows(s, clock.Time(1000+uint64(i)), 500, 0, ids)
		low.LastScheduled = 0 // keep it "starving" for the test
	}
	if low.Priority != 0 {
		t.Fatalf("starved priority = %d, want boosted to 0", low.Priority)
	}
	p, _ = s.NextPacket(2000)
	if p.Flow != 2 {
		t.Fatalf("after aging, NextPacket = flow %d, want 2", p.Flow)
	}
}

func TestAgeStarvedSkipsRecentlyServed(t *testing.T) {
	s := sched.New(StrictPriority(), 8, linkGbps)
	f := s.Flow(1)
	f.Priority = 5
	f.LastScheduled = 900
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	if n := AgeStarvedFlows(s, 1000, 500, 0, []flowq.FlowID{1}); n != 0 {
		t.Fatalf("boosted %d flows, want 0 (recently served)", n)
	}
	if f.Priority != 5 {
		t.Fatalf("priority changed to %d", f.Priority)
	}
}

func TestPauseResume(t *testing.T) {
	s := sched.New(StrictPriority(), 8, linkGbps)
	s.Flow(1).Priority = 1
	s.Flow(2).Priority = 2
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})

	Pause(s, 0, 1)
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket = flow %d, want 2 (flow 1 paused)", p.Flow)
	}
	if _, ok := s.NextPacket(0); ok {
		t.Fatal("paused flow was scheduled")
	}
	Resume(s, 10, 1)
	p, ok = s.NextPacket(10)
	if !ok || p.Flow != 1 {
		t.Fatalf("NextPacket after resume = flow %d ok=%v, want 1", p.Flow, ok)
	}
}

func TestEDFDeadlineOrder(t *testing.T) {
	s := sched.New(EDF(), 8, linkGbps)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Deadline: 3000})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100, Deadline: 1000})
	s.OnArrival(0, flowq.Packet{Flow: 3, Size: 100, Deadline: 2000})
	want := []flowq.FlowID{2, 3, 1}
	for i, w := range want {
		p, ok := s.NextPacket(0)
		if !ok || p.Flow != w {
			t.Fatalf("NextPacket #%d = flow %d, want %d", i, p.Flow, w)
		}
	}
}

func TestLSTFSlackOrder(t *testing.T) {
	s := sched.New(LSTF(), 8, linkGbps)
	// Same deadline, different sizes: the bigger packet has less slack.
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Deadline: 10_000})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 1500, Deadline: 10_000})
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket = flow %d, want 2 (least slack)", p.Flow)
	}
}

func TestSJFSmallestJobFirst(t *testing.T) {
	s := sched.New(SJF(), 8, linkGbps)
	// Flow 1: 3 packets queued before it enters the list? Arrival order:
	// first packet of each flow triggers enqueue with current bytes.
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 1500})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})
	// Flow 2 has the smaller job.
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket = flow %d, want 2 (shortest job)", p.Flow)
	}
}

func TestSRTFTracksRemaining(t *testing.T) {
	s := sched.New(SRTF(), 8, linkGbps)
	// Flow 1 arrives with a big job; flow 2 with a medium one. As flow 2
	// drains its rank shrinks, so it keeps winning.
	for i := 0; i < 4; i++ {
		s.OnArrival(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
	}
	for i := 0; i < 3; i++ {
		s.OnArrival(0, flowq.Packet{Flow: 2, Size: 1000, Seq: uint64(10 + i)})
	}
	for i := 0; i < 3; i++ {
		p, ok := s.NextPacket(0)
		if !ok || p.Flow != 2 {
			t.Fatalf("drain #%d = flow %d, want 2 until it finishes", i, p.Flow)
		}
	}
	p, _ := s.NextPacket(0)
	if p.Flow != 1 {
		t.Fatalf("after flow 2 done, got flow %d, want 1", p.Flow)
	}
}

func TestFIFOFlowOrder(t *testing.T) {
	s := sched.New(FIFO(), 8, linkGbps)
	s.OnArrival(0, flowq.Packet{Flow: 3, Size: 100})
	s.OnArrival(1, flowq.Packet{Flow: 1, Size: 100})
	p, _ := s.NextPacket(1)
	if p.Flow != 3 {
		t.Fatalf("FIFO served flow %d first, want 3", p.Flow)
	}
}

func TestPacerReleaseTimes(t *testing.T) {
	s := sched.New(Pacer(), 8, linkGbps)
	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }
	// Three packets paced 1 us apart, all arriving at t=0.
	for i := 0; i < 3; i++ {
		sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, SendAt: clock.Time(1000 * (i + 1)), Seq: uint64(i)})
	}
	sim.Run(100_000)
	want := []clock.Time{1300, 2300, 3300} // SendAt + 300 ns wire time
	if len(done) != 3 {
		t.Fatalf("transmitted %d, want 3", len(done))
	}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("packet %d done at %v, want %v", i, done[i], w)
		}
	}
}
