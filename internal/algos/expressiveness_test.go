package algos

import (
	"math/rand"
	"testing"

	"pieo/internal/flowq"
	"pieo/internal/oracle"
	"pieo/internal/sched"
)

// These tests validate §4's expressiveness claim literally: a
// PIEO-programmed scheduler must produce the *exact same transmission
// sequence* as an independent textbook implementation of the same
// algorithm, not merely similar long-run shares.

// drainScheduler feeds the configs into a framework scheduler at t=0 and
// drains it decision by decision.
func drainScheduler(t *testing.T, prog *sched.Program, cfgs []oracle.Config, linkGbps float64, configure func(*sched.Scheduler)) []oracle.Decision {
	t.Helper()
	s := sched.New(prog, len(cfgs)+1, linkGbps)
	for _, c := range cfgs {
		f := s.Flow(c.ID)
		if c.Weight > 0 {
			s.SetWeight(c.ID, c.Weight)
		}
		if c.Quantum > 0 {
			f.Quantum = c.Quantum
		}
	}
	if configure != nil {
		configure(s)
	}
	var seq uint64
	for _, c := range cfgs {
		for _, size := range c.Packets {
			seq++
			s.OnArrival(0, flowq.Packet{Flow: c.ID, Size: size, Seq: seq})
		}
	}
	var out []oracle.Decision
	for {
		p, ok := s.NextPacket(0)
		if !ok {
			return out
		}
		out = append(out, oracle.Decision{Flow: p.Flow, Size: p.Size})
		if len(out) > 100000 {
			t.Fatal("scheduler did not drain")
		}
	}
}

func assertSameSequence(t *testing.T, name string, got, want []oracle.Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d decisions, oracle made %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: decision %d = %+v, oracle %+v\n got: %v\nwant: %v",
				name, i, got[i], want[i], got[:i+1], want[:i+1])
		}
	}
}

func randomConfigs(rng *rand.Rand, nFlows, maxPkts int, varySizes bool) []oracle.Config {
	cfgs := make([]oracle.Config, nFlows)
	for i := range cfgs {
		n := rng.Intn(maxPkts) + 1
		pkts := make([]uint32, n)
		for j := range pkts {
			if varySizes {
				pkts[j] = uint32(64 + rng.Intn(1437))
			} else {
				pkts[j] = 1500
			}
		}
		cfgs[i] = oracle.Config{ID: flowq.FlowID(i + 1), Packets: pkts}
	}
	return cfgs
}

func TestDRRMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		cfgs := randomConfigs(rng, 2+rng.Intn(6), 8, true)
		for i := range cfgs {
			cfgs[i].Quantum = uint64(500 + rng.Intn(3000))
		}
		got := drainScheduler(t, DRR(), cfgs, 40, nil)
		want := oracle.Drain(oracle.NewDRR(cfgs), 100000)
		assertSameSequence(t, "drr", got, want)
	}
}

func TestWFQMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		cfgs := randomConfigs(rng, 2+rng.Intn(6), 8, true)
		for i := range cfgs {
			cfgs[i].Weight = uint64(1 + rng.Intn(5))
		}
		got := drainScheduler(t, WFQ(), cfgs, 40, nil)
		want := oracle.Drain(oracle.NewWFQ(cfgs, 40), 100000)
		assertSameSequence(t, "wfq", got, want)
	}
}

func TestWF2QMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		cfgs := randomConfigs(rng, 2+rng.Intn(6), 8, true)
		for i := range cfgs {
			cfgs[i].Weight = uint64(1 + rng.Intn(5))
		}
		got := drainScheduler(t, WF2Q(), cfgs, 40, nil)
		want := oracle.Drain(oracle.NewWF2Q(cfgs, 40), 100000)
		assertSameSequence(t, "wf2q+", got, want)
	}
}

func TestStrictPriorityMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		cfgs := randomConfigs(rng, 2+rng.Intn(6), 8, false)
		prio := map[flowq.FlowID]uint64{}
		for _, c := range cfgs {
			prio[c.ID] = uint64(rng.Intn(4))
		}
		got := drainScheduler(t, StrictPriority(), cfgs, 40, func(s *sched.Scheduler) {
			for id, p := range prio {
				s.Flow(id).Priority = p
			}
		})
		want := oracle.Drain(oracle.NewStrictPriority(cfgs, prio), 100000)
		assertSameSequence(t, "strict-priority", got, want)
	}
}

func TestTokenBucketMatchesClosedForm(t *testing.T) {
	// A single backlogged flow's packet release times must match the
	// closed-form token-bucket solution exactly.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		sizes := make([]uint32, n)
		for i := range sizes {
			sizes[i] = uint32(200 + rng.Intn(1301))
		}
		rate := []float64{1, 2.5, 10}[rng.Intn(3)]
		burst := float64(3000 + rng.Intn(9000))

		s := sched.New(TokenBucket(), 2, 40)
		f := s.Flow(1)
		f.RateGbps = rate
		f.Burst = burst
		f.Tokens = burst

		var seq uint64
		for _, size := range sizes {
			seq++
			s.OnArrival(0, flowq.Packet{Flow: 1, Size: size, Seq: seq})
		}
		want := oracle.TokenBucketTimes(sizes, rate, burst, burst)

		// Drain by always asking "what is the earliest time the next
		// packet may go"; the scheduler's wake hint is that time.
		for i := range sizes {
			// Not eligible one tick before the oracle's release time
			// (skipped at t=0 where there is no earlier tick).
			if want[i] > 0 {
				if _, ok := s.NextPacket(want[i] - 1); ok {
					t.Fatalf("trial %d: packet %d released before oracle time %v", trial, i, want[i])
				}
				at, ok := s.NextWake(0)
				if !ok || at != want[i] {
					t.Fatalf("trial %d: wake hint = %v,%v, oracle %v", trial, at, ok, want[i])
				}
			}
			p, ok := s.NextPacket(want[i])
			if !ok || p.Size != sizes[i] {
				t.Fatalf("trial %d: packet %d = %+v ok=%v at oracle time %v", trial, i, p, ok, want[i])
			}
		}
	}
}
