package algos

import (
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/sched"
)

// SFQ returns Stochastic Fairness Queuing (McKenney, §2.2): flows are
// hashed into a fixed number of buckets and the *buckets* are served
// round-robin, trading perfect isolation for O(buckets) state — flows
// that collide share one bucket's bandwidth. Expressed in PIEO by
// ranking every flow with its bucket's round counter; when a bucket is
// served, its round advances and every queued member is re-ranked
// through the asynchronous dequeue(f)+enqueue(f) path (§4.4), so each
// bucket gets exactly one transmission per round regardless of how many
// flows hash into it.
func SFQ(buckets int) *sched.Program {
	if buckets <= 0 {
		panic("algos: SFQ needs a positive bucket count")
	}
	rounds := make([]uint64, buckets)
	members := make([]map[flowq.FlowID]bool, buckets)
	for i := range members {
		members[i] = make(map[flowq.FlowID]bool)
	}
	bucketOf := func(id flowq.FlowID) int {
		// Knuth multiplicative hash; any fixed hash works, the point is
		// that flows cannot choose their bucket.
		return int((uint32(id) * 2654435761) % uint32(buckets))
	}
	return &sched.Program{
		Name: "sfq",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			b := bucketOf(f.ID)
			members[b][f.ID] = true
			f.Rank = rounds[b]
			f.SendTime = clock.Always
		},
		PostDequeue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) []flowq.Packet {
			b := bucketOf(f.ID)
			rounds[b]++
			p, ok := f.Queue.Pop()
			if !ok {
				panic("sfq: scheduled flow with empty queue")
			}
			if f.Queue.Empty() {
				delete(members[b], f.ID)
			}
			// Re-rank the bucket's other queued members to the new round
			// BEFORE re-enqueueing the serviced flow, so the FIFO
			// tie-break rotates service within the bucket instead of
			// letting the same member win every round.
			for id := range members[b] {
				if id != f.ID && s.List.Contains(uint32(id)) {
					s.Alarm(now, id, func(*sched.Flow) {})
				}
			}
			s.EnqueueFlow(now, f)
			f.LastScheduled = now
			return []flowq.Packet{p}
		},
	}
}

// TDMA returns an Ethernet-TDMA-style time-slotted scheduler (§1's
// "Ethernet TDMA" motivation): the timeline is divided into fixed slots
// assigned round-robin to flows; a flow's packets are eligible only
// during its own slots, giving collision-free, jitter-free transmission
// at the cost of work conservation. slotNs is the slot length; the flow
// owning slot k is k mod nFlows (by flow ID).
func TDMA(nFlows int, slotNs clock.Time) *sched.Program {
	if nFlows <= 0 || slotNs == 0 {
		panic("algos: TDMA needs flows and a slot length")
	}
	// nextSlotFor returns the earliest instant >= now at which flow id
	// may START a transmission of wire ns and still finish inside one of
	// its own slots — real TDMA never spills across a slot boundary.
	nextSlotFor := func(id flowq.FlowID, now clock.Time, wire clock.Time) clock.Time {
		if wire > slotNs {
			return clock.Never // the packet can never fit a slot
		}
		cycle := clock.Time(nFlows) * slotNs
		cycleStart := now - now%cycle
		mySlot := cycleStart + clock.Time(id)*slotNs
		for {
			if mySlot >= now && mySlot+slotNs >= mySlot+wire {
				return mySlot
			}
			if mySlot < now && now+wire <= mySlot+slotNs {
				return now // inside the slot with room to finish
			}
			if mySlot+slotNs > now && mySlot <= now {
				// Inside the slot but the packet no longer fits.
				mySlot += cycle
				continue
			}
			if mySlot < now {
				mySlot += cycle
				continue
			}
			return mySlot
		}
	}
	return &sched.Program{
		Name: "tdma",
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			head, _ := f.Queue.Head()
			send := nextSlotFor(f.ID, now, s.WireTime(head.Size))
			f.Rank = uint64(send)
			f.SendTime = send
		},
		PostDequeue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) []flowq.Packet {
			p, ok := f.Queue.Pop()
			if !ok {
				panic("tdma: scheduled flow with empty queue")
			}
			// The next packet cannot start before this one leaves the
			// wire, so the re-enqueue's slot computation uses the
			// completion instant, not the start instant — otherwise the
			// tail of a slot admits one packet too many.
			if !f.Queue.Empty() {
				s.EnqueueFlow(now+s.WireTime(p.Size), f)
			}
			f.LastScheduled = now
			return []flowq.Packet{p}
		},
	}
}

// TokenBucketInput is the input-triggered variant of the §4.2 token
// bucket, for the §3.2.1 trigger-model precision study: every packet's
// release time is precomputed when it ARRIVES (keeping the dequeue path
// trivial), using the flow's projected bucket state. When queue depth
// or drain order diverge from the projection, the precomputed times go
// stale — the imprecision the paper attributes to the input-triggered
// model for shaping policies.
func TokenBucketInput() *sched.Program {
	return &sched.Program{
		Name:  "token-bucket-input",
		Model: sched.InputTriggered,
		PrePacket: func(s *sched.Scheduler, now clock.Time, f *sched.Flow, p *flowq.Packet) {
			// Project the bucket forward from the last *planned* release
			// rather than the last actual one.
			planFrom := f.LastRefill
			if planFrom < now {
				planFrom = now
			}
			f.Tokens += f.RateGbps / 8 * float64(planFrom-f.LastRefill)
			if f.Tokens > f.Burst {
				f.Tokens = f.Burst
			}
			send := planFrom
			need := float64(p.Size)
			if need > f.Tokens {
				send = planFrom + clock.Time((need-f.Tokens)*8/f.RateGbps)
			}
			// Account the refill earned while waiting for the release
			// instant, then charge the packet; the bucket state is now
			// "as of send".
			f.Tokens += f.RateGbps / 8 * float64(send-planFrom)
			if f.Tokens > f.Burst {
				f.Tokens = f.Burst
			}
			f.Tokens -= need
			f.LastRefill = send
			p.SendAt = send
			p.Rank = uint64(send)
		},
	}
}
