package algos

import (
	"math"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/netsim"
	"pieo/internal/sched"
	"pieo/internal/stats"
)

func TestSFQFairAcrossBuckets(t *testing.T) {
	// SFQ's guarantee is per-BUCKET fairness: colliding flows split one
	// bucket's share. Aggregate by the program's own hash and require
	// bucket shares to be equal.
	const buckets = 17
	bytes := runBacklogged(t, SFQ(buckets), 8, 1500, 2_000_000, nil)
	bucketBytes := map[int]float64{}
	usedBuckets := map[int]bool{}
	for i := 0; i < 8; i++ {
		b := int((uint32(i) * 2654435761) % uint32(buckets))
		bucketBytes[b] += float64(bytes[flowq.FlowID(i)])
		usedBuckets[b] = true
	}
	var shares []float64
	for b := range usedBuckets {
		shares = append(shares, bucketBytes[b])
	}
	if j := stats.JainIndex(shares); j < 0.999 {
		t.Fatalf("SFQ per-bucket Jain = %v (%v)", j, bucketBytes)
	}
}

func TestSFQCollidingFlowsShareOneBucket(t *testing.T) {
	// Two flows forced into the same bucket (buckets=1) rotate within
	// it: neither starves and they split the bucket evenly.
	bytes := runBacklogged(t, SFQ(1), 2, 1500, 1_000_000, nil)
	if bytes[0] == 0 || bytes[1] == 0 {
		t.Fatalf("a colliding flow starved: %v", bytes)
	}
	if r := shareRatio(bytes, 0, 1); math.Abs(r-1) > 0.05 {
		t.Fatalf("colliding flows split %v, want ~1:1", r)
	}
}

func TestSFQValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SFQ(0) did not panic")
		}
	}()
	SFQ(0)
}

func TestTDMASlotExclusivity(t *testing.T) {
	// Two flows, 1000 ns slots: flow 0 owns [0,1000), [2000,3000), ...;
	// flow 1 owns [1000,2000), [3000,4000), ...
	const slot = clock.Time(1000)
	s := sched.New(TDMA(2, slot), 4, 40)
	sim := netsim.New(netsim.Link{RateGbps: 40}, s)
	var done []struct {
		at   clock.Time
		flow flowq.FlowID
	}
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		done = append(done, struct {
			at   clock.Time
			flow flowq.FlowID
		}{now, p.Flow})
	}
	for i := 0; i < 3; i++ {
		sim.InjectOne(0, flowq.Packet{Flow: 0, Size: 1500, Seq: uint64(i)})
		sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(10 + i)})
	}
	sim.Run(100_000)
	if len(done) != 6 {
		t.Fatalf("transmitted %d, want 6", len(done))
	}
	for _, d := range done {
		// A packet completing at `at` started at at-300; its start slot
		// must belong to its flow.
		start := d.at - 300
		slotIdx := uint64(start / slot)
		if flowq.FlowID(slotIdx%2) != d.flow {
			t.Fatalf("flow %d transmitted in slot %d (start %v): %v", d.flow, slotIdx, start, done)
		}
	}
}

func TestTDMANonWorkConserving(t *testing.T) {
	// A single backlogged flow in a 4-flow TDMA uses at most ~1/4 of the
	// link even though it is alone.
	const slot = clock.Time(1200) // 4 MTU-wire-times per slot at 40G
	s := sched.New(TDMA(4, slot), 8, 40)
	sim := netsim.New(netsim.Link{RateGbps: 40}, s)
	var seq uint64
	var bytes uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: 0, Size: 1500, Seq: seq})
	}
	for k := 0; k < 4; k++ {
		seq++
		sim.InjectOne(0, flowq.Packet{Flow: 0, Size: 1500, Seq: seq})
	}
	duration := clock.Time(1_000_000)
	sim.Run(duration)
	gbps := float64(bytes) * 8 / float64(duration)
	if gbps > 11.5 { // 1/4 of 40G = 10, allow slot-edge slack
		t.Fatalf("TDMA flow got %.1f Gbps, want <= ~10 (one slot in four)", gbps)
	}
	if gbps < 8 {
		t.Fatalf("TDMA flow got %.1f Gbps, want ~10 (should fill its own slots)", gbps)
	}
}

func TestTDMAValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TDMA(0,0) did not panic")
		}
	}()
	TDMA(0, 0)
}

func TestTokenBucketInputEnforcesRate(t *testing.T) {
	const limit = 5.0
	s := sched.New(TokenBucketInput(), 2, 40)
	f := s.Flow(1)
	f.RateGbps = limit
	f.Burst = 1500
	f.Tokens = f.Burst

	sim := netsim.New(netsim.Link{RateGbps: 40}, s)
	meter := stats.NewRateMeter(0)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		meter.Record(now, p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: 1, Size: 1500, Seq: seq})
	}
	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: 0})
	duration := clock.Time(10_000_000)
	sim.Run(duration)
	meter.CloseAt(duration)
	if got := meter.Gbps(); math.Abs(got-limit) > 0.4 {
		t.Fatalf("input-triggered TB rate = %v, want ~%v", got, limit)
	}
}
