// Package approx implements the approximate scheduling datastructures
// §2.3 surveys as scalable-but-inexact alternatives to an ordered list:
// the multi-priority FIFO queue (802.1Q-style priority bands), the
// calendar queue (Brown 1988), and the hashed timing wheel (Varghese &
// Lauck 1987). All three approximate a priority queue with multiple FIFO
// queues, which makes them fast and scalable in hardware but — as the
// paper argues — "they could only express approximate versions of key
// packet scheduling algorithms, invariably resulting in weaker
// performance guarantees", and their bucket/level counts are
// "performance-critical configuration parameters which are not trivial
// to fine-tune". internal/experiments quantifies both claims against the
// exact PIEO list.
package approx

import (
	"fmt"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// MultiPriorityFIFO approximates rank order with k priority bands: an
// element of rank r lands in band r*k/rankSpace, and dequeue pops the
// first non-empty band in FIFO order. Elements within a band lose their
// relative rank order entirely. There is no eligibility support — bands
// are work-conserving FIFOs, exactly like 802.1Q hardware queues.
type MultiPriorityFIFO struct {
	bands     [][]core.Entry
	rankSpace uint64
	size      int
}

// NewMultiPriorityFIFO creates k bands covering ranks [0, rankSpace).
func NewMultiPriorityFIFO(k int, rankSpace uint64) *MultiPriorityFIFO {
	if k <= 0 || rankSpace == 0 {
		panic(fmt.Sprintf("approx: invalid multi-priority fifo k=%d space=%d", k, rankSpace))
	}
	return &MultiPriorityFIFO{bands: make([][]core.Entry, k), rankSpace: rankSpace}
}

// Enqueue places e in its quantized band.
func (m *MultiPriorityFIFO) Enqueue(e core.Entry) {
	b := int(e.Rank * uint64(len(m.bands)) / m.rankSpace)
	if b >= len(m.bands) {
		b = len(m.bands) - 1
	}
	m.bands[b] = append(m.bands[b], e)
	m.size++
}

// Dequeue pops the head of the first non-empty band.
func (m *MultiPriorityFIFO) Dequeue() (core.Entry, bool) {
	for b := range m.bands {
		if len(m.bands[b]) > 0 {
			e := m.bands[b][0]
			m.bands[b] = m.bands[b][1:]
			m.size--
			return e, true
		}
	}
	return core.Entry{}, false
}

// Len returns the number of queued elements.
func (m *MultiPriorityFIFO) Len() int { return m.size }

// DequeueEligible pops the head of the first band whose head element is
// eligible at now. Like 802.1Q pause semantics, an ineligible band head
// blocks its whole band (FIFOs cannot be dequeued out of order) but not
// the bands behind it — a middle ground between PIFO's global head
// blocking and PIEO's exact eligibility filter.
func (m *MultiPriorityFIFO) DequeueEligible(now clock.Time) (core.Entry, bool) {
	for b := range m.bands {
		if len(m.bands[b]) > 0 && m.bands[b][0].SendTime <= now {
			e := m.bands[b][0]
			m.bands[b] = m.bands[b][1:]
			m.size--
			return e, true
		}
	}
	return core.Entry{}, false
}

// Remove extracts the queued element with the given id, searching bands in
// priority order. FIFOs have no random-access extraction in hardware; this
// is the software shim that lets the banded structure stand in for a PIEO
// list behind the backend interface.
func (m *MultiPriorityFIFO) Remove(id uint32) (core.Entry, bool) {
	for b := range m.bands {
		for i, e := range m.bands[b] {
			if e.ID == id {
				m.bands[b] = append(m.bands[b][:i], m.bands[b][i+1:]...)
				m.size--
				return e, true
			}
		}
	}
	return core.Entry{}, false
}

// DequeueRangeEligible extracts the first element (in band-then-FIFO
// order) eligible at now with lo <= ID <= hi. Within a band this ignores
// rank entirely, exactly like the work-conserving dequeue.
func (m *MultiPriorityFIFO) DequeueRangeEligible(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	for b := range m.bands {
		for i, e := range m.bands[b] {
			if e.SendTime <= now && e.ID >= lo && e.ID <= hi {
				m.bands[b] = append(m.bands[b][:i], m.bands[b][i+1:]...)
				m.size--
				return e, true
			}
		}
	}
	return core.Entry{}, false
}

// Snapshot returns the queued elements in band-then-FIFO order — the
// structure's approximation of the global rank order.
func (m *MultiPriorityFIFO) Snapshot() []core.Entry {
	out := make([]core.Entry, 0, m.size)
	for b := range m.bands {
		out = append(out, m.bands[b]...)
	}
	return out
}

// MinSendTime returns the smallest send_time across all queued elements;
// banded FIFOs keep no such metadata, so this is an O(n) scan.
func (m *MultiPriorityFIFO) MinSendTime() (clock.Time, bool) {
	if m.size == 0 {
		return 0, false
	}
	minT := clock.Never
	for b := range m.bands {
		for _, e := range m.bands[b] {
			if e.SendTime < minT {
				minT = e.SendTime
			}
		}
	}
	return minT, true
}

// CalendarQueue approximates rank order with nBuckets "days" of width
// bucketWidth: an element of rank r is appended to bucket (r /
// bucketWidth) mod nBuckets, and dequeue sweeps forward from the current
// day. Elements within a bucket stay FIFO, and ranks a whole "year"
// (nBuckets*bucketWidth) apart collide into the same bucket — the
// classic calendar-queue failure mode the paper's tuning remark is
// about.
type CalendarQueue struct {
	buckets     [][]core.Entry
	bucketWidth uint64
	day         int
	size        int
}

// NewCalendarQueue creates a calendar of nBuckets days of the given
// width.
func NewCalendarQueue(nBuckets int, bucketWidth uint64) *CalendarQueue {
	if nBuckets <= 0 || bucketWidth == 0 {
		panic(fmt.Sprintf("approx: invalid calendar queue n=%d w=%d", nBuckets, bucketWidth))
	}
	return &CalendarQueue{buckets: make([][]core.Entry, nBuckets), bucketWidth: bucketWidth}
}

// Enqueue appends e to its bucket.
func (c *CalendarQueue) Enqueue(e core.Entry) {
	b := int(e.Rank / c.bucketWidth % uint64(len(c.buckets)))
	c.buckets[b] = append(c.buckets[b], e)
	c.size++
}

// Dequeue pops the head of the first non-empty bucket at or after the
// current day, wrapping around the calendar.
func (c *CalendarQueue) Dequeue() (core.Entry, bool) {
	if c.size == 0 {
		return core.Entry{}, false
	}
	for i := 0; i < len(c.buckets); i++ {
		b := (c.day + i) % len(c.buckets)
		if len(c.buckets[b]) > 0 {
			e := c.buckets[b][0]
			c.buckets[b] = c.buckets[b][1:]
			c.day = b
			c.size--
			return e, true
		}
	}
	return core.Entry{}, false
}

// Len returns the number of queued elements.
func (c *CalendarQueue) Len() int { return c.size }

// TimingWheel approximates eligibility-time release: an element with
// send_time t is parked in slot (t / slotNs) mod nSlots and becomes
// releasable once the wheel's clock passes its slot — with slot
// granularity error. Elements already eligible go to a ready FIFO.
// Within a slot, rank order is lost (FIFO), and send times more than one
// rotation ahead collide.
type TimingWheel struct {
	slots   [][]core.Entry
	ready   []core.Entry
	slotNs  clock.Time
	cursor  uint64 // absolute slot index already drained up to
	size    int
	horizon uint64 // absolute slot of the farthest parked element
}

// NewTimingWheel creates a wheel of nSlots slots of slotNs each.
func NewTimingWheel(nSlots int, slotNs clock.Time) *TimingWheel {
	if nSlots <= 0 || slotNs == 0 {
		panic(fmt.Sprintf("approx: invalid timing wheel n=%d slot=%v", nSlots, slotNs))
	}
	return &TimingWheel{slots: make([][]core.Entry, nSlots), slotNs: slotNs}
}

// Enqueue parks e until its send_time's slot.
func (w *TimingWheel) Enqueue(e core.Entry) {
	abs := uint64(e.SendTime) / uint64(w.slotNs)
	if abs <= w.cursor {
		w.ready = append(w.ready, e)
		w.size++
		return
	}
	if abs > w.horizon {
		w.horizon = abs
	}
	w.slots[abs%uint64(len(w.slots))] = append(w.slots[abs%uint64(len(w.slots))], e)
	w.size++
}

// Advance moves the wheel clock to now, draining every slot whose time
// has come into the ready FIFO.
func (w *TimingWheel) Advance(now clock.Time) {
	target := uint64(now) / uint64(w.slotNs)
	for w.cursor < target {
		w.cursor++
		idx := w.cursor % uint64(len(w.slots))
		if len(w.slots[idx]) > 0 {
			w.ready = append(w.ready, w.slots[idx]...)
			w.slots[idx] = nil
		}
	}
}

// Dequeue pops the ready FIFO after advancing to now.
func (w *TimingWheel) Dequeue(now clock.Time) (core.Entry, bool) {
	w.Advance(now)
	if len(w.ready) == 0 {
		return core.Entry{}, false
	}
	e := w.ready[0]
	w.ready = w.ready[1:]
	w.size--
	return e, true
}

// Len returns parked + ready elements.
func (w *TimingWheel) Len() int { return w.size }

// ReleaseError returns the worst-case release-time error of the wheel:
// one slot of granularity.
func (w *TimingWheel) ReleaseError() clock.Time { return w.slotNs }
