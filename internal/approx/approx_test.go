package approx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
	"pieo/internal/core"
)

func TestMultiPriorityFIFOBandOrder(t *testing.T) {
	m := NewMultiPriorityFIFO(4, 100) // bands: [0,25) [25,50) [50,75) [75,100)
	m.Enqueue(core.Entry{ID: 1, Rank: 80})
	m.Enqueue(core.Entry{ID: 2, Rank: 10})
	m.Enqueue(core.Entry{ID: 3, Rank: 30})
	m.Enqueue(core.Entry{ID: 4, Rank: 20}) // same band as 2, behind it

	want := []uint32{2, 4, 3, 1}
	for i, w := range want {
		e, ok := m.Dequeue()
		if !ok || e.ID != w {
			t.Fatalf("dequeue #%d = %v,%v, want id %d", i, e, ok, w)
		}
	}
	if _, ok := m.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestMultiPriorityFIFOLosesOrderWithinBand(t *testing.T) {
	// Rank 24 enqueued after rank 1 still dequeues second within the
	// band — but rank 24 BEFORE rank 1 dequeues first: order inside a
	// band is arrival order, not rank order. This is the approximation.
	m := NewMultiPriorityFIFO(4, 100)
	m.Enqueue(core.Entry{ID: 1, Rank: 24})
	m.Enqueue(core.Entry{ID: 2, Rank: 1})
	e, _ := m.Dequeue()
	if e.ID != 1 {
		t.Fatalf("first = %v; the band FIFO should return the earlier arrival (rank 24)", e)
	}
}

func TestMultiPriorityFIFOClampsTopBand(t *testing.T) {
	m := NewMultiPriorityFIFO(4, 100)
	m.Enqueue(core.Entry{ID: 1, Rank: 99999}) // beyond rankSpace: clamp
	if e, ok := m.Dequeue(); !ok || e.ID != 1 {
		t.Fatalf("clamped enqueue lost: %v %v", e, ok)
	}
}

func TestCalendarQueueSweep(t *testing.T) {
	c := NewCalendarQueue(8, 10) // days of width 10, year = 80
	c.Enqueue(core.Entry{ID: 1, Rank: 35})
	c.Enqueue(core.Entry{ID: 2, Rank: 5})
	c.Enqueue(core.Entry{ID: 3, Rank: 71})
	want := []uint32{2, 1, 3}
	for i, w := range want {
		e, ok := c.Dequeue()
		if !ok || e.ID != w {
			t.Fatalf("dequeue #%d = %v, want %d", i, e, w)
		}
	}
}

func TestCalendarQueueYearCollision(t *testing.T) {
	// Ranks 5 and 85 collide (year = 80): the calendar cannot tell them
	// apart, and FIFO within the bucket wins.
	c := NewCalendarQueue(8, 10)
	c.Enqueue(core.Entry{ID: 1, Rank: 85})
	c.Enqueue(core.Entry{ID: 2, Rank: 5})
	e, _ := c.Dequeue()
	if e.ID != 1 {
		t.Fatalf("first = %v; year collision should surface the earlier arrival", e)
	}
}

func TestCalendarQueueDayAdvances(t *testing.T) {
	c := NewCalendarQueue(4, 10)
	c.Enqueue(core.Entry{ID: 1, Rank: 0})
	c.Dequeue()
	// Day is now 0; an element on day 3 must still be found.
	c.Enqueue(core.Entry{ID: 2, Rank: 35})
	if e, ok := c.Dequeue(); !ok || e.ID != 2 {
		t.Fatalf("sweep missed day 3: %v %v", e, ok)
	}
}

func TestTimingWheelReleasesBySlot(t *testing.T) {
	w := NewTimingWheel(16, 100)
	w.Enqueue(core.Entry{ID: 1, SendTime: 250}) // slot 2
	w.Enqueue(core.Entry{ID: 2, SendTime: 120}) // slot 1
	if _, ok := w.Dequeue(99); ok {
		t.Fatal("released before any slot boundary")
	}
	e, ok := w.Dequeue(200) // cursor reaches slot 2?? no: 200/100=2 -> drains slots 1,2
	if !ok || e.ID != 2 {
		t.Fatalf("Dequeue(200) = %v,%v, want id 2", e, ok)
	}
	e, ok = w.Dequeue(300)
	if !ok || e.ID != 1 {
		t.Fatalf("Dequeue(300) = %v,%v, want id 1", e, ok)
	}
}

func TestTimingWheelGranularityError(t *testing.T) {
	// send_time 299 releases when the wheel passes slot 2 (t=200..299
	// boundary at 200): the wheel may release up to one slot EARLY for
	// times inside a slot — the granularity error the experiment
	// measures.
	w := NewTimingWheel(16, 100)
	w.Enqueue(core.Entry{ID: 1, SendTime: 299})
	if _, ok := w.Dequeue(199); ok {
		t.Fatal("released two slots early")
	}
	e, ok := w.Dequeue(200)
	if !ok || e.ID != 1 {
		t.Fatalf("Dequeue(200) = %v,%v; slot-granular release expected", e, ok)
	}
	if w.ReleaseError() != 100 {
		t.Fatalf("ReleaseError = %v", w.ReleaseError())
	}
}

func TestTimingWheelAlreadyEligible(t *testing.T) {
	w := NewTimingWheel(8, 100)
	w.Dequeue(1000) // advance the cursor
	w.Enqueue(core.Entry{ID: 1, SendTime: 50})
	if e, ok := w.Dequeue(1000); !ok || e.ID != 1 {
		t.Fatalf("already-eligible element not in ready FIFO: %v %v", e, ok)
	}
}

func TestConstructorsValidate(t *testing.T) {
	for name, fn := range map[string]func(){
		"fifo":     func() { NewMultiPriorityFIFO(0, 10) },
		"calendar": func() { NewCalendarQueue(4, 0) },
		"wheel":    func() { NewTimingWheel(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: none of the structures lose or invent elements.
func TestConservationProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		m := NewMultiPriorityFIFO(8, 1<<16)
		c := NewCalendarQueue(16, 256)
		for i, r := range ranks {
			e := core.Entry{ID: uint32(i), Rank: uint64(r)}
			m.Enqueue(e)
			c.Enqueue(e)
		}
		for range ranks {
			if _, ok := m.Dequeue(); !ok {
				return false
			}
			if _, ok := c.Dequeue(); !ok {
				return false
			}
		}
		_, mOK := m.Dequeue()
		_, cOK := c.Dequeue()
		return !mOK && !cOK && m.Len() == 0 && c.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the timing wheel never releases an element more than one
// slot before its send time, and always releases by send_time + slot.
func TestTimingWheelBoundsProperty(t *testing.T) {
	f := func(sends []uint16) bool {
		const slot = 100
		w := NewTimingWheel(1024, slot)
		for i, s := range sends {
			w.Enqueue(core.Entry{ID: uint32(i), SendTime: clock.Time(s)})
		}
		released := 0
		for now := clock.Time(0); now <= 1<<16+slot; now += slot / 4 {
			for {
				e, ok := w.Dequeue(now)
				if !ok {
					break
				}
				released++
				if uint64(e.SendTime) >= uint64(now)+slot {
					return false // released more than a slot early
				}
			}
		}
		return released == len(sends)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderErrorShrinksWithBands(t *testing.T) {
	// More bands -> better rank-order approximation (monotone trend on a
	// fixed workload).
	rng := rand.New(rand.NewSource(7))
	entries := make([]core.Entry, 512)
	for i := range entries {
		entries[i] = core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16))}
	}
	inversions := func(k int) int {
		m := NewMultiPriorityFIFO(k, 1<<16)
		for _, e := range entries {
			m.Enqueue(e)
		}
		inv := 0
		var prev uint64
		first := true
		for {
			e, ok := m.Dequeue()
			if !ok {
				break
			}
			if !first && e.Rank < prev {
				inv++
			}
			prev = e.Rank
			first = false
		}
		return inv
	}
	i4, i64, i1024 := inversions(4), inversions(64), inversions(1024)
	if !(i4 > i64 && i64 > i1024) {
		t.Fatalf("inversions not shrinking with bands: %d, %d, %d", i4, i64, i1024)
	}
}
