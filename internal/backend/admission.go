package backend

import (
	"errors"
	"fmt"

	"pieo/internal/core"
)

// AdmissionPolicy selects what happens when an Enqueue meets a full
// ordered list. The paper's hardware provisions the list for the worst
// case and never overflows; a software deployment shared by untrusted
// tenants cannot, so saturation behavior becomes part of the scheduling
// contract (Eiffel makes the same observation for software schedulers,
// and RIFO shows rank-aware push-out is the principled shedding rule for
// a bounded programmable scheduler).
type AdmissionPolicy int

const (
	// AdmitReject refuses the arrival: the caller gets core.ErrFull and
	// decides what to shed. This is the zero value and matches the
	// historical behavior of every backend.
	AdmitReject AdmissionPolicy = iota
	// AdmitTailDrop absorbs the overflow silently: the arrival is
	// dropped, the resident set is untouched, and the caller sees
	// success-with-drop rather than an error.
	AdmitTailDrop
	// AdmitPushOut applies RIFO's rank-aware rule: if the arrival
	// outranks (has a strictly smaller rank than) the largest-ranked
	// resident element, that element is evicted to make room; otherwise
	// the arrival itself is dropped. Requires the Evictor capability;
	// backends without it degrade to AdmitTailDrop.
	AdmitPushOut
)

// String names the policy.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitReject:
		return "reject"
	case AdmitTailDrop:
		return "tail-drop"
	case AdmitPushOut:
		return "push-out"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// Evictor is implemented by backends that can identify and remove their
// largest-ranked resident element — the victim a rank-aware push-out
// admission policy sheds. Among equal maximal ranks the newest arrival
// is the victim, so eviction undoes the most recent low-priority
// admission first.
type Evictor interface {
	// PeekMax reports the current push-out victim without removing it.
	PeekMax() (core.Entry, bool)
	// EvictMax removes and returns the current push-out victim.
	EvictMax() (core.Entry, bool)
}

// AdmitOutcome reports what an Admit call did with the arrival.
type AdmitOutcome struct {
	// Admitted is true when the arrival entered the list (directly or
	// after a push-out eviction).
	Admitted bool
	// DroppedArrival is true when the policy shed the arrival itself
	// (tail-drop, or push-out where the arrival did not outrank the
	// resident maximum).
	DroppedArrival bool
	// Evicted is the resident element push-out removed; valid only when
	// DidEvict is true.
	Evicted  core.Entry
	DidEvict bool
}

// Admit inserts e into b under the given admission policy. On a full
// list the policy decides between rejecting (core.ErrFull), dropping the
// arrival, and evicting the largest-ranked resident; every other error
// (duplicate, shard down, injected faults) passes through unchanged so
// callers keep their typed-error handling.
func Admit(b Backend, pol AdmissionPolicy, e core.Entry) (AdmitOutcome, error) {
	err := b.Enqueue(e)
	if err == nil {
		return AdmitOutcome{Admitted: true}, nil
	}
	if !errors.Is(err, core.ErrFull) {
		return AdmitOutcome{}, err
	}
	switch pol {
	case AdmitTailDrop:
		return AdmitOutcome{DroppedArrival: true}, nil
	case AdmitPushOut:
		ev, ok := b.(Evictor)
		if !ok {
			// No eviction capability: degrade to tail-drop rather than
			// failing — the policy is a shedding preference, not a
			// correctness requirement.
			return AdmitOutcome{DroppedArrival: true}, nil
		}
		victim, ok := ev.PeekMax()
		if !ok || e.Rank >= victim.Rank {
			// The arrival does not outrank the resident maximum (or the
			// full signal raced an empty list): shed the arrival.
			return AdmitOutcome{DroppedArrival: true}, nil
		}
		victim, ok = ev.EvictMax()
		if !ok {
			return AdmitOutcome{DroppedArrival: true}, nil
		}
		if err := b.Enqueue(e); err != nil {
			// The freed slot vanished (injected fault or a concurrent
			// producer). Put the victim back on a best-effort basis so
			// push-out never loses two elements for one arrival.
			if rerr := b.Enqueue(victim); rerr != nil {
				return AdmitOutcome{}, fmt.Errorf(
					"pieo: push-out re-enqueue failed (%w) and victim %d restore failed (%v)", err, victim.ID, rerr)
			}
			return AdmitOutcome{}, err
		}
		return AdmitOutcome{Admitted: true, Evicted: victim, DidEvict: true}, nil
	default: // AdmitReject
		return AdmitOutcome{}, err
	}
}

// FaultStats is the resilience counter block scheduler layers expose
// (sched.Scheduler, hier.Hierarchy) and netsim surfaces through its
// FaultReporter hook. Every counter is a condition that historically
// panicked; in non-strict mode it is counted here instead and the most
// recent error is retained for diagnosis.
type FaultStats struct {
	// SpinGuardTrips counts dequeue loops abandoned by the no-progress
	// guard instead of panicking.
	SpinGuardTrips uint64
	// EnqueueFailures counts flow (re-)enqueues that failed with an
	// error other than capacity — injected faults, shard-down, or
	// unexpected duplicates.
	EnqueueFailures uint64
	// BatchEnqueueFailures counts batch enqueue calls that reported at
	// least one failed entry.
	BatchEnqueueFailures uint64
	// UnknownFlows counts ordered-list extractions whose ID had no
	// registered flow state (core.ErrUnknownFlow conditions).
	UnknownFlows uint64
	// AdmissionRejects, AdmissionTailDrops, and AdmissionEvictions count
	// full-list admission outcomes per policy decision.
	AdmissionRejects   uint64
	AdmissionTailDrops uint64
	AdmissionEvictions uint64
	// DroppedPackets counts packets shed by admission decisions and
	// fault handling — the scheduler's declared drops, disjoint from
	// per-flow-queue tail drops.
	DroppedPackets uint64
	// AdmissionSheds counts arrivals dropped at the door by the graduated
	// overload controller's shed level, before touching the ordered list.
	AdmissionSheds uint64
	// DeadlineExpiries counts deadline-wrapped blocking operations that
	// returned core.ErrDeadline instead of spinning out their budget.
	DeadlineExpiries uint64
}

// Add accumulates other into s, for aggregating per-level counters.
func (s *FaultStats) Add(other FaultStats) {
	s.SpinGuardTrips += other.SpinGuardTrips
	s.EnqueueFailures += other.EnqueueFailures
	s.BatchEnqueueFailures += other.BatchEnqueueFailures
	s.UnknownFlows += other.UnknownFlows
	s.AdmissionRejects += other.AdmissionRejects
	s.AdmissionTailDrops += other.AdmissionTailDrops
	s.AdmissionEvictions += other.AdmissionEvictions
	s.DroppedPackets += other.DroppedPackets
	s.AdmissionSheds += other.AdmissionSheds
	s.DeadlineExpiries += other.DeadlineExpiries
}
