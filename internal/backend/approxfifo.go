package backend

import (
	"pieo/internal/approx"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// ApproxFIFO adapts the multi-priority FIFO (§2.3's 802.1Q-style banded
// structure) to the Backend interface. It is deliberately APPROXIMATE:
// rank order is quantized to bands (elements within a band dequeue in
// FIFO order regardless of rank) and an ineligible band head blocks its
// band. It exists so the experiment harness can quantify the paper's
// "weaker performance guarantees" claim on live scheduler workloads, not
// to pass exact differential tests — those exclude it by design.
type ApproxFIFO struct {
	m        *approx.MultiPriorityFIFO
	capacity int
	present  map[uint32]bool
	stats    Stats
}

// DefaultApproxBands is the band count the registry constructor uses —
// the 64-band point the §2.3 study reports.
const DefaultApproxBands = 64

// NewApproxFIFO creates a banded-FIFO backend with capacity n, k bands,
// and ranks quantized over [0, rankSpace).
func NewApproxFIFO(n, k int, rankSpace uint64) *ApproxFIFO {
	return &ApproxFIFO{
		m:        approx.NewMultiPriorityFIFO(k, rankSpace),
		capacity: n,
		present:  make(map[uint32]bool, n),
	}
}

// Enqueue implements Backend.
func (a *ApproxFIFO) Enqueue(e core.Entry) error {
	if a.m.Len() == a.capacity {
		return core.ErrFull
	}
	if a.present[e.ID] {
		return core.ErrDuplicate
	}
	a.m.Enqueue(e)
	a.present[e.ID] = true
	a.stats.Enqueues++
	return nil
}

// Dequeue implements Backend with band-quantized priority and per-band
// head blocking.
func (a *ApproxFIFO) Dequeue(now clock.Time) (core.Entry, bool) {
	e, ok := a.m.DequeueEligible(now)
	if !ok {
		a.stats.EmptyDequeues++
		return core.Entry{}, false
	}
	delete(a.present, e.ID)
	a.stats.Dequeues++
	return e, true
}

// DequeueFlow implements Backend via the banded structure's software
// extraction shim.
func (a *ApproxFIFO) DequeueFlow(id uint32) (core.Entry, bool) {
	e, ok := a.m.Remove(id)
	if !ok {
		return core.Entry{}, false
	}
	delete(a.present, e.ID)
	a.stats.FlowDequeues++
	return e, true
}

// DequeueRange implements Backend in band-then-FIFO order.
func (a *ApproxFIFO) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	e, ok := a.m.DequeueRangeEligible(now, lo, hi)
	if !ok {
		a.stats.EmptyDequeues++
		return core.Entry{}, false
	}
	delete(a.present, e.ID)
	a.stats.RangeDequeues++
	return e, true
}

// Len implements Backend.
func (a *ApproxFIFO) Len() int { return a.m.Len() }

// Contains implements Backend.
func (a *ApproxFIFO) Contains(id uint32) bool { return a.present[id] }

// MinSendTime implements Backend (O(n): bands keep no time metadata).
func (a *ApproxFIFO) MinSendTime() (clock.Time, bool) { return a.m.MinSendTime() }

// Snapshot implements Backend in band-then-FIFO (approximate rank) order.
func (a *ApproxFIFO) Snapshot() []core.Entry { return a.m.Snapshot() }

// Stats implements Backend.
func (a *ApproxFIFO) Stats() Stats { return a.stats }

func init() {
	Register("approx", func(n int) Backend {
		return NewApproxFIFO(n, DefaultApproxBands, 1<<16)
	})
}
