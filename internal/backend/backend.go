// Package backend defines the pluggable ordered-list contract every PIEO
// consumer programs against. The paper scales past a single physical list
// by instantiating "multiple physical PIEOs" and partitioning flows across
// them (§4.3); related designs trade exactness for throughput with bucketed
// or approximate list organizations (Eiffel's FFS-based queues, RIFO).
// Pinning every layer of this repo to *core.List would make each such
// organization a cross-cutting rewrite, so the scheduler framework
// (internal/sched), the hierarchy (internal/hier), the concurrency wrappers
// (SyncList, internal/shard), and the tools all speak this interface
// instead and any backend can drive the full §3.2 programming framework.
//
// The contract is the PIEO operation set of §3.1:
//
//   - Enqueue ("Push-In"): insert at the rank position, FIFO among equal
//     ranks, ErrFull at capacity, ErrDuplicate for a queued ID.
//   - Dequeue ("Extract-Out"): remove the smallest-ranked element whose
//     eligibility predicate (send_time <= now) holds.
//   - DequeueFlow (dequeue(f)): remove a specific element regardless of
//     eligibility — the asynchronous alarm path of §4.4.
//   - DequeueRange: Extract-Out restricted to IDs in [lo, hi] — the
//     logical-PIEO extraction hierarchical scheduling builds on (§4.3).
//
// Exact backends (core.List, the sharded engine when quiescent) implement
// the contract bit-for-bit and are differentially tested against
// internal/refmodel; approximate backends (PIFO head-of-line, multi-band
// FIFO) document where they relax it. Optional capabilities — peeking,
// atomic re-ranking, invariant checking, hardware cost counters — are
// expressed as extension interfaces so consumers degrade gracefully.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// Stats is the backend-independent operation summary. Unlike core.Stats it
// carries no hardware-model counters (cycles, SRAM ports) — those stay
// specific to backends that model a datapath and are reachable through the
// HardwareModeled extension.
type Stats struct {
	Enqueues      uint64
	Dequeues      uint64 // successful Dequeue
	EmptyDequeues uint64 // Dequeue that found no eligible element
	FlowDequeues  uint64 // successful DequeueFlow
	RangeDequeues uint64 // successful DequeueRange

	// Combining-ingress amortization counters, zero on backends without
	// a combining layer (see Combining). RingOps counts operations that
	// went through a combining ring because their partition's lock was
	// contended; CombinedOps counts the subset executed inside another
	// thread's critical section — the lock acquisitions the combining
	// layer actually saved.
	RingOps     uint64
	CombinedOps uint64
}

// Add accumulates other into s, for aggregating per-shard counters.
func (s *Stats) Add(other Stats) {
	s.Enqueues += other.Enqueues
	s.Dequeues += other.Dequeues
	s.EmptyDequeues += other.EmptyDequeues
	s.FlowDequeues += other.FlowDequeues
	s.RangeDequeues += other.RangeDequeues
	s.RingOps += other.RingOps
	s.CombinedOps += other.CombinedOps
}

// Backend is the ordered-list contract of §3.1 plus the queries the
// scheduler framework needs (Contains for idempotent re-enqueue,
// MinSendTime for WF²Q+ virtual-time updates and wake hints, Snapshot for
// tests and reporting).
type Backend interface {
	// Enqueue inserts e at its rank position (FIFO among equal ranks).
	// It returns core.ErrFull at capacity and core.ErrDuplicate when
	// e.ID is already queued.
	Enqueue(e core.Entry) error
	// Dequeue extracts the smallest-ranked element eligible at now.
	Dequeue(now clock.Time) (core.Entry, bool)
	// DequeueFlow extracts the element with the given id regardless of
	// eligibility.
	DequeueFlow(id uint32) (core.Entry, bool)
	// DequeueRange extracts the smallest-ranked element eligible at now
	// whose ID lies in [lo, hi].
	DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool)
	// Len returns the number of queued elements.
	Len() int
	// Contains reports whether id is currently queued.
	Contains(id uint32) bool
	// MinSendTime returns the smallest send_time across queued elements;
	// ok is false when the backend is empty.
	MinSendTime() (clock.Time, bool)
	// Snapshot returns every queued entry in increasing (rank, FIFO)
	// order — or the backend's best approximation of it.
	Snapshot() []core.Entry
	// Stats returns the accumulated operation counters.
	Stats() Stats
}

// Peeker is implemented by backends that can report what Dequeue or
// DequeueRange would extract without removing it.
type Peeker interface {
	Peek(now clock.Time) (core.Entry, bool)
	PeekRange(now clock.Time, lo, hi uint32) (core.Entry, bool)
}

// RankUpdater is implemented by backends that can atomically re-rank a
// queued element — the dequeue(f)+enqueue(f) pattern of §3.1 fused into
// one operation so concurrent readers never observe the element missing.
type RankUpdater interface {
	UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool
}

// RankRanger is implemented by backends that additionally support the §8
// dictionary queries — successor lookup by rank and destructive
// extraction within a rank interval. core.List provides both; backends
// without total rank order (multi-band FIFOs) cannot.
type RankRanger interface {
	Backend
	MinRankAtLeast(lo uint64) (core.Entry, bool)
	DequeueRankRange(lo, hi uint64) (core.Entry, bool)
}

// EligIndexed is implemented by backends that keep a timing-wheel
// eligibility index over send_time (internal/timewheel): an exact O(1)
// answer to "when does the next currently-ineligible element become
// eligible", independent of how many elements are queued. The sharded
// engine uses it to keep per-shard minSend summaries exact after every
// mutation (including removals) and to publish exact nextElig bounds;
// netsim's wake hinting uses it to sleep to the precise next release.
type EligIndexed interface {
	// NextWakeAfter returns the exact smallest send_time strictly
	// greater than now among queued elements, or clock.Never when no
	// such element exists. Elements already eligible at now do not
	// contribute: the caller polls Dequeue for those.
	NextWakeAfter(now clock.Time) clock.Time
	// EligIndexActive reports whether the index is live. When false
	// (see DisableEligIndex), NextWakeAfter still answers exactly but
	// by scanning — the configuration the pacing experiments use as
	// the recorded non-wheel baseline.
	EligIndexActive() bool
	// DisableEligIndex drops the index permanently for this instance;
	// the backend falls back to its summary-scan paths. Safe at any
	// point in the lifecycle (the index is advisory, never
	// authoritative).
	DisableEligIndex()
}

// NextWakeAfter consults b's eligibility index, reporting ok=false when
// b does not implement the capability.
func NextWakeAfter(b Backend, now clock.Time) (clock.Time, bool) {
	if ix, ok := b.(EligIndexed); ok {
		return ix.NextWakeAfter(now), true
	}
	return 0, false
}

// InvariantChecker is implemented by backends with internal structure
// worth validating after mutations (the sublist geometry of core.List,
// the shard partitioning of internal/shard).
type InvariantChecker interface {
	CheckInvariants() error
}

// HardwareModeled is implemented by backends that model a hardware
// datapath and count its work in core.Stats terms.
type HardwareModeled interface {
	HardwareStats() core.Stats
}

// CombiningStats is a snapshot of a combining backend's ingress-ring
// activity (see Combining).
type CombiningStats struct {
	// RingOps counts operations routed through a combining ring (the
	// partition lock was contended at arrival).
	RingOps uint64
	// CombinedOps counts ring operations executed by a thread other than
	// their publisher — each one is a lock acquisition amortized away.
	CombinedOps uint64
	// CombinerDrains counts critical sections that drained at least one
	// ring record on top of their own work.
	CombinerDrains uint64
}

// Combining is implemented by backends with a flat-combining ingress
// layer: contended mutations publish operation records into per-partition
// rings and whichever thread holds the partition lock executes them in
// one critical section. The knob exists so semantics can be compared with
// the layer on and off; disabling it drains every in-flight record before
// returning, so no operation is left parked in a ring.
type Combining interface {
	SetCombining(on bool)
	CombiningEnabled() bool
	CombiningStats() CombiningStats
}

// SetCombining toggles the combining ingress layer on backends that have
// one, reporting whether b supports the knob.
func SetCombining(b Backend, on bool) bool {
	c, ok := b.(Combining)
	if ok {
		c.SetCombining(on)
	}
	return ok
}

// CheckInvariants validates b's internal structure when it supports
// checking, and reports nil otherwise.
func CheckInvariants(b Backend) error {
	if c, ok := b.(InvariantChecker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// UpdateRank atomically re-ranks id on backends that support it; on other
// backends it falls back to DequeueFlow + Enqueue (not atomic with respect
// to concurrent readers, which is fine for single-threaded consumers).
// When the re-enqueue half fails (an injected fault, or a concurrent
// producer stealing the freed slot on a racy backend), the dequeued
// element is restored with its original attributes and the failure is
// returned as an error instead of panicking; the element is lost only if
// the restore fails too, and the error says so explicitly.
func UpdateRank(b Backend, id uint32, rank uint64, sendTime clock.Time) (bool, error) {
	if u, ok := b.(RankUpdater); ok {
		return u.UpdateRank(id, rank, sendTime), nil
	}
	orig, ok := b.DequeueFlow(id)
	if !ok {
		return false, nil
	}
	e := orig
	e.Rank = rank
	e.SendTime = sendTime
	if err := b.Enqueue(e); err != nil {
		if rerr := b.Enqueue(orig); rerr != nil {
			return false, fmt.Errorf(
				"backend: UpdateRank re-enqueue failed (%w) and restore of %d failed (%v): element lost", err, id, rerr)
		}
		return false, fmt.Errorf("backend: UpdateRank re-enqueue failed: %w", err)
	}
	return true, nil
}

// --- Registry ---
//
// Backends register a constructor under a short name so tools (pieosim
// -backend, the differential harness) can be parameterized without linking
// package identities into every consumer. Registration happens in init
// functions; internal/shard registers itself, so a caller that wants the
// sharded engine available must import it (the facade does).

var (
	regMu    sync.RWMutex
	registry = map[string]func(capacity int) Backend{}
)

// Register binds name to a constructor. It panics on duplicates: two
// packages claiming one name is a wiring bug.
func Register(name string, factory func(capacity int) Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: %q registered twice", name))
	}
	registry[name] = factory
}

// New constructs the backend registered under name with the given
// capacity.
func New(name string, capacity int) (Backend, error) {
	regMu.RLock()
	factory := registry[name]
	regMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return factory(capacity), nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
