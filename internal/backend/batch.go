package backend

import (
	"pieo/internal/clock"
	"pieo/internal/core"
)

// Batcher is implemented by backends with native batch operations that
// amortize per-operation overhead — position-search state, metadata
// refresh, lock acquisitions — across many elements while preserving the
// exact one-at-a-time §3.1 semantics:
//
//   - EnqueueBatch(es) behaves exactly like calling Enqueue(es[0]),
//     Enqueue(es[1]), … in order. It attempts every entry even after a
//     failure, and returns how many succeeded plus the first error
//     encountered (nil when all succeeded). The final list state, the
//     FIFO tie-break order, and any hardware-modeled Stats are identical
//     to the sequential calls.
//   - DequeueUpTo(now, k, out) behaves exactly like calling Dequeue(now)
//     up to k times, appending each extracted entry to out (which may be
//     nil) and stopping early when no element is eligible. Passing a
//     capacity-k buffer keeps the call allocation-free.
//
// Backends without the capability are driven through the package-level
// EnqueueBatch/DequeueUpTo helpers, which fall back to the per-op loop —
// so consumers can batch unconditionally and still run on any Backend.
type Batcher interface {
	EnqueueBatch(es []core.Entry) (int, error)
	DequeueUpTo(now clock.Time, k int, out []core.Entry) []core.Entry
}

// EnqueueBatch inserts es in order through b's native batch path when it
// has one, else through sequential Enqueue calls. It returns the number
// of entries accepted and the first error encountered (nil when every
// entry was accepted); later entries are attempted regardless, exactly
// like the sequential loop.
func EnqueueBatch(b Backend, es []core.Entry) (int, error) {
	if bb, ok := b.(Batcher); ok {
		return bb.EnqueueBatch(es)
	}
	accepted := 0
	var firstErr error
	for _, e := range es {
		if err := b.Enqueue(e); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
	}
	return accepted, firstErr
}

// DequeueUpTo extracts up to k eligible elements at now, appending them
// to out and returning the extended slice. It uses b's native batch path
// when present, else a sequential Dequeue loop.
func DequeueUpTo(b Backend, now clock.Time, k int, out []core.Entry) []core.Entry {
	if bb, ok := b.(Batcher); ok {
		return bb.DequeueUpTo(now, k, out)
	}
	for i := 0; i < k; i++ {
		e, ok := b.Dequeue(now)
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}
