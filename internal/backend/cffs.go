// Eiffel-style circular hierarchical find-first-set (cFFS) bucket queue
// (PAPERS.md: Eiffel, arXiv 1810.03060). Where core.List pays O(√n)
// sublist shifts for exact arbitrary ranks, this backend quantizes rank
// into a bucket index and keeps one FIFO chain per bucket, so enqueue is
// O(1) and dequeue finds the minimum nonempty bucket in a handful of
// bits.TrailingZeros64 calls over a three-level uint64 bitmap hierarchy:
//
//	l2 (≤16 words)  one bit per l1 word
//	l1 (≤256 words) one bit per l0 word
//	l0 (B/64 words) one bit per bucket: set ⇔ chain nonempty
//
// Buckets form a CIRCULAR WINDOW of B consecutive virtual buckets
// [winLo, winLo+B): virtual bucket vb (= ⌊rank/W⌋, RankQuantizer) maps
// to physical slot vb&(B-1), which is winLo-independent, so sliding the
// window — advancing past dequeued minima, retreating for a smaller
// rank when the occupied span still fits — moves no data, only the
// winLo base used for range checks and reconstruction (vb = winLo +
// ((phys-winLo)&(B-1))). Ranks that fall outside any reachable window
// go to an exact SPILL: a (rank, seq)-sorted slice the dequeue path
// merges against the bucket candidate, so correctness never depends on
// the window geometry — only speed does.
//
// Eligibility (send_time <= now) uses the same block-summary idiom as
// core.List's Ordered-Sublist-Array: bktSend[p] is the EXACT minimum
// send_time of bucket p's chain and blkSend[w] the exact minimum over
// the 64 buckets of word w, both maintained with the incremental
// discipline core uses (store if the new value is <= the summary;
// rescan only when the departing value equaled it), so the dequeue scan
// skips whole 64-bucket blocks with nothing eligible.
//
// At width 1 (the registered "cffs" configuration) every bucket holds
// exactly one rank and chains are seq-sorted, so the backend is EXACT:
// it passes the same differential suite as core.List, standalone and
// under the sharded engine. Wider buckets trade rank precision for a
// smaller window (the quantization-deviation experiment measures the
// resulting order inversions); the backend then dequeues buckets in
// order and chains in seq order, bounding any inversion by W.
package backend

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/timewheel"
)

const (
	// The window is sized to 16x capacity so a workload whose rank span
	// tracks its occupancy (virtual-time schedulers) never spills, and
	// clamped so small instances stay small and huge ones stay cache-sane.
	cffsMinBuckets = 1 << 12
	cffsMaxBuckets = 1 << 20

	cffsNone = int32(-1)
)

// cnode is one queued element in the arena: the entry, its engine-stamped
// FIFO sequence, intrusive chain links, and the physical bucket it sits
// in (cffsNone while in the spill).
type cnode struct {
	ent        core.Entry
	seq        uint64
	next, prev int32
	bkt        int32
	// wh is the node's handle in the timing-wheel eligibility index
	// (meaningless while the wheel is disabled).
	wh int32
}

// CFFS is the bucket-queue shard backend. It implements ShardBackend;
// NewCFFSList adapts it to the top-level Backend interface. Not safe for
// concurrent use (the engine locks per shard, SyncList wraps it).
type CFFS struct {
	quant    RankQuantizer
	capacity int

	nBuckets    int
	mask        uint64
	winLo       uint64 // virtual bucket at the window start
	bucketCount int    // elements in buckets (excludes the spill)

	head, tail []int32
	bktSend    []uint64 // exact min send_time per nonempty bucket
	blkSend    []uint64 // exact min send_time per nonempty 64-bucket block
	l0, l1, l2 []uint64

	nodes []cnode
	free  []int32
	where map[uint32]int32

	spill []int32 // node indices sorted by (rank, seq)

	// wheel is the timing-wheel eligibility index (internal/timewheel),
	// mirroring every resident node by send_time: O(1)-exact
	// MinSendTime, a constant-time "nothing eligible" dequeue verdict,
	// and exact NextWakeAfter. nil after DisableEligIndex; the exact
	// send summaries (bktSend/blkSend) then answer alone, unchanged.
	wheel *timewheel.Wheel

	stats core.Stats
}

// NewCFFS creates a width-1 (exact) cFFS backend for one shard.
func NewCFFS(cfg ShardConfig) *CFFS {
	return NewCFFSQuantized(cfg, RankQuantizer{Width: 1})
}

// NewCFFSQuantized creates a cFFS backend with an explicit quantizer.
// Widths above 1 make the backend approximate: elements whose ranks fall
// in one bucket dequeue in FIFO rather than rank order (inversions
// bounded by the width — see the quantization-deviation experiment).
func NewCFFSQuantized(cfg ShardConfig, q RankQuantizer) *CFFS {
	if cfg.Capacity <= 0 {
		panic(fmt.Sprintf("backend: cffs capacity must be positive, got %d", cfg.Capacity))
	}
	occ := cfg.ExpectedOccupancy
	if occ <= 0 || occ > cfg.Capacity {
		occ = cfg.Capacity
	}
	nb := cffsMinBuckets
	for nb < cffsMaxBuckets && nb < 16*cfg.Capacity {
		nb <<= 1
	}
	words0 := nb / 64
	words1 := (words0 + 63) / 64
	words2 := (words1 + 63) / 64
	c := &CFFS{
		quant:    q,
		capacity: cfg.Capacity,
		nBuckets: nb,
		mask:     uint64(nb - 1),
		head:     make([]int32, nb),
		tail:     make([]int32, nb),
		bktSend:  make([]uint64, nb),
		blkSend:  make([]uint64, words0),
		l0:       make([]uint64, words0),
		l1:       make([]uint64, words1),
		l2:       make([]uint64, words2),
		nodes:    make([]cnode, 0, occ),
		where:    make(map[uint32]int32, occ),
		wheel:    timewheel.New(timewheel.Config{Hint: occ}),
	}
	for i := range c.head {
		c.head[i], c.tail[i] = cffsNone, cffsNone
	}
	return c
}

// Quantizer reports the rank quantizer the backend buckets with.
func (c *CFFS) Quantizer() RankQuantizer { return c.quant }

// maxWinLo is the largest window base that keeps vb reconstruction
// (winLo + delta) from wrapping; virtual buckets above it always spill.
func (c *CFFS) maxWinLo() uint64 { return math.MaxUint64 - uint64(c.nBuckets) }

func (c *CFFS) inWindow(vb uint64) bool { return vb-c.winLo < uint64(c.nBuckets) }

// vbAt reconstructs the virtual bucket of physical slot p under the
// current window.
func (c *CFFS) vbAt(p int) uint64 {
	return c.winLo + ((uint64(p) - c.winLo) & c.mask)
}

func (c *CFFS) alloc(e core.Entry, seq uint64) int32 {
	wh := cffsNone
	if c.wheel != nil {
		wh = c.wheel.Insert(e.SendTime)
	}
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		c.nodes[idx] = cnode{ent: e, seq: seq, next: cffsNone, prev: cffsNone, bkt: cffsNone, wh: wh}
		return idx
	}
	c.nodes = append(c.nodes, cnode{ent: e, seq: seq, next: cffsNone, prev: cffsNone, bkt: cffsNone, wh: wh})
	return int32(len(c.nodes) - 1)
}

func (c *CFFS) freeNode(idx int32) {
	if c.wheel != nil {
		c.wheel.Remove(c.nodes[idx].wh)
	}
	delete(c.where, c.nodes[idx].ent.ID)
	c.nodes[idx] = cnode{next: cffsNone, prev: cffsNone, bkt: cffsNone, wh: cffsNone}
	c.free = append(c.free, idx)
}

// --- Bitmap hierarchy ---

func (c *CFFS) setBit(p int) {
	w0 := p >> 6
	if c.l0[w0] == 0 {
		w1 := w0 >> 6
		if c.l1[w1] == 0 {
			c.l2[w1>>6] |= 1 << uint(w1&63)
		}
		c.l1[w1] |= 1 << uint(w0&63)
	}
	c.l0[w0] |= 1 << uint(p&63)
}

func (c *CFFS) clearBit(p int) {
	w0 := p >> 6
	c.l0[w0] &^= 1 << uint(p&63)
	if c.l0[w0] == 0 {
		w1 := w0 >> 6
		c.l1[w1] &^= 1 << uint(w0&63)
		if c.l1[w1] == 0 {
			c.l2[w1>>6] &^= 1 << uint(w1&63)
		}
	}
}

// maskAbove is the uint64 with every bit strictly above `bit` set.
func maskAbove(bit int) uint64 { return ^uint64(0) << uint(bit) << 1 }

// nextSetL0 returns the smallest set physical bucket in [from, limit),
// or -1, descending the hierarchy with TrailingZeros64.
func (c *CFFS) nextSetL0(from, limit int) int {
	if from >= limit {
		return -1
	}
	w0 := from >> 6
	if m := c.l0[w0] & (^uint64(0) << uint(from&63)); m != 0 {
		if p := w0<<6 + bits.TrailingZeros64(m); p < limit {
			return p
		}
		return -1
	}
	w1 := w0 >> 6
	m1 := c.l1[w1] & maskAbove(w0&63)
	if m1 == 0 {
		w2 := w1 >> 6
		m2 := c.l2[w2] & maskAbove(w1&63)
		for m2 == 0 {
			w2++
			if w2 >= len(c.l2) {
				return -1
			}
			m2 = c.l2[w2]
		}
		w1 = w2<<6 + bits.TrailingZeros64(m2)
		m1 = c.l1[w1]
	}
	w0 = w1<<6 + bits.TrailingZeros64(m1)
	p := w0<<6 + bits.TrailingZeros64(c.l0[w0])
	if p < limit {
		return p
	}
	return -1
}

// maskBelow is the uint64 with every bit strictly below `bit` set.
func maskBelow(bit int) uint64 { return ^(^uint64(0) << uint(bit)) }

// prevSetL0 returns the largest set physical bucket in [lo, hi], or -1.
func (c *CFFS) prevSetL0(hi, lo int) int {
	if hi < lo {
		return -1
	}
	w0 := hi >> 6
	if m := c.l0[w0] & ^maskAbove(hi&63); m != 0 {
		if p := w0<<6 + 63 - bits.LeadingZeros64(m); p >= lo {
			return p
		}
		return -1
	}
	w1 := w0 >> 6
	m1 := c.l1[w1] & maskBelow(w0&63)
	if m1 == 0 {
		w2 := w1 >> 6
		m2 := c.l2[w2] & maskBelow(w1&63)
		for m2 == 0 {
			w2--
			if w2 < 0 {
				return -1
			}
			m2 = c.l2[w2]
		}
		w1 = w2<<6 + 63 - bits.LeadingZeros64(m2)
		m1 = c.l1[w1]
	}
	w0 = w1<<6 + 63 - bits.LeadingZeros64(m1)
	p := w0<<6 + 63 - bits.LeadingZeros64(c.l0[w0])
	if p >= lo {
		return p
	}
	return -1
}

// firstOccupied returns the physical bucket of the smallest occupied
// virtual bucket. The window wraps at phys(winLo): ascending virtual
// order is phys [p0, B) then [0, p0). Caller guarantees bucketCount > 0.
func (c *CFFS) firstOccupied() int {
	p0 := int(c.winLo & c.mask)
	if p := c.nextSetL0(p0, c.nBuckets); p >= 0 {
		return p
	}
	return c.nextSetL0(0, p0)
}

// lastOccupied mirrors firstOccupied for the largest occupied virtual
// bucket: descending virtual order is phys [p0-1, 0] then [B-1, p0].
func (c *CFFS) lastOccupied() int {
	p0 := int(c.winLo & c.mask)
	if p := c.prevSetL0(p0-1, 0); p >= 0 {
		return p
	}
	return c.prevSetL0(c.nBuckets-1, p0)
}

// --- Chain and spill maintenance ---

// insertBucket links node idx into bucket vb's chain in ascending seq
// order and refreshes the eligibility summaries. Sequences mostly arrive
// in order (the combining rings are the exception), so the backward walk
// from the tail is O(1) amortized.
func (c *CFFS) insertBucket(idx int32, vb uint64) {
	p := int(vb & c.mask)
	n := &c.nodes[idx]
	n.bkt = int32(p)
	send := uint64(n.ent.SendTime)
	w0 := p >> 6
	if c.head[p] == cffsNone {
		blockWasEmpty := c.l0[w0] == 0
		c.head[p], c.tail[p] = idx, idx
		c.setBit(p)
		c.bktSend[p] = send
		if blockWasEmpty || send < c.blkSend[w0] {
			c.blkSend[w0] = send
		}
	} else {
		at := c.tail[p]
		for at != cffsNone && c.nodes[at].seq > n.seq {
			at = c.nodes[at].prev
		}
		if at == cffsNone {
			n.next = c.head[p]
			c.nodes[c.head[p]].prev = idx
			c.head[p] = idx
		} else {
			n.prev = at
			n.next = c.nodes[at].next
			if n.next != cffsNone {
				c.nodes[n.next].prev = idx
			} else {
				c.tail[p] = idx
			}
			c.nodes[at].next = idx
		}
		if send < c.bktSend[p] {
			c.bktSend[p] = send
		}
		if send < c.blkSend[w0] {
			c.blkSend[w0] = send
		}
	}
	c.bucketCount++
}

// rescanBlock recomputes blkSend[w0] from the nonempty buckets of word
// w0 — the exact-min rescue path when the block minimum departs.
func (c *CFFS) rescanBlock(w0 int) {
	m := uint64(clock.Never)
	for w := c.l0[w0]; w != 0; w &= w - 1 {
		p := w0<<6 + bits.TrailingZeros64(w)
		if c.bktSend[p] < m {
			m = c.bktSend[p]
		}
	}
	c.blkSend[w0] = m
}

// removeBucket unlinks node idx from its chain and restores the exact
// summaries: a departing value below the summary is impossible (they are
// exact minima), equal forces a rescan, above leaves it untouched.
func (c *CFFS) removeBucket(idx int32) {
	n := &c.nodes[idx]
	p := int(n.bkt)
	if n.prev != cffsNone {
		c.nodes[n.prev].next = n.next
	} else {
		c.head[p] = n.next
	}
	if n.next != cffsNone {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail[p] = n.prev
	}
	send := uint64(n.ent.SendTime)
	w0 := p >> 6
	if c.head[p] == cffsNone {
		c.tail[p] = cffsNone
		c.clearBit(p)
		if c.l0[w0] != 0 && send == c.blkSend[w0] {
			c.rescanBlock(w0)
		}
	} else {
		if send == c.bktSend[p] {
			m := uint64(clock.Never)
			for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
				if s := uint64(c.nodes[at].ent.SendTime); s < m {
					m = s
				}
			}
			c.bktSend[p] = m
		}
		if send == c.blkSend[w0] {
			c.rescanBlock(w0)
		}
	}
	c.bucketCount--
}

func (c *CFFS) insertSpill(idx int32) {
	n := &c.nodes[idx]
	pos := sort.Search(len(c.spill), func(i int) bool {
		o := &c.nodes[c.spill[i]]
		if o.ent.Rank != n.ent.Rank {
			return o.ent.Rank > n.ent.Rank
		}
		return o.seq > n.seq
	})
	c.spill = append(c.spill, 0)
	copy(c.spill[pos+1:], c.spill[pos:])
	c.spill[pos] = idx
}

// removeSpill locates idx by (rank, seq) binary search and deletes it.
func (c *CFFS) removeSpill(idx int32) {
	n := &c.nodes[idx]
	pos := sort.Search(len(c.spill), func(i int) bool {
		o := &c.nodes[c.spill[i]]
		if o.ent.Rank != n.ent.Rank {
			return o.ent.Rank >= n.ent.Rank
		}
		return o.seq >= n.seq
	})
	for pos < len(c.spill) && c.spill[pos] != idx {
		pos++
	}
	if pos >= len(c.spill) {
		panic(fmt.Sprintf("backend: cffs spill lost node for id %d", n.ent.ID))
	}
	c.spill = append(c.spill[:pos], c.spill[pos+1:]...)
}

// remove extracts node idx from wherever it lives. spillPos >= 0 passes
// a known spill position from the finder, skipping the search.
func (c *CFFS) remove(idx int32, spillPos int) {
	switch {
	case spillPos >= 0:
		c.spill = append(c.spill[:spillPos], c.spill[spillPos+1:]...)
	case c.nodes[idx].bkt != cffsNone:
		c.removeBucket(idx)
	default:
		c.removeSpill(idx)
	}
	c.freeNode(idx)
}

// --- The dequeue scan ---

// scanSeg finds the first eligible (and in-range, when ranged) element
// scanning buckets in ascending virtual order across phys [from, limit):
// empty words are skipped through the bitmap hierarchy, blocks and
// buckets with nothing eligible through the exact send summaries, and
// the surviving chain is walked in seq order.
func (c *CFFS) scanSeg(now clock.Time, lo, hi uint32, ranged bool, from, limit int) int32 {
	p := c.nextSetL0(from, limit)
	for p >= 0 {
		w0 := p >> 6
		if clock.Time(c.blkSend[w0]) > now {
			// Nothing in this 64-bucket block is eligible; skip it whole.
			p = c.nextSetL0((w0+1)<<6, limit)
			continue
		}
		if clock.Time(c.bktSend[p]) <= now {
			for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
				n := &c.nodes[at]
				if n.ent.SendTime > now {
					continue
				}
				if ranged && (n.ent.ID < lo || n.ent.ID > hi) {
					continue
				}
				return at
			}
		}
		p = c.nextSetL0(p+1, limit)
	}
	return cffsNone
}

// findMinEligible locates the element Dequeue would extract: the bucket
// candidate (first eligible chain node of the lowest eligible bucket)
// merged against the spill candidate (first eligible spill node, which
// is the spill's exact (rank, seq) minimum) by (rank, seq). The returned
// spill position is >= 0 iff the winner came from the spill.
func (c *CFFS) findMinEligible(now clock.Time, lo, hi uint32, ranged bool) (int32, int, bool) {
	// Wheel fast path: an O(1) exact minimum send_time above now means
	// nothing anywhere is eligible — no bitmap walk, no spill scan.
	if c.wheel != nil {
		if m, ok := c.wheel.MinSendTime(); !ok || m > now {
			return cffsNone, -1, false
		}
	}
	best := cffsNone
	if c.bucketCount > 0 {
		p0 := int(c.winLo & c.mask)
		best = c.scanSeg(now, lo, hi, ranged, p0, c.nBuckets)
		if best == cffsNone {
			best = c.scanSeg(now, lo, hi, ranged, 0, p0)
		}
	}
	for sp, si := range c.spill {
		n := &c.nodes[si]
		if n.ent.SendTime > now {
			continue
		}
		if ranged && (n.ent.ID < lo || n.ent.ID > hi) {
			continue
		}
		if best == cffsNone {
			return si, sp, true
		}
		b := &c.nodes[best]
		if n.ent.Rank < b.ent.Rank || (n.ent.Rank == b.ent.Rank && n.seq < b.seq) {
			return si, sp, true
		}
		break
	}
	if best == cffsNone {
		return cffsNone, -1, false
	}
	return best, -1, true
}

// --- ShardBackend ---

// EnqueueSeq implements ShardBackend. Error precedence matches
// core.List: a full list wins over a duplicate ID. An in-window rank
// goes straight to its bucket; out-of-window ranks first try to slide
// the window (advance past the occupied minimum, or retreat when the
// occupied span still fits behind the new rank — both are O(1) bitmap
// queries and move no data) and spill only when the occupied span
// genuinely exceeds the window.
func (c *CFFS) EnqueueSeq(e core.Entry, seq uint64) error {
	if len(c.where) >= c.capacity {
		return core.ErrFull
	}
	if _, dup := c.where[e.ID]; dup {
		return core.ErrDuplicate
	}
	c.stats.Enqueues++
	c.stats.Cycles += 2
	idx := c.alloc(e, seq)
	c.where[e.ID] = idx
	vb := c.quant.Bucket(e.Rank)
	switch {
	case c.bucketCount == 0:
		if vb <= c.maxWinLo() {
			c.winLo = vb
			c.insertBucket(idx, vb)
			return nil
		}
	case c.inWindow(vb):
		c.insertBucket(idx, vb)
		return nil
	case vb > c.winLo:
		minVb := c.vbAt(c.firstOccupied())
		if vb-minVb < uint64(c.nBuckets) && minVb <= c.maxWinLo() {
			c.winLo = minVb
			c.insertBucket(idx, vb)
			return nil
		}
	default: // vb < winLo
		maxVb := c.vbAt(c.lastOccupied())
		if maxVb-vb < uint64(c.nBuckets) {
			c.winLo = vb
			c.insertBucket(idx, vb)
			return nil
		}
	}
	c.insertSpill(idx)
	return nil
}

// UpdateRankSeq implements ShardBackend as the same dequeue(f) +
// enqueue fusion core.List runs, with the same stats charging: one
// FlowDequeue plus one Enqueue.
func (c *CFFS) UpdateRankSeq(id uint32, rank uint64, sendTime clock.Time, seq uint64) bool {
	idx, ok := c.where[id]
	if !ok {
		return false
	}
	c.remove(idx, -1)
	c.stats.FlowDequeues++
	c.stats.Cycles += 2
	if err := c.EnqueueSeq(core.Entry{ID: id, Rank: rank, SendTime: sendTime}, seq); err != nil {
		// The slot this element occupied was just freed, so neither full
		// nor duplicate is reachable.
		panic(fmt.Sprintf("backend: cffs UpdateRankSeq re-enqueue of %d: %v", id, err))
	}
	return true
}

// Dequeue implements ShardBackend.
func (c *CFFS) Dequeue(now clock.Time) (core.Entry, bool) {
	idx, sp, ok := c.findMinEligible(now, 0, 0, false)
	if !ok {
		c.stats.EmptyDequeues++
		return core.Entry{}, false
	}
	e := c.nodes[idx].ent
	c.remove(idx, sp)
	c.stats.Dequeues++
	c.stats.Cycles += 4
	return e, true
}

// DequeueRange implements ShardBackend.
func (c *CFFS) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	idx, sp, ok := c.findMinEligible(now, lo, hi, true)
	if !ok {
		return core.Entry{}, false
	}
	e := c.nodes[idx].ent
	c.remove(idx, sp)
	c.stats.RangeDequeues++
	c.stats.Cycles += 4
	return e, true
}

// DequeueFlow implements ShardBackend.
func (c *CFFS) DequeueFlow(id uint32) (core.Entry, bool) {
	idx, ok := c.where[id]
	if !ok {
		return core.Entry{}, false
	}
	e := c.nodes[idx].ent
	c.remove(idx, -1)
	c.stats.FlowDequeues++
	c.stats.Cycles += 2
	return e, true
}

// DequeueBelowSeq implements ShardBackend: one scan locates the minimum
// eligible element, extraction happens only below the rank limit, and a
// peek outcome charges nothing.
func (c *CFFS) DequeueBelowSeq(now clock.Time, limit uint64) (core.Entry, uint64, bool, bool) {
	idx, sp, ok := c.findMinEligible(now, 0, 0, false)
	if !ok {
		return core.Entry{}, 0, false, false
	}
	n := &c.nodes[idx]
	e, seq := n.ent, n.seq
	if e.Rank >= limit {
		return e, seq, true, false
	}
	c.remove(idx, sp)
	c.stats.Dequeues++
	c.stats.Cycles += 4
	return e, seq, true, true
}

// DequeueRangeBelowSeq implements ShardBackend.
func (c *CFFS) DequeueRangeBelowSeq(now clock.Time, lo, hi uint32, limit uint64) (core.Entry, uint64, bool, bool) {
	idx, sp, ok := c.findMinEligible(now, lo, hi, true)
	if !ok {
		return core.Entry{}, 0, false, false
	}
	n := &c.nodes[idx]
	e, seq := n.ent, n.seq
	if e.Rank >= limit {
		return e, seq, true, false
	}
	c.remove(idx, sp)
	c.stats.RangeDequeues++
	c.stats.Cycles += 4
	return e, seq, true, true
}

// MinRank implements ShardBackend in O(1): the lowest occupied bucket's
// rank floor (exact at width 1) merged with the spill head's exact rank.
func (c *CFFS) MinRank() (uint64, bool) {
	if len(c.where) == 0 {
		return 0, false
	}
	r := uint64(math.MaxUint64)
	if c.bucketCount > 0 {
		r = c.quant.RankOf(c.vbAt(c.firstOccupied()))
	}
	if len(c.spill) > 0 {
		if sr := c.nodes[c.spill[0]].ent.Rank; sr < r {
			r = sr
		}
	}
	return r, true
}

// MinSendTime implements ShardBackend exactly, folding the per-block
// exact minima (visiting only nonempty blocks through the hierarchy)
// with the spill. Not a hot-path operation: the engine calls it to
// refresh stale wake hints and across rebuilds.
func (c *CFFS) MinSendTime() (clock.Time, bool) {
	if len(c.where) == 0 {
		return 0, false
	}
	if c.wheel != nil {
		return c.wheel.MinSendTime()
	}
	m := uint64(clock.Never)
	for w2 := range c.l2 {
		for m2 := c.l2[w2]; m2 != 0; m2 &= m2 - 1 {
			w1 := w2<<6 + bits.TrailingZeros64(m2)
			for m1 := c.l1[w1]; m1 != 0; m1 &= m1 - 1 {
				w0 := w1<<6 + bits.TrailingZeros64(m1)
				if c.blkSend[w0] < m {
					m = c.blkSend[w0]
				}
			}
		}
	}
	for _, si := range c.spill {
		if s := uint64(c.nodes[si].ent.SendTime); s < m {
			m = s
		}
	}
	return clock.Time(m), true
}

// MaxRankEntrySeq implements ShardBackend: the push-out victim is the
// largest-(rank, seq) element, found in the highest occupied bucket
// (rank is monotone in virtual bucket, so the global maximum lives
// there) or at the spill tail.
func (c *CFFS) MaxRankEntrySeq() (core.Entry, uint64, bool) {
	best := cffsNone
	if c.bucketCount > 0 {
		p := c.lastOccupied()
		for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
			if best == cffsNone {
				best = at
				continue
			}
			n, b := &c.nodes[at], &c.nodes[best]
			if n.ent.Rank > b.ent.Rank || (n.ent.Rank == b.ent.Rank && n.seq > b.seq) {
				best = at
			}
		}
	}
	if len(c.spill) > 0 {
		si := c.spill[len(c.spill)-1]
		if best == cffsNone {
			best = si
		} else {
			n, b := &c.nodes[si], &c.nodes[best]
			if n.ent.Rank > b.ent.Rank || (n.ent.Rank == b.ent.Rank && n.seq > b.seq) {
				best = si
			}
		}
	}
	if best == cffsNone {
		return core.Entry{}, 0, false
	}
	n := &c.nodes[best]
	return n.ent, n.seq, true
}

// NextWakeAfter implements the EligIndexed capability: the exact
// smallest send_time strictly above now, clock.Never when none. O(1)
// through the wheel; the fallback after DisableEligIndex walks every
// occupied bucket chain and the spill — exact but O(n), which is why
// the wheel exists.
func (c *CFFS) NextWakeAfter(now clock.Time) clock.Time {
	if c.wheel != nil {
		return c.wheel.NextWakeAfter(now)
	}
	best := clock.Never
	for w2 := range c.l2 {
		for m2 := c.l2[w2]; m2 != 0; m2 &= m2 - 1 {
			w1 := w2<<6 + bits.TrailingZeros64(m2)
			for m1 := c.l1[w1]; m1 != 0; m1 &= m1 - 1 {
				w0 := w1<<6 + bits.TrailingZeros64(m1)
				for w := c.l0[w0]; w != 0; w &= w - 1 {
					p := w0<<6 + bits.TrailingZeros64(w)
					for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
						if t := c.nodes[at].ent.SendTime; t > now && t < best {
							best = t
						}
					}
				}
			}
		}
	}
	for _, si := range c.spill {
		if t := c.nodes[si].ent.SendTime; t > now && t < best {
			best = t
		}
	}
	return best
}

// EligIndexActive implements the EligIndexed capability.
func (c *CFFS) EligIndexActive() bool { return c.wheel != nil }

// DisableEligIndex implements the EligIndexed capability, dropping the
// wheel permanently for this instance.
func (c *CFFS) DisableEligIndex() { c.wheel = nil }

// Contains implements ShardBackend.
func (c *CFFS) Contains(id uint32) bool {
	_, ok := c.where[id]
	return ok
}

// Len implements ShardBackend.
func (c *CFFS) Len() int { return len(c.where) }

// peek reports what Dequeue (or DequeueRange) would extract, charging
// nothing.
func (c *CFFS) peek(now clock.Time, lo, hi uint32, ranged bool) (core.Entry, bool) {
	idx, _, ok := c.findMinEligible(now, lo, hi, ranged)
	if !ok {
		return core.Entry{}, false
	}
	return c.nodes[idx].ent, true
}

// SnapshotWithSeq implements ShardBackend: every queued entry with its
// stamped sequence in (rank, seq) order — the exact dequeue order at
// width 1, and the ideal (unquantized) order above it.
func (c *CFFS) SnapshotWithSeq() ([]core.Entry, []uint64) {
	type pair struct {
		e core.Entry
		s uint64
	}
	all := make([]pair, 0, len(c.where))
	for w2 := range c.l2 {
		for m2 := c.l2[w2]; m2 != 0; m2 &= m2 - 1 {
			w1 := w2<<6 + bits.TrailingZeros64(m2)
			for m1 := c.l1[w1]; m1 != 0; m1 &= m1 - 1 {
				w0 := w1<<6 + bits.TrailingZeros64(m1)
				for w := c.l0[w0]; w != 0; w &= w - 1 {
					p := w0<<6 + bits.TrailingZeros64(w)
					for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
						all = append(all, pair{c.nodes[at].ent, c.nodes[at].seq})
					}
				}
			}
		}
	}
	for _, si := range c.spill {
		all = append(all, pair{c.nodes[si].ent, c.nodes[si].seq})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].e.Rank != all[j].e.Rank {
			return all[i].e.Rank < all[j].e.Rank
		}
		return all[i].s < all[j].s
	})
	ents := make([]core.Entry, len(all))
	seqs := make([]uint64, len(all))
	for i, pr := range all {
		ents[i], seqs[i] = pr.e, pr.s
	}
	return ents, seqs
}

// Snapshot implements ShardBackend.
func (c *CFFS) Snapshot() []core.Entry {
	ents, _ := c.SnapshotWithSeq()
	return ents
}

// Stats implements ShardBackend with core.Stats conventions: operation
// counters match core.List call for call (UpdateRankSeq charges one
// FlowDequeue plus one Enqueue), and Cycles approximates datapath beats;
// the SRAM port counters stay zero — there is no sublist datapath here.
func (c *CFFS) Stats() core.Stats { return c.stats }

// CheckInvariants implements ShardBackend: bitmap hierarchy vs chains,
// chain link and seq-order integrity, exact send summaries, window
// membership, spill order, and arena conservation.
func (c *CFFS) CheckInvariants() error {
	if c.bucketCount+len(c.spill) != len(c.where) {
		return fmt.Errorf("cffs: %d bucketed + %d spilled != %d mapped", c.bucketCount, len(c.spill), len(c.where))
	}
	if len(c.nodes)-len(c.free) != len(c.where) {
		return fmt.Errorf("cffs: arena holds %d live nodes, map %d", len(c.nodes)-len(c.free), len(c.where))
	}
	seen := 0
	for w0 := range c.l0 {
		// l1/l2 must mirror word occupancy exactly.
		w1 := w0 >> 6
		if got := c.l1[w1]&(1<<uint(w0&63)) != 0; got != (c.l0[w0] != 0) {
			return fmt.Errorf("cffs: l1 bit for word %d = %v, l0 word %#x", w0, got, c.l0[w0])
		}
		if got := c.l2[w1>>6]&(1<<uint(w1&63)) != 0; got != (c.l1[w1] != 0) {
			return fmt.Errorf("cffs: l2 bit for l1 word %d mismatch", w1)
		}
		if c.l0[w0] == 0 {
			// A chain dangling under a clear bit is caught by the node
			// count below; skip the per-bucket walk for empty words.
			continue
		}
		blkMin := uint64(clock.Never)
		for bit := 0; bit < 64; bit++ {
			p := w0<<6 + bit
			occupied := c.l0[w0]&(1<<uint(bit)) != 0
			if !occupied {
				if c.head[p] != cffsNone || c.tail[p] != cffsNone {
					return fmt.Errorf("cffs: bucket %d has chain but clear bit", p)
				}
				continue
			}
			if c.head[p] == cffsNone {
				return fmt.Errorf("cffs: bucket %d bit set but chain empty", p)
			}
			vb := c.vbAt(p)
			if !c.inWindow(vb) {
				return fmt.Errorf("cffs: bucket %d reconstructs vb %d outside window [%d,+%d)", p, vb, c.winLo, c.nBuckets)
			}
			chainMin := uint64(clock.Never)
			prev := cffsNone
			var prevSeq uint64
			for at := c.head[p]; at != cffsNone; at = c.nodes[at].next {
				n := &c.nodes[at]
				if n.bkt != int32(p) {
					return fmt.Errorf("cffs: node %d in bucket %d claims bucket %d", at, p, n.bkt)
				}
				if n.prev != prev {
					return fmt.Errorf("cffs: bucket %d chain prev link broken at node %d", p, at)
				}
				if prev != cffsNone && n.seq < prevSeq {
					return fmt.Errorf("cffs: bucket %d chain seq order broken at node %d", p, at)
				}
				if c.quant.Bucket(n.ent.Rank) != vb {
					return fmt.Errorf("cffs: node %d rank %d in bucket for vb %d", at, n.ent.Rank, vb)
				}
				if got, ok := c.where[n.ent.ID]; !ok || got != at {
					return fmt.Errorf("cffs: node %d (id %d) not mapped to itself", at, n.ent.ID)
				}
				if s := uint64(n.ent.SendTime); s < chainMin {
					chainMin = s
				}
				prev, prevSeq = at, n.seq
				seen++
			}
			if c.tail[p] != prev {
				return fmt.Errorf("cffs: bucket %d tail %d, chain ends at %d", p, c.tail[p], prev)
			}
			if c.bktSend[p] != chainMin {
				return fmt.Errorf("cffs: bucket %d send summary %d, chain min %d", p, c.bktSend[p], chainMin)
			}
			if c.bktSend[p] < blkMin {
				blkMin = c.bktSend[p]
			}
		}
		if c.l0[w0] != 0 && c.blkSend[w0] != blkMin {
			return fmt.Errorf("cffs: block %d send summary %d, bucket min %d", w0, c.blkSend[w0], blkMin)
		}
	}
	if seen != c.bucketCount {
		return fmt.Errorf("cffs: chains hold %d nodes, bucketCount %d", seen, c.bucketCount)
	}
	for i, si := range c.spill {
		n := &c.nodes[si]
		if n.bkt != cffsNone {
			return fmt.Errorf("cffs: spill node %d claims bucket %d", si, n.bkt)
		}
		if got, ok := c.where[n.ent.ID]; !ok || got != si {
			return fmt.Errorf("cffs: spill node %d (id %d) not mapped to itself", si, n.ent.ID)
		}
		if i > 0 {
			o := &c.nodes[c.spill[i-1]]
			if o.ent.Rank > n.ent.Rank || (o.ent.Rank == n.ent.Rank && o.seq > n.seq) {
				return fmt.Errorf("cffs: spill order broken at position %d", i)
			}
		}
	}
	// Wheel residency must exactly match backend contents.
	if c.wheel != nil {
		if c.wheel.Len() != len(c.where) {
			return fmt.Errorf("cffs: wheel holds %d elements, backend %d", c.wheel.Len(), len(c.where))
		}
		for _, idx := range c.where {
			n := &c.nodes[idx]
			if got := c.wheel.TimeOf(n.wh); got != n.ent.SendTime {
				return fmt.Errorf("cffs: wheel handle %d for id %d holds t=%v, node send_time %v", n.wh, n.ent.ID, got, n.ent.SendTime)
			}
		}
		if err := c.wheel.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

var _ ShardBackend = (*CFFS)(nil)

// --- Top-level Backend adapter ---

// CFFSList adapts CFFS to the Backend interface for standalone
// (unsharded) use, stamping its own FIFO sequence.
type CFFSList struct {
	*CFFS
	seq uint64
}

// NewCFFSList creates a width-1 (exact) standalone cFFS backend with
// capacity n.
func NewCFFSList(n int) *CFFSList {
	return &CFFSList{CFFS: NewCFFS(ShardConfig{Capacity: n, ExpectedOccupancy: n})}
}

// NewCFFSListQuantized is NewCFFSList with an explicit bucket width —
// the configuration the quantization-deviation experiment measures.
func NewCFFSListQuantized(n int, q RankQuantizer) *CFFSList {
	return &CFFSList{CFFS: NewCFFSQuantized(ShardConfig{Capacity: n, ExpectedOccupancy: n}, q)}
}

// Enqueue implements Backend, stamping the next FIFO sequence. A failed
// insert burns its sequence harmlessly (ties compare relative order).
func (b *CFFSList) Enqueue(e core.Entry) error {
	b.seq++
	return b.CFFS.EnqueueSeq(e, b.seq)
}

// UpdateRank implements RankUpdater, restamping the element's FIFO
// position exactly as core.List does.
func (b *CFFSList) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	b.seq++
	return b.CFFS.UpdateRankSeq(id, rank, sendTime, b.seq)
}

// Peek implements Peeker.
func (b *CFFSList) Peek(now clock.Time) (core.Entry, bool) {
	return b.CFFS.peek(now, 0, 0, false)
}

// PeekRange implements Peeker.
func (b *CFFSList) PeekRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	return b.CFFS.peek(now, lo, hi, true)
}

// PeekMax implements Evictor.
func (b *CFFSList) PeekMax() (core.Entry, bool) {
	e, _, ok := b.CFFS.MaxRankEntrySeq()
	return e, ok
}

// EvictMax implements Evictor.
func (b *CFFSList) EvictMax() (core.Entry, bool) {
	e, _, ok := b.CFFS.MaxRankEntrySeq()
	if !ok {
		return core.Entry{}, false
	}
	return b.CFFS.DequeueFlow(e.ID)
}

// Stats implements Backend by projecting the datapath counters onto the
// operation summary, exactly as CoreList does.
func (b *CFFSList) Stats() Stats {
	s := b.CFFS.Stats()
	return Stats{
		Enqueues:      s.Enqueues,
		Dequeues:      s.Dequeues,
		EmptyDequeues: s.EmptyDequeues,
		FlowDequeues:  s.FlowDequeues,
		RangeDequeues: s.RangeDequeues,
	}
}

// HardwareStats implements HardwareModeled.
func (b *CFFSList) HardwareStats() core.Stats { return b.CFFS.Stats() }

var (
	_ Backend          = (*CFFSList)(nil)
	_ EligIndexed      = (*CFFSList)(nil)
	_ Peeker           = (*CFFSList)(nil)
	_ RankUpdater      = (*CFFSList)(nil)
	_ Evictor          = (*CFFSList)(nil)
	_ InvariantChecker = (*CFFSList)(nil)
	_ HardwareModeled  = (*CFFSList)(nil)
)

func init() {
	Register("cffs", func(n int) Backend { return NewCFFSList(n) })
	RegisterShard("cffs", func(cfg ShardConfig) ShardBackend { return NewCFFS(cfg) })
}
