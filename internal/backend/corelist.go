package backend

import (
	"math"

	"pieo/internal/core"
)

// CoreList adapts the paper-exact sublist implementation (core.List) to
// the Backend interface. Every operation is promoted from the embedded
// list; only Stats is reshaped, because core counts hardware work while
// the interface speaks in operations. It is the reference backend: the
// only one that is simultaneously exact, eligibility-complete, and
// hardware-costed.
type CoreList struct {
	*core.List
}

// NewCoreList creates a PIEO sublist backend with capacity n using the
// paper's √n geometry.
func NewCoreList(n int) *CoreList { return &CoreList{List: core.New(n)} }

// WrapCore adapts an existing core.List (e.g. one built with an explicit
// sublist geometry) to the Backend interface.
func WrapCore(l *core.List) *CoreList { return &CoreList{List: l} }

// Stats implements Backend by projecting the hardware counters onto the
// operation summary.
func (c *CoreList) Stats() Stats {
	s := c.List.Stats()
	return Stats{
		Enqueues:      s.Enqueues,
		Dequeues:      s.Dequeues,
		EmptyDequeues: s.EmptyDequeues,
		FlowDequeues:  s.FlowDequeues,
		RangeDequeues: s.RangeDequeues,
	}
}

// HardwareStats implements HardwareModeled with the full §5 datapath
// counters.
func (c *CoreList) HardwareStats() core.Stats { return c.List.Stats() }

// PeekMax implements Evictor in O(1) off the Ordered-Sublist-Array tail.
func (c *CoreList) PeekMax() (core.Entry, bool) { return c.List.MaxRankEntry() }

// EvictMax implements Evictor: the victim identified by PeekMax is
// extracted through the §5.2 dequeue(f) datapath.
func (c *CoreList) EvictMax() (core.Entry, bool) {
	e, ok := c.List.MaxRankEntry()
	if !ok {
		return core.Entry{}, false
	}
	return c.List.DequeueFlow(e.ID)
}

var _ Evictor = (*CoreList)(nil)

// The embedded list's native EnqueueBatch/DequeueUpTo promote to the
// optional batch capability.
var _ Batcher = (*CoreList)(nil)

// NewCoreShard is the ShardFactory for the paper-exact sublist list:
// capacity is the full shared bound, while the sublist geometry and the
// flow-map/arena pre-sizing follow the expected per-shard occupancy
// (⌈√(n/K)⌉ sublists — sharding shortens the scans as well as splitting
// the lock; see shard.New).
func NewCoreShard(cfg ShardConfig) ShardBackend {
	occ := cfg.ExpectedOccupancy
	if occ <= 0 || occ > cfg.Capacity {
		occ = cfg.Capacity
	}
	s := int(math.Ceil(math.Sqrt(float64(occ))))
	if s < 1 {
		s = 1
	}
	return core.NewWithOccupancyHint(cfg.Capacity, s, occ)
}

func init() {
	Register("core", func(n int) Backend { return NewCoreList(n) })
	RegisterShard("core", NewCoreShard)
}
