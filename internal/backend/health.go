package backend

import (
	"fmt"

	"pieo/internal/clock"
)

// BreakerPhase is the circuit-breaker state of one partition in a
// self-healing backend (DESIGN.md §12). The phase machine is the
// classic closed → open → half-open → closed cycle:
//
//   - Closed: the partition is healthy and serving traffic.
//   - Open: the partition is quarantined; traffic routes around it and
//     rebuild probes are gated by an exponential-backoff timer.
//   - HalfOpen: a rebuild succeeded and the partition carries real
//     traffic again, but full re-admission (streak reset, MTTR close)
//     waits for a bounded probe budget of successful operations.
//
// The enum lives in this package rather than internal/supervise so the
// Health capability below can reference it without backends importing
// the supervision layer.
type BreakerPhase int32

const (
	// BreakerClosed is the healthy steady state.
	BreakerClosed BreakerPhase = iota
	// BreakerOpen is the quarantined state: traffic routes around the
	// partition until the backoff timer readmits a rebuild probe.
	BreakerOpen
	// BreakerHalfOpen is the probation state after a successful rebuild:
	// real operations count down a probe budget before the breaker
	// closes and the outage episode's MTTR is recorded.
	BreakerHalfOpen
)

// String names the phase.
func (p BreakerPhase) String() string {
	switch p {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerPhase(%d)", int32(p))
	}
}

// ShardHealth is one partition's health snapshot.
type ShardHealth struct {
	// Index is the partition index (0 for unsharded backends).
	Index int
	// Up is false while the partition is quarantined (phase Open).
	Up bool
	// Phase is the partition's circuit-breaker phase.
	Phase BreakerPhase
	// FailureStreak counts consecutive failures in the current outage
	// episode — the exponent of the breaker's current backoff. Zero
	// while Closed.
	FailureStreak int
	// Occupancy is the number of elements resident on the partition
	// (including salvaged elements awaiting rebuild while Open).
	Occupancy int
	// RetryAt is the instant (on the backend's supervision clock) when
	// the next rebuild probe is due; meaningful only while Open.
	RetryAt clock.Time
}

// HealthReport is a point-in-time health snapshot of a backend: global
// occupancy against capacity (the overload controller's watermark
// input) plus per-partition breaker state.
type HealthReport struct {
	// Occupancy and Capacity describe the backend's fill level.
	// Capacity is 0 when the backend cannot report one.
	Occupancy int
	Capacity  int
	// DownShards counts partitions currently Open; ProbationShards
	// counts partitions currently HalfOpen.
	DownShards      int
	ProbationShards int
	// Shards holds one entry per partition.
	Shards []ShardHealth
}

// OccupancyFraction returns Occupancy/Capacity, or 0 when the capacity
// is unknown.
func (r HealthReport) OccupancyFraction() float64 {
	if r.Capacity <= 0 {
		return 0
	}
	return float64(r.Occupancy) / float64(r.Capacity)
}

// Health is implemented by backends that expose the supervision layer's
// health surface: per-partition breaker phase and occupancy watermarks.
// The sharded engine implements it natively; single-partition backends
// report one always-closed shard.
type Health interface {
	Health() HealthReport
}

// HealthOf returns b's health report when the backend (or a wrapper it
// exposes) implements the Health capability.
func HealthOf(b Backend) (HealthReport, bool) {
	if h, ok := b.(Health); ok {
		return h.Health(), true
	}
	return HealthReport{}, false
}
