package backend_test

import (
	"fmt"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	_ "pieo/internal/refmodel" // registers "ref"
	_ "pieo/internal/shard"    // registers "sharded"
)

// invLCG is a tiny deterministic generator so every backend sees the
// identical operation stream.
type invLCG uint64

func (r *invLCG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// stormBackend drives a deterministic mixed workload against b, calling
// backend.CheckInvariants periodically and returning the set of IDs
// still resident according to acceptance/delivery bookkeeping.
func stormBackend(t *testing.T, b backend.Backend, seed uint64, ops int) map[uint32]bool {
	t.Helper()
	rng := invLCG(seed)
	resident := make(map[uint32]bool)
	nextID := uint32(1)
	for op := 0; op < ops; op++ {
		switch rng.next() % 5 {
		case 0, 1:
			id := nextID
			nextID++
			ent := core.Entry{ID: id, Rank: rng.next() % 500, SendTime: clock.Time(rng.next() % 32)}
			if err := b.Enqueue(ent); err == nil {
				resident[id] = true
			}
		case 2:
			if ent, ok := b.Dequeue(clock.Time(rng.next() % 64)); ok {
				if !resident[ent.ID] {
					t.Fatalf("op %d: dequeued id %d that was never accepted", op, ent.ID)
				}
				delete(resident, ent.ID)
			}
		case 3:
			id := uint32(rng.next()%uint64(nextID)) + 1
			if ent, ok := b.DequeueFlow(id); ok {
				if !resident[ent.ID] {
					t.Fatalf("op %d: point-dequeued id %d that was never accepted", op, ent.ID)
				}
				delete(resident, ent.ID)
			}
		case 4:
			id := uint32(rng.next()%uint64(nextID)) + 1
			if _, err := backend.UpdateRank(b, id, rng.next()%500, clock.Time(rng.next()%32)); err != nil {
				t.Fatalf("op %d: UpdateRank(%d): %v", op, id, err)
			}
		}
		if op%512 == 0 {
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("invariants after op %d: %v", op, err)
			}
		}
	}
	return resident
}

// TestCheckInvariantsAllBackends runs the structural validator against
// every registered backend through a deterministic mixed workload —
// including mid-stream checks, a post-storm check, and a post-drain
// check on the empty structure.
func TestCheckInvariantsAllBackends(t *testing.T) {
	names := backend.Names()
	want := map[string]bool{
		"approx": false, "cffs": false, "core": false, "pifo": false,
		"ref": false, "sharded": false, "sharded+cffs": false,
	}
	for _, name := range names {
		if _, known := want[name]; known {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("backend %q not registered (have %v)", name, names)
		}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			b, err := backend.New(name, 256)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			resident := stormBackend(t, b, 9, 6000)
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("post-storm invariants: %v", err)
			}
			if b.Len() != len(resident) {
				t.Fatalf("backend holds %d, bookkeeping says %d", b.Len(), len(resident))
			}
			for b.Len() > 0 {
				if _, ok := b.Dequeue(clock.Time(1 << 60)); !ok {
					t.Fatalf("drain stalled with %d resident", b.Len())
				}
			}
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("post-drain invariants: %v", err)
			}
		})
	}
}

// TestCheckInvariantsPostFault repeats the sweep with the fault-injection
// wrapper interposed: injected errors and capacity squeezes must leave
// every backend structurally clean, because a shed arrival never touches
// the inner structure.
func TestCheckInvariantsPostFault(t *testing.T) {
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			inner, err := backend.New(name, 256)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			inj := faultinject.NewInjector(faultinject.Plan{Seed: 77, ErrorEvery: 17, SqueezeEvery: 29, SqueezeLen: 3})
			b := faultinject.Wrap(inner, inj)
			stormBackend(t, b, 13, 6000)
			inj.Disarm()
			if err := backend.CheckInvariants(inner); err != nil {
				t.Fatalf("post-fault invariants: %v", err)
			}
			if inj.Stats().Injected == 0 || inj.Stats().Squeezes == 0 {
				t.Fatalf("fault schedules never fired on %s: %+v", name, inj.Stats())
			}
			if got, wantLen := b.Len(), inner.Len(); got != wantLen {
				t.Fatalf("wrapper Len %d != inner Len %d", got, wantLen)
			}
			_ = fmt.Sprintf("%v", b.DeclaredDrops()) // drop log must be readable post-storm
		})
	}
}
