package backend_test

import (
	"fmt"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	_ "pieo/internal/refmodel" // registers "ref"
	_ "pieo/internal/shard"    // registers "sharded"
)

// invLCG is a tiny deterministic generator so every backend sees the
// identical operation stream.
type invLCG uint64

func (r *invLCG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// stormBackend drives a deterministic mixed workload against b, calling
// backend.CheckInvariants periodically and returning the set of IDs
// still resident according to acceptance/delivery bookkeeping.
func stormBackend(t *testing.T, b backend.Backend, seed uint64, ops int) map[uint32]bool {
	t.Helper()
	rng := invLCG(seed)
	resident := make(map[uint32]bool)
	nextID := uint32(1)
	for op := 0; op < ops; op++ {
		switch rng.next() % 5 {
		case 0, 1:
			id := nextID
			nextID++
			ent := core.Entry{ID: id, Rank: rng.next() % 500, SendTime: clock.Time(rng.next() % 32)}
			if err := b.Enqueue(ent); err == nil {
				resident[id] = true
			}
		case 2:
			if ent, ok := b.Dequeue(clock.Time(rng.next() % 64)); ok {
				if !resident[ent.ID] {
					t.Fatalf("op %d: dequeued id %d that was never accepted", op, ent.ID)
				}
				delete(resident, ent.ID)
			}
		case 3:
			id := uint32(rng.next()%uint64(nextID)) + 1
			if ent, ok := b.DequeueFlow(id); ok {
				if !resident[ent.ID] {
					t.Fatalf("op %d: point-dequeued id %d that was never accepted", op, ent.ID)
				}
				delete(resident, ent.ID)
			}
		case 4:
			id := uint32(rng.next()%uint64(nextID)) + 1
			if _, err := backend.UpdateRank(b, id, rng.next()%500, clock.Time(rng.next()%32)); err != nil {
				t.Fatalf("op %d: UpdateRank(%d): %v", op, id, err)
			}
		}
		if op%512 == 0 {
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("invariants after op %d: %v", op, err)
			}
		}
	}
	return resident
}

// TestCheckInvariantsAllBackends runs the structural validator against
// every registered backend through a deterministic mixed workload —
// including mid-stream checks, a post-storm check, and a post-drain
// check on the empty structure.
func TestCheckInvariantsAllBackends(t *testing.T) {
	names := backend.Names()
	want := map[string]bool{
		"approx": false, "cffs": false, "core": false, "pifo": false,
		"ref": false, "sharded": false, "sharded+cffs": false,
	}
	for _, name := range names {
		if _, known := want[name]; known {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("backend %q not registered (have %v)", name, names)
		}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			b, err := backend.New(name, 256)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			resident := stormBackend(t, b, 9, 6000)
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("post-storm invariants: %v", err)
			}
			if b.Len() != len(resident) {
				t.Fatalf("backend holds %d, bookkeeping says %d", b.Len(), len(resident))
			}
			for b.Len() > 0 {
				if _, ok := b.Dequeue(clock.Time(1 << 60)); !ok {
					t.Fatalf("drain stalled with %d resident", b.Len())
				}
			}
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("post-drain invariants: %v", err)
			}
		})
	}
}

// TestRangedStormAllBackends drives a banded workload — the access
// pattern of the partitioned hierarchy — against every registered
// backend: IDs are assigned to four disjoint bands and every extraction
// is a DequeueRange over one band. Asserts no cross-band leakage, exact
// per-band (per-logical-node) conservation against a reference model,
// and structural invariants throughout.
func TestRangedStormAllBackends(t *testing.T) {
	const bands = 4
	const bandWidth = 1 << 16
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := backend.New(name, 1024)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			rng := invLCG(21)
			resident := make([]map[uint32]core.Entry, bands)
			next := make([]uint32, bands)
			for i := range resident {
				resident[i] = make(map[uint32]core.Entry)
			}
			for op := 0; op < 8000; op++ {
				band := int(rng.next() % bands)
				lo := uint32(band * bandWidth)
				switch rng.next() % 4 {
				case 0, 1: // enqueue into the band
					id := lo + next[band]
					next[band]++
					ent := core.Entry{ID: id, Rank: rng.next() % 500, SendTime: clock.Time(rng.next() % 32)}
					if err := b.Enqueue(ent); err == nil {
						resident[band][id] = ent
					}
				case 2: // ranged dequeue over the band
					now := clock.Time(rng.next() % 64)
					ent, ok := b.DequeueRange(now, lo, lo+bandWidth-1)
					if !ok {
						continue
					}
					model, mine := resident[band][ent.ID]
					if !mine {
						t.Fatalf("op %d: DequeueRange[%d] leaked id %d (not this band's)", op, band, ent.ID)
					}
					if model != ent {
						t.Fatalf("op %d: band %d returned %+v, model holds %+v", op, band, ent, model)
					}
					if !ent.Eligible(now) {
						t.Fatalf("op %d: band %d returned ineligible %+v at %d", op, band, ent, now)
					}
					delete(resident[band], ent.ID)
				case 3: // re-rank a band resident
					if len(resident[band]) == 0 {
						continue
					}
					var id uint32
					for k := range resident[band] {
						id = k
						break
					}
					ent := resident[band][id]
					ent.Rank = rng.next() % 500
					ent.SendTime = clock.Time(rng.next() % 32)
					if ok, err := backend.UpdateRank(b, id, ent.Rank, ent.SendTime); err != nil {
						t.Fatalf("op %d: UpdateRank(%d): %v", op, id, err)
					} else if !ok {
						t.Fatalf("op %d: UpdateRank missed resident id %d", op, id)
					}
					resident[band][id] = ent
				}
				if op%1024 == 0 {
					if err := backend.CheckInvariants(b); err != nil {
						t.Fatalf("invariants after op %d: %v", op, err)
					}
				}
			}
			// Per-band conservation: ranged drain must return exactly the
			// band's model, in rank order (approx quantizes order away by
			// design, so it is conservation-only), and nothing else.
			exactOrder := name != "approx"
			for band := 0; band < bands; band++ {
				lo := uint32(band * bandWidth)
				lastRank := uint64(0)
				for len(resident[band]) > 0 {
					ent, ok := b.DequeueRange(clock.Time(1<<60), lo, lo+bandWidth-1)
					if !ok {
						t.Fatalf("band %d drain stalled with %d resident", band, len(resident[band]))
					}
					if exactOrder && ent.Rank < lastRank {
						t.Fatalf("band %d drain out of rank order: %d after %d", band, ent.Rank, lastRank)
					}
					lastRank = ent.Rank
					if _, mine := resident[band][ent.ID]; !mine {
						t.Fatalf("band %d drain leaked id %d", band, ent.ID)
					}
					delete(resident[band], ent.ID)
				}
				if _, ok := b.DequeueRange(clock.Time(1<<60), lo, lo+bandWidth-1); ok {
					t.Fatalf("band %d over-delivered past its model", band)
				}
			}
			if b.Len() != 0 {
				t.Fatalf("backend holds %d after every band drained", b.Len())
			}
			if err := backend.CheckInvariants(b); err != nil {
				t.Fatalf("post-drain invariants: %v", err)
			}
		})
	}
}

// TestShardBackendDequeueRangeBelowSeq exercises the seq-aware ranged
// contract directly on every registered shard backend: the peek/take
// split on the rank limit, exact (rank, seq) winner selection within a
// band, stat-free peeks, and per-band conservation.
func TestShardBackendDequeueRangeBelowSeq(t *testing.T) {
	const bands = 3
	const bandWidth = 1 << 10
	for _, name := range backend.ShardNames() {
		t.Run(name, func(t *testing.T) {
			sb, err := backend.NewShard(name, backend.ShardConfig{Capacity: 4096, ExpectedOccupancy: 512})
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			rng := invLCG(33)
			type stamped struct {
				e   core.Entry
				seq uint64
			}
			resident := make([]map[uint32]stamped, bands)
			next := make([]uint32, bands)
			for i := range resident {
				resident[i] = make(map[uint32]stamped)
			}
			var seq uint64
			for op := 0; op < 6000; op++ {
				band := int(rng.next() % bands)
				lo := uint32(band * bandWidth)
				hi := lo + bandWidth - 1
				switch rng.next() % 4 {
				case 0, 1: // seq-stamped insert
					id := lo + next[band]%bandWidth
					next[band]++
					if _, dup := resident[band][id]; dup {
						continue
					}
					seq++
					ent := core.Entry{ID: id, Rank: rng.next() % 200, SendTime: clock.Time(rng.next() % 16)}
					if err := sb.EnqueueSeq(ent, seq); err != nil {
						continue
					}
					resident[band][id] = stamped{ent, seq}
				case 2: // ranged below-seq: compare against the model's exact winner
					now := clock.Time(rng.next() % 24)
					var want stamped
					found := false
					for _, s := range resident[band] {
						if s.e.SendTime > now {
							continue
						}
						if !found || s.e.Rank < want.e.Rank || (s.e.Rank == want.e.Rank && s.seq < want.seq) {
							want = s
							found = true
						}
					}
					limit := rng.next() % 300
					before := sb.Stats()
					e, gotSeq, eligible, taken := sb.DequeueRangeBelowSeq(now, lo, hi, limit)
					if eligible != found {
						t.Fatalf("op %d: band %d eligible=%v, model says %v", op, band, eligible, found)
					}
					if !eligible {
						continue
					}
					if e != want.e || gotSeq != want.seq {
						t.Fatalf("op %d: band %d returned (%+v, seq %d), model's winner (%+v, seq %d)",
							op, band, e, gotSeq, want.e, want.seq)
					}
					if wantTake := want.e.Rank < limit; taken != wantTake {
						t.Fatalf("op %d: rank %d limit %d: taken=%v, want %v", op, band, limit, taken, wantTake)
					}
					if taken {
						delete(resident[band], e.ID)
					} else if sb.Stats() != before {
						t.Fatalf("op %d: pure peek charged stats: %+v -> %+v", op, before, sb.Stats())
					}
				case 3: // seq-restamping re-rank
					if len(resident[band]) == 0 {
						continue
					}
					var id uint32
					for k := range resident[band] {
						id = k
						break
					}
					seq++
					s := resident[band][id]
					s.e.Rank = rng.next() % 200
					s.e.SendTime = clock.Time(rng.next() % 16)
					s.seq = seq
					if !sb.UpdateRankSeq(id, s.e.Rank, s.e.SendTime, seq) {
						t.Fatalf("op %d: UpdateRankSeq missed resident id %d", op, id)
					}
					resident[band][id] = s
				}
			}
			if err := sb.CheckInvariants(); err != nil {
				t.Fatalf("post-storm invariants: %v", err)
			}
			// Per-band conservation: drain each band with take-everything
			// limits; each must yield exactly its model.
			totalModel := 0
			for band := 0; band < bands; band++ {
				lo := uint32(band * bandWidth)
				totalModel += len(resident[band])
				for len(resident[band]) > 0 {
					e, _, eligible, taken := sb.DequeueRangeBelowSeq(clock.Time(1<<60), lo, lo+bandWidth-1, ^uint64(0))
					if !eligible || !taken {
						t.Fatalf("band %d drain stalled with %d resident", band, len(resident[band]))
					}
					if _, mine := resident[band][e.ID]; !mine {
						t.Fatalf("band %d drain leaked id %d", band, e.ID)
					}
					delete(resident[band], e.ID)
				}
			}
			if sb.Len() != 0 {
				t.Fatalf("shard backend holds %d after all bands drained", sb.Len())
			}
		})
	}
}

// TestCheckInvariantsPostFault repeats the sweep with the fault-injection
// wrapper interposed: injected errors and capacity squeezes must leave
// every backend structurally clean, because a shed arrival never touches
// the inner structure.
func TestCheckInvariantsPostFault(t *testing.T) {
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			inner, err := backend.New(name, 256)
			if err != nil {
				t.Fatalf("construct: %v", err)
			}
			inj := faultinject.NewInjector(faultinject.Plan{Seed: 77, ErrorEvery: 17, SqueezeEvery: 29, SqueezeLen: 3})
			b := faultinject.Wrap(inner, inj)
			stormBackend(t, b, 13, 6000)
			inj.Disarm()
			if err := backend.CheckInvariants(inner); err != nil {
				t.Fatalf("post-fault invariants: %v", err)
			}
			if inj.Stats().Injected == 0 || inj.Stats().Squeezes == 0 {
				t.Fatalf("fault schedules never fired on %s: %+v", name, inj.Stats())
			}
			if got, wantLen := b.Len(), inner.Len(); got != wantLen {
				t.Fatalf("wrapper Len %d != inner Len %d", got, wantLen)
			}
			_ = fmt.Sprintf("%v", b.DeclaredDrops()) // drop log must be readable post-storm
		})
	}
}
