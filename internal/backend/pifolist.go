package backend

import (
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/pifo"
)

// PIFOList adapts the PIFO baseline (Sivaraman et al., §2.3) to the
// Backend interface so the same schedulers, tests, and tools can run over
// it and the deviation from true PIEO semantics becomes observable rather
// than structural. The adaptation is deliberately honest about what PIFO
// hardware can and cannot do:
//
//   - Enqueue is native: rank-ordered insert with FIFO ties.
//   - Dequeue is head-only. An ineligible head BLOCKS the whole list —
//     PIFO cannot extract the smallest-ranked *eligible* element, which
//     is exactly the limitation §2 motivates PIEO with. With all
//     send_times Always (work-conserving programs) the adapter is exact.
//   - DequeueFlow and DequeueRange have no hardware analogue; the adapter
//     emulates them in software by draining and rebuilding the flip-flop
//     list (O(n) per call, counted in RebuildShifts). They exist so the
//     §3.2 framework's alarm path still functions, not as a claim that
//     PIFO supports it.
//
// Send times are tracked in a side table because pifo.Entry has no
// eligibility channel at all.
type PIFOList struct {
	l     *pifo.List
	sends map[uint32]clock.Time
	stats Stats

	// RebuildShifts counts elements moved by software-emulated
	// DequeueFlow/DequeueRange rebuilds — work a real PIFO cannot do.
	RebuildShifts uint64
}

// NewPIFOList creates a PIFO backend with capacity n.
func NewPIFOList(n int) *PIFOList {
	return &PIFOList{l: pifo.New(n), sends: make(map[uint32]clock.Time, n)}
}

// Enqueue implements Backend.
func (p *PIFOList) Enqueue(e core.Entry) error {
	if p.l.Len() == p.l.Capacity() {
		return core.ErrFull
	}
	if _, dup := p.sends[e.ID]; dup {
		return core.ErrDuplicate
	}
	if err := p.l.Enqueue(pifo.Entry{ID: e.ID, Rank: e.Rank}); err != nil {
		return core.ErrFull
	}
	p.sends[e.ID] = e.SendTime
	p.stats.Enqueues++
	return nil
}

// Dequeue implements Backend with PIFO's head-only semantics: if the
// smallest-ranked element is not eligible at now, nothing is returned even
// when a lower-priority eligible element exists behind it.
func (p *PIFOList) Dequeue(now clock.Time) (core.Entry, bool) {
	head, ok := p.l.Peek()
	if !ok || p.sends[head.ID] > now {
		p.stats.EmptyDequeues++
		return core.Entry{}, false
	}
	e, _ := p.l.Dequeue()
	out := core.Entry{ID: e.ID, Rank: e.Rank, SendTime: p.sends[e.ID]}
	delete(p.sends, e.ID)
	p.stats.Dequeues++
	return out, true
}

// Peek implements Peeker (head-only, like Dequeue).
func (p *PIFOList) Peek(now clock.Time) (core.Entry, bool) {
	head, ok := p.l.Peek()
	if !ok || p.sends[head.ID] > now {
		return core.Entry{}, false
	}
	return core.Entry{ID: head.ID, Rank: head.Rank, SendTime: p.sends[head.ID]}, true
}

// PeekRange implements Peeker via the same software scan DequeueRange
// uses, without mutating the list.
func (p *PIFOList) PeekRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	for _, e := range p.l.Snapshot() {
		if e.ID >= lo && e.ID <= hi && p.sends[e.ID] <= now {
			return core.Entry{ID: e.ID, Rank: e.Rank, SendTime: p.sends[e.ID]}, true
		}
	}
	return core.Entry{}, false
}

// DequeueFlow implements Backend by software rebuild (see type comment).
func (p *PIFOList) DequeueFlow(id uint32) (core.Entry, bool) {
	if _, present := p.sends[id]; !present {
		return core.Entry{}, false
	}
	out, ok := p.extract(func(e pifo.Entry) bool { return e.ID == id })
	if ok {
		p.stats.FlowDequeues++
	}
	return out, ok
}

// DequeueRange implements Backend by software rebuild (see type comment).
func (p *PIFOList) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	out, ok := p.extract(func(e pifo.Entry) bool {
		return e.ID >= lo && e.ID <= hi && p.sends[e.ID] <= now
	})
	if ok {
		p.stats.RangeDequeues++
	} else {
		p.stats.EmptyDequeues++
	}
	return out, ok
}

// extract removes the first (smallest-ranked) element matching want by
// draining the PIFO and re-inserting everything else. Re-insertion happens
// in the drained (rank, FIFO) order, and pifo.Enqueue places equal ranks
// after existing ones, so the relative FIFO order of survivors is
// preserved.
func (p *PIFOList) extract(want func(pifo.Entry) bool) (core.Entry, bool) {
	drained := p.l.Snapshot()
	found := -1
	for i, e := range drained {
		if want(e) {
			found = i
			break
		}
	}
	if found == -1 {
		return core.Entry{}, false
	}
	for range drained {
		p.l.Dequeue()
	}
	for i, e := range drained {
		if i == found {
			continue
		}
		if err := p.l.Enqueue(e); err != nil {
			panic("backend: pifo rebuild overflowed its own capacity")
		}
	}
	p.RebuildShifts += uint64(len(drained))
	out := core.Entry{ID: drained[found].ID, Rank: drained[found].Rank, SendTime: p.sends[drained[found].ID]}
	delete(p.sends, drained[found].ID)
	return out, true
}

// Len implements Backend.
func (p *PIFOList) Len() int { return p.l.Len() }

// Contains implements Backend.
func (p *PIFOList) Contains(id uint32) bool {
	_, ok := p.sends[id]
	return ok
}

// MinSendTime implements Backend with an O(n) scan of the side table.
func (p *PIFOList) MinSendTime() (clock.Time, bool) {
	if len(p.sends) == 0 {
		return 0, false
	}
	minT := clock.Never
	for _, t := range p.sends {
		if t < minT {
			minT = t
		}
	}
	return minT, true
}

// Snapshot implements Backend.
func (p *PIFOList) Snapshot() []core.Entry {
	snap := p.l.Snapshot()
	out := make([]core.Entry, len(snap))
	for i, e := range snap {
		out[i] = core.Entry{ID: e.ID, Rank: e.Rank, SendTime: p.sends[e.ID]}
	}
	return out
}

// Stats implements Backend.
func (p *PIFOList) Stats() Stats { return p.stats }

func init() {
	Register("pifo", func(n int) Backend { return NewPIFOList(n) })
}
