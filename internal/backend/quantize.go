package backend

import "math"

// RankQuantizer maps ranks onto bucket indices for bucketed backends
// (cffs.go). Width is the bucket width W: ranks r1, r2 land in the same
// bucket iff ⌊r1/W⌋ == ⌊r2/W⌋, so any two elements a bucketed backend
// may reorder differ by less than W in rank. W == 1 (and W == 0, which
// normalizes to 1) is the identity — one rank per bucket, no precision
// lost — and is what the registered "cffs" backend runs at; wider
// buckets trade rank precision for a smaller bucket window, the
// quantization knob the deviation experiment measures (PAPERS.md: "Everything
// Matters in Programmable Packet Scheduling" studies exactly this trade).
type RankQuantizer struct {
	Width uint64
}

// width normalizes the zero value to the identity quantizer.
func (q RankQuantizer) width() uint64 {
	if q.Width == 0 {
		return 1
	}
	return q.Width
}

// Bucket maps an integer rank to its bucket index: ⌊rank/W⌋. The mapping
// is monotone (r1 <= r2 ⇒ Bucket(r1) <= Bucket(r2)), total over uint64,
// and never panics.
func (q RankQuantizer) Bucket(rank uint64) uint64 {
	return rank / q.width()
}

// BucketFloat maps a non-integer rank (WF²Q+ virtual finish times and
// the like are naturally fractional) to a bucket index: ⌊r/W⌋ clamped
// onto the representable range. NaN and negative ranks clamp to bucket
// 0, +Inf and overflowing ranks to the maximum bucket; the mapping is
// monotone over the extended real order and never panics.
func (q RankQuantizer) BucketFloat(r float64) uint64 {
	if math.IsNaN(r) || r <= 0 {
		return 0
	}
	b := math.Floor(r / float64(q.width()))
	// 1<<64 - 1 is not exactly representable; everything at or above
	// 2^64 clamps to the top bucket.
	if b >= float64(1<<63)*2 {
		return math.MaxUint64
	}
	return uint64(b)
}

// RankOf maps a bucket index back to the smallest rank in the bucket —
// the lower bound bucketed backends report from summary queries
// (MinRank). Saturates instead of wrapping on overflow.
func (q RankQuantizer) RankOf(bucket uint64) uint64 {
	w := q.width()
	if bucket > math.MaxUint64/w {
		return math.MaxUint64
	}
	return bucket * w
}
