package backend_test

import (
	"math"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// FuzzRankQuantizer checks the quantization adapter's contract over
// random ranks and bucket widths: the mapping never panics, is monotone
// in rank, collapses only ranks less than one width apart (so any
// dequeue-order inversion a bucketed backend introduces is bounded by
// the width), and RankOf returns a floor consistent with Bucket.
func FuzzRankQuantizer(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(1))
	f.Add(uint64(1<<20), uint64(1<<20)+37, uint64(256))
	f.Add(uint64(math.MaxUint64), uint64(math.MaxUint64)-1, uint64(3))
	f.Add(uint64(500), uint64(499), uint64(math.MaxUint64))

	f.Fuzz(func(t *testing.T, r1, r2 uint64, width uint64) {
		q := backend.RankQuantizer{Width: width}
		b1, b2 := q.Bucket(r1), q.Bucket(r2)
		if r1 <= r2 && b1 > b2 {
			t.Fatalf("width %d: Bucket not monotone: Bucket(%d)=%d > Bucket(%d)=%d", width, r1, b1, r2, b2)
		}
		if b1 == b2 {
			diff := r1 - r2
			if r2 > r1 {
				diff = r2 - r1
			}
			w := width
			if w == 0 {
				w = 1
			}
			if diff >= w {
				t.Fatalf("width %d: ranks %d and %d share bucket %d but differ by %d", width, r1, r2, b1, diff)
			}
		}
		// The bucket floor must map back into the same bucket and never
		// exceed the rank it quantized.
		if fl := q.RankOf(b1); fl != math.MaxUint64 && (q.Bucket(fl) != b1 || fl > r1) {
			t.Fatalf("width %d: RankOf(%d)=%d inconsistent with rank %d", width, b1, fl, r1)
		}
		// Float mapping agrees with the integer mapping on exactly
		// representable ranks and tolerates non-finite input.
		if r1 < 1<<53 {
			if fb := q.BucketFloat(float64(r1)); fb != b1 {
				t.Fatalf("width %d: BucketFloat(%d)=%d, Bucket=%d", width, r1, fb, b1)
			}
		}
		_ = q.BucketFloat(math.NaN())
		_ = q.BucketFloat(math.Inf(1))
		_ = q.BucketFloat(-1)
	})
}

// TestCFFSQuantizedInversionBound drives a quantized cFFS list with
// adversarial ranks and verifies the documented approximation bound:
// draining at a permissive time yields an order whose inversions are all
// within one bucket — any two swapped elements differ by less than the
// bucket width in rank.
func TestCFFSQuantizedInversionBound(t *testing.T) {
	for _, width := range []uint64{1, 16, 256, 4096} {
		rng := invLCG(42)
		const n = 512
		b := backend.NewCFFSListQuantized(n, backend.RankQuantizer{Width: width})
		for i := 0; i < n; i++ {
			ent := core.Entry{ID: uint32(i + 1), Rank: rng.next() % (1 << 16), SendTime: clock.Always}
			if err := b.Enqueue(ent); err != nil {
				t.Fatalf("width %d: enqueue %d: %v", width, i, err)
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		prev := uint64(0)
		for i := 0; i < n; i++ {
			e, ok := b.Dequeue(clock.Always)
			if !ok {
				t.Fatalf("width %d: drain stalled at %d", width, i)
			}
			if e.Rank+width <= prev {
				// An inversion wider than one bucket: quantization cannot
				// explain it, so it is a structural bug.
				t.Fatalf("width %d: dequeued rank %d after rank %d", width, e.Rank, prev)
			}
			if e.Rank > prev {
				prev = e.Rank
			}
		}
		if b.Len() != 0 {
			t.Fatalf("width %d: %d left after drain", width, b.Len())
		}
	}
}
