// The seq-aware shard-backend contract: the per-shard operation set the
// concurrent engine (internal/shard) actually drives, factored out of
// *core.List so ANY ordered-list organization — the paper-exact sublist
// structure, Eiffel-style cFFS buckets, future designs — can sit under
// the tournament, the flat-combining rings, the quarantine/salvage state
// machine, and the next-eligible index without touching any of them.
//
// The contract differs from Backend in three ways, all forced by what a
// sharded engine needs from its partitions:
//
//   - Seq stamping. The engine owns ONE global FIFO sequence and stamps
//     it into every insert (EnqueueSeq) and re-rank (UpdateRankSeq), so
//     equal-rank elements on different shards still dequeue in true
//     arrival order. A shard backend must place equal-rank elements by
//     the STAMPED sequence, not by arrival order at the shard — the
//     combining rings execute records out of publish order.
//   - Below-seq dequeues. The tournament peeks every contending shard
//     and extracts from the winner; DequeueBelowSeq fuses both into one
//     scan (extract only when the head's rank is strictly below the
//     runner-up bound, report it as a peek otherwise), and the returned
//     sequence breaks cross-shard equal-rank ties.
//   - Salvage/rebuild. Quarantine dumps a failing shard's contents WITH
//     their sequence numbers (SnapshotWithSeq) and later replays them
//     into a fresh instance via EnqueueSeq, so a rebuilt shard preserves
//     global FIFO order bit-for-bit. Stats() must report the core.Stats
//     datapath counters so the engine can carry them across incarnations.
//
// Every query must be side-effect free (the engine publishes lock-free
// summaries computed from MinRank/MinSendTime and calls them from read
// paths), and peek outcomes must charge no stats.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// ShardBackend is the contract one shard of the concurrent engine
// programs against. *core.List implements it natively; other
// organizations adapt to it (see cffs.go).
type ShardBackend interface {
	// EnqueueSeq inserts e with the engine-stamped FIFO sequence. Error
	// precedence matches core.List: ErrFull before ErrDuplicate.
	EnqueueSeq(e core.Entry, seq uint64) error
	// UpdateRankSeq atomically re-ranks id, restamping its FIFO position
	// with seq. It reports false when id is not queued.
	UpdateRankSeq(id uint32, rank uint64, sendTime clock.Time, seq uint64) bool
	// Dequeue extracts the smallest-(rank, seq) element eligible at now.
	Dequeue(now clock.Time) (core.Entry, bool)
	// DequeueRange is Dequeue restricted to IDs in [lo, hi] (§4.3).
	DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool)
	// DequeueFlow extracts id regardless of eligibility.
	DequeueFlow(id uint32) (core.Entry, bool)
	// DequeueBelowSeq locates the smallest-(rank, seq) eligible element
	// in one scan, extracts it only when its rank is strictly below
	// limit, and otherwise leaves it in place as a peek result (limit 0
	// is a pure peek). eligible reports whether the element exists (e and
	// seq valid); taken whether it was extracted. Peek outcomes must
	// charge no stats.
	DequeueBelowSeq(now clock.Time, limit uint64) (e core.Entry, seq uint64, eligible, taken bool)
	// DequeueRangeBelowSeq is DequeueBelowSeq restricted to IDs in
	// [lo, hi].
	DequeueRangeBelowSeq(now clock.Time, lo, hi uint32, limit uint64) (e core.Entry, seq uint64, eligible, taken bool)
	// MinRank is the shard summary the tournament prunes on: a lower
	// bound on the smallest queued rank, exact for exact backends, O(1).
	MinRank() (uint64, bool)
	// MinSendTime returns the exact smallest send_time across queued
	// elements.
	MinSendTime() (clock.Time, bool)
	// MaxRankEntrySeq returns the largest-(rank, seq) element — the
	// push-out victim cross-shard eviction compares (newest among equal
	// maximal ranks).
	MaxRankEntrySeq() (core.Entry, uint64, bool)
	// Contains reports whether id is currently queued.
	Contains(id uint32) bool
	// Len returns the number of queued elements.
	Len() int
	// Snapshot returns the queued entries in the backend's dequeue order.
	Snapshot() []core.Entry
	// SnapshotWithSeq is the quarantine salvage dump: every queued entry
	// with its stamped sequence, replayable via EnqueueSeq.
	SnapshotWithSeq() ([]core.Entry, []uint64)
	// Stats returns the accumulated core.Stats datapath counters. The
	// engine derives its operation counts from them (an UpdateRankSeq
	// must charge one FlowDequeue plus one Enqueue, like core.List) and
	// carries them across quarantine incarnations.
	Stats() core.Stats
	// CheckInvariants validates the backend's internal structure.
	CheckInvariants() error
}

// ShardConfig sizes one shard. Capacity is the hard bound the engine
// provisions every shard with (hash partitioning has no balance
// guarantee — any one shard may briefly hold everything); the expected
// steady-state occupancy is ~Capacity/K, which backends should size
// their hot structures for, growing transparently past it.
type ShardConfig struct {
	Capacity          int
	ExpectedOccupancy int
}

// ShardFactory constructs one shard backend; the engine calls it K times
// at construction and once per quarantine rebuild.
type ShardFactory func(cfg ShardConfig) ShardBackend

// --- Shard-backend registry ---
//
// Mirrors the Backend registry so engine construction can be
// parameterized by name (shard.NewNamed, the "sharded+<name>" top-level
// registrations, pieobench -backend) without linking package identities
// into every consumer.

var (
	shardRegMu    sync.RWMutex
	shardRegistry = map[string]ShardFactory{}
)

// RegisterShard binds name to a shard-backend factory. It panics on
// duplicates: two packages claiming one name is a wiring bug.
func RegisterShard(name string, factory ShardFactory) {
	shardRegMu.Lock()
	defer shardRegMu.Unlock()
	if _, dup := shardRegistry[name]; dup {
		panic(fmt.Sprintf("backend: shard backend %q registered twice", name))
	}
	shardRegistry[name] = factory
}

// ShardFactoryFor returns the factory registered under name.
func ShardFactoryFor(name string) (ShardFactory, error) {
	shardRegMu.RLock()
	factory := shardRegistry[name]
	shardRegMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("backend: unknown shard backend %q (have %v)", name, ShardNames())
	}
	return factory, nil
}

// NewShard constructs the shard backend registered under name.
func NewShard(name string, cfg ShardConfig) (ShardBackend, error) {
	factory, err := ShardFactoryFor(name)
	if err != nil {
		return nil, err
	}
	return factory(cfg), nil
}

// ShardNames returns the registered shard-backend names, sorted.
func ShardNames() []string {
	shardRegMu.RLock()
	defer shardRegMu.RUnlock()
	names := make([]string, 0, len(shardRegistry))
	for name := range shardRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// *core.List satisfies the contract natively — the adapter is the
// identity, so the engine running on "core" is bit-for-bit the welded
// implementation it replaced.
var _ ShardBackend = (*core.List)(nil)
