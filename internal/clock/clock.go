// Package clock provides the time sources used by PIEO schedulers.
//
// The PIEO primitive evaluates eligibility predicates of the form
// (t_current >= t_eligible) where t may be "any monotonic increasing
// function of time" (paper §3.1). This package supplies the two families
// the paper's algorithms use:
//
//   - a simulated wall clock measured in nanoseconds, advanced by the
//     discrete-event simulator (Token Bucket, RCSP, pacing), and
//   - a virtual clock in byte-times, advanced by the fair-queueing
//     algorithms themselves (WFQ, WF²Q+).
//
// Both are deliberately plain values rather than goroutine-backed tickers:
// scheduling experiments must be deterministic and reproducible, so time
// only moves when the simulation moves it.
package clock

import (
	"fmt"
	"sync/atomic"
)

// Time is an opaque monotonic tick. Algorithms choose its unit: the wall
// clock uses nanoseconds, virtual time uses scaled byte-times.
type Time uint64

// Never is a Time greater than every reachable tick. A send_time of Never
// encodes an eligibility predicate that is always false (paper §5.2).
const Never = Time(^uint64(0))

// Always is the zero Time. A send_time of Always encodes an eligibility
// predicate that is always true (paper §5.2).
const Always = Time(0)

// String formats t, special-casing the two predicate sentinels.
func (t Time) String() string {
	switch t {
	case Never:
		return "never"
	case Always:
		return "0"
	default:
		return fmt.Sprintf("%d", uint64(t))
	}
}

// Source is a monotonic time function read at dequeue. Implementations
// must never move backwards.
type Source interface {
	// Now returns the current tick.
	Now() Time
}

// Wall is a simulated wall clock in nanoseconds. The zero value is a clock
// at t=0, ready to use. It is advanced explicitly by the simulator.
type Wall struct {
	now Time
}

// Now returns the current simulated time.
func (w *Wall) Now() Time { return w.now }

// Advance moves the clock forward by d ticks.
func (w *Wall) Advance(d Time) { w.now += d }

// AdvanceTo moves the clock to t, clamping monotonically: a t in the
// past is ignored rather than rewinding the clock. The simulator event
// loop delivers events in order, so a backwards call only arises when
// independent wake sources (pacing hints, alarms) race to re-arm the
// same instant — a no-op is the Source-contract-preserving answer, where
// the old panic turned a benign stale hint into a crash.
func (w *Wall) AdvanceTo(t Time) {
	if t < w.now {
		return
	}
	w.now = t
}

// Virtual is the WFQ/WF²Q+ system virtual time V(t) (paper Fig 2(a)).
// It advances by the normalized service delivered, and jumps forward to
// the minimum start time among backlogged flows so that newly busy periods
// do not inherit stale virtual time. The zero value starts at V=0.
type Virtual struct {
	now Time
}

// Now returns the current virtual time.
func (v *Virtual) Now() Time { return v.now }

// OnTransmit advances virtual time by the transmission length x of the
// packet currently leaving the link, then applies the WF²Q+ floor:
// V(t+x) = max(V(t)+x, minStart), where minStart is the smallest virtual
// start time among backlogged flows (clock.Never when none are backlogged,
// in which case only the +x advance applies).
func (v *Virtual) OnTransmit(x Time, minStart Time) {
	v.now += x
	if minStart != Never && minStart > v.now {
		v.now = minStart
	}
}

// Set forces virtual time to t if t is ahead of the current value. Used
// when a busy period begins after an idle gap.
func (v *Virtual) Set(t Time) {
	if t > v.now {
		v.now = t
	}
}

// Fixed is a Source frozen at a constant tick, handy in tests.
type Fixed Time

// Now returns the fixed tick.
func (f Fixed) Now() Time { return Time(f) }

// Atomic is a Wall clock safe for concurrent advance and read — the
// supervision time source for circuit-breaker recovery under the -race
// chaos suites, where a driver goroutine moves time forward while
// worker goroutines read it inside engine operations. Like Wall it only
// moves when explicitly advanced, so storm schedules stay reproducible.
// The zero value is a clock at t=0, ready to use.
type Atomic struct {
	now atomic.Uint64
}

// Now returns the current tick.
func (a *Atomic) Now() Time { return Time(a.now.Load()) }

// Advance moves the clock forward by d ticks.
func (a *Atomic) Advance(d Time) { a.now.Add(uint64(d)) }

// AdvanceTo moves the clock to t, clamping monotonically like
// Wall.AdvanceTo: a CAS loop ignores targets at or behind the current
// tick, so racing re-arms can never rewind time.
func (a *Atomic) AdvanceTo(t Time) {
	for {
		cur := a.now.Load()
		if uint64(t) <= cur {
			return
		}
		if a.now.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}
