package clock

import (
	"testing"
	"testing/quick"
)

func TestWallZeroValue(t *testing.T) {
	var w Wall
	if got := w.Now(); got != 0 {
		t.Fatalf("zero Wall.Now() = %v, want 0", got)
	}
}

func TestWallAdvance(t *testing.T) {
	var w Wall
	w.Advance(120)
	w.Advance(30)
	if got := w.Now(); got != 150 {
		t.Fatalf("Now() = %v, want 150", got)
	}
}

func TestWallAdvanceTo(t *testing.T) {
	var w Wall
	w.AdvanceTo(1000)
	if got := w.Now(); got != 1000 {
		t.Fatalf("Now() = %v, want 1000", got)
	}
	w.AdvanceTo(1000) // same instant is allowed
	if got := w.Now(); got != 1000 {
		t.Fatalf("Now() = %v, want 1000 after no-op advance", got)
	}
}

func TestWallAdvanceToBackwardsNoOp(t *testing.T) {
	// A stale wake hint re-arming a past instant must clamp, not rewind
	// (and not crash): the Source contract is monotonicity.
	var w Wall
	w.AdvanceTo(50)
	w.AdvanceTo(49)
	if got := w.Now(); got != 50 {
		t.Fatalf("Now() = %v after backwards AdvanceTo, want 50", got)
	}
	w.AdvanceTo(0)
	if got := w.Now(); got != 50 {
		t.Fatalf("Now() = %v after AdvanceTo(0), want 50", got)
	}
	w.AdvanceTo(51)
	if got := w.Now(); got != 51 {
		t.Fatalf("Now() = %v, want 51 (forward still works)", got)
	}
}

func TestWallNeverEdge(t *testing.T) {
	// The top of the time domain: a clock driven to the Never sentinel
	// must stay there (Never is greater than every reachable tick, so
	// every subsequent AdvanceTo clamps) and an Advance past it must not
	// be reachable by contract — simulators advance BY bounded deltas or
	// TO event times, never past Never.
	var w Wall
	w.AdvanceTo(Never - 1)
	if got := w.Now(); got != Never-1 {
		t.Fatalf("Now() = %v, want Never-1", got)
	}
	w.AdvanceTo(Never)
	if got := w.Now(); got != Never {
		t.Fatalf("Now() = %v, want Never", got)
	}
	w.AdvanceTo(12345) // stale hint far in the past: clamped
	if got := w.Now(); got != Never {
		t.Fatalf("Now() = %v after stale AdvanceTo, want Never", got)
	}
}

func TestNeverSentinelArithmetic(t *testing.T) {
	// The sentinel ordering the eligibility predicate and the timing
	// wheel rely on: Always <= t <= Never for every t, with Never-k
	// still comparing below Never (no wraparound in the usable range).
	if !(Always < Never) {
		t.Fatalf("Always < Never must hold")
	}
	for _, k := range []Time{1, 2, 1 << 20} {
		if got := Never - k; got >= Never {
			t.Fatalf("Never-%d = %v wrapped above Never", k, got)
		}
		if got := Never - k + k; got != Never {
			t.Fatalf("Never-%d+%d = %v, want Never", k, k, got)
		}
	}
	a := Always // via a variable: the constant expression would not compile
	if got := a - 1; got != Never {
		// uint64 wraparound below zero lands exactly on Never — the
		// reason subtraction from Always is forbidden in scheduler code.
		t.Fatalf("Always-1 = %v, want Never (documented wraparound)", got)
	}
}

func TestVirtualOnTransmitAdvance(t *testing.T) {
	var v Virtual
	v.OnTransmit(10, Never) // no backlogged flows: only +x
	if got := v.Now(); got != 10 {
		t.Fatalf("Now() = %v, want 10", got)
	}
}

func TestVirtualOnTransmitFloor(t *testing.T) {
	var v Virtual
	// min start time ahead of V+x: jump to it.
	v.OnTransmit(5, 42)
	if got := v.Now(); got != 42 {
		t.Fatalf("Now() = %v, want 42 (floor to min start)", got)
	}
	// min start time behind V+x: plain advance wins.
	v.OnTransmit(8, 5)
	if got := v.Now(); got != 50 {
		t.Fatalf("Now() = %v, want 50", got)
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	var v Virtual
	v.Set(100)
	v.Set(10)
	if got := v.Now(); got != 100 {
		t.Fatalf("Now() = %v, want 100 (Set must not move backwards)", got)
	}
}

func TestFixedSource(t *testing.T) {
	var s Source = Fixed(77)
	if got := s.Now(); got != 77 {
		t.Fatalf("Fixed.Now() = %v, want 77", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Always, "0"},
		{Never, "never"},
		{Time(123), "123"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

// Property: virtual time is monotonic under any sequence of OnTransmit
// calls, regardless of the (possibly stale) min-start values supplied.
func TestVirtualMonotonicProperty(t *testing.T) {
	f := func(steps []struct {
		X        uint16
		MinStart uint32
	}) bool {
		var v Virtual
		prev := v.Now()
		for _, s := range steps {
			v.OnTransmit(Time(s.X), Time(s.MinStart))
			if v.Now() < prev {
				return false
			}
			prev = v.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: wall clock is monotonic under any mix of Advance deltas.
func TestWallMonotonicProperty(t *testing.T) {
	f := func(deltas []uint16) bool {
		var w Wall
		prev := w.Now()
		for _, d := range deltas {
			w.Advance(Time(d))
			if w.Now() < prev {
				return false
			}
			prev = w.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
