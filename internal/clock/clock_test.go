package clock

import (
	"testing"
	"testing/quick"
)

func TestWallZeroValue(t *testing.T) {
	var w Wall
	if got := w.Now(); got != 0 {
		t.Fatalf("zero Wall.Now() = %v, want 0", got)
	}
}

func TestWallAdvance(t *testing.T) {
	var w Wall
	w.Advance(120)
	w.Advance(30)
	if got := w.Now(); got != 150 {
		t.Fatalf("Now() = %v, want 150", got)
	}
}

func TestWallAdvanceTo(t *testing.T) {
	var w Wall
	w.AdvanceTo(1000)
	if got := w.Now(); got != 1000 {
		t.Fatalf("Now() = %v, want 1000", got)
	}
	w.AdvanceTo(1000) // same instant is allowed
	if got := w.Now(); got != 1000 {
		t.Fatalf("Now() = %v, want 1000 after no-op advance", got)
	}
}

func TestWallAdvanceToBackwardsPanics(t *testing.T) {
	var w Wall
	w.AdvanceTo(50)
	defer func() {
		if recover() == nil {
			t.Fatalf("AdvanceTo backwards did not panic")
		}
	}()
	w.AdvanceTo(49)
}

func TestVirtualOnTransmitAdvance(t *testing.T) {
	var v Virtual
	v.OnTransmit(10, Never) // no backlogged flows: only +x
	if got := v.Now(); got != 10 {
		t.Fatalf("Now() = %v, want 10", got)
	}
}

func TestVirtualOnTransmitFloor(t *testing.T) {
	var v Virtual
	// min start time ahead of V+x: jump to it.
	v.OnTransmit(5, 42)
	if got := v.Now(); got != 42 {
		t.Fatalf("Now() = %v, want 42 (floor to min start)", got)
	}
	// min start time behind V+x: plain advance wins.
	v.OnTransmit(8, 5)
	if got := v.Now(); got != 50 {
		t.Fatalf("Now() = %v, want 50", got)
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	var v Virtual
	v.Set(100)
	v.Set(10)
	if got := v.Now(); got != 100 {
		t.Fatalf("Now() = %v, want 100 (Set must not move backwards)", got)
	}
}

func TestFixedSource(t *testing.T) {
	var s Source = Fixed(77)
	if got := s.Now(); got != 77 {
		t.Fatalf("Fixed.Now() = %v, want 77", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Always, "0"},
		{Never, "never"},
		{Time(123), "123"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

// Property: virtual time is monotonic under any sequence of OnTransmit
// calls, regardless of the (possibly stale) min-start values supplied.
func TestVirtualMonotonicProperty(t *testing.T) {
	f := func(steps []struct {
		X        uint16
		MinStart uint32
	}) bool {
		var v Virtual
		prev := v.Now()
		for _, s := range steps {
			v.OnTransmit(Time(s.X), Time(s.MinStart))
			if v.Now() < prev {
				return false
			}
			prev = v.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: wall clock is monotonic under any mix of Advance deltas.
func TestWallMonotonicProperty(t *testing.T) {
	f := func(deltas []uint16) bool {
		var w Wall
		prev := w.Now()
		for _, d := range deltas {
			w.Advance(Time(d))
			if w.Now() < prev {
				return false
			}
			prev = w.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
