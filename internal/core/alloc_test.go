package core_test

import (
	"math/rand"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// TestSteadyStateZeroAllocs is the allocation-free contract made
// executable: once the list has reached steady-state occupancy, the
// Enqueue/Dequeue op path performs zero heap allocations — the sublist
// stores come from the New-time arena, the flow map was pre-sized, and
// no scratch slices grow.
func TestSteadyStateZeroAllocs(t *testing.T) {
	const n = 1 << 13
	l := core.New(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n/2; i++ {
		if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}); err != nil {
			t.Fatal(err)
		}
	}
	id := uint32(n / 2)
	// Warm through several full ID cycles so the flow map has seen every
	// key it will ever hold and all storage high-water marks are reached.
	for i := 0; i < 4*n; i++ {
		id = (id + 1) % n
		if l.Enqueue(core.Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}) == nil {
			l.Dequeue(0)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		id = (id + 1) % n
		// A duplicate ID (the random-rank dequeue order can leave any
		// resident alive when its ID comes around again) skips the
		// balancing dequeue so occupancy holds; the failed enqueue is
		// itself part of the allocation-free contract.
		if l.Enqueue(core.Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}) == nil {
			l.Dequeue(0)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state enqueue/dequeue allocated %v allocs/op, want 0", allocs)
	}
}

// TestBatchZeroAllocs: the batch APIs with caller-provided buffers stay
// allocation-free too.
func TestBatchZeroAllocs(t *testing.T) {
	const n = 1 << 12
	const batch = 64
	l := core.New(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n/2; i++ {
		if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}); err != nil {
			t.Fatal(err)
		}
	}
	in := make([]core.Entry, batch)
	out := make([]core.Entry, 0, batch)
	id := uint32(n / 2)
	fill := func() {
		for j := range in {
			id = (id + 1) % n
			in[j] = core.Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}
		}
	}
	for i := 0; i < 4*n/batch; i++ { // warm the ID cycle
		fill()
		l.EnqueueBatch(in)
		out = l.DequeueUpTo(0, batch, out[:0])
	}
	allocs := testing.AllocsPerRun(200, func() {
		fill()
		l.EnqueueBatch(in)
		out = l.DequeueUpTo(0, batch, out[:0])
	})
	if allocs != 0 {
		t.Fatalf("batch enqueue/dequeue allocated %v allocs/op, want 0", allocs)
	}
}

// TestBatchStatsParity drives two identical lists through the same
// logical operation stream — one with single ops, one with the batch
// APIs — and requires identical outputs AND identical hardware Stats:
// the batch path must charge exactly what the same operations issued one
// at a time would (the hardware has no batch datapath).
func TestBatchStatsParity(t *testing.T) {
	const capacity = 257
	single := core.New(capacity)
	batched := core.New(capacity)
	rng := rand.New(rand.NewSource(3))
	nextID := uint32(0)

	for step := 0; step < 4000; step++ {
		if rng.Intn(2) == 0 {
			es := make([]core.Entry, rng.Intn(7)+1)
			for i := range es {
				id := nextID
				if nextID > 0 && rng.Intn(4) == 0 {
					id = uint32(rng.Intn(int(nextID)))
				} else {
					nextID++
				}
				es[i] = core.Entry{ID: id, Rank: uint64(rng.Intn(32)), SendTime: clock.Time(rng.Intn(8))}
			}
			gotN, gotErr := batched.EnqueueBatch(es)
			wantN := 0
			var wantErr error
			for _, e := range es {
				if err := single.Enqueue(e); err != nil {
					if wantErr == nil {
						wantErr = err
					}
					continue
				}
				wantN++
			}
			if gotN != wantN || gotErr != wantErr {
				t.Fatalf("step %d: EnqueueBatch = %d,%v, singles %d,%v", step, gotN, gotErr, wantN, wantErr)
			}
		} else {
			now := clock.Time(rng.Intn(8))
			k := rng.Intn(7) + 1
			got := batched.DequeueUpTo(now, k, nil)
			want := make([]core.Entry, 0, k)
			for len(want) < k {
				e, ok := single.Dequeue(now)
				if !ok {
					break
				}
				want = append(want, e)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: DequeueUpTo(%v,%d) len %d, singles %d", step, now, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: DequeueUpTo[%d] = %v, singles %v", step, i, got[i], want[i])
				}
			}
		}
		if gs, ss := batched.Stats(), single.Stats(); gs != ss {
			t.Fatalf("step %d: batch stats %+v diverged from single-op stats %+v", step, gs, ss)
		}
	}
	if err := batched.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
