package core

import "pieo/internal/clock"

// EnqueueBatch inserts es in order, exactly as the equivalent sequence of
// Enqueue calls would: every entry is attempted even after a failure, the
// FIFO tie-break sequence advances per attempted-and-accepted entry, and
// Stats charges each insert as an individual 4-cycle hardware operation
// (the hardware has no batch datapath; batching is a software-side
// amortization of call overhead only). It returns the number of entries
// accepted and the first error encountered, nil when all were accepted.
func (l *List) EnqueueBatch(es []Entry) (int, error) {
	accepted := 0
	var firstErr error
	for i := range es {
		if err := l.Enqueue(es[i]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted++
	}
	return accepted, firstErr
}

// DequeueUpTo extracts up to k eligible elements at now in dequeue order,
// appending them to out (which may be nil) and returning the extended
// slice; it stops early when no element is eligible. Passing a buffer
// with capacity k keeps the call allocation-free.
//
// The result is identical to k sequential Dequeue(now) calls — same
// elements, same order, same Stats — but the eligibility scan resumes
// from just before the previous extraction point instead of the head:
// positions left of a miss hold only ineligible sublists, extraction
// never makes an earlier position eligible (removing an element can only
// raise a cached smallest send_time), and the Invariant-1 repair shifts
// the scanned prefix left by at most one slot. The failed probe that
// terminates the batch is a real empty dequeue and is charged as one.
func (l *List) DequeueUpTo(now clock.Time, k int, out []Entry) []Entry {
	hint := 0
	for ; k > 0; k-- {
		e, pos, ok := l.dequeueFrom(now, hint)
		if !ok {
			break
		}
		out = append(out, e)
		if pos > 0 {
			hint = pos - 1
		}
	}
	return out
}
