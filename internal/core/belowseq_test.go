package core_test

import (
	"math/rand"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// TestEnqueueSeqOutOfOrderSameRank is the regression test for the
// seq-aware sublist selection: same-rank elements arriving with
// DESCENDING sequence numbers must still land in ascending-seq positions
// even when the run of equal ranks spans multiple sublists. (The
// flat-combining drain executes ring records in ticket order, not
// sequence order, so out-of-order stamped inserts are a live input, not
// a theoretical one.) Before smallestSeq joined the pointer-array
// metadata, the rank-only binary search dumped every equal-rank insert
// at the END of the run regardless of its stamp, violating global FIFO.
func TestEnqueueSeqOutOfOrderSameRank(t *testing.T) {
	const n = 40
	l := core.NewWithSublistSize(64, 4) // rank run spans ~10 sublists
	for i := 0; i < n; i++ {
		// IDs ascend, stamped sequences descend.
		e := core.Entry{ID: uint32(i + 1), Rank: 7, SendTime: clock.Always}
		if err := l.EnqueueSeq(e, uint64(n-i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("invariants after insert %d: %v", i, err)
		}
	}
	// Drain order must follow the stamps: seq 1..n, i.e. IDs n..1.
	for want := uint32(n); want >= 1; want-- {
		ent, ok := l.Dequeue(clock.Always)
		if !ok {
			t.Fatalf("list dried up waiting for id %d", want)
		}
		if ent.ID != want {
			t.Fatalf("dequeued id %d, want %d (stamped FIFO violated)", ent.ID, want)
		}
	}
}

// TestEnqueueSeqShuffledSameRank drives the same property with random
// stamp orders and multiple equal-rank runs.
func TestEnqueueSeqShuffledSameRank(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		l := core.NewWithSublistSize(128, 5)
		n := 20 + rng.Intn(60)
		perm := rng.Perm(n)
		for i, p := range perm {
			e := core.Entry{ID: uint32(i + 1), Rank: uint64(p % 3), SendTime: clock.Always}
			if err := l.EnqueueSeq(e, uint64(p+1)); err != nil {
				t.Fatalf("trial %d enqueue %d: %v", trial, i, err)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("trial %d invariants: %v", trial, err)
		}
		lastRank, lastSeq := uint64(0), uint64(0)
		_, seqs := l.SnapshotWithSeq()
		ents := l.Snapshot()
		for i := range ents {
			if ents[i].Rank < lastRank || (ents[i].Rank == lastRank && seqs[i] < lastSeq) {
				t.Fatalf("trial %d: snapshot out of (rank, seq) order at %d", trial, i)
			}
			lastRank, lastSeq = ents[i].Rank, seqs[i]
		}
	}
}

// TestDequeueBelowSeqSemantics pins the fused peek-or-extract contract:
// limit 0 is a pure peek, a head at or above the limit peeks, a head
// strictly below it extracts, and an ineligible list reports
// eligible=false.
func TestDequeueBelowSeqSemantics(t *testing.T) {
	l := core.New(64)
	if _, _, elig, taken := l.DequeueBelowSeq(10, ^uint64(0)); elig || taken {
		t.Fatalf("empty list: elig=%v taken=%v, want false/false", elig, taken)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.EnqueueSeq(core.Entry{ID: 1, Rank: 5, SendTime: 100}, 1))
	if _, _, elig, _ := l.DequeueBelowSeq(10, ^uint64(0)); elig {
		t.Fatal("future-only list reported an eligible head")
	}
	must(l.EnqueueSeq(core.Entry{ID: 2, Rank: 8, SendTime: 0}, 2))

	ent, seq, elig, taken := l.DequeueBelowSeq(10, 0)
	if !elig || taken || ent.ID != 2 || seq != 2 {
		t.Fatalf("limit 0: ent=%+v seq=%d elig=%v taken=%v, want peek of id 2", ent, seq, elig, taken)
	}
	if l.Len() != 2 {
		t.Fatalf("pure peek mutated the list: len %d", l.Len())
	}
	if _, _, _, taken := l.DequeueBelowSeq(10, 8); taken {
		t.Fatal("head rank 8 extracted under limit 8 (limit must be strict)")
	}
	ent, _, _, taken = l.DequeueBelowSeq(10, 9)
	if !taken || ent.ID != 2 {
		t.Fatalf("limit 9: ent=%+v taken=%v, want extraction of id 2", ent, taken)
	}
	if l.Len() != 1 {
		t.Fatalf("extraction left len %d, want 1", l.Len())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestDequeueBelowSeqStatsParity drives two identical lists through the
// same workload — one with Dequeue, one with DequeueBelowSeq at an
// unbounded limit — and requires identical §5 hardware counters: the
// fused path must charge exactly what the peek+dequeue pair it replaces
// charged for taken elements, and nothing for misses.
func TestDequeueBelowSeqStatsParity(t *testing.T) {
	build := func() *core.List {
		l := core.NewWithSublistSize(256, 6)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			e := core.Entry{ID: uint32(i + 1), Rank: uint64(rng.Intn(50)), SendTime: clock.Time(rng.Intn(8))}
			if err := l.EnqueueSeq(e, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	a, b := build(), build()
	for now := clock.Time(0); now < 10; now++ {
		// A miss is where the two paths intentionally differ (Dequeue
		// charges an empty scan; the fused peek is free, matching the
		// PeekSeq probe it replaces), so the stats-free Peek guards the
		// loop and the fused path's miss-freeness is asserted directly.
		before := b.Stats()
		if _, _, elig, taken := b.DequeueBelowSeq(now, 0); taken || (b.Stats() != before && !elig) {
			t.Fatalf("pure peek at now=%v mutated state or charged stats", now)
		}
		for {
			if _, ok := a.Peek(now); !ok {
				break
			}
			ea, oka := a.Dequeue(now)
			eb, _, _, okb := b.DequeueBelowSeq(now, ^uint64(0))
			if oka != okb || (oka && ea != eb) {
				t.Fatalf("divergence at now=%v: %v/%+v vs %v/%+v", now, oka, ea, okb, eb)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("hardware counters diverge:\n dequeue:  %+v\n belowseq: %+v", a.Stats(), b.Stats())
	}
	miss := b.Stats()
	if _, _, _, taken := b.DequeueBelowSeq(0, ^uint64(0)); taken || b.Stats() != miss {
		t.Fatal("fused miss extracted or charged stats")
	}
}

// TestDequeueRangeBelowSeqStatsParity is the ranged analogue.
func TestDequeueRangeBelowSeqStatsParity(t *testing.T) {
	build := func() *core.List {
		l := core.NewWithSublistSize(256, 6)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 200; i++ {
			e := core.Entry{ID: uint32(rng.Intn(400) + 1), Rank: uint64(rng.Intn(50)), SendTime: clock.Time(rng.Intn(8))}
			_ = l.EnqueueSeq(e, uint64(i+1)) // duplicates rejected on both sides alike
		}
		return l
	}
	a, b := build(), build()
	const lo, hi = 50, 250
	for now := clock.Time(0); now < 10; now++ {
		for {
			if _, ok := a.PeekRange(now, lo, hi); !ok {
				break
			}
			ea, oka := a.DequeueRange(now, lo, hi)
			eb, _, _, okb := b.DequeueRangeBelowSeq(now, lo, hi, ^uint64(0))
			if oka != okb || (oka && ea != eb) {
				t.Fatalf("divergence at now=%v: %v/%+v vs %v/%+v", now, oka, ea, okb, eb)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("hardware counters diverge:\n range:    %+v\n belowseq: %+v", a.Stats(), b.Stats())
	}
	miss := b.Stats()
	if _, _, _, taken := b.DequeueRangeBelowSeq(0, lo, hi, ^uint64(0)); taken || b.Stats() != miss {
		t.Fatal("fused ranged miss extracted or charged stats")
	}
}
