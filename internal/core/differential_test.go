package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/refmodel"
)

// opKind enumerates the randomized operations of the differential fuzzer.
type opKind int

const (
	opEnqueue opKind = iota
	opDequeue
	opDequeueFlow
	opDequeueRange
	opMinSendTime
	opPeek
	numOpKinds
)

// runDifferential drives the sublist implementation and the flat
// reference model with an identical random operation stream and fails on
// the first divergence or invariant violation.
func runDifferential(t *testing.T, seed int64, capacity, steps int, rankSpace uint64, timeSpace int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	impl := core.New(capacity)
	ref := refmodel.New(capacity)
	nextID := uint32(0)

	for step := 0; step < steps; step++ {
		switch opKind(rng.Intn(int(numOpKinds))) {
		case opEnqueue:
			e := core.Entry{
				ID:       nextID,
				Rank:     uint64(rng.Int63n(int64(rankSpace))),
				SendTime: clock.Time(rng.Intn(timeSpace)),
			}
			if rng.Intn(16) == 0 {
				e.SendTime = clock.Never
			}
			nextID++
			gotErr := impl.Enqueue(e)
			wantErr := ref.Enqueue(e)
			if gotErr != wantErr {
				t.Fatalf("seed %d step %d: Enqueue(%v) err = %v, ref %v", seed, step, e, gotErr, wantErr)
			}
		case opDequeue:
			now := clock.Time(rng.Intn(timeSpace))
			got, gotOK := impl.Dequeue(now)
			want, wantOK := ref.Dequeue(now)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: Dequeue(%v) = %v,%v, ref %v,%v", seed, step, now, got, gotOK, want, wantOK)
			}
		case opDequeueFlow:
			var id uint32
			if nextID > 0 {
				id = uint32(rng.Intn(int(nextID)))
			}
			got, gotOK := impl.DequeueFlow(id)
			want, wantOK := ref.DequeueFlow(id)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: DequeueFlow(%d) = %v,%v, ref %v,%v", seed, step, id, got, gotOK, want, wantOK)
			}
		case opDequeueRange:
			now := clock.Time(rng.Intn(timeSpace))
			lo := uint32(rng.Intn(int(nextID) + 1))
			hi := lo + uint32(rng.Intn(int(nextID)+1))
			got, gotOK := impl.DequeueRange(now, lo, hi)
			want, wantOK := ref.DequeueRange(now, lo, hi)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: DequeueRange(%v,%d,%d) = %v,%v, ref %v,%v",
					seed, step, now, lo, hi, got, gotOK, want, wantOK)
			}
		case opMinSendTime:
			got, gotOK := impl.MinSendTime()
			want, wantOK := ref.MinSendTime()
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("seed %d step %d: MinSendTime = %v,%v, ref %v,%v", seed, step, got, gotOK, want, wantOK)
			}
		case opPeek:
			now := clock.Time(rng.Intn(timeSpace))
			got, gotOK := impl.Peek(now)
			want, wantOK := ref.Peek(now)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: Peek(%v) = %v,%v, ref %v,%v", seed, step, now, got, gotOK, want, wantOK)
			}
		}
		if impl.Len() != ref.Len() {
			t.Fatalf("seed %d step %d: Len = %d, ref %d", seed, step, impl.Len(), ref.Len())
		}
		if err := impl.CheckInvariants(); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
	}
	// Final state must match entry for entry.
	gotSnap, wantSnap := impl.Snapshot(), ref.Snapshot()
	if len(gotSnap) != len(wantSnap) {
		t.Fatalf("seed %d: snapshot len %d, ref %d", seed, len(gotSnap), len(wantSnap))
	}
	for i := range gotSnap {
		if gotSnap[i] != wantSnap[i] {
			t.Fatalf("seed %d: snapshot[%d] = %v, ref %v", seed, i, gotSnap[i], wantSnap[i])
		}
	}
}

func TestDifferentialSmallList(t *testing.T) {
	// Tiny capacity stresses the full/empty sublist edge cases.
	for seed := int64(0); seed < 20; seed++ {
		runDifferential(t, seed, 9, 3000, 8, 8)
	}
}

func TestDifferentialNarrowRanks(t *testing.T) {
	// Few distinct ranks: constant FIFO tie-breaking pressure.
	for seed := int64(100); seed < 110; seed++ {
		runDifferential(t, seed, 64, 4000, 2, 4)
	}
}

func TestDifferentialMediumList(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		runDifferential(t, seed, 256, 6000, 1<<16, 64)
	}
}

func TestDifferentialLargeList(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential run")
	}
	runDifferential(t, 7, 4096, 30000, 1<<16, 256)
}

func TestDifferentialAlwaysEligible(t *testing.T) {
	// timeSpace 1 forces every send_time to 0: pure priority-queue
	// behavior (the §4.5 PIFO-emulation mode).
	for seed := int64(300); seed < 306; seed++ {
		runDifferential(t, seed, 128, 4000, 1<<12, 1)
	}
}

// Property: for any batch of entries, draining the list at a permissive
// time yields them in nondecreasing rank order with FIFO ties.
func TestDrainOrderProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		if len(ranks) == 0 {
			return true
		}
		if len(ranks) > 512 {
			ranks = ranks[:512]
		}
		l := core.New(len(ranks))
		for i, r := range ranks {
			if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(r), SendTime: clock.Always}); err != nil {
				return false
			}
		}
		prevRank := uint64(0)
		prevIDByRank := make(map[uint64]uint32)
		for range ranks {
			e, ok := l.Dequeue(0)
			if !ok || e.Rank < prevRank {
				return false
			}
			if last, seen := prevIDByRank[e.Rank]; seen && e.ID < last {
				return false // FIFO violated among equal ranks
			}
			prevIDByRank[e.Rank] = e.ID
			prevRank = e.Rank
		}
		_, ok := l.Dequeue(0)
		return !ok && l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: an element is never dequeued before its send_time, and
// always dequeued once time passes it.
func TestEligibilityProperty(t *testing.T) {
	f := func(sends []uint8) bool {
		if len(sends) == 0 {
			return true
		}
		if len(sends) > 256 {
			sends = sends[:256]
		}
		l := core.New(len(sends))
		for i, s := range sends {
			if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(i), SendTime: clock.Time(s)}); err != nil {
				return false
			}
		}
		for now := clock.Time(0); now <= 255; now++ {
			for {
				e, ok := l.Dequeue(now)
				if !ok {
					break
				}
				if e.SendTime > now {
					return false // dequeued early
				}
			}
		}
		return l.Len() == 0 // everything eligible by 255 must be gone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
