package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/refmodel"
	"pieo/internal/shard"
)

// opKind enumerates the randomized operations of the differential fuzzer.
type opKind int

const (
	opEnqueue opKind = iota
	opDequeue
	opDequeueFlow
	opDequeueRange
	opMinSendTime
	opPeek
	opEnqueueBatch
	opDequeueUpTo
	numOpKinds
)

// exactBackends enumerates the backends that promise bit-for-bit §3.1
// semantics under single-threaded use, so one harness can differentially
// test all of them against the flat reference model: the paper-exact
// sublist list, the sharded engine at K=1 (single shard, pure
// pass-through) and K=8 (hash partitioning + tournament dequeue, which
// must still be quiescent-exact), and K=8 with every operation forced
// through the flat-combining ring path (publish → self-drain), which
// must be quiescent-exact too — combined execution is the same code
// under the same lock. The cFFS bucket queue runs at width 1 (one rank
// per bucket, seq-sorted chains), where it promises exactness both
// standalone and as the sharded engine's shard backend.
func exactBackends(capacity int) map[string]backend.Backend {
	fc := shard.New(capacity, 8)
	fc.SetForceRing(true)
	cffsSharded, err := shard.NewNamed(capacity, 8, "cffs")
	if err != nil {
		panic(err)
	}
	return map[string]backend.Backend{
		"core":         backend.NewCoreList(capacity),
		"shard-1":      shard.New(capacity, 1),
		"shard-8":      shard.New(capacity, 8),
		"shard-8-fc":   fc,
		"cffs":         backend.NewCFFSList(capacity),
		"shard-8+cffs": cffsSharded,
	}
}

// runDifferential drives the sublist implementation and the flat
// reference model with an identical random operation stream and fails on
// the first divergence or invariant violation.
func runDifferential(t *testing.T, seed int64, capacity, steps int, rankSpace uint64, timeSpace int) {
	t.Helper()
	runDifferentialOn(t, backend.NewCoreList(capacity), seed, capacity, steps, rankSpace, timeSpace, true)
}

// runDifferentialOn is runDifferential over any exact Backend. allowNever
// controls whether a sixteenth of the enqueues carry an always-false
// predicate; disable it for backends (PIFO) that are exact only when
// every element is eligible.
func runDifferentialOn(t *testing.T, impl backend.Backend, seed int64, capacity, steps int, rankSpace uint64, timeSpace int, allowNever bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := refmodel.New(capacity)
	nextID := uint32(0)

	for step := 0; step < steps; step++ {
		switch opKind(rng.Intn(int(numOpKinds))) {
		case opEnqueue:
			e := core.Entry{
				ID:       nextID,
				Rank:     uint64(rng.Int63n(int64(rankSpace))),
				SendTime: clock.Time(rng.Intn(timeSpace)),
			}
			if rng.Intn(16) == 0 && allowNever {
				e.SendTime = clock.Never
			}
			nextID++
			gotErr := impl.Enqueue(e)
			wantErr := ref.Enqueue(e)
			if gotErr != wantErr {
				t.Fatalf("seed %d step %d: Enqueue(%v) err = %v, ref %v", seed, step, e, gotErr, wantErr)
			}
		case opDequeue:
			now := clock.Time(rng.Intn(timeSpace))
			got, gotOK := impl.Dequeue(now)
			want, wantOK := ref.Dequeue(now)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: Dequeue(%v) = %v,%v, ref %v,%v", seed, step, now, got, gotOK, want, wantOK)
			}
		case opDequeueFlow:
			var id uint32
			if nextID > 0 {
				id = uint32(rng.Intn(int(nextID)))
			}
			got, gotOK := impl.DequeueFlow(id)
			want, wantOK := ref.DequeueFlow(id)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: DequeueFlow(%d) = %v,%v, ref %v,%v", seed, step, id, got, gotOK, want, wantOK)
			}
		case opDequeueRange:
			now := clock.Time(rng.Intn(timeSpace))
			lo := uint32(rng.Intn(int(nextID) + 1))
			hi := lo + uint32(rng.Intn(int(nextID)+1))
			got, gotOK := impl.DequeueRange(now, lo, hi)
			want, wantOK := ref.DequeueRange(now, lo, hi)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: DequeueRange(%v,%d,%d) = %v,%v, ref %v,%v",
					seed, step, now, lo, hi, got, gotOK, want, wantOK)
			}
		case opMinSendTime:
			got, gotOK := impl.MinSendTime()
			want, wantOK := ref.MinSendTime()
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("seed %d step %d: MinSendTime = %v,%v, ref %v,%v", seed, step, got, gotOK, want, wantOK)
			}
		case opPeek:
			now := clock.Time(rng.Intn(timeSpace))
			p, canPeek := impl.(backend.Peeker)
			if !canPeek {
				break
			}
			got, gotOK := p.Peek(now)
			want, wantOK := ref.Peek(now)
			if gotOK != wantOK || got != want {
				t.Fatalf("seed %d step %d: Peek(%v) = %v,%v, ref %v,%v", seed, step, now, got, gotOK, want, wantOK)
			}
		case opEnqueueBatch:
			// Batch insert through the backend's native batch path (or the
			// fallback loop), against per-entry inserts on the reference.
			// A quarter of the entries reuse a live-or-dead ID so batches
			// regularly carry mid-batch duplicates.
			es := make([]core.Entry, rng.Intn(6)+1)
			for i := range es {
				id := nextID
				if nextID > 0 && rng.Intn(4) == 0 {
					id = uint32(rng.Intn(int(nextID)))
				} else {
					nextID++
				}
				es[i] = core.Entry{
					ID:       id,
					Rank:     uint64(rng.Int63n(int64(rankSpace))),
					SendTime: clock.Time(rng.Intn(timeSpace)),
				}
				if rng.Intn(16) == 0 && allowNever {
					es[i].SendTime = clock.Never
				}
			}
			gotN, gotErr := backend.EnqueueBatch(impl, es)
			wantN := 0
			var wantErr error
			for _, e := range es {
				if err := ref.Enqueue(e); err != nil {
					if wantErr == nil {
						wantErr = err
					}
					continue
				}
				wantN++
			}
			if gotN != wantN || gotErr != wantErr {
				t.Fatalf("seed %d step %d: EnqueueBatch(%v) = %d,%v, ref %d,%v",
					seed, step, es, gotN, gotErr, wantN, wantErr)
			}
		case opDequeueUpTo:
			now := clock.Time(rng.Intn(timeSpace))
			k := rng.Intn(6) + 1
			got := backend.DequeueUpTo(impl, now, k, nil)
			want := make([]core.Entry, 0, k)
			for len(want) < k {
				e, ok := ref.Dequeue(now)
				if !ok {
					break
				}
				want = append(want, e)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d: DequeueUpTo(%v,%d) returned %d entries, ref %d",
					seed, step, now, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d: DequeueUpTo(%v,%d)[%d] = %v, ref %v",
						seed, step, now, k, i, got[i], want[i])
				}
			}
		}
		if impl.Len() != ref.Len() {
			t.Fatalf("seed %d step %d: Len = %d, ref %d", seed, step, impl.Len(), ref.Len())
		}
		if err := backend.CheckInvariants(impl); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
	}
	// Final state must match entry for entry.
	gotSnap, wantSnap := impl.Snapshot(), ref.Snapshot()
	if len(gotSnap) != len(wantSnap) {
		t.Fatalf("seed %d: snapshot len %d, ref %d", seed, len(gotSnap), len(wantSnap))
	}
	for i := range gotSnap {
		if gotSnap[i] != wantSnap[i] {
			t.Fatalf("seed %d: snapshot[%d] = %v, ref %v", seed, i, gotSnap[i], wantSnap[i])
		}
	}
}

func TestDifferentialSmallList(t *testing.T) {
	// Tiny capacity stresses the full/empty sublist edge cases.
	for seed := int64(0); seed < 20; seed++ {
		runDifferential(t, seed, 9, 3000, 8, 8)
	}
}

func TestDifferentialNarrowRanks(t *testing.T) {
	// Few distinct ranks: constant FIFO tie-breaking pressure.
	for seed := int64(100); seed < 110; seed++ {
		runDifferential(t, seed, 64, 4000, 2, 4)
	}
}

func TestDifferentialMediumList(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		runDifferential(t, seed, 256, 6000, 1<<16, 64)
	}
}

func TestDifferentialLargeList(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential run")
	}
	runDifferential(t, 7, 4096, 30000, 1<<16, 256)
}

func TestDifferentialAlwaysEligible(t *testing.T) {
	// timeSpace 1 forces every send_time to 0: pure priority-queue
	// behavior (the §4.5 PIFO-emulation mode).
	for seed := int64(300); seed < 306; seed++ {
		runDifferential(t, seed, 128, 4000, 1<<12, 1)
	}
}

// TestDifferentialBackends replays the randomized operation stream over
// every exact backend — the paper list plus the sharded engine at K=1
// and K=8. The sharded runs are the quiescent-exactness contract of
// internal/shard made executable: under single-threaded use the
// tournament dequeue, cross-shard FIFO sequencing, and capacity
// accounting must be indistinguishable from one flat list.
func TestDifferentialBackends(t *testing.T) {
	configs := []struct {
		capacity, steps int
		rankSpace       uint64
		timeSpace       int
	}{
		{9, 2000, 8, 8},  // tiny: constant full/empty pressure
		{64, 3000, 2, 4}, // narrow ranks: FIFO tie-breaks cross shards
		{256, 4000, 1 << 16, 64},
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 4; seed++ {
			for name, impl := range exactBackends(cfg.capacity) {
				impl, seed, cfg := impl, seed, cfg
				t.Run(fmt.Sprintf("%s/cap%d/seed%d", name, cfg.capacity, seed), func(t *testing.T) {
					runDifferentialOn(t, impl, seed, cfg.capacity, cfg.steps, cfg.rankSpace, cfg.timeSpace, true)
				})
			}
		}
	}
}

// TestDifferentialPIFOAlwaysEligible pins down where the PIFO baseline is
// exact: with every send_time Always, head-only dequeue coincides with
// PIEO's smallest-eligible dequeue, so the full operation stream must
// match the reference bit for bit. (With heterogeneous send times it
// diverges by design — that deviation is measured, not tested away.)
func TestDifferentialPIFOAlwaysEligible(t *testing.T) {
	for seed := int64(500); seed < 506; seed++ {
		runDifferentialOn(t, backend.NewPIFOList(96), seed, 96, 3000, 1<<10, 1, false)
	}
}

// Property: for any batch of entries, draining the list at a permissive
// time yields them in nondecreasing rank order with FIFO ties.
func TestDrainOrderProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		if len(ranks) == 0 {
			return true
		}
		if len(ranks) > 512 {
			ranks = ranks[:512]
		}
		l := core.New(len(ranks))
		for i, r := range ranks {
			if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(r), SendTime: clock.Always}); err != nil {
				return false
			}
		}
		prevRank := uint64(0)
		prevIDByRank := make(map[uint64]uint32)
		for range ranks {
			e, ok := l.Dequeue(0)
			if !ok || e.Rank < prevRank {
				return false
			}
			if last, seen := prevIDByRank[e.Rank]; seen && e.ID < last {
				return false // FIFO violated among equal ranks
			}
			prevIDByRank[e.Rank] = e.ID
			prevRank = e.Rank
		}
		_, ok := l.Dequeue(0)
		return !ok && l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: an element is never dequeued before its send_time, and
// always dequeued once time passes it.
func TestEligibilityProperty(t *testing.T) {
	f := func(sends []uint8) bool {
		if len(sends) == 0 {
			return true
		}
		if len(sends) > 256 {
			sends = sends[:256]
		}
		l := core.New(len(sends))
		for i, s := range sends {
			if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(i), SendTime: clock.Time(s)}); err != nil {
				return false
			}
		}
		for now := clock.Time(0); now <= 255; now++ {
			for {
				e, ok := l.Dequeue(now)
				if !ok {
					break
				}
				if e.SendTime > now {
					return false // dequeued early
				}
			}
		}
		return l.Len() == 0 // everything eligible by 255 must be gone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
