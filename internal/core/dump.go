package core

import (
	"fmt"
	"strings"

	"pieo/internal/clock"
)

// SublistView is a read-only snapshot of one active sublist and its
// cached pointer-array attributes, for tracing tools and tests that want
// to render the Fig 5-7 structure.
type SublistView struct {
	Position         int // position in the Ordered-Sublist-Array
	SublistID        int
	SmallestRank     uint64
	SmallestSendTime clock.Time
	Num              int
	Full             bool
	Entries          []Entry      // Rank-Sublist, rank order
	EligTimes        []clock.Time // Eligibility-Sublist, ascending
}

// DumpSublists returns views of the non-empty partition of the
// Ordered-Sublist-Array in order.
func (l *List) DumpSublists() []SublistView {
	views := make([]SublistView, 0, l.active)
	for i := 0; i < l.active; i++ {
		p := l.order[i]
		sl := &l.sublists[p.sublistID]
		v := SublistView{
			Position:         i,
			SublistID:        p.sublistID,
			SmallestRank:     p.smallestRank,
			SmallestSendTime: p.smallestSendTime,
			Num:              p.num,
			Full:             sl.full(l.sublistSize),
			Entries:          make([]Entry, sl.len()),
			EligTimes:        append([]clock.Time(nil), sl.elig...),
		}
		for j, e := range sl.entries {
			v.Entries[j] = e.Entry
		}
		views = append(views, v)
	}
	return views
}

// String renders the view in the style of the paper's figures.
func (v SublistView) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pos %d (sublist %d, num=%d", v.Position, v.SublistID, v.Num)
	if v.Full {
		b.WriteString(", full")
	}
	fmt.Fprintf(&b, ", smallest_rank=%d, smallest_send=%s): ", v.SmallestRank, v.SmallestSendTime)
	for i, e := range v.Entries {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(e.String())
	}
	return b.String()
}
