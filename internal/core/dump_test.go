package core

import (
	"strings"
	"testing"

	"pieo/internal/clock"
)

func TestDumpSublists(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 10, 5)
	mustEnqueue(t, l, 2, 20, clock.Never)
	views := l.DumpSublists()
	if len(views) != 1 {
		t.Fatalf("views = %d, want 1", len(views))
	}
	v := views[0]
	if v.Num != 2 || v.SmallestRank != 10 || v.SmallestSendTime != 5 {
		t.Fatalf("view = %+v", v)
	}
	if len(v.Entries) != 2 || v.Entries[0].ID != 1 || v.Entries[1].ID != 2 {
		t.Fatalf("entries = %v", v.Entries)
	}
	if len(v.EligTimes) != 2 || v.EligTimes[0] != 5 || v.EligTimes[1] != clock.Never {
		t.Fatalf("elig = %v", v.EligTimes)
	}
	if v.Full {
		t.Fatal("2/4 sublist reported full")
	}
	s := v.String()
	for _, want := range []string{"pos 0", "num=2", "[1, 10, 5]", "[2, 20, never]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestDumpCoversAllElements(t *testing.T) {
	l := New(64)
	for i := uint32(0); i < 50; i++ {
		mustEnqueue(t, l, i, uint64(i*7%32), clock.Always)
	}
	total := 0
	for _, v := range l.DumpSublists() {
		total += len(v.Entries)
		if v.Num != len(v.Entries) {
			t.Fatalf("view num mismatch: %+v", v)
		}
	}
	if total != 50 {
		t.Fatalf("dump covers %d elements, want 50", total)
	}
}
