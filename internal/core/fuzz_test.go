package core_test

import (
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/refmodel"
)

// FuzzListOps interprets the fuzzer's byte stream as a program of list
// operations and checks the sublist implementation against the flat
// reference model plus the full invariant suite after every step. Run
// with `go test -fuzz=FuzzListOps ./internal/core` for open-ended
// fuzzing; under plain `go test` the seed corpus below runs as a
// regression test.
func FuzzListOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{0, 10, 1, 0, 0, 20, 1, 0, 2, 10, 3, 5})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, program []byte) {
		const capacity = 24
		impl := core.New(capacity)
		ref := refmodel.New(capacity)
		nextID := uint32(0)

		// Each step consumes up to 3 bytes: opcode, then operands.
		for i := 0; i < len(program); {
			op := program[i]
			i++
			arg := func() byte {
				if i < len(program) {
					b := program[i]
					i++
					return b
				}
				return 0
			}
			switch op % 5 {
			case 0: // enqueue(rank, send)
				e := core.Entry{ID: nextID, Rank: uint64(arg() % 16), SendTime: clock.Time(arg() % 8)}
				nextID++
				if got, want := impl.Enqueue(e), ref.Enqueue(e); got != want {
					t.Fatalf("Enqueue(%v) = %v, ref %v", e, got, want)
				}
			case 1: // dequeue(now)
				now := clock.Time(arg() % 8)
				got, gok := impl.Dequeue(now)
				want, wok := ref.Dequeue(now)
				if gok != wok || got != want {
					t.Fatalf("Dequeue(%v) = %v,%v, ref %v,%v", now, got, gok, want, wok)
				}
			case 2: // dequeue(flow)
				var id uint32
				if nextID > 0 {
					id = uint32(arg()) % nextID
				}
				got, gok := impl.DequeueFlow(id)
				want, wok := ref.DequeueFlow(id)
				if gok != wok || got != want {
					t.Fatalf("DequeueFlow(%d) = %v,%v, ref %v,%v", id, got, gok, want, wok)
				}
			case 3: // dequeue range
				now := clock.Time(arg() % 8)
				lo := uint32(arg() % 16)
				got, gok := impl.DequeueRange(now, lo, lo+8)
				want, wok := ref.DequeueRange(now, lo, lo+8)
				if gok != wok || got != want {
					t.Fatalf("DequeueRange(%v,%d) = %v,%v, ref %v,%v", now, lo, got, gok, want, wok)
				}
			case 4: // rank-range dequeue vs brute force over the snapshot
				lo := uint64(arg() % 16)
				var want *core.Entry
				for _, e := range impl.Snapshot() {
					if e.Rank >= lo && e.Rank <= lo+4 {
						e := e
						want = &e
						break
					}
				}
				got, gok := impl.DequeueRankRange(lo, lo+4)
				if want == nil {
					if gok {
						t.Fatalf("DequeueRankRange(%d) = %v, want none", lo, got)
					}
				} else {
					if !gok || got != *want {
						t.Fatalf("DequeueRankRange(%d) = %v,%v, want %v", lo, got, gok, *want)
					}
					if _, wok := ref.DequeueFlow(got.ID); !wok {
						t.Fatalf("reference lost flow %d", got.ID)
					}
				}
			}
			if impl.Len() != ref.Len() {
				t.Fatalf("Len = %d, ref %d", impl.Len(), ref.Len())
			}
			if err := impl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
