package core_test

import (
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/refmodel"
)

// FuzzListOps interprets the fuzzer's byte stream as a program of list
// operations and checks the sublist implementation against the flat
// reference model plus the full invariant suite after every step. Run
// with `go test -fuzz=FuzzListOps ./internal/core` for open-ended
// fuzzing; under plain `go test` the seed corpus below runs as a
// regression test.
func FuzzListOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{0, 10, 1, 0, 0, 20, 1, 0, 2, 10, 3, 5})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 0, 1, 2, 3})
	f.Add([]byte{5, 3, 1, 10, 2, 11, 3, 3, 12, 1, 6, 0, 2})
	f.Add([]byte{5, 4, 4, 5, 0, 8, 6, 12, 2, 4, 6, 0, 4, 13, 2, 0})

	f.Fuzz(func(t *testing.T, program []byte) {
		const capacity = 24
		impl := core.New(capacity)
		ref := refmodel.New(capacity)
		nextID := uint32(0)

		// Each step consumes up to 3 bytes: opcode, then operands.
		for i := 0; i < len(program); {
			op := program[i]
			i++
			arg := func() byte {
				if i < len(program) {
					b := program[i]
					i++
					return b
				}
				return 0
			}
			switch op % 7 {
			case 0: // enqueue(rank, send)
				e := core.Entry{ID: nextID, Rank: uint64(arg() % 16), SendTime: clock.Time(arg() % 8)}
				nextID++
				if got, want := impl.Enqueue(e), ref.Enqueue(e); got != want {
					t.Fatalf("Enqueue(%v) = %v, ref %v", e, got, want)
				}
			case 1: // dequeue(now)
				now := clock.Time(arg() % 8)
				got, gok := impl.Dequeue(now)
				want, wok := ref.Dequeue(now)
				if gok != wok || got != want {
					t.Fatalf("Dequeue(%v) = %v,%v, ref %v,%v", now, got, gok, want, wok)
				}
			case 2: // dequeue(flow)
				var id uint32
				if nextID > 0 {
					id = uint32(arg()) % nextID
				}
				got, gok := impl.DequeueFlow(id)
				want, wok := ref.DequeueFlow(id)
				if gok != wok || got != want {
					t.Fatalf("DequeueFlow(%d) = %v,%v, ref %v,%v", id, got, gok, want, wok)
				}
			case 3: // dequeue range
				now := clock.Time(arg() % 8)
				lo := uint32(arg() % 16)
				got, gok := impl.DequeueRange(now, lo, lo+8)
				want, wok := ref.DequeueRange(now, lo, lo+8)
				if gok != wok || got != want {
					t.Fatalf("DequeueRange(%v,%d) = %v,%v, ref %v,%v", now, lo, got, gok, want, wok)
				}
			case 4: // rank-range dequeue vs brute force over the snapshot
				lo := uint64(arg() % 16)
				var want *core.Entry
				for _, e := range impl.Snapshot() {
					if e.Rank >= lo && e.Rank <= lo+4 {
						e := e
						want = &e
						break
					}
				}
				got, gok := impl.DequeueRankRange(lo, lo+4)
				if want == nil {
					if gok {
						t.Fatalf("DequeueRankRange(%d) = %v, want none", lo, got)
					}
				} else {
					if !gok || got != *want {
						t.Fatalf("DequeueRankRange(%d) = %v,%v, want %v", lo, got, gok, *want)
					}
					if _, wok := ref.DequeueFlow(got.ID); !wok {
						t.Fatalf("reference lost flow %d", got.ID)
					}
				}
			case 5: // batch enqueue(count, then rank/send pairs)
				es := make([]core.Entry, int(arg()%5)+1)
				for j := range es {
					id := nextID
					b := arg()
					if nextID > 0 && b%4 == 0 {
						id = uint32(b) % nextID // provoke mid-batch duplicates
					} else {
						nextID++
					}
					es[j] = core.Entry{ID: id, Rank: uint64(arg() % 16), SendTime: clock.Time(arg() % 8)}
				}
				gotN, gotErr := impl.EnqueueBatch(es)
				wantN := 0
				var wantErr error
				for _, e := range es {
					if err := ref.Enqueue(e); err != nil {
						if wantErr == nil {
							wantErr = err
						}
						continue
					}
					wantN++
				}
				if gotN != wantN || gotErr != wantErr {
					t.Fatalf("EnqueueBatch(%v) = %d,%v, ref %d,%v", es, gotN, gotErr, wantN, wantErr)
				}
			case 6: // batch dequeue(now, k)
				now := clock.Time(arg() % 8)
				k := int(arg()%5) + 1
				got := impl.DequeueUpTo(now, k, nil)
				want := make([]core.Entry, 0, k)
				for len(want) < k {
					e, ok := ref.Dequeue(now)
					if !ok {
						break
					}
					want = append(want, e)
				}
				if len(got) != len(want) {
					t.Fatalf("DequeueUpTo(%v,%d) returned %d entries, ref %d", now, k, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("DequeueUpTo(%v,%d)[%d] = %v, ref %v", now, k, j, got[j], want[j])
					}
				}
			}
			if impl.Len() != ref.Len() {
				t.Fatalf("Len = %d, ref %d", impl.Len(), ref.Len())
			}
			if err := impl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
