// Package core implements the PIEO (Push-In-Extract-Out) ordered list —
// the paper's primary contribution (§3.1) — using a functional model of
// the exact hardware design of §5:
//
//   - The list is stored as an array of sublists of size S = ⌈√N⌉. Each
//     sublist keeps its elements ordered twice: by rank (Rank-Sublist)
//     and by send_time (Eligibility-Sublist).
//   - A pointer array (Ordered-Sublist-Array) orders the sublists by
//     their smallest rank and caches each sublist's smallest rank,
//     smallest send_time, and occupancy. Its left partition points to
//     non-empty sublists, its right partition to empty ones.
//   - Invariant 1: no two consecutive partially-full sublists, so N
//     elements never need more than ~2√N sublists (2× SRAM overhead) and
//     every operation touches at most two sublists.
//
// All three primitive operations — Enqueue (Push-In), Dequeue
// (Extract-Out of the smallest-ranked eligible element), and DequeueFlow
// (extract a specific element) — complete in a constant four hardware
// clock cycles; the model counts cycles, sublist reads/writes (SRAM port
// usage), and comparator activations in Stats so the evaluation harness
// can reason about hardware cost without re-deriving it.
//
// Eligibility predicates follow §5.2: each element carries a send_time
// and is eligible when curr_time >= send_time, where curr_time is any
// monotonic function of time supplied by the caller at dequeue.
// clock.Always (0) encodes predicate-true, clock.Never encodes
// predicate-false. Ties in rank dequeue in enqueue (FIFO) order (§3.1).
package core

import (
	"errors"
	"fmt"
	"math"

	"pieo/internal/clock"
)

// Entry is one element of the ordered list: a flow (or packet) identifier
// with its programmable rank and eligibility time. The paper's prototype
// uses 16-bit rank and send_time fields; this model widens them to 64
// bits so virtual-time algorithms never wrap, and leaves bit-width
// costing to internal/hwmodel.
type Entry struct {
	ID       uint32
	Rank     uint64
	SendTime clock.Time
}

// Eligible reports whether the entry's predicate holds at time now.
func (e Entry) Eligible(now clock.Time) bool { return now >= e.SendTime }

// String renders the entry like the paper's figures: [id, rank, send].
func (e Entry) String() string {
	return fmt.Sprintf("[%d, %d, %s]", e.ID, e.Rank, e.SendTime)
}

// Operation errors.
var (
	// ErrFull is returned by Enqueue when the list is at capacity.
	ErrFull = errors.New("pieo: list full")
	// ErrDuplicate is returned by Enqueue when the ID is already queued;
	// a flow appears at most once in the scheduler's ordered list (§3.2).
	ErrDuplicate = errors.New("pieo: id already enqueued")
)

// Stats counts the work performed by the list, in hardware terms.
// Cycles follows the §5.2 datapath: four cycles per primitive operation.
// Range dequeues (the hierarchical logical-PIEO path, §4.3) may scan
// several sublists whose metadata passes the time filter but whose
// elements all fall outside the requested index range; each extra scanned
// sublist costs one additional cycle and one additional read, which the
// model charges explicitly.
type Stats struct {
	Enqueues      uint64
	Dequeues      uint64 // successful Dequeue()
	EmptyDequeues uint64 // Dequeue() that found no eligible element
	FlowDequeues  uint64 // successful DequeueFlow()
	RangeDequeues uint64 // successful DequeueRange()

	Cycles        uint64
	SublistReads  uint64 // sublists fetched from SRAM
	SublistWrites uint64 // sublists written back to SRAM
	PtrCompares   uint64 // pointer-array comparator activations
	ElemCompares  uint64 // sublist comparator activations
}

// element is an Entry plus its enqueue sequence number, which breaks rank
// ties in FIFO order exactly as the hardware's insert-after-equals
// placement does.
type element struct {
	Entry
	seq uint64
}

// key comparison: rank first, then FIFO sequence.
func (a element) less(b element) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.seq < b.seq
}

// sublist is one SRAM-resident sublist: entries ordered by (rank, seq)
// and a parallel multiset of send_times ordered ascending (the
// Eligibility-Sublist).
type sublist struct {
	entries []element
	elig    []clock.Time
}

func (s *sublist) len() int           { return len(s.entries) }
func (s *sublist) full(cap_ int) bool { return len(s.entries) == cap_ }

// ptr is one Ordered-Sublist-Array entry (§5.2).
type ptr struct {
	sublistID        int
	smallestRank     uint64
	smallestSendTime clock.Time
	num              int
}

// List is a PIEO ordered list. Create one with New or NewWithSublistSize.
type List struct {
	capacity    int
	sublistSize int

	sublists []sublist // backing storage, indexed by sublist id
	order    []ptr     // Ordered-Sublist-Array; [0:active) non-empty, rest empty
	active   int
	posOf    []int // sublist id -> position in order

	size  int
	seq   uint64
	where map[uint32]int // flow id -> sublist id (per-flow state, §5.2 Dequeue(f))

	stats Stats
}

// New creates a PIEO list with capacity n using the paper's geometry:
// sublists of size ⌈√n⌉.
func New(n int) *List {
	if n <= 0 {
		panic(fmt.Sprintf("pieo: capacity must be positive, got %d", n))
	}
	return NewWithSublistSize(n, int(math.Ceil(math.Sqrt(float64(n)))))
}

// NewWithSublistSize creates a PIEO list with an explicit sublist size,
// used by the sublist-geometry ablation. The number of sublists is
// 2·⌈n/s⌉ + 2: the paper's 2× Invariant-1 overhead plus two slack
// sublists so the worst-case full/partial alternation can never exhaust
// the empty partition at the capacity boundary.
func NewWithSublistSize(n, s int) *List {
	return NewWithOccupancyHint(n, s, n)
}

// NewWithOccupancyHint is NewWithSublistSize with the flow map pre-sized
// for an expected occupancy below the hard capacity. A sharded engine
// provisions every shard with the full shared capacity for safety (hash
// partitioning guarantees no balance) but expects ~capacity/K residents;
// sizing the map table for the expectation keeps its probes
// cache-resident, and the map still grows transparently if a shard ever
// exceeds the hint.
func NewWithOccupancyHint(n, s, hint int) *List {
	if n <= 0 || s <= 0 {
		panic(fmt.Sprintf("pieo: invalid geometry n=%d s=%d", n, s))
	}
	if hint < 0 || hint > n {
		hint = n
	}
	num := 2*((n+s-1)/s) + 2
	l := &List{
		capacity:    n,
		sublistSize: s,
		sublists:    make([]sublist, num),
		order:       make([]ptr, num),
		posOf:       make([]int, num),
		where:       make(map[uint32]int, hint),
	}
	for i := range l.sublists {
		// Sublist storage is allocated on first use (insertElem): the 2×
		// Invariant-1 provisioning means at least half the sublists are
		// empty at any moment, and a sharded engine over-provisions each
		// shard by another K×, so eager allocation would mostly buy
		// untouched memory.
		l.order[i] = ptr{sublistID: i, smallestSendTime: clock.Never}
		l.posOf[i] = i
	}
	return l
}

// Len returns the number of queued elements.
func (l *List) Len() int { return l.size }

// Capacity returns the maximum number of elements.
func (l *List) Capacity() int { return l.capacity }

// SublistSize returns the configured sublist size S.
func (l *List) SublistSize() int { return l.sublistSize }

// NumSublists returns the number of physical sublists allocated.
func (l *List) NumSublists() int { return len(l.sublists) }

// Stats returns a copy of the accumulated operation counters.
func (l *List) Stats() Stats { return l.stats }

// Contains reports whether id is currently queued.
func (l *List) Contains(id uint32) bool {
	_, ok := l.where[id]
	return ok
}

// Enqueue inserts e at the position dictated by its rank ("Push-In",
// §3.1). Equal-rank elements are placed after existing ones so they
// dequeue in FIFO order. It returns ErrFull at capacity and ErrDuplicate
// if e.ID is already queued.
func (l *List) Enqueue(e Entry) error {
	if l.size == l.capacity {
		return ErrFull
	}
	if _, dup := l.where[e.ID]; dup {
		return ErrDuplicate
	}
	l.seq++
	return l.enqueue(element{Entry: e, seq: l.seq})
}

// EnqueueSeq inserts e with a caller-supplied FIFO tie-break sequence
// instead of the list's internal counter. Sharded engines use it to stamp
// a single global arrival order across many lists, so equal-rank elements
// on different shards still dequeue in true FIFO order without any
// per-element bookkeeping outside the lists themselves. A given list must
// be driven either through Enqueue or through EnqueueSeq, not a mix: the
// internal counter and an external one would interleave arbitrarily.
func (l *List) EnqueueSeq(e Entry, seq uint64) error {
	if l.size == l.capacity {
		return ErrFull
	}
	if _, dup := l.where[e.ID]; dup {
		return ErrDuplicate
	}
	return l.enqueue(element{Entry: e, seq: seq})
}

// enqueue is the §5.2 insert datapath shared by Enqueue and EnqueueSeq.
// Capacity and duplicate checks have already passed.
func (l *List) enqueue(elem element) error {
	e := elem.Entry

	l.stats.Enqueues++
	l.stats.Cycles += 4

	if l.active == 0 {
		// Empty list: the first empty sublist becomes the head.
		sl := &l.sublists[l.order[0].sublistID]
		l.insertElem(sl, elem)
		l.active = 1
		l.refreshMeta(0)
		l.where[e.ID] = l.order[0].sublistID
		l.size++
		l.stats.SublistReads++
		l.stats.SublistWrites++
		return nil
	}

	// Cycle 1: parallel compare (order[i].smallestRank > e.Rank) over the
	// pointer array; priority-encode to the first strictly-greater
	// sublist j, and select j-1 (clamped to the head).
	l.stats.PtrCompares += uint64(l.active)
	pos := l.active - 1
	for i := 0; i < l.active; i++ {
		if l.rankGreater(l.order[i], elem) {
			pos = i - 1
			break
		}
	}
	if pos < 0 {
		pos = 0
	}

	// Cycle 2: read S (and S' if S is full) from SRAM.
	sl := &l.sublists[l.order[pos].sublistID]
	l.stats.SublistReads++
	wasFull := sl.full(l.sublistSize)

	// Cycle 3: position via parallel compare + priority encode; cycle 4:
	// write back.
	l.stats.ElemCompares += uint64(sl.len())
	l.insertElem(sl, elem)
	l.where[e.ID] = l.order[pos].sublistID
	l.size++

	if wasFull {
		// The insert pushed the sublist to S+1; move its tail into S'.
		tail := sl.entries[sl.len()-1]
		l.removeAt(sl, sl.len()-1)

		spPos := -1
		if pos+1 < l.active && !l.sublists[l.order[pos+1].sublistID].full(l.sublistSize) {
			spPos = pos + 1
		} else {
			// Take a fresh empty sublist and rotate it to pos+1
			// (paper: "shifting S' to the right of S").
			spPos = l.claimEmptyAt(pos + 1)
		}
		sp := &l.sublists[l.order[spPos].sublistID]
		l.stats.SublistReads++
		l.stats.ElemCompares += uint64(sp.len())
		l.insertElem(sp, tail) // lands at sp's head: tail.key < all of sp
		l.where[tail.ID] = l.order[spPos].sublistID
		l.refreshMeta(spPos)
		l.stats.SublistWrites++
	}
	l.refreshMeta(pos)
	l.stats.SublistWrites++
	return nil
}

// rankGreater reports whether the sublist behind p orders strictly after
// elem — the hardware's (smallest_rank > f.rank) compare, extended with
// the FIFO tie-break (a cached smallest key always has an older sequence
// than a new element, so equality on rank means "not greater").
func (l *List) rankGreater(p ptr, elem element) bool {
	return p.smallestRank > elem.Rank
}

// Dequeue extracts the smallest-ranked eligible element at time now
// ("Extract-Out", §3.1). It returns ok=false when no element is eligible.
func (l *List) Dequeue(now clock.Time) (Entry, bool) {
	// Cycle 1: priority-encode the first sublist whose smallest
	// send_time passes (now >= smallest_send_time). Because sublists
	// partition the global rank order, the first sublist with any
	// eligible element holds the globally smallest-ranked eligible one.
	l.stats.PtrCompares += uint64(l.active)
	pos := -1
	for i := 0; i < l.active; i++ {
		if now >= l.order[i].smallestSendTime {
			pos = i
			break
		}
	}
	if pos == -1 {
		l.stats.EmptyDequeues++
		l.stats.Cycles++ // the failed select still burns the compare cycle
		return Entry{}, false
	}
	l.stats.Dequeues++
	l.stats.Cycles += 4

	sl := &l.sublists[l.order[pos].sublistID]
	l.stats.SublistReads++

	// Cycle 3: first index with send_time <= now is the smallest-ranked
	// eligible element of the sublist (entries are rank-ordered).
	l.stats.ElemCompares += uint64(sl.len())
	idx := -1
	for i, e := range sl.entries {
		if e.SendTime <= now {
			idx = i
			break
		}
	}
	if idx == -1 {
		// Metadata said an eligible element exists; its absence is a
		// datapath bug, not a runtime condition.
		panic(fmt.Sprintf("pieo: sublist %d metadata/content mismatch at t=%v", l.order[pos].sublistID, now))
	}
	out := sl.entries[idx].Entry
	l.extractAt(pos, sl, idx)
	return out, true
}

// Peek returns the element Dequeue would extract at time now, without
// removing it.
func (l *List) Peek(now clock.Time) (Entry, bool) {
	e, _, ok := l.PeekSeq(now)
	return e, ok
}

// PeekSeq is Peek plus the element's FIFO sequence number, which a
// sharded engine's dequeue tournament compares to break equal-rank ties
// across shards.
func (l *List) PeekSeq(now clock.Time) (Entry, uint64, bool) {
	for i := 0; i < l.active; i++ {
		if now < l.order[i].smallestSendTime {
			continue
		}
		sl := &l.sublists[l.order[i].sublistID]
		for _, e := range sl.entries {
			if e.SendTime <= now {
				return e.Entry, e.seq, true
			}
		}
		panic(fmt.Sprintf("pieo: sublist %d metadata/content mismatch at t=%v", l.order[i].sublistID, now))
	}
	return Entry{}, 0, false
}

// DequeueFlow extracts the element with the given id regardless of
// eligibility (§3.1 dequeue(f)), used by alarm handlers to update an
// element's attributes. It returns ok=false when id is not queued.
func (l *List) DequeueFlow(id uint32) (Entry, bool) {
	sid, ok := l.where[id]
	if !ok {
		return Entry{}, false
	}
	l.stats.FlowDequeues++
	l.stats.Cycles += 4

	pos := l.posOf[sid]
	sl := &l.sublists[sid]
	l.stats.SublistReads++
	l.stats.ElemCompares += uint64(sl.len())
	idx := -1
	for i, e := range sl.entries {
		if e.ID == id {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("pieo: flow map points id %d at sublist %d but it is not there", id, sid))
	}
	out := sl.entries[idx].Entry
	l.extractAt(pos, sl, idx)
	return out, true
}

// DequeueRange extracts the smallest-ranked element that is eligible at
// now and whose ID lies in [lo, hi] — the logical-PIEO extraction of
// hierarchical scheduling (§4.3), where each non-leaf node's predicate is
// extended with (start <= f.index <= end). Sublists whose time filter
// passes but which hold no in-range eligible element cost one extra cycle
// and read each, which Stats records.
func (l *List) DequeueRange(now clock.Time, lo, hi uint32) (Entry, bool) {
	l.stats.PtrCompares += uint64(l.active)
	for pos := 0; pos < l.active; pos++ {
		if now < l.order[pos].smallestSendTime {
			continue
		}
		sl := &l.sublists[l.order[pos].sublistID]
		l.stats.SublistReads++
		l.stats.ElemCompares += uint64(sl.len())
		for idx, e := range sl.entries {
			if e.SendTime <= now && e.ID >= lo && e.ID <= hi {
				l.stats.RangeDequeues++
				l.stats.Cycles += 4
				out := e.Entry
				l.extractAt(pos, sl, idx)
				return out, true
			}
		}
		l.stats.Cycles++ // in-range miss: scan continues to the next sublist
	}
	l.stats.EmptyDequeues++
	l.stats.Cycles++
	return Entry{}, false
}

// PeekRange returns the element DequeueRange would extract, without
// removing it.
func (l *List) PeekRange(now clock.Time, lo, hi uint32) (Entry, bool) {
	e, _, ok := l.PeekRangeSeq(now, lo, hi)
	return e, ok
}

// PeekRangeSeq is PeekRange plus the element's FIFO sequence number (see
// PeekSeq).
func (l *List) PeekRangeSeq(now clock.Time, lo, hi uint32) (Entry, uint64, bool) {
	for pos := 0; pos < l.active; pos++ {
		if now < l.order[pos].smallestSendTime {
			continue
		}
		sl := &l.sublists[l.order[pos].sublistID]
		for _, e := range sl.entries {
			if e.SendTime <= now && e.ID >= lo && e.ID <= hi {
				return e.Entry, e.seq, true
			}
		}
	}
	return Entry{}, 0, false
}

// MinRank returns the smallest rank across all queued elements, in O(1)
// from the Ordered-Sublist-Array: the first active sublist holds the head
// of the global rank order, and its smallest rank is cached in its
// pointer-array entry. Sharded engines use it as the per-shard summary
// the dequeue tournament compares. ok is false when the list is empty.
func (l *List) MinRank() (uint64, bool) {
	if l.active == 0 {
		return 0, false
	}
	return l.order[0].smallestRank, true
}

// MinSendTime returns the smallest send_time across all queued elements —
// in O(1) from the pointer-array metadata. Fair-queueing algorithms use
// it as the "minimum start time among backlogged flows" term of the
// WF²Q+ virtual-time update. ok is false when the list is empty.
func (l *List) MinSendTime() (clock.Time, bool) {
	if l.active == 0 {
		return 0, false
	}
	minT := clock.Never
	for i := 0; i < l.active; i++ {
		if l.order[i].smallestSendTime < minT {
			minT = l.order[i].smallestSendTime
		}
	}
	return minT, true
}

// extractAt removes entry idx from the sublist at order position pos and
// restores Invariant 1 (§5.2 dequeue cycles 2–4): a previously-full
// sublist is refilled from a partially-full neighbor, and emptied
// sublists move to the empty partition.
func (l *List) extractAt(pos int, sl *sublist, idx int) {
	wasFull := sl.full(l.sublistSize)
	id := sl.entries[idx].ID
	l.removeAt(sl, idx)
	delete(l.where, id)
	l.size--
	l.stats.SublistWrites++

	if wasFull && sl.len() > 0 {
		// Refill from a non-full neighbor so S stays full; prefer the
		// left neighbor (its tail becomes S's head), else the right
		// (its head becomes S's tail). Reading the donor uses the SRAM
		// port pair of cycle 2.
		if pos > 0 {
			left := &l.sublists[l.order[pos-1].sublistID]
			if !left.full(l.sublistSize) {
				l.stats.SublistReads++
				l.stats.ElemCompares += uint64(left.len())
				moved := left.entries[left.len()-1]
				l.removeAt(left, left.len()-1)
				l.insertElem(sl, moved)
				l.where[moved.ID] = l.order[pos].sublistID
				l.stats.SublistWrites++
				if left.len() == 0 {
					l.retire(pos - 1)
					pos-- // order shifted left past the retired slot
				} else {
					l.refreshMeta(pos - 1)
				}
				l.refreshMeta(pos)
				return
			}
		}
		if pos+1 < l.active {
			right := &l.sublists[l.order[pos+1].sublistID]
			if !right.full(l.sublistSize) {
				l.stats.SublistReads++
				l.stats.ElemCompares += uint64(right.len())
				moved := right.entries[0]
				l.removeAt(right, 0)
				l.insertElem(sl, moved)
				l.where[moved.ID] = l.order[pos].sublistID
				l.stats.SublistWrites++
				if right.len() == 0 {
					l.retire(pos + 1)
				} else {
					l.refreshMeta(pos + 1)
				}
				l.refreshMeta(pos)
				return
			}
		}
	}

	if sl.len() == 0 {
		l.retire(pos)
		return
	}
	l.refreshMeta(pos)
}

// insertElem places elem at its (rank, seq) position in the rank-ordered
// entries and its send_time in the eligibility multiset.
func (l *List) insertElem(sl *sublist, elem element) {
	if cap(sl.entries) == 0 {
		// First use of this sublist: size both arrays for the full S+1
		// transient (insert-then-split) so they never regrow.
		sl.entries = make([]element, 0, l.sublistSize+1)
		sl.elig = make([]clock.Time, 0, l.sublistSize+1)
	}
	idx := len(sl.entries)
	for i, e := range sl.entries {
		if elem.less(e) {
			idx = i
			break
		}
	}
	sl.entries = append(sl.entries, element{})
	copy(sl.entries[idx+1:], sl.entries[idx:])
	sl.entries[idx] = elem

	eidx := len(sl.elig)
	for i, t := range sl.elig {
		if elem.SendTime < t {
			eidx = i
			break
		}
	}
	sl.elig = append(sl.elig, 0)
	copy(sl.elig[eidx+1:], sl.elig[eidx:])
	sl.elig[eidx] = elem.SendTime
}

// removeAt deletes entry idx from the rank order and its send_time from
// the eligibility multiset.
func (l *List) removeAt(sl *sublist, idx int) {
	st := sl.entries[idx].SendTime
	copy(sl.entries[idx:], sl.entries[idx+1:])
	sl.entries = sl.entries[:len(sl.entries)-1]

	for i, t := range sl.elig {
		if t == st {
			copy(sl.elig[i:], sl.elig[i+1:])
			sl.elig = sl.elig[:len(sl.elig)-1]
			return
		}
	}
	panic(fmt.Sprintf("pieo: eligibility sublist lost send_time %v", st))
}

// refreshMeta recomputes the cached pointer-array attributes of the
// sublist at order position pos.
func (l *List) refreshMeta(pos int) {
	sl := &l.sublists[l.order[pos].sublistID]
	if sl.len() == 0 {
		l.order[pos].smallestRank = 0
		l.order[pos].smallestSendTime = clock.Never
		l.order[pos].num = 0
		return
	}
	l.order[pos].smallestRank = sl.entries[0].Rank
	l.order[pos].smallestSendTime = sl.elig[0]
	l.order[pos].num = sl.len()
}

// claimEmptyAt rotates the first empty sublist into order position pos
// (shifting [pos, active) right by one) and grows the active partition.
// It returns pos.
func (l *List) claimEmptyAt(pos int) int {
	if l.active >= len(l.order) {
		panic("pieo: empty-sublist partition exhausted; Invariant 1 slack miscomputed")
	}
	claimed := l.order[l.active]
	copy(l.order[pos+1:l.active+1], l.order[pos:l.active])
	l.order[pos] = claimed
	l.active++
	for i := pos; i < l.active; i++ {
		l.posOf[l.order[i].sublistID] = i
	}
	return pos
}

// retire moves the (now empty) sublist at order position pos to the head
// of the empty partition and shrinks the active partition.
func (l *List) retire(pos int) {
	emptied := l.order[pos]
	copy(l.order[pos:l.active-1], l.order[pos+1:l.active])
	l.active--
	l.order[l.active] = emptied
	l.order[l.active].smallestRank = 0
	l.order[l.active].smallestSendTime = clock.Never
	l.order[l.active].num = 0
	for i := pos; i <= l.active; i++ {
		l.posOf[l.order[i].sublistID] = i
	}
}

// Snapshot returns the Global-Ordered-List: every queued entry in
// increasing (rank, FIFO) order. It is O(n) and intended for tests,
// debugging, and experiment reporting.
func (l *List) Snapshot() []Entry {
	out := make([]Entry, 0, l.size)
	for i := 0; i < l.active; i++ {
		for _, e := range l.sublists[l.order[i].sublistID].entries {
			out = append(out, e.Entry)
		}
	}
	return out
}

// SnapshotWithSeq is Snapshot plus each entry's FIFO sequence number, so
// a sharded engine can merge per-shard snapshots into the global
// (rank, FIFO) order.
func (l *List) SnapshotWithSeq() ([]Entry, []uint64) {
	out := make([]Entry, 0, l.size)
	seqs := make([]uint64, 0, l.size)
	for i := 0; i < l.active; i++ {
		for _, e := range l.sublists[l.order[i].sublistID].entries {
			out = append(out, e.Entry)
			seqs = append(seqs, e.seq)
		}
	}
	return out, seqs
}

// CheckInvariants validates the complete §5 data-structure contract:
// partitioning of the pointer array, Invariant 1, global rank order,
// metadata coherence, eligibility-sublist coherence, and flow-map
// consistency. Tests call it after every mutation; it returns the first
// violation found.
func (l *List) CheckInvariants() error {
	if l.active < 0 || l.active > len(l.order) {
		return fmt.Errorf("active=%d out of range", l.active)
	}
	seen := make(map[int]bool, len(l.order))
	total := 0
	var prev *element
	for i, p := range l.order {
		if seen[p.sublistID] {
			return fmt.Errorf("sublist %d appears twice in order", p.sublistID)
		}
		seen[p.sublistID] = true
		if l.posOf[p.sublistID] != i {
			return fmt.Errorf("posOf[%d]=%d, want %d", p.sublistID, l.posOf[p.sublistID], i)
		}
		sl := &l.sublists[p.sublistID]
		if i < l.active {
			if sl.len() == 0 {
				return fmt.Errorf("active position %d is empty", i)
			}
		} else {
			if sl.len() != 0 {
				return fmt.Errorf("empty-partition position %d has %d elements", i, sl.len())
			}
			continue
		}
		// Invariant 1: no two consecutive partially-full active sublists.
		if i+1 < l.active {
			next := &l.sublists[l.order[i+1].sublistID]
			if !sl.full(l.sublistSize) && !next.full(l.sublistSize) {
				return fmt.Errorf("Invariant 1 violated at positions %d,%d (len %d,%d, S=%d)",
					i, i+1, sl.len(), next.len(), l.sublistSize)
			}
		}
		// Metadata coherence.
		if p.num != sl.len() {
			return fmt.Errorf("position %d num=%d, want %d", i, p.num, sl.len())
		}
		if p.smallestRank != sl.entries[0].Rank {
			return fmt.Errorf("position %d smallestRank=%d, want %d", i, p.smallestRank, sl.entries[0].Rank)
		}
		if len(sl.elig) != sl.len() {
			return fmt.Errorf("position %d eligibility size %d, want %d", i, len(sl.elig), sl.len())
		}
		if p.smallestSendTime != sl.elig[0] {
			return fmt.Errorf("position %d smallestSendTime=%v, want %v", i, p.smallestSendTime, sl.elig[0])
		}
		// Eligibility multiset matches entry send_times.
		times := make(map[clock.Time]int)
		for _, e := range sl.entries {
			times[e.SendTime]++
		}
		for j, t := range sl.elig {
			if j > 0 && sl.elig[j-1] > t {
				return fmt.Errorf("position %d eligibility sublist unsorted at %d", i, j)
			}
			times[t]--
			if times[t] < 0 {
				return fmt.Errorf("position %d eligibility sublist has extra %v", i, t)
			}
		}
		// Global (rank, seq) order across the sublist concatenation, and
		// rank order within the sublist.
		for j := range sl.entries {
			e := &sl.entries[j]
			if prev != nil && e.less(*prev) {
				return fmt.Errorf("global order violated: %v before %v", prev.Entry, e.Entry)
			}
			prev = e
			if sid, ok := l.where[e.ID]; !ok || sid != p.sublistID {
				return fmt.Errorf("flow map for id %d = (%d,%v), want sublist %d", e.ID, sid, ok, p.sublistID)
			}
			total++
		}
	}
	if total != l.size {
		return fmt.Errorf("size=%d but %d elements stored", l.size, total)
	}
	if len(l.where) != l.size {
		return fmt.Errorf("flow map has %d entries, size=%d", len(l.where), l.size)
	}
	return nil
}
