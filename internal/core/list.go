// Package core implements the PIEO (Push-In-Extract-Out) ordered list —
// the paper's primary contribution (§3.1) — using a functional model of
// the exact hardware design of §5:
//
//   - The list is stored as an array of sublists of size S = ⌈√N⌉. Each
//     sublist keeps its elements ordered twice: by rank (Rank-Sublist)
//     and by send_time (Eligibility-Sublist).
//   - A pointer array (Ordered-Sublist-Array) orders the sublists by
//     their smallest rank and caches each sublist's smallest rank,
//     smallest send_time, and occupancy. Its left partition points to
//     non-empty sublists, its right partition to empty ones.
//   - Invariant 1: no two consecutive partially-full sublists, so N
//     elements never need more than ~2√N sublists (2× SRAM overhead) and
//     every operation touches at most two sublists.
//
// All three primitive operations — Enqueue (Push-In), Dequeue
// (Extract-Out of the smallest-ranked eligible element), and DequeueFlow
// (extract a specific element) — complete in a constant four hardware
// clock cycles; the model counts cycles, sublist reads/writes (SRAM port
// usage), and comparator activations in Stats so the evaluation harness
// can reason about hardware cost without re-deriving it.
//
// The hardware evaluates its O(√N) comparators in parallel, so a
// software model that emulates them with sequential scans pays O(√N)
// per operation where the hardware pays one cycle. The software datapath
// therefore takes three shortcuts that change no observable behavior
// (DESIGN.md §7):
//
//   - Position searches run as binary searches: the pointer array's
//     smallest ranks are nondecreasing (sublists partition the global
//     rank order) and each Rank-/Eligibility-Sublist is sorted, so every
//     parallel-compare + priority-encode step has an O(log) equivalent.
//   - The dequeue-side eligibility select keeps a packed summary word
//     per 32 pointer-array positions (the minimum cached send_time of
//     the block — the same summary-tournament technique internal/shard
//     uses across engines), so finding the first eligible sublist skips
//     32 positions per probe instead of scanning all ~2√N.
//   - Sublists live in two-ended stores with slack on both sides, so
//     head/tail insertions and removals — the common case on both the
//     enqueue split path and the dequeue refill path — move no elements,
//     and interior shifts move whichever side is shorter.
//
// Stats still counts the work the HARDWARE would do — all comparators
// charged per parallel compare, four cycles per op — not the software's
// shortcut, so hardware-cost experiments are unaffected by software
// optimization (see Stats).
//
// Eligibility predicates follow §5.2: each element carries a send_time
// and is eligible when curr_time >= send_time, where curr_time is any
// monotonic function of time supplied by the caller at dequeue.
// clock.Always (0) encodes predicate-true, clock.Never encodes
// predicate-false. Ties in rank dequeue in enqueue (FIFO) order (§3.1).
package core

import (
	"errors"
	"fmt"
	"math"

	"pieo/internal/clock"
	"pieo/internal/timewheel"
)

// Entry is one element of the ordered list: a flow (or packet) identifier
// with its programmable rank and eligibility time. The paper's prototype
// uses 16-bit rank and send_time fields; this model widens them to 64
// bits so virtual-time algorithms never wrap, and leaves bit-width
// costing to internal/hwmodel.
type Entry struct {
	ID       uint32
	Rank     uint64
	SendTime clock.Time
}

// Eligible reports whether the entry's predicate holds at time now.
func (e Entry) Eligible(now clock.Time) bool { return now >= e.SendTime }

// String renders the entry like the paper's figures: [id, rank, send].
func (e Entry) String() string {
	return fmt.Sprintf("[%d, %d, %s]", e.ID, e.Rank, e.SendTime)
}

// Operation errors.
var (
	// ErrFull is returned by Enqueue when the list is at capacity.
	ErrFull = errors.New("pieo: list full")
	// ErrDuplicate is returned by Enqueue when the ID is already queued;
	// a flow appears at most once in the scheduler's ordered list (§3.2).
	ErrDuplicate = errors.New("pieo: id already enqueued")
	// ErrShardDown is returned by sharded backends when an operation
	// cannot be served because the responsible partition is quarantined
	// (and, for writes, no healthy partition could absorb the traffic).
	ErrShardDown = errors.New("pieo: shard down")
	// ErrUnknownFlow is recorded by scheduler layers when an ordered list
	// yields an ID with no registered flow state — a wiring fault between
	// the list and the flow table.
	ErrUnknownFlow = errors.New("pieo: unknown flow")
	// ErrDeadline is returned by deadline-wrapped blocking operations
	// (sched.NextPacket under a dequeue budget, supervision helpers)
	// when the time budget expires before the operation makes progress —
	// the graceful alternative to spinning until the guard counter trips.
	ErrDeadline = errors.New("pieo: operation deadline exceeded")
)

// Stats counts the work performed by the list, in hardware terms.
// Cycles follows the §5.2 datapath: four cycles per primitive operation.
// Range dequeues (the hierarchical logical-PIEO path, §4.3) may scan
// several sublists whose metadata passes the time filter but whose
// elements all fall outside the requested index range; each extra scanned
// sublist costs one additional cycle and one additional read, which the
// model charges explicitly.
//
// The counters describe the HARDWARE datapath, not the software model:
// a parallel compare over the pointer array charges all l.active
// comparators even though the software resolves it with an O(log √N)
// binary search, and batch operations (EnqueueBatch, DequeueUpTo) charge
// exactly what the same operations issued one at a time would.
type Stats struct {
	Enqueues      uint64
	Dequeues      uint64 // successful Dequeue()
	EmptyDequeues uint64 // Dequeue() that found no eligible element
	FlowDequeues  uint64 // successful DequeueFlow()
	RangeDequeues uint64 // successful DequeueRange()

	Cycles        uint64
	SublistReads  uint64 // sublists fetched from SRAM
	SublistWrites uint64 // sublists written back to SRAM
	PtrCompares   uint64 // pointer-array comparator activations
	ElemCompares  uint64 // sublist comparator activations
}

// element is an Entry plus its enqueue sequence number, which breaks rank
// ties in FIFO order exactly as the hardware's insert-after-equals
// placement does.
type element struct {
	Entry
	seq uint64
	// wh is the element's handle in the list's timing-wheel eligibility
	// index (meaningless while the wheel is disabled). It travels with
	// the element through sublist moves, so wheel maintenance happens
	// only at true insert/extract boundaries.
	wh int32
}

// key comparison: rank first, then FIFO sequence.
func (a element) less(b element) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.seq < b.seq
}

// sublist is one SRAM-resident sublist: entries ordered by (rank, seq)
// and a parallel multiset of send_times ordered ascending (the
// Eligibility-Sublist).
//
// Both orders live in two-ended backing stores of capacity 2·(S+1) with
// the live window floating between slack at either end (entries =
// buf[estart : estart+n]). Removing the head or tail — what every
// dequeue and every Invariant-1 refill does — just moves the window
// edge; interior insertions shift whichever side is shorter. The 2×
// store mirrors the paper's own 2× SRAM provisioning and guarantees one
// side always has room, so the window never needs recentering.
type sublist struct {
	entries []element    // rank-ordered window into buf
	elig    []clock.Time // ascending send_time window into tbuf

	buf    []element
	tbuf   []clock.Time
	estart int // entries window offset within buf
	tstart int // elig window offset within tbuf
}

func (s *sublist) len() int           { return len(s.entries) }
func (s *sublist) full(cap_ int) bool { return len(s.entries) == cap_ }

// alloc sizes the two-ended stores for sublist size size. New binds most
// sublists to a contiguous arena up front; alloc covers the ones past
// the occupancy hint's high-water mark, as a one-time cost on first use.
func (s *sublist) alloc(size int) {
	slots := 2 * (size + 1)
	s.bind(make([]element, slots), make([]clock.Time, slots))
}

// bind attaches backing stores and centers the (empty) windows.
func (s *sublist) bind(buf []element, tbuf []clock.Time) {
	s.buf, s.tbuf = buf, tbuf
	s.estart = len(buf) / 2
	s.tstart = len(tbuf) / 2
	s.entries = buf[s.estart:s.estart]
	s.elig = tbuf[s.tstart:s.tstart]
}

// insertEntryAt places e at rank-order index idx, shifting whichever
// side of the two-ended store is shorter (falling back to the side with
// room; one side always has some, since cap = 2·(S+1) ≥ n+1).
func (s *sublist) insertEntryAt(idx int, e element) {
	n := len(s.entries)
	if (idx <= n-idx && s.estart > 0) || s.estart+n == len(s.buf) {
		copy(s.buf[s.estart-1:], s.buf[s.estart:s.estart+idx])
		s.estart--
	} else {
		copy(s.buf[s.estart+idx+1:s.estart+n+1], s.buf[s.estart+idx:s.estart+n])
	}
	s.buf[s.estart+idx] = e
	s.entries = s.buf[s.estart : s.estart+n+1]
}

// removeEntryAt deletes rank-order index idx, shifting the shorter side.
// Emptying the sublist recenters the window so the next fill starts with
// balanced slack.
func (s *sublist) removeEntryAt(idx int) {
	n := len(s.entries)
	if n == 1 {
		s.estart = len(s.buf) / 2
		s.entries = s.buf[s.estart:s.estart]
		return
	}
	if idx < n-1-idx {
		copy(s.buf[s.estart+1:s.estart+idx+1], s.buf[s.estart:s.estart+idx])
		s.estart++
	} else {
		copy(s.buf[s.estart+idx:s.estart+n-1], s.buf[s.estart+idx+1:s.estart+n])
	}
	s.entries = s.buf[s.estart : s.estart+n-1]
}

// insertEligAt and removeEligAt are the same two-ended operations on the
// Eligibility-Sublist.
func (s *sublist) insertEligAt(idx int, t clock.Time) {
	n := len(s.elig)
	if (idx <= n-idx && s.tstart > 0) || s.tstart+n == len(s.tbuf) {
		copy(s.tbuf[s.tstart-1:], s.tbuf[s.tstart:s.tstart+idx])
		s.tstart--
	} else {
		copy(s.tbuf[s.tstart+idx+1:s.tstart+n+1], s.tbuf[s.tstart+idx:s.tstart+n])
	}
	s.tbuf[s.tstart+idx] = t
	s.elig = s.tbuf[s.tstart : s.tstart+n+1]
}

func (s *sublist) removeEligAt(idx int) {
	n := len(s.elig)
	if n == 1 {
		s.tstart = len(s.tbuf) / 2
		s.elig = s.tbuf[s.tstart:s.tstart]
		return
	}
	if idx < n-1-idx {
		copy(s.tbuf[s.tstart+1:s.tstart+idx+1], s.tbuf[s.tstart:s.tstart+idx])
		s.tstart++
	} else {
		copy(s.tbuf[s.tstart+idx:s.tstart+n-1], s.tbuf[s.tstart+idx+1:s.tstart+n])
	}
	s.elig = s.tbuf[s.tstart : s.tstart+n-1]
}

// ptr is one Ordered-Sublist-Array entry (§5.2). smallestSeq caches the
// FIFO sequence of the sublist's head element alongside its rank: the
// enqueue-side sublist selection must compare full (rank, seq) keys, not
// ranks alone, because EnqueueSeq callers (the sharded engine's combining
// rings) may insert equal-rank elements out of sequence order — an
// arriving element can carry a SMALLER seq than a cached head, and a
// rank-only "not greater means older" tie-break would then pick a sublist
// to the right of the element's true position, breaking the global
// (rank, seq) order across sublists.
type ptr struct {
	sublistID        int
	smallestRank     uint64
	smallestSeq      uint64
	smallestSendTime clock.Time
	num              int
}

// Packed eligibility summary geometry: one summary word per 32
// pointer-array positions, holding the block's minimum cached
// send_time. 32 keeps the summary array a few cache lines even at the
// 2^19 operating point (~46 words) while bounding the in-block scan.
const (
	eligBlockShift = 5
	eligBlockLen   = 1 << eligBlockShift
	eligBlockMask  = eligBlockLen - 1
)

// List is a PIEO ordered list. Create one with New or NewWithSublistSize.
type List struct {
	capacity    int
	sublistSize int

	sublists []sublist // backing storage, indexed by sublist id
	order    []ptr     // Ordered-Sublist-Array; [0:active) non-empty, rest empty
	active   int
	posOf    []int // sublist id -> position in order

	// eligBlk[b] is the minimum order[i].smallestSendTime over the active
	// positions i in [b·32, (b+1)·32) — the software's packed stand-in
	// for the hardware's parallel eligibility comparators. It is exact
	// (refreshed on every metadata change), so a block whose word fails
	// the time filter is skipped wholesale and a block whose word passes
	// is guaranteed to contain an eligible sublist.
	eligBlk []clock.Time

	// wheel is the timing-wheel eligibility index (internal/timewheel):
	// every queued element is mirrored into it by send_time, making
	// MinSendTime O(1)-exact, giving dequeue a constant-time "nothing
	// eligible" verdict, and answering NextWakeAfter exactly. nil after
	// DisableEligIndex (the recorded non-wheel baseline): the list then
	// falls back to its summary scans with identical results.
	wheel *timewheel.Wheel

	size  int
	seq   uint64
	where map[uint32]int // flow id -> sublist id (per-flow state, §5.2 Dequeue(f))

	stats Stats
}

// New creates a PIEO list with capacity n using the paper's geometry:
// sublists of size ⌈√n⌉.
func New(n int) *List {
	if n <= 0 {
		panic(fmt.Sprintf("pieo: capacity must be positive, got %d", n))
	}
	return NewWithSublistSize(n, int(math.Ceil(math.Sqrt(float64(n)))))
}

// NewWithSublistSize creates a PIEO list with an explicit sublist size,
// used by the sublist-geometry ablation. The number of sublists is
// 2·⌈n/s⌉ + 2: the paper's 2× Invariant-1 overhead plus two slack
// sublists so the worst-case full/partial alternation can never exhaust
// the empty partition at the capacity boundary.
func NewWithSublistSize(n, s int) *List {
	return NewWithOccupancyHint(n, s, n)
}

// NewWithOccupancyHint is NewWithSublistSize with the flow map and the
// sublist storage arena pre-sized for an expected occupancy below the
// hard capacity. A sharded engine provisions every shard with the full
// shared capacity for safety (hash partitioning guarantees no balance)
// but expects ~capacity/K residents; sizing for the expectation keeps
// the map probes cache-resident and the preallocated arena proportional
// to real occupancy. The structure still grows transparently — the map
// rehashes, sublists past the arena allocate on first use — if a shard
// ever exceeds the hint.
func NewWithOccupancyHint(n, s, hint int) *List {
	if n <= 0 || s <= 0 {
		panic(fmt.Sprintf("pieo: invalid geometry n=%d s=%d", n, s))
	}
	if hint < 0 || hint > n {
		hint = n
	}
	num := 2*((n+s-1)/s) + 2
	l := &List{
		capacity:    n,
		sublistSize: s,
		sublists:    make([]sublist, num),
		order:       make([]ptr, num),
		posOf:       make([]int, num),
		eligBlk:     make([]clock.Time, (num+eligBlockMask)>>eligBlockShift),
		wheel:       timewheel.New(timewheel.Config{Hint: hint}),
		where:       make(map[uint32]int, hint),
	}
	// Preallocate two-ended stores for every sublist the hint occupancy
	// can keep active, carved from one contiguous arena (a single
	// allocation, and neighboring sublists — which every operation pair
	// touches — stay adjacent in memory). Sublist claiming is LIFO from
	// the empty partition, so the sublists that ever hold elements are
	// exactly ids [0, high-water mark): binding the arena to the lowest
	// ids makes the steady-state op path allocation-free.
	slots := 2 * (s + 1)
	pre := 2*((hint+s-1)/s) + 2
	if pre > num {
		pre = num
	}
	ebuf := make([]element, pre*slots)
	tbuf := make([]clock.Time, pre*slots)
	for i := 0; i < pre; i++ {
		l.sublists[i].bind(
			ebuf[i*slots:(i+1)*slots:(i+1)*slots],
			tbuf[i*slots:(i+1)*slots:(i+1)*slots],
		)
	}
	for i := range l.sublists {
		l.order[i] = ptr{sublistID: i, smallestSendTime: clock.Never}
		l.posOf[i] = i
	}
	for b := range l.eligBlk {
		l.eligBlk[b] = clock.Never
	}
	return l
}

// Len returns the number of queued elements.
func (l *List) Len() int { return l.size }

// Capacity returns the maximum number of elements.
func (l *List) Capacity() int { return l.capacity }

// SublistSize returns the configured sublist size S.
func (l *List) SublistSize() int { return l.sublistSize }

// NumSublists returns the number of physical sublists allocated.
func (l *List) NumSublists() int { return len(l.sublists) }

// Stats returns a copy of the accumulated operation counters.
func (l *List) Stats() Stats { return l.stats }

// Contains reports whether id is currently queued.
func (l *List) Contains(id uint32) bool {
	_, ok := l.where[id]
	return ok
}

// Enqueue inserts e at the position dictated by its rank ("Push-In",
// §3.1). Equal-rank elements are placed after existing ones so they
// dequeue in FIFO order. It returns ErrFull at capacity and ErrDuplicate
// if e.ID is already queued.
func (l *List) Enqueue(e Entry) error {
	if l.size == l.capacity {
		return ErrFull
	}
	if _, dup := l.where[e.ID]; dup {
		return ErrDuplicate
	}
	l.seq++
	return l.enqueue(element{Entry: e, seq: l.seq})
}

// EnqueueSeq inserts e with a caller-supplied FIFO tie-break sequence
// instead of the list's internal counter. Sharded engines use it to stamp
// a single global arrival order across many lists, so equal-rank elements
// on different shards still dequeue in true FIFO order without any
// per-element bookkeeping outside the lists themselves. A given list must
// be driven either through Enqueue or through EnqueueSeq, not a mix: the
// internal counter and an external one would interleave arbitrarily.
func (l *List) EnqueueSeq(e Entry, seq uint64) error {
	if l.size == l.capacity {
		return ErrFull
	}
	if _, dup := l.where[e.ID]; dup {
		return ErrDuplicate
	}
	return l.enqueue(element{Entry: e, seq: seq})
}

// enqueue is the §5.2 insert datapath shared by Enqueue and EnqueueSeq.
// Capacity and duplicate checks have already passed.
func (l *List) enqueue(elem element) error {
	e := elem.Entry

	l.stats.Enqueues++
	l.stats.Cycles += 4

	if l.wheel != nil {
		elem.wh = l.wheel.Insert(elem.SendTime)
	}

	if l.active == 0 {
		// Empty list: the first empty sublist becomes the head.
		sl := &l.sublists[l.order[0].sublistID]
		l.insertElem(sl, elem)
		l.active = 1
		l.refreshMeta(0)
		l.where[e.ID] = l.order[0].sublistID
		l.size++
		l.stats.SublistReads++
		l.stats.SublistWrites++
		return nil
	}

	// Cycle 1: the hardware compares (order[i].smallest key > elem key)
	// over the whole pointer array in parallel and priority-encodes the
	// first strictly-greater sublist j, selecting j-1 (clamped to the
	// head). The key is the full (rank, seq) pair: under Enqueue's
	// internal counter a cached head is always older than a new element,
	// so rank-only comparison would suffice, but EnqueueSeq callers may
	// stamp sequences out of arrival order (see ptr.smallestSeq) and
	// equal-rank placement must then honor the stamped order. Stats charge
	// all l.active comparators; the software resolves j by binary search,
	// valid because smallest keys are nondecreasing across the active
	// partition.
	l.stats.PtrCompares += uint64(l.active)
	lo, hi := 0, l.active
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		p := &l.order[mid]
		if p.smallestRank > e.Rank ||
			(p.smallestRank == e.Rank && p.smallestSeq > elem.seq) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	pos := lo - 1
	if pos < 0 {
		pos = 0
	}

	// Cycle 2: read S (and S' if S is full) from SRAM.
	sl := &l.sublists[l.order[pos].sublistID]
	l.stats.SublistReads++
	wasFull := sl.full(l.sublistSize)

	// Cycle 3: position via parallel compare + priority encode; cycle 4:
	// write back.
	l.stats.ElemCompares += uint64(sl.len())
	l.insertElem(sl, elem)
	l.where[e.ID] = l.order[pos].sublistID
	l.size++

	if wasFull {
		// The insert pushed the sublist to S+1; move its tail into S'.
		tail := sl.entries[sl.len()-1]
		l.removeAt(sl, sl.len()-1)

		spPos := -1
		if pos+1 < l.active && !l.sublists[l.order[pos+1].sublistID].full(l.sublistSize) {
			spPos = pos + 1
		} else {
			// Take a fresh empty sublist and rotate it to pos+1
			// (paper: "shifting S' to the right of S").
			spPos = l.claimEmptyAt(pos + 1)
		}
		sp := &l.sublists[l.order[spPos].sublistID]
		l.stats.SublistReads++
		l.stats.ElemCompares += uint64(sp.len())
		l.insertElem(sp, tail) // lands at sp's head: tail.key < all of sp
		l.where[tail.ID] = l.order[spPos].sublistID
		l.refreshMeta(spPos)
		l.stats.SublistWrites++
	}
	l.refreshMeta(pos)
	l.stats.SublistWrites++
	return nil
}

// firstEligible returns the first active position whose cached smallest
// send_time passes the time filter at now, or -1. Because sublists
// partition the global rank order, that position holds the globally
// smallest-ranked eligible element. The packed summary words skip 32
// ineligible positions per probe; a word that passes guarantees a hit
// inside its block (the summary is exact).
//
// startPos is a resume hint for batch extraction: callers must guarantee
// that every position before it is ineligible at now.
func (l *List) firstEligible(now clock.Time, startPos int) int {
	// Wheel fast path: the index's O(1) exact minimum send_time decides
	// "nothing eligible anywhere" without touching a single summary
	// word — the sparse-eligibility regime where the block scan below
	// would walk every word and find nothing. (Callers guarantee every
	// position before startPos is ineligible, so a wheel minimum <= now
	// is always discoverable at or after startPos.)
	if l.wheel != nil {
		if m, ok := l.wheel.MinSendTime(); !ok || m > now {
			return -1
		}
	}
	// The scan loops index through registers: active, the block-summary
	// slice, and the order slice are hoisted into locals so the inner
	// loops compare against register-resident headers instead of
	// re-loading l's fields (which the compiler must otherwise assume a
	// store through the slices could alias) every iteration.
	pos := startPos
	active := l.active
	blk := l.eligBlk
	ord := l.order
	for pos < active {
		if pos&eligBlockMask == 0 {
			for pos < active && now < blk[pos>>eligBlockShift] {
				pos += eligBlockLen
			}
			if pos >= active {
				return -1
			}
		}
		end := (pos | eligBlockMask) + 1
		if end > active {
			end = active
		}
		for ; pos < end; pos++ {
			if now >= ord[pos].smallestSendTime {
				return pos
			}
		}
	}
	return -1
}

// Dequeue extracts the smallest-ranked eligible element at time now
// ("Extract-Out", §3.1). It returns ok=false when no element is eligible.
func (l *List) Dequeue(now clock.Time) (Entry, bool) {
	e, _, ok := l.dequeueFrom(now, 0)
	return e, ok
}

// dequeueFrom is the Dequeue datapath with a resume hint (see
// firstEligible); it additionally returns the order position the element
// was extracted from, so DequeueUpTo can resume its scan past the
// positions already known ineligible. Stats are charged identically
// regardless of the hint: the hardware's parallel compare always
// activates every pointer-array comparator.
func (l *List) dequeueFrom(now clock.Time, startPos int) (Entry, int, bool) {
	// Cycle 1: priority-encode the first sublist whose smallest
	// send_time passes (now >= smallest_send_time).
	l.stats.PtrCompares += uint64(l.active)
	pos := l.firstEligible(now, startPos)
	if pos == -1 {
		l.stats.EmptyDequeues++
		l.stats.Cycles++ // the failed select still burns the compare cycle
		return Entry{}, -1, false
	}
	l.stats.Dequeues++
	l.stats.Cycles += 4

	sl := &l.sublists[l.order[pos].sublistID]
	l.stats.SublistReads++

	// Cycle 3: first index with send_time <= now is the smallest-ranked
	// eligible element of the sublist (entries are rank-ordered).
	l.stats.ElemCompares += uint64(sl.len())
	idx := -1
	for i := range sl.entries {
		if sl.entries[i].SendTime <= now {
			idx = i
			break
		}
	}
	if idx == -1 {
		// Metadata said an eligible element exists; its absence is a
		// datapath bug, not a runtime condition.
		panic(fmt.Sprintf("pieo: sublist %d metadata/content mismatch at t=%v", l.order[pos].sublistID, now))
	}
	out := sl.entries[idx].Entry
	l.extractAt(pos, sl, idx)
	return out, pos, true
}

// Peek returns the element Dequeue would extract at time now, without
// removing it.
func (l *List) Peek(now clock.Time) (Entry, bool) {
	e, _, ok := l.PeekSeq(now)
	return e, ok
}

// PeekSeq is Peek plus the element's FIFO sequence number, which a
// sharded engine's dequeue tournament compares to break equal-rank ties
// across shards.
func (l *List) PeekSeq(now clock.Time) (Entry, uint64, bool) {
	pos := l.firstEligible(now, 0)
	if pos == -1 {
		return Entry{}, 0, false
	}
	sl := &l.sublists[l.order[pos].sublistID]
	for i := range sl.entries {
		if sl.entries[i].SendTime <= now {
			return sl.entries[i].Entry, sl.entries[i].seq, true
		}
	}
	panic(fmt.Sprintf("pieo: sublist %d metadata/content mismatch at t=%v", l.order[pos].sublistID, now))
}

// DequeueBelowSeq is the fused peek-or-extract a sharded tournament
// wants: it locates the smallest-ranked eligible element at now in ONE
// eligibility scan, extracts it only when its rank is strictly below
// limit, and otherwise leaves it in place as a peek result. eligible
// reports whether an eligible element exists (e and seq are valid);
// taken reports whether it was extracted. A limit of 0 is a pure peek.
//
// Stats follow the operations the fusion replaces exactly: an extraction
// charges the full §5 dequeue datapath, a peek-only outcome (not
// eligible, or at/above limit) charges nothing — peeks are free, and the
// engine-level caller accounts its own empty tournaments.
func (l *List) DequeueBelowSeq(now clock.Time, limit uint64) (e Entry, seq uint64, eligible, taken bool) {
	pos := l.firstEligible(now, 0)
	if pos == -1 {
		return Entry{}, 0, false, false
	}
	sl := &l.sublists[l.order[pos].sublistID]
	idx := -1
	for i := range sl.entries {
		if sl.entries[i].SendTime <= now {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("pieo: sublist %d metadata/content mismatch at t=%v", l.order[pos].sublistID, now))
	}
	cand := sl.entries[idx]
	if cand.Rank >= limit {
		return cand.Entry, cand.seq, true, false
	}
	l.stats.PtrCompares += uint64(l.active)
	l.stats.Dequeues++
	l.stats.Cycles += 4
	l.stats.SublistReads++
	l.stats.ElemCompares += uint64(sl.len())
	l.extractAt(pos, sl, idx)
	return cand.Entry, cand.seq, true, true
}

// DequeueRangeBelowSeq is DequeueBelowSeq restricted to IDs in [lo, hi]
// (the logical-PIEO filter, §4.3). Extraction charges exactly what
// DequeueRange would, including the extra cycle and read per sublist
// whose time filter passed but held no in-range eligible element.
func (l *List) DequeueRangeBelowSeq(now clock.Time, lo, hi uint32, limit uint64) (e Entry, seq uint64, eligible, taken bool) {
	// Charges for sublists whose time filter passed but which held no
	// in-range element, deferred until the outcome is known (an
	// extraction pays them, a peek outcome pays nothing).
	var missReads, missCompares uint64
	for pos := l.firstEligible(now, 0); pos != -1; pos = l.firstEligible(now, pos+1) {
		sl := &l.sublists[l.order[pos].sublistID]
		for idx := range sl.entries {
			el := &sl.entries[idx]
			if el.SendTime <= now && el.ID >= lo && el.ID <= hi {
				cand := *el
				if cand.Rank >= limit {
					return cand.Entry, cand.seq, true, false
				}
				l.stats.PtrCompares += uint64(l.active)
				l.stats.RangeDequeues++
				l.stats.Cycles += 4 + missReads
				l.stats.SublistReads += 1 + missReads
				l.stats.ElemCompares += missCompares + uint64(sl.len())
				l.extractAt(pos, sl, idx)
				return cand.Entry, cand.seq, true, true
			}
		}
		missReads++
		missCompares += uint64(sl.len())
	}
	return Entry{}, 0, false, false
}

// DequeueFlow extracts the element with the given id regardless of
// eligibility (§3.1 dequeue(f)), used by alarm handlers to update an
// element's attributes. It returns ok=false when id is not queued.
func (l *List) DequeueFlow(id uint32) (Entry, bool) {
	sid, ok := l.where[id]
	if !ok {
		return Entry{}, false
	}
	l.stats.FlowDequeues++
	l.stats.Cycles += 4

	pos := l.posOf[sid]
	sl := &l.sublists[sid]
	l.stats.SublistReads++
	l.stats.ElemCompares += uint64(sl.len())
	idx := -1
	for i := range sl.entries {
		if sl.entries[i].ID == id {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("pieo: flow map points id %d at sublist %d but it is not there", id, sid))
	}
	out := sl.entries[idx].Entry
	l.extractAt(pos, sl, idx)
	return out, true
}

// DequeueRange extracts the smallest-ranked element that is eligible at
// now and whose ID lies in [lo, hi] — the logical-PIEO extraction of
// hierarchical scheduling (§4.3), where each non-leaf node's predicate is
// extended with (start <= f.index <= end). Sublists whose time filter
// passes but which hold no in-range eligible element cost one extra cycle
// and read each, which Stats records; sublists skipped by the packed
// summary never passed the time filter and cost nothing, exactly as in
// the hardware's parallel select.
func (l *List) DequeueRange(now clock.Time, lo, hi uint32) (Entry, bool) {
	l.stats.PtrCompares += uint64(l.active)
	for pos := l.firstEligible(now, 0); pos != -1; pos = l.firstEligible(now, pos+1) {
		sl := &l.sublists[l.order[pos].sublistID]
		l.stats.SublistReads++
		l.stats.ElemCompares += uint64(sl.len())
		for idx := range sl.entries {
			e := &sl.entries[idx]
			if e.SendTime <= now && e.ID >= lo && e.ID <= hi {
				l.stats.RangeDequeues++
				l.stats.Cycles += 4
				out := e.Entry
				l.extractAt(pos, sl, idx)
				return out, true
			}
		}
		l.stats.Cycles++ // in-range miss: scan continues to the next sublist
	}
	l.stats.EmptyDequeues++
	l.stats.Cycles++
	return Entry{}, false
}

// PeekRange returns the element DequeueRange would extract, without
// removing it.
func (l *List) PeekRange(now clock.Time, lo, hi uint32) (Entry, bool) {
	e, _, ok := l.PeekRangeSeq(now, lo, hi)
	return e, ok
}

// PeekRangeSeq is PeekRange plus the element's FIFO sequence number (see
// PeekSeq).
func (l *List) PeekRangeSeq(now clock.Time, lo, hi uint32) (Entry, uint64, bool) {
	for pos := l.firstEligible(now, 0); pos != -1; pos = l.firstEligible(now, pos+1) {
		sl := &l.sublists[l.order[pos].sublistID]
		for i := range sl.entries {
			e := &sl.entries[i]
			if e.SendTime <= now && e.ID >= lo && e.ID <= hi {
				return e.Entry, e.seq, true
			}
		}
	}
	return Entry{}, 0, false
}

// MinRank returns the smallest rank across all queued elements, in O(1)
// from the Ordered-Sublist-Array: the first active sublist holds the head
// of the global rank order, and its smallest rank is cached in its
// pointer-array entry. Sharded engines use it as the per-shard summary
// the dequeue tournament compares. ok is false when the list is empty.
func (l *List) MinRank() (uint64, bool) {
	if l.active == 0 {
		return 0, false
	}
	return l.order[0].smallestRank, true
}

// MinSendTime returns the smallest send_time across all queued elements —
// computed from the packed summary words, O(√N/32). Fair-queueing
// algorithms use it as the "minimum start time among backlogged flows"
// term of the WF²Q+ virtual-time update. ok is false when the list is
// empty.
func (l *List) MinSendTime() (clock.Time, bool) {
	if l.active == 0 {
		return 0, false
	}
	if l.wheel != nil {
		return l.wheel.MinSendTime()
	}
	minT := clock.Never
	for b := 0; b<<eligBlockShift < l.active; b++ {
		if l.eligBlk[b] < minT {
			minT = l.eligBlk[b]
		}
	}
	return minT, true
}

// NextWakeAfter returns the exact smallest send_time strictly greater
// than now among queued elements, or clock.Never when none exists — the
// backend.EligIndexed capability. O(1) through the wheel; without it
// (DisableEligIndex) an exact fallback binary-searches each active
// sublist's sorted eligibility array, O(√N log S).
func (l *List) NextWakeAfter(now clock.Time) clock.Time {
	if l.wheel != nil {
		return l.wheel.NextWakeAfter(now)
	}
	best := clock.Never
	for i := 0; i < l.active; i++ {
		sl := &l.sublists[l.order[i].sublistID]
		elig := sl.elig
		lo, hi := 0, len(elig)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if elig[mid] <= now {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(elig) && elig[lo] < best {
			best = elig[lo]
		}
	}
	return best
}

// EligIndexActive implements backend.EligIndexed.
func (l *List) EligIndexActive() bool { return l.wheel != nil }

// DisableEligIndex implements backend.EligIndexed: it drops the wheel
// permanently, reverting every query to the summary-scan paths. The
// pacing experiments use this as the recorded non-wheel baseline.
func (l *List) DisableEligIndex() { l.wheel = nil }

// MaxRankEntry returns the largest-(rank, FIFO) element — the push-out
// victim a rank-aware admission policy evicts when a higher-priority
// arrival meets a full list. O(1): the last active sublist tails the
// global rank order, and its last entry tails the sublist order. Among
// equal maximal ranks the newest arrival is returned, so push-out sheds
// the element fair queueing would have served last. ok is false when the
// list is empty.
func (l *List) MaxRankEntry() (Entry, bool) {
	e, _, ok := l.MaxRankEntrySeq()
	return e, ok
}

// MaxRankEntrySeq is MaxRankEntry plus the element's FIFO sequence, for
// sharded engines that compare victims across partitions.
func (l *List) MaxRankEntrySeq() (Entry, uint64, bool) {
	if l.active == 0 {
		return Entry{}, 0, false
	}
	sl := &l.sublists[l.order[l.active-1].sublistID]
	elem := sl.entries[sl.len()-1]
	return elem.Entry, elem.seq, true
}

// extractAt removes entry idx from the sublist at order position pos and
// restores Invariant 1 (§5.2 dequeue cycles 2–4): a previously-full
// sublist is refilled from a partially-full neighbor, and emptied
// sublists move to the empty partition.
func (l *List) extractAt(pos int, sl *sublist, idx int) {
	wasFull := sl.full(l.sublistSize)
	id := sl.entries[idx].ID
	if l.wheel != nil {
		l.wheel.Remove(sl.entries[idx].wh)
	}
	l.removeAt(sl, idx)
	delete(l.where, id)
	l.size--
	l.stats.SublistWrites++

	if wasFull && sl.len() > 0 {
		// Refill from a non-full neighbor so S stays full; prefer the
		// left neighbor (its tail becomes S's head), else the right
		// (its head becomes S's tail). Reading the donor uses the SRAM
		// port pair of cycle 2.
		if pos > 0 {
			left := &l.sublists[l.order[pos-1].sublistID]
			if !left.full(l.sublistSize) {
				l.stats.SublistReads++
				l.stats.ElemCompares += uint64(left.len())
				moved := left.entries[left.len()-1]
				l.removeAt(left, left.len()-1)
				l.insertElem(sl, moved)
				l.where[moved.ID] = l.order[pos].sublistID
				l.stats.SublistWrites++
				if left.len() == 0 {
					l.retire(pos - 1)
					pos-- // order shifted left past the retired slot
				} else {
					l.refreshMeta(pos - 1)
				}
				l.refreshMeta(pos)
				return
			}
		}
		if pos+1 < l.active {
			right := &l.sublists[l.order[pos+1].sublistID]
			if !right.full(l.sublistSize) {
				l.stats.SublistReads++
				l.stats.ElemCompares += uint64(right.len())
				moved := right.entries[0]
				l.removeAt(right, 0)
				l.insertElem(sl, moved)
				l.where[moved.ID] = l.order[pos].sublistID
				l.stats.SublistWrites++
				if right.len() == 0 {
					l.retire(pos + 1)
				} else {
					l.refreshMeta(pos + 1)
				}
				l.refreshMeta(pos)
				return
			}
		}
	}

	if sl.len() == 0 {
		l.retire(pos)
		return
	}
	l.refreshMeta(pos)
}

// insertElem places elem at its (rank, seq) position in the rank-ordered
// entries and its send_time in the eligibility multiset, locating both
// positions by binary search (the hardware's parallel compare; callers
// charge the comparator stats).
func (l *List) insertElem(sl *sublist, elem element) {
	if sl.buf == nil {
		// Past the arena's occupancy-hint high-water mark: one-time
		// storage allocation on first use.
		sl.alloc(l.sublistSize)
	}
	entries := sl.entries
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if elem.less(entries[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sl.insertEntryAt(lo, elem)

	// Upper bound keeps equal send_times in insertion order.
	elig := sl.elig
	lo, hi = 0, len(elig)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if elem.SendTime < elig[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sl.insertEligAt(lo, elem.SendTime)
}

// removeAt deletes entry idx from the rank order and its send_time from
// the eligibility multiset (lower-bound binary search: any slot holding
// the value serves, the multiset is by value).
func (l *List) removeAt(sl *sublist, idx int) {
	st := sl.entries[idx].SendTime
	sl.removeEntryAt(idx)

	elig := sl.elig
	lo, hi := 0, len(elig)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if elig[mid] < st {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(elig) || elig[lo] != st {
		panic(fmt.Sprintf("pieo: eligibility sublist lost send_time %v", st))
	}
	sl.removeEligAt(lo)
}

// refreshMeta recomputes the cached pointer-array attributes of the
// sublist at order position pos, and the packed summary word covering it.
// The summary update is incremental: a send_time at or below the block
// minimum replaces it in O(1), and only the "this position held the
// minimum and it rose" case rescans the block — so the all-eligible fast
// path (every send_time clock.Always) never rescans.
func (l *List) refreshMeta(pos int) {
	sl := &l.sublists[l.order[pos].sublistID]
	old := l.order[pos].smallestSendTime
	var t clock.Time
	if sl.len() == 0 {
		l.order[pos].smallestRank = 0
		l.order[pos].smallestSeq = 0
		l.order[pos].smallestSendTime = clock.Never
		l.order[pos].num = 0
		t = clock.Never
	} else {
		t = sl.elig[0]
		l.order[pos].smallestRank = sl.entries[0].Rank
		l.order[pos].smallestSeq = sl.entries[0].seq
		l.order[pos].smallestSendTime = t
		l.order[pos].num = sl.len()
	}
	b := pos >> eligBlockShift
	switch {
	case t <= l.eligBlk[b]:
		// Every other position in the block is >= the old minimum >= t.
		l.eligBlk[b] = t
	case old == l.eligBlk[b]:
		// pos may have been the sole holder of the minimum.
		l.refreshEligBlock(b)
	}
	// Otherwise: old > blk means another position holds the minimum, and
	// t > blk cannot lower it — the word is already exact.
}

// refreshEligBlock recomputes summary word b over its active coverage.
func (l *List) refreshEligBlock(b int) {
	lo := b << eligBlockShift
	hi := lo + eligBlockLen
	if hi > l.active {
		hi = l.active
	}
	m := clock.Never
	for i := lo; i < hi; i++ {
		if t := l.order[i].smallestSendTime; t < m {
			m = t
		}
	}
	l.eligBlk[b] = m
}

// rebuildEligBlocksFrom recomputes every summary word from the one
// covering pos through the end of the active partition, after a
// pointer-array shift (claimEmptyAt, retire) moved positions across
// block boundaries. Cost is proportional to the shifted range the caller
// already paid for.
func (l *List) rebuildEligBlocksFrom(pos int) {
	if l.active == 0 {
		l.eligBlk[0] = clock.Never
		return
	}
	last := (l.active - 1) >> eligBlockShift
	for b := pos >> eligBlockShift; b <= last; b++ {
		l.refreshEligBlock(b)
	}
}

// claimEmptyAt rotates the first empty sublist into order position pos
// (shifting [pos, active) right by one) and grows the active partition.
// It returns pos.
func (l *List) claimEmptyAt(pos int) int {
	if l.active >= len(l.order) {
		panic("pieo: empty-sublist partition exhausted; Invariant 1 slack miscomputed")
	}
	claimed := l.order[l.active]
	copy(l.order[pos+1:l.active+1], l.order[pos:l.active])
	l.order[pos] = claimed
	l.active++
	for i := pos; i < l.active; i++ {
		l.posOf[l.order[i].sublistID] = i
	}
	l.rebuildEligBlocksFrom(pos)
	return pos
}

// retire moves the (now empty) sublist at order position pos to the head
// of the empty partition and shrinks the active partition.
func (l *List) retire(pos int) {
	emptied := l.order[pos]
	copy(l.order[pos:l.active-1], l.order[pos+1:l.active])
	l.active--
	l.order[l.active] = emptied
	l.order[l.active].smallestRank = 0
	l.order[l.active].smallestSeq = 0
	l.order[l.active].smallestSendTime = clock.Never
	l.order[l.active].num = 0
	for i := pos; i <= l.active; i++ {
		l.posOf[l.order[i].sublistID] = i
	}
	l.rebuildEligBlocksFrom(pos)
}

// Snapshot returns the Global-Ordered-List: every queued entry in
// increasing (rank, FIFO) order. The output is allocated exactly once at
// l.size and filled by index. It is O(n) and intended for tests,
// debugging, and experiment reporting.
func (l *List) Snapshot() []Entry {
	out := make([]Entry, l.size)
	k := 0
	for i := 0; i < l.active; i++ {
		sl := &l.sublists[l.order[i].sublistID]
		for j := range sl.entries {
			out[k] = sl.entries[j].Entry
			k++
		}
	}
	return out
}

// SnapshotWithSeq is Snapshot plus each entry's FIFO sequence number, so
// a sharded engine can merge per-shard snapshots into the global
// (rank, FIFO) order. Both outputs are allocated exactly once at l.size.
func (l *List) SnapshotWithSeq() ([]Entry, []uint64) {
	out := make([]Entry, l.size)
	seqs := make([]uint64, l.size)
	k := 0
	for i := 0; i < l.active; i++ {
		sl := &l.sublists[l.order[i].sublistID]
		for j := range sl.entries {
			out[k] = sl.entries[j].Entry
			seqs[k] = sl.entries[j].seq
			k++
		}
	}
	return out, seqs
}

// CheckInvariants validates the complete §5 data-structure contract:
// partitioning of the pointer array, Invariant 1, global rank order,
// metadata coherence, eligibility-sublist coherence, flow-map
// consistency, plus the software-only structures layered on top (packed
// summary words, two-ended window bounds). Tests call it after every
// mutation; it returns the first violation found.
func (l *List) CheckInvariants() error {
	if l.active < 0 || l.active > len(l.order) {
		return fmt.Errorf("active=%d out of range", l.active)
	}
	seen := make(map[int]bool, len(l.order))
	total := 0
	var prev *element
	for i, p := range l.order {
		if seen[p.sublistID] {
			return fmt.Errorf("sublist %d appears twice in order", p.sublistID)
		}
		seen[p.sublistID] = true
		if l.posOf[p.sublistID] != i {
			return fmt.Errorf("posOf[%d]=%d, want %d", p.sublistID, l.posOf[p.sublistID], i)
		}
		sl := &l.sublists[p.sublistID]
		if sl.buf != nil {
			if sl.estart < 0 || sl.estart+len(sl.entries) > len(sl.buf) {
				return fmt.Errorf("sublist %d entries window [%d,%d) outside store of %d",
					p.sublistID, sl.estart, sl.estart+len(sl.entries), len(sl.buf))
			}
			if sl.tstart < 0 || sl.tstart+len(sl.elig) > len(sl.tbuf) {
				return fmt.Errorf("sublist %d elig window [%d,%d) outside store of %d",
					p.sublistID, sl.tstart, sl.tstart+len(sl.elig), len(sl.tbuf))
			}
		} else if sl.len() != 0 {
			return fmt.Errorf("sublist %d holds %d elements without storage", p.sublistID, sl.len())
		}
		if i < l.active {
			if sl.len() == 0 {
				return fmt.Errorf("active position %d is empty", i)
			}
		} else {
			if sl.len() != 0 {
				return fmt.Errorf("empty-partition position %d has %d elements", i, sl.len())
			}
			continue
		}
		// Invariant 1: no two consecutive partially-full active sublists.
		if i+1 < l.active {
			next := &l.sublists[l.order[i+1].sublistID]
			if !sl.full(l.sublistSize) && !next.full(l.sublistSize) {
				return fmt.Errorf("Invariant 1 violated at positions %d,%d (len %d,%d, S=%d)",
					i, i+1, sl.len(), next.len(), l.sublistSize)
			}
		}
		// Metadata coherence.
		if p.num != sl.len() {
			return fmt.Errorf("position %d num=%d, want %d", i, p.num, sl.len())
		}
		if p.smallestRank != sl.entries[0].Rank {
			return fmt.Errorf("position %d smallestRank=%d, want %d", i, p.smallestRank, sl.entries[0].Rank)
		}
		if p.smallestSeq != sl.entries[0].seq {
			return fmt.Errorf("position %d smallestSeq=%d, want %d", i, p.smallestSeq, sl.entries[0].seq)
		}
		if len(sl.elig) != sl.len() {
			return fmt.Errorf("position %d eligibility size %d, want %d", i, len(sl.elig), sl.len())
		}
		if p.smallestSendTime != sl.elig[0] {
			return fmt.Errorf("position %d smallestSendTime=%v, want %v", i, p.smallestSendTime, sl.elig[0])
		}
		// Eligibility multiset matches entry send_times.
		times := make(map[clock.Time]int)
		for _, e := range sl.entries {
			times[e.SendTime]++
		}
		for j, t := range sl.elig {
			if j > 0 && sl.elig[j-1] > t {
				return fmt.Errorf("position %d eligibility sublist unsorted at %d", i, j)
			}
			times[t]--
			if times[t] < 0 {
				return fmt.Errorf("position %d eligibility sublist has extra %v", i, t)
			}
		}
		// Global (rank, seq) order across the sublist concatenation, and
		// rank order within the sublist.
		for j := range sl.entries {
			e := &sl.entries[j]
			if prev != nil && e.less(*prev) {
				return fmt.Errorf("global order violated: %v before %v", prev.Entry, e.Entry)
			}
			prev = e
			if sid, ok := l.where[e.ID]; !ok || sid != p.sublistID {
				return fmt.Errorf("flow map for id %d = (%d,%v), want sublist %d", e.ID, sid, ok, p.sublistID)
			}
			total++
		}
	}
	if total != l.size {
		return fmt.Errorf("size=%d but %d elements stored", l.size, total)
	}
	if len(l.where) != l.size {
		return fmt.Errorf("flow map has %d entries, size=%d", len(l.where), l.size)
	}
	// Packed summary words must be the exact block minima.
	for b := 0; b<<eligBlockShift < l.active; b++ {
		lo := b << eligBlockShift
		hi := lo + eligBlockLen
		if hi > l.active {
			hi = l.active
		}
		m := clock.Never
		for i := lo; i < hi; i++ {
			if t := l.order[i].smallestSendTime; t < m {
				m = t
			}
		}
		if l.eligBlk[b] != m {
			return fmt.Errorf("summary word %d = %v, want %v", b, l.eligBlk[b], m)
		}
	}
	// Wheel residency must exactly match list contents: same element
	// count, every queued element's handle live with its send_time, and
	// the wheel's own structural invariants.
	if l.wheel != nil {
		if l.wheel.Len() != l.size {
			return fmt.Errorf("wheel holds %d elements, list %d", l.wheel.Len(), l.size)
		}
		for i := 0; i < l.active; i++ {
			sl := &l.sublists[l.order[i].sublistID]
			for j := range sl.entries {
				e := &sl.entries[j]
				if got := l.wheel.TimeOf(e.wh); got != e.SendTime {
					return fmt.Errorf("wheel handle %d for id %d holds t=%v, element send_time %v", e.wh, e.ID, got, e.SendTime)
				}
			}
		}
		if err := l.wheel.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
