package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pieo/internal/clock"
)

func mustEnqueue(t *testing.T, l *List, id uint32, rank uint64, send clock.Time) {
	t.Helper()
	if err := l.Enqueue(Entry{ID: id, Rank: rank, SendTime: send}); err != nil {
		t.Fatalf("Enqueue(%d,%d,%v): %v", id, rank, send, err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("after Enqueue(%d,%d,%v): %v", id, rank, send, err)
	}
}

func TestEmptyList(t *testing.T) {
	l := New(16)
	if l.Len() != 0 || l.Capacity() != 16 {
		t.Fatalf("Len/Capacity = %d/%d", l.Len(), l.Capacity())
	}
	if _, ok := l.Dequeue(100); ok {
		t.Fatal("Dequeue on empty list succeeded")
	}
	if _, ok := l.DequeueFlow(1); ok {
		t.Fatal("DequeueFlow on empty list succeeded")
	}
	if _, ok := l.Peek(100); ok {
		t.Fatal("Peek on empty list succeeded")
	}
	if _, ok := l.MinSendTime(); ok {
		t.Fatal("MinSendTime on empty list reported ok")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	l := New(16)
	if l.SublistSize() != 4 {
		t.Fatalf("SublistSize = %d, want 4", l.SublistSize())
	}
	// 2*ceil(16/4)+2 = 10 physical sublists.
	if l.NumSublists() != 10 {
		t.Fatalf("NumSublists = %d, want 10", l.NumSublists())
	}
}

func TestSingleElement(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 7, 42, 10)
	if !l.Contains(7) {
		t.Fatal("Contains(7) = false")
	}
	if _, ok := l.Dequeue(9); ok {
		t.Fatal("element dequeued before its send_time")
	}
	e, ok := l.Dequeue(10)
	if !ok || e.ID != 7 || e.Rank != 42 {
		t.Fatalf("Dequeue = %v, %v", e, ok)
	}
	if l.Len() != 0 || l.Contains(7) {
		t.Fatal("list not empty after dequeue")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRankOrdering(t *testing.T) {
	l := New(64)
	ranks := []uint64{50, 10, 99, 1, 75, 33, 60, 20}
	for i, r := range ranks {
		mustEnqueue(t, l, uint32(i), r, clock.Always)
	}
	want := []uint64{1, 10, 20, 33, 50, 60, 75, 99}
	for i, w := range want {
		e, ok := l.Dequeue(0)
		if !ok || e.Rank != w {
			t.Fatalf("Dequeue #%d = %v ok=%v, want rank %d", i, e, ok, w)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFIFOAmongEqualRanks(t *testing.T) {
	// §3.1: "If there are multiple eligible elements with the same
	// smallest rank value, then the element which was enqueued first is
	// dequeued."
	l := New(64)
	for id := uint32(0); id < 20; id++ {
		mustEnqueue(t, l, id, 5, clock.Always)
	}
	for id := uint32(0); id < 20; id++ {
		e, ok := l.Dequeue(0)
		if !ok || e.ID != id {
			t.Fatalf("Dequeue = %v ok=%v, want id %d (FIFO among equals)", e, ok, id)
		}
	}
}

func TestSmallestRankedEligible(t *testing.T) {
	// The smallest-ranked element is not eligible; dequeue must skip it.
	l := New(16)
	mustEnqueue(t, l, 1, 10, 100) // smallest rank, eligible at 100
	mustEnqueue(t, l, 2, 20, 5)   // eligible at 5
	mustEnqueue(t, l, 3, 30, 0)   // always eligible

	e, ok := l.Dequeue(6)
	if !ok || e.ID != 2 {
		t.Fatalf("Dequeue(6) = %v, want flow 2 (smallest ranked eligible)", e)
	}
	e, ok = l.Dequeue(6)
	if !ok || e.ID != 3 {
		t.Fatalf("Dequeue(6) = %v, want flow 3", e)
	}
	if _, ok := l.Dequeue(6); ok {
		t.Fatal("flow 1 dequeued before its send_time")
	}
	e, ok = l.Dequeue(100)
	if !ok || e.ID != 1 {
		t.Fatalf("Dequeue(100) = %v, want flow 1", e)
	}
}

// TestFig7StyleDequeue reproduces the documented outcome of the paper's
// Fig 7 walk-through: a 16-capacity list (sublists of 4) where a dequeue
// triggered at curr_time = 6 extracts element [flow 1, rank 50, send 5] —
// an ineligible smaller-ranked element is skipped, the source sublist was
// full, and Invariant 1 forces a refill from a neighbor.
func TestFig7StyleDequeue(t *testing.T) {
	l := New(16)
	// Lower-ranked elements that are not yet eligible at t=6.
	mustEnqueue(t, l, 7, 9, 88)
	mustEnqueue(t, l, 2, 9, 97)
	mustEnqueue(t, l, 0, 44, 34)
	mustEnqueue(t, l, 15, 0, 55)
	// The Fig 7 star: eligible at 5 with rank 50.
	mustEnqueue(t, l, 1, 50, 5)
	// Larger-ranked elements, some eligible, some not.
	mustEnqueue(t, l, 9, 62, 50)
	mustEnqueue(t, l, 11, 81, 5)
	mustEnqueue(t, l, 4, 102, 9)
	mustEnqueue(t, l, 8, 352, 5)
	mustEnqueue(t, l, 6, 402, 6)
	mustEnqueue(t, l, 3, 714, 0)
	mustEnqueue(t, l, 10, 753, 0)
	mustEnqueue(t, l, 12, 902, 12)
	mustEnqueue(t, l, 14, 921, 6)
	mustEnqueue(t, l, 13, 960, 9)

	e, ok := l.Dequeue(6)
	if !ok {
		t.Fatal("Dequeue(6) found nothing")
	}
	if e.ID != 1 || e.Rank != 50 || e.SendTime != 5 {
		t.Fatalf("Dequeue(6) = %v, want [1, 50, 5]", e)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFig6StyleEnqueueSpill drives the Fig 6 scenario: enqueueing into a
// full sublist whose right neighbor is also full must claim a fresh empty
// sublist for the pushed-out tail rather than cascading shifts.
func TestFig6StyleEnqueueSpill(t *testing.T) {
	l := New(16) // sublists of 4
	// Fill ranks 0..7 -> two full sublists.
	for id := uint32(0); id < 8; id++ {
		mustEnqueue(t, l, id, uint64(id*10), clock.Always)
	}
	// Insert a rank that lands inside the first (full) sublist.
	mustEnqueue(t, l, 100, 12, 2)
	snap := l.Snapshot()
	wantRanks := []uint64{0, 10, 12, 20, 30, 40, 50, 60, 70}
	if len(snap) != len(wantRanks) {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), len(wantRanks))
	}
	for i, w := range wantRanks {
		if snap[i].Rank != w {
			t.Fatalf("Snapshot[%d].Rank = %d, want %d (%v)", i, snap[i].Rank, w, snap)
		}
	}
	// The spill must have consumed a third sublist read/write pair.
	s := l.Stats()
	if s.SublistReads < 2 || s.SublistWrites < 2 {
		t.Fatalf("spilling enqueue did not touch two sublists: %+v", s)
	}
}

func TestDuplicateRejected(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 10, 0)
	if err := l.Enqueue(Entry{ID: 1, Rank: 99}); err != ErrDuplicate {
		t.Fatalf("duplicate Enqueue err = %v, want ErrDuplicate", err)
	}
	// After dequeue the id is usable again.
	l.Dequeue(0)
	mustEnqueue(t, l, 1, 99, 0)
}

func TestCapacityEnforced(t *testing.T) {
	l := New(8)
	for id := uint32(0); id < 8; id++ {
		mustEnqueue(t, l, id, uint64(id), clock.Always)
	}
	if err := l.Enqueue(Entry{ID: 99, Rank: 1}); err != ErrFull {
		t.Fatalf("over-capacity Enqueue err = %v, want ErrFull", err)
	}
	if l.Len() != 8 {
		t.Fatalf("Len = %d after rejected enqueue, want 8", l.Len())
	}
}

func TestDequeueFlow(t *testing.T) {
	l := New(32)
	for id := uint32(0); id < 10; id++ {
		mustEnqueue(t, l, id, uint64(100-id), clock.Never) // none eligible
	}
	e, ok := l.DequeueFlow(4)
	if !ok || e.ID != 4 {
		t.Fatalf("DequeueFlow(4) = %v, %v", e, ok)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.DequeueFlow(4); ok {
		t.Fatal("DequeueFlow(4) succeeded twice")
	}
	if l.Len() != 9 {
		t.Fatalf("Len = %d, want 9", l.Len())
	}
	// dequeue(f) works regardless of eligibility (clock.Never here).
	for _, id := range []uint32{0, 9, 5, 1, 8, 2, 7, 3, 6} {
		if _, ok := l.DequeueFlow(id); !ok {
			t.Fatalf("DequeueFlow(%d) failed", id)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
}

func TestNeverEligible(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 1, clock.Never)
	if _, ok := l.Dequeue(clock.Time(1) << 60); ok {
		t.Fatal("clock.Never element became eligible")
	}
}

func TestAlwaysEligible(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 1, clock.Always)
	if _, ok := l.Dequeue(0); !ok {
		t.Fatal("clock.Always element not eligible at t=0")
	}
}

func TestPeekDoesNotMutate(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 10, 5)
	mustEnqueue(t, l, 2, 20, 0)
	e, ok := l.Peek(3)
	if !ok || e.ID != 2 {
		t.Fatalf("Peek(3) = %v, want flow 2", e)
	}
	if l.Len() != 2 {
		t.Fatal("Peek mutated the list")
	}
	e2, _ := l.Peek(3)
	if e2 != e {
		t.Fatal("repeated Peek disagreed")
	}
}

func TestMinSendTime(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 10, 500)
	mustEnqueue(t, l, 2, 20, 100)
	mustEnqueue(t, l, 3, 30, 300)
	if got, ok := l.MinSendTime(); !ok || got != 100 {
		t.Fatalf("MinSendTime = %v,%v, want 100", got, ok)
	}
	l.DequeueFlow(2)
	if got, ok := l.MinSendTime(); !ok || got != 300 {
		t.Fatalf("MinSendTime = %v,%v, want 300", got, ok)
	}
}

func TestDequeueRange(t *testing.T) {
	l := New(32)
	// Node A owns ids 0-4, node B owns ids 5-9 (§4.3 logical PIEOs).
	mustEnqueue(t, l, 7, 1, clock.Always) // B, best rank overall
	mustEnqueue(t, l, 2, 5, clock.Always) // A
	mustEnqueue(t, l, 3, 3, clock.Never)  // A but never eligible
	mustEnqueue(t, l, 9, 9, clock.Always) // B

	e, ok := l.DequeueRange(0, 0, 4)
	if !ok || e.ID != 2 {
		t.Fatalf("DequeueRange(A) = %v, want flow 2", e)
	}
	e, ok = l.DequeueRange(0, 0, 4)
	if ok {
		t.Fatalf("DequeueRange(A) = %v, want none (flow 3 ineligible)", e)
	}
	e, ok = l.DequeueRange(0, 5, 9)
	if !ok || e.ID != 7 {
		t.Fatalf("DequeueRange(B) = %v, want flow 7", e)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPeekRange(t *testing.T) {
	l := New(32)
	mustEnqueue(t, l, 7, 1, clock.Always)
	mustEnqueue(t, l, 2, 5, clock.Always)
	e, ok := l.PeekRange(0, 0, 4)
	if !ok || e.ID != 2 {
		t.Fatalf("PeekRange = %v, want flow 2", e)
	}
	if l.Len() != 2 {
		t.Fatal("PeekRange mutated the list")
	}
}

func TestStatsCycleAccounting(t *testing.T) {
	l := New(16)
	mustEnqueue(t, l, 1, 1, clock.Always)
	mustEnqueue(t, l, 2, 2, clock.Always)
	l.Dequeue(0)
	l.DequeueFlow(2)
	s := l.Stats()
	if s.Enqueues != 2 || s.Dequeues != 1 || s.FlowDequeues != 1 {
		t.Fatalf("op counts wrong: %+v", s)
	}
	// Each primitive op is 4 cycles (§5.2).
	if s.Cycles != 16 {
		t.Fatalf("Cycles = %d, want 16 (4 ops x 4 cycles)", s.Cycles)
	}
	if _, ok := l.Dequeue(0); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	if l.Stats().EmptyDequeues != 1 {
		t.Fatalf("EmptyDequeues = %d, want 1", l.Stats().EmptyDequeues)
	}
}

func TestAtMostTwoSublistsPerOp(t *testing.T) {
	// O(1) ops: each enqueue/dequeue touches at most two sublists
	// (reads and writes), independent of N.
	l := New(1024)
	rng := rand.New(rand.NewSource(3))
	var prev Stats
	for i := 0; i < 2000; i++ {
		prev = l.Stats()
		if l.Len() < l.Capacity() && (l.Len() == 0 || rng.Intn(3) > 0) {
			err := l.Enqueue(Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Time(rng.Intn(64))})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			l.Dequeue(clock.Time(rng.Intn(64)))
		}
		cur := l.Stats()
		if reads := cur.SublistReads - prev.SublistReads; reads > 2 {
			t.Fatalf("op %d read %d sublists, want <= 2", i, reads)
		}
		if writes := cur.SublistWrites - prev.SublistWrites; writes > 2 {
			t.Fatalf("op %d wrote %d sublists, want <= 2", i, writes)
		}
	}
}

func TestSnapshotSorted(t *testing.T) {
	l := New(256)
	rng := rand.New(rand.NewSource(9))
	for id := uint32(0); id < 200; id++ {
		mustEnqueue(t, l, id, uint64(rng.Intn(100)), clock.Time(rng.Intn(50)))
	}
	snap := l.Snapshot()
	if len(snap) != 200 {
		t.Fatalf("Snapshot len = %d, want 200", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Rank < snap[i-1].Rank {
			t.Fatalf("Snapshot unsorted at %d: %v < %v", i, snap[i].Rank, snap[i-1].Rank)
		}
	}
}

func TestFillDrainFill(t *testing.T) {
	l := New(100)
	for round := 0; round < 3; round++ {
		for id := uint32(0); id < 100; id++ {
			mustEnqueue(t, l, id, uint64((id*37)%64), clock.Always)
		}
		if l.Len() != 100 {
			t.Fatalf("round %d: Len = %d", round, l.Len())
		}
		var prev uint64
		for i := 0; i < 100; i++ {
			e, ok := l.Dequeue(0)
			if !ok {
				t.Fatalf("round %d: drained early at %d", round, i)
			}
			if e.Rank < prev {
				t.Fatalf("round %d: rank went backwards %d -> %d", round, prev, e.Rank)
			}
			prev = e.Rank
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{ID: 1, Rank: 50, SendTime: 5}
	if got := e.String(); got != "[1, 50, 5]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSublistSizeAblationGeometries(t *testing.T) {
	// The list must stay correct for any sublist size, not just sqrt(N).
	for _, s := range []int{1, 2, 3, 7, 16, 64} {
		l := NewWithSublistSize(64, s)
		for id := uint32(0); id < 64; id++ {
			if err := l.Enqueue(Entry{ID: id, Rank: uint64(64 - id), SendTime: clock.Always}); err != nil {
				t.Fatalf("s=%d: %v", s, err)
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("s=%d after enqueue %d: %v", s, id, err)
			}
		}
		var prev uint64
		for i := 0; i < 64; i++ {
			e, ok := l.Dequeue(0)
			if !ok || e.Rank < prev {
				t.Fatalf("s=%d: bad dequeue %v ok=%v prev=%d", s, e, ok, prev)
			}
			prev = e.Rank
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("s=%d after dequeue %d: %v", s, i, err)
			}
		}
	}
}

func TestSublistBudgetNeverExhausted(t *testing.T) {
	// Invariant 1's storage bound: the 2*ceil(N/S)+2 sublists must
	// suffice under adversarial full/partial fragmentation patterns.
	// Drive interleaved enqueue bursts and targeted dequeues designed to
	// fragment (dequeue every other element by rank), at full capacity.
	const n = 256
	l := New(n)
	for i := uint32(0); i < n; i++ {
		mustEnqueue(t, l, i, uint64(i), clock.Always)
	}
	// Remove alternating elements (by current rank order) to create
	// maximal partial-fill, then refill; repeat. The empty partition
	// must never run dry (Enqueue would panic if it did).
	next := uint32(n)
	for round := 0; round < 10; round++ {
		snap := l.Snapshot()
		for i := round % 2; i < len(snap); i += 2 {
			if _, ok := l.DequeueFlow(snap[i].ID); !ok {
				t.Fatalf("round %d: snapshot id %d missing", round, snap[i].ID)
			}
		}
		for l.Len() < n {
			mustEnqueue(t, l, next, uint64(next%61), clock.Always)
			next++
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func ExampleList() {
	l := New(16)
	l.Enqueue(Entry{ID: 1, Rank: 10, SendTime: 100}) // eligible at t=100
	l.Enqueue(Entry{ID: 2, Rank: 20, SendTime: 0})   // always eligible

	e, _ := l.Dequeue(50) // flow 1 not yet eligible: flow 2 wins despite larger rank
	fmt.Println(e)
	e, _ = l.Dequeue(100) // now flow 1 is eligible
	fmt.Println(e)
	// Output:
	// [2, 20, 0]
	// [1, 10, 100]
}
