package core

import "pieo/internal/clock"

// Rank-range operations (§8): the paper observes that the PIEO
// implementation "can be naturally extended to support predicates of the
// form a <= key <= b", making the structure an efficient hardware
// dictionary. These operations reuse the Ordered-Sublist-Array exactly
// like the time-predicate path: the pointer array locates the one or two
// candidate sublists in one parallel compare + priority encode, and the
// sublist-level compare finds the element, so the O(1)-sublist-touch
// property is preserved.

// MinRankAtLeast returns the smallest-ranked entry whose rank is >= lo
// (ignoring eligibility), without removing it. ok is false when every
// entry ranks below lo or the list is empty.
func (l *List) MinRankAtLeast(lo uint64) (Entry, bool) {
	pos, idx := l.findMinRankAtLeast(lo)
	if pos == -1 {
		return Entry{}, false
	}
	return l.sublists[l.order[pos].sublistID].entries[idx].Entry, true
}

// DequeueRankRange extracts the smallest-ranked entry with
// lo <= rank <= hi, ignoring eligibility — the §8 dictionary range
// filter. ok is false when no entry ranks inside the range.
func (l *List) DequeueRankRange(lo, hi uint64) (Entry, bool) {
	pos, idx := l.findMinRankAtLeast(lo)
	if pos == -1 {
		return Entry{}, false
	}
	sl := &l.sublists[l.order[pos].sublistID]
	if sl.entries[idx].Rank > hi {
		return Entry{}, false
	}
	l.stats.FlowDequeues++ // datapath-wise identical to dequeue(f)
	l.stats.Cycles += 4
	l.stats.SublistReads++
	l.stats.ElemCompares += uint64(sl.len())
	out := sl.entries[idx].Entry
	l.extractAt(pos, sl, idx)
	return out, true
}

// CountRankRange returns how many entries have lo <= rank <= hi. It is
// O(number of matching sublists) in the model and O(n) worst case in
// software; intended for dictionary-style queries and tests.
func (l *List) CountRankRange(lo, hi uint64) int {
	count := 0
	for i := 0; i < l.active; i++ {
		sl := &l.sublists[l.order[i].sublistID]
		if sl.entries[0].Rank > hi {
			break // sublists are rank-partitioned: nothing further matches
		}
		for _, e := range sl.entries {
			if e.Rank >= lo && e.Rank <= hi {
				count++
			}
		}
	}
	return count
}

// findMinRankAtLeast locates the first entry (in global rank order) with
// rank >= lo. Because consecutive sublists partition the rank order, the
// answer is either in the sublist where lo "would insert" or at the head
// of the next one — at most two sublists are inspected, mirroring the
// hardware's two-read budget.
func (l *List) findMinRankAtLeast(lo uint64) (pos, idx int) {
	if l.active == 0 {
		return -1, -1
	}
	l.stats.PtrCompares += uint64(l.active)
	// First sublist whose smallest rank is >= lo: its head is a
	// candidate. The preceding sublist may also hold entries >= lo in
	// its tail. Both searches are binary — the pointer array's smallest
	// ranks are nondecreasing and each sublist is rank-ordered — while
	// Stats charges the hardware's parallel comparators as usual.
	flo, fhi := 0, l.active
	for flo < fhi {
		mid := int(uint(flo+fhi) >> 1)
		if l.order[mid].smallestRank >= lo {
			fhi = mid
		} else {
			flo = mid + 1
		}
	}
	first := flo
	if first > 0 {
		prev := &l.sublists[l.order[first-1].sublistID]
		l.stats.ElemCompares += uint64(prev.len())
		entries := prev.entries
		jlo, jhi := 0, len(entries)
		for jlo < jhi {
			mid := int(uint(jlo+jhi) >> 1)
			if entries[mid].Rank >= lo {
				jhi = mid
			} else {
				jlo = mid + 1
			}
		}
		if jlo < len(entries) {
			return first - 1, jlo
		}
	}
	if first < l.active {
		return first, 0
	}
	return -1, -1
}

// UpdateRank atomically changes the rank (and optionally the send time)
// of the element with the given id, preserving its position semantics:
// it is the §3.1 dequeue(f) + enqueue(f) pattern fused into one call.
// ok is false when id is not queued.
func (l *List) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	e, ok := l.DequeueFlow(id)
	if !ok {
		return false
	}
	e.Rank = rank
	e.SendTime = sendTime
	if err := l.Enqueue(e); err != nil {
		// The slot we just freed guarantees capacity; duplicate is
		// impossible because we removed the id.
		panic("pieo: UpdateRank re-enqueue failed: " + err.Error())
	}
	return true
}

// UpdateRankSeq is UpdateRank with a caller-supplied FIFO sequence for
// the re-enqueued element (see EnqueueSeq): lists driven by an external
// sequence must reset the element's FIFO position from the same counter.
func (l *List) UpdateRankSeq(id uint32, rank uint64, sendTime clock.Time, seq uint64) bool {
	e, ok := l.DequeueFlow(id)
	if !ok {
		return false
	}
	e.Rank = rank
	e.SendTime = sendTime
	if err := l.EnqueueSeq(e, seq); err != nil {
		panic("pieo: UpdateRankSeq re-enqueue failed: " + err.Error())
	}
	return true
}
