package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
)

func TestMinRankAtLeast(t *testing.T) {
	l := New(64)
	for _, r := range []uint64{10, 20, 30, 40, 50} {
		mustEnqueue(t, l, uint32(r), r, clock.Never) // eligibility irrelevant
	}
	cases := []struct {
		lo     uint64
		want   uint64
		wantOK bool
	}{
		{0, 10, true},
		{10, 10, true},
		{11, 20, true},
		{35, 40, true},
		{50, 50, true},
		{51, 0, false},
	}
	for _, c := range cases {
		e, ok := l.MinRankAtLeast(c.lo)
		if ok != c.wantOK || (ok && e.Rank != c.want) {
			t.Fatalf("MinRankAtLeast(%d) = %v,%v, want %d,%v", c.lo, e, ok, c.want, c.wantOK)
		}
	}
	if l.Len() != 5 {
		t.Fatal("MinRankAtLeast mutated the list")
	}
}

func TestDequeueRankRange(t *testing.T) {
	l := New(64)
	for _, r := range []uint64{10, 20, 30, 40, 50} {
		mustEnqueue(t, l, uint32(r), r, clock.Never)
	}
	if _, ok := l.DequeueRankRange(21, 29); ok {
		t.Fatal("empty range returned an entry")
	}
	e, ok := l.DequeueRankRange(15, 45)
	if !ok || e.Rank != 20 {
		t.Fatalf("DequeueRankRange(15,45) = %v,%v, want rank 20", e, ok)
	}
	e, ok = l.DequeueRankRange(15, 45)
	if !ok || e.Rank != 30 {
		t.Fatalf("second DequeueRankRange = %v, want rank 30", e)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestCountRankRange(t *testing.T) {
	l := New(256)
	for i := uint64(0); i < 100; i++ {
		mustEnqueue(t, l, uint32(i), i%10, clock.Always)
	}
	if got := l.CountRankRange(0, 9); got != 100 {
		t.Fatalf("CountRankRange(all) = %d, want 100", got)
	}
	if got := l.CountRankRange(3, 5); got != 30 {
		t.Fatalf("CountRankRange(3,5) = %d, want 30", got)
	}
	if got := l.CountRankRange(10, 99); got != 0 {
		t.Fatalf("CountRankRange(10,99) = %d, want 0", got)
	}
}

func TestUpdateRank(t *testing.T) {
	l := New(64)
	mustEnqueue(t, l, 1, 50, clock.Never)
	mustEnqueue(t, l, 2, 10, clock.Always)
	if !l.UpdateRank(1, 5, clock.Always) {
		t.Fatal("UpdateRank reported missing flow")
	}
	if l.UpdateRank(99, 1, clock.Always) {
		t.Fatal("UpdateRank invented a flow")
	}
	e, ok := l.Dequeue(0)
	if !ok || e.ID != 1 || e.Rank != 5 {
		t.Fatalf("Dequeue = %v,%v, want updated flow 1", e, ok)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRankRangeTouchesAtMostTwoSublists(t *testing.T) {
	l := New(1024)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1024; i++ {
		mustEnqueue(t, l, uint32(i), uint64(rng.Intn(1<<16)), clock.Always)
	}
	for i := 0; i < 500; i++ {
		before := l.Stats()
		lo := uint64(rng.Intn(1 << 16))
		e, ok := l.DequeueRankRange(lo, lo+1000)
		after := l.Stats()
		if reads := after.SublistReads - before.SublistReads; reads > 2 {
			t.Fatalf("range dequeue read %d sublists", reads)
		}
		if ok {
			if e.Rank < lo || e.Rank > lo+1000 {
				t.Fatalf("out-of-range rank %d for [%d,%d]", e.Rank, lo, lo+1000)
			}
			if err := l.Enqueue(e); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: DequeueRankRange returns exactly the minimum in-range rank,
// matching a brute-force scan of the snapshot.
func TestDequeueRankRangeProperty(t *testing.T) {
	f := func(ranks []uint16, lo16, span uint16) bool {
		if len(ranks) == 0 {
			return true
		}
		if len(ranks) > 256 {
			ranks = ranks[:256]
		}
		l := New(len(ranks))
		for i, r := range ranks {
			if err := l.Enqueue(Entry{ID: uint32(i), Rank: uint64(r), SendTime: clock.Never}); err != nil {
				return false
			}
		}
		lo, hi := uint64(lo16), uint64(lo16)+uint64(span)
		// Brute force expectation.
		var want *Entry
		for _, e := range l.Snapshot() {
			if e.Rank >= lo && e.Rank <= hi {
				e := e
				want = &e
				break // snapshot is rank-sorted with FIFO ties
			}
		}
		got, ok := l.DequeueRankRange(lo, hi)
		if want == nil {
			return !ok
		}
		if !ok || got != *want {
			return false
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinRankAtLeast agrees with the snapshot scan and never
// mutates.
func TestMinRankAtLeastProperty(t *testing.T) {
	f := func(ranks []uint16, lo16 uint16) bool {
		if len(ranks) == 0 {
			return true
		}
		if len(ranks) > 256 {
			ranks = ranks[:256]
		}
		l := New(len(ranks))
		for i, r := range ranks {
			if err := l.Enqueue(Entry{ID: uint32(i), Rank: uint64(r), SendTime: clock.Always}); err != nil {
				return false
			}
		}
		lo := uint64(lo16)
		var want *Entry
		for _, e := range l.Snapshot() {
			if e.Rank >= lo {
				e := e
				want = &e
				break
			}
		}
		got, ok := l.MinRankAtLeast(lo)
		if want == nil {
			return !ok && l.Len() == len(ranks)
		}
		return ok && got == *want && l.Len() == len(ranks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
