// Package dict realizes §8 of the paper: PIEO viewed as an abstract
// dictionary data type. The ordered list maintains (key, value) pairs
// indexed by key (the PIEO rank), supporting search, insert, delete and
// update in the same O(1)-model time as the scheduling operations, plus
// the range filter (a <= key <= b) that hashtables and search trees make
// expensive — the paper argues this makes PIEO "a potential alternative
// to the traditional hardware implementations of the dictionary data
// type".
//
// Keys are unique uint64s; values are opaque. Internally each pair is
// one PIEO element with rank = key; the send_time channel is unused
// (clock.Never) since dictionary lookups are not time-filtered.
package dict

import (
	"fmt"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// Dict is a PIEO-backed ordered dictionary.
type Dict[V any] struct {
	list   backend.RankRanger
	values map[uint32]V      // element id -> value
	ids    map[uint64]uint32 // key -> element id
	nextID uint32
}

// New creates a dictionary holding up to capacity pairs over the
// paper-exact list backend.
func New[V any](capacity int) *Dict[V] {
	return NewOn[V](backend.NewCoreList(capacity))
}

// NewOn creates a dictionary over any backend that supports rank-range
// queries. Capacity is the backend's.
func NewOn[V any](list backend.RankRanger) *Dict[V] {
	return &Dict[V]{
		list:   list,
		values: make(map[uint32]V),
		ids:    make(map[uint64]uint32),
	}
}

// Len returns the number of stored pairs.
func (d *Dict[V]) Len() int { return d.list.Len() }

// Insert stores (key, value). It returns false when the key already
// exists (use Update) or the dictionary is full.
func (d *Dict[V]) Insert(key uint64, value V) bool {
	if _, exists := d.ids[key]; exists {
		return false
	}
	d.nextID++
	id := d.nextID
	if err := d.list.Enqueue(core.Entry{ID: id, Rank: key, SendTime: clock.Never}); err != nil {
		return false
	}
	d.ids[key] = id
	d.values[id] = value
	return true
}

// Search returns the value stored under key.
func (d *Dict[V]) Search(key uint64) (V, bool) {
	id, exists := d.ids[key]
	if !exists {
		var zero V
		return zero, false
	}
	return d.values[id], true
}

// Delete removes key and returns its value.
func (d *Dict[V]) Delete(key uint64) (V, bool) {
	id, exists := d.ids[key]
	if !exists {
		var zero V
		return zero, false
	}
	if _, ok := d.list.DequeueFlow(id); !ok {
		panic(fmt.Sprintf("dict: index desynchronized for key %d", key))
	}
	v := d.values[id]
	delete(d.values, id)
	delete(d.ids, key)
	return v, true
}

// Update replaces the value under an existing key. It returns false when
// the key does not exist.
func (d *Dict[V]) Update(key uint64, value V) bool {
	id, exists := d.ids[key]
	if !exists {
		return false
	}
	d.values[id] = value
	return true
}

// Min returns the smallest key and its value.
func (d *Dict[V]) Min() (uint64, V, bool) {
	e, ok := d.list.MinRankAtLeast(0)
	if !ok {
		var zero V
		return 0, zero, false
	}
	return e.Rank, d.values[e.ID], true
}

// Ceiling returns the smallest key >= lo and its value — the successor
// query search trees provide and hashtables cannot.
func (d *Dict[V]) Ceiling(lo uint64) (uint64, V, bool) {
	e, ok := d.list.MinRankAtLeast(lo)
	if !ok {
		var zero V
		return 0, zero, false
	}
	return e.Rank, d.values[e.ID], true
}

// Range calls fn for every pair with lo <= key <= hi in ascending key
// order; fn returning false stops the scan. This is the §8 range filter.
func (d *Dict[V]) Range(lo, hi uint64, fn func(key uint64, value V) bool) {
	for _, e := range d.list.Snapshot() {
		if e.Rank < lo {
			continue
		}
		if e.Rank > hi {
			return
		}
		if !fn(e.Rank, d.values[e.ID]) {
			return
		}
	}
}

// PopRange removes and returns the smallest key in [lo, hi] with its
// value — a destructive range extraction in O(1) model time.
func (d *Dict[V]) PopRange(lo, hi uint64) (uint64, V, bool) {
	e, ok := d.list.DequeueRankRange(lo, hi)
	if !ok {
		var zero V
		return 0, zero, false
	}
	v := d.values[e.ID]
	delete(d.values, e.ID)
	delete(d.ids, e.Rank)
	return e.Rank, v, true
}

// Keys returns all keys in ascending order.
func (d *Dict[V]) Keys() []uint64 {
	snap := d.list.Snapshot()
	keys := make([]uint64, len(snap))
	for i, e := range snap {
		keys[i] = e.Rank
	}
	return keys
}

// Stats exposes the underlying list's operation counters.
func (d *Dict[V]) Stats() backend.Stats { return d.list.Stats() }

// HardwareStats exposes the §5 datapath counters when the backend models
// a hardware datapath, and zeroes otherwise.
func (d *Dict[V]) HardwareStats() core.Stats {
	if hw, ok := d.list.(backend.HardwareModeled); ok {
		return hw.HardwareStats()
	}
	return core.Stats{}
}
