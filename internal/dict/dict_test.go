package dict

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertSearchDelete(t *testing.T) {
	d := New[string](16)
	if !d.Insert(42, "answer") {
		t.Fatal("Insert failed")
	}
	if d.Insert(42, "dup") {
		t.Fatal("duplicate Insert succeeded")
	}
	v, ok := d.Search(42)
	if !ok || v != "answer" {
		t.Fatalf("Search = %q,%v", v, ok)
	}
	if _, ok := d.Search(7); ok {
		t.Fatal("Search found a missing key")
	}
	v, ok = d.Delete(42)
	if !ok || v != "answer" {
		t.Fatalf("Delete = %q,%v", v, ok)
	}
	if _, ok := d.Delete(42); ok {
		t.Fatal("double Delete succeeded")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestUpdate(t *testing.T) {
	d := New[int](8)
	d.Insert(1, 100)
	if !d.Update(1, 200) {
		t.Fatal("Update failed")
	}
	if d.Update(2, 1) {
		t.Fatal("Update invented a key")
	}
	if v, _ := d.Search(1); v != 200 {
		t.Fatalf("Search after Update = %d", v)
	}
}

func TestMinAndCeiling(t *testing.T) {
	d := New[string](16)
	d.Insert(30, "c")
	d.Insert(10, "a")
	d.Insert(20, "b")
	k, v, ok := d.Min()
	if !ok || k != 10 || v != "a" {
		t.Fatalf("Min = %d,%q,%v", k, v, ok)
	}
	k, v, ok = d.Ceiling(15)
	if !ok || k != 20 || v != "b" {
		t.Fatalf("Ceiling(15) = %d,%q,%v", k, v, ok)
	}
	if _, _, ok := d.Ceiling(31); ok {
		t.Fatal("Ceiling(31) found something")
	}
}

func TestRangeScan(t *testing.T) {
	d := New[int](32)
	for k := uint64(0); k < 20; k++ {
		d.Insert(k*5, int(k))
	}
	var keys []uint64
	d.Range(23, 61, func(k uint64, v int) bool {
		keys = append(keys, k)
		return true
	})
	want := []uint64{25, 30, 35, 40, 45, 50, 55, 60}
	if len(keys) != len(want) {
		t.Fatalf("Range keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range keys = %v, want %v", keys, want)
		}
	}
	// Early stop.
	n := 0
	d.Range(0, 100, func(uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPopRange(t *testing.T) {
	d := New[string](16)
	d.Insert(10, "a")
	d.Insert(20, "b")
	d.Insert(30, "c")
	k, v, ok := d.PopRange(15, 35)
	if !ok || k != 20 || v != "b" {
		t.Fatalf("PopRange = %d,%q,%v", k, v, ok)
	}
	if _, ok := d.Search(20); ok {
		t.Fatal("popped key still present")
	}
	if _, _, ok := d.PopRange(21, 29); ok {
		t.Fatal("empty range popped something")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	d := New[int](128)
	rng := rand.New(rand.NewSource(3))
	inserted := map[uint64]bool{}
	for len(inserted) < 100 {
		k := uint64(rng.Intn(1 << 20))
		if d.Insert(k, 0) {
			inserted[k] = true
		}
	}
	keys := d.Keys()
	if len(keys) != 100 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys not sorted")
	}
}

func TestCapacity(t *testing.T) {
	d := New[int](2)
	if !d.Insert(1, 1) || !d.Insert(2, 2) {
		t.Fatal("inserts failed")
	}
	if d.Insert(3, 3) {
		t.Fatal("Insert past capacity succeeded")
	}
	d.Delete(1)
	if !d.Insert(3, 3) {
		t.Fatal("Insert after Delete failed")
	}
}

// Property: the dictionary behaves exactly like a Go map + sort under a
// random op sequence.
func TestDictMatchesMapProperty(t *testing.T) {
	f := func(ops []struct {
		Op  uint8
		Key uint8
		Val uint16
	}) bool {
		d := New[uint16](64)
		model := map[uint64]uint16{}
		for _, op := range ops {
			k := uint64(op.Key % 32)
			switch op.Op % 4 {
			case 0:
				gotOK := d.Insert(k, op.Val)
				_, exists := model[k]
				wantOK := !exists && len(model) < 64
				if gotOK != wantOK {
					return false
				}
				if gotOK {
					model[k] = op.Val
				}
			case 1:
				v, ok := d.Search(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				v, ok := d.Delete(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, k)
			case 3:
				ok := d.Update(k, op.Val)
				_, mok := model[k]
				if ok != mok {
					return false
				}
				if ok {
					model[k] = op.Val
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		// Final key sets agree.
		keys := d.Keys()
		if len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			if _, ok := model[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
