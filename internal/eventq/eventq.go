// Package eventq implements the discrete-event queue that drives the
// network simulator. It is a plain binary min-heap ordered by event time,
// with FIFO tie-breaking among events scheduled for the same instant so
// that simulation runs are fully deterministic.
package eventq

import "pieo/internal/clock"

// Event is a callback scheduled to run at a simulated instant.
type Event struct {
	At clock.Time
	// Run executes the event. It receives the event's own timestamp so
	// handlers do not need to capture it.
	Run func(now clock.Time)

	seq uint64 // insertion order, breaks ties deterministically
}

// Queue is a min-heap of events. The zero value is an empty queue ready
// to use.
type Queue struct {
	heap []Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to run at t.
func (q *Queue) Push(t clock.Time, fn func(now clock.Time)) {
	q.seq++
	q.heap = append(q.heap, Event{At: t, Run: fn, seq: q.seq})
	q.up(len(q.heap) - 1)
}

// PeekTime returns the timestamp of the earliest pending event. The second
// result is false when the queue is empty.
func (q *Queue) PeekTime() (clock.Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}

// Pop removes and returns the earliest pending event. The second result is
// false when the queue is empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
