package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatalf("PeekTime on empty queue reported ok")
	}
	if _, ok := q.Pop(); ok {
		t.Fatalf("Pop on empty queue reported ok")
	}
}

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []clock.Time{50, 10, 30, 10, 99, 0, 30}
	for _, at := range times {
		q.Push(at, nil)
	}
	want := append([]clock.Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		ev, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop #%d: queue empty early", i)
		}
		if ev.At != w {
			t.Fatalf("Pop #%d: At = %v, want %v", i, ev.At, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained, Len() = %d", q.Len())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(42, func(clock.Time) { order = append(order, i) })
	}
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		ev.Run(ev.At)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue
	q.Push(7, nil)
	q.Push(3, nil)
	at, ok := q.PeekTime()
	if !ok || at != 3 {
		t.Fatalf("PeekTime = %v,%v want 3,true", at, ok)
	}
	ev, _ := q.Pop()
	if ev.At != 3 {
		t.Fatalf("Pop.At = %v, want 3", ev.At)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	var drained []clock.Time
	pending := 0
	var floor clock.Time // simulation time never goes backwards
	for i := 0; i < 5000; i++ {
		if pending == 0 || rng.Intn(2) == 0 {
			q.Push(floor+clock.Time(rng.Intn(1000)), nil)
			pending++
		} else {
			ev, ok := q.Pop()
			if !ok {
				t.Fatalf("Pop failed with %d pending", pending)
			}
			if ev.At < floor {
				t.Fatalf("event time %v went backwards past %v", ev.At, floor)
			}
			floor = ev.At
			drained = append(drained, ev.At)
			pending--
		}
	}
	for i := 1; i < len(drained); i++ {
		if drained[i] < drained[i-1] {
			t.Fatalf("drained times not monotone at %d: %v < %v", i, drained[i], drained[i-1])
		}
	}
}

// Property: popping everything returns a sorted permutation of what was
// pushed.
func TestHeapSortProperty(t *testing.T) {
	f := func(times []uint32) bool {
		var q Queue
		for _, at := range times {
			q.Push(clock.Time(at), nil)
		}
		got := make([]clock.Time, 0, len(times))
		for {
			ev, ok := q.Pop()
			if !ok {
				break
			}
			got = append(got, ev.At)
		}
		if len(got) != len(times) {
			return false
		}
		want := make([]clock.Time, len(times))
		for i, at := range times {
			want[i] = clock.Time(at)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
