package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/flowq"
	"pieo/internal/hwmodel"
	"pieo/internal/sched"
)

// Ablation studies the design choices DESIGN.md calls out:
//
//  1. sublist geometry — the √N sublist size minimizes logic (the §5
//     trade-off between pointer-array width and sublist width),
//  2. pipelining — §6.2's discussion of why dual-port SRAM caps the
//     design at one operation per 4 cycles, and what a pipelined ASIC
//     could do,
//  3. trigger model — §3.2.1's trade-off: output-triggered enqueue puts
//     the rank computation on the critical dequeue path.
func Ablation() *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "Design ablations (sublist geometry / pipelining / trigger model)",
		Columns: []string{"study", "configuration", "metric", "value"},
	}

	// 1. Sublist geometry at N=4096 (sqrt = 64).
	const n = 4096
	for _, s := range []int{8, 16, 32, 64, 128, 256, 512} {
		g := hwmodel.GeometryWithSublistSize(n, s)
		r := hwmodel.PIEOResources(g)
		label := fmt.Sprintf("N=4096 S=%d", s)
		if s == 64 {
			label += " (sqrt)"
		}
		t.Rows = append(t.Rows, []string{
			"sublist-size", label, "ALMs",
			fmt.Sprintf("%d (ff %d, cmp %d)", r.ALMs, r.FlipFlopBits, r.Comparators16),
		})
	}
	for _, s := range []int{8, 64, 512} {
		goNs := measureGoNsPerOpWithSublist(n, s, 100_000)
		t.Rows = append(t.Rows, []string{
			"sublist-size", fmt.Sprintf("N=4096 S=%d", s), "Go model ns/op",
			fmt.Sprintf("%.0f", goNs),
		})
	}

	// 2. Pipelining: decisions per second at the modeled clock.
	for _, size := range []int{1 << 10, 30000} {
		f := hwmodel.PIEOClockMHz(hwmodel.PIEOGeometry(size))
		t.Rows = append(t.Rows,
			[]string{"pipelining", fmt.Sprintf("%s non-pipelined (prototype)", sizeLabel(size)), "Mops/s",
				fmt.Sprintf("%.1f", hwmodel.SchedulingRateMops(f, hwmodel.CyclesPerOp))},
			[]string{"pipelining", fmt.Sprintf("%s fully pipelined (SRAM-port bound lifted)", sizeLabel(size)), "Mops/s",
				fmt.Sprintf("%.1f", hwmodel.SchedulingRateMops(f, 1))},
		)
	}

	// 3. Trigger model: measured critical-path cost of the dequeue and
	// arrival paths under each model for a pacing program.
	for _, model := range []sched.TriggerModel{sched.OutputTriggered, sched.InputTriggered} {
		arrivalNs, dequeueNs := measureTriggerModel(model, 50_000)
		t.Rows = append(t.Rows,
			[]string{"trigger-model", model.String(), "arrival path ns", fmt.Sprintf("%.0f", arrivalNs)},
			[]string{"trigger-model", model.String(), "dequeue path ns", fmt.Sprintf("%.0f", dequeueNs)},
		)
	}
	t.Notes = []string{
		"logic is minimized near S = sqrt(N); far smaller S inflates the pointer array, far larger S inflates staging/comparators",
		"output-triggered runs PreEnqueue on the dequeue path; input-triggered precomputes at arrival (§3.2.1)",
	}
	return t
}

func measureGoNsPerOpWithSublist(n, s, ops int) float64 {
	l := core.NewWithSublistSize(n, s)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n/2; i++ {
		if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always}); err != nil {
			panic(err)
		}
	}
	nextID := uint32(n)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			nextID++
			_ = l.Enqueue(core.Entry{ID: nextID, Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always})
		} else {
			l.Dequeue(0)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// measureTriggerModel times a pacing program under one trigger model:
// the same release-time algorithm expressed with PreEnqueue
// (output-triggered, computed at dequeue-driven re-enqueue) or PrePacket
// (input-triggered, computed at arrival).
func measureTriggerModel(model sched.TriggerModel, ops int) (arrivalNs, dequeueNs float64) {
	var prog *sched.Program
	switch model {
	case sched.OutputTriggered:
		prog = &sched.Program{
			Name: "pace-output",
			PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
				head, _ := f.Queue.Head()
				f.Rank = uint64(head.SendAt)
				f.SendTime = head.SendAt
			},
		}
	case sched.InputTriggered:
		prog = &sched.Program{
			Name:  "pace-input",
			Model: sched.InputTriggered,
			PrePacket: func(s *sched.Scheduler, now clock.Time, f *sched.Flow, p *flowq.Packet) {
				p.Rank = uint64(p.SendAt)
			},
		}
	}
	const nFlows = 1024
	s := sched.New(prog, nFlows, 40)

	rng := rand.New(rand.NewSource(7))
	arrive := func(i int) flowq.Packet {
		return flowq.Packet{
			Flow:   flowq.FlowID(rng.Intn(nFlows)),
			Size:   1500,
			SendAt: clock.Time(rng.Intn(1 << 20)),
			Seq:    uint64(i),
		}
	}
	// Warm up with a standing backlog.
	for i := 0; i < nFlows*2; i++ {
		s.OnArrival(0, arrive(i))
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		s.OnArrival(0, arrive(i))
	}
	arrivalNs = float64(time.Since(start).Nanoseconds()) / float64(ops)

	start = time.Now()
	served := 0
	for served < ops {
		if _, ok := s.NextPacket(clock.Time(1) << 40); !ok {
			break
		}
		served++
	}
	if served > 0 {
		dequeueNs = float64(time.Since(start).Nanoseconds()) / float64(served)
	}
	return arrivalNs, dequeueNs
}
