package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/approx"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/stats"
)

// Approx quantifies §2.3's claim about approximate datastructures
// ("multi-priority fifo queue, calendar queue, timing wheel"): they
// scale, but only express approximate versions of scheduling algorithms,
// and their quality hinges on configuration parameters that are not
// trivial to tune. Three measurements against the exact PIEO list:
//
//  1. rank-order deviation of a multi-priority FIFO as the band count
//     varies,
//  2. rank-order deviation of a calendar queue as the bucket width
//     varies (including the year-collision cliff),
//  3. pacing-release error of a timing wheel as the slot size varies.
func Approx() *Table {
	const n = 2048
	rng := rand.New(rand.NewSource(17))
	entries := make([]core.Entry, n)
	for i := range entries {
		entries[i] = core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always}
	}
	ideal := exactDrainOrder(entries)

	t := &Table{
		ID:      "approx",
		Title:   "Approximate datastructures vs exact PIEO (§2.3)",
		Columns: []string{"structure", "configuration", "max order dev", "mean order dev", "note"},
	}
	t.Rows = append(t.Rows, []string{"PIEO ordered list", "N=2048 (exact)", "0", "0.00", "reference"})

	for _, k := range []int{4, 16, 64, 256, 1024} {
		m := approx.NewMultiPriorityFIFO(k, 1<<16)
		for _, e := range entries {
			m.Enqueue(e)
		}
		var order []string
		for {
			e, ok := m.Dequeue()
			if !ok {
				break
			}
			order = append(order, fmt.Sprintf("%d", e.ID))
		}
		maxDev, meanDev := stats.OrderDeviation(ideal, order)
		t.Rows = append(t.Rows, []string{
			"multi-priority FIFO", fmt.Sprintf("%d bands", k),
			fmt.Sprintf("%d", maxDev), fmt.Sprintf("%.1f", meanDev),
			fmt.Sprintf("%d flip-flop FIFOs", k),
		})
	}

	for _, width := range []uint64{16, 64, 256, 2048} {
		buckets := 64
		c := approx.NewCalendarQueue(buckets, width)
		for _, e := range entries {
			c.Enqueue(e)
		}
		var order []string
		for {
			e, ok := c.Dequeue()
			if !ok {
				break
			}
			order = append(order, fmt.Sprintf("%d", e.ID))
		}
		maxDev, meanDev := stats.OrderDeviation(ideal, order)
		note := ""
		if uint64(buckets)*width < 1<<16 {
			note = "year < rank space: collisions"
		}
		t.Rows = append(t.Rows, []string{
			"calendar queue", fmt.Sprintf("64 buckets x %d", width),
			fmt.Sprintf("%d", maxDev), fmt.Sprintf("%.1f", meanDev), note,
		})
	}

	for _, slot := range []clock.Time{32, 256, 2048} {
		w := approx.NewTimingWheel(4096, slot)
		maxErr := clock.Time(0)
		var totalErr uint64
		count := 0
		for _, e := range entries {
			send := clock.Time(rng.Intn(1 << 16))
			w.Enqueue(core.Entry{ID: e.ID, Rank: e.Rank, SendTime: send})
		}
		for now := clock.Time(0); count < n; now += slot {
			for {
				e, ok := w.Dequeue(now)
				if !ok {
					break
				}
				// Early-release error: how far before its send time the
				// wheel made the element available.
				if e.SendTime > now {
					err := e.SendTime - now
					if err > maxErr {
						maxErr = err
					}
					totalErr += uint64(err)
				}
				count++
			}
		}
		t.Rows = append(t.Rows, []string{
			"timing wheel", fmt.Sprintf("slot %d ns", slot),
			fmt.Sprintf("%d ns early", maxErr),
			fmt.Sprintf("%.1f ns mean", float64(totalErr)/float64(n)),
			"pacing granularity",
		})
	}
	t.Notes = []string{
		"PIEO needs no tuning and is exact in both rank order and release time",
		"every approximation trades a configuration parameter (bands/width/slot) against error",
	}
	return t
}

// exactDrainOrder drains a PIEO list of the entries and returns the id
// sequence — the exact reference order.
func exactDrainOrder(entries []core.Entry) []string {
	l := core.New(len(entries))
	for _, e := range entries {
		if err := l.Enqueue(e); err != nil {
			panic(err)
		}
	}
	var order []string
	for {
		e, ok := l.Dequeue(clock.Never - 1)
		if !ok {
			return order
		}
		order = append(order, fmt.Sprintf("%d", e.ID))
	}
}
