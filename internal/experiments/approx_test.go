package experiments

import (
	"strings"
	"testing"
)

func TestApproxPIEOExact(t *testing.T) {
	tab := Approx()
	if tab.Rows[0][2] != "0" {
		t.Fatalf("PIEO reference deviation = %s", tab.Rows[0][2])
	}
}

func TestApproxBandsMonotone(t *testing.T) {
	tab := Approx()
	var prev float64 = 1 << 30
	seen := 0
	for _, row := range tab.Rows {
		if row[0] != "multi-priority FIFO" {
			continue
		}
		dev := parseLeadingFloat(t, row[2])
		if dev >= prev {
			t.Fatalf("band deviation not shrinking: %v then %v", prev, dev)
		}
		if dev == 0 {
			t.Fatalf("an approximate structure reported zero deviation: %v", row)
		}
		prev = dev
		seen++
	}
	if seen != 5 {
		t.Fatalf("saw %d band rows", seen)
	}
}

func TestApproxCalendarCollisionCliff(t *testing.T) {
	tab := Approx()
	var small, large float64
	for _, row := range tab.Rows {
		if row[0] != "calendar queue" {
			continue
		}
		if strings.Contains(row[1], "x 16") {
			small = parseLeadingFloat(t, row[2])
		}
		if strings.Contains(row[1], "x 2048") {
			large = parseLeadingFloat(t, row[2])
		}
	}
	if small < 10*large {
		t.Fatalf("collision cliff missing: width16 dev %v vs width2048 dev %v", small, large)
	}
}

func TestApproxWheelErrorTracksSlot(t *testing.T) {
	tab := Approx()
	for _, row := range tab.Rows {
		if row[0] != "timing wheel" {
			continue
		}
		slot := parseLeadingFloat(t, strings.TrimPrefix(row[1], "slot "))
		maxErr := parseLeadingFloat(t, row[2])
		if maxErr >= slot {
			t.Fatalf("wheel error %v >= slot %v", maxErr, slot)
		}
		if maxErr < slot/2 {
			t.Fatalf("wheel error %v suspiciously small for slot %v", maxErr, slot)
		}
	}
}
