package experiments

import (
	"fmt"
	"strings"

	"pieo/internal/backend"
)

// measuredBackends is the backend set the datapath-measuring experiments
// (hotpath) sweep. The default covers the exact single-threaded list and
// the concurrent engine; SetBackends widens or narrows it — pieobench's
// -backend flag is the usual caller.
var measuredBackends = []string{"core", "sharded"}

// Backends returns the backend names the measuring experiments sweep.
// The returned slice is a copy; mutating it does not affect the sweep.
func Backends() []string {
	out := make([]string, len(measuredBackends))
	copy(out, measuredBackends)
	return out
}

// SetBackends replaces the measured backend set. Every name must be
// registered with the backend registry; unknown names are rejected as a
// whole so a typo cannot silently shrink the sweep.
func SetBackends(names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("experiments: empty backend set")
	}
	registered := make(map[string]bool)
	for _, n := range backend.Names() {
		registered[n] = true
	}
	for _, n := range names {
		if !registered[n] {
			return fmt.Errorf("experiments: unknown backend %q (have %s)",
				n, strings.Join(backend.Names(), ", "))
		}
	}
	measuredBackends = make([]string, len(names))
	copy(measuredBackends, names)
	return nil
}
