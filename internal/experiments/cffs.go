package experiments

import (
	"fmt"
)

// cffsPairs maps each cFFS configuration to the exact baseline it is
// measured against: the standalone bucket queue against the paper-exact
// core list (the ≥3x uncontended target), and the cFFS-backed sharded
// engine against the core-backed one (the backend-generic refactor's
// "inheritance" claim — the engine speeds up without any engine change).
var cffsPairs = []struct{ baseline, candidate string }{
	{"core", "cffs"},
	{"sharded", "sharded+cffs"},
}

// CFFS measures what the Eiffel-style cFFS bucket backend buys on the
// uncontended mixed datapath, at the same operating points and under the
// same protocol as the hotpath experiment (half-occupancy steady state,
// alternating enqueue/dequeue, uniformly random ranks in [0, 2^20)).
// Ranks are integers, so width-1 cFFS is exact here: the speedup column
// is a like-for-like comparison, not an accuracy trade. This is the
// experiment behind the EXPERIMENTS.md "cffs" section and the
// BENCH_cffs.json CI artifact.
func CFFS() *Table {
	var rows [][]string
	for _, pair := range cffsPairs {
		for _, n := range hotpathSizes {
			baseNs, _ := hotpathMeasure(pair.baseline, n, 1)
			candNs, candAllocs := hotpathMeasure(pair.candidate, n, 1)
			rows = append(rows, []string{
				pair.candidate,
				pair.baseline,
				sizeLabel(n),
				fmt.Sprintf("%.1f", candNs),
				fmt.Sprintf("%.1f", baseNs),
				fmt.Sprintf("%.2fx", baseNs/candNs),
				fmt.Sprintf("%.3f", candAllocs),
			})
		}
	}
	return &Table{
		ID:      "cffs",
		Title:   "cFFS bucket backend: uncontended mixed cost vs the exact core list",
		Columns: []string{"backend", "baseline", "size", "ns/op", "baseline ns/op", "speedup", "allocs/op"},
		Rows:    rows,
		Notes: []string{
			"hotpath protocol: half-occupancy steady state, alternating enqueue/dequeue, ranks uniform in [0, 2^20), all eligible",
			"integer ranks at width 1 make cFFS exact — the differential suite holds it bit-for-bit to core",
			"sharded+cffs vs sharded isolates the backend swap inside the unchanged concurrent engine",
			"single-process wall-clock measurement; go test -bench CoreMixed gives the calibrated numbers",
		},
	}
}
