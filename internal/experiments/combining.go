package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/shard"
)

// Combining sweep geometry: the contended regime the flat-combining
// ingress layer exists for. Capacity 2^19 puts the per-shard lists deep
// in the √n-scan regime; 8 producer goroutines racing one continuous
// consumer is the per-connection-producers/one-transmit-scheduler shape
// from SyncList's doc comment and bench_test.go's benchContended.
const (
	combiningCapacity  = 1 << 19
	combiningShards    = 8
	combiningProducers = 8
)

// combiningOps returns the shared producer-side operation count. The
// default (2^19, the acceptance geometry) keeps the whole three-config
// sweep around a second on a laptop-class core; PIEO_COMBINING_OPS
// overrides it for quick smoke runs or longer steady-state measurements.
func combiningOps() int {
	if s := os.Getenv("PIEO_COMBINING_OPS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1 << 19
}

// combiningReps returns how many times each configuration is stormed;
// the table reports the fastest run (best-of-N), the standard defense
// against scheduler noise for wall-clock measurements this short.
// PIEO_COMBINING_REPS overrides it.
func combiningReps() int {
	if s := os.Getenv("PIEO_COMBINING_REPS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 3
}

// lockedList mirrors pieo.SyncList (a single write lock over the
// paper-exact core list) for the contended baseline. The facade type
// itself lives in the root package, which imports experiments, so it
// cannot be used here; the two are operation-for-operation identical on
// the Enqueue/Dequeue paths this sweep drives.
type lockedList struct {
	mu sync.RWMutex
	b  backend.Backend
}

func (s *lockedList) Enqueue(e core.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Enqueue(e)
}

func (s *lockedList) Dequeue(now clock.Time) (core.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Dequeue(now)
}

// combiningTarget is the minimal surface the sweep drives.
type combiningTarget interface {
	Enqueue(core.Entry) error
	Dequeue(clock.Time) (core.Entry, bool)
}

// combiningMeasure runs the contended producer/consumer storm against a
// fresh target and returns producer-side ns/op and allocs/op — the same
// protocol as benchContended: monotone ranks (fair-queueing virtual
// finish times), ErrFull answered by yielding, one consumer draining
// continuously for the whole producer run.
func combiningMeasure(be combiningTarget, ops int) (nsPerOp, allocsPerOp float64) {
	var ids atomic.Uint32
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // consumer
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := be.Dequeue(0); !ok {
				runtime.Gosched()
			}
		}
	}()

	perProducer := ops / combiningProducers
	var wg sync.WaitGroup
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for p := 0; p < combiningProducers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := ids.Add(1)
				for {
					err := be.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always})
					if err == nil {
						break
					}
					if err == core.ErrFull {
						runtime.Gosched()
						continue
					}
					panic(fmt.Sprintf("experiments: combining enqueue: %v", err))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	close(stop)
	<-done

	total := float64(perProducer * combiningProducers)
	return float64(elapsed.Nanoseconds()) / total, float64(after.Mallocs-before.Mallocs) / total
}

// Combining measures what the flat-combining ingress rings buy under
// producer contention: the same storm against the single-lock SyncList
// shape, the sharded engine with combining disabled (the PR 3 ingress
// path — every producer takes its home shard's lock), and the sharded
// engine with combining on (contended producers publish into the ring
// and the lock winner executes the batch in one critical section). The
// combined-op share column is CombinedOps/RingOps — the fraction of
// published records executed by a different goroutine, i.e. the lock
// handoffs the ring actually amortized away.
func Combining() *Table {
	ops := combiningOps()
	type config struct {
		name string
		k    int
		make func() combiningTarget
	}
	var cur *shard.Engine
	configs := []config{
		{
			name: "synclist",
			k:    1,
			make: func() combiningTarget {
				return &lockedList{b: backend.NewCoreList(combiningCapacity)}
			},
		},
		{
			name: fmt.Sprintf("sharded-K%d", combiningShards),
			k:    combiningShards,
			make: func() combiningTarget {
				cur = shard.New(combiningCapacity, combiningShards)
				cur.SetCombining(false)
				return cur
			},
		},
		{
			name: fmt.Sprintf("sharded-K%d+fc", combiningShards),
			k:    combiningShards,
			make: func() combiningTarget {
				cur = shard.New(combiningCapacity, combiningShards)
				return cur
			},
		},
	}
	t := &Table{
		ID:      "combining",
		Title:   "Flat-combining ingress: contended producer cost (8 producers, 1 consumer)",
		Columns: []string{"backend", "K", "n", "ns/op", "allocs/op", "ring ops", "combined ops", "combined share"},
	}
	reps := combiningReps()
	for _, c := range configs {
		var ns, allocs float64
		var ringOps, combined uint64
		share := "n/a"
		for r := 0; r < reps; r++ {
			cur = nil
			be := c.make()
			n, a := combiningMeasure(be, ops)
			if r == 0 || n < ns {
				ns, allocs = n, a
			}
			if cur != nil {
				cs := cur.CombiningStats()
				ringOps += cs.RingOps
				combined += cs.CombinedOps
				if ringOps > 0 {
					share = fmt.Sprintf("%.1f%%", 100*float64(combined)/float64(ringOps))
				} else if cur.CombiningEnabled() {
					share = "0.0%"
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", c.k),
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%.1f", ns),
			fmt.Sprintf("%.3f", allocs),
			fmt.Sprintf("%d", ringOps),
			fmt.Sprintf("%d", combined),
			share,
		})
	}
	t.Notes = []string{
		fmt.Sprintf("GOMAXPROCS=%d; contention is scheduler-interleaved when this is 1 — see EXPERIMENTS.md for the host caveat", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("capacity %d, %d producer goroutines with monotone ranks, one consumer draining continuously", combiningCapacity, combiningProducers),
		fmt.Sprintf("ns/op is producer-side enqueue cost including ErrFull backpressure retries (benchContended protocol), best of %d runs; ring counters sum all runs", reps),
		"ring ops = operations published into an ingress ring; combined ops = those executed by another goroutine's drain",
		"PIEO_COMBINING_OPS overrides the shared op count (default 2^19)",
	}
	return t
}
