package experiments

import (
	"fmt"

	"pieo/internal/pifo"
	"pieo/internal/stats"
)

// Deviation quantifies the §2.3 claim: "O(N) elements could become
// eligible at any given time, which in the worst-case could result in
// O(N) deviation from the ideal scheduling order". The adversarial
// instance makes all N flows eligible simultaneously with finish times in
// the reverse of their start order; the two-PIFO emulation releases them
// in start order and deviates linearly in N, while PIEO reproduces the
// ideal order exactly at every size.
func Deviation() *Table {
	var rows [][]string
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		items := adversarialInstance(n)
		ideal := idealWF2QOrder(items)

		two := emulatedOrder(items, pifo.NewTwoPIFO(items))
		maxDev, meanDev := stats.OrderDeviation(ideal, two)

		pieoDev, _ := stats.OrderDeviation(ideal, idealWF2QOrder(items))
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", maxDev),
			fmt.Sprintf("%.1f", meanDev),
			fmt.Sprintf("%.2f", float64(maxDev)/float64(n)),
			fmt.Sprintf("%d", pieoDev),
		})
	}
	return &Table{
		ID:      "deviation",
		Title:   "Worst-case order deviation of two-PIFO WF2Q+ emulation vs N (§2.3)",
		Columns: []string{"N", "two-PIFO max-dev", "two-PIFO mean-dev", "max-dev / N", "PIEO max-dev"},
		Rows:    rows,
		Notes: []string{
			"all N flows become eligible at once; finish order is the reverse of start order",
			"two-PIFO deviation grows linearly with N (max-dev/N approaches 1); PIEO is always exact",
		},
	}
}

// DeviationFraction returns the two-PIFO emulation's maximum order
// deviation divided by N on the adversarial instance. Exported for the
// benchmark harness.
func DeviationFraction(n int) float64 {
	items := adversarialInstance(n)
	ideal := idealWF2QOrder(items)
	got := emulatedOrder(items, pifo.NewTwoPIFO(items))
	maxDev, _ := stats.OrderDeviation(ideal, got)
	return float64(maxDev) / float64(n)
}

// adversarialInstance builds N flows that all become eligible at the
// same virtual instant (identical starts) with finish times decreasing in
// enqueue order: the ideal schedule is the exact reverse of enqueue
// order, but a start-ordered eligibility PIFO releases ties in FIFO
// (enqueue) order, so the two-PIFO emulation transmits them exactly
// backwards.
func adversarialInstance(n int) []pifo.Item {
	items := make([]pifo.Item, n)
	base := uint64(10)
	for i := 0; i < n; i++ {
		items[i] = pifo.Item{
			ID:     uint32(i),
			Name:   fmt.Sprintf("f%d", i),
			Start:  5,
			Finish: base + uint64(2*(n-i)), // decreasing in i, all > start
			Size:   1,
		}
	}
	return items
}
