package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/pifo"
	"pieo/internal/stats"
)

// Deviation quantifies the §2.3 claim: "O(N) elements could become
// eligible at any given time, which in the worst-case could result in
// O(N) deviation from the ideal scheduling order". The adversarial
// instance makes all N flows eligible simultaneously with finish times in
// the reverse of their start order; the two-PIFO emulation releases them
// in start order and deviates linearly in N, while PIEO reproduces the
// ideal order exactly at every size.
func Deviation() *Table {
	var rows [][]string
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		items := adversarialInstance(n)
		ideal := idealWF2QOrder(items)

		two := emulatedOrder(items, pifo.NewTwoPIFO(items))
		maxDev, meanDev := stats.OrderDeviation(ideal, two)

		pieoDev, _ := stats.OrderDeviation(ideal, idealWF2QOrder(items))
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", maxDev),
			fmt.Sprintf("%.1f", meanDev),
			fmt.Sprintf("%.2f", float64(maxDev)/float64(n)),
			fmt.Sprintf("%d", pieoDev),
		})
	}
	return &Table{
		ID:      "deviation",
		Title:   "Worst-case order deviation of two-PIFO WF2Q+ emulation vs N (§2.3)",
		Columns: []string{"N", "two-PIFO max-dev", "two-PIFO mean-dev", "max-dev / N", "PIEO max-dev"},
		Rows:    rows,
		Notes: []string{
			"all N flows become eligible at once; finish order is the reverse of start order",
			"two-PIFO deviation grows linearly with N (max-dev/N approaches 1); PIEO is always exact",
		},
	}
}

// DeviationFraction returns the two-PIFO emulation's maximum order
// deviation divided by N on the adversarial instance. Exported for the
// benchmark harness.
func DeviationFraction(n int) float64 {
	items := adversarialInstance(n)
	ideal := idealWF2QOrder(items)
	got := emulatedOrder(items, pifo.NewTwoPIFO(items))
	maxDev, _ := stats.OrderDeviation(ideal, got)
	return float64(maxDev) / float64(n)
}

// qdevWidths is the bucket-width sweep for the quantization-deviation
// experiment: width 1 (exact), then three lossy widths spanning the
// realistic operating range against ranks drawn from [0, 2^16).
var qdevWidths = []uint64{1, 16, 256, 4096}

// QuantDeviation quantifies the rank-quantization trade the cFFS backend
// makes (the "Everything Matters" study, arXiv 2308.00797): the same
// random-rank workload is drained from the exact core list (the oracle)
// and from cFFS at several bucket widths, and the divergence between the
// two orders is reported as pairwise order inversions plus positional
// deviation. Width 1 must be all-zero — integer ranks quantize losslessly
// — and any wider bucket can only reorder elements whose ranks fall in
// the same bucket, so max rank error is bounded by width-1.
func QuantDeviation() *Table {
	const n = 2048
	var rows [][]string
	for _, width := range qdevWidths {
		ideal, got := quantDrainOrders(n, width)
		maxDev, meanDev := stats.OrderDeviation(ideal, got)
		rows = append(rows, []string{
			fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", countInversions(ideal, got)),
			fmt.Sprintf("%d", maxDev),
			fmt.Sprintf("%.1f", meanDev),
			fmt.Sprintf("%d", width-1),
		})
	}
	return &Table{
		ID:      "qdev",
		Title:   "cFFS rank quantization: dequeue-order divergence from the exact core oracle",
		Columns: []string{"bucket width", "N", "inversions", "max pos-dev", "mean pos-dev", "max rank error"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("%d entries, ranks uniform in [0, 2^16), identical enqueue order on both structures, full drain", n),
			"inversions = element pairs the quantized drain emits in the opposite relative order to the oracle",
			"width 1 is exact by construction (integer ranks); the differential suite enforces it bit-for-bit",
			"inverted pairs always share a bucket, so their true ranks differ by less than the width",
		},
	}
}

// quantDrainOrders feeds one deterministic workload to the exact core
// list and a width-quantized cFFS list and returns both full drain
// orders as ID strings for stats.OrderDeviation.
func quantDrainOrders(n int, width uint64) (ideal, got []string) {
	oracle := backend.NewCoreList(n)
	cand := backend.NewCFFSListQuantized(n, backend.RankQuantizer{Width: width})
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < n; i++ {
		ent := core.Entry{ID: uint32(i + 1), Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always}
		if err := oracle.Enqueue(ent); err != nil {
			panic(fmt.Sprintf("experiments: qdev oracle enqueue: %v", err))
		}
		if err := cand.Enqueue(ent); err != nil {
			panic(fmt.Sprintf("experiments: qdev cffs enqueue: %v", err))
		}
	}
	drain := func(b backend.Backend) []string {
		out := make([]string, 0, n)
		for {
			ent, ok := b.Dequeue(clock.Time(1 << 60))
			if !ok {
				return out
			}
			out = append(out, fmt.Sprintf("%d", ent.ID))
		}
	}
	return drain(oracle), drain(cand)
}

// countInversions counts element pairs that got emits in the opposite
// relative order to want — the classic Kendall-tau distance between the
// two drains. Quadratic, but the experiment's N keeps it trivial.
func countInversions(want, got []string) int {
	pos := make(map[string]int, len(want))
	for i, id := range want {
		pos[id] = i
	}
	inv := 0
	for i := 0; i < len(got); i++ {
		for j := i + 1; j < len(got); j++ {
			if pos[got[i]] > pos[got[j]] {
				inv++
			}
		}
	}
	return inv
}

// adversarialInstance builds N flows that all become eligible at the
// same virtual instant (identical starts) with finish times decreasing in
// enqueue order: the ideal schedule is the exact reverse of enqueue
// order, but a start-ordered eligibility PIFO releases ties in FIFO
// (enqueue) order, so the two-PIFO emulation transmits them exactly
// backwards.
func adversarialInstance(n int) []pifo.Item {
	items := make([]pifo.Item, n)
	base := uint64(10)
	for i := 0; i < n; i++ {
		items[i] = pifo.Item{
			ID:     uint32(i),
			Name:   fmt.Sprintf("f%d", i),
			Start:  5,
			Finish: base + uint64(2*(n-i)), // decreasing in i, all > start
			Size:   1,
		}
	}
	return items
}
