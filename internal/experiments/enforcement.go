package experiments

import (
	"fmt"

	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/hier"
	"pieo/internal/netsim"
	"pieo/internal/stats"
)

// The §6.3 prototype experiment: a two-level hierarchical scheduler with
// ten level-2 nodes (VMs) of ten flows each on a 40 Gbps link, scheduling
// at MTU granularity. Token Bucket enforces a per-VM rate limit at the
// top level; WF²Q+ shares each VM's limit fairly across its ten flows.
const (
	enfVMs       = 10
	enfFlowsPer  = 10
	enfLinkGbps  = 40
	enfMTU       = 1500
	enfDuration  = clock.Time(20_000_000) // 20 ms of simulated time
	enfSampledVM = 0                      // the "random level-2 node" the paper samples
)

// rateSweep is the set of rate limits configured on the sampled VM.
var rateSweep = []float64{1, 2, 4, 8, 16, 24, 32}

// runEnforcement builds the §6.3 scheduler, sets the sampled VM's rate
// limit to sampledGbps (the other nine VMs share a fraction of what
// remains), runs 20 ms of backlogged traffic, and returns the sampled
// VM's achieved rate and its ten per-flow rates.
func runEnforcement(sampledGbps float64) (vmGbps float64, flowGbps []float64) {
	h := hier.New(enfLinkGbps, hier.TokenBucket())
	var vms []*hier.Node
	id := flowq.FlowID(0)
	for v := 0; v < enfVMs; v++ {
		vm := h.Root().AddNode(fmt.Sprintf("vm%d", v), hier.WF2Q())
		for f := 0; f < enfFlowsPer; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()

	// Control plane: the sampled VM gets the limit under test; the rest
	// split 90% of the remaining bandwidth so the link never saturates
	// and enforcement is observable in isolation.
	otherRate := (enfLinkGbps - sampledGbps) * 0.9 / float64(enfVMs-1)
	for v, vm := range vms {
		self := vm.Self()
		self.RateGbps = otherRate
		if v == enfSampledVM {
			self.RateGbps = sampledGbps
		}
		// The bucket must be deep enough that tokens accrued while the
		// VM waits behind the other nine VMs' packets (up to ~9 wire
		// times) are not discarded at the cap, or high limits undershoot.
		self.Burst = 8 * enfMTU
		self.Tokens = self.Burst
	}

	sim := netsim.New(netsim.Link{RateGbps: enfLinkGbps}, h)
	vmMeter := stats.NewRateMeter(0)
	flowBytes := make([]uint64, enfFlowsPer)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		if int(p.Flow)/enfFlowsPer == enfSampledVM {
			vmMeter.Record(now, p.Size)
			flowBytes[int(p.Flow)%enfFlowsPer] += uint64(p.Size)
		}
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < flowq.FlowID(enfVMs*enfFlowsPer); f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: enfMTU, Seq: seq})
		}
	}
	sim.Run(enfDuration)
	vmMeter.CloseAt(enfDuration)

	flowGbps = make([]float64, enfFlowsPer)
	for i, b := range flowBytes {
		flowGbps[i] = float64(b) * 8 / float64(enfDuration)
	}
	return vmMeter.Gbps(), flowGbps
}

// RunEnforcementPoint runs a single Fig 11/12 trial at the given rate
// limit and returns the sampled VM's measured rate and its per-flow
// rates. Exported for the benchmark harness.
func RunEnforcementPoint(gbps float64) (float64, []float64) {
	return runEnforcement(gbps)
}

// Fig11 reproduces the rate-limit enforcement study: configured vs
// measured throughput of the sampled VM across the rate sweep.
func Fig11() *Table {
	var rows [][]string
	for _, r := range rateSweep {
		got, _ := runEnforcement(r)
		errPct := 100 * (got - r) / r
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r),
			fmt.Sprintf("%.3f", got),
			fmt.Sprintf("%+.2f%%", errPct),
		})
	}
	return &Table{
		ID:      "fig11",
		Title:   "Rate-limit enforcement: 10 VMs x 10 flows, 40 Gbps, Token Bucket at level 2 (Fig 11)",
		Columns: []string{"configured Gbps", "measured Gbps", "error"},
		Rows:    rows,
		Notes: []string{
			"measured over 20 ms of MTU-granularity traffic on the sampled VM",
		},
	}
}

// Fig12 reproduces the fair-queueing enforcement study: for each rate
// limit on the sampled VM, the ten flows inside it must each receive
// limit/10 under WF²Q+.
func Fig12() *Table {
	var rows [][]string
	for _, r := range rateSweep {
		_, flows := runEnforcement(r)
		sum := stats.Summarize(flows)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r),
			fmt.Sprintf("%.3f", r/enfFlowsPer),
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.Min),
			fmt.Sprintf("%.3f", sum.Max),
			fmt.Sprintf("%.5f", stats.JainIndex(flows)),
		})
	}
	return &Table{
		ID:      "fig12",
		Title:   "Fair-queue enforcement inside the sampled VM: WF2Q+ across 10 flows (Fig 12)",
		Columns: []string{"VM limit Gbps", "ideal/flow", "mean/flow", "min/flow", "max/flow", "Jain index"},
		Rows:    rows,
		Notes: []string{
			"each flow should receive exactly a tenth of the VM's rate limit",
		},
	}
}
