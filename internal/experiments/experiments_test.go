package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, id := range IDs() {
		tab, err := Run(id)
		if err != nil {
			t.Fatalf("Run(%q): %v", id, err)
		}
		if tab.ID != id || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("Run(%q) produced malformed table %+v", id, tab)
		}
		var buf bytes.Buffer
		tab.Fprint(&buf)
		if !strings.Contains(buf.String(), tab.Title) {
			t.Fatalf("Fprint(%q) missing title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("Run(nope) did not error")
	}
}

func TestFig2PIEOExactPIFODeviant(t *testing.T) {
	tab := Fig2()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if tab.Rows[0][2] != "0" {
		t.Fatalf("PIEO max-dev = %s, want 0", tab.Rows[0][2])
	}
	for _, row := range tab.Rows[1:] {
		if row[2] == "0" {
			t.Fatalf("PIFO emulation %q shows no deviation; Fig 2 requires one", row[0])
		}
	}
}

func TestFig2IdealOrder(t *testing.T) {
	// Hand-computed WF2Q+ run of the instance (see fig2Instance doc).
	ideal := idealWF2QOrder(fig2Instance())
	want := []string{"A", "C", "E", "D", "B", "F"}
	if strings.Join(ideal, " ") != strings.Join(want, " ") {
		t.Fatalf("ideal = %v, want %v", ideal, want)
	}
}

func TestFig2StartOrderedReleasesDFirst(t *testing.T) {
	// The §2.3 narrative: D (earliest start) is scheduled before C by
	// both start-ordered emulations, although C has the smaller finish.
	tab := Fig2()
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "single PIFO by start") || strings.HasPrefix(row[0], "two PIFOs") {
			order := strings.Fields(row[1])
			if indexOf(order, "D") > indexOf(order, "C") {
				t.Fatalf("%s order %v does not schedule D before C", row[0], order)
			}
		}
	}
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8()
	// First row is 1K: PIFO must read ~64%.
	if !strings.HasPrefix(tab.Rows[0][2], "64") {
		t.Fatalf("PIFO@1K = %q, want ~64%%", tab.Rows[0][2])
	}
	// 2K and beyond must be flagged infeasible for PIFO.
	if !strings.Contains(tab.Rows[1][2], "does not fit") {
		t.Fatalf("PIFO@2K = %q, want 'does not fit'", tab.Rows[1][2])
	}
	// PIEO percentages must stay under 100 and grow sublinearly.
	var prev float64
	for i, row := range tab.Rows {
		pct := parsePct(t, row[1])
		if pct >= 100 {
			t.Fatalf("PIEO row %d = %v%%, does not fit", i, pct)
		}
		if pct < prev {
			t.Fatalf("PIEO ALM%% decreased at row %d", i)
		}
		prev = pct
	}
}

func TestFig9Modest(t *testing.T) {
	tab := Fig9()
	for _, row := range tab.Rows {
		if pct := parsePct(t, row[1]); pct > 25 {
			t.Fatalf("SRAM at size %s = %v%%, want modest", row[0], pct)
		}
	}
}

func TestFig10Decreasing(t *testing.T) {
	tab := Fig10()
	prev := math.Inf(1)
	for _, row := range tab.Rows {
		mhz := parseLeadingFloat(t, row[1])
		if mhz > prev {
			t.Fatalf("PIEO clock increased at size %s", row[0])
		}
		prev = mhz
	}
	// The 30K row is the paper's ~80 MHz / 50 ns operating point.
	for _, row := range tab.Rows {
		if row[0] == "30000" {
			if mhz := parseLeadingFloat(t, row[1]); math.Abs(mhz-80) > 3 {
				t.Fatalf("PIEO@30K clock = %v, want ~80", mhz)
			}
			if ns := parseLeadingFloat(t, row[3]); math.Abs(ns-50) > 2 {
				t.Fatalf("PIEO@30K ns/op = %v, want ~50", ns)
			}
		}
	}
}

func TestScalabilityHeadline(t *testing.T) {
	tab := Scalability()
	ratioRow := tab.Rows[2]
	ratio := parseLeadingFloat(t, ratioRow[1])
	if ratio < 30 {
		t.Fatalf("scalability ratio %v, want > 30", ratio)
	}
}

func TestFig11EnforcementAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("20 ms simulations per rate point")
	}
	for _, r := range []float64{2, 16, 32} {
		got, _ := runEnforcement(r)
		if math.Abs(got-r)/r > 0.05 {
			t.Fatalf("rate limit %v enforced at %v (>5%% error)", r, got)
		}
	}
}

func TestFig12Fairness(t *testing.T) {
	if testing.Short() {
		t.Skip("20 ms simulations per rate point")
	}
	_, flows := runEnforcement(16)
	ideal := 16.0 / enfFlowsPer
	for i, f := range flows {
		if math.Abs(f-ideal)/ideal > 0.08 {
			t.Fatalf("flow %d got %v, want ~%v", i, f, ideal)
		}
	}
}

func TestDeviationLinear(t *testing.T) {
	tab := Deviation()
	last := tab.Rows[len(tab.Rows)-1]
	n, _ := strconv.Atoi(last[0])
	maxDev, _ := strconv.Atoi(last[1])
	if float64(maxDev) < 0.9*float64(n) {
		t.Fatalf("two-PIFO max deviation at N=%d is %d, want ~N (linear)", n, maxDev)
	}
	if last[4] != "0" {
		t.Fatalf("PIEO deviation = %s, want 0", last[4])
	}
}

func TestAblationSqrtIsOptimal(t *testing.T) {
	tab := Ablation()
	best := math.Inf(1)
	bestCfg := ""
	for _, row := range tab.Rows {
		if row[0] != "sublist-size" || row[2] != "ALMs" {
			continue
		}
		alms := parseLeadingFloat(t, row[3])
		if alms < best {
			best = alms
			bestCfg = row[1]
		}
	}
	if !strings.Contains(bestCfg, "S=64") && !strings.Contains(bestCfg, "S=32") && !strings.Contains(bestCfg, "S=128") {
		t.Fatalf("minimum-logic sublist size = %q, want near sqrt(4096)=64", bestCfg)
	}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	return parseLeadingFloat(t, strings.TrimSuffix(strings.Fields(cell)[0], "%"))
}

func parseLeadingFloat(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(fields[0], "%"), "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v
}
