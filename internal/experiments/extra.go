package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/algos"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/hwmodel"
	"pieo/internal/netsim"
	"pieo/internal/pipeline"
	"pieo/internal/sched"
)

// Pipeline quantifies the §6.2 pipelining discussion with the issue-rate
// simulator: the dual-port SRAM constraint caps the prototype at one
// operation per four cycles; scheduling operations whose sublists are
// disjoint recovers 2x; lifting the port constraint entirely (quad-port
// SRAM / ASIC register files) reaches one per cycle.
func Pipeline() *Table {
	const nOps = 20000
	g := hwmodel.PIEOGeometry(30000)
	clockMHz := hwmodel.PIEOClockMHz(g)

	independent := pipeline.IndependentStream(nOps, 64)
	rng := rand.New(rand.NewSource(3))
	mixed := make([]pipeline.Op, nOps)
	for i := range mixed {
		a := rng.Intn(g.NumSublists)
		mixed[i] = pipeline.Op{Sublists: [2]int{a, rng.Intn(g.NumSublists)}}
	}
	same := pipeline.SameSublistStream(nOps)

	var rows [][]string
	for _, run := range []struct {
		stream string
		ops    []pipeline.Op
		mode   pipeline.Mode
	}{
		{"any", independent, pipeline.NonPipelined},
		{"independent sublists", independent, pipeline.PortAware},
		{"random sublists (30K geometry)", mixed, pipeline.PortAware},
		{"same sublist (worst case)", same, pipeline.PortAware},
		{"any", independent, pipeline.FullyPipelined},
	} {
		r := pipeline.Simulate(run.ops, run.mode)
		rows = append(rows, []string{
			run.mode.String(),
			run.stream,
			fmt.Sprintf("%.3f", r.OpsPerCycle),
			fmt.Sprintf("%.1f", r.OpsPerCycle*clockMHz),
		})
	}
	return &Table{
		ID:      "pipeline",
		Title:   "Issue-rate of the 4-stage datapath under the dual-port SRAM constraint (§6.2)",
		Columns: []string{"issue policy", "op stream", "ops/cycle", "Mops/s @ 80 MHz"},
		Rows:    rows,
		Notes: []string{
			"memory stages (cycles 2 and 4) use both SRAM ports, so they can never overlap across operations",
			"careful scheduling of independent operations doubles the non-pipelined rate, as §6.2 anticipates",
		},
	}
}

// TriggerModels reproduces the §3.2.1 trade-off: the output-triggered
// model recomputes rank/predicate at dequeue and so adapts immediately
// when the control plane changes a flow's rate limit; the
// input-triggered model committed per-packet release times at arrival
// and keeps shaping the queued backlog at the stale rate.
func TriggerModels() *Table {
	const (
		linkGbps = 40
		before   = 2.0
		after    = 16.0
		change   = clock.Time(5_000_000)  // rate raised at 5 ms
		duration = clock.Time(10_000_000) // measured to 10 ms
		backlog  = 12000                  // deep enough to cover 16 Gbps for 5 ms
	)
	run := func(prog *sched.Program) (firstHalf, secondHalf float64) {
		s := sched.New(prog, 4, linkGbps)
		f := s.Flow(1)
		f.RateGbps = before
		f.Burst = 3000
		f.Tokens = f.Burst

		sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
		var h1, h2 uint64
		sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
			if now <= change {
				h1 += uint64(p.Size)
			} else {
				h2 += uint64(p.Size)
			}
		}
		for i := 0; i < backlog; i++ {
			sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
		}
		// Control-plane rate change mid-run. (InjectOne with a zero-size
		// packet is not allowed, so use the event queue via a sentinel
		// arrival on an unused flow id and hook the change into
		// OnArrival — simplest is to split the run.)
		sim.Run(change)
		f.RateGbps = after
		sim.Run(duration)
		return float64(h1) * 8 / float64(change), float64(h2) * 8 / float64(duration-change)
	}

	outBefore, outAfter := run(algos.TokenBucket())
	inBefore, inAfter := run(algos.TokenBucketInput())
	return &Table{
		ID:      "trigger",
		Title:   "Shaping precision across trigger models: rate limit raised 2 -> 16 Gbps mid-run (§3.2.1)",
		Columns: []string{"model", "Gbps before change", "Gbps after change", "adapts"},
		Rows: [][]string{
			{"output-triggered", fmt.Sprintf("%.2f", outBefore), fmt.Sprintf("%.2f", outAfter), yesNo(outAfter > 12)},
			{"input-triggered", fmt.Sprintf("%.2f", inBefore), fmt.Sprintf("%.2f", inAfter), yesNo(inAfter > 12)},
		},
		Notes: []string{
			"output-triggered recomputes send times at dequeue and tracks the new limit immediately",
			"input-triggered committed release times at arrival; the queued backlog keeps the stale 2 Gbps pacing",
		},
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no (stale per-packet plan)"
}

// Devices extends the §6.2 device discussion: the maximum scheduler each
// design fits and the modeled clock on the paper's Stratix V, a Stratix
// 10, and an ASIC target.
func Devices() *Table {
	var rows [][]string
	g30 := hwmodel.PIEOGeometry(30000)
	for _, d := range []hwmodel.Device{hwmodel.StratixV, hwmodel.Stratix10, hwmodel.ASIC} {
		pifoMax := hwmodel.MaxPIFOFitOn(d)
		pieoMax := hwmodel.MaxPIEOFitOn(d)
		f := hwmodel.PIEOClockMHzOn(d, g30)
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%d", pifoMax),
			fmt.Sprintf("%d", pieoMax),
			fmt.Sprintf("%.0fx", float64(pieoMax)/float64(pifoMax)),
			fmt.Sprintf("%.0f MHz", f),
			fmt.Sprintf("%.1f ns", hwmodel.NsPerOp(f, hwmodel.CyclesPerOp)),
		})
	}
	return &Table{
		ID:      "devices",
		Title:   "PIEO vs PIFO across target devices (§6.2 discussion)",
		Columns: []string{"device", "PIFO max", "PIEO max", "advantage", "PIEO clock @30K", "ns/op @30K"},
		Rows:    rows,
		Notes: []string{
			"PIFO stays logic-bound on every device; PIEO is SRAM-bound",
			"the ASIC row uses the paper's 1 GHz reference (4 ns/op)",
		},
	}
}
