package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestPipelineRates(t *testing.T) {
	tab := Pipeline()
	rates := map[string]float64{}
	for _, row := range tab.Rows {
		rates[row[0]+"/"+row[1]] = parseLeadingFloat(t, row[2])
	}
	if got := rates["non-pipelined/any"]; math.Abs(got-0.25) > 0.001 {
		t.Fatalf("non-pipelined = %v, want 0.25", got)
	}
	if got := rates["port-aware partial pipeline/independent sublists"]; math.Abs(got-0.5) > 0.01 {
		t.Fatalf("port-aware independent = %v, want 0.5", got)
	}
	if got := rates["port-aware partial pipeline/same sublist (worst case)"]; math.Abs(got-0.25) > 0.001 {
		t.Fatalf("port-aware same-sublist = %v, want 0.25", got)
	}
	if got := rates["fully pipelined/any"]; got < 0.99 {
		t.Fatalf("fully pipelined = %v, want ~1.0", got)
	}
	// Random streams on the real 30K geometry land very close to the
	// independent bound: collisions across 346 sublists are rare.
	if got := rates["port-aware partial pipeline/random sublists (30K geometry)"]; got < 0.45 {
		t.Fatalf("port-aware random = %v, want ~0.5", got)
	}
}

func TestTriggerModelAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("10 ms simulations")
	}
	tab := TriggerModels()
	var out, in []string
	for _, row := range tab.Rows {
		switch row[0] {
		case "output-triggered":
			out = row
		case "input-triggered":
			in = row
		}
	}
	if out == nil || in == nil {
		t.Fatalf("rows missing: %+v", tab.Rows)
	}
	if got := parseLeadingFloat(t, out[2]); math.Abs(got-16) > 1 {
		t.Fatalf("output-triggered after-change rate = %v, want ~16", got)
	}
	if got := parseLeadingFloat(t, in[2]); math.Abs(got-2) > 0.5 {
		t.Fatalf("input-triggered after-change rate = %v, want ~2 (stale plan)", got)
	}
	// Both enforce the original limit before the change.
	for _, row := range [][]string{out, in} {
		if got := parseLeadingFloat(t, row[1]); math.Abs(got-2) > 0.1 {
			t.Fatalf("%s before-change rate = %v, want 2", row[0], got)
		}
	}
}

func TestDevicesOrdering(t *testing.T) {
	tab := Devices()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var prevPieo float64
	for _, row := range tab.Rows {
		pifoMax := parseLeadingFloat(t, row[1])
		pieoMax := parseLeadingFloat(t, row[2])
		if pieoMax <= pifoMax {
			t.Fatalf("%s: PIEO max %v <= PIFO max %v", row[0], pieoMax, pifoMax)
		}
		if pieoMax < prevPieo {
			t.Fatalf("PIEO max not nondecreasing across devices")
		}
		prevPieo = pieoMax
		if !strings.Contains(row[4], "MHz") {
			t.Fatalf("clock cell malformed: %q", row[4])
		}
	}
}
