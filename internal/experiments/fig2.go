package experiments

import (
	"fmt"
	"strings"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/pifo"
	"pieo/internal/stats"
)

// fig2Instance is a six-packet WF²Q+ instance in the mold of Fig 2(b):
// packets A–F with virtual start/finish times and transmission lengths.
// The figure's exact numbers are not machine-readable from the paper, so
// this instance is constructed to exercise the same failure narrative:
//   - at virtual time 5, C, D, E and F all become eligible at once and C
//     has the smallest finish time among them (§2.3's "ideally C should
//     have been scheduled"),
//   - D has the earliest start among them, so a start-ordered PIFO
//     releases/schedules D first,
//   - B starts late with a small finish time, so a finish-ordered PIFO
//     schedules it long before it is eligible.
func fig2Instance() []pifo.Item {
	return []pifo.Item{
		{ID: 0, Name: "A", Start: 0, Finish: 20, Size: 5},
		{ID: 1, Name: "B", Start: 25, Finish: 28, Size: 5},
		{ID: 2, Name: "C", Start: 5, Finish: 30, Size: 5},
		{ID: 3, Name: "D", Start: 3, Finish: 50, Size: 10},
		{ID: 4, Name: "E", Start: 5, Finish: 40, Size: 10},
		{ID: 5, Name: "F", Start: 5, Finish: 55, Size: 20},
	}
}

// advanceV applies the Fig 2(a) virtual-time rule after transmitting a
// packet of the given size: V = max(V + size, min start among pending).
func advanceV(v, size uint64, pending map[uint32]pifo.Item) uint64 {
	v += size
	minStart := uint64(0)
	have := false
	for _, it := range pending {
		if !have || it.Start < minStart {
			minStart = it.Start
			have = true
		}
	}
	if have && minStart > v {
		v = minStart
	}
	return v
}

// idealWF2QOrder computes the exact WF²Q+ schedule of the instance using
// a PIEO list: rank = finish, send_time = start, dequeue at the current
// virtual time.
func idealWF2QOrder(items []pifo.Item) []string {
	list := core.New(len(items))
	pending := make(map[uint32]pifo.Item, len(items))
	for _, it := range items {
		if err := list.Enqueue(core.Entry{ID: it.ID, Rank: it.Finish, SendTime: clock.Time(it.Start)}); err != nil {
			panic(err)
		}
		pending[it.ID] = it
	}
	var order []string
	v := uint64(0)
	for len(pending) > 0 {
		e, ok := list.Dequeue(clock.Time(v))
		if !ok {
			// Link idle with no eligible packet: jump to the next start.
			t, _ := list.MinSendTime()
			v = uint64(t)
			continue
		}
		it := pending[e.ID]
		delete(pending, e.ID)
		order = append(order, it.Name)
		v = advanceV(v, it.Size, pending)
	}
	return order
}

// emulatedOrder drives a PIFO-based emulator through the same
// virtual-time trajectory rules and returns its scheduling order.
func emulatedOrder(items []pifo.Item, em pifo.Emulator) []string {
	pending := make(map[uint32]pifo.Item, len(items))
	byName := make(map[string]pifo.Item, len(items))
	for _, it := range items {
		pending[it.ID] = it
		byName[it.Name] = it
	}
	var order []string
	v := uint64(0)
	for guard := 0; em.Pending() > 0; guard++ {
		if guard > 10*len(items) {
			panic("experiments: emulator made no progress")
		}
		it, ok := em.Schedule(v)
		if !ok {
			// Nothing the emulator is willing to schedule: advance to
			// the next pending start time.
			minStart := uint64(0)
			have := false
			for _, p := range pending {
				if !have || p.Start < minStart {
					minStart = p.Start
					have = true
				}
			}
			if !have {
				break
			}
			if minStart <= v {
				v++ // emulator is stuck below an already-passed start
			} else {
				v = minStart
			}
			continue
		}
		delete(pending, it.ID)
		order = append(order, it.Name)
		v = advanceV(v, it.Size, pending)
	}
	return order
}

// Fig2 reproduces Fig 2(c)-(e): the ideal WF²Q+ scheduling order (which
// PIEO produces exactly) against the three PIFO-based emulations, with
// the order-deviation metric for each.
func Fig2() *Table {
	items := fig2Instance()
	ideal := idealWF2QOrder(items)

	rows := [][]string{
		{"PIEO (ideal WF2Q+)", strings.Join(ideal, " "), "0", "0.00"},
	}
	for _, run := range []struct {
		name string
		em   pifo.Emulator
	}{
		{"single PIFO by finish", pifo.NewSingleByFinish(items)},
		{"single PIFO by start", pifo.NewSingleByStart(items)},
		{"two PIFOs (elig+rank)", pifo.NewTwoPIFO(items)},
	} {
		order := emulatedOrder(items, run.em)
		maxDev, meanDev := stats.OrderDeviation(ideal, order)
		rows = append(rows, []string{
			run.name, strings.Join(order, " "),
			fmt.Sprintf("%d", maxDev), fmt.Sprintf("%.2f", meanDev),
		})
	}
	return &Table{
		ID:      "fig2",
		Title:   "WF2Q+ scheduling order: PIEO vs PIFO emulations (Fig 2c-e)",
		Columns: []string{"scheduler", "order", "max-dev", "mean-dev"},
		Rows:    rows,
		Notes: []string{
			"instance mirrors the Fig 2(b) narrative; exact figure values are not machine-readable (see EXPERIMENTS.md)",
			"every PIFO emulation deviates from the ideal order; PIEO reproduces it exactly",
		},
	}
}
