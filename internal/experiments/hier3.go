package experiments

import (
	"fmt"

	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/hier"
	"pieo/internal/netsim"
	"pieo/internal/stats"
)

// Hier3 extends the §6.3 evaluation to the paper's general n-level claim
// (§4.3: "to support n-level hierarchical scheduling ... we need n
// physical PIEOs"): a three-level tree — tenants rate-limited at the
// root, VMs rate-limited inside each tenant, flows fair-queued inside
// each VM — must enforce both nested limits and intra-VM fairness
// simultaneously.
func Hier3() *Table {
	const (
		linkGbps = 40
		tenants  = 2
		vmsPer   = 2
		flowsPer = 5
		mtu      = 1500
		duration = clock.Time(20_000_000)
	)
	tenantLimit := []float64{24, 12}
	vmShare := [][]float64{{16, 8}, {8, 4}} // per-tenant VM limits

	h := hier.New(linkGbps, hier.TokenBucket())
	var vmNodes [][]*hier.Node
	id := flowq.FlowID(0)
	var tenantNodes []*hier.Node
	for tn := 0; tn < tenants; tn++ {
		tenant := h.Root().AddNode(fmt.Sprintf("tenant%d", tn), hier.TokenBucket())
		tenantNodes = append(tenantNodes, tenant)
		var vms []*hier.Node
		for v := 0; v < vmsPer; v++ {
			vm := tenant.AddNode(fmt.Sprintf("t%dvm%d", tn, v), hier.WF2Q())
			for f := 0; f < flowsPer; f++ {
				vm.AddFlow(id)
				id++
			}
			vms = append(vms, vm)
		}
		vmNodes = append(vmNodes, vms)
	}
	h.Build()
	for tn, tenant := range tenantNodes {
		self := tenant.Self()
		self.RateGbps = tenantLimit[tn]
		self.Burst = 8 * mtu
		self.Tokens = self.Burst
		for v, vm := range vmNodes[tn] {
			vs := vm.Self()
			vs.RateGbps = vmShare[tn][v]
			vs.Burst = 8 * mtu
			vs.Tokens = vs.Burst
		}
	}

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	flowBytes := make([]uint64, tenants*vmsPer*flowsPer)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		flowBytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < flowq.FlowID(len(flowBytes)); f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: mtu, Seq: seq})
		}
	}
	sim.Run(duration)

	t := &Table{
		ID:      "hier3",
		Title:   "Three-level enforcement: tenant TB over VM TB over flow WF2Q+ (§4.3)",
		Columns: []string{"node", "limit Gbps", "measured Gbps", "intra-VM Jain"},
	}
	for tn := 0; tn < tenants; tn++ {
		var tenantBytes uint64
		for v := 0; v < vmsPer; v++ {
			var vmBytes uint64
			var shares []float64
			for f := 0; f < flowsPer; f++ {
				b := flowBytes[(tn*vmsPer+v)*flowsPer+f]
				vmBytes += b
				shares = append(shares, float64(b))
			}
			tenantBytes += vmBytes
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("tenant%d/vm%d", tn, v),
				fmt.Sprintf("%.0f", vmShare[tn][v]),
				fmt.Sprintf("%.3f", float64(vmBytes)*8/float64(duration)),
				fmt.Sprintf("%.5f", stats.JainIndex(shares)),
			})
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("tenant%d (total)", tn),
			fmt.Sprintf("%.0f", tenantLimit[tn]),
			fmt.Sprintf("%.3f", float64(tenantBytes)*8/float64(duration)),
			"",
		})
	}
	t.Notes = []string{
		"three physical PIEOs, one per level; both nested rate limits hold at once",
		"VM limits within each tenant sum to the tenant limit, so neither level is slack",
	}
	return t
}
