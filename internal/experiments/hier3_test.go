package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestHier3NestedEnforcement(t *testing.T) {
	if testing.Short() {
		t.Skip("20 ms simulation")
	}
	tab := Hier3()
	for _, row := range tab.Rows {
		limit := parseLeadingFloat(t, row[1])
		got := parseLeadingFloat(t, row[2])
		if math.Abs(got-limit)/limit > 0.03 {
			t.Fatalf("%s: measured %v vs limit %v (>3%%)", row[0], got, limit)
		}
		if strings.Contains(row[0], "/vm") {
			if jain := parseLeadingFloat(t, row[3]); jain < 0.999 {
				t.Fatalf("%s: intra-VM Jain = %v", row[0], jain)
			}
		}
	}
}
