package experiments

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/hier"
	"pieo/internal/netsim"
	"pieo/internal/stats"
)

// The §4.2 logical-partitioning experiment: the §6.3 enforcement study
// (Fig 11/12) rerun at 100x the leaf count — 100 VMs of 100 flows each,
// 10k+ logical nodes — with every logical node multiplexed onto ONE
// shared engine via the partition allocator. The per-level layout (one
// physical PIEO per depth) is the oracle; each partitioned row must
// enforce the same rates through a single backend.
const (
	hierScaleLinkGbps  = 40
	hierScaleMTU       = 1500
	hierScaleSampledVM = 0
)

// hierScaleRates is the sampled VM's rate-limit sweep: the bottom,
// middle, and top of the Fig 11 sweep, enough to show enforcement and
// fair division without a 7-point sweep at 10k leaves.
var hierScaleRates = []float64{1, 8, 32}

// hierScaleVMs returns the level-2 node count (default 100; the paper's
// Fig 11 uses 10). PIEO_HIERSCALE_VMS shrinks it for smoke runs.
func hierScaleVMs() int {
	if s := os.Getenv("PIEO_HIERSCALE_VMS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			return n
		}
	}
	return 100
}

// hierScaleFlows returns the flows per VM (default 100).
// PIEO_HIERSCALE_FLOWS shrinks it for smoke runs.
func hierScaleFlows() int {
	if s := os.Getenv("PIEO_HIERSCALE_FLOWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 100
}

// hierScaleDuration returns the simulated time per trial (default 20 ms,
// matching §6.3). PIEO_HIERSCALE_US shrinks it for smoke runs.
func hierScaleDuration() clock.Time {
	if s := os.Getenv("PIEO_HIERSCALE_US"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return clock.Time(n) * 1000
		}
	}
	return clock.Time(20_000_000)
}

// buildHierScale grows the two-level Token-Bucket-over-WF²Q+ tree into
// the hierarchy produced by mk and applies the §6.3 control plane: the
// sampled VM gets the limit under test, the others split 90% of what
// remains so enforcement is observable in isolation.
func buildHierScale(mk func(rootPolicy *hier.Policy) *hier.Hierarchy, nVMs, nFlows int, sampledGbps float64) *hier.Hierarchy {
	h := mk(hier.TokenBucket())
	var vms []*hier.Node
	id := flowq.FlowID(0)
	for v := 0; v < nVMs; v++ {
		vm := h.Root().AddNode(fmt.Sprintf("vm%d", v), hier.WF2Q())
		for f := 0; f < nFlows; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()

	otherRate := (hierScaleLinkGbps - sampledGbps) * 0.9 / float64(nVMs-1)
	for v, vm := range vms {
		self := vm.Self()
		self.RateGbps = otherRate
		if v == hierScaleSampledVM {
			self.RateGbps = sampledGbps
		}
		// The bucket cap must absorb tokens accrued while the VM waits
		// behind the other VMs' packets — up to nVMs-1 wire times, so
		// unlike the 10-VM study the depth must scale with the fan-out
		// or high limits undershoot (see enforcement.go). The INITIAL
		// fill stays shallow: starting every VM with the full deep
		// bucket makes the first tens of ms a credit storm where the
		// link splits evenly regardless of configured rates.
		self.Burst = float64(2*nVMs) * hierScaleMTU
		self.Tokens = 8 * hierScaleMTU
	}
	return h
}

// runHierScale drives one closed-loop trial and returns the sampled
// VM's achieved rate, its per-flow rates, the total packets the link
// carried, and the wall-clock ns spent per transmitted packet.
func runHierScale(h *hier.Hierarchy, nVMs, nFlows int, dur clock.Time) (vmGbps float64, flowGbps []float64, pkts uint64, nsPerPkt float64) {
	sim := netsim.New(netsim.Link{RateGbps: hierScaleLinkGbps}, h)
	vmMeter := stats.NewRateMeter(0)
	flowBytes := make([]uint64, nFlows)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		if int(p.Flow)/nFlows == hierScaleSampledVM {
			vmMeter.Record(now, p.Size)
			flowBytes[int(p.Flow)%nFlows] += uint64(p.Size)
		}
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < flowq.FlowID(nVMs*nFlows); f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: hierScaleMTU, Seq: seq})
		}
	}
	start := time.Now()
	sim.Run(dur)
	elapsed := time.Since(start)
	vmMeter.CloseAt(dur)

	flowGbps = make([]float64, nFlows)
	for i, b := range flowBytes {
		flowGbps[i] = float64(b) * 8 / float64(dur)
	}
	pkts = sim.Sent()
	if pkts > 0 {
		nsPerPkt = float64(elapsed.Nanoseconds()) / float64(pkts)
	}
	return vmMeter.Gbps(), flowGbps, pkts, nsPerPkt
}

// hierScaleVariants enumerates the hierarchy layouts under test: the
// per-level oracle first, then the partitioned single-engine layout
// over every measured backend.
func hierScaleVariants() []struct {
	name string
	mk   func(rootPolicy *hier.Policy) *hier.Hierarchy
} {
	variants := []struct {
		name string
		mk   func(rootPolicy *hier.Policy) *hier.Hierarchy
	}{
		{"per-level/core", func(p *hier.Policy) *hier.Hierarchy {
			return hier.New(hierScaleLinkGbps, p)
		}},
	}
	for _, name := range Backends() {
		be := name
		variants = append(variants, struct {
			name string
			mk   func(rootPolicy *hier.Policy) *hier.Hierarchy
		}{"partitioned/" + be, func(p *hier.Policy) *hier.Hierarchy {
			return hier.NewPartitionedOn(hierScaleLinkGbps, p, func(n int) backend.Backend {
				b, err := backend.New(be, n)
				if err != nil {
					panic(fmt.Sprintf("hierscale: backend %q: %v", be, err))
				}
				return b
			})
		}})
	}
	return variants
}

// HierScale reproduces the Fig 11/12 enforcement study at 100x scale:
// a 10k-leaf two-level hierarchy whose logical nodes are multiplexed
// onto one shared engine by the partition allocator, compared against
// the per-level oracle at every rate point.
func HierScale() *Table {
	nVMs, nFlows := hierScaleVMs(), hierScaleFlows()
	dur := hierScaleDuration()
	var rows [][]string
	for _, rate := range hierScaleRates {
		for _, v := range hierScaleVariants() {
			h := buildHierScale(v.mk, nVMs, nFlows, rate)
			vmGbps, flowGbps, pkts, nsPerPkt := runHierScale(h, nVMs, nFlows, dur)
			rows = append(rows, []string{
				v.name,
				fmt.Sprintf("%d", nVMs*nFlows),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.3f", vmGbps),
				fmt.Sprintf("%+.2f%%", 100*(vmGbps-rate)/rate),
				fmt.Sprintf("%.5f", stats.JainIndex(flowGbps)),
				fmt.Sprintf("%d", pkts),
				fmt.Sprintf("%.0f", nsPerPkt),
			})
		}
	}
	return &Table{
		ID:    "hierscale",
		Title: fmt.Sprintf("Logical partitioning at scale: %d VMs x %d flows, TB over WF2Q+ on one shared engine (Fig 11/12 at 100x)", nVMs, nFlows),
		Columns: []string{"layout", "leaves", "configured Gbps", "measured Gbps", "error",
			"Jain (sampled VM)", "packets", "ns/pkt"},
		Rows: rows,
		Notes: []string{
			"per-level/core is the oracle (one physical PIEO per depth); partitioned rows multiplex every logical node onto one backend via §4.2 index ranges",
			"Jain index is over the sampled VM's per-flow rates (ideal 1.0 under WF2Q+)",
			"PIEO_HIERSCALE_VMS / PIEO_HIERSCALE_FLOWS / PIEO_HIERSCALE_US shrink the run for smoke tests",
		},
	}
}
