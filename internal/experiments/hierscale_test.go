package experiments

import (
	"strconv"
	"testing"

	_ "pieo/internal/shard"
)

// TestHierScaleReduced runs the partitioning-at-scale study at smoke
// size and checks the two properties the full run must exhibit: every
// partitioned layout transmits byte-identically to the per-level oracle
// (same measured rate, same packet count), and enforcement holds — the
// sampled VM's measured rate stays within tolerance of its limit.
func TestHierScaleReduced(t *testing.T) {
	t.Setenv("PIEO_HIERSCALE_VMS", "10")
	t.Setenv("PIEO_HIERSCALE_FLOWS", "10")
	t.Setenv("PIEO_HIERSCALE_US", "2000")

	tbl := HierScale()
	nVariants := 1 + len(Backends())
	if len(tbl.Rows) != len(hierScaleRates)*nVariants {
		t.Fatalf("want %d rows, got %d", len(hierScaleRates)*nVariants, len(tbl.Rows))
	}
	for i := 0; i < len(tbl.Rows); i += nVariants {
		oracle := tbl.Rows[i]
		if oracle[0] != "per-level/core" {
			t.Fatalf("row %d: oracle row out of position: %v", i, oracle)
		}
		for j := 1; j < nVariants; j++ {
			part := tbl.Rows[i+j]
			// measured Gbps, Jain, and packet count must match the
			// oracle exactly — the partitioned layout is bit-exact.
			for _, col := range []int{3, 5, 6} {
				if part[col] != oracle[col] {
					t.Errorf("rate %s: %s %s=%s, oracle %s",
						oracle[2], part[0], tbl.Columns[col], part[col], oracle[col])
				}
			}
		}
		rate, _ := strconv.ParseFloat(oracle[2], 64)
		got, _ := strconv.ParseFloat(oracle[3], 64)
		// 2 ms windows quantize coarsely; enforcement within 15% is the
		// smoke bar (the committed full run holds a much tighter error).
		if got < rate*0.85 || got > rate*1.15 {
			t.Errorf("rate %.0f: measured %.3f outside 15%% tolerance", rate, got)
		}
	}
}
