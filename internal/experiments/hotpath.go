package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	_ "pieo/internal/shard" // registers the "sharded" backend
)

// hotpathSizes sweeps the software-datapath operating points: the paper's
// 1K and 30K scheduler sizes plus the 2^19 stress point where the O(√N)
// scans the software used to pay are ~23× longer than at 1K.
var hotpathSizes = []int{1 << 10, 30000, 1 << 19}

// hotpathBatch is the batch width of the batched measurement, matching
// BenchmarkCoreMixedBatch.
const hotpathBatch = 64

// hotpathOps scales the measured op count to the structure size so the
// big sizes neither finish instantly nor dominate the runtime.
func hotpathOps(n int) int {
	if n >= 1<<19 {
		return 1 << 20
	}
	return 1 << 22
}

// hotpathMeasure runs the steady-state half-occupancy mixed workload
// (alternating enqueue/dequeue, uniformly random ranks, all eligible —
// the BenchmarkCoreMixed shape) against a fresh backend and returns
// ns/op and heap allocations per op. batch <= 1 issues single
// operations; larger values go through the backend.Batcher paths.
func hotpathMeasure(name string, n, batch int) (nsPerOp, allocsPerOp float64) {
	be, err := backend.New(name, n)
	if err != nil {
		panic(fmt.Sprintf("hotpath: %v", err))
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n/2; i++ {
		if err := be.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}); err != nil {
			panic(fmt.Sprintf("hotpath: warm fill: %v", err))
		}
	}
	ops := hotpathOps(n)
	id := uint32(n)
	in := make([]core.Entry, hotpathBatch)
	out := make([]core.Entry, 0, hotpathBatch)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if batch <= 1 {
		for i := 0; i < ops; i++ {
			if i%2 == 0 {
				id++
				_ = be.Enqueue(core.Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always})
			} else {
				be.Dequeue(0)
			}
		}
	} else {
		for i := 0; i < ops; i += 2 * batch {
			for j := 0; j < batch; j++ {
				id++
				in[j] = core.Entry{ID: id, Rank: uint64(rng.Intn(1 << 20)), SendTime: clock.Always}
			}
			if _, err := backend.EnqueueBatch(be, in[:batch]); err != nil {
				panic(fmt.Sprintf("hotpath: batch enqueue: %v", err))
			}
			out = backend.DequeueUpTo(be, 0, batch, out[:0])
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	return nsPerOp, allocsPerOp
}

// Hotpath measures the software datapath itself: steady-state mixed
// enqueue/dequeue ns/op and allocs/op per backend and size, single-op
// and through the batch APIs. This is the experiment behind the
// EXPERIMENTS.md "hotpath" section; unlike fig8–fig10 it reports
// measured software cost, not modeled hardware cost (the Stats hardware
// counters are identical either way — see DESIGN.md §7).
func Hotpath() *Table {
	var rows [][]string
	for _, name := range Backends() {
		for _, n := range hotpathSizes {
			ns, allocs := hotpathMeasure(name, n, 1)
			bns, ballocs := hotpathMeasure(name, n, hotpathBatch)
			rows = append(rows, []string{
				name,
				sizeLabel(n),
				fmt.Sprintf("%.1f", ns),
				fmt.Sprintf("%.3f", allocs),
				fmt.Sprintf("%.1f", bns),
				fmt.Sprintf("%.3f", ballocs),
			})
		}
	}
	return &Table{
		ID:      "hotpath",
		Title:   "Software datapath: steady-state mixed enqueue/dequeue cost",
		Columns: []string{"backend", "size", "ns/op", "allocs/op", "batch64 ns/op", "batch64 allocs/op"},
		Rows:    rows,
		Notes: []string{
			"half-occupancy steady state, uniformly random ranks, all elements eligible",
			"single-process wall-clock measurement; go test -bench CoreMixed gives the calibrated numbers",
			"allocs/op ~0 is the contract: the op path allocates only on map growth past the occupancy hint",
		},
	}
}
