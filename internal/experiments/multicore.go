package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/shard"
)

// The true-multicore scaling study (ROADMAP item 3): every other table
// in this package is recorded at GOMAXPROCS=1, where goroutine
// contention is scheduler-interleaved and the sharded engine's
// parallelism — the paper's §4.3 "multiple physical PIEOs" claim lifted
// into software — is never actually exercised. This experiment re-runs
// a contended mixed workload under a sweep of GOMAXPROCS values and
// reports throughput versus cores versus K, including the crossover
// point where the sharded engine overtakes the single-lock baseline.
//
// Measurement protocol (RunParallel-style, not the interleave storms):
// W = procs workers share an atomic chunk counter over the operation
// space; each worker claims a chunk and drives enqueue+dequeue PAIRS
// against the shared engine at an always-eligible now, so steady-state
// occupancy stays pinned near the prefill and every operation contends
// realistically on both the ingress and extraction paths. ns/op is
// wall-clock over total operations (2 x pairs), best of N runs.

const (
	scalingCapacity = 1 << 19
	scalingPrefill  = 4096
	scalingGrain    = 512 // pairs per chunk claim
	prefillIDBase   = 1 << 28
)

func scalingEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// scalingProcs returns the GOMAXPROCS sweep, default 1,2,4,8;
// PIEO_SCALING_PROCS overrides it (comma-separated).
func scalingProcs() []int {
	if s := os.Getenv("PIEO_SCALING_PROCS"); s != "" {
		var out []int
		for _, f := range strings.Split(s, ",") {
			if v, err := strconv.Atoi(strings.TrimSpace(f)); err == nil && v > 0 {
				out = append(out, v)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []int{1, 2, 4, 8}
}

// scalingRank spreads IDs over a 20-bit rank space with a Fibonacci mix
// — deterministic (replayable runs), collision-rich enough to exercise
// the FIFO tie paths, and narrow enough for the cffs quantizer.
func scalingRank(id uint32) uint64 {
	return (uint64(id) * 0x9E3779B97F4A7C15 >> 44)
}

// parallelMeasure drives pairs enqueue+dequeue pairs from `workers`
// concurrent workers against a prefilled target and returns ns per
// operation. Workers claim scalingGrain-sized chunks from a shared
// counter (so work distribution adapts to stragglers), every entry is
// always eligible, and a failed dequeue (a momentary empty race under
// extraction contention) retries — occupancy never falls below
// prefill - workers, so progress is guaranteed.
func parallelMeasure(be combiningTarget, pairs, workers int) float64 {
	for i := 0; i < scalingPrefill; i++ {
		id := uint32(prefillIDBase + i)
		if err := be.Enqueue(core.Entry{ID: id, Rank: scalingRank(id), SendTime: clock.Always}); err != nil {
			panic(fmt.Sprintf("experiments: scaling prefill: %v", err))
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(scalingGrain) - scalingGrain
				if lo >= int64(pairs) {
					return
				}
				hi := lo + scalingGrain
				if hi > int64(pairs) {
					hi = int64(pairs)
				}
				for i := lo; i < hi; i++ {
					id := uint32(i + 1)
					for {
						err := be.Enqueue(core.Entry{ID: id, Rank: scalingRank(id), SendTime: clock.Always})
						if err == nil {
							break
						}
						if err == core.ErrFull {
							runtime.Gosched()
							continue
						}
						panic(fmt.Sprintf("experiments: scaling enqueue: %v", err))
					}
					for {
						if _, ok := be.Dequeue(clock.Always); ok {
							break
						}
						runtime.Gosched()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(2*pairs)
}

// Scaling produces the throughput-vs-cores-vs-K curve: the single-lock
// synclist baseline against the sharded engine (combining off and on,
// K in {4, 8}) and the sharded+cffs composite, each measured at every
// GOMAXPROCS in the sweep. The "vs synclist" column is the speedup over
// the baseline AT THE SAME proc count; the notes record, per
// configuration, the smallest proc count where it beats the baseline
// (the crossover the acceptance criteria ask for).
func Scaling() *Table {
	pairs := scalingEnvInt("PIEO_SCALING_OPS", 1<<17)
	reps := scalingEnvInt("PIEO_SCALING_REPS", 3)
	procsList := scalingProcs()

	type config struct {
		name string
		k    int
		make func() combiningTarget
	}
	newSharded := func(k int, backendName string, fc bool) combiningTarget {
		e, err := shard.NewNamed(scalingCapacity, k, backendName)
		if err != nil {
			panic(fmt.Sprintf("experiments: scaling: %v", err))
		}
		e.SetCombining(fc)
		return e
	}
	configs := []config{
		{"synclist", 1, func() combiningTarget {
			return &lockedList{b: backend.NewCoreList(scalingCapacity)}
		}},
		{"sharded", 4, func() combiningTarget { return newSharded(4, "core", false) }},
		{"sharded", 8, func() combiningTarget { return newSharded(8, "core", false) }},
		{"sharded+fc", 4, func() combiningTarget { return newSharded(4, "core", true) }},
		{"sharded+fc", 8, func() combiningTarget { return newSharded(8, "core", true) }},
		// The cffs row runs combining OFF so it isolates backend scaling:
		// the fc ablation is the sharded vs sharded+fc pair above.
		{"sharded+cffs", 8, func() combiningTarget { return newSharded(8, "cffs", false) }},
	}

	t := &Table{
		ID:      "scaling",
		Title:   "True multicore scale-out: contended mixed throughput vs cores vs K",
		Columns: []string{"backend", "K", "procs", "ops", "ns/op", "Mops/s", "vs synclist"},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	crossover := map[string]int{} // config label -> smallest procs beating synclist
	order := []string{}
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		var baseNs float64
		for _, c := range configs {
			best := math.Inf(1)
			for r := 0; r < reps; r++ {
				if ns := parallelMeasure(c.make(), pairs, procs); ns < best {
					best = ns
				}
			}
			vs := "1.00x (baseline)"
			if c.name == "synclist" {
				baseNs = best
			} else {
				vs = fmt.Sprintf("%.2fx", baseNs/best)
				label := fmt.Sprintf("%s K=%d", c.name, c.k)
				if _, seen := crossover[label]; !seen {
					order = append(order, label)
					crossover[label] = 0
				}
				if baseNs/best > 1 && crossover[label] == 0 {
					crossover[label] = procs
				}
			}
			t.Rows = append(t.Rows, []string{
				c.name,
				fmt.Sprintf("%d", c.k),
				fmt.Sprintf("%d", procs),
				fmt.Sprintf("%d", 2*pairs),
				fmt.Sprintf("%.1f", best),
				fmt.Sprintf("%.2f", 1e3/best),
				vs,
			})
		}
	}
	runtime.GOMAXPROCS(prev)

	for _, label := range order {
		if p := crossover[label]; p > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("crossover: %s first beats synclist at procs=%d", label, p))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("crossover: %s never beats synclist in this sweep", label))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host: %d CPUs; rows with procs above that are time-shared, not parallel — regenerate on a multicore host (see EXPERIMENTS.md)", runtime.NumCPU()),
		fmt.Sprintf("protocol: workers = procs, shared chunk counter (grain %d pairs), enqueue+dequeue pairs at always-eligible now, prefill %d, best of %d runs", scalingGrain, scalingPrefill, reps),
		fmt.Sprintf("PIEO_SCALING_OPS pairs per run (default 2^17), PIEO_SCALING_PROCS sweep (default 1,2,4,8), PIEO_SCALING_REPS best-of (default 3)"),
	)
	return t
}
