package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/sched"
)

// Overload measures goodput under list saturation for the three
// admission policies (backend.AdmissionPolicy): reject, tail-drop, and
// RIFO-style rank-aware push-out. The paper's hardware provisions the
// ordered list for the worst case and never overflows (§5); a software
// deployment shared by more flows than the list holds cannot, so the
// shedding rule becomes part of the scheduling contract.
//
// Setup: a static-priority program over a capacity-C core list, offered
// load swept as a multiple of C concurrently backlogged flows. Flow
// priority equals flow id, so the "premium" set — the C best-priority
// flows — is exactly the set a rank-aware policy should protect. Each
// run conserves packets exactly: arrived = delivered + declared drops.
//
// The measurement: push-out keeps premium delivery near 100% regardless
// of overload because a premium arrival evicts the worst resident, while
// reject and tail-drop let residency go to whoever got there first, so
// premium goodput decays toward C/offered as overload grows.
func Overload() *Table {
	const (
		capacity = 64
		arrivals = 40000
	)
	t := &Table{
		ID:    "overload",
		Title: fmt.Sprintf("Admission policy goodput under overload (C=%d flows)", capacity),
		Columns: []string{
			"policy", "offered flows", "load", "delivered", "goodput",
			"premium goodput", "declared drops", "evictions",
		},
	}
	prog := &sched.Program{
		Name:  "static-priority",
		Model: sched.OutputTriggered,
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			f.Rank = f.Priority
			f.SendTime = clock.Always
		},
	}
	for _, pol := range []backend.AdmissionPolicy{
		backend.AdmitReject, backend.AdmitTailDrop, backend.AdmitPushOut,
	} {
		for _, load := range []float64{0.5, 1, 2, 4, 8} {
			flows := int(load * capacity)
			s := sched.NewOn(prog, backend.NewCoreList(capacity), 10)
			s.Strict = false
			s.Admission = pol
			for id := 1; id <= flows; id++ {
				s.Flow(flowq.FlowID(id)).Priority = uint64(id)
			}

			rng := rand.New(rand.NewSource(int64(flows)*31 + int64(pol)))
			now := clock.Time(0)
			var delivered, premium, premiumArrived uint64
			deliver := func(p flowq.Packet, ok bool) {
				if !ok {
					return
				}
				delivered++
				if uint64(p.Flow) <= capacity {
					premium++
				}
			}
			for i := 0; i < arrivals; i++ {
				now++
				id := flowq.FlowID(rng.Intn(flows) + 1)
				if uint64(id) <= capacity {
					premiumArrived++
				}
				s.OnArrival(now, flowq.Packet{Flow: id, Size: 1500, Arrival: now})
				// Service at half the arrival rate: flows stay backlogged,
				// so the list is continuously contended at load > 1.
				if i%2 == 1 {
					now++
					deliver(s.NextPacket(now))
				}
			}
			for {
				now++
				p, ok := s.NextPacket(now)
				if !ok {
					break
				}
				deliver(p, ok)
			}

			fs := s.FaultStats()
			if got := delivered + fs.DroppedPackets; got != arrivals {
				panic(fmt.Sprintf("experiments: overload conservation violated for %v load %.1f: %d delivered + %d dropped != %d arrived (backlog %d, last fault %v)",
					pol, load, delivered, fs.DroppedPackets, arrivals, s.Backlog(), s.LastFault()))
			}
			premiumPct := "n/a"
			if premiumArrived > 0 {
				premiumPct = fmt.Sprintf("%.1f%%", 100*float64(premium)/float64(premiumArrived))
			}
			t.Rows = append(t.Rows, []string{
				pol.String(), fmt.Sprintf("%d", flows), fmt.Sprintf("%.1fx", load),
				fmt.Sprintf("%d", delivered),
				fmt.Sprintf("%.1f%%", 100*float64(delivered)/float64(arrivals)),
				premiumPct,
				fmt.Sprintf("%d", fs.DroppedPackets),
				fmt.Sprintf("%d", fs.AdmissionEvictions),
			})
		}
	}
	t.Notes = []string{
		fmt.Sprintf("premium goodput = delivery fraction for the %d best-priority flows (the set push-out should protect)", capacity),
		"every run conserves packets exactly: arrived = delivered + declared drops (checked)",
		"strict mode would panic at the first full list; these runs use the non-strict typed-error contract",
	}
	return t
}
