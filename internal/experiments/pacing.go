package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/algos"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/netsim"
	"pieo/internal/sched"
	"pieo/internal/stats"
)

// PacingPrecision reproduces the §1 motivation: protocols that "require packets
// to be transmitted at precise times on the wire, in some cases at
// nanosecond-level precision", which software schedulers miss because of
// "non-deterministic software processing jitter and lack of high
// resolution software timers".
//
// The workload paces one flow at exact 10 µs intervals. The
// hardware-model scheduler (PIEO Pacer on the simulated NIC) releases
// each packet at its programmed instant. The software baseline models a
// kernel-timer dispatcher: release times are quantized to a timer tick
// and perturbed by dispatch jitter (log-normal-ish mixture with
// occasional scheduling hiccups) — the standard behavior the paper's
// citations measure. Reported: release-error distribution for each.
func PacingPrecision() *Table {
	const (
		linkGbps = 40
		nPackets = 2000
		// A pacing target that is NOT timer-tick aligned, so the
		// software baseline's quantization error is visible.
		interval = clock.Time(10_300)
	)

	// Hardware path: PIEO pacer in the NIC model.
	hwErrors := func() []float64 {
		s := sched.New(algos.Pacer(), 4, linkGbps)
		sim := netsim.New(netsim.Link{RateGbps: linkGbps}, s)
		var errs []float64
		sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
			// OnTransmit fires at completion; the release instant is one
			// wire time earlier.
			wire := clock.Time(float64(p.Size) * 8 / linkGbps)
			errs = append(errs, float64(now-wire-p.SendAt))
		}
		for i := 0; i < nPackets; i++ {
			sim.InjectOne(0, flowq.Packet{
				Flow: 1, Size: 1500,
				SendAt: clock.Time(i+1) * interval,
				Seq:    uint64(i),
			})
		}
		sim.Run(clock.Time(nPackets+10) * interval)
		return errs
	}()

	// Software baseline: timer-tick quantization + dispatch jitter.
	swErrors := func(tickNs uint64) []float64 {
		rng := rand.New(rand.NewSource(99))
		errs := make([]float64, 0, nPackets)
		busyUntil := uint64(0)
		for i := 0; i < nPackets; i++ {
			target := uint64(i+1) * uint64(interval)
			// The timer fires at the next tick boundary at-or-after the
			// target, plus wakeup/dispatch jitter.
			fire := (target + tickNs - 1) / tickNs * tickNs
			jitter := uint64(rng.ExpFloat64() * 1500) // ~1.5 us mean dispatch delay
			if rng.Intn(100) == 0 {
				jitter += 50_000 // an occasional 50 us scheduling hiccup
			}
			release := fire + jitter
			if release < busyUntil {
				release = busyUntil
			}
			busyUntil = release + 300 // wire time at 40G
			errs = append(errs, float64(release-target))
		}
		return errs
	}

	rows := [][]string{row("PIEO pacer (hardware model)", hwErrors)}
	rows = append(rows, row("software, 1 us timer tick", swErrors(1_000)))
	rows = append(rows, row("software, 10 us timer tick", swErrors(10_000)))
	return &Table{
		ID:      "pacing-precision",
		Title:   "Packet pacing precision: release-time error vs a 10 us pacing target (§1)",
		Columns: []string{"scheduler", "mean err ns", "p99 err ns", "max err ns"},
		Rows:    rows,
		Notes: []string{
			"the hardware-model pacer releases exactly at the programmed instants (0 ns error)",
			"the software baseline models timer quantization plus dispatch jitter per the §1 citations",
		},
	}
}

func row(name string, errs []float64) []string {
	s := stats.Summarize(errs)
	return []string{name,
		fmt.Sprintf("%.0f", s.Mean),
		fmt.Sprintf("%.0f", s.P99),
		fmt.Sprintf("%.0f", s.Max),
	}
}
