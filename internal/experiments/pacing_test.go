package experiments

import "testing"

func TestPacingHardwareExact(t *testing.T) {
	tab := PacingPrecision()
	hw := tab.Rows[0]
	for col := 1; col <= 3; col++ {
		if v := parseLeadingFloat(t, hw[col]); v != 0 {
			t.Fatalf("hardware pacer error column %d = %v, want 0", col, v)
		}
	}
}

func TestPacingSoftwareJitterVisible(t *testing.T) {
	tab := PacingPrecision()
	for _, row := range tab.Rows[1:] {
		if mean := parseLeadingFloat(t, row[1]); mean < 100 {
			t.Fatalf("%s mean error %v ns implausibly small", row[0], mean)
		}
	}
	// Coarser ticks hurt more.
	fine := parseLeadingFloat(t, tab.Rows[1][1])
	coarse := parseLeadingFloat(t, tab.Rows[2][1])
	if coarse <= fine {
		t.Fatalf("10us tick mean %v <= 1us tick mean %v", coarse, fine)
	}
}
