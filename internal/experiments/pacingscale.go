package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/pktgen"
)

// pacingScaleSizes sweeps the paced-flow counts of the Carousel-style
// scenario: the paper's 30K operating point is long passed by the 100K
// step, and 1M is the Carousel/Eiffel scale the timing-wheel eligibility
// index exists for.
var pacingScaleSizes = []int{10_000, 100_000, 1_000_000}

// pacingScaleRounds returns how many wake→dispatch rounds each
// configuration runs. The default keeps the full sweep (sizes × backends
// × index on/off) in the seconds range; PIEO_PACING_ROUNDS overrides it
// for smoke runs or longer measurements.
func pacingScaleRounds() int {
	if s := os.Getenv("PIEO_PACING_ROUNDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 10_000
}

// pacingScaleMaxFlows caps the sweep's largest size (PIEO_PACING_FLOWS),
// so CI smoke jobs can stop at 100K while the default reaches 1M.
func pacingScaleMaxFlows() int {
	if s := os.Getenv("PIEO_PACING_FLOWS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return pacingScaleSizes[len(pacingScaleSizes)-1]
}

// pacingScaleResult is one configuration's measurement.
type pacingScaleResult struct {
	dequeueNs float64 // mean ns per Dequeue call, hits and sparse misses
	wakeNs    float64 // mean ns per next-wake query
	roundNs   float64 // mean ns per wake→dispatch round (the headline)
	exactPct  float64 // % of wake hints that delivered exactly one due element
	dispatch  int     // packets dispatched
}

// pacingScaleMeasure runs the Carousel-style open-loop pacing scenario
// against a fresh backend: n flows, each shaped by a steady-state token
// bucket (bucket depth one packet, so release_k = release_{k-1} +
// size·8/rate — the §4.2 TokenBucket program's arithmetic with the
// bucket always empty), with pktgen supplying the packet sizes and
// per-flow rate-derived gaps. Release phases are spread uniformly so at
// any instant well under 1% of flows are eligible; the driver is the
// Carousel event loop — drain everything due now, ask the backend when
// the next release lands, jump the clock there, dispatch, re-arm. With
// the timing-wheel index the "when" is one O(1) read; without it
// (wheel=false disables the index first) the backend falls back to its
// summary scans, which is the recorded software baseline.
func pacingScaleMeasure(name string, n int, wheel bool) pacingScaleResult {
	be, err := backend.New(name, n)
	if err != nil {
		panic(fmt.Sprintf("pacing: %v", err))
	}
	ix, _ := be.(backend.EligIndexed)
	if ix == nil {
		panic(fmt.Sprintf("pacing: backend %q has no eligibility index capability", name))
	}
	if !wheel {
		ix.DisableEligIndex()
	}

	rng := rand.New(rand.NewSource(7))
	sizes := &pktgen.BimodalSize{Small: 64, Large: 1500, FracSmall: 0.5, Rng: rand.New(rand.NewSource(8))}
	// Per-flow open-loop release clocks: the aggregate paced rate is the
	// line rate (Carousel's regime — admission control keeps the sum of
	// shaped rates at or under the link), so each flow's token-bucket
	// rate is ~lineGbps/n with a ±50% weight spread, and release density
	// in time is set by the LINK, not by the flow count. That is what
	// makes the wheel O(1): elements per granule ≈ line packet rate ×
	// granule width, independent of n. Phases spread across one full gap
	// so releases arrive one at a time.
	const lineGbps = 100.0
	gap := make([]clock.Time, n)
	next := make([]clock.Time, n)
	for i := 0; i < n; i++ {
		rate := lineGbps / float64(n) * (0.5 + rng.Float64())
		gap[i] = pktgen.GapForRate(rate, sizes.Next())
		next[i] = 1 + clock.Time(rng.Int63n(int64(gap[i])))
		if err := be.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(next[i]), SendTime: next[i]}); err != nil {
			panic(fmt.Sprintf("pacing: fill: %v", err))
		}
	}

	var (
		res        pacingScaleResult
		now        clock.Time
		dqNs       time.Duration
		wkNs       time.Duration
		dqCalls    int
		exact      int
		inexact    int
		roundStart = time.Now()
	)
	rounds := pacingScaleRounds()
	for r := 0; r < rounds; r++ {
		// Drain everything due at now; the final call is the sparse-
		// eligibility miss the wheel turns into an O(1) check.
		for {
			t0 := time.Now()
			ent, ok := be.Dequeue(now)
			dqNs += time.Since(t0)
			dqCalls++
			if !ok {
				break
			}
			res.dispatch++
			f := ent.ID
			next[f] += gap[f]
			if err := be.Enqueue(core.Entry{ID: f, Rank: uint64(next[f]), SendTime: next[f]}); err != nil {
				panic(fmt.Sprintf("pacing: re-arm: %v", err))
			}
		}
		t0 := time.Now()
		wake := ix.NextWakeAfter(now)
		wkNs += time.Since(t0)
		if wake == clock.Never {
			break
		}
		// Exactness: the index promised nothing in (now, wake) and at
		// least one release at wake. The next round's drain adjudicates.
		t0 = time.Now()
		ent, ok := be.Dequeue(wake)
		dqNs += time.Since(t0)
		dqCalls++
		if ok {
			exact++
			res.dispatch++
			f := ent.ID
			next[f] += gap[f]
			if err := be.Enqueue(core.Entry{ID: f, Rank: uint64(next[f]), SendTime: next[f]}); err != nil {
				panic(fmt.Sprintf("pacing: re-arm: %v", err))
			}
		} else {
			inexact++
		}
		now = wake
	}
	elapsed := time.Since(roundStart)

	res.dequeueNs = float64(dqNs.Nanoseconds()) / float64(dqCalls)
	res.wakeNs = float64(wkNs.Nanoseconds()) / float64(rounds)
	res.roundNs = float64(elapsed.Nanoseconds()) / float64(rounds)
	if exact+inexact > 0 {
		res.exactPct = 100 * float64(exact) / float64(exact+inexact)
	}
	return res
}

// PacingScale is the Carousel-style scaling study behind the §1
// motivation at Eiffel/Carousel flow counts: 10K → 1M token-bucket-paced
// flows with sparse eligibility, comparing the timing-wheel eligibility
// index against the summary-scan baseline on the same backend. The
// headline is the per-round cost staying ~flat across two orders of
// magnitude of flows (the wheel's O(1) claim) and every wake hint being
// exact (a dispatch at precisely the promised instant — the "packets
// transmitted at precise times" requirement pacing protocols impose).
func PacingScale() *Table {
	maxFlows := pacingScaleMaxFlows()
	var rows [][]string
	for _, name := range Backends() {
		for _, n := range pacingScaleSizes {
			if n > maxFlows {
				continue
			}
			base := pacingScaleMeasure(name, n, false)
			whl := pacingScaleMeasure(name, n, true)
			speedup := base.roundNs / whl.roundNs
			rows = append(rows, []string{
				name, sizeLabel(n), "scan",
				fmt.Sprintf("%.0f", base.dequeueNs),
				fmt.Sprintf("%.0f", base.wakeNs),
				fmt.Sprintf("%.0f", base.roundNs),
				fmt.Sprintf("%.1f", base.exactPct),
				"1.0",
			})
			rows = append(rows, []string{
				name, sizeLabel(n), "wheel",
				fmt.Sprintf("%.0f", whl.dequeueNs),
				fmt.Sprintf("%.0f", whl.wakeNs),
				fmt.Sprintf("%.0f", whl.roundNs),
				fmt.Sprintf("%.1f", whl.exactPct),
				fmt.Sprintf("%.1f", speedup),
			})
		}
	}
	return &Table{
		ID:      "pacing",
		Title:   "Pacing at scale: Carousel-style wake/dispatch loop, 10K-1M token-bucket flows",
		Columns: []string{"backend", "flows", "elig index", "dequeue ns/op", "wake ns/op", "round ns", "exact %", "speedup"},
		Rows:    rows,
		Notes: []string{
			"open loop: each flow re-arms at prev release + size*8/rate (token bucket at steady state), <1% eligible at any instant",
			"wake ns/op is the next-release query; 'wheel' reads the timing-wheel index, 'scan' is the same backend with the index disabled",
			"exact % counts wake hints that delivered a due element at precisely the promised instant",
			"round ns is the whole wake->dispatch->re-arm iteration; ~flat across flow counts is the wheel's O(1) claim",
			"PIEO_PACING_ROUNDS / PIEO_PACING_FLOWS shrink the sweep for smoke runs",
		},
	}
}
