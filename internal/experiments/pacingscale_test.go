package experiments

import (
	"strconv"
	"testing"
)

// TestPacingScaleSmoke runs a cut-down Carousel sweep (few rounds, 10K
// ceiling) and checks the structural claims the full experiment records:
// every wake hint is exact and the wheel never loses to the scan badly
// (the speedup column parses and stays positive). Perf thresholds are
// NOT asserted here — CI timing is noise; EXPERIMENTS.md holds the
// calibrated numbers.
func TestPacingScaleSmoke(t *testing.T) {
	t.Setenv("PIEO_PACING_ROUNDS", "300")
	t.Setenv("PIEO_PACING_FLOWS", "10000")
	tab := PacingScale()
	if len(tab.Rows) == 0 {
		t.Fatal("pacing sweep produced no rows")
	}
	for _, row := range tab.Rows {
		if row[6] != "100.0" {
			t.Fatalf("backend %s flows %s index %s: exact%% = %s, want 100.0", row[0], row[1], row[2], row[6])
		}
		sp, err := strconv.ParseFloat(row[7], 64)
		if err != nil || sp <= 0 {
			t.Fatalf("backend %s flows %s: bad speedup %q (%v)", row[0], row[1], row[7], err)
		}
	}
}

// TestPacingScaleExactWakes drives one configuration directly and
// asserts the wheel-indexed measurement dispatches packets and reports
// every wake as exact — the "packets transmitted at precise times"
// requirement the index exists for.
func TestPacingScaleExactWakes(t *testing.T) {
	t.Setenv("PIEO_PACING_ROUNDS", "500")
	for _, name := range []string{"core", "sharded"} {
		res := pacingScaleMeasure(name, 5000, true)
		if res.dispatch == 0 {
			t.Fatalf("%s: no packets dispatched", name)
		}
		if res.exactPct != 100 {
			t.Fatalf("%s: exact%% = %v, want 100", name, res.exactPct)
		}
	}
}
