package experiments

import (
	"fmt"
	"math/rand"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	"pieo/internal/flowq"
	"pieo/internal/sched"
	"pieo/internal/shard"
	"pieo/internal/supervise"
)

// Recovery characterizes the self-healing supervision layer (DESIGN.md
// §12) along its two axes:
//
//   - MTTR under scheduled fault storms: a sharded engine on an injected
//     clock is stormed with time-windowed induced panics
//     (faultinject.Storm), and after the last window closes the
//     circuit breakers must converge every shard back to fully closed —
//     live traffic only, no forced recovery — within their own backoff
//     horizon. Rows sweep the breaker's base backoff, showing MTTR and
//     convergence time scale with the configured schedule, not with
//     luck. Conservation holds exactly in every cell.
//   - Graduated overload: the watermark controller steps the admission
//     policy (admit-all → tail-drop → push-out → shed) as offered load
//     sweeps 0.5x–8x capacity. Premium goodput (the C best-priority
//     flows) stays high under overload, and the hysteresis gap keeps the
//     level from flapping: ≥100 consecutive evaluations at the final
//     constant occupancy produce zero transitions.
func Recovery() *Table {
	t := &Table{
		ID:    "recovery",
		Title: "Self-healing supervision: MTTR under fault storms + graduated overload",
		Columns: []string{
			"scenario", "config", "quarantines", "recoveries", "lost",
			"mean MTTR", "max MTTR", "converge ticks",
			"premium goodput", "transitions", "sheds", "flap@const",
		},
	}
	for _, base := range []clock.Time{32, 128, 512} {
		t.Rows = append(t.Rows, recoveryStormRow(base))
	}
	for _, load := range []float64{0.5, 1, 2, 4, 8} {
		t.Rows = append(t.Rows, recoveryOverloadRow(load))
	}
	t.Notes = []string{
		"storm rows: two scheduled panic windows on an injected clock; convergence is live-traffic-only (no Recover())",
		"converge ticks = clock ticks from the last storm window closing to all breakers closed; bound = horizon × attempts",
		"MTTR in supervision-clock ticks, from an episode's first trip to its breaker close (half-open probe budget exhausted)",
		"overload rows: static-priority scheduler at C=64, controller on default watermarks scaled to capacity",
		"flap@const = level transitions across 100 consecutive evaluations at the run's final occupancy (0 = no flapping)",
		"every cell conserves exactly: accepted = delivered + queued + declared lost (storm) / arrived = delivered + drops (overload)",
	}
	return t
}

// recoveryStormRow storms one engine configuration and measures MTTR and
// convergence against the breaker's configured horizon.
func recoveryStormRow(base clock.Time) []string {
	const (
		capacity = 4096
		shards   = 8
		opsPerTick = 4 // driver ops between clock ticks: keeps shards busy
	)
	clk := &clock.Atomic{}
	e := shard.New(capacity, shards)
	e.SetClock(clk)
	cfg := supervise.BreakerConfig{
		BaseBackoff: base, MaxBackoff: 8 * base, ProbeBudget: 16, JitterPct: 25,
	}
	e.SetBreakerConfig(cfg)
	cfg = supervise.NewBreaker(0, cfg).Config() // normalize defaults (attempts cap etc.)
	storm := faultinject.NewStorm(clk, []faultinject.Window{
		{From: 100, To: 1100, Plan: faultinject.Plan{Seed: 11, PanicEvery: 53}},
		{From: 2000, To: 3000, Plan: faultinject.Plan{Seed: 29, PanicEvery: 101}},
	})
	e.SetFaultHook(storm.ShardHook())

	rng := rand.New(rand.NewSource(int64(base)))
	accepted, delivered := 0, 0
	nextID := uint32(1)
	driveOp := func() {
		switch rng.Intn(4) {
		case 0, 1:
			id := nextID
			nextID++
			ent := core.Entry{ID: id, Rank: uint64(rng.Intn(5000)), SendTime: clock.Time(rng.Intn(16))}
			if err := e.Enqueue(ent); err == nil {
				accepted++
			}
		case 2:
			if _, ok := e.Dequeue(clock.Time(rng.Intn(32))); ok {
				delivered++
			}
		case 3:
			id := uint32(rng.Intn(int(nextID))) + 1
			if _, ok := e.DequeueFlow(id); ok {
				delivered++
			}
		}
	}
	for clk.Now() < storm.End() {
		for i := 0; i < opsPerTick; i++ {
			driveOp()
		}
		clk.Advance(1)
	}

	// Convergence: live traffic + clock only. The bound is one full
	// backoff ladder of failed probes plus probation, far above what a
	// fault-free recovery needs — exceeding it means the breakers are not
	// converging and the experiment must fail loudly.
	horizon := supervise.NewBreaker(0, cfg).Horizon()
	bound := horizon * clock.Time(cfg.MaxRebuildAttempts+2)
	start := clk.Now()
	for {
		fs := e.FaultStats()
		if fs.DownShards == 0 && fs.HalfOpenShards == 0 {
			break
		}
		if clk.Now()-start > bound {
			panic(fmt.Sprintf("experiments: recovery did not converge within %d ticks (bound %d): %+v",
				clk.Now()-start, bound, fs))
		}
		for i := 0; i < opsPerTick; i++ {
			driveOp()
		}
		clk.Advance(1)
	}
	converge := clk.Now() - start

	fs := e.FaultStats()
	if got := uint64(delivered) + uint64(e.Len()) + fs.LostEntries; got != uint64(accepted) {
		panic(fmt.Sprintf("experiments: recovery conservation violated at base=%d: accepted %d != delivered %d + queued %d + lost %d",
			base, accepted, delivered, e.Len(), fs.LostEntries))
	}
	if err := e.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("experiments: recovery invariants at base=%d: %v", base, err))
	}
	meanMTTR := "-"
	if fs.Recoveries > 0 {
		meanMTTR = fmt.Sprintf("%.0f", float64(fs.MTTRTotal)/float64(fs.Recoveries))
	}
	return []string{
		"storm", fmt.Sprintf("base=%d max=%d", base, 8*base),
		fmt.Sprintf("%d", fs.Quarantines), fmt.Sprintf("%d", fs.Recoveries),
		fmt.Sprintf("%d", fs.LostEntries),
		meanMTTR, fmt.Sprintf("%d", fs.MTTRMax),
		fmt.Sprintf("%d", converge),
		"-", "-", "-", "-",
	}
}

// recoveryOverloadRow measures graduated overload control at one offered
// load, including the no-flapping probe.
func recoveryOverloadRow(load float64) []string {
	const (
		capacity = 64
		arrivals = 40000
	)
	prog := &sched.Program{
		Name:  "static-priority",
		Model: sched.OutputTriggered,
		PreEnqueue: func(s *sched.Scheduler, now clock.Time, f *sched.Flow) {
			f.Rank = f.Priority
			f.SendTime = clock.Always
		},
	}
	flows := int(load * capacity)
	s := sched.NewOn(prog, backend.NewCoreList(capacity), 10)
	s.Strict = false
	s.Overload = supervise.NewController(capacity, supervise.Watermarks{})
	for id := 1; id <= flows; id++ {
		s.Flow(flowq.FlowID(id)).Priority = uint64(id)
	}

	rng := rand.New(rand.NewSource(int64(flows)*37 + 5))
	now := clock.Time(0)
	var delivered, premium, premiumArrived uint64
	deliver := func(p flowq.Packet, ok bool) {
		if !ok {
			return
		}
		delivered++
		if uint64(p.Flow) <= capacity {
			premium++
		}
	}
	for i := 0; i < arrivals; i++ {
		now++
		id := flowq.FlowID(rng.Intn(flows) + 1)
		if uint64(id) <= capacity {
			premiumArrived++
		}
		s.OnArrival(now, flowq.Packet{Flow: id, Size: 1500, Arrival: now})
		if i%2 == 1 {
			now++
			deliver(s.NextPacket(now))
		}
	}
	// The no-flapping probe runs at the final (peak-load) occupancy,
	// BEFORE draining: ≥100 consecutive evaluations at constant load must
	// hold the level steady.
	settleLvl := s.Overload.Evaluate(s.List.Len())
	flapBase := s.Overload.Stats().Transitions
	for i := 0; i < 100; i++ {
		if got := s.Overload.Evaluate(s.List.Len()); got != settleLvl {
			break
		}
	}
	flaps := s.Overload.Stats().Transitions - flapBase
	// Snapshot controller stats at peak load: draining re-enqueues flows,
	// which re-evaluates the ladder at falling occupancy and would report
	// the post-drain (unloaded) level instead of the loaded one.
	cs := s.Overload.Stats()
	for {
		now++
		p, ok := s.NextPacket(now)
		if !ok {
			break
		}
		deliver(p, ok)
	}

	fs := s.FaultStats()
	if got := delivered + fs.DroppedPackets; got != arrivals {
		panic(fmt.Sprintf("experiments: recovery overload conservation violated at load %.1f: %d delivered + %d dropped != %d arrived (last fault %v)",
			load, delivered, fs.DroppedPackets, arrivals, s.LastFault()))
	}
	premiumPct := "n/a"
	if premiumArrived > 0 {
		// Premium vs aggregate delivery fraction: rank-aware push-out holds
		// the best-priority flows above the fair share as load grows.
		premiumPct = fmt.Sprintf("%.1f%% (all %.1f%%)",
			100*float64(premium)/float64(premiumArrived),
			100*float64(delivered)/float64(arrivals))
	}
	return []string{
		"overload", fmt.Sprintf("load=%.1fx lvl=%v", load, cs.Level),
		"-", "-", "-", "-", "-", "-",
		premiumPct,
		fmt.Sprintf("%d", cs.Transitions), fmt.Sprintf("%d", cs.Sheds),
		fmt.Sprintf("%d", flaps),
	}
}
