package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/hwmodel"
)

// sweepSizes are the scheduler sizes of the Fig 8-10 x-axis: 1K up to the
// paper's 30K operating point, plus 32K to show headroom.
var sweepSizes = []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 30000, 1 << 15}

func sizeLabel(n int) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

// Fig8 reproduces the logic-consumption scaling study: percent of the
// Stratix V's 234K ALMs consumed by PIEO vs PIFO as the scheduler grows.
func Fig8() *Table {
	dev := hwmodel.StratixV
	var rows [][]string
	for _, n := range sweepSizes {
		pieo := hwmodel.PIEOResources(hwmodel.PIEOGeometry(n))
		pifo := hwmodel.PIFOResources(n)
		pifoCell := fmt.Sprintf("%.1f%%", pifo.ALMPercent(dev))
		if !pifo.FitsOn(dev) {
			pifoCell += " (does not fit)"
		}
		rows = append(rows, []string{
			sizeLabel(n),
			fmt.Sprintf("%.1f%%", pieo.ALMPercent(dev)),
			pifoCell,
			fmt.Sprintf("%d", pieo.Comparators16),
			fmt.Sprintf("%d", pifo.Comparators16),
		})
	}
	return &Table{
		ID:      "fig8",
		Title:   "Percent of logic modules (ALMs) consumed, out of 234K (Fig 8)",
		Columns: []string{"size", "PIEO ALMs", "PIFO ALMs", "PIEO comparators", "PIFO comparators"},
		Rows:    rows,
		Notes: []string{
			"PIFO calibrated to the paper's measured 64% at 1K; it cannot fit 2K or more",
			"PIEO grows as sqrt(N) and fits 30K+ elements easily",
		},
	}
}

// Fig9 reproduces the SRAM-consumption study: percent of the device's
// 6.5 MB consumed by the PIEO ordered list (PIFO stores nothing in SRAM).
func Fig9() *Table {
	dev := hwmodel.StratixV
	var rows [][]string
	for _, n := range sweepSizes {
		g := hwmodel.PIEOGeometry(n)
		r := hwmodel.PIEOResources(g)
		rows = append(rows, []string{
			sizeLabel(n),
			fmt.Sprintf("%.2f%%", r.SRAMPercent(dev)),
			fmt.Sprintf("%.2f Mbit", float64(r.SRAMBits)/1e6),
			fmt.Sprintf("%d", r.SRAMBlocks),
			fmt.Sprintf("%dx%d", g.NumSublists, g.SublistSize),
		})
	}
	return &Table{
		ID:      "fig9",
		Title:   "Percent of SRAM consumed, out of 6.5 MB (Fig 9)",
		Columns: []string{"size", "SRAM used", "SRAM bits", "M20K blocks", "geometry"},
		Rows:    rows,
		Notes: []string{
			"the 2x overhead of Invariant 1 is included; total stays modest even at 30K",
		},
	}
}

// Fig10 reproduces the clock-rate study: synthesized clock rate of the
// scheduler circuit vs size, for PIEO and the PIFO baseline.
func Fig10() *Table {
	var rows [][]string
	for _, n := range sweepSizes {
		g := hwmodel.PIEOGeometry(n)
		pieoF := hwmodel.PIEOClockMHz(g)
		pifoCell := fmt.Sprintf("%.0f MHz", hwmodel.PIFOClockMHz(n))
		if !hwmodel.PIFOResources(n).FitsOn(hwmodel.StratixV) {
			pifoCell += " (does not fit)"
		}
		rows = append(rows, []string{
			sizeLabel(n),
			fmt.Sprintf("%.0f MHz", pieoF),
			pifoCell,
			fmt.Sprintf("%.0f ns", hwmodel.NsPerOp(pieoF, hwmodel.CyclesPerOp)),
		})
	}
	return &Table{
		ID:      "fig10",
		Title:   "Clock rates achieved by the scheduler circuit (Fig 10)",
		Columns: []string{"size", "PIEO clock", "PIFO clock", "PIEO ns/op (4 cycles)"},
		Rows:    rows,
		Notes: []string{
			"calibrated to the paper's synthesis points: PIFO 57 MHz @ 1K, PIEO ~80 MHz @ 30K",
			"at 80 MHz one primitive op takes 50 ns < the 120 ns MTU budget at 100 Gbps",
		},
	}
}

// SchedulingRate reproduces the §6.2 scheduling-rate discussion: modeled
// hardware ns/op at each size (plus the 1 GHz ASIC point) alongside the
// measured software ns/op of this functional model, for context.
func SchedulingRate() *Table {
	var rows [][]string
	for _, n := range []int{1 << 10, 1 << 13, 30000} {
		g := hwmodel.PIEOGeometry(n)
		f := hwmodel.PIEOClockMHz(g)
		goNs := measureGoNsPerOp(n, 200_000)
		rows = append(rows, []string{
			sizeLabel(n),
			fmt.Sprintf("%.0f MHz", f),
			fmt.Sprintf("%.1f ns", hwmodel.NsPerOp(f, hwmodel.CyclesPerOp)),
			fmt.Sprintf("%.1f ns", hwmodel.NsPerOp(hwmodel.ASICClockMHz, hwmodel.CyclesPerOp)),
			fmt.Sprintf("%.0f ns", goNs),
		})
	}
	return &Table{
		ID:      "rate",
		Title:   "Scheduling decision rate (§6.2)",
		Columns: []string{"size", "FPGA clock", "FPGA ns/op", "ASIC ns/op", "Go model ns/op (measured)"},
		Rows:    rows,
		Notes: []string{
			"hardware numbers follow the 4-cycle datapath; the Go column measures this repo's functional model",
			"MTU at 100 Gbps requires one decision every 120 ns",
		},
	}
}

// measureGoNsPerOp times enqueue+dequeue pairs on a warm list of size n.
func measureGoNsPerOp(n, ops int) float64 {
	l := core.New(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n/2; i++ {
		if err := l.Enqueue(core.Entry{ID: uint32(i), Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always}); err != nil {
			panic(err)
		}
	}
	nextID := uint32(n)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			nextID++
			_ = l.Enqueue(core.Entry{ID: nextID, Rank: uint64(rng.Intn(1 << 16)), SendTime: clock.Always})
		} else {
			l.Dequeue(0)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// Scalability reproduces the headline claim: the largest scheduler each
// design fits on the paper's device, and the resulting ratio ("over 30x
// more scalable").
func Scalability() *Table {
	dev := hwmodel.StratixV
	pifoMax := hwmodel.MaxPIFOFit(dev)
	pieoMax := hwmodel.MaxPIEOFit(dev)
	return &Table{
		ID:      "scale",
		Title:   "Maximum scheduler size fitting the Stratix V (headline)",
		Columns: []string{"design", "max elements", "binding constraint"},
		Rows: [][]string{
			{"PIFO", fmt.Sprintf("%d", pifoMax), "ALMs (linear logic growth)"},
			{"PIEO", fmt.Sprintf("%d", pieoMax), "SRAM (list storage, 2x overhead)"},
			{"ratio", fmt.Sprintf("%.0fx", float64(pieoMax)/float64(pifoMax)), "paper claims >30x; demonstrated 30K vs 1K"},
		},
		Notes: []string{
			"the paper demonstrates 30K vs 1K on its FPGA (30x); the model extrapolates to the SRAM limit",
		},
	}
}
