// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.3 Fig 2, §6.1 Fig 8–9, §6.2 Fig 10 and the headline
// numbers, §6.3 Fig 11–12), plus the O(N) PIFO-deviation claim and the
// design ablations called out in DESIGN.md. Each experiment returns a
// Table whose rows are the series the paper plots; cmd/pieobench prints
// them and bench_test.go reports their headline values as benchmark
// metrics.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one reproduced figure or table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as RFC-4180-style CSV (header row first),
// for piping into plotting tools.
func (t *Table) FprintCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Runner produces a Table.
type Runner func() *Table

// registry maps experiment ids to their runners.
var registry = map[string]Runner{
	"fig2":             Fig2,
	"fig8":             Fig8,
	"fig9":             Fig9,
	"fig10":            Fig10,
	"rate":             SchedulingRate,
	"scale":            Scalability,
	"fig11":            Fig11,
	"fig12":            Fig12,
	"deviation":        Deviation,
	"ablation":         Ablation,
	"pipeline":         Pipeline,
	"trigger":          TriggerModels,
	"devices":          Devices,
	"approx":           Approx,
	"pacing":           PacingScale,
	"pacing-precision": PacingPrecision,
	"wfi":              WFI,
	"hier3":            Hier3,
	"hierscale":        HierScale,
	"hotpath":          Hotpath,
	"overload":         Overload,
	"combining":        Combining,
	"scaling":          Scaling,
	"cffs":             CFFS,
	"qdev":             QuantDeviation,
	"recovery":         Recovery,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(), nil
}
