package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID:      "sample",
		Title:   "Sample",
		Columns: []string{"a", "b"},
		Rows: [][]string{
			{"1", "x,y"},
			{"2", `quote "inside"`},
		},
		Notes: []string{"a note"},
	}
}

func TestFprintAligned(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== sample: Sample ==", "a  b", "# a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFprintCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().FprintCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Fatalf("comma row = %q", lines[1])
	}
	if lines[2] != `2,"quote ""inside"""` {
		t.Fatalf("quote row = %q", lines[2])
	}
}
