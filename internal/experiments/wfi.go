package experiments

import (
	"fmt"

	"pieo/internal/algos"
	"pieo/internal/flowq"
	"pieo/internal/sched"
)

// WFI reproduces the reason WF²Q(+) exists — and hence the reason PIEO
// must support eligibility filtering at all (§2.3: "WF²Q is the most
// accurate packet fair queuing algorithm known"). Plain WFQ can serve a
// high-weight flow arbitrarily far AHEAD of its fluid-model share at the
// start of a busy period (its first packets all carry the smallest
// finish times), producing long same-flow bursts; WF²Q+'s eligibility
// gate (start <= virtual time) caps the lead at one packet. We measure
// the longest same-flow burst and the worst service lead (bytes served
// beyond the fluid share) for a weight-10 flow among ten weight-1 flows.
func WFI() *Table {
	type result struct {
		burst   int
		leadPkt float64
	}
	measure := func(prog *sched.Program) result {
		const (
			heavy   = flowq.FlowID(0)
			nLight  = 10
			pktSize = 1500
			packets = 40 // per flow, all backlogged at t=0
			weightH = 10
		)
		s := sched.New(prog, nLight+2, 40)
		s.SetWeight(heavy, weightH)
		var seq uint64
		for f := flowq.FlowID(0); f <= nLight; f++ {
			for k := 0; k < packets; k++ {
				seq++
				s.OnArrival(0, flowq.Packet{Flow: f, Size: pktSize, Seq: seq})
			}
		}
		share := float64(weightH) / float64(weightH+nLight)
		served := 0.0  // heavy-flow bytes
		total := 0.0   // all bytes
		maxLead := 0.0 // heavy bytes beyond fluid share
		burst, cur := 0, 0
		last := flowq.FlowID(999)
		for {
			p, ok := s.NextPacket(0)
			if !ok {
				break
			}
			total += float64(p.Size)
			if p.Flow == heavy {
				served += float64(p.Size)
				if p.Flow == last {
					cur++
				} else {
					cur = 1
				}
				if cur > burst {
					burst = cur
				}
			} else {
				cur = 0
			}
			last = p.Flow
			if lead := served - share*total; lead > maxLead {
				maxLead = lead
			}
		}
		return result{burst: burst, leadPkt: maxLead / pktSize}
	}

	wfq := measure(algos.WFQ())
	wf2q := measure(algos.WF2Q())
	return &Table{
		ID:      "wfi",
		Title:   "Worst-case fairness: weight-10 flow among ten weight-1 flows (why eligibility matters)",
		Columns: []string{"algorithm", "longest same-flow burst", "max lead over fluid share (pkts)"},
		Rows: [][]string{
			{"WFQ (PIFO-expressible)", fmt.Sprintf("%d", wfq.burst), fmt.Sprintf("%.1f", wfq.leadPkt)},
			{"WF2Q+ (needs PIEO)", fmt.Sprintf("%d", wf2q.burst), fmt.Sprintf("%.1f", wf2q.leadPkt)},
		},
		Notes: []string{
			"WFQ lets the heavy flow burst far ahead of its fluid-model service; WF2Q+'s eligibility gate caps the lead at ~1 packet",
		},
	}
}
