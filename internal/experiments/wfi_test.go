package experiments

import "testing"

func TestWFIWF2QLeadBounded(t *testing.T) {
	tab := WFI()
	wfqLead := parseLeadingFloat(t, tab.Rows[0][2])
	wf2qLead := parseLeadingFloat(t, tab.Rows[1][2])
	// The WF2Q worst-case fairness theorem: lead bounded by one packet.
	if wf2qLead > 1.0+1e-9 {
		t.Fatalf("WF2Q+ lead = %v pkts, theorem bounds it at 1", wf2qLead)
	}
	if wfqLead <= wf2qLead {
		t.Fatalf("WFQ lead %v <= WF2Q+ lead %v; the separation is the point", wfqLead, wf2qLead)
	}
	wfqBurst := parseLeadingFloat(t, tab.Rows[0][1])
	wf2qBurst := parseLeadingFloat(t, tab.Rows[1][1])
	if wfqBurst <= wf2qBurst {
		t.Fatalf("WFQ burst %v <= WF2Q+ burst %v", wfqBurst, wf2qBurst)
	}
}
