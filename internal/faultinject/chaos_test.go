package faultinject_test

import (
	"fmt"
	"sync"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	"pieo/internal/shard"
)

// lcg is a tiny deterministic generator so chaos workloads replay
// bit-for-bit from their seed.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// recoverAll drives the engine's rebuild machinery until every shard is
// up. With the injector disarmed each forced attempt must succeed, so a
// handful of rounds is a hard bound, not a retry loop.
func recoverAll(t *testing.T, e *shard.Engine) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if e.Recover() == 0 {
			return
		}
	}
	t.Fatalf("shards still down after forced recovery: %d (events: %v)",
		e.Recover(), e.FaultEvents())
}

// auditConservation checks the fundamental chaos invariant: every
// accepted entry is either delivered, still queued, or declared lost —
// nothing disappears silently, nothing is delivered twice.
func auditConservation(t *testing.T, e *shard.Engine, accepted map[uint32]bool, delivered []core.Entry) {
	t.Helper()
	seen := make(map[uint32]bool, len(delivered))
	for _, ent := range delivered {
		if seen[ent.ID] {
			t.Fatalf("id %d delivered twice", ent.ID)
		}
		seen[ent.ID] = true
		if !accepted[ent.ID] {
			t.Fatalf("id %d delivered but never accepted", ent.ID)
		}
	}
	queued := e.Snapshot()
	for _, ent := range queued {
		if seen[ent.ID] {
			t.Fatalf("id %d both delivered and still queued", ent.ID)
		}
		if !accepted[ent.ID] {
			t.Fatalf("id %d queued but never accepted", ent.ID)
		}
	}
	lost := e.FaultStats().LostEntries
	got := uint64(len(delivered)) + uint64(len(queued)) + lost
	if got != uint64(len(accepted)) {
		t.Fatalf("conservation violated: accepted %d, delivered %d + queued %d + declared lost %d = %d",
			len(accepted), len(delivered), len(queued), lost, got)
	}
	// The combining layer must not hide elements from the ledger: at audit
	// time (quiescent) every ingress ring must be fully drained — an
	// element parked in a ring would be invisible to Snapshot and silently
	// break the accounting above. CheckInvariants validates the rings'
	// turn-sequence state; the counters must also be self-consistent
	// (every combined execution was a published ring operation).
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("audit-time invariants (ring quiescence): %v", err)
	}
	if cs := e.CombiningStats(); cs.CombinedOps > cs.RingOps {
		t.Fatalf("combining counters inconsistent: %d combined > %d published", cs.CombinedOps, cs.RingOps)
	}
}

// drainAll empties the engine, asserting global (rank, FIFO) dequeue
// order on the way out.
func drainAll(t *testing.T, e *shard.Engine) []core.Entry {
	t.Helper()
	var out []core.Entry
	lastRank := uint64(0)
	for {
		ent, ok := e.Dequeue(clock.Time(1 << 60))
		if !ok {
			break
		}
		if ent.Rank < lastRank {
			t.Fatalf("post-recovery drain out of order: rank %d after %d", ent.Rank, lastRank)
		}
		lastRank = ent.Rank
		out = append(out, ent)
	}
	if e.Len() != 0 {
		t.Fatalf("engine reports %d entries after full drain", e.Len())
	}
	return out
}

// TestEngineQuarantineDeterministic storms a sharded engine with induced
// panics on a fixed schedule, single-threaded, and requires exact
// conservation, full shard recovery, clean invariants, and ordered
// post-recovery drain. Every run is bit-for-bit reproducible from the
// plan seed.
func TestEngineQuarantineDeterministic(t *testing.T) {
	for _, every := range []uint64{23, 97, 401} {
		t.Run(fmt.Sprintf("panicEvery=%d", every), func(t *testing.T) {
			inj := faultinject.NewInjector(faultinject.Plan{Seed: 42, PanicEvery: every})
			e := shard.New(4096, 8)
			e.SetFaultHook(inj.ShardHook())

			rng := lcg(7)
			accepted := make(map[uint32]bool)
			var delivered []core.Entry
			nextID := uint32(1)
			for op := 0; op < 20000; op++ {
				switch rng.next() % 4 {
				case 0, 1: // enqueue a fresh ID
					id := nextID
					nextID++
					ent := core.Entry{ID: id, Rank: rng.next() % 1000, SendTime: clock.Time(rng.next() % 64)}
					if err := e.Enqueue(ent); err == nil {
						accepted[id] = true
					}
				case 2: // dequeue
					if ent, ok := e.Dequeue(clock.Time(rng.next() % 128)); ok {
						delivered = append(delivered, ent)
					}
				case 3: // point-dequeue a recent ID
					id := uint32(rng.next()%uint64(nextID)) + 1
					if ent, ok := e.DequeueFlow(id); ok {
						delivered = append(delivered, ent)
					}
				}
			}
			if e.FaultStats().Quarantines == 0 {
				t.Fatalf("fault schedule never fired (panics induced: %d)", inj.Stats().Panics)
			}

			inj.Disarm()
			recoverAll(t, e)
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("post-recovery invariants: %v", err)
			}
			auditConservation(t, e, accepted, delivered)
			drained := drainAll(t, e)
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("post-drain invariants: %v", err)
			}
			total := len(delivered) + len(drained)
			want := len(accepted) - int(e.FaultStats().LostEntries)
			if total != want {
				t.Fatalf("drained+delivered = %d, want %d", total, want)
			}
		})
	}
}

// TestEngineChaosConcurrent is the -race storm: concurrent producers,
// consumers, and point-dequeuers against an engine whose shard sections
// panic and stall on schedule. After the storm the engine must recover
// every shard, satisfy all structural invariants, and account for every
// accepted entry.
func TestEngineChaosConcurrent(t *testing.T) {
	runEngineChaosConcurrent(t, false, "core")
}

// TestEngineChaosConcurrentForceRing repeats the storm with every
// combining-eligible operation forced through the ingress rings, so the
// full ring protocol — publish, combined execution, quarantine flush,
// producer-side cancellation against a downed shard — is exercised under
// -race with panics firing on schedule.
func TestEngineChaosConcurrentForceRing(t *testing.T) {
	runEngineChaosConcurrent(t, true, "core")
}

// TestEngineChaosConcurrentCFFS repeats the storm with cFFS bucketed
// shards, proving that quarantine, salvage via SnapshotWithSeq/EnqueueSeq
// replay, and the rings are all backend-generic: the bitmap-hierarchy
// backend must survive the same schedule of induced panics as core.
func TestEngineChaosConcurrentCFFS(t *testing.T) {
	runEngineChaosConcurrent(t, false, "cffs")
}

func runEngineChaosConcurrent(t *testing.T, forceRing bool, backendName string) {
	const (
		producers  = 4
		consumers  = 2
		perWorker  = 4000
		capacityN  = 64 * 1024
		shardCount = 8
	)
	inj := faultinject.NewInjector(faultinject.Plan{Seed: 99, PanicEvery: 211, LatencyEvery: 37, LatencyNs: 200})
	e, err := shard.NewNamed(capacityN, shardCount, backendName)
	if err != nil {
		t.Fatalf("construct %q engine: %v", backendName, err)
	}
	e.SetForceRing(forceRing)
	e.SetFaultHook(inj.ShardHook())

	acceptedCh := make([][]uint32, producers)
	deliveredCh := make([][]core.Entry, consumers+1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := lcg(1000 + p)
			var mine []uint32
			for i := 0; i < perWorker; i++ {
				id := uint32(p*perWorker + i + 1)
				ent := core.Entry{ID: id, Rank: rng.next() % 5000, SendTime: clock.Time(rng.next() % 16)}
				if err := e.Enqueue(ent); err == nil {
					mine = append(mine, id)
				}
			}
			acceptedCh[p] = mine
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := lcg(2000 + c)
			var mine []core.Entry
			for i := 0; i < perWorker; i++ {
				if ent, ok := e.Dequeue(clock.Time(rng.next() % 32)); ok {
					mine = append(mine, ent)
				}
			}
			deliveredCh[c] = mine
		}(c)
	}
	wg.Add(1)
	go func() { // point-dequeuer: exercises the degraded wide-lookup path
		defer wg.Done()
		rng := lcg(3000)
		var mine []core.Entry
		for i := 0; i < perWorker; i++ {
			id := uint32(rng.next()%(producers*perWorker)) + 1
			if ent, ok := e.DequeueFlow(id); ok {
				mine = append(mine, ent)
			}
		}
		deliveredCh[consumers] = mine
	}()
	wg.Wait()

	inj.Disarm()
	recoverAll(t, e)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}

	accepted := make(map[uint32]bool)
	for _, ids := range acceptedCh {
		for _, id := range ids {
			accepted[id] = true
		}
	}
	var delivered []core.Entry
	for _, ents := range deliveredCh {
		delivered = append(delivered, ents...)
	}
	auditConservation(t, e, accepted, delivered)
	drainAll(t, e)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	t.Logf("storm: %d accepted, %d delivered mid-storm, faults=%+v, injector=%+v",
		len(accepted), len(delivered), e.FaultStats(), inj.Stats())
}

// TestEngineChaosRangedConcurrent is the banded -race storm: the access
// pattern of the partitioned hierarchy (every worker confined to a
// disjoint ID band, every extraction a DequeueRange over one band)
// driven through scheduled shard panics, quarantine, and rebuild. The
// audit is PER LOGICAL BAND, not whole-engine: no ranged dequeue may
// leak another band's element, and each band's accepted set must be
// fully accounted as delivered + still queued + declared lost.
func TestEngineChaosRangedConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name      string
		backend   string
		forceRing bool
	}{
		{"core", "core", false},
		{"core-ring", "core", true},
		{"cffs", "cffs", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runEngineChaosRanged(t, tc.backend, tc.forceRing)
		})
	}
}

func runEngineChaosRanged(t *testing.T, backendName string, forceRing bool) {
	const (
		bands      = 4
		perBand    = 4000
		bandWidth  = 1 << 20 // bands far apart so leakage is unambiguous
		capacityN  = 64 * 1024
		shardCount = 8
	)
	inj := faultinject.NewInjector(faultinject.Plan{Seed: 123, PanicEvery: 173, LatencyEvery: 41, LatencyNs: 200})
	e, err := shard.NewNamed(capacityN, shardCount, backendName)
	if err != nil {
		t.Fatalf("construct %q engine: %v", backendName, err)
	}
	e.SetForceRing(forceRing)
	e.SetFaultHook(inj.ShardHook())

	bandLo := func(b int) uint32 { return uint32(b * bandWidth) }
	acceptedCh := make([][]uint32, bands)
	deliveredCh := make([][]core.Entry, bands)
	var wg sync.WaitGroup
	for b := 0; b < bands; b++ {
		wg.Add(1)
		go func(b int) { // producer: enqueues only its own band's IDs
			defer wg.Done()
			rng := lcg(5000 + b)
			var mine []uint32
			for i := 0; i < perBand; i++ {
				id := bandLo(b) + uint32(i)
				ent := core.Entry{ID: id, Rank: rng.next() % 5000, SendTime: clock.Time(rng.next() % 16)}
				if err := e.Enqueue(ent); err == nil {
					mine = append(mine, id)
				}
			}
			acceptedCh[b] = mine
		}(b)
		wg.Add(1)
		go func(b int) { // ranged consumer: extracts only from its band
			defer wg.Done()
			rng := lcg(6000 + b)
			lo, hi := bandLo(b), bandLo(b)+bandWidth-1
			var mine []core.Entry
			for i := 0; i < perBand; i++ {
				if ent, ok := e.DequeueRange(clock.Time(rng.next()%32), lo, hi); ok {
					if ent.ID < lo || ent.ID > hi {
						t.Errorf("band %d ranged dequeue leaked id %d", b, ent.ID)
						return
					}
					mine = append(mine, ent)
				}
			}
			deliveredCh[b] = mine
		}(b)
	}
	wg.Wait()

	inj.Disarm()
	recoverAll(t, e)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}

	// Whole-engine conservation first (the established audit)...
	accepted := make(map[uint32]bool)
	for _, ids := range acceptedCh {
		for _, id := range ids {
			accepted[id] = true
		}
	}
	var delivered []core.Entry
	for _, ents := range deliveredCh {
		delivered = append(delivered, ents...)
	}
	auditConservation(t, e, accepted, delivered)

	// ...then the per-band ledger: ranged drains must empty the engine
	// band by band (every element belongs to exactly one band), each in
	// rank order, and each band's accepted count must decompose into
	// delivered + drained + its share of the declared losses.
	lostTotal := int(e.FaultStats().LostEntries)
	lostSum := 0
	for b := 0; b < bands; b++ {
		lo, hi := bandLo(b), bandLo(b)+bandWidth-1
		drained := 0
		lastRank := uint64(0)
		for {
			ent, ok := e.DequeueRange(clock.Time(1<<60), lo, hi)
			if !ok {
				break
			}
			if ent.ID < lo || ent.ID > hi {
				t.Fatalf("band %d drain leaked id %d", b, ent.ID)
			}
			if ent.Rank < lastRank {
				t.Fatalf("band %d drain out of rank order: %d after %d", b, ent.Rank, lastRank)
			}
			lastRank = ent.Rank
			drained++
		}
		lost := len(acceptedCh[b]) - len(deliveredCh[b]) - drained
		if lost < 0 {
			t.Fatalf("band %d over-delivered: accepted %d, delivered %d, drained %d",
				b, len(acceptedCh[b]), len(deliveredCh[b]), drained)
		}
		lostSum += lost
	}
	if e.Len() != 0 {
		t.Fatalf("engine holds %d entries outside every band", e.Len())
	}
	if lostSum != lostTotal {
		t.Fatalf("per-band losses sum to %d, engine declared %d", lostSum, lostTotal)
	}
	t.Logf("ranged storm %s: %d accepted, %d delivered mid-storm, lost %d, faults=%+v",
		backendName, len(accepted), len(delivered), lostTotal, e.FaultStats())
}

// TestWrapperDeclaredDrops verifies the backend wrapper's bookkeeping:
// every injected enqueue failure is recorded as a declared drop, and the
// inner backend conserves everything else.
func TestWrapperDeclaredDrops(t *testing.T) {
	inj := faultinject.NewInjector(faultinject.Plan{Seed: 5, ErrorEvery: 7, SqueezeEvery: 13})
	inner := shard.New(1024, 4)
	b := faultinject.Wrap(inner, inj)

	rng := lcg(11)
	accepted := 0
	injectedErrs := 0
	for id := uint32(1); id <= 500; id++ {
		err := b.Enqueue(core.Entry{ID: id, Rank: rng.next() % 100, SendTime: 0})
		switch err {
		case nil:
			accepted++
		case faultinject.ErrInjected, core.ErrFull:
			injectedErrs++
		default:
			t.Fatalf("unexpected enqueue error: %v", err)
		}
	}
	drops := b.DeclaredDrops()
	if len(drops) != injectedErrs {
		t.Fatalf("declared drops %d, observed injected failures %d", len(drops), injectedErrs)
	}
	if accepted+injectedErrs != 500 {
		t.Fatalf("accepted %d + dropped %d != 500", accepted, injectedErrs)
	}
	if b.Len() != accepted {
		t.Fatalf("inner backend holds %d, accepted %d", b.Len(), accepted)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if inj.Stats().Injected == 0 || inj.Stats().Squeezes == 0 {
		t.Fatalf("expected both fault classes to fire: %+v", inj.Stats())
	}
}
