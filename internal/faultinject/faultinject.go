// Package faultinject is a deterministic fault-injection harness for
// PIEO backends and the sharded engine. It exists to make the failure
// model of DESIGN.md §8 testable: every fault it produces — injected
// errors, capacity squeezes, induced panics, artificial latency — fires
// on a programmable operation-count schedule derived from a seed, so a
// chaos run that finds a bug replays bit-for-bit from its Plan.
//
// Two integration points:
//
//   - Wrap adapts any backend.Backend, intercepting operations before
//     they reach the real implementation. Injected enqueue failures are
//     recorded as DECLARED DROPS (the arrival never entered the list),
//     which is what lets a conservation auditor reconcile exactly:
//     accepted = dequeued + still-queued, with every shortfall accounted
//     to either DeclaredDrops here or declared losses in the layer under
//     test.
//   - Injector.ShardHook plugs into shard.Engine.SetFaultHook and panics
//     on schedule inside shard-list critical sections, driving the
//     quarantine/salvage/rebuild machinery of internal/shard.
//
// Determinism: the schedule is a function of (Seed, operation ordinal)
// only. Under a single-threaded driver that makes whole runs replayable;
// under a concurrent storm the ordinal interleaving varies but the fault
// DENSITY is preserved, which is what the -race chaos suite needs.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// ErrInjected is the typed error injected operations fail with. It is
// deliberately distinct from every contract error (core.ErrFull,
// core.ErrDuplicate, core.ErrShardDown) so layers under test can prove
// they pass unknown errors through rather than misclassifying them.
var ErrInjected = errors.New("faultinject: injected fault")

// InducedPanic is the panic payload induced faults throw; the quarantine
// fault log stringifies it, so tests can assert provenance.
type InducedPanic struct {
	Op string
	N  uint64 // operation ordinal that fired
}

func (p InducedPanic) String() string {
	return fmt.Sprintf("faultinject: induced panic at op %d (%s)", p.N, p.Op)
}

// Plan is a deterministic fault schedule. Zero values disable each fault
// class; "every N" means operation ordinals where (ordinal+offset)%N == 0,
// with the offset derived from Seed so two identically-shaped plans with
// different seeds fire on different ops.
type Plan struct {
	// Seed phase-shifts every schedule.
	Seed uint64
	// ErrorEvery injects ErrInjected on every Nth intercepted mutation.
	ErrorEvery uint64
	// PanicEvery induces a panic on every Nth intercepted operation
	// (both wrapper operations and shard-hook invocations).
	PanicEvery uint64
	// SqueezeEvery starts a capacity squeeze on every Nth enqueue: for
	// the next SqueezeLen enqueues the wrapper reports core.ErrFull
	// regardless of actual occupancy, emulating transient overload.
	SqueezeEvery uint64
	// SqueezeLen is the squeeze duration in enqueues (default 1).
	SqueezeLen uint64
	// LatencyEvery stalls every Nth operation by LatencyNs to widen race
	// windows under the concurrent chaos suite.
	LatencyEvery uint64
	// LatencyNs is the stall length in nanoseconds (default 1000).
	LatencyNs int64
}

// Injector evaluates a Plan against monotonically increasing operation
// ordinals. It is safe for concurrent use.
type Injector struct {
	plan Plan
	n    atomic.Uint64 // operation ordinal
	sqN  atomic.Uint64 // enqueue ordinal, drives squeeze windows

	injected atomic.Uint64 // errors injected
	panics   atomic.Uint64 // panics induced
	squeezes atomic.Uint64 // enqueues squeezed
	stalls   atomic.Uint64 // latency stalls

	armed atomic.Bool
}

// NewInjector builds an Injector for plan with defaults applied.
func NewInjector(plan Plan) *Injector {
	if plan.SqueezeLen == 0 {
		plan.SqueezeLen = 1
	}
	if plan.LatencyNs == 0 {
		plan.LatencyNs = 1000
	}
	inj := &Injector{plan: plan}
	inj.armed.Store(true)
	return inj
}

// Disarm stops all fault production (counters survive). Chaos tests call
// it between the storm phase and the recovery/audit phase.
func (inj *Injector) Disarm() { inj.armed.Store(false) }

// Arm re-enables fault production.
func (inj *Injector) Arm() { inj.armed.Store(true) }

// Stats reports how many faults of each class have fired.
type Stats struct {
	Injected uint64 // ErrInjected errors
	Panics   uint64 // induced panics
	Squeezes uint64 // squeezed enqueues
	Stalls   uint64 // latency stalls
	Ops      uint64 // operations observed
}

// Stats returns the injector's fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Injected: inj.injected.Load(),
		Panics:   inj.panics.Load(),
		Squeezes: inj.squeezes.Load(),
		Stalls:   inj.stalls.Load(),
		Ops:      inj.n.Load(),
	}
}

// fires reports whether a schedule with period every fires at ordinal n,
// phase-shifted by the seed.
func (inj *Injector) fires(n, every uint64) bool {
	if every == 0 {
		return false
	}
	return (n+inj.plan.Seed)%every == 0
}

// step advances the operation ordinal and applies the latency and panic
// schedules. op labels the operation for the panic payload.
func (inj *Injector) step(op string) uint64 {
	n := inj.n.Add(1)
	if !inj.armed.Load() {
		return n
	}
	if inj.fires(n, inj.plan.LatencyEvery) {
		inj.stalls.Add(1)
		time.Sleep(time.Duration(inj.plan.LatencyNs) * time.Nanosecond)
	}
	if inj.fires(n, inj.plan.PanicEvery) {
		inj.panics.Add(1)
		panic(InducedPanic{Op: op, N: n})
	}
	return n
}

// errNow reports whether the error schedule fires at ordinal n.
func (inj *Injector) errNow(n uint64) bool {
	if !inj.armed.Load() || !inj.fires(n, inj.plan.ErrorEvery) {
		return false
	}
	inj.injected.Add(1)
	return true
}

// squeezeNow reports whether the enqueue at this moment falls inside a
// capacity-squeeze window.
func (inj *Injector) squeezeNow() bool {
	if !inj.armed.Load() || inj.plan.SqueezeEvery == 0 {
		return false
	}
	sq := inj.sqN.Add(1)
	phase := (sq + inj.plan.Seed) % inj.plan.SqueezeEvery
	if phase < inj.plan.SqueezeLen {
		inj.squeezes.Add(1)
		return true
	}
	return false
}

// ShardHook adapts the injector to shard.Engine.SetFaultHook: every hook
// invocation is one schedulable operation, and the panic schedule fires
// inside the shard's protected section, which is exactly where the
// quarantine machinery must catch it.
func (inj *Injector) ShardHook() func(shard int, op string) {
	return func(shard int, op string) {
		inj.step(fmt.Sprintf("shard%d/%s", shard, op))
	}
}

// faultSource is the schedule evaluation surface the Backend wrapper
// drives: a plain Injector (always-on schedule) or a Storm (scheduled
// time windows) both satisfy it.
type faultSource interface {
	step(op string) uint64
	errNow(n uint64) bool
	squeezeNow() bool
}

// Backend wraps a backend.Backend with a fault schedule (an Injector, or
// a Storm's scheduled windows via WrapStorm). Mutations pass through
// step (latency + panics); enqueues additionally face the error and
// squeeze schedules BEFORE reaching the inner backend, so every injected
// enqueue failure corresponds to an arrival that never entered the list
// — recorded as a declared drop.
type Backend struct {
	inner backend.Backend
	inj   faultSource

	mu      sync.Mutex
	dropped []uint32 // IDs of arrivals shed by injected enqueue faults
}

// Wrap builds a fault-injecting view of inner driven by inj.
func Wrap(inner backend.Backend, inj *Injector) *Backend {
	return &Backend{inner: inner, inj: inj}
}

// Inner returns the wrapped backend (audits bypass the fault layer).
func (b *Backend) Inner() backend.Backend { return b.inner }

// DeclaredDrops returns the IDs of arrivals the fault layer shed, in
// order. The conservation audit adds these to the delivered set.
func (b *Backend) DeclaredDrops() []uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]uint32, len(b.dropped))
	copy(out, b.dropped)
	return out
}

func (b *Backend) recordDrop(id uint32) {
	b.mu.Lock()
	b.dropped = append(b.dropped, id)
	b.mu.Unlock()
}

// Enqueue implements backend.Backend with the full fault gauntlet.
func (b *Backend) Enqueue(e core.Entry) error {
	n := b.inj.step("enqueue")
	if b.inj.errNow(n) {
		b.recordDrop(e.ID)
		return ErrInjected
	}
	if b.inj.squeezeNow() {
		b.recordDrop(e.ID)
		return core.ErrFull
	}
	return b.inner.Enqueue(e)
}

// Dequeue implements backend.Backend.
func (b *Backend) Dequeue(now clock.Time) (core.Entry, bool) {
	b.inj.step("dequeue")
	return b.inner.Dequeue(now)
}

// DequeueFlow implements backend.Backend.
func (b *Backend) DequeueFlow(id uint32) (core.Entry, bool) {
	b.inj.step("dequeue_flow")
	return b.inner.DequeueFlow(id)
}

// DequeueRange implements backend.Backend.
func (b *Backend) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	b.inj.step("dequeue_range")
	return b.inner.DequeueRange(now, lo, hi)
}

// Len implements backend.Backend (never faulted: audits depend on it).
func (b *Backend) Len() int { return b.inner.Len() }

// Contains implements backend.Backend (never faulted).
func (b *Backend) Contains(id uint32) bool { return b.inner.Contains(id) }

// MinSendTime implements backend.Backend (never faulted).
func (b *Backend) MinSendTime() (clock.Time, bool) { return b.inner.MinSendTime() }

// Snapshot implements backend.Backend (never faulted).
func (b *Backend) Snapshot() []core.Entry { return b.inner.Snapshot() }

// Stats implements backend.Backend.
func (b *Backend) Stats() backend.Stats { return b.inner.Stats() }

// CheckInvariants validates the inner backend, bypassing fault schedules
// — the auditor must see the truth.
func (b *Backend) CheckInvariants() error { return backend.CheckInvariants(b.inner) }

// UpdateRank implements backend.RankUpdater when the inner backend does;
// the schedule can panic or stall it but a rank update is never turned
// into an error (there is no arrival to shed).
func (b *Backend) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	b.inj.step("update_rank")
	if u, ok := b.inner.(backend.RankUpdater); ok {
		return u.UpdateRank(id, rank, sendTime)
	}
	ok, _ := backend.UpdateRank(b.inner, id, rank, sendTime)
	return ok
}

// PeekMax implements backend.Evictor when the inner backend does.
func (b *Backend) PeekMax() (core.Entry, bool) {
	if ev, ok := b.inner.(backend.Evictor); ok {
		return ev.PeekMax()
	}
	return core.Entry{}, false
}

// EvictMax implements backend.Evictor when the inner backend does.
func (b *Backend) EvictMax() (core.Entry, bool) {
	if ev, ok := b.inner.(backend.Evictor); ok {
		return ev.EvictMax()
	}
	return core.Entry{}, false
}

var (
	_ backend.Backend          = (*Backend)(nil)
	_ backend.RankUpdater      = (*Backend)(nil)
	_ backend.Evictor          = (*Backend)(nil)
	_ backend.InvariantChecker = (*Backend)(nil)
)
