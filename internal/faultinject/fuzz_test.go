package faultinject_test

import (
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	"pieo/internal/shard"
)

// FuzzChaosPlan fuzzes the fault schedule itself: whatever periods the
// fuzzer picks for panics, injected errors, and capacity squeezes, a
// bounded mixed workload over the sharded engine must end with every
// shard recovered, invariants intact, and exact conservation — accepted
// equals delivered plus queued plus declared lost. The corpus seeds cover
// the fault-free plan, a dense all-fault plan, and a sparse one.
func FuzzChaosPlan(f *testing.F) {
	f.Add(uint64(1), uint16(13), uint16(7), uint16(11), uint16(900))
	f.Add(uint64(42), uint16(0), uint16(0), uint16(0), uint16(500))
	f.Add(uint64(7), uint16(97), uint16(3), uint16(5), uint16(1500))
	f.Fuzz(func(t *testing.T, seed uint64, panicEvery, errEvery, squeezeEvery, opsRaw uint16) {
		ops := int(opsRaw)%2000 + 200
		// Panics go through the shard hook only: a wrapper-level panic
		// would unwind the driver, which is the strict contract, not a
		// fault the engine is supposed to absorb.
		hookInj := faultinject.NewInjector(faultinject.Plan{Seed: seed, PanicEvery: uint64(panicEvery)})
		wrapInj := faultinject.NewInjector(faultinject.Plan{
			Seed: seed ^ 0x9e3779b97f4a7c15, ErrorEvery: uint64(errEvery), SqueezeEvery: uint64(squeezeEvery),
		})
		inner := shard.New(256, 4)
		inner.SetFaultHook(hookInj.ShardHook())
		b := faultinject.Wrap(inner, wrapInj)

		rng := lcg(seed | 1)
		accepted := make(map[uint32]bool)
		var delivered []core.Entry
		nextID := uint32(1)
		for op := 0; op < ops; op++ {
			switch rng.next() % 4 {
			case 0, 1:
				id := nextID
				nextID++
				ent := core.Entry{ID: id, Rank: rng.next() % 100, SendTime: clock.Time(rng.next() % 8)}
				if err := b.Enqueue(ent); err == nil {
					accepted[id] = true
				}
			case 2:
				if ent, ok := b.Dequeue(clock.Time(rng.next() % 16)); ok {
					delivered = append(delivered, ent)
				}
			case 3:
				if ent, ok := b.DequeueFlow(uint32(rng.next()%uint64(nextID)) + 1); ok {
					delivered = append(delivered, ent)
				}
			}
		}

		hookInj.Disarm()
		wrapInj.Disarm()
		recoverAll(t, inner)
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("post-recovery invariants: %v", err)
		}
		auditConservation(t, inner, accepted, delivered)
		drainAll(t, inner)
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("post-drain invariants: %v", err)
		}
	})
}
