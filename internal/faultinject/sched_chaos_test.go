package faultinject_test

import (
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/faultinject"
	"pieo/internal/flowq"
	"pieo/internal/sched"
	"pieo/internal/shard"
)

// TestSchedulerUnderChaos drives a non-strict scheduler over a
// fault-injecting view of the sharded engine: injected enqueue errors and
// capacity squeezes hit the wrapper while induced panics hit the shard
// critical sections underneath. The scheduler must never panic, must
// count every fault it absorbs, and must conserve packets exactly —
// every arrival is eventually transmitted or appears in DroppedPackets.
func TestSchedulerUnderChaos(t *testing.T) {
	// Two injectors: the wrapper one must not carry a panic schedule
	// (wrapper panics would unwind the scheduler itself, which is the
	// strict-mode contract, not a fault to absorb); the hook one panics
	// inside shard-protected sections where quarantine catches them.
	wrapInj := faultinject.NewInjector(faultinject.Plan{Seed: 3, ErrorEvery: 41, SqueezeEvery: 59, SqueezeLen: 2})
	hookInj := faultinject.NewInjector(faultinject.Plan{Seed: 17, PanicEvery: 149})

	inner := shard.New(1024, 4)
	inner.SetFaultHook(hookInj.ShardHook())
	b := faultinject.Wrap(inner, wrapInj)

	prog := &sched.Program{Name: "chaos-fifo", Model: sched.OutputTriggered}
	s := sched.NewOn(prog, b, 10)
	s.Strict = false
	s.Admission = backend.AdmitPushOut

	const flows = 64
	rng := lcg(21)
	var arrived, transmitted uint64
	now := clock.Time(0)
	for i := 0; i < 30000; i++ {
		now++
		switch rng.next() % 3 {
		case 0, 1:
			id := flowq.FlowID(rng.next()%flows + 1)
			s.OnArrival(now, flowq.Packet{Flow: id, Size: 64, Arrival: now})
			arrived++
		case 2:
			if _, ok := s.NextPacket(now); ok {
				transmitted++
			}
		}
	}

	// Storm over: disarm, force shard recovery, then run the
	// control-plane repair sweep — a flow whose list entry was declared
	// lost by an abandoned rebuild is stalled until something reinserts
	// it, and EnqueueFlow is idempotent for flows already present.
	wrapInj.Disarm()
	hookInj.Disarm()
	recoverAll(t, inner)
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
	for id := flowq.FlowID(1); id <= flows; id++ {
		s.EnqueueFlow(now, s.Flow(id))
	}
	for {
		now++
		if _, ok := s.NextPacket(now); !ok {
			break
		}
		transmitted++
	}

	if got := s.Backlog(); got != 0 {
		t.Fatalf("backlog %d after full drain (last fault: %v)", got, s.LastFault())
	}
	fs := s.FaultStats()
	if transmitted+fs.DroppedPackets != arrived {
		t.Fatalf("conservation violated: %d arrived, %d transmitted + %d declared dropped",
			arrived, transmitted, fs.DroppedPackets)
	}
	if fs.EnqueueFailures == 0 {
		t.Fatalf("injected enqueue errors never reached the scheduler: %+v (injector %+v)", fs, wrapInj.Stats())
	}
	if fs.AdmissionRejects+fs.AdmissionTailDrops+fs.AdmissionEvictions == 0 {
		t.Fatalf("capacity squeezes never exercised admission: %+v (injector %+v)", fs, wrapInj.Stats())
	}
	if inner.FaultStats().Quarantines == 0 {
		t.Fatalf("shard panic schedule never fired: %+v", hookInj.Stats())
	}
	t.Logf("chaos sched: arrived=%d transmitted=%d faults=%+v shard=%+v",
		arrived, transmitted, fs, inner.FaultStats())
}
