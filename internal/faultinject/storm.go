package faultinject

import (
	"fmt"
	"sort"

	"pieo/internal/backend"
	"pieo/internal/clock"
)

// Window is one scheduled fault period: Plan is live while the storm's
// clock reads From ≤ now < To. Outside every window the storm produces
// no faults at all — which is what lets a chaos test assert recovery
// CONVERGENCE: after the last window closes, every remaining fault
// response (breaker backoff, rebuild, probation) must complete within
// the supervision layer's own bounded horizon, with no Recover() crutch.
type Window struct {
	From, To clock.Time
	Plan     Plan
}

// Storm is a sequence of scheduled fault windows evaluated against an
// injectable clock — the chaos driver advances the same clock.Source the
// engine's circuit breakers schedule against, so injection instants and
// recovery instants land on one timeline and MTTR is measurable from the
// fault log. Safe for concurrent use.
type Storm struct {
	clk     clock.Source
	windows []Window
	injs    []*Injector
}

// NewStorm builds a storm over clk from the given windows. Windows may
// overlap; the earliest-starting live window wins. Each window gets its
// own Injector so per-window fault counters stay attributable.
func NewStorm(clk clock.Source, windows []Window) *Storm {
	if clk == nil {
		panic("faultinject: storm clock must not be nil")
	}
	ws := make([]Window, len(windows))
	copy(ws, windows)
	sort.SliceStable(ws, func(a, b int) bool { return ws[a].From < ws[b].From })
	s := &Storm{clk: clk, windows: ws, injs: make([]*Injector, len(ws))}
	for i, w := range ws {
		if w.To <= w.From {
			panic(fmt.Sprintf("faultinject: storm window %d empty: [%v, %v)", i, w.From, w.To))
		}
		s.injs[i] = NewInjector(w.Plan)
	}
	return s
}

// active returns the injector of the live window at the storm clock's
// current instant, nil when no window is live.
func (s *Storm) active() *Injector {
	now := s.clk.Now()
	for i, w := range s.windows {
		if now >= w.From && now < w.To {
			return s.injs[i]
		}
	}
	return nil
}

// Active reports whether any fault window is live right now.
func (s *Storm) Active() bool { return s.active() != nil }

// End returns the instant the last window closes: past it the storm
// produces no further faults, and a convergence assertion's clock starts.
func (s *Storm) End() clock.Time {
	var end clock.Time
	for _, w := range s.windows {
		if w.To > end {
			end = w.To
		}
	}
	return end
}

// Stats aggregates the fault counters across every window.
func (s *Storm) Stats() Stats {
	var total Stats
	for _, inj := range s.injs {
		st := inj.Stats()
		total.Injected += st.Injected
		total.Panics += st.Panics
		total.Squeezes += st.Squeezes
		total.Stalls += st.Stalls
		total.Ops += st.Ops
	}
	return total
}

// WindowStats returns the fault counters of window i, for per-window
// attribution in experiment reports.
func (s *Storm) WindowStats(i int) Stats { return s.injs[i].Stats() }

// Disarm stops fault production in every window (counters survive).
func (s *Storm) Disarm() {
	for _, inj := range s.injs {
		inj.Disarm()
	}
}

// ShardHook adapts the storm to shard.Engine.SetFaultHook: inside a live
// window the window's schedule applies; outside, the hook is a no-op.
func (s *Storm) ShardHook() func(shard int, op string) {
	return func(shard int, op string) {
		if inj := s.active(); inj != nil {
			inj.step(fmt.Sprintf("shard%d/%s", shard, op))
		}
	}
}

// step/errNow/squeezeNow implement faultSource by delegating to the live
// window, so a Storm can drive the Backend wrapper exactly like a single
// Injector (WrapStorm). A window boundary crossed between step and its
// paired errNow costs at most one fault decision on the old schedule.
func (s *Storm) step(op string) uint64 {
	if inj := s.active(); inj != nil {
		return inj.step(op)
	}
	return 0
}

func (s *Storm) errNow(n uint64) bool {
	if inj := s.active(); inj != nil {
		return inj.errNow(n)
	}
	return false
}

func (s *Storm) squeezeNow() bool {
	if inj := s.active(); inj != nil {
		return inj.squeezeNow()
	}
	return false
}

// WrapStorm builds a fault-injecting view of inner driven by the storm's
// scheduled windows instead of a single always-on Injector.
func WrapStorm(inner backend.Backend, s *Storm) *Backend {
	return &Backend{inner: inner, inj: s}
}
