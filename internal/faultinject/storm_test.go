package faultinject_test

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
	"pieo/internal/shard"
	"pieo/internal/supervise"
)

// TestStormScheduledWindows pins the storm's window arithmetic on a
// hand-driven clock: faults fire only inside live windows, End() is the
// last close, and the hook is a no-op between windows.
func TestStormScheduledWindows(t *testing.T) {
	clk := &clock.Atomic{}
	storm := faultinject.NewStorm(clk, []faultinject.Window{
		{From: 100, To: 200, Plan: faultinject.Plan{Seed: 1, PanicEvery: 1}},
		{From: 300, To: 400, Plan: faultinject.Plan{Seed: 1, PanicEvery: 1}},
	})
	if storm.End() != 400 {
		t.Fatalf("End = %v, want 400", storm.End())
	}
	hook := storm.ShardHook()
	fire := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		hook(0, "enqueue")
		return false
	}
	for _, tc := range []struct {
		at   clock.Time
		want bool
	}{
		{0, false}, {99, false}, {100, true}, {199, true},
		{200, false}, {250, false}, {300, true}, {399, true}, {400, false},
	} {
		clk.AdvanceTo(tc.at)
		if got := fire(); got != tc.want {
			t.Fatalf("at %v: fired=%v, want %v", tc.at, got, tc.want)
		}
		if storm.Active() != tc.want {
			t.Fatalf("at %v: Active=%v, want %v", tc.at, storm.Active(), tc.want)
		}
	}
	if storm.Stats().Panics == 0 {
		t.Fatal("no panics counted across live windows")
	}
	if storm.WindowStats(0).Panics == 0 || storm.WindowStats(1).Panics == 0 {
		t.Fatal("per-window counters missing fires")
	}
}

// TestStormConvergenceConcurrent is the cross-feature -race storm the
// ISSUE names: combining rings forced on, the timewheel eligibility
// index active (core backend), and SCHEDULED quarantine windows on a
// shared clock — all simultaneously. The assertion is recovery
// CONVERGENCE, not forced recovery: after the last window closes, live
// traffic plus the breakers' own clock-driven probes must bring every
// shard back to fully closed within the supervision layer's bounded
// horizon, with exact conservation at the end.
func TestStormConvergenceConcurrent(t *testing.T) {
	runStormConvergence(t, 0)
}

// TestStormConvergenceExtended loops the same storm+convergence cycle
// with fresh seeds for PIEO_STORM_SECONDS of wall time — the scheduled
// CI extended-chaos job's entry point (5 minutes under -race). Skipped
// unless the knob is set, so regular runs stay fast.
func TestStormConvergenceExtended(t *testing.T) {
	secs, _ := strconv.Atoi(os.Getenv("PIEO_STORM_SECONDS"))
	if secs <= 0 {
		t.Skip("set PIEO_STORM_SECONDS to run the extended storm")
	}
	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	for round := uint64(0); time.Now().Before(deadline); round++ {
		t.Logf("extended storm cycle %d", round)
		runStormConvergence(t, 1+round*1000)
	}
}

// runStormConvergence is one full storm-then-converge cycle; seedBase
// phase-shifts both windows' fault schedules so repeated cycles explore
// different interleavings.
func runStormConvergence(t *testing.T, seedBase uint64) {
	const (
		producers  = 3
		consumers  = 2
		capacityN  = 32 * 1024
		shardCount = 8
	)
	clk := &clock.Atomic{}
	e := shard.New(capacityN, shardCount)
	e.SetClock(clk)
	bcfg := supervise.BreakerConfig{BaseBackoff: 64, MaxBackoff: 512, ProbeBudget: 8, JitterPct: 25}
	e.SetBreakerConfig(bcfg)
	e.SetForceRing(true) // every combining-eligible op takes the ring path
	storm := faultinject.NewStorm(clk, []faultinject.Window{
		{From: 10, To: 250, Plan: faultinject.Plan{Seed: seedBase + 7, PanicEvery: 97}},
		{From: 450, To: 700, Plan: faultinject.Plan{Seed: seedBase + 13, PanicEvery: 181, LatencyEvery: 41, LatencyNs: 100}},
	})
	e.SetFaultHook(storm.ShardHook())
	if !e.EligIndexActive() {
		t.Fatal("timewheel eligibility index inactive on the core backend")
	}

	var stop atomic.Bool
	var nextID atomic.Uint32
	acceptedCh := make([][]uint32, producers)
	deliveredCh := make([][]core.Entry, consumers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := lcg(1000 + p)
			var mine []uint32
			for !stop.Load() {
				id := nextID.Add(1)
				ent := core.Entry{ID: id, Rank: rng.next() % 5000, SendTime: clock.Time(rng.next() % 16)}
				if err := e.Enqueue(ent); err == nil {
					mine = append(mine, id)
				}
			}
			acceptedCh[p] = mine
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := lcg(2000 + c)
			var mine []core.Entry
			for !stop.Load() {
				if ent, ok := e.Dequeue(clock.Time(rng.next() % 32)); ok {
					mine = append(mine, ent)
				}
			}
			deliveredCh[c] = mine
		}(c)
	}

	// Phase 1: drive the shared clock through both storm windows while the
	// workers hammer. Small steps keep each window live across thousands
	// of operations so the panic schedules fire.
	for clk.Now() < storm.End() {
		clk.Advance(5)
		time.Sleep(200 * time.Microsecond)
	}
	if storm.Active() {
		t.Fatal("storm still active past End()")
	}

	// Phase 2: convergence. NO Recover() — only live traffic and clock
	// advancement. Every breaker's next probe is due within one Horizon of
	// the last fault, a failed probe backs off by at most another Horizon,
	// and probation needs ProbeBudget real ops; with faults over, probes
	// cannot fail, so a small number of horizon-sized steps must reach
	// all-shards-closed. The round bound is deliberately generous — the
	// assertion is bounded convergence, not a tight constant.
	horizon := supervise.NewBreaker(0, bcfg).Horizon()
	converged := false
	for round := 0; round < 400; round++ {
		fs := e.FaultStats()
		if fs.DownShards == 0 && fs.HalfOpenShards == 0 {
			converged = true
			break
		}
		clk.Advance(horizon)
		time.Sleep(500 * time.Microsecond)
	}
	stop.Store(true)
	wg.Wait()
	if !converged {
		t.Fatalf("engine did not converge to all-shards-closed after the storm: %+v", e.FaultStats())
	}

	if storm.Stats().Panics == 0 || e.FaultStats().Quarantines == 0 {
		t.Fatalf("storm was vacuous: storm=%+v engine=%+v", storm.Stats(), e.FaultStats())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-convergence invariants: %v", err)
	}
	fs := e.FaultStats()
	if fs.Recoveries == 0 {
		t.Fatal("no breaker-close recoveries recorded despite quarantines converging")
	}
	if fs.MTTRMax > fs.MTTRTotal {
		t.Fatalf("MTTR accounting inconsistent: max %v > total %v", fs.MTTRMax, fs.MTTRTotal)
	}
	// MTTR must be computable from the event log alone and agree with the
	// counters (the log is bounded, so it may hold a subset).
	recov, total, max := shard.MTTR(e.FaultEvents())
	if uint64(recov) > fs.Recoveries || total > fs.MTTRTotal || max > fs.MTTRMax {
		t.Fatalf("event-log MTTR (%d/%v/%v) exceeds counters (%d/%v/%v)",
			recov, total, max, fs.Recoveries, fs.MTTRTotal, fs.MTTRMax)
	}

	accepted := make(map[uint32]bool)
	for _, ids := range acceptedCh {
		for _, id := range ids {
			accepted[id] = true
		}
	}
	var delivered []core.Entry
	for _, ents := range deliveredCh {
		delivered = append(delivered, ents...)
	}
	auditConservation(t, e, accepted, delivered)
	drainAll(t, e)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	if !e.EligIndexActive() {
		t.Fatal("timewheel eligibility index demoted by quarantine rebuilds")
	}
	t.Logf("converged: %d accepted, faults=%+v, storm=%+v", len(accepted), e.FaultStats(), storm.Stats())
}
