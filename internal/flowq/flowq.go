// Package flowq provides the per-flow FIFO packet queues of the paper's
// scheduling model (§2.1): packets ready for transmission are stored in one
// queue per flow (traffic class); packets within a flow always leave in
// FIFO order, and the PIEO scheduler decides which flow transmits next.
package flowq

import (
	"fmt"

	"pieo/internal/clock"
)

// FlowID identifies a flow (equivalently a traffic class). In hierarchical
// schedulers it also serves as the element index that logical-PIEO
// predicates filter on (paper §4.3).
type FlowID uint32

// Packet is a packet waiting in a flow queue. Size is the transmission
// length in bytes. Deadline and SendAt carry per-packet scheduling inputs
// used by some algorithms (EDF/RCSP); algorithms that do not need them
// leave them zero.
type Packet struct {
	Flow     FlowID
	Size     uint32
	Arrival  clock.Time // when the packet entered the flow queue
	SendAt   clock.Time // per-packet eligibility time (RCSP-style shaping)
	Deadline clock.Time // absolute deadline (EDF) or slack reference (LSTF)
	Rank     uint64     // per-packet rank, assigned by input-triggered programs
	Seq      uint64     // global arrival sequence, for audit trails
}

// Queue is a FIFO of packets backed by a growable ring buffer. The zero
// value is an empty queue ready to use.
//
// Limit, when non-zero, caps the queue at that many packets: TryPush
// tail-drops beyond it (the standard NIC queue discipline) and counts
// the drops. Push ignores the limit, for callers that manage admission
// themselves.
type Queue struct {
	Limit int

	buf   []Packet
	head  int
	n     int
	bytes uint64
	drops uint64
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.n }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.n == 0 }

// Bytes returns the total queued payload in bytes.
func (q *Queue) Bytes() uint64 { return q.bytes }

// Drops returns the number of packets tail-dropped by TryPush.
func (q *Queue) Drops() uint64 { return q.drops }

// TryPush appends p unless the queue is at its Limit, in which case the
// packet is tail-dropped and false is returned.
func (q *Queue) TryPush(p Packet) bool {
	if q.Limit > 0 && q.n >= q.Limit {
		q.drops++
		return false
	}
	q.Push(p)
	return true
}

// Push appends p to the tail of the queue.
func (q *Queue) Push(p Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	q.bytes += uint64(p.Size)
}

// Head returns the packet at the head of the queue without removing it.
// The second result is false when the queue is empty.
func (q *Queue) Head() (Packet, bool) {
	if q.n == 0 {
		return Packet{}, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the packet at the head of the queue. The second
// result is false when the queue is empty.
func (q *Queue) Pop() (Packet, bool) {
	if q.n == 0 {
		return Packet{}, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = Packet{} // do not retain popped data
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.bytes -= uint64(p.Size)
	return p, true
}

func (q *Queue) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]Packet, newCap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Set is a collection of flow queues indexed by FlowID, with lazy creation.
// The zero value is ready to use.
type Set struct {
	queues map[FlowID]*Queue
}

// Get returns the queue for id, creating it if needed.
func (s *Set) Get(id FlowID) *Queue {
	if s.queues == nil {
		s.queues = make(map[FlowID]*Queue)
	}
	q := s.queues[id]
	if q == nil {
		q = &Queue{}
		s.queues[id] = q
	}
	return q
}

// Lookup returns the queue for id without creating it, or nil.
func (s *Set) Lookup(id FlowID) *Queue { return s.queues[id] }

// Len returns the number of flow queues ever created.
func (s *Set) Len() int { return len(s.queues) }

// TotalPackets returns the number of packets queued across all flows.
func (s *Set) TotalPackets() int {
	total := 0
	for _, q := range s.queues {
		total += q.Len()
	}
	return total
}

// String summarizes queue occupancy, for debugging.
func (s *Set) String() string {
	return fmt.Sprintf("flowq.Set{flows: %d, packets: %d}", s.Len(), s.TotalPackets())
}
