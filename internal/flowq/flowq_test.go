package flowq

import (
	"testing"
	"testing/quick"
)

func TestQueueZeroValue(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("zero Queue not empty: len=%d bytes=%d", q.Len(), q.Bytes())
	}
	if _, ok := q.Head(); ok {
		t.Fatal("Head on empty queue reported ok")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(Packet{Flow: 1, Size: uint32(i + 1), Seq: uint64(i)})
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		head, ok := q.Head()
		if !ok || head.Seq != uint64(i) {
			t.Fatalf("Head #%d = %+v, ok=%v", i, head, ok)
		}
		p, ok := q.Pop()
		if !ok || p.Seq != uint64(i) {
			t.Fatalf("Pop #%d = %+v, ok=%v", i, p, ok)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestBytesAccounting(t *testing.T) {
	var q Queue
	q.Push(Packet{Size: 1500})
	q.Push(Packet{Size: 64})
	if q.Bytes() != 1564 {
		t.Fatalf("Bytes = %d, want 1564", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 64 {
		t.Fatalf("Bytes = %d, want 64", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", q.Bytes())
	}
}

func TestRingWraparound(t *testing.T) {
	var q Queue
	// Force head to travel around the ring several times.
	seq := uint64(0)
	next := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			q.Push(Packet{Seq: seq})
			seq++
		}
		for i := 0; i < 3; i++ {
			p, ok := q.Pop()
			if !ok || p.Seq != next {
				t.Fatalf("round %d: Pop = %+v ok=%v, want seq %d", round, p, ok, next)
			}
			next++
		}
	}
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		if p.Seq != next {
			t.Fatalf("drain: got seq %d, want %d", p.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d packets, pushed %d", next, seq)
	}
}

func TestTryPushTailDrop(t *testing.T) {
	q := Queue{Limit: 2}
	if !q.TryPush(Packet{Seq: 1}) || !q.TryPush(Packet{Seq: 2}) {
		t.Fatal("admission under limit failed")
	}
	if q.TryPush(Packet{Seq: 3}) {
		t.Fatal("admission over limit succeeded")
	}
	if q.Drops() != 1 || q.Len() != 2 {
		t.Fatalf("drops=%d len=%d", q.Drops(), q.Len())
	}
	q.Pop()
	if !q.TryPush(Packet{Seq: 4}) {
		t.Fatal("admission after drain failed")
	}
	// The survivors keep FIFO order.
	p, _ := q.Pop()
	if p.Seq != 2 {
		t.Fatalf("head seq = %d, want 2", p.Seq)
	}
}

func TestTryPushUnlimitedByDefault(t *testing.T) {
	var q Queue
	for i := 0; i < 1000; i++ {
		if !q.TryPush(Packet{Seq: uint64(i)}) {
			t.Fatal("unlimited queue dropped")
		}
	}
	if q.Drops() != 0 {
		t.Fatalf("drops = %d", q.Drops())
	}
}

func TestSetLazyCreation(t *testing.T) {
	var s Set
	if s.Lookup(3) != nil {
		t.Fatal("Lookup created a queue")
	}
	q := s.Get(3)
	if q == nil || s.Lookup(3) != q {
		t.Fatal("Get did not create/persist the queue")
	}
	if s.Get(3) != q {
		t.Fatal("Get returned a different queue on second call")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSetTotalPackets(t *testing.T) {
	var s Set
	s.Get(1).Push(Packet{Size: 1})
	s.Get(1).Push(Packet{Size: 1})
	s.Get(2).Push(Packet{Size: 1})
	if got := s.TotalPackets(); got != 3 {
		t.Fatalf("TotalPackets = %d, want 3", got)
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// byte accounting.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []uint8, sizes []uint16) bool {
		var q Queue
		var model []Packet
		seq := uint64(0)
		si := 0
		for _, op := range ops {
			if op%3 != 0 || len(model) == 0 { // bias toward pushes
				size := uint32(1)
				if si < len(sizes) {
					size = uint32(sizes[si]) + 1
					si++
				}
				p := Packet{Seq: seq, Size: size}
				seq++
				q.Push(p)
				model = append(model, p)
			} else {
				got, ok := q.Pop()
				if !ok || got != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
			var wantBytes uint64
			for _, p := range model {
				wantBytes += uint64(p.Size)
			}
			if q.Bytes() != wantBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
