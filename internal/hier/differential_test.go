package hier

import (
	"fmt"
	"math/rand"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/faultinject"
	"pieo/internal/flowq"
	"pieo/internal/netsim"

	_ "pieo/internal/shard" // registers "sharded" and "sharded+cffs"
)

// diffBackends is the backend sweep for the partitioned-vs-oracle
// differential: every registered exact backend the partitioned mode can
// run on. "core" is the welded single list, "cffs" the width-1 (exact)
// bucket queue, and the two sharded composites route every node dequeue
// through the engine's ranged tournament over DequeueRangeBelowSeq.
var diffBackends = []string{"core", "cffs", "sharded", "sharded+cffs"}

// newPartitionedNamed builds a partitioned-mode hierarchy over the named
// registered backend.
func newPartitionedNamed(t *testing.T, name string, rootPolicy *Policy) *Hierarchy {
	t.Helper()
	return NewPartitionedOn(40, rootPolicy, func(n int) backend.Backend {
		b, err := backend.New(name, n)
		if err != nil {
			t.Fatalf("backend %q: %v", name, err)
		}
		return b
	})
}

// assertNodeParity compares per-node operation counters and fault
// counters between the oracle and the partitioned hierarchy. Nodes() is
// BFS order, which both Build paths produce identically.
func assertNodeParity(t *testing.T, ctx string, oracle, part *Hierarchy) {
	t.Helper()
	on, pn := oracle.Nodes(), part.Nodes()
	if len(on) != len(pn) {
		t.Fatalf("%s: oracle has %d nodes, partitioned %d", ctx, len(on), len(pn))
	}
	for i := range on {
		if on[i].Stats() != pn[i].Stats() {
			t.Fatalf("%s: node %q stats diverge: oracle %+v, partitioned %+v",
				ctx, on[i].Name, on[i].Stats(), pn[i].Stats())
		}
		if on[i].FaultStats() != pn[i].FaultStats() {
			t.Fatalf("%s: node %q faults diverge: oracle %+v, partitioned %+v",
				ctx, on[i].Name, on[i].FaultStats(), pn[i].FaultStats())
		}
	}
}

// checkPartitioned validates the partitioned hierarchy's structure: the
// band allocator's invariants (tiling, residency, wheel exactness)
// against the shared backend, and the backend's own structural checker.
func checkPartitioned(t *testing.T, ctx string, part *Hierarchy) {
	t.Helper()
	if err := part.Partitioner().CheckInvariants(); err != nil {
		t.Fatalf("%s: partitioner invariants: %v", ctx, err)
	}
	if err := backend.CheckInvariants(part.Partitioner().Backend()); err != nil {
		t.Fatalf("%s: shared backend invariants: %v", ctx, err)
	}
}

// TestPartitionedDifferentialRandom drives random mixed-policy trees
// through identical seeded traffic on the per-node-list oracle and the
// partitioned hierarchy, asserting the dequeue sequence is bit-exact
// (same packet, same instant, same NextWake hint) on every registered
// exact backend.
func TestPartitionedDifferentialRandom(t *testing.T) {
	for _, name := range diffBackends {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				ctx := fmt.Sprintf("backend %s seed %d", name, seed)
				oracle, flows := buildRandomTree(rand.New(rand.NewSource(seed)))
				part, pflows := buildRandomTreeOn(rand.New(rand.NewSource(seed)), func(p *Policy) *Hierarchy {
					return newPartitionedNamed(t, name, p)
				})
				if len(flows) != len(pflows) {
					t.Fatalf("%s: topology mismatch: %d vs %d flows", ctx, len(flows), len(pflows))
				}
				if len(flows) == 0 {
					continue
				}

				// One op stream, replayed verbatim against both.
				ops := rand.New(rand.NewSource(seed + 1000))
				now := clock.Time(0)
				injected, transmitted := 0, 0
				for i := 0; i < 500; i++ {
					now += clock.Time(ops.Intn(100))
					if ops.Intn(2) == 0 {
						f := flows[ops.Intn(len(flows))]
						p := flowq.Packet{Flow: f, Size: uint32(64 + ops.Intn(1437)), Seq: uint64(i)}
						oracle.OnArrival(now, p)
						part.OnArrival(now, p)
						injected++
					} else {
						op, ook := oracle.NextPacket(now)
						pp, pok := part.NextPacket(now)
						if ook != pok || op != pp {
							t.Fatalf("%s: step %d: oracle (%+v,%v) vs partitioned (%+v,%v)",
								ctx, i, op, ook, pp, pok)
						}
						if ook {
							transmitted++
						}
					}
					ow, ook := oracle.NextWake(now)
					pw, pok := part.NextWake(now)
					if ook != pok || (ook && ow != pw) {
						t.Fatalf("%s: step %d: NextWake oracle (%v,%v) vs partitioned (%v,%v)",
							ctx, i, ow, ook, pw, pok)
					}
				}
				for {
					op, ook := oracle.NextPacket(now)
					pp, pok := part.NextPacket(now)
					if ook != pok || op != pp {
						t.Fatalf("%s: drain: oracle (%+v,%v) vs partitioned (%+v,%v)", ctx, op, ook, pp, pok)
					}
					if !ook {
						break
					}
					transmitted++
				}
				if transmitted != injected || part.Backlog() != 0 {
					t.Fatalf("%s: transmitted %d, injected %d, backlog %d",
						ctx, transmitted, injected, part.Backlog())
				}
				assertNodeParity(t, ctx, oracle, part)
				checkPartitioned(t, ctx, part)
			}
		})
	}
}

// diffTwoLevel builds the §6.3 enforcement topology (Token Bucket over
// WF²Q+) with the given fan-outs on an arbitrary hierarchy constructor,
// and configures per-VM rate limits.
func diffTwoLevel(h *Hierarchy, nVMs, nFlows int, sampledGbps float64) {
	id := flowq.FlowID(0)
	var vms []*Node
	for v := 0; v < nVMs; v++ {
		vm := h.Root().AddNode(fmt.Sprintf("vm%d", v), WF2Q())
		for f := 0; f < nFlows; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()
	otherRate := (40 - sampledGbps) * 0.9 / float64(nVMs-1)
	for v, vm := range vms {
		self := vm.Self()
		self.RateGbps = otherRate
		if v == 0 {
			self.RateGbps = sampledGbps
		}
		self.Burst = 8 * 1500
		self.Tokens = self.Burst
	}
}

// runDiffEnforcement drives the two-level topology through netsim with
// closed-loop reinjection and returns per-flow transmitted bytes.
func runDiffEnforcement(h *Hierarchy, nFlows int, dur clock.Time) (perFlow []uint64, sent uint64) {
	sim := netsim.New(netsim.Link{RateGbps: 40}, h)
	perFlow = make([]uint64, nFlows)
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		perFlow[int(p.Flow)] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := 0; f < nFlows; f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: flowq.FlowID(f), Size: 1500, Seq: seq})
		}
	}
	sim.Run(dur)
	return perFlow, sim.Sent()
}

// TestPartitionedDifferentialEnforcement runs the Fig 11/12 Token
// Bucket + WF²Q+ topology through netsim in both modes: the event-driven
// simulation (arming wakes from NextWake) must transmit the identical
// per-flow byte sequence, which also proves the per-partition wheels
// report the oracle's exact wake instants.
func TestPartitionedDifferentialEnforcement(t *testing.T) {
	const nVMs, nFlows = 10, 10
	const dur = clock.Time(2_000_000) // 2 ms is plenty for bit-exactness
	for _, name := range diffBackends {
		t.Run(name, func(t *testing.T) {
			oracle := New(40, TokenBucket())
			diffTwoLevel(oracle, nVMs, nFlows, 8)
			part := newPartitionedNamed(t, name, TokenBucket())
			diffTwoLevel(part, nVMs, nFlows, 8)

			ob, osent := runDiffEnforcement(oracle, nVMs*nFlows, dur)
			pb, psent := runDiffEnforcement(part, nVMs*nFlows, dur)
			if osent != psent {
				t.Fatalf("backend %s: oracle sent %d packets, partitioned %d", name, osent, psent)
			}
			for f := range ob {
				if ob[f] != pb[f] {
					t.Fatalf("backend %s: flow %d bytes diverge: oracle %d, partitioned %d",
						name, f, ob[f], pb[f])
				}
			}
			assertNodeParity(t, "enforcement "+name, oracle, part)
			checkPartitioned(t, "enforcement "+name, part)
		})
	}
}

// TestPartitionedWakeParityShaped compares NextWake instant-by-instant
// on a shaped (wall-clock) hierarchy while packets drain: the
// per-partition timing wheels must reproduce the per-level lists' exact
// minima, including after partial drains.
func TestPartitionedWakeParityShaped(t *testing.T) {
	build := func(mk func(*Policy) *Hierarchy) *Hierarchy {
		h := mk(TokenBucket())
		diffTwoLevel(h, 4, 3, 2)
		return h
	}
	oracle := build(func(p *Policy) *Hierarchy { return New(40, p) })
	part := build(func(p *Policy) *Hierarchy { return newPartitionedNamed(t, "sharded", p) })

	for f := flowq.FlowID(0); f < 12; f++ {
		p := flowq.Packet{Flow: f, Size: 1500, Seq: uint64(f)}
		oracle.OnArrival(0, p)
		part.OnArrival(0, p)
	}
	now := clock.Time(0)
	for i := 0; i < 200; i++ {
		op, ook := oracle.NextPacket(now)
		pp, pok := part.NextPacket(now)
		if ook != pok || op != pp {
			t.Fatalf("step %d: schedule diverges: oracle (%+v,%v) vs (%+v,%v)", i, op, ook, pp, pok)
		}
		ow, owok := oracle.NextWake(now)
		pw, pwok := part.NextWake(now)
		if owok != pwok || (owok && ow != pw) {
			t.Fatalf("step %d now %d: NextWake oracle (%v,%v) vs partitioned (%v,%v)",
				i, now, ow, owok, pw, pwok)
		}
		if !ook {
			if !owok {
				break
			}
			now = ow
			continue
		}
		now += 100
	}
}

// TestPartitionedNonStrictFaultAttribution forces enqueue failures with
// the fault-injection wrapper around the shared backend and asserts the
// hierarchy's per-node FaultStats attribute every drop to the node whose
// logical PIEO rejected the insert — summing exactly to the
// hierarchy-wide counters the chaos suite already audits.
func TestPartitionedNonStrictFaultAttribution(t *testing.T) {
	inj := faultinject.NewInjector(faultinject.Plan{Seed: 42, ErrorEvery: 7})
	h := NewPartitionedOn(40, RoundRobin(), func(n int) backend.Backend {
		return faultinject.Wrap(backend.NewCoreList(n), inj)
	})
	h.Strict = false
	diffTwoLevelRR(h, 5, 4)

	rng := rand.New(rand.NewSource(9))
	now := clock.Time(0)
	for i := 0; i < 2000; i++ {
		now += clock.Time(rng.Intn(50))
		if rng.Intn(2) == 0 {
			f := flowq.FlowID(rng.Intn(20))
			h.OnArrival(now, flowq.Packet{Flow: f, Size: 1500, Seq: uint64(i)})
		} else {
			h.NextPacket(now)
		}
	}
	inj.Disarm()

	var sum backend.FaultStats
	for _, n := range h.Nodes() {
		sum.Add(n.FaultStats())
	}
	if sum != h.FaultStats() {
		t.Fatalf("per-node faults %+v do not sum to hierarchy faults %+v", sum, h.FaultStats())
	}
	if sum.EnqueueFailures == 0 {
		t.Fatalf("injector fired %d errors but no enqueue failure was attributed", inj.Stats().Injected)
	}
	// The same attribution must hold in per-level mode.
	inj2 := faultinject.NewInjector(faultinject.Plan{Seed: 42, ErrorEvery: 7})
	h2 := NewOn(40, RoundRobin(), func(n int) backend.Backend {
		return faultinject.Wrap(backend.NewCoreList(n), inj2)
	})
	h2.Strict = false
	diffTwoLevelRR(h2, 5, 4)
	rng2 := rand.New(rand.NewSource(9))
	now = 0
	for i := 0; i < 2000; i++ {
		now += clock.Time(rng2.Intn(50))
		if rng2.Intn(2) == 0 {
			f := flowq.FlowID(rng2.Intn(20))
			h2.OnArrival(now, flowq.Packet{Flow: f, Size: 1500, Seq: uint64(i)})
		} else {
			h2.NextPacket(now)
		}
	}
	inj2.Disarm()
	var sum2 backend.FaultStats
	for _, n := range h2.Nodes() {
		sum2.Add(n.FaultStats())
	}
	if sum2 != h2.FaultStats() {
		t.Fatalf("per-level: per-node faults %+v do not sum to hierarchy faults %+v", sum2, h2.FaultStats())
	}
}

// diffTwoLevelRR builds a plain round-robin two-level tree (no shaping
// state needed), for the fault-attribution tests.
func diffTwoLevelRR(h *Hierarchy, nVMs, nFlows int) {
	id := flowq.FlowID(0)
	for v := 0; v < nVMs; v++ {
		vm := h.Root().AddNode(fmt.Sprintf("vm%d", v), RoundRobin())
		for f := 0; f < nFlows; f++ {
			vm.AddFlow(id)
			id++
		}
	}
	h.Build()
}
