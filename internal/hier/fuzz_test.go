package hier

import (
	"fmt"
	"math/rand"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
)

// buildRandomTreeOn grows a random 2-4 level hierarchy with mixed
// policies into a hierarchy produced by mk. The rng fully determines the
// topology, so two calls with identically-seeded generators build the
// same tree — the differential suite's oracle pairing relies on this.
func buildRandomTreeOn(rng *rand.Rand, mk func(rootPolicy *Policy) *Hierarchy) (*Hierarchy, []flowq.FlowID) {
	policies := []func() *Policy{RoundRobin, StrictPriority, WFQ, WF2Q, DRR}
	pick := func() *Policy { return policies[rng.Intn(len(policies))]() }

	h := mk(pick())
	var flows []flowq.FlowID
	nextFlow := flowq.FlowID(0)

	var grow func(n *Node, depth int)
	grow = func(n *Node, depth int) {
		kids := 1 + rng.Intn(3)
		for i := 0; i < kids; i++ {
			if depth >= 3 || rng.Intn(2) == 0 {
				n.AddFlow(nextFlow)
				flows = append(flows, nextFlow)
				nextFlow++
			} else {
				grow(n.AddNode(fmt.Sprintf("n%d", nextFlow), pick()), depth+1)
			}
		}
	}
	grow(h.Root(), 1)
	h.Build()
	// Give every child sane control-plane state for every policy.
	var fix func(n *Node)
	fix = func(n *Node) {
		for _, c := range n.children {
			c.Weight = uint64(1 + rng.Intn(4))
			c.Priority = uint64(rng.Intn(4))
			c.Quantum = 1500 * uint64(1+rng.Intn(2))
			if c.Node != nil {
				fix(c.Node)
			}
		}
	}
	fix(h.Root())
	return h, flows
}

// buildRandomTree grows a random 2-4 level hierarchy with mixed policies
// over the default per-level layout.
func buildRandomTree(rng *rand.Rand) (*Hierarchy, []flowq.FlowID) {
	return buildRandomTreeOn(rng, func(p *Policy) *Hierarchy { return New(40, p) })
}

// TestRandomTopologyConservation drives random trees with random
// arrivals and checks packet conservation, per-level list invariants,
// and that every transmitted packet belonged to a real backlogged flow.
func TestRandomTopologyConservation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, flows := buildRandomTree(rng)
		if len(flows) == 0 {
			continue
		}
		injected := 0
		for i := 0; i < 200; i++ {
			f := flows[rng.Intn(len(flows))]
			h.OnArrival(clock.Time(i), flowq.Packet{Flow: f, Size: uint32(64 + rng.Intn(1437)), Seq: uint64(i)})
			injected++
		}
		transmitted := 0
		for i := 0; i < injected; i++ {
			_, ok := h.NextPacket(clock.Time(1000 + i))
			if !ok {
				break
			}
			transmitted++
			for d := 0; d < h.Levels(); d++ {
				if err := backend.CheckInvariants(h.Level(d)); err != nil {
					t.Fatalf("seed %d: level %d after %d: %v", seed, d, i, err)
				}
			}
		}
		if transmitted+h.Backlog() != injected {
			t.Fatalf("seed %d: %d transmitted + %d backlog != %d injected",
				seed, transmitted, h.Backlog(), injected)
		}
		// All policies here are work-conserving: everything must drain.
		if h.Backlog() != 0 {
			t.Fatalf("seed %d: %d packets stuck", seed, h.Backlog())
		}
	}
}

// TestRandomTopologyInterleavedArrivals interleaves arrivals and
// dequeues (the live pattern) instead of a fill-then-drain phase split.
func TestRandomTopologyInterleavedArrivals(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, flows := buildRandomTree(rng)
		if len(flows) == 0 {
			continue
		}
		injected, transmitted := 0, 0
		now := clock.Time(0)
		for i := 0; i < 600; i++ {
			now += clock.Time(rng.Intn(100))
			if rng.Intn(2) == 0 {
				f := flows[rng.Intn(len(flows))]
				h.OnArrival(now, flowq.Packet{Flow: f, Size: 1500, Seq: uint64(i)})
				injected++
			} else if _, ok := h.NextPacket(now); ok {
				transmitted++
			}
		}
		for {
			if _, ok := h.NextPacket(now); !ok {
				break
			}
			transmitted++
		}
		if transmitted != injected || h.Backlog() != 0 {
			t.Fatalf("seed %d: transmitted %d, injected %d, backlog %d",
				seed, transmitted, injected, h.Backlog())
		}
		for d := 0; d < h.Levels(); d++ {
			if err := backend.CheckInvariants(h.Level(d)); err != nil {
				t.Fatalf("seed %d: level %d: %v", seed, d, err)
			}
		}
	}
}
