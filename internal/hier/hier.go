// Package hier implements hierarchical packet scheduling with PIEO
// (§4.3). Flows are grouped into a tree: leaf children are flows with
// FIFO packet queues; every non-leaf node schedules its children with its
// own policy. All children at the same tree depth share one physical PIEO
// list, logically partitioned per parent: each parent owns a contiguous
// child-index range [lo, hi], and extracting a parent's logical PIEO is a
// DequeueRange whose predicate is the paper's
// (eligible) && (p.start <= f.index <= p.end).
//
// Dequeue starts at the root whenever the link goes idle and propagates
// down: the winner at each level names the logical PIEO to extract from
// at the next level (the hardware pushes the winner's id into an
// inter-level FIFO; this synchronous model simply descends). After the
// leaf transmits, post-dequeue runs bottom-up and each ancestor is
// re-enqueued while its subtree stays backlogged.
package hier

import (
	"fmt"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/flowq"
)

// Child is a schedulable element inside some parent's logical PIEO:
// either a leaf flow (Queue != nil) or an interior node (Node != nil).
// The control-plane configuration and algorithm scratch fields mirror
// sched.Flow.
type Child struct {
	ID   uint32 // index within the depth's physical PIEO (assigned by Build)
	Flow flowq.FlowID
	Node *Node // non-nil for interior children

	Queue *flowq.Queue // non-nil for leaf children

	// Scheduling attributes assigned by the parent policy's PreEnqueue.
	Rank     uint64
	SendTime clock.Time

	// Control-plane configuration.
	Weight   uint64
	Quantum  uint64 // expected packet size for interior shaping, bytes
	Priority uint64
	RateGbps float64
	Burst    float64

	// Algorithm scratch.
	Tokens        float64
	LastRefill    clock.Time
	VirtualFinish uint64
	virtualStart  uint64 // start assigned by the last fair-queueing PreEnqueue

	// requeued marks a child being put back after service or a deferred
	// descent, as opposed to activating after idleness. Fair-queueing
	// policies apply Fig 2(a)'s max(finish, V) only to activations.
	requeued bool
}

// IsLeaf reports whether the child is a flow.
func (c *Child) IsLeaf() bool { return c.Queue != nil }

// NodeStats counts the logical-PIEO operations one node issued against
// its physical structure — the per-node view of backend.Stats, identical
// across the per-level and partitioned modes for the same traffic.
type NodeStats struct {
	Enqueues      uint64 // successful inserts into this node's logical PIEO
	Dequeues      uint64 // successful ranged extractions
	EmptyDequeues uint64 // ranged extractions that found nothing eligible
}

// Node is a non-leaf vertex of the scheduling tree. Its Policy schedules
// its children; V is its private fair-queueing virtual clock.
type Node struct {
	Name   string
	Policy *Policy
	V      clock.Virtual

	h          *Hierarchy
	depth      int // root = 0
	parent     *Node
	self       *Child // this node's entity in the parent's logical PIEO (nil at root)
	children   []*Child
	lo, hi     uint32     // child-index range (per-level mode) or band (partitioned)
	part       *Partition // this node's logical PIEO band (partitioned mode only)
	active     int        // children currently enqueued in this node's logical PIEO
	cachedSumW uint64     // lazily cached total child weight
	stats      NodeStats
	faults     backend.FaultStats // non-strict faults charged to THIS node
}

// Stats returns the node's logical-PIEO operation counters.
func (n *Node) Stats() NodeStats { return n.stats }

// FaultStats returns the non-strict faults charged to this node — the
// per-node breakdown of Hierarchy.FaultStats, so a chaos audit can
// assert where drops landed, not just that they happened.
func (n *Node) FaultStats() backend.FaultStats { return n.faults }

// Partition returns the node's ID band in partitioned mode, nil in
// per-level mode.
func (n *Node) Partition() *Partition { return n.part }

// Self returns this node's own child entity — the handle the control
// plane uses to configure how the node's parent schedules it (rate limit,
// weight, priority). It is nil for the root.
func (n *Node) Self() *Child { return n.self }

// AddNode creates an interior child scheduled by this node, with the
// given policy for its own children. Must be called before Build.
func (n *Node) AddNode(name string, policy *Policy) *Node {
	n.h.mustNotBeBuilt()
	if policy == nil {
		panic("hier: node policy must not be nil")
	}
	child := &Child{Weight: 1, Quantum: 1500}
	node := &Node{Name: name, Policy: policy, h: n.h, depth: n.depth + 1, parent: n, self: child}
	child.Node = node
	n.children = append(n.children, child)
	return node
}

// AddFlow creates a leaf flow child scheduled by this node. Must be
// called before Build.
func (n *Node) AddFlow(id flowq.FlowID) *Child {
	n.h.mustNotBeBuilt()
	if _, dup := n.h.leaves[id]; dup {
		panic(fmt.Sprintf("hier: flow %d added twice", id))
	}
	child := &Child{Flow: id, Queue: &flowq.Queue{}, Weight: 1, Quantum: 1500}
	n.children = append(n.children, child)
	n.h.leaves[id] = child
	n.h.parentOf[id] = n
	return child
}

// Hierarchy is an n-level PIEO scheduler tree. It implements
// netsim.Scheduler and netsim.WakeHinter.
type Hierarchy struct {
	LinkRateGbps float64

	// Strict preserves the historical failure contract: a failed
	// logical-PIEO insert panics. NewOn defaults it to true; non-strict
	// hierarchies count the fault in FaultStats and leave the child out
	// of its parent's logical PIEO until its next activation (the
	// degraded behavior: that subtree loses its turn, nothing crashes).
	Strict bool

	root     *Node
	levels   []backend.Backend // levels[d] holds the children of depth-d nodes (per-level mode)
	wall     []bool            // depth-d predicates live in the wall-clock domain
	factory  func(capacity int) backend.Backend
	leaves   map[flowq.FlowID]*Child
	parentOf map[flowq.FlowID]*Node
	byID     []map[uint32]*Child // per depth: child id -> Child
	nodesAt  [][]*Node           // interior nodes per depth, BFS order
	built    bool

	// Partitioned mode (§4.2): every node's logical PIEO is an ID band
	// of ONE shared physical backend instead of a slice of a per-level
	// list. pt is nil in per-level mode.
	partitioned bool
	pt          *Partitioner

	faults  backend.FaultStats // non-strict fault counters
	lastErr error              // most recent non-strict fault
}

// New creates an empty hierarchy whose root schedules its children with
// the given policy, over the default paper-exact list backend per level.
func New(linkRateGbps float64, rootPolicy *Policy) *Hierarchy {
	return NewOn(linkRateGbps, rootPolicy, func(n int) backend.Backend {
		return backend.NewCoreList(n)
	})
}

// NewOn creates an empty hierarchy whose per-level physical PIEOs are
// built by factory at Build time (one call per level, sized to that
// level's child count). Any backend.Backend works; the descent relies
// only on the DequeueRange contract.
func NewOn(linkRateGbps float64, rootPolicy *Policy, factory func(capacity int) backend.Backend) *Hierarchy {
	if linkRateGbps <= 0 {
		panic(fmt.Sprintf("hier: link rate must be positive, got %v", linkRateGbps))
	}
	if rootPolicy == nil {
		panic("hier: root policy must not be nil")
	}
	if factory == nil {
		panic("hier: backend factory must not be nil")
	}
	h := &Hierarchy{
		LinkRateGbps: linkRateGbps,
		Strict:       true,
		factory:      factory,
		leaves:       make(map[flowq.FlowID]*Child),
		parentOf:     make(map[flowq.FlowID]*Node),
	}
	h.root = &Node{Name: "root", Policy: rootPolicy, h: h}
	return h
}

// NewPartitioned creates a hierarchy in partitioned mode over the
// default paper-exact list: every node's logical PIEO is a contiguous ID
// band of one shared physical PIEO (§4.2) instead of a per-level list.
func NewPartitioned(linkRateGbps float64, rootPolicy *Policy) *Hierarchy {
	return NewPartitionedOn(linkRateGbps, rootPolicy, func(n int) backend.Backend {
		return backend.NewCoreList(n)
	})
}

// NewPartitionedOn creates a partitioned-mode hierarchy whose single
// shared physical PIEO is built by factory at Build time, sized to the
// total child count across every level. On the sharded engine, node
// dequeues compile to the per-shard DequeueRangeBelowSeq ranged
// tournament; any backend.Backend satisfying the DequeueRange contract
// works.
func NewPartitionedOn(linkRateGbps float64, rootPolicy *Policy, factory func(capacity int) backend.Backend) *Hierarchy {
	h := NewOn(linkRateGbps, rootPolicy, factory)
	h.partitioned = true
	return h
}

// FaultStats returns the non-strict fault counters.
func (h *Hierarchy) FaultStats() backend.FaultStats { return h.faults }

// LastFault returns the most recent non-strict fault, nil if none.
func (h *Hierarchy) LastFault() error { return h.lastErr }

// Root returns the root node.
func (h *Hierarchy) Root() *Node { return h.root }

func (h *Hierarchy) mustNotBeBuilt() {
	if h.built {
		panic("hier: topology is frozen after Build")
	}
}

// Build freezes the topology: it assigns contiguous child-index ranges
// per parent at every depth (the paper's logical partitioning) and
// allocates the physical structure — one PIEO per level, or (partitioned
// mode) one shared PIEO whose ID space is carved into per-node bands. It
// must be called exactly once before traffic.
func (h *Hierarchy) Build() {
	h.mustNotBeBuilt()
	h.built = true
	if h.partitioned {
		h.buildPartitioned()
		return
	}

	// Breadth-first: assign ids depth by depth so siblings are
	// contiguous and each parent gets [lo, hi].
	level := []*Node{h.root}
	for len(level) > 0 {
		var next []*Node
		nextID := uint32(0)
		index := make(map[uint32]*Child)
		wall := true
		for _, n := range level {
			if len(n.children) == 0 {
				panic(fmt.Sprintf("hier: node %q has no children", n.Name))
			}
			n.lo = nextID
			for _, c := range n.children {
				c.ID = nextID
				index[c.ID] = c
				nextID++
				if c.Node != nil {
					next = append(next, c.Node)
				}
			}
			n.hi = nextID - 1
			if n.Policy.DequeueTime != nil {
				wall = false
			}
		}
		h.levels = append(h.levels, h.factory(int(nextID)))
		h.wall = append(h.wall, wall)
		h.byID = append(h.byID, index)
		h.nodesAt = append(h.nodesAt, level)
		level = next
	}
}

// buildPartitioned freezes a partitioned-mode topology: one shared
// physical PIEO sized to the total child count, one Partition (ID band)
// per node. IDs are globally unique across all depths, so a ranged
// dequeue on a node's band can never observe another node's children.
func (h *Hierarchy) buildPartitioned() {
	total := 0
	stack := []*Node{h.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(n.children) == 0 {
			panic(fmt.Sprintf("hier: node %q has no children", n.Name))
		}
		total += len(n.children)
		for _, c := range n.children {
			if c.Node != nil {
				stack = append(stack, c.Node)
			}
		}
	}
	h.pt = NewPartitioner(h.factory(total))

	level := []*Node{h.root}
	for len(level) > 0 {
		var next []*Node
		index := make(map[uint32]*Child)
		wall := true
		for _, n := range level {
			if n.Policy.DequeueTime != nil {
				wall = false
			}
		}
		for _, n := range level {
			part, err := h.pt.Alloc(len(n.children), wall)
			if err != nil {
				panic(fmt.Sprintf("hier: allocate band for node %q: %v", n.Name, err))
			}
			n.part = part
			n.lo, n.hi = part.Lo(), part.Hi()
			for _, c := range n.children {
				id, ok := part.NextID()
				if !ok {
					panic(fmt.Sprintf("hier: band of node %q exhausted", n.Name))
				}
				c.ID = id
				index[id] = c
				if c.Node != nil {
					next = append(next, c.Node)
				}
			}
		}
		h.wall = append(h.wall, wall)
		h.byID = append(h.byID, index)
		h.nodesAt = append(h.nodesAt, level)
		level = next
	}
}

// insertEntry inserts child c into node n's logical PIEO and charges the
// node's operation counters. Callers own n.active and fault accounting.
func (h *Hierarchy) insertEntry(n *Node, c *Child) error {
	e := core.Entry{ID: c.ID, Rank: c.Rank, SendTime: c.SendTime}
	var err error
	if h.partitioned {
		err = h.pt.Enqueue(n.part, e)
	} else {
		err = h.levels[n.depth].Enqueue(e)
	}
	if err == nil {
		n.stats.Enqueues++
	}
	return err
}

// extractEntry extracts the smallest-ranked eligible child of n's
// logical PIEO at predicate time t.
func (h *Hierarchy) extractEntry(n *Node, t clock.Time) (core.Entry, bool) {
	var e core.Entry
	var ok bool
	if h.partitioned {
		e, ok = h.pt.Dequeue(n.part, t)
	} else {
		e, ok = h.levels[n.depth].DequeueRange(t, n.lo, n.hi)
	}
	if ok {
		n.stats.Dequeues++
	} else {
		n.stats.EmptyDequeues++
	}
	return e, ok
}

// nodeContains reports whether child id is currently inside n's logical
// PIEO.
func (h *Hierarchy) nodeContains(n *Node, id uint32) bool {
	if h.partitioned {
		return n.part.Contains(id)
	}
	return h.levels[n.depth].Contains(id)
}

// WireTime returns the wire time of size bytes on the hierarchy's link.
func (h *Hierarchy) WireTime(size uint32) clock.Time {
	ns := float64(size) * 8 / h.LinkRateGbps
	if ns < 1 {
		ns = 1
	}
	return clock.Time(ns)
}

// Leaf returns the child entity for flow id, for control-plane
// configuration.
func (h *Hierarchy) Leaf(id flowq.FlowID) *Child {
	c := h.leaves[id]
	if c == nil {
		panic(fmt.Sprintf("hier: unknown flow %d", id))
	}
	return c
}

// Levels returns the number of scheduling levels.
func (h *Hierarchy) Levels() int { return len(h.wall) }

// Level exposes the physical PIEO at depth d, for tests and resource
// accounting. In partitioned mode every depth shares the one physical
// structure, so the shared backend is returned for any d.
func (h *Hierarchy) Level(d int) backend.Backend {
	if h.partitioned {
		return h.pt.Backend()
	}
	return h.levels[d]
}

// Partitioned reports whether the hierarchy multiplexes its logical
// PIEOs onto one shared physical backend.
func (h *Hierarchy) Partitioned() bool { return h.partitioned }

// Partitioner exposes the band allocator in partitioned mode (nil in
// per-level mode), for tests and invariant checks.
func (h *Hierarchy) Partitioner() *Partitioner { return h.pt }

// Nodes returns every interior node in BFS order (root first). Only
// valid after Build.
func (h *Hierarchy) Nodes() []*Node {
	var out []*Node
	for _, level := range h.nodesAt {
		out = append(out, level...)
	}
	return out
}

// BackendStats returns the operation counters of the physical
// structure(s): the sum over per-level backends, or the shared backend's
// counters in partitioned mode.
func (h *Hierarchy) BackendStats() backend.Stats {
	if h.partitioned {
		return h.pt.Backend().Stats()
	}
	var total backend.Stats
	for _, list := range h.levels {
		total.Add(list.Stats())
	}
	return total
}

// OnArrival implements netsim.Scheduler.
func (h *Hierarchy) OnArrival(now clock.Time, p flowq.Packet) {
	if !h.built {
		panic("hier: OnArrival before Build")
	}
	c := h.leaves[p.Flow]
	if c == nil {
		panic(fmt.Sprintf("hier: packet for unknown flow %d", p.Flow))
	}
	wasEmpty := c.Queue.Empty()
	c.Queue.Push(p)
	if wasEmpty {
		h.enqueueChild(now, h.parentOf[p.Flow], c)
	}
}

// enqueueChild inserts c into n's logical PIEO (unless it is already
// there or has nothing to send) and propagates "logical queue went
// non-empty" up the tree (§4.3 enqueue path).
func (h *Hierarchy) enqueueChild(now clock.Time, n *Node, c *Child) {
	if h.nodeContains(n, c.ID) {
		return
	}
	if c.IsLeaf() {
		if c.Queue.Empty() {
			return
		}
	} else if c.Node.active == 0 {
		return
	}
	n.Policy.preEnqueue(n, now, c)
	if err := h.insertEntry(n, c); err != nil {
		if h.Strict {
			panic(fmt.Sprintf("hier: enqueue child %d at depth %d: %v", c.ID, n.depth, err))
		}
		// Degraded: the child stays out of its parent's logical PIEO and
		// loses its turn until the next activation re-attempts the insert.
		h.faults.EnqueueFailures++
		n.faults.EnqueueFailures++
		h.lastErr = fmt.Errorf("hier: enqueue child %d at depth %d: %w", c.ID, n.depth, err)
		return
	}
	n.active++
	if n.parent != nil {
		h.enqueueChild(now, n.parent, n.self)
	}
}

// pathStep records one hop of a successful root-to-leaf descent.
type pathStep struct {
	n *Node
	c *Child
}

// NextPacket implements netsim.Scheduler: descend from the root PIEO,
// extracting each winner's logical PIEO at the next level, transmit the
// leaf's head packet, then run post-dequeue bottom-up and re-enqueue
// still-backlogged ancestors.
func (h *Hierarchy) NextPacket(now clock.Time) (flowq.Packet, bool) {
	if !h.built {
		panic("hier: NextPacket before Build")
	}
	// descend appends steps deepest-first: path[0] is the leaf hop,
	// path[len-1] the root hop.
	var path []pathStep
	if !h.descend(h.root, now, &path) {
		return flowq.Packet{}, false
	}
	leaf := path[0].c
	p, ok := leaf.Queue.Pop()
	if !ok {
		panic(fmt.Sprintf("hier: leaf flow %d scheduled with empty queue", leaf.Flow))
	}
	// Post-dequeue bottom-up for the whole path FIRST, so every
	// ancestor's state (tokens, virtual clocks) is charged before any
	// re-enqueue computes a fresh rank/send time — re-enqueueing the
	// leaf would otherwise propagate upward past uncharged ancestors.
	for _, step := range path {
		step.n.Policy.postDequeue(step.n, now, step.c, p.Size)
	}
	// Then re-enqueue bottom-up while each (logical) queue stays
	// non-empty; upward propagation inside enqueueChild is idempotent.
	// Mark the whole path as requeues FIRST: the leaf's re-enqueue
	// propagates upward and must not mistake a continuously backlogged
	// ancestor for a fresh activation.
	for _, step := range path {
		step.c.requeued = true
	}
	for _, step := range path {
		h.enqueueChild(now, step.n, step.c)
	}
	for _, step := range path {
		step.c.requeued = false
	}
	return p, true
}

// descend extracts the smallest-ranked eligible child of n; for interior
// winners it recurses into their logical PIEOs. A winner whose subtree
// yields nothing eligible (a shaped child whose descendants are all
// deferred) is set aside and retried last, so one blocked branch cannot
// mask its siblings.
func (h *Hierarchy) descend(n *Node, now clock.Time, path *[]pathStep) bool {
	t := now
	if n.Policy.DequeueTime != nil {
		t = n.Policy.DequeueTime(n, now)
	}
	var skipped []*Child
	defer func() {
		// Put deferred children back; their policies' PreEnqueue hooks
		// are idempotent by contract. These are continuations, not
		// activations.
		for _, c := range skipped {
			c.requeued = true
			n.Policy.preEnqueue(n, now, c)
			c.requeued = false
			if err := h.insertEntry(n, c); err != nil {
				if h.Strict {
					panic(fmt.Sprintf("hier: re-enqueue deferred child %d: %v", c.ID, err))
				}
				h.faults.EnqueueFailures++
				n.faults.EnqueueFailures++
				h.lastErr = fmt.Errorf("hier: re-enqueue deferred child %d: %w", c.ID, err)
				continue
			}
			n.active++
		}
	}()
	retriedIdle := false
	for {
		e, ok := h.extractEntry(n, t)
		if !ok {
			if !retriedIdle && n.active > 0 && n.Policy.OnIdle != nil && n.Policy.OnIdle(n, now) {
				retriedIdle = true
				if n.Policy.DequeueTime != nil {
					t = n.Policy.DequeueTime(n, now)
				}
				continue
			}
			return false
		}
		n.active--
		c := h.byID[n.depth][e.ID]
		if c == nil {
			if h.Strict {
				panic(fmt.Sprintf("hier: depth %d returned unknown child %d", n.depth, e.ID))
			}
			// A core.ErrUnknownFlow condition: discard the phantom element
			// and keep descending.
			h.faults.UnknownFlows++
			n.faults.UnknownFlows++
			h.lastErr = fmt.Errorf("%w: depth %d returned id %d", core.ErrUnknownFlow, n.depth, e.ID)
			continue
		}
		if c.IsLeaf() {
			*path = append(*path, pathStep{n, c})
			return true
		}
		if h.descend(c.Node, now, path) {
			*path = append(*path, pathStep{n, c})
			return true
		}
		skipped = append(skipped, c)
	}
}

// NextWake implements netsim.WakeHinter: the earliest *future* send_time
// across every level whose predicates live in the wall-clock domain.
// Levels whose minimum is already eligible are skipped — if they could
// transmit, NextPacket would have found them; the blocker is a shaped
// ancestor whose send_time lies ahead.
func (h *Hierarchy) NextWake(now clock.Time) (clock.Time, bool) {
	best := clock.Never
	found := false
	for d := range h.wall {
		if !h.wall[d] {
			continue
		}
		if t, ok := h.depthMinSendTime(d); ok && t > now && t < best {
			best = t
			found = true
		}
	}
	return best, found
}

// depthMinSendTime returns the smallest send_time queued anywhere at
// depth d: the level list's O(1) minimum in per-level mode, the fold of
// the per-partition wheel minima in partitioned mode. Both compute the
// same value for the same traffic, so wake instants are mode-invariant.
func (h *Hierarchy) depthMinSendTime(d int) (clock.Time, bool) {
	if !h.partitioned {
		return h.levels[d].MinSendTime()
	}
	best := clock.Never
	found := false
	for _, n := range h.nodesAt[d] {
		if t, ok := n.part.MinSendTime(); ok && t < best {
			best = t
			found = true
		}
	}
	return best, found
}

// Backlog returns the total packets queued across all leaf flows.
func (h *Hierarchy) Backlog() int {
	total := 0
	for _, c := range h.leaves {
		total += c.Queue.Len()
	}
	return total
}
