package hier

import (
	"math"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/netsim"
	"pieo/internal/stats"
)

const linkGbps = 40

// twoLevel builds the paper's §6.3 topology scaled down: nVMs interior
// nodes under a root policy, nFlows flows per VM under a per-VM policy.
func twoLevel(rootPolicy, vmPolicy *Policy, nVMs, nFlows int) (*Hierarchy, []*Node) {
	h := New(linkGbps, rootPolicy)
	var vms []*Node
	id := flowq.FlowID(0)
	for v := 0; v < nVMs; v++ {
		vm := h.Root().AddNode("vm", vmPolicy)
		for f := 0; f < nFlows; f++ {
			vm.AddFlow(id)
			id++
		}
		vms = append(vms, vm)
	}
	h.Build()
	return h, vms
}

func TestBuildAssignsContiguousRanges(t *testing.T) {
	h, vms := twoLevel(RoundRobin(), RoundRobin(), 3, 4)
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d, want 2", h.Levels())
	}
	for i, vm := range vms {
		if vm.lo != uint32(i*4) || vm.hi != uint32(i*4+3) {
			t.Fatalf("vm %d range = [%d,%d], want [%d,%d]", i, vm.lo, vm.hi, i*4, i*4+3)
		}
	}
	if h.Root().lo != 0 || h.Root().hi != 2 {
		t.Fatalf("root range = [%d,%d], want [0,2]", h.Root().lo, h.Root().hi)
	}
}

func TestBuildValidation(t *testing.T) {
	h := New(linkGbps, RoundRobin())
	h.Root().AddNode("empty", RoundRobin()) // node with no children
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted a childless node")
		}
	}()
	h.Build()
}

func TestAddAfterBuildPanics(t *testing.T) {
	h, _ := twoLevel(RoundRobin(), RoundRobin(), 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode after Build did not panic")
		}
	}()
	h.Root().AddNode("late", RoundRobin())
}

func TestDuplicateFlowPanics(t *testing.T) {
	h := New(linkGbps, RoundRobin())
	vm := h.Root().AddNode("vm", RoundRobin())
	vm.AddFlow(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddFlow did not panic")
		}
	}()
	vm.AddFlow(1)
}

func TestSinglePathDelivery(t *testing.T) {
	h, _ := twoLevel(RoundRobin(), RoundRobin(), 2, 2)
	h.OnArrival(0, flowq.Packet{Flow: 3, Size: 100})
	p, ok := h.NextPacket(0)
	if !ok || p.Flow != 3 {
		t.Fatalf("NextPacket = flow %d ok=%v, want 3", p.Flow, ok)
	}
	if _, ok := h.NextPacket(0); ok {
		t.Fatal("NextPacket succeeded on drained hierarchy")
	}
	if h.Backlog() != 0 {
		t.Fatalf("Backlog = %d, want 0", h.Backlog())
	}
}

func TestRoundRobinAcrossVMs(t *testing.T) {
	h, _ := twoLevel(RoundRobin(), RoundRobin(), 2, 1)
	// Flows 0 (vm0) and 1 (vm1), both backlogged: strict alternation.
	for i := 0; i < 4; i++ {
		h.OnArrival(0, flowq.Packet{Flow: 0, Size: 100, Seq: uint64(i)})
		h.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Seq: uint64(10 + i)})
	}
	want := []flowq.FlowID{0, 1, 0, 1, 0, 1, 0, 1}
	for i, w := range want {
		p, ok := h.NextPacket(0)
		if !ok || p.Flow != w {
			t.Fatalf("NextPacket #%d = flow %d ok=%v, want %d", i, p.Flow, ok, w)
		}
	}
}

func TestStrictPriorityAtRoot(t *testing.T) {
	h := New(linkGbps, StrictPriority())
	hi := h.Root().AddNode("hi", RoundRobin())
	lo := h.Root().AddNode("lo", RoundRobin())
	hi.AddFlow(1)
	lo.AddFlow(2)
	h.Build()
	hi.Self().Priority = 1
	lo.Self().Priority = 2

	h.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})
	h.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	p, _ := h.NextPacket(0)
	if p.Flow != 1 {
		t.Fatalf("first = flow %d, want 1 (high-priority VM)", p.Flow)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// root -> tenants -> VMs -> flows: three physical PIEOs.
	h := New(linkGbps, RoundRobin())
	id := flowq.FlowID(0)
	for tn := 0; tn < 2; tn++ {
		tenant := h.Root().AddNode("tenant", RoundRobin())
		for v := 0; v < 2; v++ {
			vm := tenant.AddNode("vm", RoundRobin())
			for f := 0; f < 2; f++ {
				vm.AddFlow(id)
				id++
			}
		}
	}
	h.Build()
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", h.Levels())
	}
	for fid := flowq.FlowID(0); fid < 8; fid++ {
		h.OnArrival(0, flowq.Packet{Flow: fid, Size: 100})
	}
	seen := map[flowq.FlowID]bool{}
	for i := 0; i < 8; i++ {
		p, ok := h.NextPacket(0)
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		seen[p.Flow] = true
	}
	if len(seen) != 8 {
		t.Fatalf("served %d distinct flows, want 8", len(seen))
	}
	// Round-robin at every level: tenants alternate.
	if _, ok := h.NextPacket(0); ok {
		t.Fatal("extra packet after drain")
	}
}

func TestTokenBucketRateLimitAtRoot(t *testing.T) {
	// The Fig 11 shape in miniature: one VM limited to 10 Gbps with 10
	// backlogged flows fair-queued inside.
	h, vms := twoLevel(TokenBucket(), WF2Q(), 1, 10)
	vm := vms[0]
	vm.Self().RateGbps = 10
	vm.Self().Burst = 1500
	vm.Self().Tokens = 1500

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	meter := stats.NewRateMeter(0)
	perFlow := map[flowq.FlowID]uint64{}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		meter.Record(now, p.Size)
		perFlow[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < 10; f++ {
		seq++
		sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
	}
	duration := clock.Time(10_000_000)
	sim.Run(duration)
	meter.CloseAt(duration)

	if got := meter.Gbps(); math.Abs(got-10) > 0.4 {
		t.Fatalf("VM rate = %.2f Gbps, want ~10", got)
	}
	// Fair queueing inside the VM: all 10 flows share equally.
	var shares []float64
	for f := flowq.FlowID(0); f < 10; f++ {
		shares = append(shares, float64(perFlow[f]))
	}
	if j := stats.JainIndex(shares); j < 0.99 {
		t.Fatalf("intra-VM Jain index = %v (%v)", j, perFlow)
	}
}

func TestTwoVMsIndependentLimits(t *testing.T) {
	h, vms := twoLevel(TokenBucket(), WF2Q(), 2, 2)
	limits := []float64{4, 12}
	for i, vm := range vms {
		vm.Self().RateGbps = limits[i]
		vm.Self().Burst = 1500
		vm.Self().Tokens = 1500
	}
	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	perVM := map[int]*stats.RateMeter{0: stats.NewRateMeter(0), 1: stats.NewRateMeter(0)}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		perVM[int(p.Flow)/2].Record(now, p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < 4; f++ {
		seq++
		sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
	}
	duration := clock.Time(10_000_000)
	sim.Run(duration)
	for i, m := range perVM {
		m.CloseAt(duration)
		if got := m.Gbps(); math.Abs(got-limits[i]) > 0.5 {
			t.Fatalf("VM %d rate = %.2f, want ~%.0f", i, got, limits[i])
		}
	}
}

func TestWFQPolicyWeightedSharing(t *testing.T) {
	h, vms := twoLevel(WFQ(), RoundRobin(), 2, 1)
	vms[0].Self().Weight = 3
	vms[1].Self().Weight = 1

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	bytes := map[flowq.FlowID]uint64{}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	// Seed a few packets per flow so a queue never empties in the gap
	// between a transmission completing and its closed-loop replacement
	// arrival being processed.
	for f := flowq.FlowID(0); f < 2; f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
		}
	}
	sim.Run(4_000_000)
	r := float64(bytes[0]) / float64(bytes[1])
	if math.Abs(r-3) > 0.25 {
		t.Fatalf("WFQ 3:1 ratio = %v (%v)", r, bytes)
	}
}

func TestShapedBranchDoesNotBlockSiblings(t *testing.T) {
	// VM0 is rate-limited to a trickle; VM1 is unlimited... under a
	// round-robin root both VMs' eligibility lives at the root level via
	// TokenBucket, so use TB root with very different rates and verify
	// VM1 is not starved while VM0 waits for tokens.
	h, vms := twoLevel(TokenBucket(), RoundRobin(), 2, 1)
	vms[0].Self().RateGbps = 0.1
	vms[0].Self().Burst = 1500
	vms[1].Self().RateGbps = 30
	vms[1].Self().Burst = 1500
	vms[1].Self().Tokens = 1500

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	bytes := map[flowq.FlowID]uint64{}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes[p.Flow] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < 2; f++ {
		seq++
		sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
	}
	sim.Run(2_000_000)
	if bytes[1] == 0 {
		t.Fatal("unlimited VM starved behind the shaped VM")
	}
	if bytes[1] < 50*bytes[0] {
		t.Fatalf("share skew too small: %v", bytes)
	}
}

func TestDRRPolicyQuantumRatio(t *testing.T) {
	// Two VMs with 2:1 quanta under a DRR root split the link 2:1.
	h, vms := twoLevel(DRR(), RoundRobin(), 2, 2)
	vms[0].Self().Quantum = 3000
	vms[1].Self().Quantum = 1500

	sim := netsim.New(netsim.Link{RateGbps: linkGbps}, h)
	bytes := map[int]uint64{}
	var seq uint64
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) {
		bytes[int(p.Flow)/2] += uint64(p.Size)
		seq++
		sim.InjectOne(now, flowq.Packet{Flow: p.Flow, Size: p.Size, Seq: seq})
	}
	for f := flowq.FlowID(0); f < 4; f++ {
		for k := 0; k < 4; k++ {
			seq++
			sim.InjectOne(0, flowq.Packet{Flow: f, Size: 1500, Seq: seq})
		}
	}
	sim.Run(4_000_000)
	r := float64(bytes[0]) / float64(bytes[1])
	if math.Abs(r-2) > 0.1 {
		t.Fatalf("DRR 2:1 quanta ratio = %v (%v)", r, bytes)
	}
}

func TestDRRPolicyNoStarvation(t *testing.T) {
	// Sub-MTU quantum still makes progress across rounds.
	h, vms := twoLevel(DRR(), RoundRobin(), 3, 1)
	for _, vm := range vms {
		vm.Self().Quantum = 700
	}
	for f := flowq.FlowID(0); f < 3; f++ {
		h.OnArrival(0, flowq.Packet{Flow: f, Size: 1500})
		h.OnArrival(0, flowq.Packet{Flow: f, Size: 1500})
	}
	seen := map[flowq.FlowID]int{}
	for i := 0; i < 6; i++ {
		p, ok := h.NextPacket(clock.Time(i))
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		seen[p.Flow]++
	}
	for f := flowq.FlowID(0); f < 3; f++ {
		if seen[f] != 2 {
			t.Fatalf("flow %d served %d times, want 2 (%v)", f, seen[f], seen)
		}
	}
}

func TestNextWakeFromRootShaper(t *testing.T) {
	h, vms := twoLevel(TokenBucket(), RoundRobin(), 1, 1)
	vms[0].Self().RateGbps = 1
	vms[0].Self().Burst = 1500
	// Bucket starts empty: the head packet is deferred.
	h.OnArrival(0, flowq.Packet{Flow: 0, Size: 1500})
	if _, ok := h.NextPacket(0); ok {
		t.Fatal("packet sent with empty bucket")
	}
	at, ok := h.NextWake(0)
	if !ok {
		t.Fatal("no wake hint from wall-domain root level")
	}
	// 1500 bytes at 1 Gbps = 12000 ns to fill the bucket.
	if at != 12000 {
		t.Fatalf("wake at %v, want 12000", at)
	}
	if p, ok := h.NextPacket(12000); !ok || p.Flow != 0 {
		t.Fatalf("NextPacket(12000) = %+v ok=%v", p, ok)
	}
}

func TestHierarchyThirtyThousandFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("30K-flow hierarchy")
	}
	// The scalability claim at the hierarchy level: 300 VMs x 100 flows
	// = 30K leaves across two physical PIEOs, one service round each.
	const (
		nVMs  = 300
		perVM = 100
	)
	h, _ := twoLevel(RoundRobin(), WF2Q(), nVMs, perVM)
	for f := 0; f < nVMs*perVM; f++ {
		h.OnArrival(0, flowq.Packet{Flow: flowq.FlowID(f), Size: 1500, Seq: uint64(f)})
	}
	served := make(map[flowq.FlowID]bool, nVMs*perVM)
	for i := 0; i < nVMs*perVM; i++ {
		p, ok := h.NextPacket(0)
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		if served[p.Flow] {
			t.Fatalf("flow %d served twice in one round", p.Flow)
		}
		served[p.Flow] = true
	}
	for d := 0; d < h.Levels(); d++ {
		if err := backend.CheckInvariants(h.Level(d)); err != nil {
			t.Fatalf("level %d: %v", d, err)
		}
	}
}

func TestLeafAccessors(t *testing.T) {
	h, _ := twoLevel(RoundRobin(), RoundRobin(), 1, 2)
	if c := h.Leaf(1); c == nil || !c.IsLeaf() || c.Flow != 1 {
		t.Fatalf("Leaf(1) = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Leaf(99) did not panic")
		}
	}()
	h.Leaf(99)
}

func TestLevelListInvariants(t *testing.T) {
	h, _ := twoLevel(RoundRobin(), WF2Q(), 3, 3)
	for f := flowq.FlowID(0); f < 9; f++ {
		h.OnArrival(0, flowq.Packet{Flow: f, Size: 100})
		h.OnArrival(0, flowq.Packet{Flow: f, Size: 100})
	}
	for i := 0; i < 18; i++ {
		if _, ok := h.NextPacket(clock.Time(i)); !ok {
			t.Fatalf("drained early at %d", i)
		}
		for d := 0; d < h.Levels(); d++ {
			if err := backend.CheckInvariants(h.Level(d)); err != nil {
				t.Fatalf("level %d after packet %d: %v", d, i, err)
			}
		}
	}
}
