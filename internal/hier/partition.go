// Logical PIEO partitioning (§4.2): many logical schedulers multiplexed
// onto ONE physical PIEO. Each logical scheduler owns a contiguous band
// of the 32-bit element-ID space, and extracting from it is a ranged
// dequeue whose predicate is the paper's
// (eligible) && (band.lo <= f.index <= band.hi) — on the sharded engine
// that compiles down to per-shard DequeueRangeBelowSeq calls under the
// ranged tournament, on core.List to the rank-ordered banded scan.
//
// The Partitioner is the allocator for those bands: a first-fit free-span
// allocator over [0, 2^32) that hands each logical scheduler a
// power-of-two-headroom band, grows it in place when the adjacent span is
// still free (relocating otherwise), splits it at the midpoint, and
// retires it back into the free list. Per partition it layers a small
// timing wheel (DESIGN.md §11) over the band as the per-range eligibility
// summary: the shared backend's MinSendTime mixes every tenant's time
// domain, so per-range wake-ups must come from a per-range index.
//
// Concurrency/memory-ordering contract: the Partitioner's bookkeeping
// (bands, handle maps, wheels) is NOT synchronized — it assumes a single
// caller thread, exactly like the hierarchy that owns it. The shared
// backend may be internally concurrent (the sharded engine takes its own
// per-shard locks), but the Partitioner never relies on that: all
// happens-before edges between partition bookkeeping and backend state
// come from the single caller's program order. See DESIGN.md §13.
package hier

import (
	"fmt"
	"math"
	"sort"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/timewheel"
)

// span is an inclusive ID range [lo, hi].
type span struct{ lo, hi uint32 }

func (s span) size() uint64 { return uint64(s.hi) - uint64(s.lo) + 1 }

// Partition is one logical PIEO: a band of the shared backend's ID space
// plus the bookkeeping that makes it behave like a private list — a
// resident set (for Contains and conservation) and, for wall-clock
// partitions, a timing wheel indexing resident send_times so
// MinSendTime/NextWakeAfter are exact per range.
type Partition struct {
	pt   *Partitioner
	band span
	used uint32 // IDs handed out by NextID, from band.lo upward

	// wall marks a partition whose send_times live in the wall-clock
	// domain; only those maintain the eligibility wheel (virtual-time
	// partitions have no meaningful wall wake instant).
	wall    bool
	wheel   *timewheel.Wheel
	handles map[uint32]int32 // resident ID -> wheel handle (wall) or -1

	retired bool
}

// Lo returns the band's first ID.
func (p *Partition) Lo() uint32 { return p.band.lo }

// Hi returns the band's last ID.
func (p *Partition) Hi() uint32 { return p.band.hi }

// Len returns the number of resident elements.
func (p *Partition) Len() int { return len(p.handles) }

// Cap returns the band width — the number of IDs the partition can name.
func (p *Partition) Cap() int { return int(p.band.size()) }

// Wall reports whether the partition maintains a wall-clock wheel.
func (p *Partition) Wall() bool { return p.wall }

// Contains reports whether id is resident in this partition.
func (p *Partition) Contains(id uint32) bool {
	_, ok := p.handles[id]
	return ok
}

// InBand reports whether id falls inside the partition's band.
func (p *Partition) InBand(id uint32) bool { return id >= p.band.lo && id <= p.band.hi }

// NextID hands out the next unused ID in the band; ok is false when the
// band is full (the caller should Grow or Split first).
func (p *Partition) NextID() (uint32, bool) {
	if uint64(p.used) >= p.band.size() {
		return 0, false
	}
	id := p.band.lo + p.used
	p.used++
	return id, true
}

// MinSendTime returns the exact smallest send_time among resident
// elements of a wall partition; ok is false when the partition is empty
// or virtual-domain.
func (p *Partition) MinSendTime() (clock.Time, bool) {
	if p.wheel == nil {
		return 0, false
	}
	return p.wheel.MinSendTime()
}

// NextWakeAfter returns the exact smallest resident send_time strictly
// after now (clock.Never when none), for wall partitions.
func (p *Partition) NextWakeAfter(now clock.Time) clock.Time {
	if p.wheel == nil {
		return clock.Never
	}
	return p.wheel.NextWakeAfter(now)
}

func (p *Partition) mustLive(op string) {
	if p.retired {
		panic(fmt.Sprintf("hier: %s on retired partition [%d,%d]", op, p.band.lo, p.band.hi))
	}
}

// track records a resident element in the partition's indexes.
func (p *Partition) track(id uint32, sendTime clock.Time) {
	h := int32(-1)
	if p.wheel != nil {
		h = p.wheel.Insert(sendTime)
	}
	p.handles[id] = h
}

// untrack removes a resident element from the partition's indexes.
func (p *Partition) untrack(id uint32) {
	h, ok := p.handles[id]
	if !ok {
		panic(fmt.Sprintf("hier: partition [%d,%d] untracking non-resident id %d", p.band.lo, p.band.hi, id))
	}
	if p.wheel != nil {
		p.wheel.Remove(h)
	}
	delete(p.handles, id)
}

// newWheel sizes a per-partition wheel to the band: small bands get the
// 64-slot floor (~1 KiB), large ones grow toward the backend default so
// a 10k-leaf node still indexes mostly in-window.
func newWheel(capacity int) *timewheel.Wheel {
	slots := 64
	for slots < capacity && slots < 4096 {
		slots <<= 1
	}
	return timewheel.New(timewheel.Config{Slots: slots, Hint: capacity})
}

// Partitioner owns one shared physical backend and carves its ID space
// into per-logical-scheduler bands.
type Partitioner struct {
	be    backend.Backend
	parts []*Partition // live partitions, sorted by band.lo
	free  []span       // free spans, sorted, coalesced
}

// NewPartitioner wraps a shared backend the caller constructed (and must
// use exclusively through the returned Partitioner).
func NewPartitioner(be backend.Backend) *Partitioner {
	return &Partitioner{
		be:   be,
		free: []span{{0, math.MaxUint32}},
	}
}

// Backend exposes the shared physical backend for stats and tests.
func (pt *Partitioner) Backend() backend.Backend { return pt.be }

// Partitions returns the live partitions in band order (a copy).
func (pt *Partitioner) Partitions() []*Partition {
	out := make([]*Partition, len(pt.parts))
	copy(out, pt.parts)
	return out
}

// ceilPow2 rounds n up to a power of two (min 1).
func ceilPow2(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// insertPart keeps pt.parts sorted by band.lo.
func (pt *Partitioner) insertPart(p *Partition) {
	i := sort.Search(len(pt.parts), func(i int) bool { return pt.parts[i].band.lo > p.band.lo })
	pt.parts = append(pt.parts, nil)
	copy(pt.parts[i+1:], pt.parts[i:])
	pt.parts[i] = p
}

func (pt *Partitioner) removePart(p *Partition) {
	for i, q := range pt.parts {
		if q == p {
			pt.parts = append(pt.parts[:i], pt.parts[i+1:]...)
			return
		}
	}
	panic("hier: partition not found in allocator")
}

// carve takes width IDs out of a free span by first fit and returns the
// allocated span.
func (pt *Partitioner) carve(width uint64) (span, error) {
	for i, f := range pt.free {
		if f.size() < width {
			continue
		}
		got := span{f.lo, f.lo + uint32(width-1)}
		if f.size() == width {
			pt.free = append(pt.free[:i], pt.free[i+1:]...)
		} else {
			pt.free[i].lo = got.hi + 1
		}
		return got, nil
	}
	return span{}, fmt.Errorf("hier: no free span of %d ids", width)
}

// release returns a span to the free list, coalescing neighbors.
func (pt *Partitioner) release(s span) {
	i := sort.Search(len(pt.free), func(i int) bool { return pt.free[i].lo > s.lo })
	pt.free = append(pt.free, span{})
	copy(pt.free[i+1:], pt.free[i:])
	pt.free[i] = s
	// Coalesce with the right neighbor, then the left.
	if i+1 < len(pt.free) && pt.free[i].hi != math.MaxUint32 && pt.free[i].hi+1 == pt.free[i+1].lo {
		pt.free[i].hi = pt.free[i+1].hi
		pt.free = append(pt.free[:i+1], pt.free[i+2:]...)
	}
	if i > 0 && pt.free[i-1].hi != math.MaxUint32 && pt.free[i-1].hi+1 == pt.free[i].lo {
		pt.free[i-1].hi = pt.free[i].hi
		pt.free = append(pt.free[:i], pt.free[i+1:]...)
	}
}

// Alloc creates a partition sized for capacity elements, with
// power-of-two headroom so modest growth needs no relocation. wall
// selects the per-range eligibility wheel.
func (pt *Partitioner) Alloc(capacity int, wall bool) (*Partition, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("hier: partition capacity must be positive, got %d", capacity)
	}
	width := ceilPow2(uint64(capacity))
	band, err := pt.carve(width)
	if err != nil {
		return nil, err
	}
	p := &Partition{
		pt:      pt,
		band:    band,
		wall:    wall,
		handles: make(map[uint32]int32),
	}
	if wall {
		p.wheel = newWheel(capacity)
	}
	pt.insertPart(p)
	return p, nil
}

// Enqueue inserts e into the partition's logical PIEO. The entry's ID
// must fall inside the band and must not already be resident.
func (pt *Partitioner) Enqueue(p *Partition, e core.Entry) error {
	p.mustLive("Enqueue")
	if !p.InBand(e.ID) {
		return fmt.Errorf("hier: id %d outside partition band [%d,%d]", e.ID, p.band.lo, p.band.hi)
	}
	if p.Contains(e.ID) {
		return fmt.Errorf("%w: id %d already resident in partition", core.ErrDuplicate, e.ID)
	}
	if err := pt.be.Enqueue(e); err != nil {
		return err
	}
	p.track(e.ID, e.SendTime)
	return nil
}

// Dequeue extracts the smallest-ranked eligible element of the
// partition's band at time t — the §4.2 ranged predicate against the
// shared structure. It panics when the backend leaks an element from
// outside the band or one the partition never admitted: that is
// corruption, not an operational fault.
func (pt *Partitioner) Dequeue(p *Partition, t clock.Time) (core.Entry, bool) {
	p.mustLive("Dequeue")
	e, ok := pt.be.DequeueRange(t, p.band.lo, p.band.hi)
	if !ok {
		return core.Entry{}, false
	}
	if !p.InBand(e.ID) {
		panic(fmt.Sprintf("hier: ranged dequeue [%d,%d] leaked id %d", p.band.lo, p.band.hi, e.ID))
	}
	p.untrack(e.ID)
	return e, true
}

// DequeueID point-extracts a resident element by ID.
func (pt *Partitioner) DequeueID(p *Partition, id uint32) (core.Entry, bool) {
	p.mustLive("DequeueID")
	if !p.Contains(id) {
		return core.Entry{}, false
	}
	e, ok := pt.be.DequeueFlow(id)
	if !ok {
		panic(fmt.Sprintf("hier: partition [%d,%d] tracks id %d but backend has no such element", p.band.lo, p.band.hi, id))
	}
	p.untrack(id)
	return e, true
}

// UpdateRank rewrites a resident element's rank and send_time in place,
// keeping the wheel summary exact. It reports whether id was resident.
func (pt *Partitioner) UpdateRank(p *Partition, id uint32, rank uint64, sendTime clock.Time) (bool, error) {
	p.mustLive("UpdateRank")
	if !p.Contains(id) {
		return false, nil
	}
	ok, err := backend.UpdateRank(pt.be, id, rank, sendTime)
	if err != nil {
		// The fallback path (dequeue+enqueue) can fail mid-flight and
		// drop the element from the backend; resync our view.
		if !pt.be.Contains(id) {
			p.untrack(id)
		}
		return false, err
	}
	if !ok {
		panic(fmt.Sprintf("hier: partition [%d,%d] tracks id %d but backend UpdateRank missed", p.band.lo, p.band.hi, id))
	}
	if p.wheel != nil {
		p.wheel.Update(p.handles[id], sendTime)
	}
	return true, nil
}

// Grow widens the partition to hold at least capacity IDs. When the span
// adjacent to the band's top is free the band extends in place and remap
// is nil. Otherwise the partition relocates to a fresh band: every
// resident element is extracted in dequeue order (rank order, FIFO ties)
// and re-admitted at the same offset in the new band, which preserves
// relative FIFO order among equal ranks — the only order the seq
// tie-break can observe. remap then maps old ID -> new ID, and the
// caller must rewrite its own references.
func (pt *Partitioner) Grow(p *Partition, capacity int) (remap map[uint32]uint32, err error) {
	p.mustLive("Grow")
	width := ceilPow2(uint64(capacity))
	if width <= p.band.size() {
		return nil, nil // already wide enough
	}
	// In-place: the span [hi+1, lo+width-1] must be entirely free.
	if extra := width - p.band.size(); p.band.hi != math.MaxUint32 {
		wantLo := p.band.hi + 1
		if uint64(p.band.lo)+width-1 <= math.MaxUint32 {
			for i, f := range pt.free {
				if f.lo != wantLo || f.size() < extra {
					continue
				}
				if f.size() == extra {
					pt.free = append(pt.free[:i], pt.free[i+1:]...)
				} else {
					pt.free[i].lo = f.lo + uint32(extra)
				}
				p.band.hi = p.band.lo + uint32(width-1)
				return nil, nil
			}
		}
	}
	// Relocate: carve the new band first so failure leaves p intact.
	newBand, err := pt.carve(width)
	if err != nil {
		return nil, err
	}
	remap = make(map[uint32]uint32, len(p.handles))
	// Extract every resident in dequeue order. clock.Never makes every
	// send_time eligible, so this drains unconditionally.
	moved := make([]core.Entry, 0, len(p.handles))
	for {
		e, ok := pt.be.DequeueRange(clock.Never, p.band.lo, p.band.hi)
		if !ok {
			break
		}
		if !p.InBand(e.ID) {
			panic(fmt.Sprintf("hier: ranged drain [%d,%d] leaked id %d", p.band.lo, p.band.hi, e.ID))
		}
		p.untrack(e.ID)
		moved = append(moved, e)
	}
	if len(p.handles) != 0 {
		panic(fmt.Sprintf("hier: partition [%d,%d] retained %d residents after drain", p.band.lo, p.band.hi, len(p.handles)))
	}
	oldBand := p.band
	p.band = newBand
	pt.removePart(p)
	pt.insertPart(p)
	pt.release(oldBand)
	for _, e := range moved {
		newID := newBand.lo + (e.ID - oldBand.lo)
		remap[e.ID] = newID
		e2 := e
		e2.ID = newID
		if err := pt.be.Enqueue(e2); err != nil {
			panic(fmt.Sprintf("hier: relocation re-admit id %d: %v", newID, err))
		}
		p.track(newID, e2.SendTime)
	}
	return remap, nil
}

// Split halves the partition's band: p keeps the lower half and the
// returned partition owns the upper half, inheriting any residents whose
// IDs fall there. No backend traffic: bands stay disjoint, elements stay
// physically in place, only the per-range bookkeeping migrates.
func (pt *Partitioner) Split(p *Partition) (*Partition, error) {
	p.mustLive("Split")
	if p.band.size() < 2 {
		return nil, fmt.Errorf("hier: partition [%d,%d] too narrow to split", p.band.lo, p.band.hi)
	}
	half := p.band.size() / 2
	mid := p.band.lo + uint32(half)
	q := &Partition{
		pt:      pt,
		band:    span{mid, p.band.hi},
		wall:    p.wall,
		handles: make(map[uint32]int32),
	}
	if p.wall {
		q.wheel = newWheel(int(p.band.size() - half))
	}
	for id, h := range p.handles {
		if id < mid {
			continue
		}
		t := clock.Time(0)
		if p.wheel != nil {
			t = p.wheel.TimeOf(h)
		}
		p.untrack(id)
		q.track(id, t)
	}
	p.band.hi = mid - 1
	if used := uint64(p.used); used > half {
		q.used = uint32(used - half)
		p.used = uint32(half)
	}
	pt.insertPart(q)
	return q, nil
}

// Retire drains every resident element out of the shared backend and
// returns the band to the free list. The partition is dead afterwards.
func (pt *Partitioner) Retire(p *Partition) {
	p.mustLive("Retire")
	for id := range p.handles {
		if _, ok := pt.be.DequeueFlow(id); !ok {
			panic(fmt.Sprintf("hier: retire: partition [%d,%d] tracks id %d but backend has no such element", p.band.lo, p.band.hi, id))
		}
		p.untrack(id)
	}
	pt.removePart(p)
	pt.release(p.band)
	p.retired = true
	p.wheel = nil
}

// CheckInvariants validates the allocator and every partition against
// the shared backend: bands and free spans must tile [0, 2^32) without
// overlap, every backend-resident element must be tracked by exactly the
// partition whose band covers it (no cross-partition leakage), and each
// wall partition's wheel must index exactly its residents' send_times.
func (pt *Partitioner) CheckInvariants() error {
	// Tiling: merge partitions and free spans, sorted; they must be
	// disjoint and cover the whole space.
	type tagged struct {
		s    span
		free bool
	}
	all := make([]tagged, 0, len(pt.parts)+len(pt.free))
	for _, p := range pt.parts {
		all = append(all, tagged{p.band, false})
	}
	for _, f := range pt.free {
		all = append(all, tagged{f, true})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s.lo < all[j].s.lo })
	next := uint64(0)
	for _, t := range all {
		if uint64(t.s.lo) != next {
			return fmt.Errorf("hier: id space gap/overlap at %d (span [%d,%d] free=%v)", next, t.s.lo, t.s.hi, t.free)
		}
		if t.s.hi < t.s.lo {
			return fmt.Errorf("hier: inverted span [%d,%d]", t.s.lo, t.s.hi)
		}
		next = uint64(t.s.hi) + 1
	}
	if next != 1<<32 {
		return fmt.Errorf("hier: id space ends at %d, want 2^32", next)
	}
	for i := 1; i < len(pt.free); i++ {
		if pt.free[i-1].hi != math.MaxUint32 && pt.free[i-1].hi+1 == pt.free[i].lo {
			return fmt.Errorf("hier: uncoalesced free spans [%d,%d] [%d,%d]",
				pt.free[i-1].lo, pt.free[i-1].hi, pt.free[i].lo, pt.free[i].hi)
		}
	}
	// Residency: bucket the backend's snapshot by band.
	perPart := make(map[*Partition]int)
	for _, e := range pt.be.Snapshot() {
		i := sort.Search(len(pt.parts), func(i int) bool { return pt.parts[i].band.hi >= e.ID })
		if i == len(pt.parts) || !pt.parts[i].InBand(e.ID) {
			return fmt.Errorf("hier: backend element id %d outside every partition band", e.ID)
		}
		p := pt.parts[i]
		h, tracked := p.handles[e.ID]
		if !tracked {
			return fmt.Errorf("hier: backend element id %d not tracked by its partition [%d,%d]", e.ID, p.band.lo, p.band.hi)
		}
		if p.wheel != nil {
			if got := p.wheel.TimeOf(h); got != e.SendTime {
				return fmt.Errorf("hier: partition [%d,%d] wheel has t=%d for id %d, backend says %d",
					p.band.lo, p.band.hi, got, e.ID, e.SendTime)
			}
		}
		perPart[p]++
	}
	total := 0
	for _, p := range pt.parts {
		if got := perPart[p]; got != len(p.handles) {
			return fmt.Errorf("hier: partition [%d,%d] tracks %d residents, backend holds %d",
				p.band.lo, p.band.hi, len(p.handles), got)
		}
		if p.wheel != nil {
			if p.wheel.Len() != len(p.handles) {
				return fmt.Errorf("hier: partition [%d,%d] wheel indexes %d, tracks %d",
					p.band.lo, p.band.hi, p.wheel.Len(), len(p.handles))
			}
			if err := p.wheel.CheckInvariants(); err != nil {
				return fmt.Errorf("hier: partition [%d,%d]: %w", p.band.lo, p.band.hi, err)
			}
		}
		if uint64(p.used) > p.band.size() {
			return fmt.Errorf("hier: partition [%d,%d] used %d exceeds band", p.band.lo, p.band.hi, p.used)
		}
		total += len(p.handles)
	}
	if got := pt.be.Len(); got != total {
		return fmt.Errorf("hier: partitions track %d residents, backend holds %d", total, got)
	}
	return nil
}
