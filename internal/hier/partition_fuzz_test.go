package hier

import (
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// fuzzLCG is a deterministic value source so the fuzz byte stream only
// has to choose operations, not encode every operand.
type fuzzLCG uint64

func (r *fuzzLCG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// partModel is the reference model of one partition: resident ID ->
// entry, mirrored against the Partitioner on every operation.
type partModel struct {
	p  *Partition
	in map[uint32]core.Entry
}

// FuzzLogicalPartition interleaves the partition lifecycle (alloc, grow
// with relocation, split, retire) with data-path traffic (enqueue,
// rank update, ranged dequeue, point dequeue) against a per-partition
// reference model, over every registered exact backend. Invariants: a
// ranged dequeue never returns an element outside the partition's model
// (no cross-partition leakage), never misses when the model holds an
// eligible element, always returns the minimum eligible rank, and every
// partition's resident count matches its model exactly (per-logical-node
// conservation). The allocator's CheckInvariants (band tiling, wheel
// exactness, backend residency) runs throughout.
func FuzzLogicalPartition(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 1, 5, 2, 3, 1, 4, 5, 6, 7, 1, 1, 5, 5})
	f.Add(uint64(7), []byte{0, 0, 1, 1, 1, 3, 3, 2, 5, 5, 5, 4, 0, 1, 5})
	f.Add(uint64(42), []byte{1, 1, 1, 1, 2, 1, 1, 6, 6, 5, 3, 1, 5, 4, 0})

	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		rng := fuzzLCG(seed | 1)
		name := diffBackends[int(rng.next())%len(diffBackends)]
		be, err := backend.New(name, 4096)
		if err != nil {
			t.Fatalf("backend %q: %v", name, err)
		}
		pt := NewPartitioner(be)

		var parts []*partModel
		alloc := func(capacity int, wall bool) {
			p, err := pt.Alloc(capacity, wall)
			if err != nil {
				t.Fatalf("alloc %d: %v", capacity, err)
			}
			parts = append(parts, &partModel{p: p, in: make(map[uint32]core.Entry)})
		}
		alloc(4, true)
		alloc(8, false)

		total := func() int {
			n := 0
			for _, pm := range parts {
				n += len(pm.in)
			}
			return n
		}

		for opIdx, op := range ops {
			if len(parts) == 0 {
				alloc(1+int(rng.next()%8), rng.next()%2 == 0)
			}
			pm := parts[int(rng.next())%len(parts)]
			switch op % 8 {
			case 0: // alloc another partition
				if len(parts) < 64 {
					alloc(1+int(rng.next()%32), rng.next()%2 == 0)
				}
			case 1: // enqueue a fresh ID
				if total() >= 4000 {
					continue
				}
				id, ok := pm.p.NextID()
				if !ok {
					// Band full: grow it (possibly relocating residents).
					remap, err := pt.Grow(pm.p, pm.p.Cap()*2)
					if err != nil {
						t.Fatalf("grow: %v", err)
					}
					pm.applyRemap(remap)
					if id, ok = pm.p.NextID(); !ok {
						t.Fatalf("band still full after grow to %d", pm.p.Cap())
					}
				}
				e := core.Entry{ID: id, Rank: rng.next() % 1000, SendTime: clock.Time(rng.next() % 64)}
				if err := pt.Enqueue(pm.p, e); err != nil {
					t.Fatalf("enqueue id %d: %v", id, err)
				}
				pm.in[id] = e
			case 2: // grow (often a no-op, sometimes a relocation)
				remap, err := pt.Grow(pm.p, pm.p.Cap()+1+int(rng.next()%64))
				if err != nil {
					t.Fatalf("grow: %v", err)
				}
				pm.applyRemap(remap)
			case 3: // split the band at its midpoint
				if pm.p.Cap() < 2 {
					continue
				}
				q, err := pt.Split(pm.p)
				if err != nil {
					t.Fatalf("split: %v", err)
				}
				qm := &partModel{p: q, in: make(map[uint32]core.Entry)}
				for id, e := range pm.in {
					if q.InBand(id) {
						qm.in[id] = e
						delete(pm.in, id)
					}
				}
				parts = append(parts, qm)
			case 4: // retire: drain and free the band
				pt.Retire(pm.p)
				for i, q := range parts {
					if q == pm {
						parts = append(parts[:i], parts[i+1:]...)
						break
					}
				}
			case 5: // ranged dequeue at a random instant
				now := clock.Time(rng.next() % 96)
				e, ok := pt.Dequeue(pm.p, now)
				minRank, hasElig := uint64(0), false
				for _, me := range pm.in {
					if me.SendTime <= now && (!hasElig || me.Rank < minRank) {
						minRank, hasElig = me.Rank, true
					}
				}
				if !ok {
					if hasElig {
						t.Fatalf("op %d: ranged dequeue missed eligible element (min rank %d) in [%d,%d] at %d",
							opIdx, minRank, pm.p.Lo(), pm.p.Hi(), now)
					}
					continue
				}
				me, mine := pm.in[e.ID]
				if !mine {
					t.Fatalf("op %d: ranged dequeue [%d,%d] leaked id %d (not in this partition's model)",
						opIdx, pm.p.Lo(), pm.p.Hi(), e.ID)
				}
				if me != e {
					t.Fatalf("op %d: dequeued %+v, model holds %+v", opIdx, e, me)
				}
				if !e.Eligible(now) {
					t.Fatalf("op %d: dequeued ineligible entry %+v at %d", opIdx, e, now)
				}
				if e.Rank != minRank {
					t.Fatalf("op %d: dequeued rank %d, model's min eligible rank is %d", opIdx, e.Rank, minRank)
				}
				delete(pm.in, e.ID)
			case 6: // rank/send-time update in place
				id, ok := pm.anyID(&rng)
				if !ok {
					continue
				}
				e := pm.in[id]
				e.Rank = rng.next() % 1000
				e.SendTime = clock.Time(rng.next() % 64)
				ok, err := pt.UpdateRank(pm.p, id, e.Rank, e.SendTime)
				if err != nil {
					t.Fatalf("update id %d: %v", id, err)
				}
				if !ok {
					t.Fatalf("update id %d: partition claims non-resident, model disagrees", id)
				}
				pm.in[id] = e
			case 7: // point dequeue
				id, ok := pm.anyID(&rng)
				if !ok {
					// Non-resident point dequeue must miss cleanly.
					if _, hit := pt.DequeueID(pm.p, pm.p.Lo()); hit && len(pm.in) == 0 {
						t.Fatalf("op %d: point dequeue hit on empty partition", opIdx)
					}
					continue
				}
				e, hit := pt.DequeueID(pm.p, id)
				if !hit {
					t.Fatalf("op %d: point dequeue missed resident id %d", opIdx, id)
				}
				if e != pm.in[id] {
					t.Fatalf("op %d: point dequeue returned %+v, model holds %+v", opIdx, e, pm.in[id])
				}
				delete(pm.in, id)
			}
			// Per-partition conservation after every operation.
			for _, q := range parts {
				if q.p.Len() != len(q.in) {
					t.Fatalf("op %d: partition [%d,%d] holds %d, model %d",
						opIdx, q.p.Lo(), q.p.Hi(), q.p.Len(), len(q.in))
				}
			}
			if opIdx%32 == 0 {
				if err := pt.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", opIdx, err)
				}
			}
		}
		if err := pt.CheckInvariants(); err != nil {
			t.Fatalf("final: %v", err)
		}
		if be.Len() != total() {
			t.Fatalf("backend holds %d, models %d", be.Len(), total())
		}
	})
}

// applyRemap rewrites the model's keys after a relocating Grow.
func (pm *partModel) applyRemap(remap map[uint32]uint32) {
	if remap == nil {
		return
	}
	moved := make(map[uint32]core.Entry, len(pm.in))
	for oldID, e := range pm.in {
		newID, ok := remap[oldID]
		if !ok {
			panic("grow remap missing a resident id")
		}
		e.ID = newID
		moved[newID] = e
	}
	pm.in = moved
}

// anyID returns a pseudo-randomly chosen resident ID of the partition.
func (pm *partModel) anyID(rng *fuzzLCG) (uint32, bool) {
	if len(pm.in) == 0 {
		return 0, false
	}
	k := int(rng.next()) % len(pm.in)
	for id := range pm.in {
		if k == 0 {
			return id, true
		}
		k--
	}
	return 0, false
}
