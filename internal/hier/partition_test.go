package hier

import (
	"errors"
	"math"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/faultinject"
)

func newTestPartitioner() *Partitioner {
	return NewPartitioner(backend.NewCoreList(4096))
}

func mustAlloc(t *testing.T, pt *Partitioner, capacity int, wall bool) *Partition {
	t.Helper()
	p, err := pt.Alloc(capacity, wall)
	if err != nil {
		t.Fatalf("alloc %d: %v", capacity, err)
	}
	return p
}

// TestPartitionAllocErrors covers the allocator's refusal paths: bad
// capacity and ID-space exhaustion.
func TestPartitionAllocErrors(t *testing.T) {
	pt := newTestPartitioner()
	if _, err := pt.Alloc(0, false); err == nil {
		t.Fatal("alloc(0) succeeded")
	}
	if _, err := pt.Alloc(-3, false); err == nil {
		t.Fatal("alloc(-3) succeeded")
	}
	// Two 2^31-wide bands exhaust [0, 2^32); the third must fail.
	mustAlloc(t, pt, 1<<31, false)
	mustAlloc(t, pt, 1<<31, false)
	if _, err := pt.Alloc(1, false); err == nil {
		t.Fatal("alloc beyond 2^32 succeeded")
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionWakeSummaries covers the wall/virtual split of the
// per-range eligibility summary: wall partitions answer MinSendTime and
// NextWakeAfter exactly, virtual partitions decline.
func TestPartitionWakeSummaries(t *testing.T) {
	pt := newTestPartitioner()
	wallP := mustAlloc(t, pt, 5000, true) // also exercises the 4096-slot wheel cap
	virtP := mustAlloc(t, pt, 8, false)
	if !wallP.Wall() || virtP.Wall() {
		t.Fatalf("Wall() flags wrong: %v %v", wallP.Wall(), virtP.Wall())
	}
	if _, ok := virtP.MinSendTime(); ok {
		t.Fatal("virtual partition reported a MinSendTime")
	}
	if got := virtP.NextWakeAfter(0); got != clock.Never {
		t.Fatalf("virtual partition NextWakeAfter = %d, want Never", got)
	}
	if _, ok := wallP.MinSendTime(); ok {
		t.Fatal("empty wall partition reported a MinSendTime")
	}

	for i, st := range []clock.Time{900, 300, 600} {
		id, _ := wallP.NextID()
		if err := pt.Enqueue(wallP, core.Entry{ID: id, Rank: uint64(i), SendTime: st}); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := wallP.MinSendTime(); !ok || got != 300 {
		t.Fatalf("MinSendTime = %d,%v want 300", got, ok)
	}
	if got := wallP.NextWakeAfter(300); got != 600 {
		t.Fatalf("NextWakeAfter(300) = %d, want 600", got)
	}
	if got := wallP.NextWakeAfter(900); got != clock.Never {
		t.Fatalf("NextWakeAfter(900) = %d, want Never", got)
	}
	if ps := pt.Partitions(); len(ps) != 2 || ps[0] != wallP || ps[1] != virtP {
		t.Fatalf("Partitions() = %v", ps)
	}
}

// TestPartitionEnqueueErrors covers the admission refusals: out-of-band
// IDs, duplicates, and a full shared backend.
func TestPartitionEnqueueErrors(t *testing.T) {
	pt := NewPartitioner(backend.NewCoreList(1))
	p := mustAlloc(t, pt, 4, false)
	if err := pt.Enqueue(p, core.Entry{ID: p.Hi() + 1}); err == nil {
		t.Fatal("out-of-band enqueue succeeded")
	}
	id, _ := p.NextID()
	if err := pt.Enqueue(p, core.Entry{ID: id, Rank: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pt.Enqueue(p, core.Entry{ID: id, Rank: 2}); !errors.Is(err, core.ErrDuplicate) {
		t.Fatalf("duplicate enqueue: %v", err)
	}
	id2, _ := p.NextID()
	if err := pt.Enqueue(p, core.Entry{ID: id2, Rank: 3}); !errors.Is(err, core.ErrFull) {
		t.Fatalf("over-capacity enqueue: %v", err)
	}
	// The failed admissions must not be tracked.
	if p.Len() != 1 {
		t.Fatalf("partition tracks %d residents, want 1", p.Len())
	}
	if _, ok := pt.DequeueID(p, id2); ok {
		t.Fatal("point dequeue hit an element that was never admitted")
	}
}

// TestPartitionNextIDExhaustion covers the band-full NextID path.
func TestPartitionNextIDExhaustion(t *testing.T) {
	pt := newTestPartitioner()
	p := mustAlloc(t, pt, 2, false)
	for i := 0; i < p.Cap(); i++ {
		if _, ok := p.NextID(); !ok {
			t.Fatalf("NextID refused with %d of %d handed out", i, p.Cap())
		}
	}
	if _, ok := p.NextID(); ok {
		t.Fatal("NextID handed out an ID beyond the band")
	}
}

// TestPartitionUpdateRankResync covers UpdateRank's failure handling:
// non-resident IDs miss cleanly, and when the capability fallback drops
// the element mid-flight the partition resyncs its resident set instead
// of tracking a ghost.
func TestPartitionUpdateRankResync(t *testing.T) {
	pt := newTestPartitioner()
	p := mustAlloc(t, pt, 8, true)
	if ok, err := pt.UpdateRank(p, p.Lo(), 1, 2); ok || err != nil {
		t.Fatalf("non-resident UpdateRank = %v, %v", ok, err)
	}

	// A wrapped backend without the RankUpdater capability forces the
	// dequeue+enqueue fallback; the injected error on the re-enqueue
	// loses the element, which UpdateRank must notice and untrack.
	inj := faultinject.NewInjector(faultinject.Plan{Seed: 1, ErrorEvery: 1})
	inj.Disarm()
	ptf := NewPartitioner(faultinject.Wrap(backend.NewCoreList(64), inj))
	pf := mustAlloc(t, ptf, 8, true)
	id, _ := pf.NextID()
	if err := ptf.Enqueue(pf, core.Entry{ID: id, Rank: 5, SendTime: 7}); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	ok, err := ptf.UpdateRank(pf, id, 9, 11)
	inj.Disarm()
	if err == nil && ok {
		// The injector may have hit the dequeue instead; either way the
		// element must not be double-tracked.
		t.Skip("injection missed the enqueue leg")
	}
	if pf.Len() != ptf.Backend().Len() {
		t.Fatalf("partition tracks %d, backend holds %d after failed update", pf.Len(), ptf.Backend().Len())
	}
	if err := ptf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionSplitNarrowAndUsed covers Split's refusal on a width-1
// band and the used-counter redistribution when the cursor is past the
// midpoint.
func TestPartitionSplitNarrowAndUsed(t *testing.T) {
	pt := newTestPartitioner()
	p1 := mustAlloc(t, pt, 1, false)
	if _, err := pt.Split(p1); err == nil {
		t.Fatal("split of width-1 band succeeded")
	}

	p := mustAlloc(t, pt, 8, true)
	for i := 0; i < 6; i++ { // cursor past the midpoint (4)
		id, _ := p.NextID()
		if err := pt.Enqueue(p, core.Entry{ID: id, Rank: uint64(i), SendTime: clock.Time(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := pt.Split(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || q.Len() != 2 {
		t.Fatalf("split residents %d/%d, want 4/2", p.Len(), q.Len())
	}
	// Both halves may hand out their remaining IDs without collision.
	if _, ok := p.NextID(); ok {
		t.Fatal("lower half handed out an ID past its cursor")
	}
	for {
		id, ok := q.NextID()
		if !ok {
			break
		}
		if err := pt.Enqueue(q, core.Entry{ID: id, Rank: 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The wheels migrated: each half answers for exactly its residents.
	if got, ok := q.MinSendTime(); !ok || got != 0 {
		// q inherited send_times 104,105 plus fresh rank-50 entries at 0.
		t.Fatalf("upper half MinSendTime = %d,%v", got, ok)
	}
	if got, ok := p.MinSendTime(); !ok || got != 100 {
		t.Fatalf("lower half MinSendTime = %d,%v want 100", got, ok)
	}
}

// TestPartitionRetiredPanics covers the use-after-retire guard.
func TestPartitionRetiredPanics(t *testing.T) {
	pt := newTestPartitioner()
	p := mustAlloc(t, pt, 4, true)
	id, _ := p.NextID()
	if err := pt.Enqueue(p, core.Entry{ID: id, Rank: 1}); err != nil {
		t.Fatal(err)
	}
	pt.Retire(p)
	if pt.Backend().Len() != 0 {
		t.Fatalf("retire left %d elements in the backend", pt.Backend().Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue on retired partition did not panic")
		}
	}()
	_ = pt.Enqueue(p, core.Entry{ID: id})
}

// TestPartitionGrowInPlaceAndRelocate covers both Grow paths and the
// no-op when the band is already wide enough.
func TestPartitionGrowInPlaceAndRelocate(t *testing.T) {
	pt := newTestPartitioner()
	p := mustAlloc(t, pt, 4, true)
	for i := 0; i < 3; i++ {
		id, _ := p.NextID()
		if err := pt.Enqueue(p, core.Entry{ID: id, Rank: uint64(10 - i), SendTime: clock.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if remap, err := pt.Grow(p, 2); err != nil || remap != nil {
		t.Fatalf("shrinking grow = %v, %v", remap, err)
	}
	// Nothing above p yet: in-place growth, no remap.
	if remap, err := pt.Grow(p, 16); err != nil || remap != nil {
		t.Fatalf("in-place grow = %v, %v", remap, err)
	} else if p.Cap() != 16 {
		t.Fatalf("cap %d after in-place grow, want 16", p.Cap())
	}
	// A neighbor directly above forces relocation.
	blocker := mustAlloc(t, pt, 16, false)
	if blocker.Lo() != p.Hi()+1 {
		t.Fatalf("blocker not adjacent: %d vs %d", blocker.Lo(), p.Hi())
	}
	remap, err := pt.Grow(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if remap == nil || len(remap) != 3 {
		t.Fatalf("relocating grow remap = %v", remap)
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Dequeue order survived the move: ranks were 10, 9, 8.
	for want := uint64(8); want <= 10; want++ {
		e, ok := pt.Dequeue(p, clock.Never)
		if !ok || e.Rank != want {
			t.Fatalf("post-relocation dequeue = %+v,%v want rank %d", e, ok, want)
		}
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionReleaseCoalescing drives alloc/retire patterns that force
// both coalescing directions in the free list, including at the 2^32
// boundary.
func TestPartitionReleaseCoalescing(t *testing.T) {
	pt := newTestPartitioner()
	var ps []*Partition
	for i := 0; i < 8; i++ {
		ps = append(ps, mustAlloc(t, pt, 16, false))
	}
	// Retire in an order that exercises left-, right-, and two-sided
	// coalescing: middle, its right neighbor, its left neighbor, rest.
	for _, i := range []int{4, 5, 3, 0, 7, 1, 6, 2} {
		pt.Retire(ps[i])
		if err := pt.CheckInvariants(); err != nil {
			t.Fatalf("after retiring #%d: %v", i, err)
		}
	}
	if len(pt.free) != 1 || pt.free[0].lo != 0 || pt.free[0].hi != math.MaxUint32 {
		t.Fatalf("free list did not re-coalesce: %v", pt.free)
	}
}
