package hier

import (
	"fmt"

	"pieo/internal/clock"
)

// Policy is the scheduling algorithm a node applies to its children —
// the hierarchical counterpart of sched.Program. PreEnqueue must be
// idempotent (it can run again without a dequeue in between when a
// deferred sibling branch is retried); all state charging belongs in
// PostDequeue, which runs exactly once per transmitted packet.
type Policy struct {
	Name string

	// DequeueTime maps the wall clock to the predicate domain for this
	// node's logical PIEO; nil means the wall clock itself.
	DequeueTime func(n *Node, now clock.Time) clock.Time

	// PreEnqueue assigns c.Rank and c.SendTime. nil = rank 1, always
	// eligible (round-robin via FIFO tie-breaking).
	PreEnqueue func(n *Node, now clock.Time, c *Child)

	// PostDequeue updates policy state after a packet of the given size
	// was transmitted through child c. nil = no state.
	PostDequeue func(n *Node, now clock.Time, c *Child, size uint32)

	// OnIdle, if set, runs when the node's logical PIEO has children but
	// none is eligible in the policy's time domain. Returning true means
	// state changed (WF²Q+'s virtual-clock jump) and the extraction
	// should be retried once.
	OnIdle func(n *Node, now clock.Time) bool
}

func (p *Policy) preEnqueue(n *Node, now clock.Time, c *Child) {
	if p.PreEnqueue != nil {
		p.PreEnqueue(n, now, c)
		return
	}
	c.Rank = 1
	c.SendTime = clock.Always
}

func (p *Policy) postDequeue(n *Node, now clock.Time, c *Child, size uint32) {
	if p.PostDequeue != nil {
		p.PostDequeue(n, now, c, size)
	}
}

// expectedSize is the packet size a child is about to transmit: the head
// packet for leaves, the configured Quantum for interior nodes (whose
// winning descendant is not known until the descent below them).
func expectedSize(c *Child) uint32 {
	if c.IsLeaf() {
		if head, ok := c.Queue.Head(); ok {
			return head.Size
		}
	}
	return uint32(c.Quantum)
}

// sumWeights returns the total weight of n's children. Weights are
// control-plane state configured between Build and traffic, so the sum is
// cached on first scheduling use.
func (n *Node) sumWeights() uint64 {
	if n.cachedSumW == 0 {
		var sum uint64
		for _, c := range n.children {
			if c.Weight == 0 {
				panic(fmt.Sprintf("hier: child %d of %q has zero weight", c.ID, n.Name))
			}
			sum += c.Weight
		}
		n.cachedSumW = sum
	}
	return n.cachedSumW
}

// fqScale converts a packet's wire time into child c's virtual service
// under node n: wire_time * sum_weights / weight.
func fqScale(n *Node, c *Child, size uint32) uint64 {
	return uint64(n.h.WireTime(size)) * n.sumWeights() / c.Weight
}

// minChildStart returns the smallest virtual start time among n's
// children currently enqueued in its logical PIEO — the backlogged-flows
// term of the WF²Q+ virtual time update, scoped to this node's logical
// partition.
func minChildStart(n *Node) clock.Time {
	minT := clock.Never
	for _, c := range n.children {
		if n.h.nodeContains(n, c.ID) && c.SendTime < minT {
			minT = c.SendTime
		}
	}
	return minT
}

// RoundRobin schedules children in round-robin order: every child gets
// rank 1 and an always-true predicate, so PIEO's FIFO tie-breaking
// rotates through them.
func RoundRobin() *Policy {
	return &Policy{Name: "round-robin"}
}

// StrictPriority schedules children by their static Priority field
// (smaller wins).
func StrictPriority() *Policy {
	return &Policy{
		Name: "strict-priority",
		PreEnqueue: func(n *Node, now clock.Time, c *Child) {
			c.Rank = c.Priority
			c.SendTime = clock.Always
		},
	}
}

// WFQ is hierarchical Weighted Fair Queuing: rank is the child's virtual
// finish time under this node's private virtual clock; always eligible.
func WFQ() *Policy {
	return &Policy{
		Name: "wfq",
		PreEnqueue: func(n *Node, now clock.Time, c *Child) {
			start := c.VirtualFinish
			if !c.requeued {
				if v := uint64(n.V.Now()); v > start {
					start = v
				}
			}
			c.virtualStart = start
			c.Rank = start + fqScale(n, c, expectedSize(c))
			c.SendTime = clock.Always
		},
		PostDequeue: func(n *Node, now clock.Time, c *Child, size uint32) {
			// Finish reflects the start assigned at enqueue and the
			// bytes actually transmitted.
			c.VirtualFinish = c.virtualStart + fqScale(n, c, size)
			n.V.Set(n.V.Now() + clock.Time(n.h.WireTime(size)))
		},
	}
}

// WF2Q is hierarchical Worst-case Fair Weighted Fair Queuing (WF²Q+):
// rank is the virtual finish time, the predicate is (node virtual time >=
// virtual start), and the node's virtual clock advances per transmission
// with the Fig 2(a) floor over its own backlogged children.
func WF2Q() *Policy {
	return &Policy{
		Name: "wf2q+",
		DequeueTime: func(n *Node, now clock.Time) clock.Time {
			return n.V.Now()
		},
		OnIdle: func(n *Node, now clock.Time) bool {
			// Fig 2(a)'s idle-link rule scoped to this node's logical
			// PIEO: jump the node's virtual clock to its children's
			// minimum start time.
			ms := minChildStart(n)
			if ms == clock.Never || ms <= n.V.Now() {
				return false
			}
			n.V.Set(ms)
			return true
		},
		PreEnqueue: func(n *Node, now clock.Time, c *Child) {
			// start = max(finish, V) only at activation (Fig 2(a));
			// continuously backlogged children chain from their previous
			// finish exactly, or they bleed service credit.
			start := c.VirtualFinish
			if !c.requeued {
				if v := uint64(n.V.Now()); v > start {
					start = v
				}
			}
			c.virtualStart = start
			c.SendTime = clock.Time(start)
			c.Rank = start + fqScale(n, c, expectedSize(c))
		},
		PostDequeue: func(n *Node, now clock.Time, c *Child, size uint32) {
			// The packet's virtual start was fixed at enqueue; its
			// finish reflects the actual bytes sent.
			c.VirtualFinish = c.virtualStart + fqScale(n, c, size)
			n.V.OnTransmit(clock.Time(n.h.WireTime(size)), minChildStart(n))
		},
	}
}

// DRR is hierarchical Deficit Round Robin: children rotate in FIFO
// order (rank from a per-node round counter) and a child is only allowed
// to transmit when its deficit covers the expected packet; the deficit
// tops up by Quantum each time the child's turn passes. Unlike the flat
// DRR program, the hierarchical variant transmits one packet per
// decision (the descent picks a single leaf), so the quantum is enforced
// across consecutive visits within the same round.
func DRR() *Policy {
	return &Policy{
		Name: "drr",
		PreEnqueue: func(n *Node, now clock.Time, c *Child) {
			c.Rank = c.VirtualFinish // per-child round number
			c.SendTime = clock.Always
		},
		PostDequeue: func(n *Node, now clock.Time, c *Child, size uint32) {
			if c.Tokens < float64(size) {
				c.Tokens += float64(c.Quantum)
			}
			c.Tokens -= float64(size)
			// The next packet's size below an interior node is unknown
			// until the next descent; estimate it with the size just
			// transmitted. When the remaining deficit cannot cover it,
			// the child moves to the next round.
			if c.Tokens < float64(size) {
				c.VirtualFinish++
			}
		},
	}
}

// TokenBucket rate-limits each child independently: the child's send
// time is deferred until its bucket covers the expected packet, and the
// bucket is charged the actual bytes at post-dequeue. Configure RateGbps,
// Burst (and optionally initial Tokens) on each child.
func TokenBucket() *Policy {
	return &Policy{
		Name: "token-bucket",
		PreEnqueue: func(n *Node, now clock.Time, c *Child) {
			refill(c, now)
			need := float64(expectedSize(c))
			sendTime := now
			if need > c.Tokens {
				sendTime = now + clock.Time((need-c.Tokens)*8/c.RateGbps)
			}
			c.Rank = uint64(sendTime)
			c.SendTime = sendTime
		},
		PostDequeue: func(n *Node, now clock.Time, c *Child, size uint32) {
			refill(c, now)
			c.Tokens -= float64(size)
		},
	}
}

// refill accrues tokens since the last update, capped at the burst
// depth. It is idempotent at a fixed instant.
func refill(c *Child, now clock.Time) {
	if c.RateGbps <= 0 {
		panic(fmt.Sprintf("hier: token-bucket child %d has no rate configured", c.ID))
	}
	c.Tokens += c.RateGbps / 8 * float64(now-c.LastRefill)
	if c.Tokens > c.Burst {
		c.Tokens = c.Burst
	}
	c.LastRefill = now
}
