package hwmodel

import "math"

// Additional target devices discussed in §6.2: the paper expects the
// design "to run at much higher clock rates on more powerful FPGAs
// [Stratix 10], but even more importantly, on an ASIC", citing PIFO's
// 1 GHz ASIC synthesis as the reference point.

// Stratix10 is Intel's Stratix 10 GX 2800-class part: ~933K ALMs and
// ~229 Mbit of M20K SRAM. Clock scaling vs Stratix V for this style of
// datapath is roughly 2x (14 nm vs 28 nm).
var Stratix10 = Device{
	Name:          "Stratix 10",
	ALMs:          933_000,
	SRAMBits:      229 * 1000 * 1000,
	SRAMBlockBits: 20 * 1000,
}

// ASIC is a notional 16 nm ASIC target. Logic is not ALM-bound there;
// we express its budget as a generous standard-cell equivalent so the
// fit computation is SRAM-bound, matching how ASIC schedulers are sized.
var ASIC = Device{
	Name:          "ASIC (16nm)",
	ALMs:          10_000_000, // standard-cell equivalent, effectively unbound
	SRAMBits:      256 * 1000 * 1000,
	SRAMBlockBits: 20 * 1000,
}

// clockScale maps a device to the factor applied to the Stratix V
// calibrated clock model.
func clockScale(d Device) float64 {
	switch d.Name {
	case Stratix10.Name:
		return 2.0
	case ASIC.Name:
		// PIFO clocks at 1 GHz on ASIC vs 57 MHz on the Stratix V for a
		// 1K instance; we conservatively apply a smaller factor to the
		// sqrt-shaped PIEO datapath and cap at 1 GHz below.
		return 8.0
	default:
		return 1.0
	}
}

// PIEOClockMHzOn estimates the PIEO clock for geometry g on device d,
// capped at the 1 GHz the paper uses for ASIC arithmetic.
func PIEOClockMHzOn(d Device, g Geometry) float64 {
	f := PIEOClockMHz(g) * clockScale(d)
	return math.Min(f, ASICClockMHz)
}

// MaxPIEOFitOn and MaxPIFOFitOn generalize the fit search to any device.
func MaxPIEOFitOn(d Device) int {
	return maxFit(d, func(n int) Resources { return PIEOResources(PIEOGeometry(n)) })
}

// MaxPIFOFitOn returns the largest PIFO capacity fitting device d.
func MaxPIFOFitOn(d Device) int {
	return maxFit(d, PIFOResources)
}
