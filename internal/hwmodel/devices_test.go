package hwmodel

import (
	"math"
	"testing"
)

func TestStratix10FitsMore(t *testing.T) {
	v := MaxPIEOFitOn(StratixV)
	s10 := MaxPIEOFitOn(Stratix10)
	if s10 <= v {
		t.Fatalf("Stratix 10 max %d <= Stratix V max %d", s10, v)
	}
	// ~4.4x the SRAM should admit roughly 4x the elements (SRAM-bound).
	if ratio := float64(s10) / float64(v); ratio < 3 || ratio > 6 {
		t.Fatalf("Stratix10/StratixV fit ratio = %v, want ~4.4 (SRAM ratio)", ratio)
	}
}

func TestPIFOStillLogicBoundOnStratix10(t *testing.T) {
	// PIFO's linear logic keeps it tiny even on the bigger part: ~4x the
	// ALMs admit ~4x the elements — still thousands, not tens of
	// thousands.
	got := MaxPIFOFitOn(Stratix10)
	if got < 4000 || got > 10000 {
		t.Fatalf("PIFO max on Stratix 10 = %d, want a few thousand", got)
	}
	pieo := MaxPIEOFitOn(Stratix10)
	if pieo < 30*got {
		t.Fatalf("PIEO advantage on Stratix 10 = %dx, want >= 30x", pieo/got)
	}
}

func TestClockScalesUpAcrossDevices(t *testing.T) {
	g := PIEOGeometry(30000)
	v := PIEOClockMHzOn(StratixV, g)
	s10 := PIEOClockMHzOn(Stratix10, g)
	asic := PIEOClockMHzOn(ASIC, g)
	if !(v < s10 && s10 < asic) {
		t.Fatalf("clock ordering violated: %v %v %v", v, s10, asic)
	}
	if asic > ASICClockMHz {
		t.Fatalf("ASIC clock %v exceeds the 1 GHz cap", asic)
	}
}

func TestASICNsPerOpHeadline(t *testing.T) {
	// §6.2: "At 1 GHz clock rate, each primitive operation in PIEO would
	// only take 4 ns." Small instances reach the cap.
	g := PIEOGeometry(1024)
	f := PIEOClockMHzOn(ASIC, g)
	if math.Abs(f-ASICClockMHz) > 0.1 {
		t.Fatalf("ASIC clock at 1K = %v, want ~1000 (capped)", f)
	}
	if ns := NsPerOp(f, CyclesPerOp); math.Abs(ns-4) > 0.01 {
		t.Fatalf("ASIC ns/op = %v, want 4", ns)
	}
}
