// Package hwmodel estimates the hardware resources and clock rates of the
// PIEO and PIFO scheduler designs, reproducing the scaling studies of the
// paper's §6.1 (Fig 8: logic, Fig 9: SRAM) and §6.2 (Fig 10: clock rate).
//
// The paper prototyped both designs on an Altera Stratix V FPGA and
// reported synthesis results. We cannot synthesize RTL here, so this
// package substitutes an explicit cost model with two ingredients:
//
//  1. Structural counts computed exactly from each design's architecture
//     (flip-flop bits, 16-bit comparators, priority-encoder inputs, SRAM
//     bits and blocks). These carry the scaling laws the figures are
//     about: PIFO is Θ(N) in flip-flops/comparators, PIEO is Θ(√N) with
//     the list itself in SRAM at 2× overhead (Invariant 1).
//  2. Calibration constants mapping counts to Adaptive Logic Modules
//     (ALMs) and critical-path delay, pinned to the numbers the paper
//     reports: the open-source PIFO consumes 64% of 234K ALMs at 1K
//     elements and clocks at 57 MHz; PIEO runs at ≈80 MHz at 30K elements
//     and "easily fits" the device; an ASIC implementation clocks at
//     1 GHz.
//
// The shapes (who wins, where the feasibility cliffs fall) come from the
// structural counts; only the absolute scale comes from calibration.
package hwmodel

import (
	"fmt"
	"math"
)

// Device describes the resource budget of a target hardware device.
type Device struct {
	Name          string
	ALMs          int    // adaptive logic modules available
	SRAMBits      uint64 // total on-chip SRAM
	SRAMBlockBits uint64 // capacity of one dual-port SRAM block
}

// StratixV is the Altera Stratix V 5SGXA7 used by the paper's prototype:
// 234K ALMs, 52 Mbit (6.5 MB) of M20K SRAM in ~2500 dual-port 20 Kbit
// blocks, 40 Gbps interface bandwidth.
var StratixV = Device{
	Name:          "Stratix V",
	ALMs:          234_000,
	SRAMBits:      52 * 1000 * 1000,
	SRAMBlockBits: 20 * 1000,
}

// Field widths shared by both designs, matching §6: "We use 16-bit rank
// and predicate fields, same as in PIFO implementation."
const (
	RankBits = 16
	TimeBits = 16 // send_time (the encoded predicate)
	FlowBits = 16
)

// Geometry fixes the shape of a PIEO ordered list: capacity N split into
// NumSublists sublists of SublistSize elements each. The paper's design
// uses SublistSize = ⌈√N⌉ and NumSublists = 2·⌈N/SublistSize⌉ (Invariant 1
// needs the 2× slack).
type Geometry struct {
	Capacity    int
	SublistSize int
	NumSublists int
}

// PIEOGeometry returns the paper's √N geometry for capacity n.
func PIEOGeometry(n int) Geometry {
	if n <= 0 {
		panic(fmt.Sprintf("hwmodel: capacity must be positive, got %d", n))
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))
	return GeometryWithSublistSize(n, s)
}

// GeometryWithSublistSize returns a geometry with an explicit sublist
// size, used by the sublist-size ablation.
func GeometryWithSublistSize(n, s int) Geometry {
	if n <= 0 || s <= 0 {
		panic(fmt.Sprintf("hwmodel: invalid geometry n=%d s=%d", n, s))
	}
	num := 2 * ((n + s - 1) / s)
	return Geometry{Capacity: n, SublistSize: s, NumSublists: num}
}

// PointerEntryBits returns the width of one Ordered-Sublist-Array entry:
// sublist_id + smallest_rank + smallest_send_time + num (§5.2).
func (g Geometry) PointerEntryBits() int {
	return ceilLog2(g.NumSublists) + RankBits + TimeBits + (ceilLog2(g.SublistSize) + 1)
}

// ElementBits returns the SRAM footprint of one element slot: the
// Rank-Sublist entry (flow_id, rank, send_time) plus the Eligibility-
// Sublist copy of send_time.
func (g Geometry) ElementBits() int {
	return FlowBits + RankBits + TimeBits + TimeBits
}

// Resources aggregates the structural counts and the derived ALM estimate
// for one scheduler instance.
type Resources struct {
	FlipFlopBits  int    // state that must live in registers
	Comparators16 int    // number of 16-bit parallel comparators
	EncoderInputs int    // total priority-encoder input width
	MuxBits       int    // shift/insert network width (bits moved per cycle)
	SRAMBits      uint64 // ordered-list storage in SRAM (0 for PIFO)
	SRAMBlocks    int    // dual-port blocks consumed (striping-aware)
	ALMs          int    // calibrated logic estimate
}

// Calibrated ALM cost constants. A Stratix V ALM packs two flip-flops and
// an adaptive LUT; comparators map ~2 bits per ALM via carry chains;
// encoder and mux costs are LUT-bound. The PIFO per-element constant is
// pinned to the paper's measured 64% @ 1K for the open-source PIFO RTL,
// which is substantially heavier than a component count would suggest
// (per-element enqueue decode + full shift network).
const (
	almPerFFBit       = 0.5
	almPer16bCmp      = 8.0
	almPerEncInput    = 0.5
	almPerMuxBit      = 0.25
	pieoControlALMs   = 2000 // FSM, address generation, port arbitration
	pifoALMPerElement = 146.25
)

// PIEOResources computes the resource usage of a PIEO scheduler with
// geometry g, following §5.1-§5.2:
//
//   - flip-flops: the Ordered-Sublist-Array (NumSublists pointer entries)
//     plus staging registers for the two sublists read each operation,
//   - comparators: parallel compare over the pointer array (rank for
//     enqueue, send_time for dequeue) and over the two staged sublists
//     (rank + eligibility),
//   - priority encoders over the pointer array and the staged sublists,
//   - SRAM: NumSublists·SublistSize element slots (2× capacity).
func PIEOResources(g Geometry) Resources {
	ptrBits := g.NumSublists * g.PointerEntryBits()
	stageBits := 2 * g.SublistSize * g.ElementBits()
	ff := ptrBits + stageBits

	// Pointer array: one rank comparator and one send_time comparator
	// per entry. Staged sublists: rank compare over S, eligibility
	// compare over S for each of the two staged sublists.
	cmp := 2*g.NumSublists + 3*g.SublistSize

	// Encoders: two over the pointer array (enqueue select, dequeue
	// select) and four over sublists (enqueue pos, dequeue pos,
	// eligibility insert/remove pos).
	enc := 2*g.NumSublists + 4*g.SublistSize

	// Shift networks: pointer-array rearrangement plus sublist
	// insert/delete muxing for the two staged sublists.
	mux := g.NumSublists*g.PointerEntryBits() + 2*g.SublistSize*g.ElementBits()

	sramBits := uint64(g.NumSublists) * uint64(g.SublistSize) * uint64(g.ElementBits())

	alms := int(math.Round(
		almPerFFBit*float64(ff) +
			almPer16bCmp*float64(cmp) +
			almPerEncInput*float64(enc) +
			almPerMuxBit*float64(mux) +
			pieoControlALMs))

	return Resources{
		FlipFlopBits:  ff,
		Comparators16: cmp,
		EncoderInputs: enc,
		MuxBits:       mux,
		SRAMBits:      sramBits,
		SRAMBlocks:    pieoSRAMBlocks(g),
		ALMs:          alms,
	}
}

// pieoSRAMBlocks counts dual-port blocks under the §5.1 striping: the
// elements of each sublist are striped across SublistSize block columns so
// a whole sublist is readable in one cycle; each column holds NumSublists
// element slots and must be deep/wide enough for them.
func pieoSRAMBlocks(g Geometry) int {
	columnBits := uint64(g.NumSublists) * uint64(g.ElementBits())
	blocksPerColumn := int((columnBits + StratixV.SRAMBlockBits - 1) / StratixV.SRAMBlockBits)
	if blocksPerColumn < 1 {
		blocksPerColumn = 1
	}
	return g.SublistSize * blocksPerColumn
}

// PIFOResources computes the resource usage of the baseline PIFO
// (parallel compare-and-shift, §2.3/[29]): the whole list lives in
// flip-flops with one comparator per element. The ALM figure uses the
// per-element constant calibrated to the paper's measured 64% @ 1K.
func PIFOResources(n int) Resources {
	if n <= 0 {
		panic(fmt.Sprintf("hwmodel: capacity must be positive, got %d", n))
	}
	entryBits := FlowBits + RankBits + TimeBits
	ff := n * entryBits
	return Resources{
		FlipFlopBits:  ff,
		Comparators16: n,
		EncoderInputs: n,
		MuxBits:       ff,
		SRAMBits:      0,
		SRAMBlocks:    0,
		ALMs:          int(math.Round(pifoALMPerElement * float64(n))),
	}
}

// FitsOn reports whether r fits the device's logic and SRAM budgets.
func (r Resources) FitsOn(d Device) bool {
	return r.ALMs <= d.ALMs && r.SRAMBits <= d.SRAMBits
}

// ALMPercent returns the fraction of d's ALMs consumed, in percent.
func (r Resources) ALMPercent(d Device) float64 {
	return 100 * float64(r.ALMs) / float64(d.ALMs)
}

// SRAMPercent returns the fraction of d's SRAM consumed, in percent.
func (r Resources) SRAMPercent(d Device) float64 {
	return 100 * float64(r.SRAMBits) / float64(d.SRAMBits)
}

// Clock-rate model (Fig 10). The critical path of both designs is a
// parallel compare feeding a priority encoder; its delay grows with the
// logarithm of the fan-in. We model f = c / (log2(W) + b) MHz and pin the
// constants to the paper's reported synthesis points: PIEO ≈125 MHz at 1K
// and ≈80 MHz at 30K; PIFO 57 MHz at 1K on the same device. PIFO's fan-in
// is the whole list (W = N); PIEO's is the pointer array (W = 2√N).
const (
	clockB     = -1.68
	pieoClockC = 540.0
	pifoClockC = 474.0
)

// PIEOClockMHz estimates the synthesized clock rate of a PIEO scheduler
// with geometry g on the paper's FPGA.
func PIEOClockMHz(g Geometry) float64 {
	w := float64(g.NumSublists)
	if w < 4 {
		w = 4
	}
	return pieoClockC / (math.Log2(w) + clockB)
}

// PIFOClockMHz estimates the synthesized clock rate of an N-element PIFO
// on the paper's FPGA.
func PIFOClockMHz(n int) float64 {
	w := float64(n)
	if w < 4 {
		w = 4
	}
	return pifoClockC / (math.Log2(w) + clockB)
}

// ASICClockMHz is the clock rate the paper cites for an ASIC
// implementation (PIFO's authors report 1 GHz; §6.2 argues PIEO's 4-cycle
// operation takes 4 ns there).
const ASICClockMHz = 1000.0

// CyclesPerOp is the number of clock cycles each PIEO primitive operation
// takes in the non-pipelined design (§5.2, §6.2).
const CyclesPerOp = 4

// NsPerOp converts a clock rate and per-op cycle count into nanoseconds
// per primitive operation.
func NsPerOp(clockMHz float64, cycles int) float64 {
	return float64(cycles) * 1000 / clockMHz
}

// SchedulingRateMops returns scheduling decisions per microsecond·1e-... ;
// it is simply 1e3/NsPerOp, i.e. million operations per second.
func SchedulingRateMops(clockMHz float64, cycles int) float64 {
	return clockMHz / float64(cycles)
}

// MaxPIEOFit returns the largest capacity (in elements) whose PIEO
// instance fits device d, searching powers-of-two-friendly steps. Used
// for the ">30× more scalable" headline.
func MaxPIEOFit(d Device) int {
	return maxFit(d, func(n int) Resources { return PIEOResources(PIEOGeometry(n)) })
}

// MaxPIFOFit returns the largest capacity whose PIFO instance fits d.
func MaxPIFOFit(d Device) int {
	return maxFit(d, PIFOResources)
}

func maxFit(d Device, res func(int) Resources) int {
	lo, hi := 1, 1
	for res(hi).FitsOn(d) {
		lo = hi
		hi *= 2
		if hi > 1<<30 {
			return lo
		}
	}
	// Binary search in (lo, hi]: lo fits, hi does not.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if res(mid).FitsOn(d) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
