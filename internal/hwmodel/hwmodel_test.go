package hwmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPIEOGeometrySqrtN(t *testing.T) {
	g := PIEOGeometry(16)
	if g.SublistSize != 4 || g.NumSublists != 8 {
		t.Fatalf("geometry(16) = %+v, want sublists 8x4", g)
	}
	g = PIEOGeometry(30000)
	if g.SublistSize != 174 {
		t.Fatalf("SublistSize(30000) = %d, want 174", g.SublistSize)
	}
	// 2*ceil(30000/174) = 2*173 = 346
	if g.NumSublists != 346 {
		t.Fatalf("NumSublists(30000) = %d, want 346", g.NumSublists)
	}
}

func TestGeometryCapacityInvariant(t *testing.T) {
	// The sublist array must hold at least 2x the capacity (Invariant 1
	// tolerates fragmentation up to half-empty alternation).
	f := func(n16 uint16) bool {
		n := int(n16)%100000 + 1
		g := PIEOGeometry(n)
		return g.NumSublists*g.SublistSize >= 2*n-2*g.SublistSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PIEOGeometry(0) did not panic")
		}
	}()
	PIEOGeometry(0)
}

func TestPIFOCalibrationPoint(t *testing.T) {
	// Paper Fig 8: open-source PIFO at 1K elements consumes 64% of the
	// 234K ALMs on the Stratix V.
	r := PIFOResources(1024)
	pct := r.ALMPercent(StratixV)
	if math.Abs(pct-64) > 1 {
		t.Fatalf("PIFO@1K = %.1f%% ALMs, want ~64%%", pct)
	}
}

func TestPIFODoesNotFit2K(t *testing.T) {
	// Paper: "we can't fit a PIFO with 2K elements or more on our FPGA."
	if PIFOResources(2048).FitsOn(StratixV) {
		t.Fatal("PIFO@2K fits the Stratix V in the model; paper says it must not")
	}
	if !PIFOResources(1024).FitsOn(StratixV) {
		t.Fatal("PIFO@1K does not fit; paper says it does (at 64%)")
	}
}

func TestPIEOFits30K(t *testing.T) {
	// Paper: "we can easily fit a PIEO scheduler with 30K elements."
	r := PIEOResources(PIEOGeometry(30000))
	if !r.FitsOn(StratixV) {
		t.Fatalf("PIEO@30K does not fit: %d ALMs, %d SRAM bits", r.ALMs, r.SRAMBits)
	}
	if pct := r.ALMPercent(StratixV); pct > 50 {
		t.Fatalf("PIEO@30K consumes %.1f%% ALMs; 'easily fits' implies well under half", pct)
	}
}

func TestPIEOLogicSublinear(t *testing.T) {
	// Quadrupling capacity should roughly double PIEO logic (sqrt
	// scaling), while PIFO logic quadruples (linear).
	p1 := PIEOResources(PIEOGeometry(4096)).ALMs
	p4 := PIEOResources(PIEOGeometry(16384)).ALMs
	ratio := float64(p4) / float64(p1)
	if ratio > 2.6 {
		t.Fatalf("PIEO ALM growth x4 capacity = %.2fx, want ~2x (sqrt)", ratio)
	}
	f1 := PIFOResources(4096).ALMs
	f4 := PIFOResources(16384).ALMs
	if r := float64(f4) / float64(f1); math.Abs(r-4) > 0.01 {
		t.Fatalf("PIFO ALM growth x4 capacity = %.2fx, want 4x (linear)", r)
	}
}

func TestPIEOSRAMTwiceCapacity(t *testing.T) {
	// Invariant 1 costs exactly 2x SRAM: slots = NumSublists*SublistSize
	// ≈ 2N element slots.
	g := PIEOGeometry(1 << 14)
	r := PIEOResources(g)
	wantBits := uint64(2*g.Capacity) * uint64(g.ElementBits())
	// NumSublists*SublistSize may exceed 2N slightly due to ceil.
	if r.SRAMBits < wantBits || r.SRAMBits > wantBits+uint64(2*g.SublistSize*g.ElementBits()) {
		t.Fatalf("SRAMBits = %d, want ~%d (2x capacity)", r.SRAMBits, wantBits)
	}
}

func TestPIEOSRAMModestAt30K(t *testing.T) {
	// Paper Fig 9: total SRAM consumption is "fairly modest" even with
	// the 2x overhead.
	r := PIEOResources(PIEOGeometry(30000))
	if pct := r.SRAMPercent(StratixV); pct > 25 {
		t.Fatalf("PIEO@30K SRAM = %.1f%%, want modest (<25%%)", pct)
	}
}

func TestPIFOUsesNoSRAM(t *testing.T) {
	r := PIFOResources(1024)
	if r.SRAMBits != 0 || r.SRAMBlocks != 0 {
		t.Fatalf("PIFO reports SRAM usage %d bits / %d blocks; design is all flip-flops", r.SRAMBits, r.SRAMBlocks)
	}
}

func TestClockCalibrationPoints(t *testing.T) {
	// Paper §6.2: PIFO clocked at 57 MHz at 1K on this FPGA; PIEO at
	// ~80 MHz at its 30K operating point.
	if got := PIFOClockMHz(1024); math.Abs(got-57) > 2 {
		t.Fatalf("PIFOClockMHz(1K) = %.1f, want ~57", got)
	}
	if got := PIEOClockMHz(PIEOGeometry(30000)); math.Abs(got-80) > 3 {
		t.Fatalf("PIEOClockMHz(30K) = %.1f, want ~80", got)
	}
}

func TestClockMonotonicallyDecreasing(t *testing.T) {
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	prev := math.Inf(1)
	for _, n := range sizes {
		f := PIEOClockMHz(PIEOGeometry(n))
		if f >= prev {
			t.Fatalf("PIEO clock not decreasing at n=%d: %.1f >= %.1f", n, f, prev)
		}
		prev = f
	}
}

func TestNsPerOpHeadlines(t *testing.T) {
	// 4 cycles at 80 MHz = 50 ns (§6.2), under the 120 ns budget for MTU
	// at 100 Gbps; 4 cycles at 1 GHz ASIC = 4 ns.
	if got := NsPerOp(80, CyclesPerOp); math.Abs(got-50) > 1e-9 {
		t.Fatalf("NsPerOp(80MHz, 4) = %v, want 50", got)
	}
	if got := NsPerOp(ASICClockMHz, CyclesPerOp); math.Abs(got-4) > 1e-9 {
		t.Fatalf("NsPerOp(1GHz, 4) = %v, want 4", got)
	}
	if NsPerOp(80, CyclesPerOp) > 120 {
		t.Fatal("PIEO misses the MTU@100Gbps budget in its own calibration")
	}
}

func TestScalabilityHeadline(t *testing.T) {
	// Paper: PIEO is "over 30x more scalable" than PIFO.
	pifoMax := MaxPIFOFit(StratixV)
	pieoMax := MaxPIEOFit(StratixV)
	if pifoMax < 1024 || pifoMax >= 2048 {
		t.Fatalf("MaxPIFOFit = %d, want in [1024, 2048)", pifoMax)
	}
	if pieoMax < 30000 {
		t.Fatalf("MaxPIEOFit = %d, want >= 30000", pieoMax)
	}
	if ratio := float64(pieoMax) / float64(pifoMax); ratio < 30 {
		t.Fatalf("scalability ratio = %.1fx, want > 30x", ratio)
	}
}

func TestSRAMBlocksStriping(t *testing.T) {
	// Each sublist must be readable in one cycle, so blocks >= one column
	// per sublist slot (SublistSize columns).
	g := PIEOGeometry(30000)
	r := PIEOResources(g)
	if r.SRAMBlocks < g.SublistSize {
		t.Fatalf("SRAMBlocks = %d < SublistSize %d; sublist not fully striped", r.SRAMBlocks, g.SublistSize)
	}
	// And the paper's device has ~2500 blocks; 30K must fit.
	if r.SRAMBlocks > 2500 {
		t.Fatalf("SRAMBlocks = %d exceeds the device's ~2500", r.SRAMBlocks)
	}
}

func TestSchedulingRateMops(t *testing.T) {
	// 80 MHz / 4 cycles = 20 M decisions/s.
	if got := SchedulingRateMops(80, 4); math.Abs(got-20) > 1e-9 {
		t.Fatalf("SchedulingRateMops = %v, want 20", got)
	}
}

func TestPointerEntryBits(t *testing.T) {
	g := PIEOGeometry(16) // 8 sublists of 4
	// id: log2(8)=3, rank 16, time 16, num: log2(4)+1=3.
	if got := g.PointerEntryBits(); got != 38 {
		t.Fatalf("PointerEntryBits = %d, want 38", got)
	}
}

func TestElementBits(t *testing.T) {
	g := PIEOGeometry(16)
	if got := g.ElementBits(); got != 64 {
		t.Fatalf("ElementBits = %d, want 64", got)
	}
}

// Property: PIEO always uses fewer ALMs than PIFO at equal capacity >= 64
// (the whole point of the design).
func TestPIEOBeatsPIFOProperty(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16)%65536 + 64
		return PIEOResources(PIEOGeometry(n)).ALMs < PIFOResources(n).ALMs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
