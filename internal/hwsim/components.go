// Package hwsim is a structural, component-level elaboration of the §5
// hardware design — the closest Go gets to the paper's System Verilog.
// Where internal/core models the ordered list functionally (and merely
// counts hardware work), hwsim builds the datapath out of explicit
// components:
//
//   - a register file of Ordered-Sublist-Array pointer entries,
//   - parallel comparator banks and priority encoders,
//   - a dual-port SRAM whose per-cycle port usage is ASSERTED, not
//     counted: a third access in the same cycle panics.
//
// Each primitive operation executes as an explicit four-phase
// micro-program (compare/encode → read → compare/encode → write), with
// the machine's cycle counter advanced phase by phase. The result is a
// third, independent implementation of the PIEO semantics that the test
// suite checks word-for-word against internal/core and the flat
// reference model — and a machine-checked witness that the §5 datapath
// really fits its two-reads/two-writes, four-cycle budget.
package hwsim

import "fmt"

// PriorityEncoder returns the smallest index whose input bit is set
// (Fig 5's "priority encoder takes as input a bit vector and returns the
// smallest index containing 1"). Width is fixed at construction;
// activations are counted for resource reporting.
type PriorityEncoder struct {
	Width       int
	Activations uint64
}

// NewPriorityEncoder creates an encoder of the given width.
func NewPriorityEncoder(width int) *PriorityEncoder {
	if width <= 0 {
		panic(fmt.Sprintf("hwsim: encoder width %d", width))
	}
	return &PriorityEncoder{Width: width}
}

// Encode returns the first set index, or -1 when no bit is set.
func (p *PriorityEncoder) Encode(bits []bool) int {
	if len(bits) > p.Width {
		panic(fmt.Sprintf("hwsim: %d bits into a %d-wide encoder", len(bits), p.Width))
	}
	p.Activations++
	for i, b := range bits {
		if b {
			return i
		}
	}
	return -1
}

// ComparatorBank models a bank of parallel comparators: one Compare call
// evaluates a predicate across up to Width lanes in a single cycle.
type ComparatorBank struct {
	Width       int
	Activations uint64 // individual comparator firings
}

// NewComparatorBank creates a bank of the given width.
func NewComparatorBank(width int) *ComparatorBank {
	if width <= 0 {
		panic(fmt.Sprintf("hwsim: comparator bank width %d", width))
	}
	return &ComparatorBank{Width: width}
}

// Compare evaluates pred over n lanes and returns the bit vector.
func (c *ComparatorBank) Compare(n int, pred func(lane int) bool) []bool {
	if n > c.Width {
		panic(fmt.Sprintf("hwsim: %d lanes on a %d-wide bank", n, c.Width))
	}
	c.Activations += uint64(n)
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = pred(i)
	}
	return bits
}

// Word is one stored element: the Rank-Sublist entry fields of §5.2.
type Word struct {
	FlowID   uint32
	Rank     uint64
	SendTime uint64
}

// SublistImage is the SRAM image of one sublist: the rank-ordered words
// plus the eligibility-ordered send-time copies.
type SublistImage struct {
	Rank []Word   // Rank-Sublist
	Elig []uint64 // Eligibility-Sublist
}

func (s SublistImage) clone() SublistImage {
	return SublistImage{
		Rank: append([]Word(nil), s.Rank...),
		Elig: append([]uint64(nil), s.Elig...),
	}
}

// DualPortSRAM stores the sublist array and enforces the §5.1 port
// discipline: at most two sublist accesses (reads+writes combined) per
// cycle. The cycle is supplied by the machine; an access on a stale
// cycle or a third access in one cycle is a datapath bug and panics.
type DualPortSRAM struct {
	Reads, Writes uint64

	images    []SublistImage
	cycle     uint64
	portsUsed int
}

// NewDualPortSRAM allocates numSublists empty sublists.
func NewDualPortSRAM(numSublists int) *DualPortSRAM {
	return &DualPortSRAM{images: make([]SublistImage, numSublists)}
}

// BeginCycle opens a new memory cycle, resetting the port budget.
func (m *DualPortSRAM) BeginCycle(cycle uint64) {
	if cycle <= m.cycle && cycle != 0 {
		panic(fmt.Sprintf("hwsim: memory cycle moved backwards %d -> %d", m.cycle, cycle))
	}
	m.cycle = cycle
	m.portsUsed = 0
}

func (m *DualPortSRAM) usePort(kind string, id int) {
	if m.portsUsed >= 2 {
		panic(fmt.Sprintf("hwsim: third SRAM access (%s sublist %d) in cycle %d — dual-port budget exceeded", kind, id, m.cycle))
	}
	m.portsUsed++
}

// Read fetches a sublist image through one SRAM port.
func (m *DualPortSRAM) Read(id int) SublistImage {
	m.usePort("read", id)
	m.Reads++
	return m.images[id].clone()
}

// Write stores a sublist image through one SRAM port.
func (m *DualPortSRAM) Write(id int, img SublistImage) {
	m.usePort("write", id)
	m.Writes++
	m.images[id] = img.clone()
}

// Peek inspects a sublist without consuming a port (testing only).
func (m *DualPortSRAM) Peek(id int) SublistImage { return m.images[id].clone() }

// PointerEntry is one Ordered-Sublist-Array register (§5.2).
type PointerEntry struct {
	SublistID        int
	SmallestRank     uint64
	SmallestSendTime uint64
	Num              int
}

// RegisterFile holds the pointer array in "flip-flops": plain registers
// with whole-array shift support, as the compare-and-shift architecture
// provides.
type RegisterFile struct {
	Entries []PointerEntry
	Shifts  uint64 // entry-positions moved, for resource reporting
}

// NewRegisterFile builds the pointer array over numSublists sublists,
// all initially empty.
func NewRegisterFile(numSublists int) *RegisterFile {
	rf := &RegisterFile{Entries: make([]PointerEntry, numSublists)}
	for i := range rf.Entries {
		rf.Entries[i] = PointerEntry{SublistID: i, SmallestSendTime: NeverTime}
	}
	return rf
}

// NeverTime encodes the always-false predicate (§5.2: "predicate that is
// always false is encoded by assigning send_time to ∞").
const NeverTime = ^uint64(0)

// InsertAt rotates the entry at position from into position to (to <=
// from), shifting the in-between entries right — the hardware's pointer
// re-arrangement when a fresh sublist is claimed.
func (rf *RegisterFile) InsertAt(to, from int) {
	if to > from {
		panic(fmt.Sprintf("hwsim: InsertAt(%d, %d)", to, from))
	}
	moved := rf.Entries[from]
	copy(rf.Entries[to+1:from+1], rf.Entries[to:from])
	rf.Entries[to] = moved
	rf.Shifts += uint64(from - to)
}

// RemoveAt rotates the entry at position from out to position to (from
// <= to), shifting the in-between entries left — retiring an emptied
// sublist to the empty partition.
func (rf *RegisterFile) RemoveAt(from, to int) {
	if from > to {
		panic(fmt.Sprintf("hwsim: RemoveAt(%d, %d)", from, to))
	}
	moved := rf.Entries[from]
	copy(rf.Entries[from:to], rf.Entries[from+1:to+1])
	rf.Entries[to] = moved
	rf.Shifts += uint64(to - from)
}
