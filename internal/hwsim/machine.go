package hwsim

import (
	"errors"
	"fmt"
	"math"
)

// Machine is the elaborated PIEO scheduler datapath: register file +
// comparator banks + priority encoders + dual-port SRAM, executing each
// primitive operation as the §5.2 four-phase micro-program. Notably it
// stores NO insertion sequence numbers: the paper's FIFO tie-break among
// equal ranks emerges purely from insert-after-equals placement and
// stable sublist positions, which the differential tests verify against
// internal/core's explicit (rank, seq) ordering.
type Machine struct {
	capacity    int
	sublistSize int

	mem    *DualPortSRAM
	rf     *RegisterFile
	ptrCmp *ComparatorBank
	ptrEnc *PriorityEncoder
	subCmp *ComparatorBank
	subEnc *PriorityEncoder

	active int
	size   int
	cycle  uint64
	where  map[uint32]int // flow id -> sublist id (§5.2 flow state)
}

// Machine errors mirror the functional model's.
var (
	ErrFull      = errors.New("hwsim: machine full")
	ErrDuplicate = errors.New("hwsim: flow already enqueued")
)

// New builds a machine with capacity n and the paper's √n sublists.
func New(n int) *Machine {
	if n <= 0 {
		panic(fmt.Sprintf("hwsim: capacity %d", n))
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))
	num := 2*((n+s-1)/s) + 2
	return &Machine{
		capacity:    n,
		sublistSize: s,
		mem:         NewDualPortSRAM(num),
		rf:          NewRegisterFile(num),
		ptrCmp:      NewComparatorBank(num),
		ptrEnc:      NewPriorityEncoder(num),
		subCmp:      NewComparatorBank(s + 1),
		subEnc:      NewPriorityEncoder(s + 1),
		where:       make(map[uint32]int, n),
	}
}

// Len returns the number of stored elements.
func (m *Machine) Len() int { return m.size }

// Cycle returns the machine's clock-cycle counter.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Stats summarizes component activity.
type Stats struct {
	Cycles            uint64
	SRAMReads         uint64
	SRAMWrites        uint64
	PtrComparators    uint64
	SubComparators    uint64
	PtrEncodes        uint64
	SubEncodes        uint64
	PointerShifts     uint64
	PeakActiveSublist int
}

// Stats returns the accumulated component counters.
func (m *Machine) Stats() Stats {
	return Stats{
		Cycles:         m.cycle,
		SRAMReads:      m.mem.Reads,
		SRAMWrites:     m.mem.Writes,
		PtrComparators: m.ptrCmp.Activations,
		SubComparators: m.subCmp.Activations,
		PtrEncodes:     m.ptrEnc.Activations,
		SubEncodes:     m.subEnc.Activations,
		PointerShifts:  m.rf.Shifts,
	}
}

// full reports whether the image holds a complete sublist.
func (m *Machine) fullImg(img SublistImage) bool { return len(img.Rank) == m.sublistSize }

// Enqueue runs the §5.2 enqueue micro-program.
func (m *Machine) Enqueue(w Word) error {
	if m.size == m.capacity {
		return ErrFull
	}
	if _, dup := m.where[w.FlowID]; dup {
		return ErrDuplicate
	}

	// Cycle 1: select the target sublist on the pointer array.
	m.cycle++
	pos := 0
	if m.active == 0 {
		// Empty machine: the head of the empty partition becomes the
		// first active sublist.
		m.active = 1
	} else {
		bits := m.ptrCmp.Compare(m.active, func(i int) bool {
			return m.rf.Entries[i].SmallestRank > w.Rank
		})
		j := m.ptrEnc.Encode(bits)
		switch {
		case j == -1:
			pos = m.active - 1
		case j == 0:
			pos = 0
		default:
			pos = j - 1
		}
	}

	// Cycle 2: read S (and S' when S is full).
	m.cycle++
	m.mem.BeginCycle(m.cycle)
	sID := m.rf.Entries[pos].SublistID
	img := m.mem.Read(sID)
	wasFull := m.fullImg(img)
	spPos := -1
	var spImg SublistImage
	if wasFull {
		if pos+1 < m.active && m.rf.Entries[pos+1].Num < m.sublistSize {
			spPos = pos + 1
			spImg = m.mem.Read(m.rf.Entries[spPos].SublistID)
		} else {
			// Claim a fresh empty sublist and rotate it to pos+1; it is
			// empty, so no SRAM read is needed.
			m.rf.InsertAt(pos+1, m.active)
			m.active++
			spPos = pos + 1
		}
	}

	// Cycle 3: find positions with comparators + encoders and mutate the
	// staged images.
	m.cycle++
	m.insertWord(&img, w)
	m.where[w.FlowID] = sID
	if wasFull {
		tail := img.Rank[len(img.Rank)-1]
		img.Rank = img.Rank[:len(img.Rank)-1]
		m.removeElig(&img, tail.SendTime)
		// §5.2: "the tail element in S.Rank-Sublist will be moved to the
		// head of S'.Rank-Sublist" — deterministic head placement keeps
		// equal-rank words in their original (FIFO) order.
		m.insertHead(&spImg, tail)
		m.where[tail.FlowID] = m.rf.Entries[spPos].SublistID
	}

	// Cycle 4: write back and refresh pointer metadata.
	m.cycle++
	m.mem.BeginCycle(m.cycle)
	m.mem.Write(sID, img)
	m.refresh(pos, img)
	if wasFull {
		m.mem.Write(m.rf.Entries[spPos].SublistID, spImg)
		m.refresh(spPos, spImg)
	}
	m.size++
	return nil
}

// Dequeue runs the §5.2 dequeue micro-program at the given time.
func (m *Machine) Dequeue(now uint64) (Word, bool) {
	// Cycle 1: first sublist whose smallest send time has passed.
	m.cycle++
	if m.active == 0 {
		return Word{}, false
	}
	bits := m.ptrCmp.Compare(m.active, func(i int) bool {
		return now >= m.rf.Entries[i].SmallestSendTime
	})
	pos := m.ptrEnc.Encode(bits)
	if pos == -1 {
		return Word{}, false
	}
	return m.extract(pos, func(img SublistImage) int {
		b := m.subCmp.Compare(len(img.Rank), func(i int) bool {
			return img.Rank[i].SendTime <= now
		})
		return m.subEnc.Encode(b)
	})
}

// DequeueFlow runs the dequeue(f) micro-program.
func (m *Machine) DequeueFlow(id uint32) (Word, bool) {
	sID, ok := m.where[id]
	if !ok {
		return Word{}, false
	}
	// Cycle 1: locate the sublist's pointer position (parallel compare
	// on sublist ids).
	m.cycle++
	bits := m.ptrCmp.Compare(m.active, func(i int) bool {
		return m.rf.Entries[i].SublistID == sID
	})
	pos := m.ptrEnc.Encode(bits)
	if pos == -1 {
		panic(fmt.Sprintf("hwsim: flow state points at inactive sublist %d", sID))
	}
	return m.extract(pos, func(img SublistImage) int {
		b := m.subCmp.Compare(len(img.Rank), func(i int) bool {
			return img.Rank[i].FlowID == id
		})
		return m.subEnc.Encode(b)
	})
}

// extract performs cycles 2–4 of any dequeue variant: read S (plus a
// non-full donor neighbor when S is full), remove the element selected
// by pick, refill to preserve Invariant 1, write back, and retire
// emptied sublists.
func (m *Machine) extract(pos int, pick func(SublistImage) int) (Word, bool) {
	// Cycle 2: reads.
	m.cycle++
	m.mem.BeginCycle(m.cycle)
	sID := m.rf.Entries[pos].SublistID
	img := m.mem.Read(sID)
	wasFull := m.fullImg(img)

	donorPos := -1
	var donorImg SublistImage
	donorLeft := false
	if wasFull {
		if pos > 0 && m.rf.Entries[pos-1].Num < m.sublistSize {
			donorPos = pos - 1
			donorLeft = true
			donorImg = m.mem.Read(m.rf.Entries[donorPos].SublistID)
		} else if pos+1 < m.active && m.rf.Entries[pos+1].Num < m.sublistSize {
			donorPos = pos + 1
			donorImg = m.mem.Read(m.rf.Entries[donorPos].SublistID)
		}
	}

	// Cycle 3: selection and mutation of the staged images.
	m.cycle++
	idx := pick(img)
	if idx == -1 {
		panic(fmt.Sprintf("hwsim: metadata promised an element in sublist %d but none matched", sID))
	}
	out := img.Rank[idx]
	copy(img.Rank[idx:], img.Rank[idx+1:])
	img.Rank = img.Rank[:len(img.Rank)-1]
	m.removeElig(&img, out.SendTime)
	delete(m.where, out.FlowID)

	if donorPos != -1 && len(donorImg.Rank) > 0 {
		// §5.2: the moved element "is deterministically added to either
		// the head (if S' is to the left of S) or to the tail (if S' is
		// to the right of S) of S.Rank-Sublist" — the fixed placement is
		// what preserves FIFO order among equal ranks.
		var moved Word
		if donorLeft {
			moved = donorImg.Rank[len(donorImg.Rank)-1]
			donorImg.Rank = donorImg.Rank[:len(donorImg.Rank)-1]
			m.removeElig(&donorImg, moved.SendTime)
			m.insertHead(&img, moved)
		} else {
			moved = donorImg.Rank[0]
			copy(donorImg.Rank, donorImg.Rank[1:])
			donorImg.Rank = donorImg.Rank[:len(donorImg.Rank)-1]
			m.removeElig(&donorImg, moved.SendTime)
			m.insertTail(&img, moved)
		}
		m.where[moved.FlowID] = sID
	}

	// Cycle 4: write back, refresh metadata, retire empties.
	m.cycle++
	m.mem.BeginCycle(m.cycle)
	m.mem.Write(sID, img)
	m.refresh(pos, img)
	if donorPos != -1 {
		m.mem.Write(m.rf.Entries[donorPos].SublistID, donorImg)
		m.refresh(donorPos, donorImg)
	}
	m.size--

	// Retire in right-to-left order so positions stay valid.
	if donorPos != -1 && donorPos > pos && len(donorImg.Rank) == 0 {
		m.retire(donorPos)
	}
	if len(img.Rank) == 0 {
		m.retire(pos)
	}
	if donorPos != -1 && donorPos < pos && len(donorImg.Rank) == 0 {
		m.retire(donorPos)
	}
	return out, true
}

// insertWord places w at its rank position (after equal ranks — the
// structural FIFO tie-break) and its send time into the eligibility
// order, using the sublist comparator bank and encoder.
func (m *Machine) insertWord(img *SublistImage, w Word) {
	bits := m.subCmp.Compare(len(img.Rank), func(i int) bool {
		return img.Rank[i].Rank > w.Rank
	})
	idx := m.subEnc.Encode(bits)
	if idx == -1 {
		idx = len(img.Rank)
	}
	img.Rank = append(img.Rank, Word{})
	copy(img.Rank[idx+1:], img.Rank[idx:])
	img.Rank[idx] = w

	ebits := m.subCmp.Compare(len(img.Elig), func(i int) bool {
		return img.Elig[i] > w.SendTime
	})
	eidx := m.subEnc.Encode(ebits)
	if eidx == -1 {
		eidx = len(img.Elig)
	}
	img.Elig = append(img.Elig, 0)
	copy(img.Elig[eidx+1:], img.Elig[eidx:])
	img.Elig[eidx] = w.SendTime
}

// insertHead places w at the head of the rank order (used for words
// migrating in from the left) and its send time into the eligibility
// order via compare + encode.
func (m *Machine) insertHead(img *SublistImage, w Word) {
	img.Rank = append(img.Rank, Word{})
	copy(img.Rank[1:], img.Rank)
	img.Rank[0] = w
	m.insertElig(img, w.SendTime)
}

// insertTail appends w to the rank order (words migrating in from the
// right) and its send time into the eligibility order.
func (m *Machine) insertTail(img *SublistImage, w Word) {
	img.Rank = append(img.Rank, w)
	m.insertElig(img, w.SendTime)
}

// insertElig places t into the eligibility order via compare + encode.
func (m *Machine) insertElig(img *SublistImage, t uint64) {
	ebits := m.subCmp.Compare(len(img.Elig), func(i int) bool {
		return img.Elig[i] > t
	})
	eidx := m.subEnc.Encode(ebits)
	if eidx == -1 {
		eidx = len(img.Elig)
	}
	img.Elig = append(img.Elig, 0)
	copy(img.Elig[eidx+1:], img.Elig[eidx:])
	img.Elig[eidx] = t
}

// removeElig deletes one occurrence of t from the eligibility order via
// an equality compare + encode.
func (m *Machine) removeElig(img *SublistImage, t uint64) {
	bits := m.subCmp.Compare(len(img.Elig), func(i int) bool {
		return img.Elig[i] == t
	})
	idx := m.subEnc.Encode(bits)
	if idx == -1 {
		panic(fmt.Sprintf("hwsim: eligibility sublist lost send time %d", t))
	}
	copy(img.Elig[idx:], img.Elig[idx+1:])
	img.Elig = img.Elig[:len(img.Elig)-1]
}

// refresh updates the pointer entry at pos from a staged image.
func (m *Machine) refresh(pos int, img SublistImage) {
	e := &m.rf.Entries[pos]
	e.Num = len(img.Rank)
	if len(img.Rank) == 0 {
		e.SmallestRank = 0
		e.SmallestSendTime = NeverTime
		return
	}
	e.SmallestRank = img.Rank[0].Rank
	e.SmallestSendTime = img.Elig[0]
}

// retire shifts an emptied sublist to the head of the empty partition.
func (m *Machine) retire(pos int) {
	m.rf.RemoveAt(pos, m.active-1)
	m.active--
}

// Snapshot returns the Global-Ordered-List by stitching the active
// sublists in pointer order (testing/diagnostics; reads via Peek so no
// ports are consumed).
func (m *Machine) Snapshot() []Word {
	out := make([]Word, 0, m.size)
	for i := 0; i < m.active; i++ {
		img := m.mem.Peek(m.rf.Entries[i].SublistID)
		out = append(out, img.Rank...)
	}
	return out
}

// CheckInvariants validates the machine's structure: partitioning,
// Invariant 1, global rank order, metadata and eligibility coherence,
// and flow-state consistency.
func (m *Machine) CheckInvariants() error {
	total := 0
	var prevRank uint64
	for i, e := range m.rf.Entries {
		img := m.mem.Peek(e.SublistID)
		if i < m.active {
			if len(img.Rank) == 0 {
				return fmt.Errorf("active position %d empty", i)
			}
		} else if len(img.Rank) != 0 {
			return fmt.Errorf("empty-partition position %d holds %d words", i, len(img.Rank))
		}
		if e.Num != len(img.Rank) {
			return fmt.Errorf("position %d num=%d want %d", i, e.Num, len(img.Rank))
		}
		if i+1 < m.active {
			next := m.mem.Peek(m.rf.Entries[i+1].SublistID)
			if len(img.Rank) < m.sublistSize && len(next.Rank) < m.sublistSize {
				return fmt.Errorf("Invariant 1 violated at %d,%d", i, i+1)
			}
		}
		if len(img.Rank) == 0 {
			continue
		}
		if e.SmallestRank != img.Rank[0].Rank || e.SmallestSendTime != img.Elig[0] {
			return fmt.Errorf("position %d metadata stale", i)
		}
		if len(img.Elig) != len(img.Rank) {
			return fmt.Errorf("position %d eligibility size mismatch", i)
		}
		for j, w := range img.Rank {
			if (total > 0 || j > 0) && w.Rank < prevRank {
				return fmt.Errorf("global rank order violated at position %d index %d", i, j)
			}
			prevRank = w.Rank
			if sid, ok := m.where[w.FlowID]; !ok || sid != e.SublistID {
				return fmt.Errorf("flow state wrong for %d", w.FlowID)
			}
			total++
		}
		for j := 1; j < len(img.Elig); j++ {
			if img.Elig[j-1] > img.Elig[j] {
				return fmt.Errorf("eligibility sublist unsorted at position %d", i)
			}
		}
	}
	if total != m.size {
		return fmt.Errorf("size=%d stored=%d", m.size, total)
	}
	return nil
}
