package hwsim

import (
	"math/rand"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
)

func TestEmptyMachine(t *testing.T) {
	m := New(16)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Dequeue(100); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	if _, ok := m.DequeueFlow(1); ok {
		t.Fatal("dequeue(f) from empty succeeded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicOrdering(t *testing.T) {
	m := New(16)
	for _, w := range []Word{{1, 30, 0}, {2, 10, 0}, {3, 20, 0}} {
		if err := m.Enqueue(w); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint32{2, 3, 1}
	for _, id := range want {
		w, ok := m.Dequeue(0)
		if !ok || w.FlowID != id {
			t.Fatalf("Dequeue = %v,%v, want flow %d", w, ok, id)
		}
	}
}

func TestEligibilityFilter(t *testing.T) {
	m := New(16)
	m.Enqueue(Word{1, 10, 500}) // best rank, not yet eligible
	m.Enqueue(Word{2, 20, 0})
	w, ok := m.Dequeue(100)
	if !ok || w.FlowID != 2 {
		t.Fatalf("Dequeue(100) = %v, want flow 2", w)
	}
	if _, ok := m.Dequeue(100); ok {
		t.Fatal("ineligible element dequeued")
	}
	w, ok = m.Dequeue(500)
	if !ok || w.FlowID != 1 {
		t.Fatalf("Dequeue(500) = %v, want flow 1", w)
	}
}

func TestFourCyclesPerOp(t *testing.T) {
	m := New(64)
	c0 := m.Cycle()
	m.Enqueue(Word{1, 5, 0})
	if got := m.Cycle() - c0; got != 4 {
		t.Fatalf("enqueue took %d cycles, want 4", got)
	}
	c0 = m.Cycle()
	m.Dequeue(0)
	if got := m.Cycle() - c0; got != 4 {
		t.Fatalf("dequeue took %d cycles, want 4", got)
	}
}

func TestDuplicateAndCapacity(t *testing.T) {
	m := New(4)
	for i := uint32(0); i < 4; i++ {
		if err := m.Enqueue(Word{i, uint64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Enqueue(Word{9, 9, 0}); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	m.Dequeue(0)
	if err := m.Enqueue(Word{1, 1, 0}); err != ErrDuplicate {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestPortDisciplinePanics(t *testing.T) {
	mem := NewDualPortSRAM(4)
	mem.BeginCycle(1)
	mem.Read(0)
	mem.Read(1)
	defer func() {
		if recover() == nil {
			t.Fatal("third same-cycle access did not panic")
		}
	}()
	mem.Read(2)
}

func TestPortDisciplineResetsPerCycle(t *testing.T) {
	mem := NewDualPortSRAM(4)
	mem.BeginCycle(1)
	mem.Read(0)
	mem.Write(1, SublistImage{})
	mem.BeginCycle(2)
	mem.Read(2)
	mem.Write(3, SublistImage{})
	if mem.Reads != 2 || mem.Writes != 2 {
		t.Fatalf("reads/writes = %d/%d", mem.Reads, mem.Writes)
	}
}

func TestEncoderAndBankBounds(t *testing.T) {
	enc := NewPriorityEncoder(4)
	if got := enc.Encode([]bool{false, true, true}); got != 1 {
		t.Fatalf("Encode = %d", got)
	}
	if got := enc.Encode([]bool{false, false}); got != -1 {
		t.Fatalf("Encode = %d, want -1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized encode did not panic")
		}
	}()
	enc.Encode(make([]bool, 5))
}

func TestRegisterFileRotations(t *testing.T) {
	rf := NewRegisterFile(4) // ids 0,1,2,3
	rf.InsertAt(1, 3)        // id 3 moves to position 1
	wantOrder := []int{0, 3, 1, 2}
	for i, w := range wantOrder {
		if rf.Entries[i].SublistID != w {
			t.Fatalf("after InsertAt: %v", rf.Entries)
		}
	}
	rf.RemoveAt(1, 3) // id 3 back to the tail
	for i, w := range []int{0, 1, 2, 3} {
		if rf.Entries[i].SublistID != w {
			t.Fatalf("after RemoveAt: %v", rf.Entries)
		}
	}
	if rf.Shifts != 4 {
		t.Fatalf("Shifts = %d, want 4", rf.Shifts)
	}
}

// TestStructuralFIFOTieBreak: equal ranks dequeue in enqueue order with
// no sequence numbers stored anywhere — the tie-break is structural.
func TestStructuralFIFOTieBreak(t *testing.T) {
	m := New(64)
	for i := uint32(0); i < 30; i++ {
		if err := m.Enqueue(Word{i, 7, 0}); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 30; i++ {
		w, ok := m.Dequeue(0)
		if !ok || w.FlowID != i {
			t.Fatalf("Dequeue = %v,%v, want flow %d (structural FIFO)", w, ok, i)
		}
	}
}

// runDifferentialVsCore drives the structural machine and the functional
// model with the same operations and demands identical outputs,
// including tie-breaks.
func runDifferentialVsCore(t *testing.T, seed int64, capacity, steps, rankSpace, timeSpace int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	hw := New(capacity)
	fn := core.New(capacity)
	nextID := uint32(0)

	for step := 0; step < steps; step++ {
		switch rng.Intn(3) {
		case 0:
			w := Word{FlowID: nextID, Rank: uint64(rng.Intn(rankSpace)), SendTime: uint64(rng.Intn(timeSpace))}
			nextID++
			hwErr := hw.Enqueue(w)
			fnErr := fn.Enqueue(core.Entry{ID: w.FlowID, Rank: w.Rank, SendTime: clock.Time(w.SendTime)})
			if (hwErr == nil) != (fnErr == nil) {
				t.Fatalf("seed %d step %d: enqueue err %v vs %v", seed, step, hwErr, fnErr)
			}
		case 1:
			now := uint64(rng.Intn(timeSpace))
			hwW, hwOK := hw.Dequeue(now)
			fnE, fnOK := fn.Dequeue(clock.Time(now))
			if hwOK != fnOK || (hwOK && (hwW.FlowID != fnE.ID || hwW.Rank != fnE.Rank)) {
				t.Fatalf("seed %d step %d: Dequeue(%d) = %v,%v vs %v,%v", seed, step, now, hwW, hwOK, fnE, fnOK)
			}
		case 2:
			var id uint32
			if nextID > 0 {
				id = uint32(rng.Intn(int(nextID)))
			}
			hwW, hwOK := hw.DequeueFlow(id)
			fnE, fnOK := fn.DequeueFlow(id)
			if hwOK != fnOK || (hwOK && hwW.FlowID != fnE.ID) {
				t.Fatalf("seed %d step %d: DequeueFlow(%d) = %v,%v vs %v,%v", seed, step, id, hwW, hwOK, fnE, fnOK)
			}
		}
		if hw.Len() != fn.Len() {
			t.Fatalf("seed %d step %d: Len %d vs %d", seed, step, hw.Len(), fn.Len())
		}
		if err := hw.CheckInvariants(); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, step, err)
		}
	}
	hwSnap := hw.Snapshot()
	fnSnap := fn.Snapshot()
	for i := range hwSnap {
		if hwSnap[i].FlowID != fnSnap[i].ID || hwSnap[i].Rank != fnSnap[i].Rank {
			t.Fatalf("seed %d: snapshot[%d] %v vs %v", seed, i, hwSnap[i], fnSnap[i])
		}
	}
}

func TestDifferentialVsCoreSmall(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		runDifferentialVsCore(t, seed, 9, 2500, 8, 8)
	}
}

func TestDifferentialVsCoreTies(t *testing.T) {
	// Two distinct ranks: heavy structural-FIFO pressure.
	for seed := int64(50); seed < 60; seed++ {
		runDifferentialVsCore(t, seed, 32, 3000, 2, 4)
	}
}

func TestDifferentialVsCoreMedium(t *testing.T) {
	for seed := int64(100); seed < 105; seed++ {
		runDifferentialVsCore(t, seed, 256, 5000, 1<<16, 64)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := New(256)
	for i := uint32(0); i < 200; i++ {
		m.Enqueue(Word{i, uint64(i * 7 % 64), 0})
	}
	for i := 0; i < 100; i++ {
		m.Dequeue(0)
	}
	s := m.Stats()
	if s.Cycles != 4*300 {
		t.Fatalf("Cycles = %d, want 1200", s.Cycles)
	}
	if s.SRAMReads == 0 || s.SRAMWrites == 0 || s.PtrComparators == 0 || s.SubEncodes == 0 {
		t.Fatalf("counters not accumulating: %+v", s)
	}
	// The machine-wide guarantee: SRAM traffic never exceeds two
	// accesses per op per phase = 4 per op.
	ops := uint64(300)
	if s.SRAMReads+s.SRAMWrites > 4*ops {
		t.Fatalf("SRAM accesses %d exceed 4/op", s.SRAMReads+s.SRAMWrites)
	}
}
