package hwsim

import (
	"testing"
	"testing/quick"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// Property: for any short random op program, the structural machine and
// the functional model produce identical results and the machine's
// invariants hold throughout. This complements the seeded differential
// tests with quick-check generated programs.
func TestMachineMatchesCoreProperty(t *testing.T) {
	type step struct {
		Op   uint8
		Rank uint8
		Time uint8
	}
	f := func(steps []step) bool {
		const capacity = 12
		hw := New(capacity)
		fn := core.New(capacity)
		nextID := uint32(0)
		for _, s := range steps {
			switch s.Op % 3 {
			case 0:
				w := Word{FlowID: nextID, Rank: uint64(s.Rank % 8), SendTime: uint64(s.Time % 4)}
				nextID++
				hwErr := hw.Enqueue(w)
				fnErr := fn.Enqueue(core.Entry{ID: w.FlowID, Rank: w.Rank, SendTime: clock.Time(w.SendTime)})
				if (hwErr == nil) != (fnErr == nil) {
					return false
				}
			case 1:
				now := uint64(s.Time % 4)
				hwW, hwOK := hw.Dequeue(now)
				fnE, fnOK := fn.Dequeue(clock.Time(now))
				if hwOK != fnOK || (hwOK && hwW.FlowID != fnE.ID) {
					return false
				}
			case 2:
				var id uint32
				if nextID > 0 {
					id = uint32(s.Rank) % nextID
				}
				_, hwOK := hw.DequeueFlow(id)
				_, fnOK := fn.DequeueFlow(id)
				if hwOK != fnOK {
					return false
				}
			}
			if hw.Len() != fn.Len() || hw.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: every operation costs exactly 4 cycles (successful or not,
// minus the 1-cycle failed-select path) and at most 4 SRAM accesses.
func TestMachineCycleBudgetProperty(t *testing.T) {
	f := func(ranks []uint8) bool {
		m := New(16)
		for i, r := range ranks {
			if i >= 16 {
				break
			}
			before := m.Cycle()
			memBefore := m.Stats().SRAMReads + m.Stats().SRAMWrites
			if err := m.Enqueue(Word{FlowID: uint32(i), Rank: uint64(r)}); err != nil {
				return false
			}
			if m.Cycle()-before != 4 {
				return false
			}
			if m.Stats().SRAMReads+m.Stats().SRAMWrites-memBefore > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
