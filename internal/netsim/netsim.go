// Package netsim is the discrete-event network substrate the evaluation
// runs on: a transmit link of fixed rate driven by a pluggable packet
// scheduler. It replaces the paper's 40 Gbps FPGA interface (§6.3) with a
// simulated wire on a nanosecond virtual clock — the scheduler logic under
// test is identical, only the MAC is simulated.
//
// The simulation loop is the paper's scheduling model (Fig 1): packets
// arrive into per-flow queues owned by the scheduler; whenever the link
// goes idle, the scheduler is asked for the next packet (the
// output-triggered dequeue path); non-work-conserving schedulers that
// currently have no eligible packet may publish a wake-up hint (their
// smallest send_time) so the simulator re-polls exactly when eligibility
// can next change.
package netsim

import (
	"fmt"
	"math"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/eventq"
	"pieo/internal/flowq"
	"pieo/internal/pktgen"
)

// Link models a transmit link of fixed rate.
type Link struct {
	RateGbps float64
}

// TransmitTime returns the wire time of a packet of the given size in
// simulated nanoseconds (at least 1).
func (l Link) TransmitTime(size uint32) clock.Time {
	if l.RateGbps <= 0 {
		panic(fmt.Sprintf("netsim: link rate must be positive, got %v", l.RateGbps))
	}
	ns := math.Round(float64(size) * 8 / l.RateGbps)
	if ns < 1 {
		ns = 1
	}
	return clock.Time(ns)
}

// Scheduler is the contract a packet scheduler offers the simulator.
type Scheduler interface {
	// OnArrival delivers a packet to its flow queue at time now.
	OnArrival(now clock.Time, p flowq.Packet)
	// NextPacket picks the packet to transmit when the link goes idle
	// at time now, or ok=false if nothing is eligible.
	NextPacket(now clock.Time) (flowq.Packet, bool)
}

// WakeHinter is implemented by non-work-conserving schedulers that know
// when the next element becomes eligible; the simulator polls again at
// that instant instead of spinning.
type WakeHinter interface {
	// NextWake returns the earliest future time at which NextPacket
	// could succeed, or ok=false if no such time is known.
	NextWake(now clock.Time) (clock.Time, bool)
}

// BackendReporter is implemented by schedulers built over a pluggable
// ordered-list backend that can summarize its operation counters.
type BackendReporter interface {
	BackendStats() backend.Stats
}

// FaultReporter is implemented by schedulers that run with a non-strict
// failure contract and count faults and admission decisions instead of
// panicking (sched.Scheduler, hier.Hierarchy).
type FaultReporter interface {
	FaultStats() backend.FaultStats
}

// Sim couples a link, a scheduler, and an event queue.
type Sim struct {
	// OnTransmit, if set, is invoked when a packet finishes
	// transmitting. Experiments hang their meters here.
	OnTransmit func(now clock.Time, p flowq.Packet)

	link   Link
	sched  Scheduler
	wall   clock.Wall
	events eventq.Queue

	busy    bool
	busyNs  clock.Time
	sent    uint64
	wakeAt  clock.Time
	hasWake bool
}

// New creates a simulation over the given link and scheduler.
func New(link Link, sched Scheduler) *Sim {
	if sched == nil {
		panic("netsim: scheduler must not be nil")
	}
	return &Sim{link: link, sched: sched}
}

// Now returns the current simulated time.
func (s *Sim) Now() clock.Time { return s.wall.Now() }

// Sent returns the number of packets fully transmitted.
func (s *Sim) Sent() uint64 { return s.sent }

// BackendStats returns the scheduler's ordered-list operation counters,
// or zeroes when the scheduler does not report a backend.
func (s *Sim) BackendStats() backend.Stats {
	if r, ok := s.sched.(BackendReporter); ok {
		return r.BackendStats()
	}
	return backend.Stats{}
}

// FaultStats returns the scheduler's non-strict fault and admission
// counters, or zeroes when the scheduler does not report them.
func (s *Sim) FaultStats() backend.FaultStats {
	if r, ok := s.sched.(FaultReporter); ok {
		return r.FaultStats()
	}
	return backend.FaultStats{}
}

// Utilization returns the fraction of elapsed time the link was busy.
func (s *Sim) Utilization() float64 {
	if s.wall.Now() == 0 {
		return 0
	}
	return float64(s.busyNs) / float64(s.wall.Now())
}

// Inject schedules the packet arrivals produced by a generator merge.
func (s *Sim) Inject(arrivals []pktgen.Arrival) {
	for _, a := range arrivals {
		a := a
		s.events.Push(a.At, func(now clock.Time) {
			s.sched.OnArrival(now, a.Pkt)
			s.tryTransmit(now)
		})
	}
}

// InjectOne schedules a single arrival.
func (s *Sim) InjectOne(at clock.Time, p flowq.Packet) {
	s.events.Push(at, func(now clock.Time) {
		s.sched.OnArrival(now, p)
		s.tryTransmit(now)
	})
}

// Run processes events until the queue is empty or simulated time would
// pass `until`. It returns the time of the last processed event.
func (s *Sim) Run(until clock.Time) clock.Time {
	for {
		at, ok := s.events.PeekTime()
		if !ok || at > until {
			return s.wall.Now()
		}
		ev, _ := s.events.Pop()
		s.wall.AdvanceTo(ev.At)
		if ev.Run != nil {
			ev.Run(ev.At)
		}
	}
}

// tryTransmit asks the scheduler for work if the link is idle, and
// otherwise arranges to be re-polled at the scheduler's wake hint.
func (s *Sim) tryTransmit(now clock.Time) {
	if s.busy {
		return
	}
	p, ok := s.sched.NextPacket(now)
	if !ok {
		s.armWake(now)
		return
	}
	s.busy = true
	tx := s.link.TransmitTime(p.Size)
	s.busyNs += tx
	s.events.Push(now+tx, func(done clock.Time) {
		s.busy = false
		s.sent++
		if s.OnTransmit != nil {
			s.OnTransmit(done, p)
		}
		s.tryTransmit(done)
	})
}

// armWake schedules a poll at the scheduler's next-wake hint, keeping at
// most one outstanding wake and always the earliest known.
func (s *Sim) armWake(now clock.Time) {
	h, ok := s.sched.(WakeHinter)
	if !ok {
		return
	}
	at, ok := h.NextWake(now)
	if !ok || at <= now {
		return
	}
	if s.hasWake && s.wakeAt <= at {
		return
	}
	s.hasWake = true
	s.wakeAt = at
	s.events.Push(at, func(t clock.Time) {
		if s.hasWake && s.wakeAt == t {
			s.hasWake = false
		}
		s.tryTransmit(t)
	})
}
