package netsim

import (
	"math"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/pktgen"
)

// fifoSched is the simplest possible scheduler: one global FIFO.
type fifoSched struct {
	q flowq.Queue
}

func (f *fifoSched) OnArrival(_ clock.Time, p flowq.Packet) { f.q.Push(p) }
func (f *fifoSched) NextPacket(clock.Time) (flowq.Packet, bool) {
	return f.q.Pop()
}

// pacedSched releases its FIFO head only after the packet's SendAt time —
// a minimal non-work-conserving scheduler with a wake hint.
type pacedSched struct {
	q flowq.Queue
}

func (f *pacedSched) OnArrival(_ clock.Time, p flowq.Packet) { f.q.Push(p) }
func (f *pacedSched) NextPacket(now clock.Time) (flowq.Packet, bool) {
	head, ok := f.q.Head()
	if !ok || head.SendAt > now {
		return flowq.Packet{}, false
	}
	return f.q.Pop()
}
func (f *pacedSched) NextWake(now clock.Time) (clock.Time, bool) {
	head, ok := f.q.Head()
	if !ok {
		return 0, false
	}
	return head.SendAt, true
}

func TestTransmitTime(t *testing.T) {
	l := Link{RateGbps: 100}
	if got := l.TransmitTime(1500); got != 120 {
		t.Fatalf("TransmitTime(1500@100G) = %v, want 120", got)
	}
	l = Link{RateGbps: 40}
	if got := l.TransmitTime(1500); got != 300 {
		t.Fatalf("TransmitTime(1500@40G) = %v, want 300", got)
	}
	// Tiny packet on a fast link still takes at least a tick.
	l = Link{RateGbps: 1000}
	if got := l.TransmitTime(1); got != 1 {
		t.Fatalf("TransmitTime(1B@1T) = %v, want 1", got)
	}
}

func TestTransmitTimePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-rate link")
		}
	}()
	Link{}.TransmitTime(100)
}

func TestBackToBackTransmission(t *testing.T) {
	sched := &fifoSched{}
	sim := New(Link{RateGbps: 100}, sched)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }

	// Three MTU packets arriving at t=0 on a 100G link leave at 120,
	// 240, 360 ns.
	for i := 0; i < 3; i++ {
		sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
	}
	sim.Run(10_000)
	want := []clock.Time{120, 240, 360}
	if len(done) != 3 {
		t.Fatalf("transmitted %d, want 3", len(done))
	}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %v, want %v", i, done[i], w)
		}
	}
	if sim.Sent() != 3 {
		t.Fatalf("Sent = %d, want 3", sim.Sent())
	}
}

func TestIdleThenArrival(t *testing.T) {
	sched := &fifoSched{}
	sim := New(Link{RateGbps: 100}, sched)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }

	sim.InjectOne(1000, flowq.Packet{Flow: 1, Size: 1500})
	sim.Run(10_000)
	if len(done) != 1 || done[0] != 1120 {
		t.Fatalf("done = %v, want [1120]", done)
	}
}

func TestRunHonorsUntil(t *testing.T) {
	sched := &fifoSched{}
	sim := New(Link{RateGbps: 100}, sched)
	sim.InjectOne(500, flowq.Packet{Flow: 1, Size: 1500})
	sim.InjectOne(50_000, flowq.Packet{Flow: 1, Size: 1500})
	sim.Run(10_000)
	if sim.Sent() != 1 {
		t.Fatalf("Sent = %d, want 1 (second arrival beyond horizon)", sim.Sent())
	}
	if sim.Now() > 10_000 {
		t.Fatalf("Now = %v, beyond until", sim.Now())
	}
}

func TestWakeHintPacing(t *testing.T) {
	// A packet arrives at t=0 but may only be sent at t=5000; the
	// simulator must wake exactly then rather than dropping it.
	sched := &pacedSched{}
	sim := New(Link{RateGbps: 100}, sched)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }

	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, SendAt: 5000})
	sim.Run(100_000)
	if len(done) != 1 || done[0] != 5120 {
		t.Fatalf("done = %v, want [5120] (wake at 5000 + 120 wire time)", done)
	}
}

func TestUtilization(t *testing.T) {
	sched := &fifoSched{}
	sim := New(Link{RateGbps: 100}, sched)
	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500})
	// One packet: 120 ns busy; last event at 120 → utilization 1.0.
	sim.Run(1_000)
	if u := sim.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1.0", u)
	}
}

func TestInjectMergedStream(t *testing.T) {
	gen := &pktgen.CBR{Flow: 1, Size: pktgen.FixedSize(1500), Gap: 300, Count: 10}
	arrivals := pktgen.Merge(gen)
	sched := &fifoSched{}
	sim := New(Link{RateGbps: 40}, sched)
	sim.Inject(arrivals)
	sim.Run(1_000_000)
	if sim.Sent() != 10 {
		t.Fatalf("Sent = %d, want 10", sim.Sent())
	}
	// CBR at exactly line rate (300 ns per MTU at 40G): always busy.
	if u := sim.Utilization(); math.Abs(u-1.0) > 0.01 {
		t.Fatalf("Utilization = %v, want ~1.0", u)
	}
}

func TestEarlierWakeHintOverridesLater(t *testing.T) {
	// Two paced packets: the later one arrives first and arms a far
	// wake; when the earlier one arrives, the simulator must re-arm for
	// the nearer instant instead of sleeping past it.
	sched := &pacedSched{}
	sim := New(Link{RateGbps: 100}, sched)
	var done []clock.Time
	sim.OnTransmit = func(now clock.Time, p flowq.Packet) { done = append(done, now) }

	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, SendAt: 50_000, Seq: 1})
	sim.InjectOne(100, flowq.Packet{Flow: 1, Size: 1500, SendAt: 50_000, Seq: 2})
	sim.Run(200_000)
	if len(done) != 2 {
		t.Fatalf("transmitted %d, want 2", len(done))
	}
	if done[0] != 50_120 {
		t.Fatalf("first completion at %v, want 50120", done[0])
	}
}

func TestWakeAfterIdleGap(t *testing.T) {
	// A paced packet whose SendAt lies beyond every queued event: the
	// wake event itself must keep the simulation alive.
	sched := &pacedSched{}
	sim := New(Link{RateGbps: 100}, sched)
	sim.InjectOne(0, flowq.Packet{Flow: 1, Size: 1500, SendAt: 90_000})
	end := sim.Run(1_000_000)
	if sim.Sent() != 1 {
		t.Fatalf("Sent = %d, want 1", sim.Sent())
	}
	if end < 90_000 {
		t.Fatalf("simulation ended at %v, before the wake", end)
	}
}

func TestNewPanicsOnNilScheduler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(Link{RateGbps: 1}, nil)
}
