// Package oracle contains independent, textbook implementations of the
// §4 scheduling algorithms — plain data structures, no PIEO machinery.
// They serve as executable specifications: the expressiveness tests
// drive a PIEO-programmed scheduler and the corresponding oracle through
// identical workloads and require the *exact same transmission sequence*
// (same virtual-time algebra, same FIFO tie-breaking), validating the
// paper's claim that "rank + eligibility predicate" expresses these
// algorithms rather than merely approximating them.
package oracle

import (
	"fmt"

	"pieo/internal/clock"
	"pieo/internal/flowq"
)

// Decision is one transmitted packet in an oracle run.
type Decision struct {
	Flow flowq.FlowID
	Size uint32
}

// Scheduler is a textbook scheduling engine over static backlogged
// queues.
type Scheduler interface {
	// Next returns the next packet to transmit, or ok=false when all
	// queues are empty.
	Next() (Decision, bool)
}

// flowState is the shared per-flow bookkeeping of the oracles.
type flowState struct {
	id      flowq.FlowID
	packets []uint32 // remaining packet sizes, head first
	seq     uint64   // admission order for FIFO tie-breaking

	weight  uint64
	quantum uint64
	deficit uint64

	start  uint64
	finish uint64
}

func (f *flowState) head() (uint32, bool) {
	if len(f.packets) == 0 {
		return 0, false
	}
	return f.packets[0], true
}

func (f *flowState) pop() uint32 {
	p := f.packets[0]
	f.packets = f.packets[1:]
	return p
}

// Config describes one flow for an oracle run.
type Config struct {
	ID      flowq.FlowID
	Packets []uint32 // packet sizes in FIFO order
	Weight  uint64   // fair-queueing weight (default 1)
	Quantum uint64   // DRR quantum (default 1500)
}

func buildFlows(cfgs []Config) []*flowState {
	flows := make([]*flowState, len(cfgs))
	for i, c := range cfgs {
		w := c.Weight
		if w == 0 {
			w = 1
		}
		q := c.Quantum
		if q == 0 {
			q = 1500
		}
		flows[i] = &flowState{
			id:      c.ID,
			packets: append([]uint32(nil), c.Packets...),
			seq:     uint64(i),
			weight:  w,
			quantum: q,
		}
	}
	return flows
}

// DRR is Shreedhar & Varghese's Deficit Round Robin: an active list
// visited in FIFO order; each visit adds the quantum and transmits while
// the deficit covers the head packet.
type DRR struct {
	active []*flowState
	burst  []Decision
}

// NewDRR builds a DRR oracle over backlogged flows.
func NewDRR(cfgs []Config) *DRR {
	d := &DRR{}
	for _, f := range buildFlows(cfgs) {
		if len(f.packets) > 0 {
			d.active = append(d.active, f)
		}
	}
	return d
}

// Next implements Scheduler.
func (d *DRR) Next() (Decision, bool) {
	for {
		if len(d.burst) > 0 {
			out := d.burst[0]
			d.burst = d.burst[1:]
			return out, true
		}
		if len(d.active) == 0 {
			return Decision{}, false
		}
		f := d.active[0]
		d.active = d.active[1:]
		f.deficit += f.quantum
		for {
			head, ok := f.head()
			if !ok || uint64(head) > f.deficit {
				break
			}
			f.deficit -= uint64(head)
			d.burst = append(d.burst, Decision{Flow: f.id, Size: f.pop()})
		}
		if len(f.packets) == 0 {
			f.deficit = 0
		} else {
			d.active = append(d.active, f)
		}
	}
}

// fq is the common engine of the WFQ/WF²Q+ oracles: virtual time V, per
// flow virtual start/finish, selection rule plugged in by kind.
type fq struct {
	flows    []*flowState
	v        uint64
	sumW     uint64
	wireNs   func(uint32) uint64
	eligible bool // WF²Q+: only flows with start <= V compete
	nextSeq  uint64
}

func newFQ(cfgs []Config, linkGbps float64, eligible bool) *fq {
	e := &fq{
		flows:    buildFlows(cfgs),
		eligible: eligible,
		wireNs: func(size uint32) uint64 {
			ns := float64(size) * 8 / linkGbps
			if ns < 1 {
				ns = 1
			}
			return uint64(ns)
		},
	}
	for _, f := range e.flows {
		e.sumW += f.weight
	}
	e.nextSeq = uint64(len(e.flows))
	// Initial (virtual start, finish) for every backlogged flow, exactly
	// like the framework's enqueue at t=0: the busy period starts, so
	// the max(finish, V) case applies.
	for _, f := range e.flows {
		e.stamp(f, true)
	}
	return e
}

// stamp assigns the flow's head packet its virtual start and finish
// (Fig 2(a) algebra, same integer scaling as internal/algos). fresh
// selects the figure's two cases: max(finish, V) when the flow becomes
// newly backlogged, plain finish chaining while it stays backlogged.
func (e *fq) stamp(f *flowState, fresh bool) {
	head, ok := f.head()
	if !ok {
		return
	}
	start := f.finish
	if fresh && e.v > start {
		start = e.v
	}
	f.start = start
	f.finish = start + e.wireNs(head)*e.sumW/f.weight
}

// Next implements Scheduler for both WFQ and WF²Q+.
func (e *fq) Next() (Decision, bool) {
	var best *flowState
	for _, f := range e.flows {
		if _, ok := f.head(); !ok {
			continue
		}
		if e.eligible && f.start > e.v {
			continue
		}
		if best == nil || f.finish < best.finish || (f.finish == best.finish && f.seq < best.seq) {
			best = f
		}
	}
	if best == nil {
		// WF²Q+: if flows are backlogged but none eligible, jump V to
		// the minimum start (idle-link rule) and retry once.
		if e.eligible {
			minStart, any := uint64(0), false
			for _, f := range e.flows {
				if _, ok := f.head(); ok && (!any || f.start < minStart) {
					minStart = f.start
					any = true
				}
			}
			if any {
				e.v = minStart
				return e.Next()
			}
		}
		return Decision{}, false
	}
	size := best.pop()
	// Tie-break seq: the flow re-enters "the list" after service, like
	// the framework's re-enqueue.
	best.seq = e.nextSeq
	e.nextSeq++

	x := e.wireNs(size)
	if e.eligible {
		// WF²Q+ virtual time: V = max(V + x, min start among backlogged
		// flows) with the serviced flow re-stamped first.
		e.stamp(best, false)
		e.v += x
		minStart, any := uint64(0), false
		for _, f := range e.flows {
			if _, ok := f.head(); ok && (!any || f.start < minStart) {
				minStart = f.start
				any = true
			}
		}
		if any && minStart > e.v {
			e.v = minStart
		}
	} else {
		// WFQ: V advances by the wire time of the transmitted packet.
		e.v += x
		e.stamp(best, false)
	}
	return Decision{Flow: best.id, Size: size}, true
}

// NewWFQ builds a textbook WFQ oracle.
func NewWFQ(cfgs []Config, linkGbps float64) Scheduler { return newFQ(cfgs, linkGbps, false) }

// NewWF2Q builds a textbook WF²Q+ oracle.
func NewWF2Q(cfgs []Config, linkGbps float64) Scheduler { return newFQ(cfgs, linkGbps, true) }

// StrictPriority is the trivial oracle: always the backlogged flow with
// the smallest priority value. Among equal priorities the order is
// round-robin: a flow re-enters the queue behind its peers after every
// packet, which is exactly what PIEO's FIFO tie-break plus re-enqueue
// produces.
type StrictPriority struct {
	flows   []*flowState
	prio    map[flowq.FlowID]uint64
	nextSeq uint64
}

// NewStrictPriority builds a strict-priority oracle; prio maps flow ids
// to priority values (smaller wins).
func NewStrictPriority(cfgs []Config, prio map[flowq.FlowID]uint64) *StrictPriority {
	flows := buildFlows(cfgs)
	return &StrictPriority{flows: flows, prio: prio, nextSeq: uint64(len(flows))}
}

// Next implements Scheduler.
func (s *StrictPriority) Next() (Decision, bool) {
	var best *flowState
	for _, f := range s.flows {
		if _, ok := f.head(); !ok {
			continue
		}
		if best == nil || s.prio[f.id] < s.prio[best.id] ||
			(s.prio[f.id] == s.prio[best.id] && f.seq < best.seq) {
			best = f
		}
	}
	if best == nil {
		return Decision{}, false
	}
	best.seq = s.nextSeq
	s.nextSeq++
	return Decision{Flow: best.id, Size: best.pop()}, true
}

// Drain runs a scheduler to exhaustion (with a safety cap) and returns
// the full decision sequence.
func Drain(s Scheduler, cap_ int) []Decision {
	var out []Decision
	for len(out) < cap_ {
		d, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, d)
	}
	panic(fmt.Sprintf("oracle: scheduler did not drain within %d decisions", cap_))
}

// TokenBucketTimes computes, for a single backlogged flow, the exact
// release times of a packet sequence under a token bucket with the given
// rate (Gbps), burst (bytes), and initial level. It follows the same
// discrete recurrence as the §4.2 pre-enqueue function (token refill
// evaluated at the previous release instant, deferral truncated to whole
// nanoseconds) so schedulers can be held to it exactly.
func TokenBucketTimes(sizes []uint32, rateGbps, burst, initial float64) []clock.Time {
	times := make([]clock.Time, len(sizes))
	tokens := initial
	var now, last clock.Time
	for i, size := range sizes {
		tokens += rateGbps / 8 * float64(now-last)
		if tokens > burst {
			tokens = burst
		}
		send := now
		need := float64(size)
		if need > tokens {
			send = now + clock.Time((need-tokens)*8/rateGbps)
		}
		tokens -= need
		last = now
		times[i] = send
		now = send // the next head is evaluated when this packet releases
	}
	return times
}
