package oracle

import (
	"testing"

	"pieo/internal/flowq"
)

func sizes(n int, s uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestDRREqualQuantaRoundRobin(t *testing.T) {
	d := NewDRR([]Config{
		{ID: 1, Packets: sizes(3, 1500), Quantum: 1500},
		{ID: 2, Packets: sizes(3, 1500), Quantum: 1500},
	})
	var order []flowq.FlowID
	for {
		dec, ok := d.Next()
		if !ok {
			break
		}
		order = append(order, dec.Flow)
	}
	want := []flowq.FlowID{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDRRDeficitAccumulates(t *testing.T) {
	// Quantum 500 < packet 1500: three visits per packet.
	d := NewDRR([]Config{{ID: 1, Packets: sizes(2, 1500), Quantum: 500}})
	got := Drain(d, 10)
	if len(got) != 2 {
		t.Fatalf("drained %d packets, want 2", len(got))
	}
}

func TestDRRBigQuantumBursts(t *testing.T) {
	d := NewDRR([]Config{
		{ID: 1, Packets: sizes(4, 1000), Quantum: 2000},
		{ID: 2, Packets: sizes(4, 1000), Quantum: 2000},
	})
	var order []flowq.FlowID
	for {
		dec, ok := d.Next()
		if !ok {
			break
		}
		order = append(order, dec.Flow)
	}
	want := []flowq.FlowID{1, 1, 2, 2, 1, 1, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWFQWeightedInterleave(t *testing.T) {
	s := NewWFQ([]Config{
		{ID: 1, Packets: sizes(6, 1500), Weight: 2},
		{ID: 2, Packets: sizes(3, 1500), Weight: 1},
	}, 40)
	counts := map[flowq.FlowID]int{}
	first6 := Drain(s, 100)[:6]
	for _, d := range first6 {
		counts[d.Flow]++
	}
	if counts[1] != 4 || counts[2] != 2 {
		t.Fatalf("first 6 decisions: %v, want 4:2", counts)
	}
}

func TestWF2QEligibilityGate(t *testing.T) {
	// With equal weights and equal packets, WF2Q+ alternates strictly.
	s := NewWF2Q([]Config{
		{ID: 1, Packets: sizes(4, 1500)},
		{ID: 2, Packets: sizes(4, 1500)},
	}, 40)
	got := Drain(s, 100)
	for i := 1; i < len(got); i++ {
		if got[i].Flow == got[i-1].Flow {
			t.Fatalf("WF2Q+ did not alternate: %v", got)
		}
	}
}

func TestStrictPriorityOracle(t *testing.T) {
	s := NewStrictPriority(
		[]Config{{ID: 1, Packets: sizes(2, 100)}, {ID: 2, Packets: sizes(2, 100)}},
		map[flowq.FlowID]uint64{1: 5, 2: 1},
	)
	got := Drain(s, 10)
	want := []flowq.FlowID{2, 2, 1, 1}
	for i := range want {
		if got[i].Flow != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestDrainPanicsOnRunaway(t *testing.T) {
	d := NewDRR([]Config{{ID: 1, Packets: sizes(100, 100), Quantum: 100}})
	defer func() {
		if recover() == nil {
			t.Fatal("Drain cap did not panic")
		}
	}()
	Drain(d, 10)
}

func TestTokenBucketTimes(t *testing.T) {
	// 1500 B packets at 12 Gbps (1000 ns per packet), bucket starts with
	// exactly one packet.
	times := TokenBucketTimes(sizes(3, 1500), 12, 3000, 1500)
	want := []uint64{0, 1000, 2000}
	for i, w := range want {
		if uint64(times[i]) != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTokenBucketTimesEmptyStart(t *testing.T) {
	times := TokenBucketTimes(sizes(2, 1500), 1, 3000, 0)
	// 1500 B at 1 Gbps = 12000 ns to earn each packet.
	if uint64(times[0]) != 12000 || uint64(times[1]) != 24000 {
		t.Fatalf("times = %v", times)
	}
}
