// Package pifo implements the Push-In-First-Out scheduling primitive of
// Sivaraman et al. (SIGCOMM 2016), the baseline the paper compares
// against (§2.3, §6). A PIFO maintains a rank-ordered list using the
// classic parallel compare-and-shift architecture: the whole list lives
// in flip-flops with one comparator per element, enqueue inserts at the
// rank position in one cycle, and dequeue only ever pops the head.
//
// The package also provides the PIFO-based WF²Q+ emulations of Fig 2 —
// a single PIFO ordered by finish time, a single PIFO ordered by start
// time, and the two-PIFO eligibility/rank construction — whose scheduling
// orders deviate from the ideal because PIFO cannot filter an arbitrary
// eligible subset at dequeue. internal/experiments uses them to reproduce
// Fig 2 and the O(N) deviation claim.
package pifo

import (
	"errors"
	"fmt"
)

// Entry is one PIFO element: an identifier and its programmable rank.
type Entry struct {
	ID   uint32
	Rank uint64
}

// ErrFull is returned by Enqueue when the list is at capacity. The
// hardware design has a hard capacity: one flip-flop slot per element.
var ErrFull = errors.New("pifo: list full")

// Stats counts hardware work: every enqueue activates one comparator per
// stored element (parallel compare) and shifts the tail of the list by
// one slot (parallel shift).
type Stats struct {
	Enqueues uint64
	Dequeues uint64
	Compares uint64 // comparator activations (one per element per enqueue)
	Shifts   uint64 // element slots shifted
}

type element struct {
	Entry
	seq uint64
}

// List is a PIFO: a rank-ordered list that dequeues only from the head.
type List struct {
	capacity int
	entries  []element
	seq      uint64
	stats    Stats
}

// New creates a PIFO with the given capacity.
func New(capacity int) *List {
	if capacity <= 0 {
		panic(fmt.Sprintf("pifo: capacity must be positive, got %d", capacity))
	}
	return &List{capacity: capacity, entries: make([]element, 0, capacity)}
}

// Len returns the number of queued elements.
func (l *List) Len() int { return l.size() }

func (l *List) size() int { return len(l.entries) }

// Capacity returns the maximum number of elements.
func (l *List) Capacity() int { return l.capacity }

// Stats returns a copy of the accumulated counters.
func (l *List) Stats() Stats { return l.stats }

// Enqueue inserts e at its rank position; equal ranks keep FIFO order.
func (l *List) Enqueue(e Entry) error {
	if len(l.entries) == l.capacity {
		return ErrFull
	}
	l.seq++
	elem := element{Entry: e, seq: l.seq}
	l.stats.Enqueues++
	l.stats.Compares += uint64(len(l.entries))

	idx := len(l.entries)
	for i, x := range l.entries {
		if e.Rank < x.Rank { // strict: equal ranks stay FIFO
			idx = i
			break
		}
	}
	l.stats.Shifts += uint64(len(l.entries) - idx)
	l.entries = append(l.entries, element{})
	copy(l.entries[idx+1:], l.entries[idx:])
	l.entries[idx] = elem
	return nil
}

// Dequeue pops the head (smallest-ranked) element. PIFO offers no other
// dequeue position — that restriction is exactly what PIEO lifts.
func (l *List) Dequeue() (Entry, bool) {
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	l.stats.Dequeues++
	e := l.entries[0].Entry
	copy(l.entries, l.entries[1:])
	l.entries = l.entries[:len(l.entries)-1]
	l.stats.Shifts += uint64(len(l.entries))
	return e, true
}

// Peek returns the head element without removing it.
func (l *List) Peek() (Entry, bool) {
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	return l.entries[0].Entry, true
}

// Snapshot returns the entries in rank order.
func (l *List) Snapshot() []Entry {
	out := make([]Entry, len(l.entries))
	for i, x := range l.entries {
		out[i] = x.Entry
	}
	return out
}
