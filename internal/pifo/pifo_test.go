package pifo

import (
	"testing"
	"testing/quick"
)

func TestEmptyList(t *testing.T) {
	l := New(8)
	if l.Len() != 0 || l.Capacity() != 8 {
		t.Fatalf("Len/Capacity = %d/%d", l.Len(), l.Capacity())
	}
	if _, ok := l.Dequeue(); ok {
		t.Fatal("Dequeue on empty succeeded")
	}
	if _, ok := l.Peek(); ok {
		t.Fatal("Peek on empty succeeded")
	}
}

func TestRankOrder(t *testing.T) {
	l := New(8)
	for _, r := range []uint64{5, 1, 9, 3} {
		if err := l.Enqueue(Entry{ID: uint32(r), Rank: r}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{1, 3, 5, 9}
	for _, w := range want {
		e, ok := l.Dequeue()
		if !ok || e.Rank != w {
			t.Fatalf("Dequeue = %v ok=%v, want rank %d", e, ok, w)
		}
	}
}

func TestFIFOAmongEquals(t *testing.T) {
	l := New(8)
	for id := uint32(0); id < 5; id++ {
		l.Enqueue(Entry{ID: id, Rank: 7})
	}
	for id := uint32(0); id < 5; id++ {
		e, _ := l.Dequeue()
		if e.ID != id {
			t.Fatalf("Dequeue ID = %d, want %d", e.ID, id)
		}
	}
}

func TestCapacity(t *testing.T) {
	l := New(2)
	l.Enqueue(Entry{ID: 1, Rank: 1})
	l.Enqueue(Entry{ID: 2, Rank: 2})
	if err := l.Enqueue(Entry{ID: 3, Rank: 3}); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestStatsLinearWork(t *testing.T) {
	// PIFO's defining cost: each enqueue compares against every stored
	// element.
	l := New(100)
	for i := 0; i < 100; i++ {
		l.Enqueue(Entry{ID: uint32(i), Rank: uint64(100 - i)}) // worst case: head inserts
	}
	s := l.Stats()
	wantCompares := uint64(99 * 100 / 2)
	if s.Compares != wantCompares {
		t.Fatalf("Compares = %d, want %d", s.Compares, wantCompares)
	}
	if s.Shifts != wantCompares { // every element shifts on head insert
		t.Fatalf("Shifts = %d, want %d", s.Shifts, wantCompares)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: PIFO drains in nondecreasing rank order.
func TestDrainSortedProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		if len(ranks) == 0 {
			return true
		}
		l := New(len(ranks))
		for i, r := range ranks {
			if err := l.Enqueue(Entry{ID: uint32(i), Rank: uint64(r)}); err != nil {
				return false
			}
		}
		prev := uint64(0)
		for range ranks {
			e, ok := l.Dequeue()
			if !ok || e.Rank < prev {
				return false
			}
			prev = e.Rank
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- WF²Q+ emulation strategies ---

// items where eligibility matters: at v=0 only A is eligible; C has the
// smallest finish among the flows that become eligible at v=5.
func fig2Items() []Item {
	return []Item{
		{ID: 0, Name: "A", Start: 0, Finish: 20},
		{ID: 1, Name: "B", Start: 10, Finish: 45},
		{ID: 2, Name: "C", Start: 5, Finish: 30},
		{ID: 3, Name: "D", Start: 3, Finish: 50},
		{ID: 4, Name: "E", Start: 5, Finish: 40},
		{ID: 5, Name: "F", Start: 5, Finish: 55},
	}
}

func TestSingleByFinishIgnoresEligibility(t *testing.T) {
	e := NewSingleByFinish(fig2Items())
	// At v=0 only A (start 0) is truly eligible, and A happens to have
	// the smallest finish. But the next schedule at v=0 returns C even
	// though C's start time (5) is in the future: the single
	// finish-ordered PIFO cannot test eligibility.
	first, ok := e.Schedule(0)
	if !ok || first.Name != "A" {
		t.Fatalf("first = %v ok=%v, want A", first, ok)
	}
	second, ok := e.Schedule(0)
	if !ok || second.Name != "C" {
		t.Fatalf("second = %v, want C (scheduled early, demonstrating the flaw)", second)
	}
	if second.Start == 0 {
		t.Fatal("test setup broken: C should be ineligible at v=0")
	}
}

func TestSingleByStartViolatesFinishOrder(t *testing.T) {
	e := NewSingleByStart(fig2Items())
	e.Schedule(0) // A
	// At v=5, C, D, E, F are all eligible; ideal picks C (finish 30),
	// but the start-ordered PIFO's head is D (start 3).
	got, ok := e.Schedule(5)
	if !ok || got.Name != "D" {
		t.Fatalf("Schedule(5) = %v, want D (start order, not finish order)", got)
	}
}

func TestSingleByStartRespectsEligibility(t *testing.T) {
	e := NewSingleByStart(fig2Items())
	e.Schedule(0) // A
	// At v=2 nothing else is eligible (D starts at 3).
	if it, ok := e.Schedule(2); ok {
		t.Fatalf("Schedule(2) = %v, want none", it)
	}
}

func TestTwoPIFOReleasesInStartOrder(t *testing.T) {
	e := NewTwoPIFO(fig2Items())
	first, ok := e.Schedule(0)
	if !ok || first.Name != "A" {
		t.Fatalf("first = %v, want A", first)
	}
	// At v=5, D (start 3) is released first and transmitted, although C
	// has the smaller finish time — the Fig 2(e) deviation.
	second, ok := e.Schedule(5)
	if !ok || second.Name != "D" {
		t.Fatalf("second = %v, want D (released before C)", second)
	}
	// C eventually gets scheduled once released.
	third, ok := e.Schedule(5)
	if !ok || third.Name != "C" {
		t.Fatalf("third = %v, want C", third)
	}
}

func TestTwoPIFOUnboundedReleasesStillOrdered(t *testing.T) {
	// With enough releases per slot the rank PIFO sees all eligible
	// flows before transmitting, recovering the ideal order for this
	// instance — showing the deviation is precisely the release
	// bottleneck.
	e := NewTwoPIFO(fig2Items())
	e.ReleasesPerSlot = 16
	e.Schedule(0) // A
	got, ok := e.Schedule(5)
	if !ok || got.Name != "C" {
		t.Fatalf("Schedule(5) with unbounded releases = %v, want C", got)
	}
}

func TestEmulatorsDrainEverything(t *testing.T) {
	for name, em := range map[string]Emulator{
		"finish": NewSingleByFinish(fig2Items()),
		"start":  NewSingleByStart(fig2Items()),
		"two":    NewTwoPIFO(fig2Items()),
	} {
		seen := 0
		for v := uint64(0); v < 100 && em.Pending() > 0; v++ {
			for {
				_, ok := em.Schedule(v)
				if !ok {
					break
				}
				seen++
			}
		}
		if seen != 6 || em.Pending() != 0 {
			t.Fatalf("%s: scheduled %d, pending %d; want 6/0", name, seen, em.Pending())
		}
	}
}
