package pifo

import "fmt"

// Item is one flow competing under WF²Q+: its head packet has a virtual
// start and finish time, and a transmission length that advances virtual
// time when it is scheduled. WF²Q+ schedules the smallest finish time
// among flows with start <= current virtual time (§2.3, Fig 2).
type Item struct {
	ID     uint32
	Name   string
	Start  uint64
	Finish uint64
	Size   uint64
}

// Emulator is a PIFO-based approximation of WF²Q+. The three strategies
// of Fig 2(d)-(e) implement it; all share the signature: given the
// current virtual time, pick the next flow to transmit.
type Emulator interface {
	// Schedule returns the next item to transmit at virtual time v, or
	// ok=false if the emulator has nothing it is willing to schedule.
	Schedule(v uint64) (Item, bool)
	// Pending returns the number of items not yet scheduled.
	Pending() int
}

// SingleByFinish emulates WF²Q+ with one PIFO ordered by increasing
// finish time. It must ignore eligibility entirely: the head is
// transmitted even if its start time is in the future, which breaks
// WF²Q+'s worst-case fairness (Fig 2(d), first variant).
type SingleByFinish struct {
	list  *List
	items map[uint32]Item
}

// NewSingleByFinish builds the emulator over the given items.
func NewSingleByFinish(items []Item) *SingleByFinish {
	e := &SingleByFinish{list: New(maxLen(items)), items: make(map[uint32]Item, len(items))}
	for _, it := range items {
		e.items[it.ID] = it
		mustEnqueue(e.list, Entry{ID: it.ID, Rank: it.Finish})
	}
	return e
}

// Schedule implements Emulator. v is unused: a single finish-ordered
// PIFO has no way to test eligibility.
func (e *SingleByFinish) Schedule(v uint64) (Item, bool) {
	ent, ok := e.list.Dequeue()
	if !ok {
		return Item{}, false
	}
	return e.items[ent.ID], true
}

// Pending implements Emulator.
func (e *SingleByFinish) Pending() int { return e.list.Len() }

// SingleByStart emulates WF²Q+ with one PIFO ordered by increasing start
// time. Eligibility of the head can be tested against v, but among
// simultaneously eligible flows the head is the smallest *start*, not the
// smallest finish, so the finish order is violated (Fig 2(d), second
// variant).
type SingleByStart struct {
	list  *List
	items map[uint32]Item
}

// NewSingleByStart builds the emulator over the given items.
func NewSingleByStart(items []Item) *SingleByStart {
	e := &SingleByStart{list: New(maxLen(items)), items: make(map[uint32]Item, len(items))}
	for _, it := range items {
		e.items[it.ID] = it
		mustEnqueue(e.list, Entry{ID: it.ID, Rank: it.Start})
	}
	return e
}

// Schedule implements Emulator: transmit the head if it is eligible.
func (e *SingleByStart) Schedule(v uint64) (Item, bool) {
	head, ok := e.list.Peek()
	if !ok || head.Rank > v {
		return Item{}, false
	}
	ent, _ := e.list.Dequeue()
	return e.items[ent.ID], true
}

// Pending implements Emulator.
func (e *SingleByStart) Pending() int { return e.list.Len() }

// TwoPIFO is the Fig 2(e) construction: an eligibility PIFO ordered by
// start time releases flows into a rank PIFO ordered by finish time as
// they become eligible. ReleasesPerSlot bounds how many flows can cross
// between the PIFOs per scheduling slot — in hardware each transfer is a
// dequeue+enqueue pair, so only O(1) can happen per decision. When many
// flows become eligible at once, they are released in *start* order, and
// the scheduler transmits whatever has reached the rank PIFO, deviating
// from the ideal finish order by up to O(N) positions (§2.3).
type TwoPIFO struct {
	eligibility     *List // rank = start time
	rank            *List // rank = finish time
	items           map[uint32]Item
	ReleasesPerSlot int
}

// NewTwoPIFO builds the emulator over the given items with the default
// one release per scheduling slot.
func NewTwoPIFO(items []Item) *TwoPIFO {
	e := &TwoPIFO{
		eligibility:     New(maxLen(items)),
		rank:            New(maxLen(items)),
		items:           make(map[uint32]Item, len(items)),
		ReleasesPerSlot: 1,
	}
	for _, it := range items {
		e.items[it.ID] = it
		mustEnqueue(e.eligibility, Entry{ID: it.ID, Rank: it.Start})
	}
	return e
}

// Schedule implements Emulator: release up to ReleasesPerSlot eligible
// flows (start <= v) from the eligibility PIFO into the rank PIFO, then
// transmit the rank-PIFO head.
func (e *TwoPIFO) Schedule(v uint64) (Item, bool) {
	for i := 0; i < e.ReleasesPerSlot; i++ {
		head, ok := e.eligibility.Peek()
		if !ok || head.Rank > v {
			break
		}
		ent, _ := e.eligibility.Dequeue()
		mustEnqueue(e.rank, Entry{ID: ent.ID, Rank: e.items[ent.ID].Finish})
	}
	ent, ok := e.rank.Dequeue()
	if !ok {
		return Item{}, false
	}
	return e.items[ent.ID], true
}

// Pending implements Emulator.
func (e *TwoPIFO) Pending() int { return e.eligibility.Len() + e.rank.Len() }

func maxLen(items []Item) int {
	if len(items) == 0 {
		return 1
	}
	return len(items)
}

func mustEnqueue(l *List, e Entry) {
	if err := l.Enqueue(e); err != nil {
		panic(fmt.Sprintf("pifo: emulator enqueue overflow: %v", err))
	}
}
