// Package pipeline models the issue-rate analysis of §6.2. The PIEO
// datapath has four stages: C1 (pointer-array compare + priority
// encode), C2 (SRAM read of up to two sublists), C3 (sublist compare +
// encode), C4 (SRAM write-back + pointer-array update). Both memory
// stages consume BOTH ports of the dual-port SRAM, so the memory stages
// of different operations can never share a cycle — that is why the
// prototype is non-pipelined (one operation per four cycles).
//
// The paper notes that "by carefully scheduling the primitive
// operations, one can still achieve some degree of pipelining". This
// package quantifies that: a greedy in-order issue scheduler that only
// respects the SRAM port constraint (and serializes operations touching
// the same sublists, where the pointer-array forwarding assumption would
// not hold) reaches 0.5 operations per cycle on independent streams —
// double the prototype — while a hypothetical fully-pipelined datapath
// (e.g. quad-port SRAM) reaches 1.0.
package pipeline

import "fmt"

// Mode selects the issue policy.
type Mode int

const (
	// NonPipelined issues one operation every CyclesPerOp cycles — the
	// paper's prototype.
	NonPipelined Mode = iota
	// PortAware issues in order at the earliest cycle whose memory
	// stages (issue+1, issue+3) do not collide with any earlier
	// operation's memory stages, serializing only true sublist hazards.
	PortAware
	// FullyPipelined issues one operation per cycle — the upper bound if
	// the SRAM port constraint were lifted.
	FullyPipelined
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case NonPipelined:
		return "non-pipelined"
	case PortAware:
		return "port-aware partial pipeline"
	case FullyPipelined:
		return "fully pipelined"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CyclesPerOp is the depth of the §5.2 datapath.
const CyclesPerOp = 4

// memStages are the stage offsets (from issue) that occupy both SRAM
// ports.
var memStages = [2]int{1, 3}

// Op is one primitive operation in an issue stream, identified by the
// sublists it reads and writes (at most two, per the §5 design; -1 marks
// an unused slot).
type Op struct {
	Sublists [2]int
}

// Touches reports whether the op uses sublist s.
func (o Op) Touches(s int) bool {
	return s >= 0 && (o.Sublists[0] == s || o.Sublists[1] == s)
}

// Conflicts reports whether two ops touch a common sublist.
func (o Op) Conflicts(p Op) bool {
	return o.Touches(p.Sublists[0]) || o.Touches(p.Sublists[1])
}

// Result summarizes a simulated issue schedule.
type Result struct {
	Ops         int
	TotalCycles int
	OpsPerCycle float64
}

// Simulate runs the issue scheduler over the op stream in the given mode
// and returns the achieved issue rate. Ops are issued strictly in order
// (the scheduler cannot reorder the primitive operations of a packet
// scheduler without changing semantics).
func Simulate(ops []Op, mode Mode) Result {
	if len(ops) == 0 {
		return Result{}
	}
	switch mode {
	case NonPipelined:
		total := (len(ops)-1)*CyclesPerOp + CyclesPerOp
		return result(len(ops), total)
	case FullyPipelined:
		total := (len(ops) - 1) + CyclesPerOp
		return result(len(ops), total)
	case PortAware:
		return simulatePortAware(ops)
	default:
		panic(fmt.Sprintf("pipeline: unknown mode %d", int(mode)))
	}
}

func simulatePortAware(ops []Op) Result {
	usedMem := make(map[int]bool)
	issue := 0
	lastIssue := -1
	lastOp := Op{Sublists: [2]int{-1, -1}}
	for i, op := range ops {
		t := lastIssue + 1
		if i > 0 && op.Conflicts(lastOp) {
			// True hazard: the later op must observe the earlier op's
			// write-back; wait for the full datapath to drain.
			t = lastIssue + CyclesPerOp
		}
		for !memFree(usedMem, t) {
			t++
		}
		for _, s := range memStages {
			usedMem[t+s] = true
		}
		lastIssue = t
		lastOp = op
		issue = t
	}
	return result(len(ops), issue+CyclesPerOp)
}

func memFree(used map[int]bool, t int) bool {
	for _, s := range memStages {
		if used[t+s] {
			return false
		}
	}
	return true
}

func result(ops, cycles int) Result {
	return Result{Ops: ops, TotalCycles: cycles, OpsPerCycle: float64(ops) / float64(cycles)}
}

// IndependentStream builds a stream of n ops where consecutive ops touch
// disjoint sublist pairs (round-robin with stride 2 over numSublists),
// the best case for partial pipelining. numSublists must be an even
// number >= 8 so wraparound never makes neighbors collide.
func IndependentStream(n, numSublists int) []Op {
	if numSublists < 8 || numSublists%2 != 0 {
		panic("pipeline: independent stream needs an even sublist count >= 8")
	}
	ops := make([]Op, n)
	for i := range ops {
		a := (2 * i) % numSublists
		ops[i] = Op{Sublists: [2]int{a, (a + 1) % numSublists}}
	}
	return ops
}

// SameSublistStream builds the worst case: every op touches the same
// sublist, forcing full serialization.
func SameSublistStream(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Sublists: [2]int{0, 1}}
	}
	return ops
}
