package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyStream(t *testing.T) {
	r := Simulate(nil, PortAware)
	if r.Ops != 0 || r.TotalCycles != 0 {
		t.Fatalf("empty stream = %+v", r)
	}
}

func TestNonPipelinedRate(t *testing.T) {
	r := Simulate(IndependentStream(1000, 64), NonPipelined)
	if math.Abs(r.OpsPerCycle-0.25) > 0.001 {
		t.Fatalf("non-pipelined rate = %v, want 0.25", r.OpsPerCycle)
	}
}

func TestFullyPipelinedRate(t *testing.T) {
	r := Simulate(IndependentStream(1000, 64), FullyPipelined)
	if math.Abs(r.OpsPerCycle-1.0) > 0.01 {
		t.Fatalf("fully pipelined rate = %v, want ~1.0", r.OpsPerCycle)
	}
}

func TestPortAwareDoublesIndependentStreams(t *testing.T) {
	// The SRAM port constraint admits the issue pattern 0,1,4,5,8,9,...:
	// exactly two operations per four cycles.
	r := Simulate(IndependentStream(1000, 64), PortAware)
	if math.Abs(r.OpsPerCycle-0.5) > 0.01 {
		t.Fatalf("port-aware rate = %v, want ~0.5", r.OpsPerCycle)
	}
}

func TestPortAwareSerializesHazards(t *testing.T) {
	// Every op touching the same sublists degenerates to the
	// non-pipelined rate.
	r := Simulate(SameSublistStream(1000), PortAware)
	if math.Abs(r.OpsPerCycle-0.25) > 0.001 {
		t.Fatalf("hazard-bound rate = %v, want 0.25", r.OpsPerCycle)
	}
}

func TestPortAwareMixedStream(t *testing.T) {
	// A random mix lands between the serialized and independent rates.
	rng := rand.New(rand.NewSource(1))
	ops := make([]Op, 2000)
	for i := range ops {
		a := rng.Intn(16)
		ops[i] = Op{Sublists: [2]int{a, (a + 1) % 16}}
	}
	r := Simulate(ops, PortAware)
	if r.OpsPerCycle <= 0.25 || r.OpsPerCycle >= 0.5 {
		t.Fatalf("mixed rate = %v, want in (0.25, 0.5)", r.OpsPerCycle)
	}
}

func TestOpConflicts(t *testing.T) {
	a := Op{Sublists: [2]int{3, 4}}
	if !a.Conflicts(Op{Sublists: [2]int{4, 9}}) {
		t.Fatal("shared sublist not detected")
	}
	if a.Conflicts(Op{Sublists: [2]int{5, 6}}) {
		t.Fatal("false conflict")
	}
	if a.Touches(-1) {
		t.Fatal("Touches(-1) true")
	}
}

func TestModeString(t *testing.T) {
	if NonPipelined.String() != "non-pipelined" ||
		PortAware.String() != "port-aware partial pipeline" ||
		FullyPipelined.String() != "fully pipelined" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestIndependentStreamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tiny sublist count")
		}
	}()
	IndependentStream(10, 4)
}

// Property: no schedule ever beats one op per cycle or loses to one op
// per CyclesPerOp cycles, and the three modes are consistently ordered.
func TestRateBoundsProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16)%500 + 2
		rng := rand.New(rand.NewSource(seed))
		ops := make([]Op, n)
		for i := range ops {
			a := rng.Intn(32)
			ops[i] = Op{Sublists: [2]int{a, rng.Intn(32)}}
		}
		slow := Simulate(ops, NonPipelined).OpsPerCycle
		mid := Simulate(ops, PortAware).OpsPerCycle
		fast := Simulate(ops, FullyPipelined).OpsPerCycle
		return slow <= mid+1e-9 && mid <= fast+1e-9 && fast <= 1.0+1e-9 && slow > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the port-aware schedule never double-books an SRAM cycle.
// (Re-simulates and checks the claimed memory cycles directly.)
func TestNoPortDoubleBookingProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16)%200 + 2
		rng := rand.New(rand.NewSource(seed))
		ops := make([]Op, n)
		for i := range ops {
			a := rng.Intn(16)
			ops[i] = Op{Sublists: [2]int{a, (a + 3) % 16}}
		}
		// Re-derive the schedule with explicit booking.
		used := map[int]bool{}
		lastIssue := -1
		last := Op{Sublists: [2]int{-1, -1}}
		for i, op := range ops {
			t0 := lastIssue + 1
			if i > 0 && op.Conflicts(last) {
				t0 = lastIssue + CyclesPerOp
			}
			for !memFree(used, t0) {
				t0++
			}
			for _, s := range memStages {
				if used[t0+s] {
					return false
				}
				used[t0+s] = true
			}
			lastIssue = t0
			last = op
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
