// Package pktgen generates synthetic traffic for the evaluation harness.
// The paper's prototype used on-FPGA packet generators, one per flow, to
// simulate always-backlogged flows at MTU granularity (§6.3); this package
// reproduces that workload and adds the standard open-loop generators
// (constant bit rate, Poisson, on-off bursty) and packet-size
// distributions needed for wider experiments. All generators are seeded
// and deterministic.
package pktgen

import (
	"fmt"
	"math"
	"math/rand"

	"pieo/internal/clock"
	"pieo/internal/flowq"
)

// MTU is the packet size the paper schedules at (standard Ethernet MTU).
const MTU = 1500

// SizeDist produces packet sizes in bytes.
type SizeDist interface {
	Next() uint32
}

// FixedSize always returns the same packet size.
type FixedSize uint32

// Next returns the fixed size.
func (f FixedSize) Next() uint32 { return uint32(f) }

// UniformSize draws sizes uniformly from [Min, Max].
type UniformSize struct {
	Min, Max uint32
	Rng      *rand.Rand
}

// Next returns a uniformly distributed size.
func (u *UniformSize) Next() uint32 {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + uint32(u.Rng.Intn(int(u.Max-u.Min+1)))
}

// BimodalSize models the classic datacenter mix of small (ACK-sized) and
// large (MTU) packets.
type BimodalSize struct {
	Small, Large uint32
	// FracSmall in [0,1] is the probability of drawing Small.
	FracSmall float64
	Rng       *rand.Rand
}

// Next returns Small with probability FracSmall, else Large.
func (b *BimodalSize) Next() uint32 {
	if b.Rng.Float64() < b.FracSmall {
		return b.Small
	}
	return b.Large
}

// Arrival is one generated packet arrival.
type Arrival struct {
	At  clock.Time
	Pkt flowq.Packet
}

// Generator produces a deterministic arrival stream for one flow.
type Generator interface {
	// NextArrival returns the next arrival, or ok=false when the stream
	// is exhausted.
	NextArrival() (Arrival, bool)
}

// Backlogged emits Count packets all arriving at time 0 — the paper's
// always-backlogged workload (§6.3). With Count == 0 it is unbounded.
type Backlogged struct {
	Flow  flowq.FlowID
	Size  SizeDist
	Count int

	emitted int
	seq     uint64
}

// NextArrival implements Generator.
func (g *Backlogged) NextArrival() (Arrival, bool) {
	if g.Count > 0 && g.emitted >= g.Count {
		return Arrival{}, false
	}
	g.emitted++
	g.seq++
	return Arrival{
		At:  0,
		Pkt: flowq.Packet{Flow: g.Flow, Size: g.Size.Next(), Seq: g.seq},
	}, true
}

// CBR emits packets with a fixed inter-arrival gap, producing a constant
// bit rate stream.
type CBR struct {
	Flow  flowq.FlowID
	Size  SizeDist
	Gap   clock.Time // inter-arrival time in ticks
	Start clock.Time
	Count int

	emitted int
	seq     uint64
	next    clock.Time
	primed  bool
}

// NextArrival implements Generator.
func (g *CBR) NextArrival() (Arrival, bool) {
	if g.Count > 0 && g.emitted >= g.Count {
		return Arrival{}, false
	}
	if !g.primed {
		g.next = g.Start
		g.primed = true
	}
	at := g.next
	g.next += g.Gap
	g.emitted++
	g.seq++
	return Arrival{
		At:  at,
		Pkt: flowq.Packet{Flow: g.Flow, Size: g.Size.Next(), Arrival: at, Seq: g.seq},
	}, true
}

// GapForRate returns the CBR inter-arrival gap in ns that yields rate
// gbps with the given packet size.
func GapForRate(gbps float64, size uint32) clock.Time {
	if gbps <= 0 {
		panic("pktgen: rate must be positive")
	}
	return clock.Time(math.Round(float64(size) * 8 / gbps)) // bits / (bits/ns)
}

// Poisson emits packets with exponentially distributed inter-arrival
// times of the given mean, the standard open-loop arrival model.
type Poisson struct {
	Flow    flowq.FlowID
	Size    SizeDist
	MeanGap float64 // mean inter-arrival in ticks
	Start   clock.Time
	Count   int
	Rng     *rand.Rand

	emitted int
	seq     uint64
	next    clock.Time
	primed  bool
}

// NextArrival implements Generator.
func (g *Poisson) NextArrival() (Arrival, bool) {
	if g.Count > 0 && g.emitted >= g.Count {
		return Arrival{}, false
	}
	if !g.primed {
		g.next = g.Start
		g.primed = true
	}
	at := g.next
	gap := clock.Time(math.Ceil(g.Rng.ExpFloat64() * g.MeanGap))
	if gap == 0 {
		gap = 1
	}
	g.next += gap
	g.emitted++
	g.seq++
	return Arrival{
		At:  at,
		Pkt: flowq.Packet{Flow: g.Flow, Size: g.Size.Next(), Arrival: at, Seq: g.seq},
	}, true
}

// OnOff emits bursts of BurstLen packets back-to-back at PktGap spacing,
// separated by idle periods of IdleGap — a bursty on-off source.
type OnOff struct {
	Flow     flowq.FlowID
	Size     SizeDist
	BurstLen int
	PktGap   clock.Time
	IdleGap  clock.Time
	Start    clock.Time
	Count    int

	emitted int
	inBurst int
	seq     uint64
	next    clock.Time
	primed  bool
}

// NextArrival implements Generator.
func (g *OnOff) NextArrival() (Arrival, bool) {
	if g.Count > 0 && g.emitted >= g.Count {
		return Arrival{}, false
	}
	if g.BurstLen <= 0 {
		panic("pktgen: OnOff.BurstLen must be positive")
	}
	if !g.primed {
		g.next = g.Start
		g.primed = true
	}
	at := g.next
	g.inBurst++
	if g.inBurst >= g.BurstLen {
		g.inBurst = 0
		g.next += g.IdleGap
	} else {
		g.next += g.PktGap
	}
	g.emitted++
	g.seq++
	return Arrival{
		At:  at,
		Pkt: flowq.Packet{Flow: g.Flow, Size: g.Size.Next(), Arrival: at, Seq: g.seq},
	}, true
}

// Merge drains a set of generators into one globally time-ordered arrival
// stream (stable across equal timestamps by generator order). It realizes
// the "hundreds of flows per host" workload shape by fanning in per-flow
// sources.
func Merge(gens ...Generator) []Arrival {
	type cursor struct {
		gen  Generator
		head Arrival
		ok   bool
	}
	cursors := make([]cursor, len(gens))
	for i, g := range gens {
		a, ok := g.NextArrival()
		cursors[i] = cursor{gen: g, head: a, ok: ok}
	}
	var out []Arrival
	for {
		best := -1
		for i := range cursors {
			if !cursors[i].ok {
				continue
			}
			if best == -1 || cursors[i].head.At < cursors[best].head.At {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, cursors[best].head)
		cursors[best].head, cursors[best].ok = cursors[best].gen.NextArrival()
	}
}

// Validate sanity-checks a merged stream: timestamps must be
// non-decreasing and sizes positive. It returns an error describing the
// first violation.
func Validate(arrivals []Arrival) error {
	var prev clock.Time
	for i, a := range arrivals {
		if a.At < prev {
			return fmt.Errorf("pktgen: arrival %d at %v precedes %v", i, a.At, prev)
		}
		if a.Pkt.Size == 0 {
			return fmt.Errorf("pktgen: arrival %d has zero size", i)
		}
		prev = a.At
	}
	return nil
}
