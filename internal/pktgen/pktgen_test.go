package pktgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
	"pieo/internal/flowq"
)

func TestFixedSize(t *testing.T) {
	var d SizeDist = FixedSize(1500)
	for i := 0; i < 5; i++ {
		if got := d.Next(); got != 1500 {
			t.Fatalf("Next() = %d, want 1500", got)
		}
	}
}

func TestUniformSizeBounds(t *testing.T) {
	d := &UniformSize{Min: 64, Max: 1500, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 1000; i++ {
		s := d.Next()
		if s < 64 || s > 1500 {
			t.Fatalf("size %d out of [64,1500]", s)
		}
	}
}

func TestUniformSizeDegenerate(t *testing.T) {
	d := &UniformSize{Min: 100, Max: 100, Rng: rand.New(rand.NewSource(1))}
	if got := d.Next(); got != 100 {
		t.Fatalf("Next() = %d, want 100", got)
	}
}

func TestBimodalSizeMix(t *testing.T) {
	d := &BimodalSize{Small: 64, Large: 1500, FracSmall: 0.5, Rng: rand.New(rand.NewSource(7))}
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		switch d.Next() {
		case 64:
			small++
		case 1500:
			large++
		default:
			t.Fatalf("unexpected size")
		}
	}
	frac := float64(small) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("small fraction = %v, want ~0.5", frac)
	}
	if large == 0 {
		t.Fatal("no large packets drawn")
	}
}

func TestBackloggedAllAtZero(t *testing.T) {
	g := &Backlogged{Flow: 3, Size: FixedSize(MTU), Count: 10}
	n := 0
	for {
		a, ok := g.NextArrival()
		if !ok {
			break
		}
		if a.At != 0 {
			t.Fatalf("backlogged arrival at %v, want 0", a.At)
		}
		if a.Pkt.Flow != 3 || a.Pkt.Size != MTU {
			t.Fatalf("bad packet %+v", a.Pkt)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("emitted %d, want 10", n)
	}
}

func TestCBRSpacing(t *testing.T) {
	g := &CBR{Flow: 1, Size: FixedSize(1500), Gap: 120, Start: 1000, Count: 5}
	want := []clock.Time{1000, 1120, 1240, 1360, 1480}
	for i, w := range want {
		a, ok := g.NextArrival()
		if !ok || a.At != w {
			t.Fatalf("arrival %d = %v ok=%v, want %v", i, a.At, ok, w)
		}
	}
	if _, ok := g.NextArrival(); ok {
		t.Fatal("CBR emitted beyond Count")
	}
}

func TestGapForRate(t *testing.T) {
	// 1500 B at 100 Gbps: 12000 bits / 100 bits-per-ns = 120 ns (the
	// paper's MTU-at-100G budget).
	if got := GapForRate(100, 1500); got != 120 {
		t.Fatalf("GapForRate(100,1500) = %v, want 120", got)
	}
	// 40 Gbps MTU: 300 ns.
	if got := GapForRate(40, 1500); got != 300 {
		t.Fatalf("GapForRate(40,1500) = %v, want 300", got)
	}
}

func TestGapForRateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GapForRate(0) did not panic")
		}
	}()
	GapForRate(0, 1500)
}

func TestPoissonMeanGap(t *testing.T) {
	g := &Poisson{Flow: 1, Size: FixedSize(64), MeanGap: 100, Count: 20000, Rng: rand.New(rand.NewSource(42))}
	var prev clock.Time
	var total float64
	n := 0
	for {
		a, ok := g.NextArrival()
		if !ok {
			break
		}
		if n > 0 {
			total += float64(a.At - prev)
		}
		prev = a.At
		n++
	}
	mean := total / float64(n-1)
	if math.Abs(mean-100) > 5 {
		t.Fatalf("mean gap = %v, want ~100", mean)
	}
}

func TestOnOffBurstStructure(t *testing.T) {
	g := &OnOff{Flow: 1, Size: FixedSize(64), BurstLen: 3, PktGap: 10, IdleGap: 1000, Count: 7}
	var at []clock.Time
	for {
		a, ok := g.NextArrival()
		if !ok {
			break
		}
		at = append(at, a.At)
	}
	want := []clock.Time{0, 10, 20, 1020, 1030, 1040, 2040}
	if len(at) != len(want) {
		t.Fatalf("emitted %d, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("arrival %d at %v, want %v (all: %v)", i, at[i], want[i], at)
		}
	}
}

func TestMergeOrdersGlobally(t *testing.T) {
	a := &CBR{Flow: 1, Size: FixedSize(64), Gap: 100, Start: 0, Count: 5}
	b := &CBR{Flow: 2, Size: FixedSize(64), Gap: 70, Start: 5, Count: 5}
	merged := Merge(a, b)
	if len(merged) != 10 {
		t.Fatalf("merged %d arrivals, want 10", len(merged))
	}
	if err := Validate(merged); err != nil {
		t.Fatal(err)
	}
}

func TestMergeStableAtTies(t *testing.T) {
	a := &CBR{Flow: 1, Size: FixedSize(64), Gap: 100, Start: 0, Count: 2}
	b := &CBR{Flow: 2, Size: FixedSize(64), Gap: 100, Start: 0, Count: 2}
	merged := Merge(a, b)
	// At each shared timestamp, generator order (flow 1 first) wins.
	wantFlows := []uint32{1, 2, 1, 2}
	for i, w := range wantFlows {
		if uint32(merged[i].Pkt.Flow) != w {
			t.Fatalf("merged[%d].Flow = %d, want %d", i, merged[i].Pkt.Flow, w)
		}
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	bad := []Arrival{{At: 10, Pkt: flowq.Packet{Size: 64}}, {At: 5, Pkt: flowq.Packet{Size: 64}}}
	if err := Validate(bad); err == nil {
		t.Fatal("Validate accepted out-of-order stream")
	}
	zero := []Arrival{{At: 0, Pkt: flowq.Packet{Size: 0}}}
	if err := Validate(zero); err == nil {
		t.Fatal("Validate accepted zero-size packet")
	}
}

// Property: CBR arrivals are exactly Start + i*Gap for any parameters.
func TestCBRSpacingProperty(t *testing.T) {
	f := func(gap16 uint16, start16 uint16, count8 uint8) bool {
		gap := clock.Time(gap16)
		count := int(count8%32) + 1
		g := &CBR{Flow: 1, Size: FixedSize(64), Gap: gap, Start: clock.Time(start16), Count: count}
		for i := 0; i < count; i++ {
			a, ok := g.NextArrival()
			if !ok || a.At != clock.Time(start16)+clock.Time(i)*gap {
				return false
			}
		}
		_, ok := g.NextArrival()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
