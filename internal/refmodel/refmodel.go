// Package refmodel is the executable specification of the PIEO primitive
// (§3.1): a single flat list ordered by (rank, FIFO arrival), with
// dequeue returning the first eligible element. It makes no attempt to be
// fast or hardware-shaped — its only job is to be obviously correct so
// the sublist-based implementation in internal/core can be tested
// differentially against it.
package refmodel

import (
	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

type element struct {
	core.Entry
	seq uint64
}

// List is a flat, sorted PIEO list with the same operation contract as
// core.List.
type List struct {
	capacity int
	entries  []element
	seq      uint64
	present  map[uint32]bool
	stats    backend.Stats
}

// New creates a reference list with the given capacity.
func New(capacity int) *List {
	return &List{capacity: capacity, present: make(map[uint32]bool)}
}

var _ backend.Backend = (*List)(nil)

func init() {
	backend.Register("ref", func(n int) backend.Backend { return New(n) })
}

// Stats returns the accumulated operation counters, making the reference
// model itself a backend.Backend — so the differential harness can drive
// the spec and an implementation through one code path.
func (l *List) Stats() backend.Stats { return l.stats }

// Len returns the number of queued elements.
func (l *List) Len() int { return len(l.entries) }

// Contains reports whether id is queued.
func (l *List) Contains(id uint32) bool { return l.present[id] }

// Enqueue inserts e in (rank, FIFO) order.
func (l *List) Enqueue(e core.Entry) error {
	if len(l.entries) == l.capacity {
		return core.ErrFull
	}
	if l.present[e.ID] {
		return core.ErrDuplicate
	}
	l.seq++
	elem := element{Entry: e, seq: l.seq}
	idx := len(l.entries)
	for i, x := range l.entries {
		if elem.Rank < x.Rank || (elem.Rank == x.Rank && elem.seq < x.seq) {
			idx = i
			break
		}
	}
	l.entries = append(l.entries, element{})
	copy(l.entries[idx+1:], l.entries[idx:])
	l.entries[idx] = elem
	l.present[e.ID] = true
	l.stats.Enqueues++
	return nil
}

// Dequeue extracts the smallest-ranked eligible element at now.
func (l *List) Dequeue(now clock.Time) (core.Entry, bool) {
	for i, x := range l.entries {
		if x.SendTime <= now {
			l.stats.Dequeues++
			return l.removeAt(i), true
		}
	}
	l.stats.EmptyDequeues++
	return core.Entry{}, false
}

// Peek returns what Dequeue would extract, without removing it.
func (l *List) Peek(now clock.Time) (core.Entry, bool) {
	for _, x := range l.entries {
		if x.SendTime <= now {
			return x.Entry, true
		}
	}
	return core.Entry{}, false
}

// DequeueFlow extracts the element with the given id.
func (l *List) DequeueFlow(id uint32) (core.Entry, bool) {
	for i, x := range l.entries {
		if x.ID == id {
			l.stats.FlowDequeues++
			return l.removeAt(i), true
		}
	}
	return core.Entry{}, false
}

// DequeueRange extracts the smallest-ranked eligible element with
// lo <= ID <= hi.
func (l *List) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	for i, x := range l.entries {
		if x.SendTime <= now && x.ID >= lo && x.ID <= hi {
			l.stats.RangeDequeues++
			return l.removeAt(i), true
		}
	}
	return core.Entry{}, false
}

// MinSendTime returns the smallest send_time among queued elements.
func (l *List) MinSendTime() (clock.Time, bool) {
	if len(l.entries) == 0 {
		return 0, false
	}
	minT := clock.Never
	for _, x := range l.entries {
		if x.SendTime < minT {
			minT = x.SendTime
		}
	}
	return minT, true
}

// Snapshot returns the entries in (rank, FIFO) order.
func (l *List) Snapshot() []core.Entry {
	out := make([]core.Entry, len(l.entries))
	for i, x := range l.entries {
		out[i] = x.Entry
	}
	return out
}

func (l *List) removeAt(i int) core.Entry {
	e := l.entries[i].Entry
	copy(l.entries[i:], l.entries[i+1:])
	l.entries = l.entries[:len(l.entries)-1]
	delete(l.present, e.ID)
	return e
}
