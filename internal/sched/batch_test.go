package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/flowq"
)

// TestOnArrivalBatchEquivalence drives two identical schedulers through
// the same arrival/dequeue stream — one delivering packets individually
// through OnArrival, one in bursts through OnArrivalBatch — and requires
// identical transmitted packets, drops, and backlog at every step. Run
// across the trigger models and a stateful pre-enqueue program, since
// the batch path's one contract is that deferring the list inserts never
// changes what the programming functions compute.
func TestOnArrivalBatchEquivalence(t *testing.T) {
	progs := map[string]func() *Program{
		"output-default": func() *Program { return &Program{Name: "out"} },
		"input-ranked": func() *Program {
			return &Program{
				Name:  "in",
				Model: InputTriggered,
				PrePacket: func(s *Scheduler, now clock.Time, f *Flow, p *flowq.Packet) {
					p.Rank = uint64(p.Size)
					p.SendAt = now + clock.Time(p.Size%7)
				},
			}
		},
		"output-vtime": func() *Program {
			// A WFQ-shaped stateful pre-enqueue: rank depends on per-flow
			// accumulated state, so any reordering or re-invocation in the
			// batch path would diverge immediately.
			return &Program{
				Name: "vt",
				PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
					head, _ := f.Queue.Head()
					f.VirtualFinish += uint64(head.Size) / f.Weight
					f.Rank = f.VirtualFinish
					f.SendTime = clock.Always
				},
			}
		},
		"onarrival-fallback": func() *Program {
			// An OnArrival hook forces the per-packet fallback; the batch
			// entry point must still be exactly equivalent.
			return &Program{
				Name: "hook",
				OnArrival: func(s *Scheduler, now clock.Time, f *Flow) {
					if s.List.Contains(uint32(f.ID)) {
						s.Alarm(now, f.ID, func(*Flow) {})
					}
				},
			}
		},
	}
	for name, mk := range progs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			single := New(mk(), 256, 40)
			batched := New(mk(), 256, 40)
			now := clock.Time(0)
			for round := 0; round < 300; round++ {
				burst := make([]flowq.Packet, rng.Intn(9))
				for i := range burst {
					burst[i] = flowq.Packet{
						Flow:    flowq.FlowID(rng.Intn(24)),
						Size:    uint32(rng.Intn(1400) + 64),
						Arrival: now,
					}
				}
				for _, p := range burst {
					single.OnArrival(now, p)
				}
				batched.OnArrivalBatch(now, burst)
				for i := rng.Intn(7); i > 0; i-- {
					ps, oks := single.NextPacket(now)
					pb, okb := batched.NextPacket(now)
					if oks != okb || ps != pb {
						t.Fatalf("round %d: NextPacket = %v,%v single vs %v,%v batched", round, ps, oks, pb, okb)
					}
				}
				if single.Drops() != batched.Drops() || single.Backlog() != batched.Backlog() || single.List.Len() != batched.List.Len() {
					t.Fatalf("round %d: drops/backlog/list diverged: %d/%d/%d single vs %d/%d/%d batched",
						round, single.Drops(), single.Backlog(), single.List.Len(),
						batched.Drops(), batched.Backlog(), batched.List.Len())
				}
				now += clock.Time(rng.Intn(50))
			}
		})
	}
}

// TestOnArrivalBatchDrops: tail drops inside a burst must count and
// behave exactly as per-packet delivery.
func TestOnArrivalBatchDrops(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	f := s.Flow(1)
	f.Queue.Limit = 4
	burst := make([]flowq.Packet, 10)
	for i := range burst {
		burst[i] = flowq.Packet{Flow: 1, Size: 100}
	}
	s.OnArrivalBatch(0, burst)
	if s.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", s.Drops())
	}
	if got := fmt.Sprint(s.Backlog()); got != "4" {
		t.Fatalf("Backlog = %s, want 4", got)
	}
}
