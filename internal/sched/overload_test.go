package sched

import (
	"errors"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/flowq"
	"pieo/internal/supervise"
)

// rankedProg gives each flow its ID as rank (always eligible), so
// push-out victims are predictable.
func rankedProg() *Program {
	return &Program{
		Name: "ranked",
		PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
			f.Rank = uint64(f.ID)
			f.SendTime = clock.Always
		},
	}
}

// TestOverloadLadderOnScheduler drives occupancy through every watermark
// and checks the admission behavior the active level implies: admit-all
// rejects nothing, tail-drop absorbs overflow, push-out evicts the worst
// rank, shed drops at the door without touching the list.
func TestOverloadLadderOnScheduler(t *testing.T) {
	const cap = 10
	s := New(rankedProg(), cap, 40)
	s.Strict = false
	s.Overload = supervise.NewController(cap, supervise.Watermarks{})

	// Fill to capacity: the controller climbs as occupancy crosses the
	// enter marks, but nothing is shed until the shed level (97% of 10
	// rounds up to 10).
	for id := flowq.FlowID(1); id <= cap; id++ {
		s.OnArrival(0, flowq.Packet{Flow: id, Size: 100})
	}
	if got := s.List.Len(); got != cap {
		t.Fatalf("list len = %d, want %d (no shedding below the shed mark)", got, cap)
	}

	// At full occupancy the next arrival evaluates into the shed level
	// and is dropped at the door: the list is untouched and the drop is
	// attributed.
	s.OnArrival(0, flowq.Packet{Flow: 99, Size: 100})
	if lvl := s.Overload.Level(); lvl != supervise.LevelShed {
		t.Fatalf("level at full occupancy = %v, want shed", lvl)
	}
	fs := s.FaultStats()
	if fs.AdmissionSheds != 1 || fs.DroppedPackets != 1 {
		t.Fatalf("after shed: sheds=%d drops=%d, want 1/1", fs.AdmissionSheds, fs.DroppedPackets)
	}
	if s.List.Contains(99) {
		t.Fatal("shed arrival reached the ordered list")
	}
	if got := s.Overload.Stats().Sheds; got != 1 {
		t.Fatalf("controller sheds = %d, want 1", got)
	}

	// Drain below the shed-exit mark (90% → 9): the controller descends
	// and arrivals flow again (push-out at level 2: the newcomer with the
	// best rank evicts the worst resident).
	for i := 0; i < 3; i++ {
		if _, ok := s.NextPacket(0); !ok {
			t.Fatalf("drain %d: no packet", i)
		}
	}
	s.OnArrival(0, flowq.Packet{Flow: 100, Size: 100}) // rank 100: worst — dropped by push-out or admitted if room
	if s.List.Len() > cap {
		t.Fatalf("list len %d exceeds capacity", s.List.Len())
	}
	if lvl := s.Overload.Level(); lvl == supervise.LevelShed {
		t.Fatal("controller still at shed after draining below the exit mark")
	}
}

// TestOverloadPushOutEvictsWorst: at the push-out level an arrival that
// outranks the resident maximum evicts it, and the victim's backlog is
// shed as declared drops.
func TestOverloadPushOutEvictsWorst(t *testing.T) {
	const cap = 8
	s := New(rankedProg(), cap, 40)
	s.Strict = false
	// The controller is scaled to a larger aggregate (a shared link whose
	// budget spans more than this one list), so a full list sits in the
	// push-out band rather than the shed band: full + push-out is the
	// configuration where the rank-aware rule actually evicts.
	s.Overload = supervise.NewController(2*cap, supervise.Watermarks{
		EnterTailDrop: 0.20, ExitTailDrop: 0.10,
		EnterPushOut: 0.40, ExitPushOut: 0.30,
		EnterShed: 0.95, ExitShed: 0.90,
	})
	// IDs 10..17 fill the list; push-out is active well below full.
	for id := flowq.FlowID(10); id < 10+cap; id++ {
		s.OnArrival(0, flowq.Packet{Flow: id, Size: 100})
	}
	if got := s.List.Len(); got != cap {
		t.Fatalf("list len = %d, want %d", got, cap)
	}
	// Rank 5 outranks every resident (10..17): 17 is evicted.
	s.OnArrival(0, flowq.Packet{Flow: 5, Size: 100})
	if !s.List.Contains(5) {
		t.Fatal("outranking arrival was not admitted by push-out")
	}
	if s.List.Contains(17) {
		t.Fatal("worst-ranked resident survived push-out")
	}
	fs := s.FaultStats()
	if fs.AdmissionEvictions != 1 || fs.DroppedPackets != 1 {
		t.Fatalf("evictions=%d drops=%d, want 1/1 (victim's backlog shed)", fs.AdmissionEvictions, fs.DroppedPackets)
	}
}

// TestDequeueDeadline: a program that never makes progress (re-enqueues
// without transmitting) trips the deadline on the injected clock instead
// of spinning out the 2^22 guard, and the expiry is typed core.ErrDeadline.
func TestDequeueDeadline(t *testing.T) {
	clk := &clock.Wall{}
	prog := &Program{
		Name: "stuck",
		PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
			f.Rank = 1
			f.SendTime = clock.Always
		},
		PostDequeue: func(s *Scheduler, now clock.Time, f *Flow) []flowq.Packet {
			// Never transmits: re-enqueue and advance the clock so the
			// deadline can expire.
			clk.Advance(7)
			s.EnqueueFlow(now, f)
			return nil
		},
	}
	s := New(prog, 16, 40)
	s.Strict = false
	s.Clock = clk
	s.DequeueBudget = 100
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})

	if _, ok := s.NextPacket(0); ok {
		t.Fatal("stuck program produced a packet")
	}
	fs := s.FaultStats()
	if fs.DeadlineExpiries != 1 {
		t.Fatalf("DeadlineExpiries = %d, want 1", fs.DeadlineExpiries)
	}
	if fs.SpinGuardTrips != 0 {
		t.Fatalf("SpinGuardTrips = %d, want 0 (deadline must fire first)", fs.SpinGuardTrips)
	}
	if err := s.LastFault(); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("LastFault = %v, want core.ErrDeadline", err)
	}
	// Without a budget the same program runs into the spin guard; with
	// one, the episode was bounded by ~100/7 iterations — sanity-check it
	// stayed tiny via the clock.
	if clk.Now() > 200 {
		t.Fatalf("clock advanced to %v; deadline did not bound the episode", clk.Now())
	}
}

// TestOverloadNoFlappingUnderConstantLoad holds the scheduler at a
// boundary occupancy and checks the controller's level is constant across
// ≥100 consecutive arrival evaluations — the ISSUE's no-flapping gate at
// the integration layer.
func TestOverloadNoFlappingUnderConstantLoad(t *testing.T) {
	const cap = 100
	s := New(rankedProg(), cap, 40)
	s.Strict = false
	s.Overload = supervise.NewController(cap, supervise.Watermarks{})
	// Pin occupancy exactly on the tail-drop enter mark (70).
	for id := flowq.FlowID(1); id <= 70; id++ {
		s.OnArrival(0, flowq.Packet{Flow: id, Size: 100})
	}
	// One settling evaluation at the boundary occupancy, then the level
	// must hold across every subsequent evaluation at the same load.
	settled := s.Overload.Evaluate(s.List.Len())
	before := s.Overload.Stats().Transitions
	for i := 0; i < 120; i++ {
		if got := s.Overload.Evaluate(s.List.Len()); got != settled {
			t.Fatalf("level flapped to %v at constant occupancy (eval %d)", got, i)
		}
	}
	if delta := s.Overload.Stats().Transitions - before; delta != 0 {
		t.Fatalf("%d transitions across constant-load evaluations, want 0", delta)
	}
}
