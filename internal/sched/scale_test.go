package sched_test

import (
	"testing"

	"pieo/internal/algos"
	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/flowq"
	"pieo/internal/sched"
	"pieo/internal/stats"
)

// The paper's scalability claim is functional, not just a resource
// count: the scheduler must actually handle "tens of thousands of
// flows". These tests run 30K concurrent flows through the PIEO
// scheduler end to end.

func TestThirtyThousandFlowsFairShare(t *testing.T) {
	if testing.Short() {
		t.Skip("30K-flow run")
	}
	const nFlows = 30000
	s := sched.New(algos.WF2Q(), nFlows, 100)

	// One packet per flow, all backlogged at t=0.
	var seq uint64
	for f := 0; f < nFlows; f++ {
		seq++
		s.OnArrival(0, flowq.Packet{Flow: flowq.FlowID(f), Size: 1500, Seq: seq})
	}
	if s.List.Len() != nFlows {
		t.Fatalf("list holds %d flows, want %d", s.List.Len(), nFlows)
	}
	if err := backend.CheckInvariants(s.List); err != nil {
		t.Fatal(err)
	}

	// Drain one full round: every flow must be served exactly once
	// (equal weights, equal packets: one round of fair service).
	served := make(map[flowq.FlowID]int, nFlows)
	for i := 0; i < nFlows; i++ {
		p, ok := s.NextPacket(0)
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		served[p.Flow]++
	}
	for f := 0; f < nFlows; f++ {
		if served[flowq.FlowID(f)] != 1 {
			t.Fatalf("flow %d served %d times in one round", f, served[flowq.FlowID(f)])
		}
	}
	if err := backend.CheckInvariants(s.List); err != nil {
		t.Fatal(err)
	}
}

func TestThirtyThousandFlowShaping(t *testing.T) {
	if testing.Short() {
		t.Skip("30K-flow run")
	}
	// 30K token buckets with distinct deadlines: the eligibility machinery
	// must hold up at scale too. Flows get staggered send times; draining
	// at increasing clock values releases exactly the eligible prefix.
	const nFlows = 30000
	s := sched.New(algos.RCSP(), nFlows, 100)
	var seq uint64
	for f := 0; f < nFlows; f++ {
		s.Flow(flowq.FlowID(f)).Priority = uint64(f)
		seq++
		s.OnArrival(0, flowq.Packet{
			Flow:   flowq.FlowID(f),
			Size:   1500,
			SendAt: clock.Time(f * 10),
			Seq:    seq,
		})
	}
	released := 0
	for now := clock.Time(0); released < nFlows; now += 50000 {
		for {
			p, ok := s.NextPacket(now)
			if !ok {
				break
			}
			head := clock.Time(uint64(p.Flow) * 10)
			if head > now {
				t.Fatalf("flow %d released at %v before its send time %v", p.Flow, now, head)
			}
			released++
		}
	}
	if released != nFlows {
		t.Fatalf("released %d, want %d", released, nFlows)
	}
}

func TestManyFlowsChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run")
	}
	// 10K flows arriving and draining in waves, with fairness measured
	// per wave — exercises enqueue/retire churn on the sublist structure.
	const nFlows = 10000
	s := sched.New(algos.WFQ(), nFlows, 100)
	var seq uint64
	for wave := 0; wave < 3; wave++ {
		for f := 0; f < nFlows; f++ {
			for k := 0; k < 2; k++ {
				seq++
				s.OnArrival(0, flowq.Packet{Flow: flowq.FlowID(f), Size: 1500, Seq: seq})
			}
		}
		bytes := map[flowq.FlowID]uint64{}
		for i := 0; i < 2*nFlows; i++ {
			p, ok := s.NextPacket(0)
			if !ok {
				t.Fatalf("wave %d drained early at %d", wave, i)
			}
			bytes[p.Flow] += uint64(p.Size)
		}
		var shares []float64
		for _, b := range bytes {
			shares = append(shares, float64(b))
		}
		if j := stats.JainIndex(shares); j < 0.9999 {
			t.Fatalf("wave %d Jain = %v", wave, j)
		}
		if err := backend.CheckInvariants(s.List); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
	}
}
