// Package sched implements the PIEO programming framework of §3.2: a
// scheduler built around a PIEO ordered list whose behavior is programmed
// through pre-enqueue and post-dequeue functions, a choice of
// input-triggered or output-triggered enqueue model, and asynchronous
// alarm functions that can pull specific flows out of the list, update
// their attributes, and push them back.
//
// Each element of the ordered list is a flow; scheduling a flow transmits
// the packet(s) at the head of its FIFO queue (Fig 3). All scheduling
// state lives either per flow (the Flow struct, which doubles as the
// control-plane surface: weights, rate limits, priorities) or globally on
// the Scheduler (the fair-queueing virtual clock), exactly as the paper
// prescribes.
package sched

import (
	"errors"
	"fmt"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/flowq"
	"pieo/internal/supervise"
)

// TriggerModel selects when the pre-enqueue function runs (§3.2.1).
type TriggerModel int

const (
	// OutputTriggered runs PreEnqueue whenever a packet is dequeued from
	// a flow queue (at flow re-enqueue) or arrives into an empty flow
	// queue. Rank/predicate computation sits on the critical scheduling
	// path but reflects the freshest state; shaping policies get more
	// precise guarantees.
	OutputTriggered TriggerModel = iota
	// InputTriggered runs PrePacket whenever a packet is enqueued into a
	// flow queue; the flow adopts its head packet's precomputed rank and
	// send time at re-enqueue, keeping the dequeue path minimal.
	InputTriggered
)

// String names the model.
func (m TriggerModel) String() string {
	switch m {
	case OutputTriggered:
		return "output-triggered"
	case InputTriggered:
		return "input-triggered"
	default:
		return fmt.Sprintf("TriggerModel(%d)", int(m))
	}
}

// Flow carries all per-flow scheduling state: the FIFO queue, the current
// rank and eligibility time, the control-plane configuration (weight,
// rate limit, priority, DRR quantum), and the algorithm scratch fields
// the §4 programs use. The control plane mutates the configuration
// fields directly; the programming functions own the rest.
type Flow struct {
	ID    flowq.FlowID
	Queue flowq.Queue

	// Scheduling attributes assigned by PreEnqueue (§3.1).
	Rank     uint64
	SendTime clock.Time

	// Control-plane configuration.
	Weight   uint64  // fair-queueing weight (WFQ/WF²Q+), default 1
	Quantum  uint64  // DRR quantum in bytes, default MTU-sized
	Priority uint64  // strict/static priority, smaller is better
	RateGbps float64 // token-bucket rate in Gbps (= bits per simulated ns)
	Burst    float64 // token-bucket depth in bytes

	// NewlyBacklogged is set by the framework when a packet arrives into
	// an empty queue and cleared after the next PreEnqueue runs.
	// Fair-queueing programs use it to apply Fig 2(a)'s
	// start = max(finish, V) only at busy-period starts; a continuously
	// backlogged flow's next start is exactly its previous finish.
	NewlyBacklogged bool

	// Algorithm scratch state.
	VirtualStart  uint64     // WF²Q+ per-flow virtual start time
	VirtualFinish uint64     // WFQ/WF²Q+ per-flow virtual finish time
	Deficit       uint64     // DRR deficit counter in bytes
	Tokens        float64    // token bucket level in bytes
	LastRefill    clock.Time // token bucket last update
	LastScheduled clock.Time // for starvation detection (§4.4)
	Blocked       bool       // paused by network feedback (§4.4 D3)
}

// Program is a scheduling algorithm expressed against the framework: a
// bundle of programming functions with paper-faithful defaults. Any nil
// hook uses the default behavior of §3.2.1.
type Program struct {
	Name  string
	Model TriggerModel

	// DequeueTime maps the wall clock to the monotonic time function the
	// predicate compares against (§3.1): identity (wall clock) when nil;
	// fair-queueing programs return the scheduler's virtual time.
	DequeueTime func(s *Scheduler, now clock.Time) clock.Time

	// PreEnqueue assigns f.Rank and f.SendTime before the flow enters
	// the ordered list (output-triggered model). Default: rank 1,
	// predicate always true.
	PreEnqueue func(s *Scheduler, now clock.Time, f *Flow)

	// PrePacket assigns p.Rank and p.SendAt when a packet arrives
	// (input-triggered model). Default: rank 1, predicate always true.
	PrePacket func(s *Scheduler, now clock.Time, f *Flow, p *flowq.Packet)

	// PostDequeue transmits from the dequeued flow and updates state.
	// It returns the packets to put on the wire and normally re-enqueues
	// the flow via s.EnqueueFlow when it stays backlogged. Default: pop
	// one packet, re-enqueue if the queue is not empty.
	PostDequeue func(s *Scheduler, now clock.Time, f *Flow) []flowq.Packet

	// Wake returns the wall time at which the next element could become
	// eligible, for non-work-conserving programs. Default: the list's
	// minimum send_time when DequeueTime is nil (wall-clock domain),
	// nothing otherwise.
	Wake func(s *Scheduler, now clock.Time) (clock.Time, bool)

	// OnArrival, if set, runs after every packet lands in its flow
	// queue. Algorithms whose rank depends on queue contents (SJF/SRTF)
	// use it to refresh the flow's list entry via Scheduler.Alarm — the
	// §4.4 "dynamically update the scheduling attributes" pattern.
	OnArrival func(s *Scheduler, now clock.Time, f *Flow)

	// OnIdle, if set, runs when the list holds elements but none is
	// eligible at the program's dequeue time. Returning true means the
	// program changed state (e.g. WF²Q+ jumped its virtual clock to the
	// minimum start time, the Fig 2(a) idle-link rule) and the dequeue
	// should be retried once.
	OnIdle func(s *Scheduler, now clock.Time) bool
}

// Scheduler is a flat (single-level) PIEO scheduler: one ordered list, a
// set of flows, and a program. It implements netsim.Scheduler and
// netsim.WakeHinter.
type Scheduler struct {
	Prog *Program
	// List is the ordered-list backend the scheduler extracts from. It
	// defaults to the paper-exact sublist implementation (core.List via
	// backend.CoreList); NewOn swaps in any other backend — sharded,
	// PIFO, approximate — without touching the programming framework.
	List         backend.Backend
	LinkRateGbps float64

	// V is the global fair-queueing virtual time (§4.1), maintained by
	// the WFQ-family programs. Time unit: scaled wire-nanoseconds.
	V clock.Virtual

	// SumWeights is the total weight of all configured flows, used to
	// convert packet wire time into per-flow virtual service (WF²Q+).
	SumWeights uint64

	// Admission selects what happens when the ordered list is full and a
	// flow must enter it (see backend.AdmissionPolicy): reject, tail-drop,
	// or rank-aware push-out. It applies only in non-strict mode — strict
	// mode preserves the historical panic-on-full contract.
	Admission backend.AdmissionPolicy

	// Strict preserves the historical failure contract: any ordered-list
	// fault (full list, failed batch insert, unknown flow from a dequeue,
	// spin-guard trip) panics. New/NewOn default it to true so existing
	// deployments and tests keep exact behavior; overload and chaos
	// configurations clear it, and every such condition is then counted
	// in FaultStats, shed as declared drops, and never panics.
	Strict bool

	// Overload, when set, is the graduated overload controller
	// (supervise.Controller): each non-strict flow admission evaluates
	// the list occupancy against its watermark ladder and runs under the
	// level's admission policy — admit-all → tail-drop → rank-aware
	// push-out → shed — instead of the static Admission field. At the
	// shed level arrivals are dropped at the door (counted in
	// FaultStats.AdmissionSheds) without touching the list.
	Overload *supervise.Controller

	// Clock and DequeueBudget bound NextPacket's extract-retry loop by
	// time instead of the raw spin guard: when both are set, a dequeue
	// episode that exceeds DequeueBudget ticks on Clock returns no packet
	// with core.ErrDeadline recorded (FaultStats.DeadlineExpiries) — the
	// graceful alternative to spinning until the guard counter trips.
	Clock         clock.Source
	DequeueBudget clock.Time

	flows   map[flowq.FlowID]*Flow
	pending []flowq.Packet // burst left over from a multi-packet PostDequeue
	drops   uint64         // packets tail-dropped at full flow queues

	faults  backend.FaultStats // non-strict fault and admission counters
	lastErr error              // most recent non-strict fault, for diagnosis

	arrivalBatch []core.Entry // OnArrivalBatch scratch, reused across calls
}

// New creates a scheduler for up to capacity concurrent flows on a link
// of the given rate, over the default paper-exact list backend.
func New(prog *Program, capacity int, linkRateGbps float64) *Scheduler {
	return NewOn(prog, backend.NewCoreList(capacity), linkRateGbps)
}

// NewNamed creates a scheduler over the named registered backend — the
// same registry pieosim's -backend flag consults, so "cffs" or
// "sharded+cffs" drop in without the caller touching internal/backend
// constructors.
func NewNamed(prog *Program, name string, capacity int, linkRateGbps float64) (*Scheduler, error) {
	b, err := backend.New(name, capacity)
	if err != nil {
		return nil, err
	}
	return NewOn(prog, b, linkRateGbps), nil
}

// NewOn creates a scheduler over an explicit ordered-list backend. The
// programming framework is backend-agnostic: any backend.Backend can
// carry the §3.2 functions, though approximate backends weaken the
// scheduling guarantees exactly as §2.3 predicts.
func NewOn(prog *Program, b backend.Backend, linkRateGbps float64) *Scheduler {
	if prog == nil {
		panic("sched: program must not be nil")
	}
	if b == nil {
		panic("sched: backend must not be nil")
	}
	if linkRateGbps <= 0 {
		panic(fmt.Sprintf("sched: link rate must be positive, got %v", linkRateGbps))
	}
	return &Scheduler{
		Prog:         prog,
		List:         b,
		LinkRateGbps: linkRateGbps,
		Strict:       true,
		flows:        make(map[flowq.FlowID]*Flow),
	}
}

// FaultStats returns the non-strict fault and admission counters.
func (s *Scheduler) FaultStats() backend.FaultStats { return s.faults }

// LastFault returns the most recent non-strict fault, nil if none.
func (s *Scheduler) LastFault() error { return s.lastErr }

// fault records a non-strict fault for diagnosis.
func (s *Scheduler) fault(err error) { s.lastErr = err }

// flushFlow sheds f's entire queued backlog as declared drops — the
// overload/fault response when f cannot (re-)enter the ordered list: a
// flow outside the list is never scheduled, so keeping its packets would
// stall them silently; dropping them keeps conservation auditable.
func (s *Scheduler) flushFlow(f *Flow) {
	for {
		if _, ok := f.Queue.Pop(); !ok {
			break
		}
		s.faults.DroppedPackets++
	}
}

// BackendStats returns the ordered-list backend's operation counters, for
// netsim reporting and the cmd/ tools.
func (s *Scheduler) BackendStats() backend.Stats { return s.List.Stats() }

// Flow returns the per-flow state for id, creating it with default
// control-plane settings (weight 1, MTU quantum) on first use.
func (s *Scheduler) Flow(id flowq.FlowID) *Flow {
	f := s.flows[id]
	if f == nil {
		f = &Flow{ID: id, Weight: 1, Quantum: 1500}
		s.flows[id] = f
		s.SumWeights += f.Weight
	}
	return f
}

// SetWeight updates a flow's fair-queueing weight, keeping SumWeights
// coherent. Control-plane use.
func (s *Scheduler) SetWeight(id flowq.FlowID, w uint64) {
	if w == 0 {
		panic("sched: weight must be positive")
	}
	f := s.Flow(id)
	s.SumWeights += w - f.Weight
	f.Weight = w
}

// Flows returns the number of flows ever seen.
func (s *Scheduler) Flows() int { return len(s.flows) }

// WireTime returns the wire time of size bytes on this scheduler's link,
// in simulated nanoseconds.
func (s *Scheduler) WireTime(size uint32) clock.Time {
	ns := float64(size) * 8 / s.LinkRateGbps
	if ns < 1 {
		ns = 1
	}
	return clock.Time(ns)
}

// OnArrival implements netsim.Scheduler: deliver p to its flow queue and
// enqueue the flow into the ordered list if the queue was empty.
func (s *Scheduler) OnArrival(now clock.Time, p flowq.Packet) {
	f := s.Flow(p.Flow)
	if s.Prog.Model == InputTriggered {
		if s.Prog.PrePacket != nil {
			s.Prog.PrePacket(s, now, f, &p)
		} else {
			p.Rank = 1
			p.SendAt = clock.Always
		}
	}
	wasEmpty := f.Queue.Empty()
	if !f.Queue.TryPush(p) {
		s.drops++ // tail drop: the flow queue is at its configured limit
		return
	}
	if wasEmpty {
		f.NewlyBacklogged = true
		s.EnqueueFlow(now, f)
	}
	if s.Prog.OnArrival != nil {
		s.Prog.OnArrival(s, now, f)
	}
}

// OnArrivalBatch delivers ps in arrival order with the exact state
// evolution of per-packet OnArrival calls, but collects the ordered-list
// inserts of newly-backlogged flows and issues them as one batch through
// the backend's batch path (one lock acquisition on SyncList, one
// per-shard fan-out on the sharded engine). This is sound because the
// pre-enqueue functions compute each flow's rank inline at its arrival
// point — only the already-computed list inserts are deferred — and no
// §3.2.1 pre-enqueue/pre-packet hook reads the ordered list (the §4
// programs read it only from PostDequeue/OnIdle/OnArrival). Programs
// with an OnArrival hook fall back to per-packet delivery: the hook may
// inspect or rewrite the list between arrivals (SJF re-ranks via Alarm),
// so deferring inserts would change what it observes.
func (s *Scheduler) OnArrivalBatch(now clock.Time, ps []flowq.Packet) {
	if s.Prog.OnArrival != nil {
		for _, p := range ps {
			s.OnArrival(now, p)
		}
		return
	}
	batch := s.arrivalBatch[:0]
	for _, p := range ps {
		f := s.Flow(p.Flow)
		if s.Prog.Model == InputTriggered {
			if s.Prog.PrePacket != nil {
				s.Prog.PrePacket(s, now, f, &p)
			} else {
				p.Rank = 1
				p.SendAt = clock.Always
			}
		}
		wasEmpty := f.Queue.Empty()
		if !f.Queue.TryPush(p) {
			s.drops++
			continue
		}
		if wasEmpty {
			f.NewlyBacklogged = true
			// A flow can become newly backlogged at most once per batch
			// (no dequeues run in between), so the batch holds no
			// duplicate IDs beyond what the list already rejects.
			if ent, ok := s.prepareEntry(now, f); ok {
				batch = append(batch, ent)
			}
		}
	}
	s.arrivalBatch = batch[:0] // keep the grown capacity, not the entries
	if len(batch) == 0 {
		return
	}
	if _, err := backend.EnqueueBatch(s.List, batch); err != nil {
		if s.Strict {
			panic(fmt.Sprintf("sched: batch enqueue: %v", err))
		}
		// At least one insert failed. Re-check each batched flow: one
		// whose entry did not land would stall outside the list, so its
		// backlog is shed as declared drops (full lists go through the
		// per-flow admission path for policy handling).
		s.faults.BatchEnqueueFailures++
		s.fault(fmt.Errorf("sched: batch enqueue: %w", err))
		for _, ent := range batch {
			if s.List.Contains(ent.ID) {
				continue
			}
			f := s.flows[flowq.FlowID(ent.ID)]
			if f == nil {
				continue
			}
			if errors.Is(err, core.ErrFull) {
				// Retry through the admission policy, which decides
				// between reject, tail-drop, and push-out per flow.
				s.EnqueueFlow(now, f)
				continue
			}
			s.flushFlow(f)
		}
	}
}

// Drops returns the number of packets tail-dropped across all flows.
func (s *Scheduler) Drops() uint64 { return s.drops }

// NextPacket implements netsim.Scheduler: extract the smallest-ranked
// eligible flow, run the post-dequeue function, and hand the first packet
// of the resulting burst to the link. Remaining burst packets (DRR) are
// returned on subsequent calls before the list is consulted again.
func (s *Scheduler) NextPacket(now clock.Time) (flowq.Packet, bool) {
	if len(s.pending) > 0 {
		p := s.pending[0]
		s.pending = s.pending[1:]
		return p, true
	}
	t := now
	if s.Prog.DequeueTime != nil {
		t = s.Prog.DequeueTime(s, now)
	}
	// A post-dequeue may legitimately transmit nothing and re-enqueue the
	// flow (DRR whose deficit does not yet cover the head packet); keep
	// extracting until a packet emerges. Progress is guaranteed by the
	// program (DRR's deficit grows each visit), but a hard cap turns a
	// misbehaving program into a diagnosable panic instead of a hang.
	// When a clock and budget are configured, the whole extract-retry
	// episode runs under a deadline: expiry surfaces as core.ErrDeadline
	// and an idle link instead of spinning the guard counter out.
	var deadline clock.Time
	if s.Clock != nil && s.DequeueBudget > 0 {
		deadline = supervise.Deadline(s.Clock, s.DequeueBudget)
	}
	retriedIdle := false
	for spins := 0; ; spins++ {
		if deadline != 0 && spins > 0 && supervise.Expired(s.Clock, deadline) {
			s.faults.DeadlineExpiries++
			s.fault(fmt.Errorf("sched: program %q: %w after %v budget (%d dequeues)",
				s.Prog.Name, core.ErrDeadline, s.DequeueBudget, spins))
			return flowq.Packet{}, false
		}
		if spins > 1<<22 {
			if s.Strict {
				panic(fmt.Sprintf("sched: program %q made no progress after %d dequeues", s.Prog.Name, spins))
			}
			// Non-strict: a misbehaving program surfaces as a counted
			// fault and an idle link instead of a crash.
			s.faults.SpinGuardTrips++
			s.fault(fmt.Errorf("sched: program %q made no progress after %d dequeues", s.Prog.Name, spins))
			return flowq.Packet{}, false
		}
		e, ok := s.List.Dequeue(t)
		if !ok {
			if !retriedIdle && s.List.Len() > 0 && s.Prog.OnIdle != nil && s.Prog.OnIdle(s, now) {
				retriedIdle = true
				if s.Prog.DequeueTime != nil {
					t = s.Prog.DequeueTime(s, now)
				}
				continue
			}
			return flowq.Packet{}, false
		}
		f := s.flows[flowq.FlowID(e.ID)]
		if f == nil {
			if s.Strict {
				panic(fmt.Sprintf("sched: list returned unknown flow %d", e.ID))
			}
			// The extracted element references no flow state (a
			// core.ErrUnknownFlow condition): discard it and keep
			// scheduling — the list is already consistent again.
			s.faults.UnknownFlows++
			s.fault(fmt.Errorf("%w: list returned id %d", core.ErrUnknownFlow, e.ID))
			continue
		}
		var burst []flowq.Packet
		if s.Prog.PostDequeue != nil {
			burst = s.Prog.PostDequeue(s, now, f)
		} else {
			burst = s.DefaultPostDequeue(now, f)
		}
		if len(burst) == 0 {
			continue
		}
		s.pending = burst[1:]
		return burst[0], true
	}
}

// DefaultPostDequeue is the §3.2.1 default: transmit the head packet and
// re-enqueue the flow if it stays backlogged. Custom post-dequeue hooks
// can call it after updating algorithm state.
func (s *Scheduler) DefaultPostDequeue(now clock.Time, f *Flow) []flowq.Packet {
	p, ok := f.Queue.Pop()
	if !ok {
		if s.Strict {
			panic(fmt.Sprintf("sched: flow %d scheduled with empty queue", f.ID))
		}
		// A fault path (admission flush, chaotic backend) emptied the
		// queue while the flow's entry was still in flight: a phantom
		// extraction, counted like an unknown flow.
		s.faults.UnknownFlows++
		s.fault(fmt.Errorf("%w: flow %d scheduled with empty queue", core.ErrUnknownFlow, f.ID))
		return nil
	}
	if !f.Queue.Empty() {
		s.EnqueueFlow(now, f)
	}
	f.LastScheduled = now
	return []flowq.Packet{p}
}

// EnqueueFlow (re-)inserts f into the ordered list: under the
// output-triggered model it runs the pre-enqueue function to assign rank
// and send time; under the input-triggered model the flow adopts its head
// packet's precomputed attributes. Blocked flows (§4.4) and flows already
// in the list are left alone.
//
// outranksWorst reports whether ent strictly outranks the worst resident
// of the ordered list — the shed level's premium carve-out. A read-only
// PeekMax costs far less than the insert the door-drop avoids, and a
// backend without eviction support reports false (nothing outranks, so
// shed stays unconditional — the conservative direction).
func (s *Scheduler) outranksWorst(ent core.Entry) bool {
	ev, ok := s.List.(backend.Evictor)
	if !ok {
		return false
	}
	worst, ok := ev.PeekMax()
	return ok && ent.Rank < worst.Rank
}

// In strict mode an insert failure panics (the historical contract). In
// non-strict mode a full list is resolved by the Admission policy — the
// rejected party's backlog (the arriving flow's, or under push-out the
// evicted victim's) is shed as declared drops — and any other failure is
// counted in FaultStats with the arriving flow's backlog shed, so a flow
// never silently stalls outside the list.
func (s *Scheduler) EnqueueFlow(now clock.Time, f *Flow) {
	newly := f.NewlyBacklogged // prepareEntry clears it; the shed gate needs it
	ent, ok := s.prepareEntry(now, f)
	if !ok {
		return
	}
	if s.Strict {
		if err := s.List.Enqueue(ent); err != nil {
			panic(fmt.Sprintf("sched: enqueue flow %d: %v", f.ID, err))
		}
		return
	}
	pol := s.Admission
	if s.Overload != nil {
		// Graduated overload control: the controller steps the admission
		// policy through its watermark ladder on the observed occupancy.
		// Its hysteresis guarantees the level is stable at any constant
		// occupancy, so policy cannot flap between consecutive arrivals.
		lvl := s.Overload.Evaluate(s.List.Len())
		if lvl == supervise.LevelShed && newly && !s.outranksWorst(ent) {
			// Critical occupancy: drop NEW admissions at the door unless the
			// arrival outranks the worst resident. Two carve-outs keep the
			// last level from inverting the priority order it exists to
			// protect: re-enqueues from the dequeue path carry
			// already-admitted backlog (shedding those would punish exactly
			// the flows being served most — the best-ranked ones, which
			// cycle through dequeue/re-enqueue fastest), and an outranking
			// arrival is premium work the rank-aware policy would admit
			// anyway. Both compete under push-out; everything else is
			// dropped before it touches the list.
			s.Overload.NoteShed()
			s.faults.AdmissionSheds++
			s.flushFlow(f)
			return
		}
		pol = lvl.Policy()
	}
	out, err := backend.Admit(s.List, pol, ent)
	switch {
	case err == nil:
		if out.DidEvict {
			s.faults.AdmissionEvictions++
			if vf := s.flows[flowq.FlowID(out.Evicted.ID)]; vf != nil {
				s.flushFlow(vf)
			}
		}
		if out.DroppedArrival {
			s.faults.AdmissionTailDrops++
			s.flushFlow(f)
		}
	case errors.Is(err, core.ErrFull): // AdmitReject surfaced the full list
		s.faults.AdmissionRejects++
		s.flushFlow(f)
	case errors.Is(err, core.ErrDuplicate):
		// Benign: the flow is already queued (an idempotent re-enqueue
		// race the Contains pre-check missed).
	default:
		s.faults.EnqueueFailures++
		s.fault(fmt.Errorf("sched: enqueue flow %d: %w", f.ID, err))
		s.flushFlow(f)
	}
}

// prepareEntry runs EnqueueFlow's guard and attribute assignment —
// everything except the list insert itself — and returns the entry to
// insert. ok is false when the flow must stay out of the list (blocked,
// empty queue, already present). OnArrivalBatch uses it to compute each
// flow's attributes at its exact arrival point while deferring the
// inserts into one batch.
func (s *Scheduler) prepareEntry(now clock.Time, f *Flow) (core.Entry, bool) {
	if f.Blocked || f.Queue.Empty() || s.List.Contains(uint32(f.ID)) {
		return core.Entry{}, false
	}
	switch s.Prog.Model {
	case OutputTriggered:
		if s.Prog.PreEnqueue != nil {
			s.Prog.PreEnqueue(s, now, f)
		} else {
			f.Rank = 1
			f.SendTime = clock.Always
		}
	case InputTriggered:
		head, _ := f.Queue.Head()
		f.Rank = head.Rank
		f.SendTime = head.SendAt
	}
	f.NewlyBacklogged = false
	return core.Entry{ID: uint32(f.ID), Rank: f.Rank, SendTime: f.SendTime}, true
}

// Alarm implements the §3.2/§4.4 asynchronous path: extract flow id from
// the ordered list if present, apply update, and re-enqueue it (unless
// the update blocked the flow or the flow has nothing to send). It
// reports whether the flow existed.
func (s *Scheduler) Alarm(now clock.Time, id flowq.FlowID, update func(f *Flow)) bool {
	f := s.flows[id]
	if f == nil {
		return false
	}
	s.List.DequeueFlow(uint32(id))
	update(f)
	s.EnqueueFlow(now, f)
	return true
}

// NextWake implements netsim.WakeHinter.
func (s *Scheduler) NextWake(now clock.Time) (clock.Time, bool) {
	if s.Prog.Wake != nil {
		return s.Prog.Wake(s, now)
	}
	if s.Prog.DequeueTime != nil {
		// Non-wall predicate domain: no wall-clock mapping is known.
		return 0, false
	}
	if t, ok := backend.NextWakeAfter(s.List, now); ok {
		// The eligibility index answers the WakeHinter contract directly:
		// the exact earliest FUTURE eligibility instant, with elements
		// eligible already excluded (the simulator polls those without a
		// hint) and all-Never backlogs reported as "no wake known"
		// instead of an arm-at-infinity hint.
		return t, t != clock.Never
	}
	return s.List.MinSendTime()
}

// Backlog returns the total packets queued across all flows.
func (s *Scheduler) Backlog() int {
	total := len(s.pending)
	for _, f := range s.flows {
		total += f.Queue.Len()
	}
	return total
}
