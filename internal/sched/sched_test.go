package sched

import (
	"testing"

	"pieo/internal/clock"
	"pieo/internal/flowq"
)

func defaultProg() *Program { return &Program{Name: "default"} }

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"nil program", func() { New(nil, 16, 40) }},
		{"zero rate", func() { New(defaultProg(), 16, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestFlowDefaults(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	f := s.Flow(3)
	if f.Weight != 1 || f.Quantum != 1500 {
		t.Fatalf("flow defaults = %+v", f)
	}
	if s.Flow(3) != f {
		t.Fatal("Flow(3) returned a new object")
	}
	if s.Flows() != 1 {
		t.Fatalf("Flows = %d, want 1", s.Flows())
	}
}

func TestSetWeightMaintainsSum(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	s.Flow(1)
	s.Flow(2)
	if s.SumWeights != 2 {
		t.Fatalf("SumWeights = %d, want 2", s.SumWeights)
	}
	s.SetWeight(1, 5)
	if s.SumWeights != 6 {
		t.Fatalf("SumWeights = %d, want 6", s.SumWeights)
	}
	s.SetWeight(1, 2)
	if s.SumWeights != 3 {
		t.Fatalf("SumWeights = %d, want 3", s.SumWeights)
	}
}

func TestSetWeightZeroPanics(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWeight(0) did not panic")
		}
	}()
	s.SetWeight(1, 0)
}

func TestWireTime(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	if got := s.WireTime(1500); got != 300 {
		t.Fatalf("WireTime(1500@40G) = %v, want 300", got)
	}
	if got := s.WireTime(0); got != 1 {
		t.Fatalf("WireTime(0) = %v, want clamped 1", got)
	}
}

func TestDefaultProgramIsFlowFIFO(t *testing.T) {
	// The default program gives every flow rank 1 / always eligible:
	// flows are served in the order their queues went non-empty.
	s := New(defaultProg(), 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100, Seq: 1})
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Seq: 2})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100, Seq: 3})

	wantFlows := []flowq.FlowID{2, 1, 2}
	for i, w := range wantFlows {
		p, ok := s.NextPacket(0)
		if !ok || p.Flow != w {
			t.Fatalf("NextPacket #%d = flow %d ok=%v, want %d", i, p.Flow, ok, w)
		}
	}
	if _, ok := s.NextPacket(0); ok {
		t.Fatal("NextPacket succeeded on drained scheduler")
	}
}

func TestOutputTriggeredPreEnqueueRuns(t *testing.T) {
	calls := 0
	prog := &Program{
		Name: "counting",
		PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
			calls++
			f.Rank = uint64(f.ID)
			f.SendTime = clock.Always
		},
	}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 5, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 5, Size: 100}) // queue already non-empty: no new enqueue
	if calls != 1 {
		t.Fatalf("PreEnqueue calls = %d, want 1", calls)
	}
	s.NextPacket(0) // pops one, re-enqueues: PreEnqueue again
	if calls != 2 {
		t.Fatalf("PreEnqueue calls = %d, want 2", calls)
	}
}

func TestInputTriggeredUsesPacketAttrs(t *testing.T) {
	prog := &Program{
		Name:  "pkt-rank",
		Model: InputTriggered,
		PrePacket: func(s *Scheduler, now clock.Time, f *Flow, p *flowq.Packet) {
			p.Rank = uint64(p.Seq) // later packets get larger ranks
			p.SendAt = clock.Always
		},
	}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Seq: 10})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100, Seq: 5})
	// Flow 2's head has the smaller per-packet rank.
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket = flow %d, want 2", p.Flow)
	}
}

func TestInputTriggeredDefaultAttrs(t *testing.T) {
	prog := &Program{Name: "input-default", Model: InputTriggered}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, SendAt: 999}) // default PrePacket overwrites
	if p, ok := s.NextPacket(0); !ok || p.Flow != 1 {
		t.Fatalf("NextPacket = %+v ok=%v", p, ok)
	}
}

func TestEnqueueFlowSkipsBlockedAndEmpty(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	f := s.Flow(1)
	s.EnqueueFlow(0, f) // empty queue: no-op
	if s.List.Len() != 0 {
		t.Fatal("empty flow was enqueued")
	}
	f.Queue.Push(flowq.Packet{Flow: 1, Size: 100})
	f.Blocked = true
	s.EnqueueFlow(0, f)
	if s.List.Len() != 0 {
		t.Fatal("blocked flow was enqueued")
	}
	f.Blocked = false
	s.EnqueueFlow(0, f)
	s.EnqueueFlow(0, f) // idempotent: already in list
	if s.List.Len() != 1 {
		t.Fatalf("List.Len = %d, want 1", s.List.Len())
	}
}

func TestAlarmUpdatesAttributes(t *testing.T) {
	prog := &Program{
		Name: "prio",
		PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
			f.Rank = f.Priority
			f.SendTime = clock.Always
		},
	}
	s := New(prog, 16, 40)
	s.Flow(1).Priority = 10
	s.Flow(2).Priority = 5
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})

	// Boost flow 1 past flow 2 asynchronously.
	if !s.Alarm(0, 1, func(f *Flow) { f.Priority = 1 }) {
		t.Fatal("Alarm reported unknown flow")
	}
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 1 {
		t.Fatalf("NextPacket = flow %d, want boosted flow 1", p.Flow)
	}
}

func TestAlarmUnknownFlow(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	if s.Alarm(0, 99, func(f *Flow) {}) {
		t.Fatal("Alarm on unknown flow reported true")
	}
}

func TestNextWakeWallDomain(t *testing.T) {
	prog := &Program{
		Name: "shaped",
		PreEnqueue: func(s *Scheduler, now clock.Time, f *Flow) {
			f.Rank = 1
			f.SendTime = 500
		},
	}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	if _, ok := s.NextPacket(0); ok {
		t.Fatal("packet sent before send time")
	}
	at, ok := s.NextWake(0)
	if !ok || at != 500 {
		t.Fatalf("NextWake = %v,%v, want 500,true", at, ok)
	}
	if p, ok := s.NextPacket(500); !ok || p.Flow != 1 {
		t.Fatalf("NextPacket(500) = %+v ok=%v", p, ok)
	}
}

func TestNextWakeVirtualDomainUnknown(t *testing.T) {
	prog := &Program{
		Name:        "virtual",
		DequeueTime: func(s *Scheduler, now clock.Time) clock.Time { return s.V.Now() },
	}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	if _, ok := s.NextWake(0); ok {
		t.Fatal("virtual-domain scheduler offered a wall wake hint")
	}
}

func TestBacklog(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})
	if got := s.Backlog(); got != 3 {
		t.Fatalf("Backlog = %d, want 3", got)
	}
	s.NextPacket(0)
	if got := s.Backlog(); got != 2 {
		t.Fatalf("Backlog = %d, want 2", got)
	}
}

func TestTailDropAtQueueLimit(t *testing.T) {
	s := New(defaultProg(), 16, 40)
	f := s.Flow(1)
	f.Queue.Limit = 2
	for i := 0; i < 5; i++ {
		s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100, Seq: uint64(i)})
	}
	if s.Drops() != 3 {
		t.Fatalf("Drops = %d, want 3", s.Drops())
	}
	if got := f.Queue.Len(); got != 2 {
		t.Fatalf("queue len = %d, want 2", got)
	}
	// The two admitted packets still transmit in order.
	for want := uint64(0); want < 2; want++ {
		p, ok := s.NextPacket(0)
		if !ok || p.Seq != want {
			t.Fatalf("NextPacket = %+v ok=%v, want seq %d", p, ok, want)
		}
	}
}

func TestTriggerModelString(t *testing.T) {
	if OutputTriggered.String() != "output-triggered" || InputTriggered.String() != "input-triggered" {
		t.Fatal("TriggerModel.String wrong")
	}
	if got := TriggerModel(9).String(); got != "TriggerModel(9)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEmptyBurstMovesToNextFlow(t *testing.T) {
	// A program that refuses to transmit flow 1 on its first visit must
	// not stall flow 2.
	visits := map[flowq.FlowID]int{}
	prog := &Program{
		Name: "skip-once",
		PostDequeue: func(s *Scheduler, now clock.Time, f *Flow) []flowq.Packet {
			visits[f.ID]++
			if f.ID == 1 && visits[1] == 1 {
				s.EnqueueFlow(now, f) // try again later
				return nil
			}
			return s.DefaultPostDequeue(now, f)
		},
	}
	s := New(prog, 16, 40)
	s.OnArrival(0, flowq.Packet{Flow: 1, Size: 100})
	s.OnArrival(0, flowq.Packet{Flow: 2, Size: 100})
	p, ok := s.NextPacket(0)
	if !ok || p.Flow != 2 {
		t.Fatalf("NextPacket = flow %d ok=%v, want 2 (flow 1 deferred)", p.Flow, ok)
	}
	p, ok = s.NextPacket(0)
	if !ok || p.Flow != 1 {
		t.Fatalf("NextPacket = flow %d ok=%v, want 1 on revisit", p.Flow, ok)
	}
}
