package shard

import (
	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// The engine implements the optional batch capability natively: batching
// is where sharding pays twice, amortizing both the lock traffic (one
// acquisition per touched shard instead of one per element) and the
// tournament (a winning shard is drained while it stays unbeatable
// instead of being re-discovered from scratch per element).
var _ backend.Batcher = (*Engine)(nil)

// EnqueueBatch implements backend.Batcher. Semantics match the
// equivalent sequence of Enqueue calls exactly (see backend.Batcher):
// every entry is attempted, the return is the accepted count plus the
// first error in batch order, and quiescent dequeue order — including
// cross-shard FIFO ties — is identical, because entries draw consecutive
// global sequence numbers in batch position order.
//
// The fast path reserves capacity for the whole batch with one atomic
// add and takes each touched shard's lock once, enqueueing all of that
// shard's entries under it. When the whole-batch reservation would
// overshoot capacity the batch falls back to per-entry Enqueue, whose
// one-slot-at-a-time reservation reproduces the exact sequential
// full/duplicate precedence at the capacity edge (a mid-batch duplicate
// must be able to free its slot for a later entry).
func (e *Engine) EnqueueBatch(es []core.Entry) (int, error) {
	m := len(es)
	if m == 0 {
		return 0, nil
	}
	e.opTick()
	// Degraded mode takes the per-entry path: Enqueue owns the
	// probe-around-quarantine and off-home bookkeeping, and the batch fast
	// path's one-lock-per-shard walk assumes the clean home partitioning.
	slow := e.degraded()
	if !slow && e.size.Add(int64(m)) > int64(e.capacity) {
		e.size.Add(int64(-m))
		slow = true
	}
	if slow {
		accepted := 0
		var firstErr error
		for i := range es {
			if err := e.Enqueue(es[i]); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			accepted++
		}
		return accepted, firstErr
	}

	// Whole batch reserved: per-shard lists are provisioned with the full
	// shared capacity, so the only reachable per-entry failure below is
	// ErrDuplicate. Sequence numbers come from one block reservation;
	// duplicates burn theirs harmlessly (FIFO ties compare relative
	// order, not density), exactly like a failed single Enqueue.
	base := e.seq.Add(uint64(m)) - uint64(m) // entry i gets base+1+i
	accepted := 0
	slotsKept := 0 // entries that keep their batch-reserved capacity slot
	var firstErr error
	firstErrIdx := m
	var fallback []int // entries rerouted per-entry after a mid-batch quarantine
	for si, sd := range e.shards {
		locked := false
		failed := false
		minSend := clock.Never
		inserted := 0
		for i := range es {
			if e.homeIdx(es[i].ID) != si {
				continue
			}
			if failed {
				fallback = append(fallback, i)
				continue
			}
			if !locked {
				sd.mu.Lock()
				if sd.down {
					// Quarantined since the degraded check: this shard's
					// entries reroute through Enqueue's probe path.
					sd.mu.Unlock()
					failed = true
					fallback = append(fallback, i)
					continue
				}
				locked = true
			}
			var lerr error
			perr := e.protect(si, sd, OpEnqueue, func(l backend.ShardBackend) {
				sd.resident++
				lerr = l.EnqueueSeq(es[i], base+1+uint64(i))
				if lerr != nil {
					sd.resident--
				}
			})
			if perr != nil {
				// Quarantined mid-batch under our own lock hold.
				sd.mu.Unlock()
				locked = false
				failed = true
				if e.salvageHas(sd, es[i].ID) {
					// Queued (the salvage holds it): keeps its batch slot.
					// A pre-counted insert that never landed reconciles
					// through the quarantine's declared-loss accounting.
					accepted++
					slotsKept++
				} else {
					fallback = append(fallback, i)
				}
				continue
			}
			if lerr != nil {
				if i < firstErrIdx {
					firstErrIdx = i
					firstErr = lerr
				}
				continue
			}
			accepted++
			slotsKept++
			inserted++
			if es[i].SendTime < minSend {
				minSend = es[i].SendTime
			}
		}
		if locked {
			if inserted > 0 {
				// One summary publish per shard: the minRank read is exact
				// regardless of how many inserts preceded it, and the
				// minSend lower bound only needs the batch minimum.
				sd.noteMutation(minSend)
			}
			sd.mu.Unlock()
		}
	}
	// Rerouted entries reserve their own slots inside Enqueue, so they are
	// excluded from the batch-slot ledger regardless of outcome.
	for _, i := range fallback {
		if err := e.Enqueue(es[i]); err != nil {
			if i < firstErrIdx {
				firstErrIdx = i
				firstErr = err
			}
			continue
		}
		accepted++
	}
	if slotsKept < m {
		e.size.Add(int64(slotsKept - m))
	}
	return accepted, firstErr
}

// DequeueUpTo implements backend.Batcher: up to k eligible elements in
// exact (rank, FIFO) dequeue order when quiescent, appending to out. The
// tournament's drain path extracts as many elements as the winning shard
// can justify per visit (see tournament), so a batch typically costs one
// tournament plus one lock acquisition per run of same-shard winners
// rather than per element.
func (e *Engine) DequeueUpTo(now clock.Time, k int, out []core.Entry) []core.Entry {
	e.opTick()
	if clock.Time(e.nextElig.Load()) > now {
		// Nothing anywhere is eligible yet: the O(1) empty fast path.
		e.emptyDequeues.Add(1)
		return out
	}
	for k > 0 {
		progressed := false
		for attempt := 0; attempt < dequeueRetries; attempt++ {
			c, found, taken := e.tournament(now, 0, 0, false, k, &out)
			if !found {
				e.raiseNextElig()
				e.emptyDequeues.Add(1)
				return out
			}
			if taken > 0 {
				k -= taken
				progressed = true
				break
			}
			// Tie or race: fall back to the single-element extraction the
			// plain Dequeue path uses.
			if ent, ok := e.extract(c.idx, c.sd, now, 0, 0, false); ok {
				out = append(out, ent)
				k--
				progressed = true
				break
			}
		}
		if !progressed {
			e.emptyDequeues.Add(1)
			return out
		}
	}
	return out
}
