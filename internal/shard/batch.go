package shard

import (
	"errors"
	"fmt"
	"sort"
	"unsafe"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// batchAffinity picks the shard a batch producer's walk starts from. Go
// exposes no P identity, but a goroutine's stack address is a stable,
// well-spread proxy for "which execution context am I": stacks are
// allocated from per-P caches in distinct spans, so hashing a few high
// bits of a stack-local's address lands concurrent producers on
// different start shards with high probability — where starting every
// walk at shard 0 made all of them contend for the same first lock, in
// order (a lock convoy). Only the VISIT ORDER rotates: each entry's home
// shard and its batch-position sequence number are unchanged, so
// quiescent dequeue order is bit-identical for every rotation.
func batchAffinity(k int) int {
	var b byte
	return int((uint64(uintptr(unsafe.Pointer(&b))) >> 10) % uint64(k))
}

// BatchItemError attributes one failed batch entry: its batch position,
// its flow ID, and the typed underlying error (core.ErrDuplicate,
// core.ErrShardDown, core.ErrFull). EnqueueBatch returns an errors.Join
// of these — one per failed entry, in batch order — whenever a mid-batch
// quarantine rerouted entries through the degraded path, so no rerouted
// entry's failure is ever silently folded into a single first-error.
// errors.Is sees through both the join and the wrapper.
type BatchItemError struct {
	Index int
	ID    uint32
	Err   error
}

func (b *BatchItemError) Error() string {
	return fmt.Sprintf("batch entry %d (id %d): %v", b.Index, b.ID, b.Err)
}

func (b *BatchItemError) Unwrap() error { return b.Err }

// The engine implements the optional batch capability natively: batching
// is where sharding pays twice, amortizing both the lock traffic (one
// acquisition per touched shard instead of one per element) and the
// tournament (a winning shard is drained while it stays unbeatable
// instead of being re-discovered from scratch per element).
var _ backend.Batcher = (*Engine)(nil)

// EnqueueBatch implements backend.Batcher. Semantics match the
// equivalent sequence of Enqueue calls exactly (see backend.Batcher):
// every entry is attempted, the return is the accepted count plus the
// first error in batch order, and quiescent dequeue order — including
// cross-shard FIFO ties — is identical, because entries draw consecutive
// global sequence numbers in batch position order. The one exception to
// the first-error shape: when a shard quarantines mid-batch and entries
// reroute through the degraded path, the error is an errors.Join of one
// BatchItemError per failed entry (batch order), so every rerouted
// entry's outcome is attributable.
//
// The fast path reserves capacity for the whole batch with one atomic
// add and visits each touched shard once — in an affinity-rotated order
// (see batchAffinity) so concurrent batch producers start their walks on
// different shards instead of convoying on shard 0's lock. An
// uncontended shard is taken directly (TryLock) and all of its entries
// enqueued under one lock hold; a CONTENDED shard's entries are instead
// published into its combining ring in blocks of up to ringBatchMax
// records claimed with a single tail CAS (claimN), so the batch pays one
// contended CAS per block instead of one per entry and the lock holder
// drains the block in its own critical section. Entry placement and
// sequence stamping are independent of the visit order and the route, so
// quiescent semantics are identical either way. When the whole-batch
// reservation would overshoot capacity the batch falls back to per-entry
// Enqueue, whose one-slot-at-a-time reservation reproduces the exact
// sequential full/duplicate precedence at the capacity edge (a mid-batch
// duplicate must be able to free its slot for a later entry).
func (e *Engine) EnqueueBatch(es []core.Entry) (int, error) {
	m := len(es)
	if m == 0 {
		return 0, nil
	}
	e.opTick()
	// Degraded mode takes the per-entry path: Enqueue owns the
	// probe-around-quarantine and off-home bookkeeping, and the batch fast
	// path's one-lock-per-shard walk assumes the clean home partitioning.
	slow := e.degraded()
	if !slow && e.size.Add(int64(m)) > int64(e.capacity) {
		e.size.Add(int64(-m))
		slow = true
	}
	if slow {
		accepted := 0
		var firstErr error
		for i := range es {
			if err := e.Enqueue(es[i]); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			accepted++
		}
		return accepted, firstErr
	}

	// Whole batch reserved: per-shard lists are provisioned with the full
	// shared capacity, so the only reachable per-entry failure below is
	// ErrDuplicate. Sequence numbers come from one block reservation;
	// duplicates burn theirs harmlessly (FIFO ties compare relative
	// order, not density), exactly like a failed single Enqueue.
	base := e.seq.Add(uint64(m)) - uint64(m) // entry i gets base+1+i
	accepted := 0
	slotsKept := 0 // entries that keep their batch-reserved capacity slot
	var firstErr error
	firstErrIdx := m
	var fallback []int             // entries rerouted per-entry after a mid-batch quarantine
	var itemErrs []*BatchItemError // per-item failures, surfaced jointly when a reroute happened
	noteItemErr := func(i int, err error) {
		if i < firstErrIdx {
			firstErrIdx = i
			firstErr = err
		}
		itemErrs = append(itemErrs, &BatchItemError{Index: i, ID: es[i].ID, Err: err})
	}
	k := len(e.shards)
	aff := 0
	if k > 1 {
		aff = batchAffinity(k)
	}
	for sj := 0; sj < k; sj++ {
		si := sj + aff
		if si >= k {
			si -= k
		}
		sd := e.shards[si]
		locked := false   // this goroutine holds sd.mu (direct exec route)
		ringMode := false // this shard's entries go through its combining ring
		failed := false   // shard quarantined: remaining entries reroute
		minSend := clock.Never
		inserted := 0
		var chunk [ringBatchMax]int // batch indexes awaiting a ring block
		cn := 0

		// execDirect runs one entry under the held shard lock — the same
		// probe/salvage/phantom-loss dance as before the ring route
		// existed. On a mid-insert quarantine it releases the lock and
		// flips the shard to failed.
		execDirect := func(i int) {
			var (
				started bool
				lerr    error
			)
			perr := e.protect(si, sd, OpEnqueue, func(l backend.ShardBackend) {
				// Pre-count the residency so a mid-insert panic charges the
				// ambiguous element to this shard; quarantine reconciles the
				// count against the salvage (see Enqueue).
				started = true
				sd.resident++
				lerr = l.EnqueueSeq(es[i], base+1+uint64(i))
				if lerr != nil {
					sd.resident--
				}
			})
			if perr != nil {
				// Quarantined mid-batch under our own lock hold.
				sd.mu.Unlock()
				locked = false
				failed = true
				if e.salvageHas(sd, es[i].ID) {
					// Queued (the salvage holds it): keeps its batch slot.
					accepted++
					slotsKept++
				} else {
					if started {
						// Pre-counted but never landed: quarantine charged
						// it as a lost entry, yet its fate belongs to the
						// reroute below (which reserves its own slot) and
						// the batch-slot ledger (which releases this one).
						// Unwind the phantom loss or the slot is released
						// twice and the loss ledger overcounts.
						e.undoPhantomLoss(si)
					}
					fallback = append(fallback, i)
				}
				return
			}
			if lerr != nil {
				noteItemErr(i, lerr)
				return
			}
			accepted++
			slotsKept++
			inserted++
			if es[i].SendTime < minSend {
				minSend = es[i].SendTime
			}
		}

		// flushChunk publishes the buffered entries as one ring block:
		// claimN turns cn contended tail CASes into one, the records are
		// published back-to-back, and then EVERY record is awaited — even
		// after a retry result, so every claimed slot is freed for the
		// next wrap. A full ring degrades to the blocking locked route
		// for the chunk and the shard's remaining entries.
		flushChunk := func() {
			n := cn
			cn = 0
			if n == 0 {
				return
			}
			t, ok := sd.ring.claimN(n)
			if !ok {
				sd.mu.Lock()
				if sd.down {
					sd.mu.Unlock()
					failed = true
					fallback = append(fallback, chunk[:n]...)
					return
				}
				locked = true
				ringMode = false
				for _, i := range chunk[:n] {
					if !locked {
						// A quarantine inside execDirect dropped the lock.
						fallback = append(fallback, i)
						continue
					}
					execDirect(i)
				}
				return
			}
			e.cRingOps.Add(uint64(n))
			for j := 0; j < n; j++ {
				tj := t + uint64(j)
				sd.ring.slots[tj&ringMask].publish(tj, opEnq, es[chunk[j]], base+1+uint64(chunk[j]))
			}
			retry := false
			for j := 0; j < n; j++ {
				tj := t + uint64(j)
				res, _ := e.awaitRecord(si, sd, tj, &sd.ring.slots[tj&ringMask])
				switch res {
				case resOK:
					accepted++
					slotsKept++
				case resDup:
					noteItemErr(chunk[j], core.ErrDuplicate)
				default: // resRetry: quarantined before execution
					retry = true
					fallback = append(fallback, chunk[j])
				}
			}
			if retry {
				failed = true
			}
		}

		for i := range es {
			if e.homeIdx(es[i].ID) != si {
				continue
			}
			if failed {
				fallback = append(fallback, i)
				continue
			}
			if ringMode {
				chunk[cn] = i
				cn++
				if cn == ringBatchMax {
					flushChunk()
				}
				continue
			}
			if !locked {
				// Route choice, made on the shard's first entry: direct
				// under TryLock when the shard is uncontended, the ring
				// when it is (or when tests pin the ring path), a blocking
				// acquisition when combining is off.
				if e.combineOn.Load() {
					if e.forceRing.Load() || !sd.mu.TryLock() {
						ringMode = true
						chunk[cn] = i
						cn++
						continue
					}
				} else {
					sd.mu.Lock()
				}
				if sd.down {
					// Quarantined since the degraded check: this shard's
					// entries reroute through Enqueue's probe path.
					sd.mu.Unlock()
					failed = true
					fallback = append(fallback, i)
					continue
				}
				locked = true
			}
			execDirect(i)
		}
		if cn > 0 {
			flushChunk()
		}
		if locked {
			if inserted > 0 {
				// One summary publish per shard: the minRank read is exact
				// regardless of how many inserts preceded it, and the
				// minSend lower bound only needs the batch minimum.
				sd.noteMutation(minSend)
			}
			sd.mu.Unlock()
		}
	}
	// Reroutes run in batch order regardless of which shard-visit
	// rotation queued them, so the sequential-equivalence contract's
	// error precedence is rotation-independent.
	sort.Ints(fallback)
	// Release the unused batch slots BEFORE rerouting: rerouted entries
	// reserve their own slots inside Enqueue, and reserving on top of a
	// still-held whole-batch reservation could overshoot capacity and
	// fail an entry that logically owns a slot with a spurious ErrFull.
	if slotsKept < m {
		e.size.Add(int64(slotsKept - m))
	}
	for _, i := range fallback {
		if err := e.Enqueue(es[i]); err != nil {
			if i < firstErrIdx {
				firstErrIdx = i
				firstErr = err
			}
			itemErrs = append(itemErrs, &BatchItemError{Index: i, ID: es[i].ID, Err: err})
			continue
		}
		accepted++
	}
	if len(fallback) == 0 {
		// No mid-batch quarantine: the historical contract — accepted
		// count plus the first error in batch order, returned by identity
		// (callers compare against the core sentinels directly).
		return accepted, firstErr
	}
	if len(itemErrs) == 0 {
		return accepted, nil
	}
	// A quarantine rerouted entries mid-batch: surface EVERY failed entry
	// as a typed per-item error so none of the rerouted outcomes is a
	// silent drop — the only permitted untracked losses are the ones the
	// quarantine's declared-loss accounting records.
	sort.Slice(itemErrs, func(a, b int) bool { return itemErrs[a].Index < itemErrs[b].Index })
	joined := make([]error, len(itemErrs))
	for k, ie := range itemErrs {
		joined[k] = ie
	}
	return accepted, errors.Join(joined...)
}

// DequeueUpTo implements backend.Batcher: up to k eligible elements in
// exact (rank, FIFO) dequeue order when quiescent, appending to out. The
// tournament's drain path extracts as many elements as the winning shard
// can justify per visit (see tournament), so a batch typically costs one
// tournament plus one lock acquisition per run of same-shard winners
// rather than per element.
func (e *Engine) DequeueUpTo(now clock.Time, k int, out []core.Entry) []core.Entry {
	e.opTick()
	if clock.Time(e.nextElig.Load()) > now {
		// Nothing anywhere is eligible yet: the O(1) empty fast path.
		e.emptyDequeues.Add(1)
		return out
	}
	for k > 0 {
		progressed := false
		for attempt := 0; attempt < dequeueRetries; attempt++ {
			c, found, taken := e.tournament(now, 0, 0, false, k, &out)
			if !found {
				e.raiseNextElig()
				e.emptyDequeues.Add(1)
				return out
			}
			if taken > 0 {
				k -= taken
				progressed = true
				break
			}
			// Tie or race: fall back to the single-element extraction the
			// plain Dequeue path uses.
			if ent, ok := e.extract(c.idx, c.sd, now, 0, 0, false); ok {
				out = append(out, ent)
				k--
				progressed = true
				break
			}
		}
		if !progressed {
			e.emptyDequeues.Add(1)
			return out
		}
	}
	return out
}
