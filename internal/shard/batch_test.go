package shard

import (
	"sync"
	"sync/atomic"
	"testing"

	"pieo/internal/core"
)

// TestBatchQuiescentDrain: on a quiescent engine, DequeueUpTo must
// return the exact global (rank, FIFO) order, including cross-shard
// equal-rank ties, and leave the engine coherent. (The differential
// tests in internal/core additionally hold the batch paths bit-for-bit
// against the flat reference model at K=1 and K=8.)
func TestBatchQuiescentDrain(t *testing.T) {
	e := New(512, 8)
	var es []core.Entry
	for i := 0; i < 300; i++ {
		// Few distinct ranks: most dequeues are FIFO tie-breaks, the case
		// the drain's strictly-less-than-next-bound guard must not rush.
		es = append(es, core.Entry{ID: uint32(i), Rank: uint64(i % 3), SendTime: 0})
	}
	if n, err := e.EnqueueBatch(es); n != len(es) || err != nil {
		t.Fatalf("EnqueueBatch = %d,%v, want %d,nil", n, err, len(es))
	}
	got := e.DequeueUpTo(0, len(es)+10, nil)
	if len(got) != len(es) {
		t.Fatalf("drained %d entries, want %d", len(got), len(es))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Rank < got[i-1].Rank {
			t.Fatalf("rank order violated at %d: %v after %v", i, got[i], got[i-1])
		}
		if got[i].Rank == got[i-1].Rank && got[i].ID < got[i-1].ID {
			t.Fatalf("FIFO tie-break violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchCapacityEdge: a batch that cannot be reserved whole must fall
// back to per-entry semantics — partial acceptance up to capacity, first
// error ErrFull, every entry attempted.
func TestBatchCapacityEdge(t *testing.T) {
	e := New(10, 4)
	var es []core.Entry
	for i := 0; i < 16; i++ {
		es = append(es, core.Entry{ID: uint32(i), Rank: uint64(i), SendTime: 0})
	}
	n, err := e.EnqueueBatch(es)
	if n != 10 || err != core.ErrFull {
		t.Fatalf("EnqueueBatch over capacity = %d,%v, want 10,ErrFull", n, err)
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d, want 10", e.Len())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConcurrent hammers the batch paths from concurrent producers
// and consumers (run under -race) and checks conservation: every element
// batch-enqueued is either batch-dequeued exactly once or still resident
// at the end.
func TestBatchConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 2
		perProd   = 2000
		batchSize = 32
	)
	e := New(producers*perProd, 8)
	var dequeued atomic.Int64
	var seen sync.Map

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]core.Entry, 0, batchSize)
			for i := 0; i < perProd; i++ {
				id := uint32(p*perProd + i)
				batch = append(batch, core.Entry{ID: id, Rank: uint64(id % 97), SendTime: 0})
				if len(batch) == batchSize || i == perProd-1 {
					if n, err := e.EnqueueBatch(batch); n != len(batch) || err != nil {
						t.Errorf("producer %d: EnqueueBatch = %d,%v", p, n, err)
						return
					}
					batch = batch[:0]
				}
			}
		}(p)
	}
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			out := make([]core.Entry, 0, batchSize)
			for {
				out = e.DequeueUpTo(0, batchSize, out[:0])
				for _, ent := range out {
					if _, dup := seen.LoadOrStore(ent.ID, true); dup {
						t.Errorf("id %d dequeued twice", ent.ID)
						return
					}
					dequeued.Add(1)
				}
				if len(out) == 0 {
					select {
					case <-done:
						if e.Len() == 0 {
							return
						}
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()

	if got := dequeued.Load(); got != producers*perProd {
		t.Fatalf("dequeued %d elements, want %d", got, producers*perProd)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after full drain, want 0", e.Len())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
