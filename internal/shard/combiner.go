// Flat combining over the per-shard ingress rings (ring.go): a producer
// that finds its home shard's lock free executes its operation directly
// (the quiescent path is unchanged, bit-for-bit), and one that finds the
// lock contended publishes an operation record instead of queueing on
// the mutex. Whichever thread holds the lock — a direct producer, the
// dequeue tournament, or a blocked producer that eventually wins
// TryLock — drains every published record inside its existing critical
// section, so under contention one lock acquisition amortizes across
// many operations (Hendler et al., flat combining).
//
// Semantics are preserved because a ring record's operation executes
// under exactly the same lock, against exactly the same list, via
// exactly the same code (execOpLocked) as a direct call; the global FIFO
// order is preserved because the record carries the engine sequence
// number drawn before publish, and core.List places equal-rank elements
// by stamped sequence regardless of insertion order (core's seq-aware
// sublist selection). Operations parked in a ring have, by definition,
// not returned to their caller, so a concurrent reader that misses them
// linearizes before them.
package shard

import (
	"fmt"
	"runtime"

	"pieo/internal/backend"
	"pieo/internal/core"
)

// noTicket marks a ring drain performed on no record of the drainer's
// own (the direct path, the tournament, SetCombining's final sweep).
const noTicket = ^uint64(0)

// combine routes one operation through the combining layer: direct
// execution under TryLock when the shard is uncontended, otherwise a
// ring publish followed by a wait that alternates between checking for
// a combiner's result and trying to become the combiner itself.
// handled=false means the layer stayed out of it (shard quarantined
// under the lock, or the ring is full) and the caller must take its
// slow path. A resRetry result means the shard went down before the
// record executed; the caller re-routes exactly as if it had seen the
// quarantine itself.
func (e *Engine) combine(i int, sd *shard, op uint32, ent core.Entry, seq uint64) (res uint32, out core.Entry, handled bool) {
	if !e.forceRing.Load() && sd.mu.TryLock() {
		if sd.down {
			sd.mu.Unlock()
			return 0, core.Entry{}, false
		}
		res, out = e.execOpLocked(i, sd, op, ent, seq)
		if !sd.down && sd.ring.head != sd.ring.tail.Load() {
			e.drainRingLocked(i, sd, noTicket)
		}
		sd.mu.Unlock()
		return res, out, true
	}
	t, rec, ok := sd.ring.claim()
	if !ok {
		// Ring full: a deep burst of blocked producers. Fall back to a
		// blocking acquisition via the caller's slow path.
		return 0, core.Entry{}, false
	}
	e.cRingOps.Add(1)
	rec.publish(t, op, ent, seq)
	res, out = e.awaitRecord(i, sd, t, rec)
	return res, out, true
}

// awaitRecord is a producer's wait loop on its own published record: it
// alternates between checking for a combiner's result, cancelling the
// record if the shard quarantines before any combiner claims it, and
// trying to become the combiner itself. It returns the record's result
// (resRetry after a cancellation or flush) with the slot freed. Shared
// by the single-op combine path and EnqueueBatch's block publishes.
func (e *Engine) awaitRecord(i int, sd *shard, t uint64, rec *ringRecord) (res uint32, out core.Entry) {
	for {
		v := rec.turn.Load()
		switch {
		case v == 4*t+3:
			res, out = rec.res, rec.out
			rec.free(t)
			return res, out
		case v == 4*t+1 && sd.downFlag.Load():
			// The shard quarantined before any combiner claimed the
			// record. The quarantine's own ring flush may still complete
			// it; the CAS decides — winning it cancels the record.
			if rec.turn.CompareAndSwap(4*t+1, 4*t+2) {
				rec.free(t)
				return resRetry, core.Entry{}
			}
		default:
			if sd.mu.TryLock() {
				if !sd.down {
					e.drainRingLocked(i, sd, t)
				}
				sd.mu.Unlock()
			} else {
				runtime.Gosched()
			}
		}
	}
}

// drainRingLocked executes every published ring record under the held
// shard lock, in ticket order. self is the caller's own ticket (noTicket
// when it has none); records other than self count as combined. The
// caller must hold sd.mu with sd.down false.
func (e *Engine) drainRingLocked(i int, sd *shard, self uint64) {
	r := sd.ring
	executed, combined := 0, 0
	for !sd.down {
		t := r.head
		rec := &r.slots[t&ringMask]
		v := rec.turn.Load()
		switch {
		case v == 4*t+1:
			if !rec.turn.CompareAndSwap(v, v+1) {
				continue // the producer cancelled concurrently; re-read
			}
			// Prefetch: touch the NEXT slot's turn word before executing
			// this record, so its (likely producer-dirtied) line is already
			// in flight across the coherence fabric while execOpLocked runs
			// — the drain's per-record latency is otherwise one exec plus
			// one demand miss, serialized. A plain atomic load is the
			// portable prefetch; its value is discarded and re-read for
			// real on the next iteration.
			_ = r.slots[(t+1)&ringMask].turn.Load()
			rec.res, rec.out = e.execOpLocked(i, sd, rec.op, rec.ent, rec.seq)
			rec.turn.Store(4*t + 3)
			executed++
			if t != self {
				combined++
			}
			if r.head == t {
				// A quarantine inside the exec flushes the ring and moves
				// head past the tail itself; advance the cursor only when
				// it is still ours.
				r.head = t + 1
			}
		case v >= 4*t+2:
			// Ticket t is finished (cancelled, done, or freed — possibly
			// into a later wrap); skip it.
			r.head = t + 1
		default:
			// Free, or claimed but not yet published: nothing more to do.
			if executed > 0 {
				e.cDrains.Add(1)
			}
			if combined > 0 {
				e.cCombinedOps.Add(uint64(combined))
			}
			return
		}
	}
	if executed > 0 {
		e.cDrains.Add(1)
	}
	if combined > 0 {
		e.cCombinedOps.Add(uint64(combined))
	}
}

// flushRingLocked completes every published-but-unclaimed ring record
// with resRetry, so blocked producers re-route through the degraded slow
// path instead of waiting on a ring no combiner will visit. Called with
// the shard lock held when the shard goes down (quarantineLocked) —
// including from inside a drain's own exec, in which case head advances
// past the tail here and the interrupted drain stops on re-reading it.
func flushRingLocked(r *opRing) int {
	flushed := 0
	for {
		t := r.head
		rec := &r.slots[t&ringMask]
		v := rec.turn.Load()
		switch {
		case v == 4*t+1:
			if !rec.turn.CompareAndSwap(v, v+1) {
				continue
			}
			rec.res = resRetry
			rec.turn.Store(4*t + 3)
			r.head = t + 1
			flushed++
		case v >= 4*t+2:
			r.head = t + 1
		default:
			return flushed
		}
	}
}

// execOpLocked runs one operation against the locked, healthy shard and
// returns its ring result code. It is the single execution path shared
// by the TryLock direct route and the ring drain, so a combined
// operation runs literally the same code a direct one does. The caller
// must hold sd.mu with sd.down false; for opEnq the caller (or the
// record's producer) must hold a capacity reservation.
func (e *Engine) execOpLocked(i int, sd *shard, op uint32, ent core.Entry, seq uint64) (uint32, core.Entry) {
	switch op {
	case opEnq:
		var (
			started bool
			lerr    error
		)
		perr := e.protect(i, sd, OpEnqueue, func(l backend.ShardBackend) {
			started = true
			sd.resident++
			lerr = l.EnqueueSeq(ent, seq)
			if lerr != nil {
				sd.resident--
			}
		})
		if perr != nil {
			// Mid-insert quarantine: the salvage adjudicates whether the
			// insert landed, exactly as in Enqueue's probe path.
			inSalvage := sd.salvageIDs != nil && mapHas(sd.salvageIDs, ent.ID)
			switch {
			case inSalvage && started:
				return resOK, core.Entry{}
			case inSalvage:
				return resDup, core.Entry{}
			default:
				if started {
					// The insert never landed but was pre-counted as
					// resident, so the quarantine charged it as a lost
					// entry; unwind the phantom loss (size, counter, event
					// record) for the caller's re-route.
					e.undoPhantomLoss(i)
				}
				return resRetry, core.Entry{}
			}
		}
		if lerr != nil {
			// The shard list is provisioned with the full shared capacity
			// and the producer holds a reservation, so the only reachable
			// failure is ErrDuplicate.
			return resDup, core.Entry{}
		}
		sd.noteMutation(ent.SendTime)
		return resOK, core.Entry{}
	case opDqf:
		var (
			got core.Entry
			ok  bool
		)
		e.protect(i, sd, OpDequeueFlow, func(l backend.ShardBackend) {
			got, ok = l.DequeueFlow(ent.ID)
			if !ok {
				return
			}
			sd.resident--
			sd.noteRemoval()
		})
		if !ok {
			// Absent — or quarantined mid-removal with the element now in
			// the salvage, unavailable until rebuild. Both report miss,
			// matching DequeueFlow's slow path. ok=true survives a
			// quarantine in the later bookkeeping: the element is out.
			return resMiss, core.Entry{}
		}
		return resOK, got
	case opUpd:
		var ok bool
		perr := e.protect(i, sd, OpUpdateRank, func(l backend.ShardBackend) {
			ok = l.UpdateRankSeq(ent.ID, ent.Rank, ent.SendTime, seq)
			if ok {
				sd.noteMutation(ent.SendTime)
			}
		})
		if perr != nil || !ok {
			return resMiss, core.Entry{}
		}
		return resOK, core.Entry{}
	}
	panic(fmt.Sprintf("shard: unknown ring op %d", op))
}

// SetCombining implements backend.Combining. Disabling the layer only
// gates new publishes, so every in-flight record is drained here (and a
// producer that raced past the flag drains its own record the next time
// it wins TryLock in its wait loop) — no operation is left parked.
func (e *Engine) SetCombining(on bool) {
	if on {
		e.combineOn.Store(true)
		return
	}
	e.combineOn.Store(false)
	for i, sd := range e.shards {
		sd.mu.Lock()
		if !sd.down {
			e.drainRingLocked(i, sd, noTicket)
		}
		sd.mu.Unlock()
	}
}

// CombiningEnabled implements backend.Combining.
func (e *Engine) CombiningEnabled() bool { return e.combineOn.Load() }

// CombiningStats implements backend.Combining.
func (e *Engine) CombiningStats() backend.CombiningStats {
	return backend.CombiningStats{
		RingOps:        e.cRingOps.Load(),
		CombinedOps:    e.cCombinedOps.Load(),
		CombinerDrains: e.cDrains.Load(),
	}
}

// SetForceRing makes every combining-eligible operation take the ring
// path even when the shard lock is free: the caller publishes a record,
// immediately wins the lock, and drains it back out — the full ring
// protocol under deterministic single-threaded conditions. It exists so
// differential and invariant tests can hold the ring path to the exact
// quiescent contract; production callers want the TryLock direct path.
func (e *Engine) SetForceRing(on bool) { e.forceRing.Store(on) }

var _ backend.Combining = (*Engine)(nil)

// checkRingLocked validates a quiescent ring: every consumed ticket
// freed, no record published, taken, or awaiting pickup. Called by
// CheckInvariants with the shard lock held.
func checkRingLocked(r *opRing, shard int) error {
	tail := r.tail.Load()
	if r.head > tail {
		return fmt.Errorf("shard %d: ring head %d ahead of tail %d", shard, r.head, tail)
	}
	for t := r.head; t < tail; t++ {
		v := r.slots[t&ringMask].turn.Load()
		if v != 4*(t+ringSlots) {
			return fmt.Errorf("shard %d: ring ticket %d in state %d (turn=%d), want freed", shard, t, v%4, v)
		}
	}
	return nil
}
