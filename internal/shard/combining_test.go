package shard

import (
	"fmt"
	"sync"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// drainOrder empties the engine at an always-eligible now and returns
// the extraction order.
func drainOrder(t *testing.T, e *Engine) []core.Entry {
	t.Helper()
	var out []core.Entry
	for {
		ent, ok := e.Dequeue(clock.Time(1 << 60))
		if !ok {
			break
		}
		out = append(out, ent)
	}
	if e.Len() != 0 {
		t.Fatalf("engine reports %d entries after full drain", e.Len())
	}
	return out
}

// checkPerProducerFIFO verifies that, within the stream of extracted
// same-rank elements, every producer's elements appear in the order that
// producer enqueued them — the property publish-time sequence stamping
// must preserve even when ring records execute out of publish order.
func checkPerProducerFIFO(t *testing.T, streams [][]core.Entry, producers, perProducer int) {
	t.Helper()
	lastIdx := make([]int, producers)
	for i := range lastIdx {
		lastIdx[i] = -1
	}
	for _, stream := range streams {
		for _, ent := range stream {
			p := int(ent.ID-1) / perProducer
			idx := int(ent.ID-1) % perProducer
			if idx <= lastIdx[p] {
				t.Fatalf("producer %d: element %d extracted at or before element %d — FIFO violated",
					p, idx, lastIdx[p])
			}
			lastIdx[p] = idx
		}
	}
}

// TestCombinerSameRankFIFOStorm is the satellite regression test: under
// a concurrent producer storm with the combiner enabled, every element
// carries the same rank, so the only thing ordering the drain is the
// global enqueue sequence stamped at ring-publish time. Each producer's
// elements must come back in that producer's program order (a producer
// has at most one operation in flight, so publish order IS program
// order); run with -race this also storms the ring protocol itself.
// The force-ring variant pushes every operation through the ring even
// when the lock is free, so the ring path gets coverage regardless of
// how often TryLock happens to fail on the test host.
func TestCombinerSameRankFIFOStorm(t *testing.T) {
	const (
		producers   = 8
		perProducer = 2000
		rank        = uint64(42)
	)
	for _, backendName := range []string{"core", "cffs"} {
		for _, force := range []bool{false, true} {
			t.Run(fmt.Sprintf("backend=%s/forceRing=%v", backendName, force), func(t *testing.T) {
				e, err := NewNamed(producers*perProducer, 8, backendName)
				if err != nil {
					t.Fatalf("construct %q engine: %v", backendName, err)
				}
				e.SetForceRing(force)
				consumed := make([]core.Entry, 0, producers*perProducer)
				stop := make(chan struct{})
				consumerDone := make(chan struct{})
				go func() { // concurrent consumer: combining must not break FIFO mid-storm
					defer close(consumerDone)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if ent, ok := e.Dequeue(clock.Always); ok {
							consumed = append(consumed, ent)
						}
					}
				}()
				var prodWG sync.WaitGroup
				for p := 0; p < producers; p++ {
					prodWG.Add(1)
					go func(p int) {
						defer prodWG.Done()
						for i := 0; i < perProducer; i++ {
							id := uint32(p*perProducer + i + 1)
							ent := core.Entry{ID: id, Rank: rank, SendTime: clock.Always}
							if err := e.Enqueue(ent); err != nil {
								t.Errorf("enqueue %d: %v", id, err)
								return
							}
						}
					}(p)
				}
				prodWG.Wait()
				close(stop)
				<-consumerDone

				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("post-storm invariants: %v", err)
				}
				rest := drainOrder(t, e)
				if got := len(consumed) + len(rest); got != producers*perProducer {
					t.Fatalf("extracted %d elements, want %d", got, producers*perProducer)
				}
				checkPerProducerFIFO(t, [][]core.Entry{consumed, rest}, producers, perProducer)
				if force {
					if cs := e.CombiningStats(); cs.RingOps == 0 {
						t.Fatalf("force-ring storm recorded no ring operations: %+v", cs)
					}
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("post-drain invariants: %v", err)
				}
			})
		}
	}
}

// TestForceRingSingleThread holds the ring path to exact quiescent
// semantics and counter accounting: every combining-eligible operation
// publishes a record and self-drains it, so RingOps counts them all,
// CombinedOps stays zero (nobody else ever holds the lock), and the
// results match the direct path bit-for-bit.
func TestForceRingSingleThread(t *testing.T) {
	e := New(1024, 8)
	e.SetForceRing(true)
	const n = 100
	for id := uint32(1); id <= n; id++ {
		if err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always}); err != nil {
			t.Fatalf("enqueue %d: %v", id, err)
		}
	}
	if err := e.Enqueue(core.Entry{ID: 1, Rank: 9, SendTime: clock.Always}); err != core.ErrDuplicate {
		t.Fatalf("duplicate enqueue through the ring: err=%v, want ErrDuplicate", err)
	}
	for id := uint32(1); id <= 10; id++ {
		if !e.UpdateRank(id, uint64(1000+id), clock.Always) {
			t.Fatalf("update rank %d through the ring failed", id)
		}
	}
	if e.UpdateRank(n+50, 1, clock.Always) {
		t.Fatal("update rank of absent id reported success")
	}
	for id := uint32(11); id <= 20; id++ {
		ent, ok := e.DequeueFlow(id)
		if !ok || ent.ID != id {
			t.Fatalf("dequeue flow %d through the ring: ok=%v ent=%+v", id, ok, ent)
		}
	}
	if _, ok := e.DequeueFlow(n + 50); ok {
		t.Fatal("dequeue flow of absent id reported success")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	cs := e.CombiningStats()
	wantRingOps := uint64(n + 1 + 10 + 1 + 10 + 1) // enqueues+dup, updates+miss, dqf hits+miss
	if cs.RingOps != wantRingOps {
		t.Fatalf("RingOps = %d, want %d", cs.RingOps, wantRingOps)
	}
	if cs.CombinedOps != 0 {
		t.Fatalf("CombinedOps = %d on a single thread, want 0", cs.CombinedOps)
	}
	if cs.CombinerDrains == 0 {
		t.Fatal("CombinerDrains = 0: the self-drain path never ran")
	}
	// The engine Stats mirror the combining counters (satellite: observable
	// amortization).
	if s := e.Stats(); s.RingOps != cs.RingOps || s.CombinedOps != cs.CombinedOps {
		t.Fatalf("Stats ring counters %d/%d disagree with CombiningStats %d/%d",
			s.RingOps, s.CombinedOps, cs.RingOps, cs.CombinedOps)
	}

	// The remaining 90 elements drain in updated-rank-aware order.
	out := drainOrder(t, e)
	if len(out) != 90 {
		t.Fatalf("drained %d elements, want 90", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Rank < out[i-1].Rank {
			t.Fatalf("drain out of rank order at %d: %d after %d", i, out[i].Rank, out[i-1].Rank)
		}
	}
}

// TestSetCombiningToggle flips the layer off mid-traffic and back on,
// checking the knob is observable and semantics are unaffected.
func TestSetCombiningToggle(t *testing.T) {
	e := New(256, 4)
	if !e.CombiningEnabled() {
		t.Fatal("combining should default on")
	}
	for id := uint32(1); id <= 50; id++ {
		if err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always}); err != nil {
			t.Fatalf("enqueue %d: %v", id, err)
		}
	}
	e.SetCombining(false)
	if e.CombiningEnabled() {
		t.Fatal("combining still reports enabled after SetCombining(false)")
	}
	for id := uint32(51); id <= 100; id++ {
		if err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always}); err != nil {
			t.Fatalf("enqueue %d with combining off: %v", id, err)
		}
	}
	e.SetCombining(true)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after toggle: %v", err)
	}
	if out := drainOrder(t, e); len(out) != 100 {
		t.Fatalf("drained %d elements, want 100", len(out))
	}
}

// TestNextEligibleWakeup is the eligibility-index regression test: a
// miss raises the bound, an insert of an eligible element must lower it
// back (the wake-up), and the future element surfaces exactly when its
// send time arrives.
func TestNextEligibleWakeup(t *testing.T) {
	e := New(64, 8)
	if err := e.Enqueue(core.Entry{ID: 1, Rank: 5, SendTime: 100}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if _, ok := e.Dequeue(10); ok {
		t.Fatal("dequeued an ineligible element")
	}
	if _, ok := e.Peek(10); ok {
		t.Fatal("peeked an ineligible element")
	}
	// The miss above raised the next-eligible bound to 100. A fresh
	// eligible insert must tighten it back down or this dequeue would
	// wrongly take the empty fast path.
	if err := e.Enqueue(core.Entry{ID: 2, Rank: 7, SendTime: 0}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	ent, ok := e.Dequeue(10)
	if !ok || ent.ID != 2 {
		t.Fatalf("dequeue after wake-up: ok=%v ent=%+v, want id 2", ok, ent)
	}
	if _, ok := e.Dequeue(10); ok {
		t.Fatal("dequeued the future element early")
	}
	ent, ok = e.Dequeue(100)
	if !ok || ent.ID != 1 {
		t.Fatalf("dequeue at send time: ok=%v ent=%+v, want id 1", ok, ent)
	}
	if s := e.Stats(); s.EmptyDequeues < 2 {
		t.Fatalf("EmptyDequeues = %d, want >= 2", s.EmptyDequeues)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestNextEligibleUpdateRankWakeup covers the re-rank path: an update
// that moves an element's send time earlier must tighten the bound.
func TestNextEligibleUpdateRankWakeup(t *testing.T) {
	e := New(64, 8)
	if err := e.Enqueue(core.Entry{ID: 1, Rank: 5, SendTime: 100}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if _, ok := e.Dequeue(10); ok { // raise the bound to 100
		t.Fatal("dequeued an ineligible element")
	}
	if !e.UpdateRank(1, 5, 0) {
		t.Fatal("update rank failed")
	}
	if ent, ok := e.Dequeue(10); !ok || ent.ID != 1 {
		t.Fatalf("dequeue after re-rank wake-up: ok=%v ent=%+v", ok, ent)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestRingWrapQuiescent pushes more than ringSlots operations through
// the forced ring path so every slot wraps at least once, then checks
// the ring's turn-sequence invariant directly.
func TestRingWrapQuiescent(t *testing.T) {
	e := New(4*ringSlots, 1)
	e.SetForceRing(true)
	for id := uint32(1); id <= uint32(3*ringSlots); id++ {
		if err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always}); err != nil {
			t.Fatalf("enqueue %d: %v", id, err)
		}
		if _, ok := e.DequeueFlow(id); !ok {
			t.Fatalf("dequeue flow %d", id)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after %d wraps: %v", 3*ringSlots*2/ringSlots, err)
	}
	sd := e.shards[0]
	if head, tail := sd.ring.head, sd.ring.tail.Load(); head != tail {
		t.Fatalf("quiescent ring not drained: head %d tail %d", head, tail)
	}
}
