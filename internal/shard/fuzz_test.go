package shard_test

import (
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/refmodel"
	"pieo/internal/shard"
)

// FuzzShardEngine interprets the fuzzer's byte stream as a program of
// engine operations and checks the sharded engine against the flat
// reference model, holding it to the quiescent-exactness contract: under
// single-threaded use the tournament, the cross-shard FIFO sequencing,
// and the shared capacity must be indistinguishable from one list. The
// first byte picks the shard count so the fuzzer explores K=1 (pure
// pass-through) through K=8 (real partitioning). Run with
// `go test -fuzz=FuzzShardEngine ./internal/shard` for open-ended
// fuzzing; under plain `go test` the seed corpus runs as a regression
// test.
func FuzzShardEngine(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{3, 1, 1, 1, 1})
	f.Add([]byte{8, 0, 10, 1, 0, 0, 20, 1, 0, 2, 10, 3, 5})
	f.Add([]byte{5, 255, 254, 253, 252, 251, 250, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) == 0 {
			return
		}
		k := int(program[0]%8) + 1
		program = program[1:]

		const capacity = 24
		impl := shard.New(capacity, k)
		ref := refmodel.New(capacity)
		nextID := uint32(0)

		for i := 0; i < len(program); {
			op := program[i]
			i++
			arg := func() byte {
				if i < len(program) {
					b := program[i]
					i++
					return b
				}
				return 0
			}
			switch op % 5 {
			case 0: // enqueue(rank, send)
				e := core.Entry{ID: nextID, Rank: uint64(arg() % 16), SendTime: clock.Time(arg() % 8)}
				nextID++
				if got, want := impl.Enqueue(e), ref.Enqueue(e); got != want {
					t.Fatalf("K=%d: Enqueue(%v) = %v, ref %v", k, e, got, want)
				}
			case 1: // dequeue(now)
				now := clock.Time(arg() % 8)
				got, gok := impl.Dequeue(now)
				want, wok := ref.Dequeue(now)
				if gok != wok || got != want {
					t.Fatalf("K=%d: Dequeue(%v) = %v,%v, ref %v,%v", k, now, got, gok, want, wok)
				}
			case 2: // dequeue(flow)
				var id uint32
				if nextID > 0 {
					id = uint32(arg()) % nextID
				}
				got, gok := impl.DequeueFlow(id)
				want, wok := ref.DequeueFlow(id)
				if gok != wok || got != want {
					t.Fatalf("K=%d: DequeueFlow(%d) = %v,%v, ref %v,%v", k, id, got, gok, want, wok)
				}
			case 3: // dequeue range
				now := clock.Time(arg() % 8)
				lo := uint32(arg() % 16)
				got, gok := impl.DequeueRange(now, lo, lo+8)
				want, wok := ref.DequeueRange(now, lo, lo+8)
				if gok != wok || got != want {
					t.Fatalf("K=%d: DequeueRange(%v,%d) = %v,%v, ref %v,%v", k, now, lo, got, gok, want, wok)
				}
			case 4: // update rank, mirrored on the reference as remove+insert
				var id uint32
				if nextID > 0 {
					id = uint32(arg()) % nextID
				}
				rank := uint64(arg() % 16)
				gok := impl.UpdateRank(id, rank, clock.Always)
				want, wok := ref.DequeueFlow(id)
				if wok {
					want.Rank = rank
					want.SendTime = clock.Always
					if err := ref.Enqueue(want); err != nil {
						t.Fatalf("K=%d: reference re-enqueue of %d failed: %v", k, id, err)
					}
				}
				if gok != wok {
					t.Fatalf("K=%d: UpdateRank(%d) = %v, ref %v", k, id, gok, wok)
				}
			}
			if impl.Len() != ref.Len() {
				t.Fatalf("K=%d: Len = %d, ref %d", k, impl.Len(), ref.Len())
			}
			if err := impl.CheckInvariants(); err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
		}
		// Final contents must match entry for entry in global (rank, FIFO)
		// order.
		gotSnap, wantSnap := impl.Snapshot(), ref.Snapshot()
		if len(gotSnap) != len(wantSnap) {
			t.Fatalf("K=%d: snapshot len %d, ref %d", k, len(gotSnap), len(wantSnap))
		}
		for j := range gotSnap {
			if gotSnap[j] != wantSnap[j] {
				t.Fatalf("K=%d: snapshot[%d] = %v, ref %v", k, j, gotSnap[j], wantSnap[j])
			}
		}
	})
}
