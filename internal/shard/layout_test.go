package shard

import (
	"reflect"
	"testing"
	"unsafe"
)

// The mechanical-sympathy contract: hot atomics — words one core writes
// per-operation while another core reads them lock-free — must never
// share a cache line with any other field, or every write becomes a
// coherence miss on the reader's side (false sharing). These tests pin
// the struct layouts so a reordered or added field can't silently
// reintroduce sharing that a benchmark would only catch at real core
// parallelism.
//
// The criterion is alignment-aware but conservative: Go guarantees
// 8-byte alignment for heap objects containing 64-bit atomics, not
// 64-byte alignment, so two fields are only accepted as line-disjoint
// when they land on distinct 64-byte lines for EVERY 8-aligned base
// address the allocator could pick.

const lineSize = 64

// mayShareLine reports whether byte spans [aStart, aEnd] and
// [bStart, bEnd] (inclusive, struct-relative) can fall on a common
// 64-byte line under any 8-aligned base address.
func mayShareLine(aStart, aEnd, bStart, bEnd uintptr) bool {
	for base := uintptr(0); base < lineSize; base += 8 {
		if (base+aEnd)/lineSize >= (base+bStart)/lineSize &&
			(base+bEnd)/lineSize >= (base+aStart)/lineSize {
			return true
		}
	}
	return false
}

// assertOwnLines fails if any field named in hot can share a cache line
// with ANY other non-padding field of typ (including another hot field).
func assertOwnLines(t *testing.T, typ reflect.Type, hot ...string) {
	t.Helper()
	type span struct {
		name       string
		start, end uintptr // inclusive byte span within the struct
	}
	var fields []span
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Name == "_" {
			continue // padding
		}
		fields = append(fields, span{f.Name, f.Offset, f.Offset + f.Type.Size() - 1})
	}
	byName := map[string]span{}
	for _, f := range fields {
		byName[f.name] = f
	}
	for _, h := range hot {
		hs, ok := byName[h]
		if !ok {
			t.Fatalf("%s: hot field %q not found (renamed without updating the layout test?)", typ, h)
		}
		for _, f := range fields {
			if f.name == h {
				continue
			}
			if mayShareLine(hs.start, hs.end, f.start, f.end) {
				t.Errorf("%s: hot field %s [%d,%d] may share a cache line with %s [%d,%d]",
					typ, h, hs.start, hs.end, f.name, f.start, f.end)
			}
		}
	}
}

func TestEngineHotFieldLayout(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout contract is specified for 64-bit platforms")
	}
	// size and seq: every core adds on every op. nextElig: loaded by
	// every consumer per dequeue while eligVer is added by every
	// producer per insert — the pair must additionally not share with
	// each other, which the pairwise check covers.
	assertOwnLines(t, reflect.TypeOf(Engine{}), "size", "seq", "nextElig", "eligVer")
}

func TestShardHotFieldLayout(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout contract is specified for 64-bit platforms")
	}
	// minSend is read lock-free by remote tournaments; downFlag is read
	// lock-free by every routing check. Both must stay off the lines the
	// lock holder dirties (mu, resident, quarantine bookkeeping).
	assertOwnLines(t, reflect.TypeOf(shard{}), "minSend", "downFlag")
}

func TestSummaryRankLayout(t *testing.T) {
	if got := unsafe.Sizeof(summaryRank{}); got != lineSize {
		t.Fatalf("summaryRank must be exactly one cache line (stride of the padded minRanks array): got %d bytes", got)
	}
	if off := unsafe.Offsetof(summaryRank{}.v); off != 0 {
		t.Fatalf("summaryRank.v must sit at offset 0: got %d", off)
	}
}

func TestRingLayout(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout contract is specified for 64-bit platforms")
	}
	// A record is two lines so producers spinning on ADJACENT tickets
	// never share a line: the turn word (spun on) must start the record
	// and the stride must hold at 128.
	var rec ringRecord
	if got := unsafe.Sizeof(rec); got != 2*lineSize {
		t.Fatalf("ringRecord must be exactly two cache lines: got %d bytes", got)
	}
	if off := unsafe.Offsetof(rec.turn); off != 0 {
		t.Fatalf("ringRecord.turn must sit at offset 0: got %d", off)
	}
	// tail (CASed by every publisher) and head (written by the lock
	// holder) must not share with each other or with slot 0.
	assertOwnLines(t, reflect.TypeOf(opRing{}), "tail", "head")
}
