package shard

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// The genuinely-parallel ring storms: unlike the GOMAXPROCS=1 storms in
// combining_test.go — where goroutines interleave on one core and the
// rings barely engage — these tests require real core parallelism, so
// producers publish into the rings WHILE a combiner drains them and the
// turn-word protocol's cross-core orderings are actually exercised.
// Under -race this is the strongest coverage the combining layer gets;
// CI runs it on multi-core runners (see .github/workflows/ci.yml).
//
// ID encoding: single-op producer p's i-th element is p*perSingle+i+1
// (low range); batch producers use IDs at or above batchIDBase so the
// FIFO audit can scope itself to streams where program order is
// well-defined through a quarantine (a mid-batch reroute legitimately
// re-draws sequence numbers out of batch order — see EnqueueBatch).

const (
	pStormSingles   = 4    // single-op producers (FIFO-audited)
	pStormBatchers  = 2    // EnqueueBatch producers (ring-block path)
	pStormPerSingle = 2500 // elements per single-op producer
	pStormBatches   = 40   // batches per batch producer
	pStormBatchLen  = 60   // elements per batch (> ringBatchMax, multi-shard)
	batchIDBase     = 1 << 20
)

func requireParallelHost(t *testing.T) {
	t.Helper()
	if os.Getenv("PIEO_FORCE_PARALLEL_STORM") != "" {
		return // run time-shared anyway (correctness still holds; parallelism doesn't)
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("host has %d CPUs; the parallel ring storm needs >= 4 to run producers and a consumer on distinct cores (multicore host requirement, see README) — skipping", n)
	}
}

// parallelStorm drives the shared storm shape: pStormSingles single-op
// producers and pStormBatchers batch producers against one consumer,
// rings forced on, every element at the same rank and always eligible.
// It returns the consumer's in-order stream and the accepted count.
func parallelStorm(t *testing.T, e *Engine, onSingleOp func(p, i int)) (consumed []core.Entry, accepted int64) {
	t.Helper()
	e.SetForceRing(true)
	var acceptedN atomic.Int64
	stop := make(chan struct{})
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ent, ok := e.Dequeue(clock.Always); ok {
				consumed = append(consumed, ent)
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < pStormSingles; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pStormPerSingle; i++ {
				if onSingleOp != nil {
					onSingleOp(p, i)
				}
				id := uint32(p*pStormPerSingle + i + 1)
				if err := e.Enqueue(core.Entry{ID: id, Rank: 42, SendTime: clock.Always}); err == nil {
					acceptedN.Add(1)
				}
			}
		}(p)
	}
	for b := 0; b < pStormBatchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for bi := 0; bi < pStormBatches; bi++ {
				es := make([]core.Entry, pStormBatchLen)
				for j := range es {
					id := uint32(batchIDBase + b*pStormBatches*pStormBatchLen + bi*pStormBatchLen + j + 1)
					es[j] = core.Entry{ID: id, Rank: 42, SendTime: clock.Always}
				}
				n, err := e.EnqueueBatch(es)
				acceptedN.Add(int64(n))
				if err != nil && !errors.Is(err, core.ErrShardDown) && !errors.Is(err, core.ErrFull) {
					t.Errorf("batch producer %d batch %d: unexpected error %v", b, bi, err)
				}
			}
		}(b)
	}
	wg.Wait()
	close(stop)
	<-consumerDone
	return consumed, acceptedN.Load()
}

// checkSingleProducerFIFO audits program order for the single-op
// producers' low-range IDs across the concatenated streams; batch-range
// IDs are skipped (their order through a quarantine reroute is
// intentionally re-sequenced).
func checkSingleProducerFIFO(t *testing.T, streams ...[]core.Entry) {
	t.Helper()
	lastIdx := make([]int, pStormSingles)
	for i := range lastIdx {
		lastIdx[i] = -1
	}
	for _, stream := range streams {
		for _, ent := range stream {
			if ent.ID >= batchIDBase {
				continue
			}
			p := int(ent.ID-1) / pStormPerSingle
			idx := int(ent.ID-1) % pStormPerSingle
			if idx <= lastIdx[p] {
				t.Fatalf("producer %d: element %d extracted at or before element %d — FIFO violated", p, idx, lastIdx[p])
			}
			lastIdx[p] = idx
		}
	}
}

// TestParallelRingStorm is the fault-free real-parallel storm: exact
// conservation, per-producer FIFO through both the single-op ring path
// and EnqueueBatch's claimN block path, and rings demonstrably engaged.
func TestParallelRingStorm(t *testing.T) {
	requireParallelHost(t)
	for _, backendName := range []string{"core", "cffs"} {
		t.Run(fmt.Sprintf("backend=%s", backendName), func(t *testing.T) {
			total := pStormSingles*pStormPerSingle + pStormBatchers*pStormBatches*pStormBatchLen
			e, err := NewNamed(2*total, 8, backendName)
			if err != nil {
				t.Fatalf("construct %q engine: %v", backendName, err)
			}
			consumed, accepted := parallelStorm(t, e, nil)
			if accepted != int64(total) {
				t.Fatalf("fault-free storm accepted %d of %d", accepted, total)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("post-storm invariants: %v", err)
			}
			rest := drainOrder(t, e)
			if got := len(consumed) + len(rest); got != total {
				t.Fatalf("extracted %d elements, want %d", got, total)
			}
			// Batch-producer FIFO has batch granularity in the live stream:
			// entries WITHIN one EnqueueBatch call are all in flight
			// simultaneously (no program order among them until the call
			// returns), but batch bi returns before bi+1 begins, so a later
			// batch's element must never precede an earlier batch's. The
			// quiescent drain additionally holds strict intra-batch order
			// (block sequences are stamped in batch position order).
			maxBatch := make(map[int]int, pStormBatchers)
			for _, ent := range consumed {
				if ent.ID < batchIDBase {
					continue
				}
				off := int(ent.ID) - batchIDBase - 1
				b := off / (pStormBatches * pStormBatchLen)
				bi := (off % (pStormBatches * pStormBatchLen)) / pStormBatchLen
				if last, ok := maxBatch[b]; ok && bi < last {
					t.Fatalf("batch producer %d: batch %d element extracted after batch %d — cross-batch FIFO violated", b, bi, last)
				} else if !ok || bi > last {
					maxBatch[b] = bi
				}
			}
			lastIdx := make(map[int]int, pStormBatchers)
			for _, ent := range rest {
				if ent.ID < batchIDBase {
					continue
				}
				off := int(ent.ID) - batchIDBase - 1
				b := off / (pStormBatches * pStormBatchLen)
				idx := off % (pStormBatches * pStormBatchLen)
				if last, ok := lastIdx[b]; ok && idx <= last {
					t.Fatalf("batch producer %d: quiescent drain yielded element %d at or before element %d", b, idx, last)
				}
				lastIdx[b] = idx
			}
			checkSingleProducerFIFO(t, consumed, rest)
			if cs := e.CombiningStats(); cs.RingOps == 0 {
				t.Fatalf("parallel force-ring storm recorded no ring operations: %+v", cs)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("post-drain invariants: %v", err)
			}
		})
	}
}

// TestParallelRingStormQuarantine runs the same storm through a
// quarantine/rebuild window: a fault hook panics once on a target shard
// mid-storm, traffic reroutes around it while the rings keep serving the
// healthy shards, and after forced recovery the audit demands exact
// conservation — accepted = consumed + drained + declared losses — plus
// single-op per-producer FIFO (held through the window: a rerouted
// single op keeps its original sequence number).
func TestParallelRingStormQuarantine(t *testing.T) {
	requireParallelHost(t)
	total := pStormSingles*pStormPerSingle + pStormBatchers*pStormBatches*pStormBatchLen
	e := New(2*total, 8)
	const target = 3
	var armed, fired atomic.Bool
	e.SetFaultHook(func(shard int, op string) {
		if shard == target && armed.Load() && fired.CompareAndSwap(false, true) {
			panic("parallel storm: injected shard fault")
		}
	})
	consumed, accepted := parallelStorm(t, e, func(p, i int) {
		if p == 0 && i == pStormPerSingle/2 {
			armed.Store(true) // open the quarantine window mid-storm
		}
	})
	if !fired.Load() {
		t.Fatal("fault hook never fired: the storm missed the quarantine window")
	}
	armed.Store(false)
	for try := 0; try < 100 && e.Recover() > 0; try++ {
	}
	if down := e.Recover(); down > 0 {
		t.Fatalf("%d shards still down after forced recovery", down)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-recovery invariants: %v", err)
	}
	rest := drainOrder(t, e)
	fs := e.FaultStats()
	if fs.Quarantines == 0 {
		t.Fatal("no quarantine recorded despite the fired hook")
	}
	got := int64(len(consumed)) + int64(len(rest)) + int64(fs.LostEntries)
	if got != accepted {
		t.Fatalf("conservation violated: consumed %d + drained %d + lost %d = %d, want accepted %d",
			len(consumed), len(rest), fs.LostEntries, got, accepted)
	}
	// FIFO is audited on the quiescent post-recovery drain only: while
	// the window is open a salvaged element is unavailable, so the live
	// stream can legitimately serve its successor first. Within the
	// quiescent drain, per-producer sequence order is program order
	// (each single op — rerouted or not — completes before its successor
	// draws a sequence number).
	checkSingleProducerFIFO(t, rest)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
}
