// Shard fault isolation: the quarantine/salvage/rebuild state machine,
// supervised by a per-shard circuit breaker.
//
// A panic inside one shard's core.List — induced by the fault-injection
// hook, or genuine structural corruption (the engine itself panics on
// invariant violations like a dequeue losing an element a peek saw) —
// must not take down the whole engine: the other K-1 shards hold healthy
// traffic that a crash would destroy. Instead the failing shard is
// QUARANTINED under its own lock, in the panic's recover:
//
//  1. Salvage. A recover-guarded snapshot pulls whatever entries the
//     broken structure can still yield (deduplicated by ID — a panic
//     mid-shift can double-expose an element). Entries the snapshot
//     cannot recover are DECLARED LOST: subtracted from the engine size
//     and counted in FaultStats.LostEntries, so conservation audits can
//     reconcile exactly.
//  2. Degrade. The shard's list is dropped, its summaries are emptied
//     (the dequeue tournament then prunes it for free), and its downFlag
//     routes new traffic around it: enqueues probe forward to the next
//     healthy shard (those entries are tracked as "off-home" so point
//     lookups know to widen), point lookups treat salvaged IDs as
//     present-but-unavailable.
//  3. Rebuild, breaker-gated. Each shard carries a supervise.Breaker
//     (DESIGN.md §12): a quarantine trips it Open and schedules the
//     first rebuild probe after an exponentially-backed-off,
//     deterministically-jittered delay on the engine's supervision
//     clock (an injected clock.Source, or the degraded-mode op count by
//     default — identical to the historical op-count backoff). When the
//     probe is due the salvage is replayed with its original FIFO
//     sequence numbers into a fresh list, validated, and installed; a
//     failed replay grows the backoff. After MaxRebuildAttempts
//     failures the salvage itself is declared lost and the shard
//     rejoins empty — bounded unavailability is the contract, not
//     infinite retry.
//  4. Probation. A rebuilt shard rejoins HALF-OPEN: it carries real
//     traffic immediately, but the breaker only closes — resetting the
//     failure streak and recording the outage episode's MTTR — after a
//     bounded probe budget of successful protected operations. A panic
//     during probation re-trips the breaker with the streak preserved,
//     so a flapping shard backs off harder each round instead of
//     oscillating.
//
// Everything here assumes the engine's locking discipline: per-shard
// state is guarded by shard.mu, cross-shard state by atomics, and no two
// shard locks are ever held at once.
package shard

import (
	"fmt"
	"sync/atomic"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/supervise"
)

// Operation labels passed to the fault hook, identifying which datapath a
// protected section is about to run. OpRecover labels breaker-close
// events in the fault log (it is never passed to the hook).
const (
	OpEnqueue     = "enqueue"
	OpPeek        = "peek"
	OpDequeue     = "dequeue"
	OpDequeueFlow = "dequeue_flow"
	OpUpdateRank  = "update_rank"
	OpRebuild     = "rebuild"
	OpRecover     = "recover"
)

// maxFaultEvents bounds the diagnostic event log.
const maxFaultEvents = 1024

// faultCounters is the engine's resilience counter block.
type faultCounters struct {
	quarantines     atomic.Uint64
	rebuilds        atomic.Uint64
	rebuildFailures atomic.Uint64
	lostEntries     atomic.Uint64
	recoveries      atomic.Uint64
	mttrTotal       atomic.Uint64
	mttrMax         atomic.Uint64
}

// FaultStats is a point-in-time snapshot of the engine's fault-handling
// activity.
type FaultStats struct {
	// Quarantines counts shard panics survived by isolation.
	Quarantines uint64
	// Rebuilds counts successful salvage replays (shards that rejoined).
	Rebuilds uint64
	// RebuildFailures counts rebuild attempts that failed and backed off.
	RebuildFailures uint64
	// LostEntries counts elements declared lost: unrecoverable at salvage
	// time, or abandoned with a salvage after MaxRebuildAttempts.
	LostEntries uint64
	// Recoveries counts breaker-close events: outage episodes that ended
	// in full re-admission (the half-open probe budget exhausted).
	Recoveries uint64
	// MTTRTotal and MTTRMax aggregate per-episode downtime — from the
	// first trip of an episode to its breaker close — in supervision
	// clock ticks. MTTRTotal/Recoveries is the mean MTTR.
	MTTRTotal clock.Time
	MTTRMax   clock.Time
	// DownShards is the number of currently quarantined (breaker-Open)
	// shards; HalfOpenShards counts shards serving probation traffic.
	DownShards     int
	HalfOpenShards int
	// OffHomeEntries is the number of resident elements currently living
	// away from their hash-home shard (rehashed around a quarantine).
	OffHomeEntries int64
}

// FaultStats returns the engine's resilience counters.
func (e *Engine) FaultStats() FaultStats {
	return FaultStats{
		Quarantines:     e.fstats.quarantines.Load(),
		Rebuilds:        e.fstats.rebuilds.Load(),
		RebuildFailures: e.fstats.rebuildFailures.Load(),
		LostEntries:     e.fstats.lostEntries.Load(),
		Recoveries:      e.fstats.recoveries.Load(),
		MTTRTotal:       clock.Time(e.fstats.mttrTotal.Load()),
		MTTRMax:         clock.Time(e.fstats.mttrMax.Load()),
		DownShards:      int(e.downShards.Load()),
		HalfOpenShards:  int(e.probation.Load()),
		OffHomeEntries:  e.offHome.Load(),
	}
}

// FaultEvent is one entry in the engine's diagnostic fault log. Events
// are stamped with the supervision clock, and recovery events carry the
// episode's downtime, so MTTR is computable from the log alone.
type FaultEvent struct {
	// Shard is the affected shard index.
	Shard int
	// Op labels the datapath that was running (Op* constants); OpRecover
	// marks a breaker close.
	Op string
	// Err is the panic value or rebuild error, stringified.
	Err string
	// Salvaged is how many entries the salvage recovered (quarantine
	// events) or replayed (rebuild events).
	Salvaged int
	// Lost is how many entries were declared lost by this event.
	Lost int
	// At is the supervision-clock instant the event was recorded
	// (injection instants for quarantines, recovery instants for
	// OpRebuild/OpRecover events).
	At clock.Time
	// Downtime is the outage episode's duration — breaker close minus
	// first trip — on OpRecover events; zero otherwise.
	Downtime clock.Time
}

// FaultEvents returns a copy of the fault log (bounded at maxFaultEvents).
func (e *Engine) FaultEvents() []FaultEvent {
	e.eventMu.Lock()
	defer e.eventMu.Unlock()
	out := make([]FaultEvent, len(e.events))
	copy(out, e.events)
	return out
}

// MTTR summarizes the recovery events in a fault log: how many outage
// episodes closed, and their total and maximum downtime. Together with
// FaultEvent.At this makes MTTR computable from the event log alone,
// with no live engine required.
func MTTR(events []FaultEvent) (recoveries int, total, max clock.Time) {
	for _, ev := range events {
		if ev.Op != OpRecover {
			continue
		}
		recoveries++
		total += ev.Downtime
		if ev.Downtime > max {
			max = ev.Downtime
		}
	}
	return recoveries, total, max
}

func (e *Engine) recordEvent(ev FaultEvent) {
	e.eventMu.Lock()
	if len(e.events) < maxFaultEvents {
		e.events = append(e.events, ev)
	}
	e.eventMu.Unlock()
}

// SetFaultHook installs a hook invoked at the top of every protected
// shard-list section with the shard index and operation label. A hook
// that panics exercises the quarantine machinery — that is its purpose
// (see internal/faultinject). It MUST be installed before the engine
// carries traffic; it is read without synchronization afterwards.
func (e *Engine) SetFaultHook(h func(shard int, op string)) { e.hook = h }

// SetClock installs the supervision time source the circuit breakers
// schedule rebuild probes against. When no clock is installed the
// engine derives one from its degraded-mode operation count, which
// reproduces the historical op-count backoff exactly (deterministic
// under single-threaded test drivers). Like SetFaultHook it MUST be
// called before the engine carries traffic; it is read without
// synchronization afterwards. Rebuild probes are evaluated on engine
// operations either way — an idle engine retries its shards on the
// next operation after the backoff expires.
func (e *Engine) SetClock(clk clock.Source) { e.clk = clk }

// SetBreakerConfig replaces every shard's circuit-breaker configuration
// (backoff schedule, probe budget, jitter, salvage-abandon bound). The
// zero config selects the defaults, which match the historical op-count
// schedule. MUST be called before the engine carries traffic: it
// re-creates the per-shard breakers in the Closed state.
func (e *Engine) SetBreakerConfig(cfg supervise.BreakerConfig) {
	e.bcfg = supervise.NewBreaker(0, cfg).Config()
	for i, sd := range e.shards {
		sd.brk = supervise.NewBreaker(i, cfg)
	}
}

// now reads the supervision clock: the injected source, or the
// degraded-mode operation count.
func (e *Engine) now() clock.Time {
	if e.clk != nil {
		return e.clk.Now()
	}
	return clock.Time(e.ops.Load())
}

// opTick advances the engine's operation clock and gives due rebuilds a
// chance to run. The clock only ticks while a shard is down — backoff
// windows on the default op-derived clock are measured in degraded-mode
// operations — and skipping the increment leaves the healthy hot path a
// single atomic load.
func (e *Engine) opTick() {
	if e.downShards.Load() != 0 {
		e.ops.Add(1)
		e.maybeRebuild()
	}
}

// maybeRebuild attempts every quarantined shard whose breaker backoff
// has expired. The unlocked pre-checks (downFlag, the rebuilding CAS
// guard, the breaker's published phase and reopen instant) keep the
// degraded-mode overhead to a few atomic loads per operation; tryRebuild
// re-validates under the lock.
func (e *Engine) maybeRebuild() {
	now := e.now()
	for i, sd := range e.shards {
		if !sd.downFlag.Load() || sd.rebuilding.Load() || !sd.brk.ReadyToProbe(now) {
			continue
		}
		e.tryRebuild(i, sd, false)
	}
}

// Recover forces an immediate rebuild attempt on every quarantined shard,
// ignoring backoff, and reports how many shards remain down. Callers use
// it to bound recovery latency once a fault storm has passed (a rebuild
// that is itself faulted still fails and backs off). Rebuilt shards
// rejoin half-open: real traffic closes their breakers.
func (e *Engine) Recover() int {
	for i, sd := range e.shards {
		if sd.downFlag.Load() {
			e.tryRebuild(i, sd, true)
		}
	}
	return int(e.downShards.Load())
}

// protect runs fn against the shard's list with panic isolation: a panic
// quarantines shard i and surfaces as core.ErrShardDown instead of
// unwinding through the caller. The caller must hold sd.mu and must have
// checked sd.down; fn must confine its effects to this shard plus
// engine-level counters it maintains exactly (see the residency fields).
//
// Every successful protected operation doubles as a health probe: while
// the shard is half-open it counts against the breaker's probe budget,
// and the operation that exhausts the budget closes the breaker and
// records the outage episode's MTTR. The healthy-path cost is one
// uncontended atomic load of the breaker phase (DESIGN.md §12).
func (e *Engine) protect(i int, sd *shard, op string, fn func(l backend.ShardBackend)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.quarantineLocked(i, sd, op, r)
			err = core.ErrShardDown
		}
	}()
	if e.hook != nil {
		e.hook(i, op)
	}
	fn(sd.list)
	if sd.brk.Phase() == backend.BreakerHalfOpen {
		now := e.now()
		if closed, downtime := sd.brk.ProbeOK(now); closed {
			e.probation.Add(-1)
			e.fstats.recoveries.Add(1)
			e.fstats.mttrTotal.Add(uint64(downtime))
			storeMax(&e.fstats.mttrMax, uint64(downtime))
			e.recordEvent(FaultEvent{Shard: i, Op: OpRecover, At: now, Downtime: downtime})
		}
	}
	return nil
}

// storeMax CAS-raises dst to v.
func storeMax(dst *atomic.Uint64, v uint64) {
	for {
		cur := dst.Load()
		if v <= cur || dst.CompareAndSwap(cur, v) {
			return
		}
	}
}

// quarantineLocked transitions shard i to the down state. Called from
// protect's recover with sd.mu held and the list in an unknown state.
func (e *Engine) quarantineLocked(i int, sd *shard, op string, cause any) {
	ents, seqs := salvageSnapshot(sd.list)
	stats := salvageStats(sd.list)

	// Deduplicate by ID: a panic mid-shift can expose an element twice in
	// the snapshot, and one copy of a queued element is the truth.
	ids := make(map[uint32]struct{}, len(ents))
	w := 0
	salvagedOffHome := 0
	for idx := range ents {
		id := ents[idx].ID
		if _, dup := ids[id]; dup {
			continue
		}
		ids[id] = struct{}{}
		ents[w], seqs[w] = ents[idx], seqs[idx]
		w++
		if e.homeIdx(id) != i {
			salvagedOffHome++
		}
	}
	ents, seqs = ents[:w], seqs[:w]

	// Entries the salvage could not recover are declared lost, charged
	// against the size counter so conservation holds; the off-home
	// counter is reconciled the same way (lost entries of unknown
	// identity might have been off-home, and the per-shard count knows
	// exactly how many were).
	lost := sd.resident - len(ents)
	if lost < 0 {
		lost = 0
	}
	e.offHome.Add(int64(salvagedOffHome - sd.offHomeResident))
	sd.offHomeResident = salvagedOffHome

	now := e.now()
	if sd.brk.Phase() == backend.BreakerHalfOpen {
		// A probation failure: the shard leaves the half-open pool and
		// the breaker re-opens with its failure streak preserved, so the
		// next backoff is longer than the last.
		e.probation.Add(-1)
	}
	sd.brk.Trip(now)

	sd.down = true
	sd.downFlag.Store(true)
	sd.bindList(nil)
	sd.salvaged = ents
	sd.salvagedSeqs = seqs
	sd.salvageIDs = ids
	sd.resident = len(ents)
	addStats(&sd.statsBase, stats)
	sd.attempts = 0
	sd.minRank.Store(emptyRank)
	sd.minSend.Store(uint64(clock.Never))

	// Complete every operation still published in the ingress ring with a
	// retry verdict: their producers have not been answered, so nothing
	// about them is in the conservation ledger yet — they simply re-route
	// through the degraded slow path, exactly like an operation that saw
	// the quarantine itself. (downFlag is already up, so a producer racing
	// this flush cancels its own record instead of waiting; the per-record
	// CAS arbitrates.)
	flushRingLocked(sd.ring)

	if lost > 0 {
		e.size.Add(int64(-lost))
		e.fstats.lostEntries.Add(uint64(lost))
	}
	e.downShards.Add(1)
	e.fstats.quarantines.Add(1)
	e.recordEvent(FaultEvent{
		Shard:    i,
		Op:       op,
		Err:      fmt.Sprint(cause),
		Salvaged: len(ents),
		Lost:     lost,
		At:       now,
	})
}

// undoPhantomLoss reverses the one-entry loss the salvage reconciliation
// charged for an in-flight arrival that never landed: its residency was
// pre-counted when the protected insert began, so the quarantine's
// resident-vs-salvage comparison declared it lost — but its fate belongs
// to the enqueue retry loop (which restores the capacity slot and probes
// onward), not to the quarantine ledger. The counter, the slot, and the
// latest quarantine event for the shard are all unwound, keeping the
// event log's loss accounting exact.
func (e *Engine) undoPhantomLoss(i int) {
	e.size.Add(1)
	e.fstats.lostEntries.Add(^uint64(0))
	e.eventMu.Lock()
	for k := len(e.events) - 1; k >= 0; k-- {
		ev := &e.events[k]
		if ev.Shard == i && ev.Op != OpRebuild && ev.Op != OpRecover {
			ev.Lost--
			break
		}
	}
	e.eventMu.Unlock()
}

// salvageSnapshot reads the broken list's contents, tolerating a snapshot
// that itself panics (the corruption may extend into the walk): whatever
// cannot be read is simply not salvaged.
func salvageSnapshot(l backend.ShardBackend) (ents []core.Entry, seqs []uint64) {
	defer func() {
		if recover() != nil {
			ents, seqs = nil, nil
		}
	}()
	return l.SnapshotWithSeq()
}

// salvageStats reads the broken list's datapath counters, best-effort.
func salvageStats(l backend.ShardBackend) (s core.Stats) {
	defer func() { _ = recover() }()
	return l.Stats()
}

// tryRebuild attempts to bring shard i back up. force skips the breaker
// backoff check (Recover). It reports whether the shard is up on return.
func (e *Engine) tryRebuild(i int, sd *shard, force bool) bool {
	if !sd.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	defer sd.rebuilding.Store(false)
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if !sd.down {
		return true
	}
	now := e.now()
	if !force && !sd.brk.ReadyToProbe(now) {
		return false
	}

	fresh, rerr := e.replaySalvage(i, sd)
	if rerr != nil {
		sd.attempts++
		e.fstats.rebuildFailures.Add(1)
		sd.brk.FailProbe(now)
		if sd.attempts < e.bcfg.MaxRebuildAttempts {
			e.recordEvent(FaultEvent{Shard: i, Op: OpRebuild, Err: rerr.Error(), Salvaged: len(sd.salvaged), At: now})
			return false
		}
		// The salvage cannot be replayed: declare it lost and rejoin
		// empty rather than holding the shard down forever.
		lost := len(sd.salvaged)
		e.size.Add(int64(-lost))
		e.offHome.Add(int64(-sd.offHomeResident))
		e.fstats.lostEntries.Add(uint64(lost))
		e.recordEvent(FaultEvent{
			Shard: i,
			Op:    OpRebuild,
			Err:   fmt.Sprintf("salvage abandoned after %d attempts: %v", sd.attempts, rerr),
			Lost:  lost,
			At:    now,
		})
		fresh = e.newList()
		sd.resident = 0
		sd.offHomeResident = 0
	} else {
		// The replay's datapath work is rebuild overhead, not engine
		// operations; subtract it so statsBase+live stays the real
		// history.
		subStats(&sd.statsBase, fresh.Stats())
		e.fstats.rebuilds.Add(1)
		e.recordEvent(FaultEvent{Shard: i, Op: OpRebuild, Salvaged: len(sd.salvaged), At: now})
	}

	sd.bindList(fresh)
	sd.salvaged, sd.salvagedSeqs, sd.salvageIDs = nil, nil, nil
	sd.attempts = 0
	sd.down = false
	sd.downFlag.Store(false)
	// The shard rejoins HALF-OPEN: live traffic through protect counts
	// down the probe budget, and only its exhaustion closes the breaker
	// (recording the episode's MTTR). An abandoned-salvage rejoin is
	// probationary too — the shard was just as faulty.
	sd.brk.EnterProbation(now)
	e.probation.Add(1)
	if r, ok := fresh.MinRank(); ok {
		if r == emptyRank {
			r--
		}
		sd.minRank.Store(r)
	} else {
		sd.minRank.Store(emptyRank)
	}
	if t, ok := fresh.MinSendTime(); ok {
		sd.minSend.Store(uint64(t))
		// The salvage was invisible to the next-eligible index while the
		// shard was down (raiseNextElig skips down shards); now that its
		// elements are dequeueable again the bound must cover them.
		e.tightenNextElig(t)
	} else {
		sd.minSend.Store(uint64(clock.Never))
	}
	e.downShards.Add(-1)
	return true
}

// replaySalvage builds a fresh list and replays the salvage into it with
// the original FIFO sequence numbers, under the same fault-injection hook
// as live traffic (a rebuild can be faulted too) and a recover guard so a
// replay panic is a failed attempt, not a crash. Called with sd.mu held.
func (e *Engine) replaySalvage(i int, sd *shard) (l backend.ShardBackend, err error) {
	defer func() {
		if r := recover(); r != nil {
			l, err = nil, fmt.Errorf("rebuild panic: %v", r)
		}
	}()
	if e.hook != nil {
		e.hook(i, OpRebuild)
	}
	fresh := e.newList()
	for idx := range sd.salvaged {
		if rerr := fresh.EnqueueSeq(sd.salvaged[idx], sd.salvagedSeqs[idx]); rerr != nil {
			return nil, fmt.Errorf("replay of id %d: %w", sd.salvaged[idx].ID, rerr)
		}
	}
	if cerr := fresh.CheckInvariants(); cerr != nil {
		return nil, fmt.Errorf("rebuilt list invalid: %w", cerr)
	}
	return fresh, nil
}

// Health implements backend.Health: the supervision layer's monitoring
// surface. Occupancy/Capacity feed overload watermarks; per-shard
// breaker phase, failure streak, and next-retry instant expose the
// recovery state machine.
func (e *Engine) Health() backend.HealthReport {
	rep := backend.HealthReport{
		Occupancy:       e.Len(),
		Capacity:        e.capacity,
		DownShards:      int(e.downShards.Load()),
		ProbationShards: int(e.probation.Load()),
		Shards:          make([]backend.ShardHealth, len(e.shards)),
	}
	for i, sd := range e.shards {
		sd.mu.Lock()
		rep.Shards[i] = backend.ShardHealth{
			Index:         i,
			Up:            !sd.down,
			Phase:         sd.brk.Phase(),
			FailureStreak: sd.brk.Streak(),
			Occupancy:     sd.resident,
			RetryAt:       sd.brk.ReopenAt(),
		}
		sd.mu.Unlock()
	}
	return rep
}

// salvageHas reports whether id sits in sd's salvage, taking the lock
// itself (for callers probing an unlocked down shard).
func (e *Engine) salvageHas(sd *shard, id uint32) bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.down && mapHas(sd.salvageIDs, id)
}

func mapHas(m map[uint32]struct{}, id uint32) bool {
	_, ok := m[id]
	return ok
}

// residentAway reports whether id is resident anywhere its home shard's
// own duplicate check cannot see: another shard's live list, or any
// shard's salvage. Only consulted in degraded mode — it walks the shards,
// which is exactly the cost exact duplicate detection requires once the
// clean partitioning is suspended.
func (e *Engine) residentAway(id uint32, home int) bool {
	for i, sd := range e.shards {
		if i == home && !sd.downFlag.Load() {
			continue
		}
		sd.mu.Lock()
		var has bool
		if sd.down {
			has = mapHas(sd.salvageIDs, id)
		} else if i != home {
			has = sd.list.Contains(id)
		}
		sd.mu.Unlock()
		if has {
			return true
		}
	}
	return false
}
