package shard

import (
	"errors"
	"sync/atomic"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/supervise"
)

// panicEnqBackend wraps a shard backend so the NEXT EnqueueSeq panics
// while armed. Unlike the fault-injection hook — which fires BEFORE the
// protected function, so the insert's residency pre-count never runs —
// this panics INSIDE the list call, reproducing genuine mid-insert
// corruption: the entry is pre-counted as resident but absent from the
// salvage, the exact shape the phantom-loss accounting exists for.
type panicEnqBackend struct {
	backend.ShardBackend
	arm *atomic.Bool
}

func (p *panicEnqBackend) EnqueueSeq(e core.Entry, seq uint64) error {
	if p.arm.CompareAndSwap(true, false) {
		panic("induced mid-insert fault")
	}
	return p.ShardBackend.EnqueueSeq(e, seq)
}

func newPanicEnqEngine(t *testing.T, n, k int) (*Engine, *atomic.Bool) {
	t.Helper()
	factory, err := backend.ShardFactoryFor("core")
	if err != nil {
		t.Fatal(err)
	}
	arm := &atomic.Bool{}
	e := NewOn(n, k, func(cfg backend.ShardConfig) backend.ShardBackend {
		return &panicEnqBackend{ShardBackend: factory(cfg), arm: arm}
	})
	return e, arm
}

func ent(id uint32, rank uint64) core.Entry {
	return core.Entry{ID: id, Rank: rank, SendTime: 0}
}

// TestBatchMidQuarantinePhantomLoss: a mid-insert panic during
// EnqueueBatch pre-counts the in-flight entry as resident, so the
// quarantine's salvage reconciliation declares it lost — but the entry's
// fate belongs to the reroute path and the batch-slot ledger, which
// releases its slot too. The engine must unwind the phantom loss: exact
// size, zero LostEntries, a patched fault event, and a typed per-item
// error for every rerouted entry.
func TestBatchMidQuarantinePhantomLoss(t *testing.T) {
	e, arm := newPanicEnqEngine(t, 16, 1)
	if err := e.Enqueue(ent(1, 10)); err != nil {
		t.Fatal(err)
	}

	arm.Store(true)
	accepted, err := e.EnqueueBatch([]core.Entry{ent(2, 20), ent(3, 30), ent(4, 40)})
	if accepted != 0 {
		t.Fatalf("accepted = %d, want 0 (single shard quarantined mid-batch)", accepted)
	}
	// Every rerouted-then-failed entry surfaces a typed per-item error.
	if !errors.Is(err, core.ErrShardDown) {
		t.Fatalf("batch error = %v, want ErrShardDown underneath", err)
	}
	var bie *BatchItemError
	if !errors.As(err, &bie) {
		t.Fatalf("batch error = %v, want BatchItemError items", err)
	}
	items := 0
	for _, id := range []uint32{2, 3, 4} {
		found := false
		var walk func(error)
		walk = func(e error) {
			var b *BatchItemError
			if errors.As(e, &b) && b.ID == id {
				found = true
			}
		}
		if joined, ok := err.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
		}
		if !found {
			t.Fatalf("no per-item error attributes entry id %d (err = %v)", id, err)
		}
		items++
	}
	if items != 3 {
		t.Fatalf("attributed %d item errors, want 3", items)
	}

	// The in-flight entry's loss must be unwound: the salvage holds only
	// id 1, and nothing was silently dropped.
	if got := e.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (the salvaged pre-fault entry)", got)
	}
	fs := e.FaultStats()
	if fs.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", fs.Quarantines)
	}
	if fs.LostEntries != 0 {
		t.Fatalf("LostEntries = %d, want 0: the in-flight arrival was rerouted, not lost", fs.LostEntries)
	}
	for _, ev := range e.FaultEvents() {
		if ev.Op != OpRebuild && ev.Op != OpRecover && ev.Lost != 0 {
			t.Fatalf("quarantine event declares %d lost entries, want 0 after the phantom unwind", ev.Lost)
		}
	}

	// Recovery restores the salvaged entry exactly.
	if down := e.Recover(); down != 0 {
		t.Fatalf("Recover left %d shards down", down)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Dequeue(clock.Never - 1)
	if !ok || got.ID != 1 {
		t.Fatalf("post-recovery dequeue = %+v/%v, want id 1", got, ok)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", e.Len())
	}
}

// TestEnqueuePhantomLossCounter: the single-Enqueue equivalent. The seed
// restored the capacity slot but left the LostEntries counter (and the
// event record) charged for an arrival whose fate the probe loop owns —
// conservation audits over the counters would overcount losses.
func TestEnqueuePhantomLossCounter(t *testing.T) {
	e, arm := newPanicEnqEngine(t, 16, 1)
	if err := e.Enqueue(ent(1, 10)); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	if err := e.Enqueue(ent(2, 20)); !errors.Is(err, core.ErrShardDown) {
		t.Fatalf("Enqueue during induced fault = %v, want ErrShardDown", err)
	}
	fs := e.FaultStats()
	if fs.LostEntries != 0 {
		t.Fatalf("LostEntries = %d, want 0 (the arrival was rejected, not lost)", fs.LostEntries)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
	if e.Recover() != 0 {
		t.Fatal("shard did not recover")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerProbationLifecycle drives a quarantined engine through the
// full breaker arc on an injected clock: Open with the configured
// backoff, half-open after Recover, closed after the probe budget of
// real operations — with the MTTR surfaced in FaultStats and as an
// OpRecover event.
func TestBreakerProbationLifecycle(t *testing.T) {
	e, arm := newPanicEnqEngine(t, 64, 1)
	clk := &clock.Atomic{}
	e.SetClock(clk)
	e.SetBreakerConfig(supervise.BreakerConfig{
		BaseBackoff: 100, MaxBackoff: 800, ProbeBudget: 3, JitterPct: -1,
	})

	clk.AdvanceTo(1000)
	arm.Store(true)
	if err := e.Enqueue(ent(1, 10)); !errors.Is(err, core.ErrShardDown) {
		t.Fatalf("faulted enqueue = %v, want ErrShardDown", err)
	}
	h := e.Health()
	if h.DownShards != 1 || h.Shards[0].Phase != backend.BreakerOpen {
		t.Fatalf("post-trip health = %+v, want one Open shard", h)
	}
	if at := h.Shards[0].RetryAt; at != 1100 {
		t.Fatalf("RetryAt = %v, want 1100 (trip + base backoff)", at)
	}

	// Before the backoff expires, operations must NOT rebuild the shard.
	if err := e.Enqueue(ent(2, 20)); !errors.Is(err, core.ErrShardDown) {
		t.Fatalf("pre-backoff enqueue = %v, want ErrShardDown", err)
	}
	if e.FaultStats().DownShards != 1 {
		t.Fatal("shard rebuilt before its breaker backoff expired")
	}

	// At the reopen instant the next operation probes and rebuilds; the
	// shard rejoins half-open.
	clk.AdvanceTo(1100)
	if err := e.Enqueue(ent(3, 30)); err != nil {
		t.Fatalf("post-backoff enqueue = %v, want nil (shard rebuilt half-open)", err)
	}
	fs := e.FaultStats()
	if fs.DownShards != 0 || fs.Rebuilds != 1 {
		t.Fatalf("post-rebuild stats = %+v, want 0 down / 1 rebuild", fs)
	}
	// The rebuilding enqueue itself consumed one probe. Two more close it.
	clk.AdvanceTo(1500)
	for i := uint32(4); i <= 5; i++ {
		if err := e.Enqueue(ent(i, uint64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	fs = e.FaultStats()
	if fs.HalfOpenShards != 0 || fs.Recoveries != 1 {
		t.Fatalf("post-probation stats = %+v, want closed with 1 recovery", fs)
	}
	if fs.MTTRTotal != 500 || fs.MTTRMax != 500 {
		t.Fatalf("MTTR = %v/%v, want 500 (close at 1500 − trip at 1000)", fs.MTTRTotal, fs.MTTRMax)
	}
	// MTTR is computable from the event log alone.
	recov, total, max := MTTR(e.FaultEvents())
	if recov != 1 || total != 500 || max != 500 {
		t.Fatalf("MTTR from events = %d/%v/%v, want 1/500/500", recov, total, max)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
