// The per-shard MPSC operation ring backing the flat-combining ingress
// layer (combiner.go). Producers that lose the shard lock publish their
// operation as a fixed-size record; whichever thread next holds the lock
// executes every published record inside its own critical section, so one
// lock acquisition pays for many operations.
//
// The ring is a turn-sequenced circular buffer (the classic bounded MPMC
// slot discipline, specialized to many producers and one lock-holding
// consumer). Ticket t lives in slot t % ringSlots and walks through four
// states, encoded in the slot's turn word:
//
//	4t   — free: the slot is claimable by the producer drawing ticket t.
//	4t+1 — published: request fields are filled; release-ordered store.
//	4t+2 — taken: a combiner won the CAS from 4t+1 and is executing it,
//	       OR the producer won the same CAS to cancel (shard went down
//	       before any combiner claimed the record). The CAS makes the
//	       two outcomes mutually exclusive.
//	4t+3 — done: result fields are filled; the producer reads them and
//	       frees the slot by storing 4(t+ringSlots), which is state
//	       "free" for ticket t+ringSlots — the next wrap.
//
// Only the shard-lock holder advances head, so head needs no atomics; it
// is a plain word guarded by the shard mutex. tail is claimed by CAS.
// Field writes are ordered by the turn word's atomic store/load pairs
// (Go atomics are sequentially consistent, which supplies the
// release/acquire edges the protocol needs; DESIGN.md §9 spells the
// argument out).
package shard

import (
	"sync/atomic"

	"pieo/internal/core"
)

// ringSlots is the per-shard ring capacity. 64 records absorbs a deep
// burst of blocked producers (far more than plausible producer
// parallelism) while keeping the ring one 8 KiB page per shard; a full
// ring simply falls back to lock acquisition, so the size is a
// throughput knob, not a correctness bound.
const (
	ringSlots = 64
	ringMask  = ringSlots - 1
)

// Ring operation codes.
const (
	opEnq uint32 = iota + 1 // EnqueueSeq(ent, seq)
	opDqf                   // DequeueFlow(ent.ID)
	opUpd                   // UpdateRankSeq(ent.ID, ent.Rank, ent.SendTime, seq)
)

// Ring result codes.
const (
	resOK    uint32 = iota + 1 // operation succeeded (out holds DequeueFlow's entry)
	resDup                     // enqueue hit ErrDuplicate
	resMiss                    // point op found no element (or lost it to a quarantine)
	resRetry                   // shard quarantined before execution: re-route via the slow path
)

// ringRecord is one published operation. It is padded to two cache lines
// so neighboring producers spinning on adjacent records never share a
// line with each other's result writes.
type ringRecord struct {
	turn atomic.Uint64
	op   uint32
	res  uint32
	ent  core.Entry // request: entry / (id, rank, send) / id
	seq  uint64     // global FIFO sequence, stamped at publish time
	out  core.Entry // result of a DequeueFlow record
	_    [56]byte
}

// opRing is one shard's ingress ring. tail and head sit on their own
// cache lines: every publishing producer CASes tail, while head is
// written only under the shard lock.
type opRing struct {
	tail  atomic.Uint64
	_     [56]byte
	head  uint64 // first possibly-unconsumed ticket; guarded by shard.mu
	_     [56]byte
	slots [ringSlots]ringRecord
}

func newOpRing() *opRing {
	r := &opRing{}
	for i := range r.slots {
		r.slots[i].turn.Store(uint64(4 * i))
	}
	return r
}

// claim draws the next ticket and returns its record, or ok=false when
// the ring is full (the slot for the next ticket has not been freed yet).
// The winner owns the record's request fields until it publishes.
func (r *opRing) claim() (t uint64, rec *ringRecord, ok bool) {
	for {
		t = r.tail.Load()
		rec = &r.slots[t&ringMask]
		if rec.turn.Load() != 4*t {
			return 0, nil, false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			return t, rec, true
		}
	}
}

// ringBatchMax is the largest ticket block claimN hands out — the unit
// EnqueueBatch amortizes one tail CAS over. A quarter of the ring keeps
// a single batch from starving direct producers of slots while still
// cutting the contended-CAS count 16x on the batch ingress path.
const ringBatchMax = 16

// claimN draws n consecutive tickets [t, t+n) with ONE tail CAS and
// returns the first ticket, or ok=false when any slot in the block is
// not yet free. The claim is sound because slot states only move
// forward and only their ticket owner can advance them: a slot observed
// free for ticket t+i stays free until the producer that CLAIMS ticket
// t+i publishes into it, and tickets are only handed out by the tail
// CAS — so winning the CAS for [t, t+n) retroactively validates every
// slot check. (A slot freed for a LATER wrap, turn > 4*(t+i), fails the
// equality check and aborts the claim; that requires tail to have moved
// past t anyway, which also fails the CAS.) The conservative all-free
// precheck means a ring with a straggling consumer degrades to
// claimN(1)=claim, never to a partial block.
func (r *opRing) claimN(n int) (t uint64, ok bool) {
	if n > ringBatchMax {
		n = ringBatchMax
	}
	for {
		t = r.tail.Load()
		for i := 0; i < n; i++ {
			if r.slots[(t+uint64(i))&ringMask].turn.Load() != 4*(t+uint64(i)) {
				return 0, false
			}
		}
		if r.tail.CompareAndSwap(t, t+uint64(n)) {
			return t, true
		}
	}
}

// publish fills the request fields and flips the record to published.
// Must be called exactly once by the claim winner.
func (rec *ringRecord) publish(t uint64, op uint32, ent core.Entry, seq uint64) {
	rec.op = op
	rec.ent = ent
	rec.seq = seq
	rec.turn.Store(4*t + 1)
}

// free releases the slot for the next wrap after the producer has read
// the result (or after a successful cancellation).
func (rec *ringRecord) free(t uint64) {
	rec.turn.Store(4 * (t + ringSlots))
}
