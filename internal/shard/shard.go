// Package shard implements a sharded concurrent PIEO engine: K
// independently-locked PIEO sublist instances with flows hash-partitioned
// across them, and dequeue implemented as a tournament over per-shard
// (MinRank, MinSendTime) summaries.
//
// This is the software analogue of the paper's §4.3 scaling story lifted
// one level up: where the hardware instantiates "multiple physical PIEOs"
// and partitions flows across them, this engine instantiates multiple
// physical core.Lists, and the tournament plays the role the
// Ordered-Sublist-Array plays inside one list — a small summary layer
// (smallest rank, smallest send_time per partition) that locates the
// winning partition without touching the others. Eiffel (PAPERS.md) wins
// the same way in software with bucketed parallel queues.
//
// Concurrency model: any number of producers may Enqueue concurrently
// with each other and with consumers; producers touching different shards
// never contend, which is the point — SyncList serializes every producer
// on one mutex. Semantics:
//
//   - Quiescent (single-threaded) operation is EXACT: every operation
//     returns precisely what one core.List of the same capacity would,
//     including cross-shard FIFO tie-breaking via a global enqueue
//     sequence stamped into each element (core.EnqueueSeq). The
//     differential tests in internal/core hold the engine to this
//     bit-for-bit against the flat reference model for K=1 and K=8.
//   - Under concurrency, each Dequeue returns an element that was its
//     shard's smallest-ranked eligible element at extraction time, but a
//     racing Enqueue may land a smaller-ranked eligible element on
//     another shard after the tournament has passed it — the same
//     bounded inexactness any partitioned scheduler (including the
//     paper's multi-PIEO hardware, which partitions flows statically)
//     accepts in exchange for parallelism. See DESIGN.md ("Backend
//     interface & sharded engine") for the exactness contract.
//
// Per-shard sublist geometry is sized to the expected per-shard
// occupancy (⌈√(n/K)⌉ instead of ⌈√n⌉), so sharding shortens both the
// pointer-array scans and the sublist shifts in addition to splitting the
// lock.
//
// Fault isolation: a panic inside one shard's list (induced by the fault
// hook, or genuine corruption) quarantines THAT shard instead of taking
// the engine down. The quarantined shard salvages a snapshot of its
// entries, traffic rehashes around it (enqueues probe the next healthy
// shard; the tournament prunes it via its emptied summary), and a
// rebuild gated by a per-shard circuit breaker (clock-driven exponential
// backoff with deterministic jitter) replays the salvage into a fresh
// list, after which the shard serves a half-open probation before full
// re-admission. See quarantine.go for the state machine and DESIGN.md
// §8/§12 for the failure model and supervision layer.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/supervise"
)

// DefaultShards is the shard count the backend registry uses.
const DefaultShards = 8

// maxShards bounds K so the tournament's stack-local bounds snapshot is
// a fixed-size array (no per-dequeue allocation). Shard counts anywhere
// near it are counterproductive anyway: the tournament scans all K
// summaries, so K should stay within a small multiple of the CPU count.
const maxShards = 64

// dequeueRetries bounds how many times a Dequeue/DequeueRange retries
// after losing an extraction race to a concurrent consumer. Retrying
// forever risks livelock; a handful of attempts covers realistic consumer
// counts, and a false "empty" under heavy contention is permitted by the
// concurrent contract (the caller polls again).
const dequeueRetries = 4

// emptyRank is the minRank summary value of an empty shard; it doubles as
// the emptiness flag, so the tournament prunes empty shards and losing
// shards with a single atomic load. A real element with rank 2^64-1 is
// published clamped to emptyRank-1 so it can never masquerade as
// emptiness; the clamp only lowers the pruning bound, which costs at
// worst a wasted peek, never a wrong skip.
const emptyRank = ^uint64(0)

// cacheLinePad separates hot words from their neighbors. 64 bytes of
// padding on each side of a word guarantees the word shares no cache
// line with the fields around it REGARDLESS of the struct's base
// alignment (two bytes can only share a 64-byte line when they are less
// than 64 bytes apart), which is the property layout_test.go pins.
type cacheLinePad [64]byte

// summaryRank is one shard's minRank summary, padded to a full cache
// line. The summaries used to be packed 8-per-line for consumer read
// density, which is the right call at GOMAXPROCS=1 — but under real
// core parallelism every producer publishes its shard's summary on
// every mutation, and packed summaries make those stores contend for
// one line's ownership across K cores (write-side false sharing, the
// classic RFO ping-pong). Padded, each producer owns its line; the
// dequeue tournament's scan now touches K lines instead of ⌈K/8⌉, but
// it walks them with a fixed 64-byte stride the hardware prefetcher
// recognizes, and at saturation it was going to miss on every freshly
// written summary either way.
type summaryRank struct {
	v atomic.Uint64
	_ [56]byte
}

// shard is one partition: a private seq-aware ordered list behind the
// backend.ShardBackend contract, its lock, and the lock-free summary the
// tournament reads. Cross-shard FIFO sequencing lives inside the list
// elements themselves (ShardBackend.EnqueueSeq), so the shard keeps no
// per-element state of its own — profiling showed a sideband id→seq map
// costing more than the sublist datapath it annotated.
//
// Field layout is deliberate (layout_test.go pins it): the lock-holder's
// working set (mu, list, residency counters, quarantine bookkeeping)
// stays together, while the two words remote cores read or poll WITHOUT
// the lock — minSend (tournament pruning) and downFlag (routing checks)
// — each sit on their own cache line at the end of the struct. Before
// the padding, every resident++ under the lock invalidated the line a
// remote tournament was reading its minSend bound from.
type shard struct {
	mu   sync.Mutex
	list backend.ShardBackend

	// eng points back at the owning engine (for the next-eligible index;
	// see Engine.nextElig); ring is this shard's flat-combining ingress
	// ring (ring.go, combiner.go).
	eng  *Engine
	ring *opRing

	// idx is list's timing-wheel eligibility view when the backend
	// provides one (backend.EligIndexed), nil otherwise; exact caches
	// idx.EligIndexActive() so the summary helpers branch on a plain
	// bool under mu. While exact, minSend is maintained EXACTLY after
	// every mutation — the wheel makes MinSendTime O(1) — instead of as
	// a stale-low bound, so raiseNextElig republishes exact engine-wide
	// next-eligible times. Both fields are rebound whenever a list is
	// installed (bindList) and demoted by Engine.DisableEligIndex.
	idx   backend.EligIndexed
	exact bool

	// Summaries published under mu after every mutation, read without the
	// lock by the tournament's pruning pass. A reader may observe a
	// summary one mutation stale; the extraction path re-validates under
	// the lock, so staleness costs a wasted peek, never a wrong result.
	//
	// minRank points into the engine's per-line summary array (see
	// Engine.minRanks); it is exact after every mutation (an O(1) read off
	// the list's pointer array).
	minRank *atomic.Uint64 // emptyRank when empty

	// Exact residency bookkeeping, guarded by mu. resident mirrors
	// list.Len() but survives a panic that leaves the list unreadable, so
	// quarantine can compute how many entries the salvage failed to
	// recover (declared loss) without trusting the broken structure.
	// offHomeResident counts the subset living away from their hash-home
	// shard, so the engine's offHome counter stays exact even when a
	// quarantine loses entries of unknown identity.
	resident        int
	offHomeResident int

	// Quarantine state (see quarantine.go). down is the authoritative
	// flag, guarded by mu; downFlag (below, on its own line) mirrors it
	// for lock-free routing checks. While down, list is nil and the
	// salvage fields hold the entries recovered from the failed
	// incarnation, awaiting rebuild.
	down         bool
	rebuilding   atomic.Bool // CAS-guard: one rebuild attempt at a time
	salvaged     []core.Entry
	salvagedSeqs []uint64
	salvageIDs   map[uint32]struct{}
	statsBase    core.Stats // datapath counters of previous incarnations
	attempts     int        // failed rebuild attempts since quarantine

	// brk is this shard's circuit breaker: it schedules rebuild probes
	// (exponential backoff + deterministic jitter on the engine's
	// supervision clock) and runs the half-open probation that gates full
	// re-admission. Transitions happen under mu; the phase and next-probe
	// instant are additionally published through atomics for the engine's
	// lock-free pre-checks (see supervise.Breaker).
	brk *supervise.Breaker

	// minSend is a LOWER BOUND on the true minimum send time: inserts
	// tighten it in O(1), removals leave it stale-low (recomputing it
	// exactly would cost an O(√n) sublist-metadata scan per mutation,
	// which profiling showed dominating the mutation paths). A low bound
	// is sound for pruning — a shard is skipped only when even its most
	// optimistic element is ineligible — and a failed peek repairs the
	// bound exactly when the staleness wasted work. On a wheel-indexed
	// backend (see idx/exact) the O(√n) recompute collapses to an O(1)
	// wheel read and minSend is kept exact after every mutation, removals
	// included.
	//
	// minSend and downFlag are read lock-free by REMOTE cores (tournament
	// pruning, routing checks) while the lock-holder mutates the fields
	// above; the pads keep those remote reads off the lock-holder's
	// lines.
	_       cacheLinePad
	minSend atomic.Uint64 // lower bound; clock.Never when empty
	_       cacheLinePad
	downFlag atomic.Bool
	_        cacheLinePad
}

// noteMutation refreshes the summary after inserting (or re-ranking) an
// element with the given send time, in O(1). Callers must hold mu. On a
// wheel-indexed list the minSend summary is refreshed exactly — an O(1)
// wheel read — so a re-rank that RAISED a send time tightens it too;
// otherwise send only lowers the stale-safe bound.
func (s *shard) noteMutation(send clock.Time) {
	if r, ok := s.list.MinRank(); ok {
		if r == emptyRank {
			r--
		}
		s.minRank.Store(r)
	}
	if s.exact {
		s.refreshMinSend()
	} else if uint64(send) < s.minSend.Load() {
		s.minSend.Store(uint64(send))
	}
	// The engine-wide index tightens AFTER the shard summary: raiseNextElig
	// recomputes from the summaries, so by the time its version guard can
	// miss this insert, the summary it scans already reflects it.
	s.eng.tightenNextElig(send)
}

// noteRemoval refreshes the summary after removing an element, in O(1);
// minSend stays a stale lower bound unless the shard emptied — except on
// a wheel-indexed list, where an O(1) wheel read keeps it exact so
// raiseNextElig recomputes an exact engine bound instead of a stale-low
// one. Callers must hold mu.
func (s *shard) noteRemoval() {
	if r, ok := s.list.MinRank(); ok {
		if r == emptyRank {
			r--
		}
		s.minRank.Store(r)
		if s.exact {
			s.refreshMinSend()
		}
	} else {
		s.minRank.Store(emptyRank)
		s.minSend.Store(uint64(clock.Never))
	}
}

// refreshMinSend recomputes the exact minimum send time, tightening the
// lower bound after a failed peek showed it stale. Callers must hold mu.
func (s *shard) refreshMinSend() {
	if t, ok := s.list.MinSendTime(); ok {
		s.minSend.Store(uint64(t))
	} else {
		s.minSend.Store(uint64(clock.Never))
	}
}

// bindList installs l as the shard's backend and rebinds the
// eligibility-index capability views (idx, exact). Engine construction
// and quarantine rebuilds are the only callers; both own the shard
// exclusively (pre-publication, or under mu while down). A latched
// Engine.DisableEligIndex propagates here so a rebuilt incarnation
// comes up with its wheel dropped too.
func (s *shard) bindList(l backend.ShardBackend) {
	s.list = l
	s.idx = nil
	s.exact = false
	if l == nil {
		return
	}
	if ix, ok := l.(backend.EligIndexed); ok {
		if s.eng.eligOff.Load() {
			ix.DisableEligIndex()
		}
		s.idx = ix
		s.exact = ix.EligIndexActive()
	}
}

// Engine is the sharded concurrent PIEO. Create one with New; the zero
// value is not usable.
//
// Field layout is deliberate (layout_test.go pins it). The struct is
// grouped by traffic pattern and the three words every core hammers —
// size (every enqueue/dequeue), seq (every enqueue), and the
// nextElig/eligVer pair (nextElig is LOADED on every dequeue by every
// consumer; eligVer is ADDED on every insert by every producer) — each
// sit on a private cache line. Before the padding, eligVer's
// once-per-insert Add invalidated the line holding nextElig under every
// consumer, turning the O(1) empty-dequeue fast path into a guaranteed
// coherence miss; the pair is the textbook read-hot/write-hot split.
type Engine struct {
	// Read-mostly topology and configuration: written at construction
	// (or via rare Set* calls before traffic), read on every operation.
	shards []*shard

	// minRanks holds every shard's minRank summary, one padded cache
	// line per shard (see summaryRank for the packed-vs-padded
	// trade-off). The tournament walks them with a fixed 64-byte stride;
	// producers each own their line, so publishing a summary never
	// steals a line another producer is about to write.
	minRanks []summaryRank

	capacity int

	// newList constructs one shard's list — the bound ShardFactory the
	// engine was built on. Construction calls it K times; a quarantine
	// rebuild calls it again for the fresh incarnation, so a rebuilt
	// shard always comes back on the same backend with the same geometry.
	newList     func() backend.ShardBackend
	backendName string

	clk  clock.Source               // supervision clock; nil → op-derived (SetClock)
	bcfg supervise.BreakerConfig    // effective breaker config (SetBreakerConfig)
	hook func(shard int, op string) // fault-injection hook; set before traffic

	// Read-hot flags: loaded on every operation's routing decision,
	// written rarely (mode switches, quarantine transitions). They share
	// a line happily — what matters is keeping them OFF the write-hot
	// lines below, so a mode check never misses because a counter moved.
	combineOn  atomic.Bool // gates ring publishes (combiner.go)
	forceRing  atomic.Bool // pins tests to the ring path
	eligOff    atomic.Bool // latched DisableEligIndex (survives rebuilds)
	downShards atomic.Int32
	probation  atomic.Int32
	offHome    atomic.Int64

	// Write-hot singletons, one line each: every core mutates these, so
	// sharing a line with ANY read path is a coherence miss per op.
	_    cacheLinePad
	size atomic.Int64 // global occupancy, enforces the shared capacity
	_    cacheLinePad
	seq  atomic.Uint64 // global enqueue sequence for FIFO tie-breaks
	_    cacheLinePad

	// nextElig is the engine-wide next-eligible index: a lower bound on
	// the smallest send_time across every element queued in a healthy
	// shard, so a dequeue short-circuits in O(1) — one atomic load — when
	// even the most optimistic element is still in the future, instead of
	// running a K-way tournament to count an empty miss. Inserts tighten
	// it via tightenNextElig (inside noteMutation, after the shard's own
	// summary); an unranged tournament that comes up empty raises it via
	// raiseNextElig. eligVer counts inserts and guards the raise against
	// racing inserts; see DESIGN.md §9 for the ordering argument.
	//
	// The pair is deliberately SPLIT across cache lines: nextElig is
	// read-hot (every consumer, every dequeue) while eligVer is
	// write-hot (every producer, every insert), and the insert-side Add
	// cannot be elided — the version bump is what makes a racing raise
	// abort — so the only fix for the producer-invalidates-consumer
	// pattern is distance.
	nextElig atomic.Uint64
	_        cacheLinePad
	eligVer  atomic.Uint64
	_        cacheLinePad

	// Write-warm counters: bumped on specific outcomes (empty misses,
	// ring publishes, drains, degraded ops), never read on the hot path.
	// They share lines with each other, not with anything read-hot.
	emptyDequeues atomic.Uint64 // tournaments that found nothing eligible
	updateRanks   atomic.Uint64 // successful UpdateRanks (see Stats)
	cRingOps      atomic.Uint64 // combining counters (CombiningStats)
	cCombinedOps  atomic.Uint64
	cDrains       atomic.Uint64

	// Resilience state (see quarantine.go). ops counts degraded-mode
	// operations and doubles as the default supervision clock when no
	// clk is injected; downShards (above, with the read-hot flags) gates
	// every degraded-mode slow path, so the healthy hot path pays one
	// atomic load. probation counts shards currently serving their
	// half-open probe budget. offHome counts entries living away from
	// their hash-home shard (placed there while the home was
	// quarantined); point lookups widen to a full scan only while it is
	// non-zero.
	ops     atomic.Uint64
	fstats  faultCounters
	eventMu sync.Mutex
	events  []FaultEvent
}

// New creates a sharded engine with total capacity n spread over k
// shards (k <= 0 selects DefaultShards; k above maxShards is clamped)
// on the paper-exact core backend — the historical default, bit-for-bit.
func New(n, k int) *Engine {
	e, err := NewNamed(n, k, "core")
	if err != nil {
		panic(fmt.Sprintf("shard: %v", err))
	}
	return e
}

// NewNamed is New over the shard backend registered under backendName
// (backend.RegisterShard) — the backend selector engine construction
// threads up through the facade and the tools.
func NewNamed(n, k int, backendName string) (*Engine, error) {
	factory, err := backend.ShardFactoryFor(backendName)
	if err != nil {
		return nil, err
	}
	e := NewOn(n, k, factory)
	e.backendName = backendName
	return e, nil
}

// NewOn creates a sharded engine whose shards are built by factory. Each
// shard is provisioned with the full capacity n — hash partitioning
// gives no worst-case balance guarantee — while the expected per-shard
// occupancy ⌈n/k⌉ lets the backend size its hot structures (flow-map
// tables, sublist geometry, arenas) for steady state: a table sized for
// the full shared capacity stays ~1/K occupied, and its cold probes
// measurably dominated the enqueue/dequeue profile. Hash imbalance past
// the hint just grows that shard's structures once.
func NewOn(n, k int, factory backend.ShardFactory) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("shard: capacity must be positive, got %d", n))
	}
	if k <= 0 {
		k = DefaultShards
	}
	if k > maxShards {
		k = maxShards
	}
	cfg := backend.ShardConfig{Capacity: n, ExpectedOccupancy: (n + k - 1) / k}
	e := &Engine{
		shards:      make([]*shard, k),
		minRanks:    make([]summaryRank, k),
		capacity:    n,
		newList:     func() backend.ShardBackend { return factory(cfg) },
		backendName: "custom",
	}
	e.bcfg = supervise.NewBreaker(0, supervise.BreakerConfig{}).Config()
	for i := range e.shards {
		e.shards[i] = &shard{
			eng:     e,
			ring:    newOpRing(),
			minRank: &e.minRanks[i].v,
			brk:     supervise.NewBreaker(i, supervise.BreakerConfig{}),
		}
		e.shards[i].bindList(e.newList())
		e.shards[i].minRank.Store(emptyRank)
		e.shards[i].minSend.Store(uint64(clock.Never))
	}
	e.nextElig.Store(uint64(clock.Never))
	e.combineOn.Store(true)
	return e
}

// NumShards returns K.
func (e *Engine) NumShards() int { return len(e.shards) }

// BackendName reports which registered shard backend the engine runs on
// ("custom" for an unregistered factory passed to NewOn).
func (e *Engine) BackendName() string { return e.backendName }

// Capacity returns the shared capacity.
func (e *Engine) Capacity() int { return e.capacity }

// homeIdx maps a flow ID to its home shard index (Fibonacci hashing —
// IDs are often sequential, so identity modulo would put adjacent flows
// on adjacent shards, which is fine, but a mixing hash also breaks up
// strided ID patterns).
func (e *Engine) homeIdx(id uint32) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(e.shards)))
}

// degraded reports whether any slow-path bookkeeping is live: a
// quarantined shard, or residue entries placed away from their home.
// One or two atomic loads — the healthy hot path's only resilience tax.
func (e *Engine) degraded() bool {
	return e.downShards.Load() != 0 || e.offHome.Load() != 0
}

// tightenNextElig lowers the next-eligible bound to send. It runs at
// every point an element actually lands in (or re-ranks within) a shard
// list — never at ring-publish time, because a published-but-undrained
// record is invisible to the summaries a concurrent raise recomputes
// from, and a bound tightened for it could be raised right back over it.
// (A record's producer has not returned yet, so missing it is a legal
// linearization; the drain tightens before the record is marked done.)
// The version bump lands between the summary store and the CAS so a
// racing raiseNextElig either sees the bump and aborts or sees the
// already-updated summary; the CAS retry loop additionally repairs any
// raise that slips in mid-flight.
func (e *Engine) tightenNextElig(send clock.Time) {
	e.eligVer.Add(1)
	for {
		cur := e.nextElig.Load()
		if uint64(send) >= cur {
			return
		}
		if e.nextElig.CompareAndSwap(cur, uint64(send)) {
			return
		}
	}
}

// raiseNextElig recomputes the next-eligible bound from the healthy
// shards' minSend summaries after an unranged tournament found nothing
// eligible. Quarantined shards are skipped — their salvaged elements are
// not dequeueable until rebuild, which re-tightens the bound when it
// installs the fresh list. The raise is abandoned if any insert ran
// concurrently (version guard) and applied with a single CAS, so it can
// never erase a tighten it did not observe.
func (e *Engine) raiseNextElig() {
	v := e.eligVer.Load()
	cur := e.nextElig.Load()
	m := uint64(clock.Never)
	for _, sd := range e.shards {
		if sd.downFlag.Load() {
			continue
		}
		if s := sd.minSend.Load(); s < m {
			m = s
		}
	}
	if m <= cur {
		return
	}
	if e.eligVer.Load() != v {
		return
	}
	e.nextElig.CompareAndSwap(cur, m)
}

// Enqueue implements backend.Backend. Producers mapped to different
// shards proceed in parallel; the only cross-shard coordination is two
// atomic counters (capacity reservation and the FIFO sequence). When the
// home shard is quarantined the entry probes forward to the next healthy
// shard (degraded-mode rehashing); core.ErrShardDown is returned only
// when every shard is down.
func (e *Engine) Enqueue(ent core.Entry) error {
	e.opTick()
	// Reserve a capacity slot first so the full/duplicate error
	// precedence matches a single list (full wins). Optimistic fetch-add
	// instead of a CAS loop: a racing overshoot is rolled straight back,
	// so concurrent Len readers may observe a transient over-count (the
	// concurrent contract makes Len advisory anyway) but occupancy never
	// actually exceeds capacity.
	if e.size.Add(1) > int64(e.capacity) {
		e.size.Add(-1)
		return core.ErrFull
	}
	home := e.homeIdx(ent.ID)
	if e.degraded() && e.residentAway(ent.ID, home) {
		// The ID already lives off its home (or in a salvage): the home
		// shard's own duplicate check cannot see it, so reject here.
		e.size.Add(-1)
		return core.ErrDuplicate
	}
	// Draw the FIFO sequence outside the shard lock; a failed enqueue
	// burns it harmlessly (ties compare relative order, not density). The
	// sequence is stamped into the ring record at publish time, so global
	// FIFO among equal ranks survives the combiner executing records in an
	// order different from the one producers drew their sequences in.
	seq := e.seq.Add(1)
	if e.combineOn.Load() && !e.degraded() {
		sd := e.shards[home]
		if !sd.downFlag.Load() {
			if res, _, handled := e.combine(home, sd, opEnq, ent, seq); handled {
				switch res {
				case resOK:
					return nil
				case resDup:
					e.size.Add(-1)
					return core.ErrDuplicate
				}
				// resRetry: the home shard quarantined mid-flight (the
				// reservation is still held); fall through to the
				// degraded-mode probe loop.
			}
		}
	}
	k := len(e.shards)
	for probe := 0; probe < k; probe++ {
		i := (home + probe) % k
		sd := e.shards[i]
		if sd.downFlag.Load() {
			if e.salvageHas(sd, ent.ID) {
				e.size.Add(-1)
				return core.ErrDuplicate
			}
			continue
		}
		sd.mu.Lock()
		if sd.down {
			has := sd.salvageIDs != nil && mapHas(sd.salvageIDs, ent.ID)
			sd.mu.Unlock()
			if has {
				e.size.Add(-1)
				return core.ErrDuplicate
			}
			continue
		}
		var (
			started bool
			lerr    error
		)
		perr := e.protect(i, sd, OpEnqueue, func(l backend.ShardBackend) {
			// Pre-count the residency so a mid-insert panic charges the
			// ambiguous element to this shard; quarantine reconciles the
			// count against the salvage.
			started = true
			sd.resident++
			lerr = l.EnqueueSeq(ent, seq)
			if lerr != nil {
				sd.resident--
			}
		})
		if perr != nil {
			// The shard quarantined mid-operation. Whether the insert
			// landed is decided by the salvage: present and the list call
			// ran → treat as queued (the rebuild will restore it); present
			// without the list call running → it was already resident
			// (duplicate); absent → not inserted, probe onward.
			inSalvage := sd.salvageIDs != nil && mapHas(sd.salvageIDs, ent.ID)
			sd.mu.Unlock()
			if inSalvage {
				if started {
					// Queued: quarantine's salvage scan already folded this
					// entry into the residency and off-home accounting, and
					// the capacity slot reserved above stays held for it.
					return nil
				}
				e.size.Add(-1)
				return core.ErrDuplicate
			}
			if started {
				// The insert never landed but was pre-counted as resident,
				// so quarantine charged its reservation as a lost entry.
				// The arrival's fate belongs to this probe loop, not the
				// loss ledger: unwind the phantom loss (size, counter, and
				// event record) and probe onward.
				e.undoPhantomLoss(i)
			}
			continue
		}
		if lerr != nil {
			// Each shard list is provisioned with the full shared capacity
			// and a slot was reserved above, so the shard cannot be full:
			// the only reachable failure is ErrDuplicate.
			sd.mu.Unlock()
			e.size.Add(-1)
			return lerr
		}
		sd.noteMutation(ent.SendTime)
		if i != home {
			sd.offHomeResident++
			e.offHome.Add(1)
		}
		sd.mu.Unlock()
		return nil
	}
	// Every shard is quarantined: the engine cannot accept traffic.
	e.size.Add(-1)
	return core.ErrShardDown
}

// candidate is a tournament entrant: the element a shard would yield,
// plus its global FIFO sequence.
type candidate struct {
	sd    *shard
	idx   int
	entry core.Entry
	seq   uint64
}

// tournament finds the winning shard for a filtered extraction: it prunes
// on the lock-free summaries, peeks the surviving shards in ascending
// summary-rank order under their own locks (never holding two at once),
// and keeps the best (rank, seq). Visiting likely winners first means the
// scan usually stops after one peek: once the best element's rank is at
// or below every remaining shard's minimum-rank bound, no remaining shard
// can beat it (equal bounds are still peeked — the FIFO sequence breaks
// the tie). When ranged is true the peek is the logical-PIEO [lo, hi]
// filter (§4.3).
//
// When budget > 0 and the first successful peek is already unbeatable —
// its rank strictly below every remaining shard's bound, so no tie-break
// can arise — elements are extracted under the peek's own lock and taken
// reports how many: the first extraction spares the caller a second
// lock/scan visit to the same shard (the common case: one shard holds the
// clear minimum), and the drain continues up to budget elements for as
// long as the shard's next eligible head still beats every remaining
// bound outright (strictly below — an equal bound could FIFO-tie, which
// only a fresh tournament can adjudicate). Extracted elements are
// appended to *sink when sink is non-nil; the first is also returned in
// c.entry, so single-element callers pass sink=nil and stay
// allocation-free. budget == 0 is a pure peek.
func (e *Engine) tournament(now clock.Time, lo, hi uint32, ranged bool, budget int, sink *[]core.Entry) (c candidate, found bool, taken int) {
	// Selection, not sort: the K summary bounds are snapshotted ONCE with
	// a single linear pass of atomic loads (fixed 64-byte stride over the
	// padded summaryRank array — a pattern the hardware prefetcher
	// streams), and each round then scans the LOCAL copy for the smallest
	// unvisited bound (tracking the runner-up as the drain limit),
	// overwriting a visited slot with emptyRank so it drops out of later
	// rounds. The tournament almost always ends after one probe (the next
	// bound can't beat it), so a full ordering would be wasted work — and
	// re-loading the atomics every round, as earlier revisions did, chains
	// each round's comparisons behind K fresh cache-coherent loads whose
	// lines producers are concurrently invalidating. The snapshot breaks
	// that dependency: rounds after the first race only against registers.
	// Staleness is already in the contract (a summary may be one mutation
	// stale; the probe re-validates under the shard lock), and quiescently
	// nothing mutates between rounds, so the snapshot is bit-exact there.
	// Probed shards are cleared the same way (bounds[mi] = emptyRank
	// before the probe), which also covers the down-between-read-and-lock
	// path. The minSend bound is read lazily
	// when a shard wins a round, so a dequeue loads K summary words once
	// plus one or two minSend words instead of 2K words per round
	// scattered across K shard structs.
	var (
		best   candidate
		bounds [maxShards]uint64
	)
	k := len(e.shards)
	ranks := e.minRanks
	for i := 0; i < k; i++ {
		bounds[i] = ranks[i].v.Load()
	}
	for {
		mi := -1          // shard index of the smallest remaining bound
		var mr uint64     // its bound
		next := emptyRank // second-smallest remaining bound: the drain limit
		for i := 0; i < k; i++ {
			r := bounds[i]
			if r == emptyRank {
				continue
			}
			if mi < 0 || r < mr {
				if mi >= 0 && mr < next {
					next = mr
				}
				mi, mr = i, r
			} else if r < next {
				next = r
			}
		}
		if mi < 0 {
			break
		}
		bounds[mi] = emptyRank
		// Ascending bounds: the first bound the best already beats ends
		// the tournament.
		if found && mr > best.entry.Rank {
			break
		}
		sd := e.shards[mi]
		// The lazily-read eligibility bound: a shard whose most optimistic
		// send time is still in the future cannot hold an eligible element
		// (minSend is a lower bound), so it is dropped without locking.
		if clock.Time(sd.minSend.Load()) > now {
			continue
		}
		var (
			ent  core.Entry
			sq   uint64
			elig bool
		)
		sd.mu.Lock()
		if sd.down {
			// Quarantined between the summary read and the lock.
			sd.mu.Unlock()
			continue
		}
		if sd.ring.head != sd.ring.tail.Load() {
			// The consumer already paid for this lock: drain pending
			// producer records into the same critical section (flat
			// combining's consumer half).
			e.drainRingLocked(mi, sd, noTicket)
			if sd.down {
				sd.mu.Unlock()
				continue
			}
		}
		op := OpPeek
		if budget > 0 {
			op = OpDequeue
		}
		perr := e.protect(mi, sd, op, func(l backend.ShardBackend) {
			// The drain limit: extraction is fused into the probe when the
			// head is unbeatable — rank strictly below every remaining
			// shard's bound, so no FIFO tie can arise — and the probe
			// degrades to a pure peek (limit 0: no rank is below 0) when a
			// prior shard already produced a candidate.
			limit := uint64(0)
			if budget > 0 && !found {
				limit = next
			}
			var took bool
			if ranged {
				ent, sq, elig, took = l.DequeueRangeBelowSeq(now, lo, hi, limit)
			} else {
				ent, sq, elig, took = l.DequeueBelowSeq(now, limit)
			}
			if !elig {
				// The summary's lower bound let an ineligible shard
				// through; tighten it so the next tournament prunes it.
				sd.refreshMinSend()
				return
			}
			if !took {
				return
			}
			taken = 1
			c = candidate{sd: sd, idx: mi, entry: ent, seq: sq}
			e.noteExtracted(mi, sd, ent)
			if sink != nil {
				*sink = append(*sink, ent)
			}
			// Keep draining only while the shard's next eligible head
			// would win a rerun tournament outright (strictly below every
			// remaining bound — an equal bound could FIFO-tie, which only
			// a fresh tournament can adjudicate).
			for taken != budget {
				var (
					nent core.Entry
					ntk  bool
				)
				if ranged {
					nent, _, _, ntk = l.DequeueRangeBelowSeq(now, lo, hi, next)
				} else {
					nent, _, _, ntk = l.DequeueBelowSeq(now, next)
				}
				if !ntk {
					break
				}
				taken++
				e.noteExtracted(mi, sd, nent)
				if sink != nil {
					*sink = append(*sink, nent)
				}
			}
			sd.noteRemoval()
		})
		sd.mu.Unlock()
		if taken > 0 {
			// Entries already extracted stay extracted even if the shard
			// quarantined mid-drain: the salvage no longer holds them.
			e.size.Add(int64(-taken))
			return c, true, taken
		}
		if perr != nil || !elig {
			continue
		}
		if !found || ent.Rank < best.entry.Rank ||
			(ent.Rank == best.entry.Rank && sq < best.seq) {
			best = candidate{sd: sd, idx: mi, entry: ent, seq: sq}
			found = true
		}
	}
	return best, found, 0
}

// noteExtracted updates residency and off-home bookkeeping for an
// element extracted from shard i. Callers hold the shard lock.
func (e *Engine) noteExtracted(i int, sd *shard, ent core.Entry) {
	sd.resident--
	if e.homeIdx(ent.ID) != i {
		sd.offHomeResident--
		e.offHome.Add(-1)
	}
}

// extract removes the winning shard's current smallest-ranked eligible
// element via the list's own filtered dequeue datapath. Quiescently that
// is exactly the tournament candidate; under concurrency the shard's head
// may have changed since the peek, in which case the freshly-observed
// head is extracted instead (still eligible, still that shard's minimum —
// the bounded inexactness the package contract allows). It reports
// ok=false when concurrent consumers drained the shard's eligible
// elements entirely.
func (e *Engine) extract(idx int, sd *shard, now clock.Time, lo, hi uint32, ranged bool) (core.Entry, bool) {
	sd.mu.Lock()
	if sd.down {
		sd.mu.Unlock()
		return core.Entry{}, false
	}
	var (
		ent core.Entry
		ok  bool
	)
	perr := e.protect(idx, sd, OpDequeue, func(l backend.ShardBackend) {
		if ranged {
			ent, ok = l.DequeueRange(now, lo, hi)
		} else {
			ent, ok = l.Dequeue(now)
		}
		if !ok {
			sd.refreshMinSend()
			return
		}
		sd.resident--
		if e.homeIdx(ent.ID) != idx {
			sd.offHomeResident--
			e.offHome.Add(-1)
		}
		sd.noteRemoval()
	})
	sd.mu.Unlock()
	// ok=true means the list call itself completed: the element is out even
	// if a later step in the closure quarantined the shard (the salvage no
	// longer holds it), so it is delivered rather than dropped.
	_ = perr
	if !ok {
		return core.Entry{}, false
	}
	e.size.Add(-1)
	return ent, true
}

// Dequeue implements backend.Backend: extract the smallest-ranked
// eligible element across all shards (exact when quiescent; see the
// package comment for the concurrent contract).
func (e *Engine) Dequeue(now clock.Time) (core.Entry, bool) {
	e.opTick()
	if clock.Time(e.nextElig.Load()) > now {
		// Even the most optimistic queued element is in the future: the
		// O(1) empty fast path (no tournament, no locks).
		e.emptyDequeues.Add(1)
		return core.Entry{}, false
	}
	for attempt := 0; attempt < dequeueRetries; attempt++ {
		c, found, taken := e.tournament(now, 0, 0, false, 1, nil)
		if !found {
			// An exhaustive miss: no healthy shard holds an eligible
			// element, so the next-eligible bound can rise to what the
			// summaries now say. (A retry-exhausted miss below cannot
			// raise — eligible elements exist, consumers keep racing us
			// to them.)
			e.raiseNextElig()
			e.emptyDequeues.Add(1)
			return core.Entry{}, false
		}
		if taken > 0 {
			return c.entry, true
		}
		if ent, ok := e.extract(c.idx, c.sd, now, 0, 0, false); ok {
			return ent, true
		}
	}
	e.emptyDequeues.Add(1)
	return core.Entry{}, false
}

// DequeueRange implements backend.Backend: the logical-PIEO extraction
// (§4.3) run as a tournament of per-shard PeekRange results.
func (e *Engine) DequeueRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	e.opTick()
	if clock.Time(e.nextElig.Load()) > now {
		// No element anywhere is eligible, in range or out of it.
		e.emptyDequeues.Add(1)
		return core.Entry{}, false
	}
	for attempt := 0; attempt < dequeueRetries; attempt++ {
		c, found, taken := e.tournament(now, lo, hi, true, 1, nil)
		if !found {
			// A ranged miss says nothing about elements outside [lo, hi],
			// but raiseNextElig recomputes from the send-time summaries
			// alone, so it is sound here too: if an eligible element
			// exists on any healthy shard, that shard's minSend bound
			// keeps the raise at or below now.
			e.raiseNextElig()
			e.emptyDequeues.Add(1)
			return core.Entry{}, false
		}
		if taken > 0 {
			return c.entry, true
		}
		if ent, ok := e.extract(c.idx, c.sd, now, lo, hi, true); ok {
			return ent, true
		}
	}
	e.emptyDequeues.Add(1)
	return core.Entry{}, false
}

// DequeueFlow implements backend.Backend: a point extraction that touches
// exactly one shard when the engine is healthy. In degraded mode the
// element may live away from its home (rehashed around a quarantine) or
// sit in a salvage; the lookup probes the home first and widens to the
// remaining shards only then. A salvaged element reports not-found — it
// is unavailable until its shard rebuilds — matching the contract that
// DequeueFlow on a missing ID is a no-op.
func (e *Engine) DequeueFlow(id uint32) (core.Entry, bool) {
	e.opTick()
	home := e.homeIdx(id)
	if e.combineOn.Load() && !e.degraded() {
		// Healthy engine: the element can only live on its home shard (an
		// off-home resident would have made degraded() true before this
		// call began, and one placed concurrently linearizes after a
		// miss), so the point lookup routes through the combining layer.
		sd := e.shards[home]
		if !sd.downFlag.Load() {
			if res, out, handled := e.combine(home, sd, opDqf, core.Entry{ID: id}, 0); handled {
				switch res {
				case resOK:
					e.size.Add(-1)
					return out, true
				case resMiss:
					return core.Entry{}, false
				}
				// resRetry: the home shard quarantined mid-flight; re-probe
				// through the degraded slow path below.
			}
		}
	}
	wide := e.degraded()
	k := len(e.shards)
	for probe := 0; probe < k; probe++ {
		i := (home + probe) % k
		sd := e.shards[i]
		sd.mu.Lock()
		if sd.down {
			has := sd.salvageIDs != nil && mapHas(sd.salvageIDs, id)
			sd.mu.Unlock()
			if has {
				return core.Entry{}, false
			}
			if !wide {
				return core.Entry{}, false
			}
			continue
		}
		var (
			ent core.Entry
			ok  bool
		)
		e.protect(i, sd, OpDequeueFlow, func(l backend.ShardBackend) {
			ent, ok = l.DequeueFlow(id)
			if !ok {
				return
			}
			sd.resident--
			if i != home {
				sd.offHomeResident--
				e.offHome.Add(-1)
			}
			sd.noteRemoval()
		})
		sd.mu.Unlock()
		if ok {
			e.size.Add(-1)
			return ent, true
		}
		if !wide {
			return core.Entry{}, false
		}
	}
	return core.Entry{}, false
}

// PeekMax implements backend.Evictor: the cross-shard push-out victim is
// the largest-(rank, seq) element over the healthy shards — a max
// tournament over per-shard MaxRankEntrySeq, the mirror image of the
// dequeue tournament's min over MinRank. Among equal maximal ranks the
// globally newest arrival (largest stamped sequence) wins, exactly as
// inside one list. Salvaged entries are invisible here: they cannot be
// extracted until their shard rebuilds (DequeueFlow's contract), and a
// victim PeekMax names must be one EvictMax can actually shed.
func (e *Engine) PeekMax() (core.Entry, bool) {
	ent, _, ok := e.peekMax()
	return ent, ok
}

func (e *Engine) peekMax() (best core.Entry, bestSeq uint64, ok bool) {
	for _, sd := range e.shards {
		if sd.downFlag.Load() {
			continue
		}
		sd.mu.Lock()
		if sd.down {
			sd.mu.Unlock()
			continue
		}
		ent, seq, has := sd.list.MaxRankEntrySeq()
		sd.mu.Unlock()
		if !has {
			continue
		}
		if !ok || ent.Rank > best.Rank || (ent.Rank == best.Rank && seq > bestSeq) {
			best, bestSeq, ok = ent, seq, true
		}
	}
	return best, bestSeq, ok
}

// EvictMax implements backend.Evictor: the victim identified by PeekMax
// is extracted through the engine's point-lookup datapath (DequeueFlow),
// which keeps the residency and conservation ledgers exact. Best-effort
// under concurrency: a victim extracted by a racing consumer between the
// tournament and the point lookup simply reports a miss.
func (e *Engine) EvictMax() (core.Entry, bool) {
	victim, _, ok := e.peekMax()
	if !ok {
		return core.Entry{}, false
	}
	return e.DequeueFlow(victim.ID)
}

// Peek implements backend.Peeker via the tournament, without extraction.
func (e *Engine) Peek(now clock.Time) (core.Entry, bool) {
	if clock.Time(e.nextElig.Load()) > now {
		return core.Entry{}, false
	}
	c, found, _ := e.tournament(now, 0, 0, false, 0, nil)
	return c.entry, found
}

// PeekRange implements backend.Peeker.
func (e *Engine) PeekRange(now clock.Time, lo, hi uint32) (core.Entry, bool) {
	if clock.Time(e.nextElig.Load()) > now {
		return core.Entry{}, false
	}
	c, found, _ := e.tournament(now, lo, hi, true, 0, nil)
	return c.entry, found
}

// UpdateRank implements backend.RankUpdater: the dequeue(f)+enqueue(f)
// fusion stays atomic because the element's shard holds both halves under
// one lock. Re-ranking resets the element's FIFO position from the global
// sequence, exactly as it does inside core.List. In degraded mode the
// lookup widens past the home shard like DequeueFlow; a salvaged element
// reports false (unavailable until rebuild).
func (e *Engine) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	e.opTick()
	seq := e.seq.Add(1)
	home := e.homeIdx(id)
	if e.combineOn.Load() && !e.degraded() {
		// Same healthy-engine home-only argument as DequeueFlow.
		sd := e.shards[home]
		if !sd.downFlag.Load() {
			ent := core.Entry{ID: id, Rank: rank, SendTime: sendTime}
			if res, _, handled := e.combine(home, sd, opUpd, ent, seq); handled {
				switch res {
				case resOK:
					e.updateRanks.Add(1)
					return true
				case resMiss:
					return false
				}
				// resRetry: quarantined before execution; the probe loop
				// below adjudicates against the salvage.
			}
		}
	}
	wide := e.degraded()
	k := len(e.shards)
	for probe := 0; probe < k; probe++ {
		i := (home + probe) % k
		sd := e.shards[i]
		sd.mu.Lock()
		if sd.down {
			sd.mu.Unlock()
			if !wide {
				return false
			}
			continue
		}
		var ok bool
		perr := e.protect(i, sd, OpUpdateRank, func(l backend.ShardBackend) {
			ok = l.UpdateRankSeq(id, rank, sendTime, seq)
			if ok {
				sd.noteMutation(sendTime)
			}
		})
		sd.mu.Unlock()
		if perr != nil {
			// Mid-op quarantine: the element (in whichever rank state the
			// panic left it) is in the salvage and unavailable.
			return false
		}
		if ok {
			e.updateRanks.Add(1)
			return true
		}
		if !wide {
			return false
		}
	}
	return false
}

// Len implements backend.Backend from the global occupancy counter.
func (e *Engine) Len() int { return int(e.size.Load()) }

// Contains implements backend.Backend. Salvaged elements count as present
// — they are queued, just temporarily unreachable — so idempotent
// re-enqueue checks in the scheduler layers do not double-admit a flow
// whose shard is mid-rebuild. In degraded mode the lookup widens past the
// home shard.
func (e *Engine) Contains(id uint32) bool {
	home := e.homeIdx(id)
	wide := e.degraded()
	k := len(e.shards)
	for probe := 0; probe < k; probe++ {
		i := (home + probe) % k
		sd := e.shards[i]
		sd.mu.Lock()
		var has bool
		if sd.down {
			has = sd.salvageIDs != nil && mapHas(sd.salvageIDs, id)
		} else {
			has = sd.list.Contains(id)
		}
		down := sd.down
		sd.mu.Unlock()
		if has {
			return true
		}
		if !wide && !down {
			return false
		}
	}
	return false
}

// MinSendTime implements backend.Backend exactly, computing each shard's
// minimum under its lock (the atomic minSend is only a pruning bound: a
// shard whose bound already loses to the best exact value found so far
// cannot improve it and is skipped without locking). Consumers use this
// for wake hints on the idle path, so it trades per-call cost for keeping
// the mutation paths O(1).
func (e *Engine) MinSendTime() (clock.Time, bool) {
	minT := clock.Never
	found := false
	for _, sd := range e.shards {
		if !sd.downFlag.Load() {
			// Quarantined shards publish an empty summary, so the pruning
			// checks below would skip their salvaged entries — which still
			// need to contribute wake hints. Only healthy shards may prune.
			if sd.minRank.Load() == emptyRank {
				continue
			}
			if found && clock.Time(sd.minSend.Load()) >= minT {
				continue
			}
		}
		sd.mu.Lock()
		if sd.down {
			for i := range sd.salvaged {
				if t := sd.salvaged[i].SendTime; !found || t < minT {
					minT = t
					found = true
				}
			}
			sd.mu.Unlock()
			continue
		}
		t, ok := sd.list.MinSendTime()
		if ok {
			// Tighten the pruning bound while the exact value is in hand.
			sd.minSend.Store(uint64(t))
		}
		sd.mu.Unlock()
		if ok && (!found || t < minT) {
			minT = t
			found = true
		}
	}
	return minT, found
}

// NextWakeAfter implements backend.EligIndexed across the shard set: the
// exact smallest send_time strictly greater than now among elements
// queued in healthy shards, clock.Never when there is none. Down shards
// are skipped — their salvaged entries are not dequeueable until
// rebuild, so waking for them would find nothing; the rebuild
// re-tightens nextElig when it installs the fresh list. Like MinSendTime
// this is an idle-path query: each shard answers under its lock (an O(1)
// wheel read when indexed, a scan otherwise), with the lock-free minSend
// bound pruning shards that cannot beat the best value in hand (every
// resident send_time is >= the bound, so the wake is too).
func (e *Engine) NextWakeAfter(now clock.Time) clock.Time {
	best := clock.Never
	for _, sd := range e.shards {
		if !sd.downFlag.Load() {
			if sd.minRank.Load() == emptyRank {
				continue
			}
			if clock.Time(sd.minSend.Load()) >= best {
				continue
			}
		}
		sd.mu.Lock()
		if sd.down {
			sd.mu.Unlock()
			continue
		}
		var t clock.Time
		if sd.idx != nil {
			t = sd.idx.NextWakeAfter(now)
		} else {
			t = clock.Never
			for _, ent := range sd.list.Snapshot() {
				if ent.SendTime > now && ent.SendTime < t {
					t = ent.SendTime
				}
			}
		}
		sd.mu.Unlock()
		if t < best {
			best = t
		}
	}
	return best
}

// EligIndexActive implements backend.EligIndexed: true when every
// healthy shard's list carries a live wheel index. NextWakeAfter answers
// exactly either way (the unindexed path scans); the flag tells
// consumers — and the pacing experiments' baseline switch — which regime
// produced the answer.
func (e *Engine) EligIndexActive() bool {
	if e.eligOff.Load() {
		return false
	}
	for _, sd := range e.shards {
		sd.mu.Lock()
		ok := sd.down || sd.exact
		sd.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// DisableEligIndex implements backend.EligIndexed: drops every shard's
// wheel index and latches the engine so quarantine rebuilds construct
// fresh incarnations without one. The per-shard minSend summaries revert
// to the stale-low-bound regime — the recorded non-wheel baseline the
// pacing experiments measure against.
func (e *Engine) DisableEligIndex() {
	e.eligOff.Store(true)
	for _, sd := range e.shards {
		sd.mu.Lock()
		if sd.idx != nil {
			sd.idx.DisableEligIndex()
			sd.exact = false
		}
		sd.mu.Unlock()
	}
}

// Snapshot implements backend.Backend: a global (rank, FIFO) merge of the
// per-shard snapshots, exact when quiescent. Shards are locked one at a
// time, so a concurrent mutation may straddle the cut.
func (e *Engine) Snapshot() []core.Entry {
	type seqEntry struct {
		entry core.Entry
		seq   uint64
	}
	all := make([]seqEntry, 0, e.Len())
	for _, sd := range e.shards {
		sd.mu.Lock()
		var (
			ents []core.Entry
			seqs []uint64
		)
		if sd.down {
			// Salvaged entries are still queued; they appear in the global
			// view even while their shard rebuilds.
			ents, seqs = sd.salvaged, sd.salvagedSeqs
		} else {
			ents, seqs = sd.list.SnapshotWithSeq()
		}
		for i := range ents {
			all = append(all, seqEntry{entry: ents[i], seq: seqs[i]})
		}
		sd.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].entry.Rank != all[j].entry.Rank {
			return all[i].entry.Rank < all[j].entry.Rank
		}
		return all[i].seq < all[j].seq
	})
	out := make([]core.Entry, len(all))
	for i, se := range all {
		out[i] = se.entry
	}
	return out
}

// Stats implements backend.Backend by summing the per-shard list
// counters (every engine operation maps 1:1 onto exactly one successful
// list operation), so the hot paths carry no engine-level stat atomics.
// UpdateRank runs as a list-level flow-dequeue + re-enqueue pair, so its
// count is subtracted back out of both; EmptyDequeues is engine-level
// (a tournament that finds nothing touches no list datapath).
func (e *Engine) Stats() backend.Stats {
	hw := e.HardwareStats()
	ur := e.updateRanks.Load()
	return backend.Stats{
		Enqueues:      hw.Enqueues - ur,
		Dequeues:      hw.Dequeues,
		EmptyDequeues: e.emptyDequeues.Load(),
		FlowDequeues:  hw.FlowDequeues - ur,
		RangeDequeues: hw.RangeDequeues,
		RingOps:       e.cRingOps.Load(),
		CombinedOps:   e.cCombinedOps.Load(),
	}
}

// HardwareStats implements backend.HardwareModeled by summing the §5
// datapath counters across shards — the cost of K physical PIEOs, which
// is exactly how the paper accounts multi-PIEO scaling. Counters survive
// quarantine: each shard carries the totals of its dead incarnations in
// statsBase (rebuild replay work is subtracted back out so the sum stays
// the engine's real operation history).
func (e *Engine) HardwareStats() core.Stats {
	var total core.Stats
	for _, sd := range e.shards {
		sd.mu.Lock()
		addStats(&total, sd.statsBase)
		if !sd.down {
			addStats(&total, sd.list.Stats())
		}
		sd.mu.Unlock()
	}
	return total
}

// addStats accumulates s into dst field-by-field (core.Stats has no Add of
// its own — the hardware counters are normally read, not merged).
func addStats(dst *core.Stats, s core.Stats) {
	dst.Enqueues += s.Enqueues
	dst.Dequeues += s.Dequeues
	dst.EmptyDequeues += s.EmptyDequeues
	dst.FlowDequeues += s.FlowDequeues
	dst.RangeDequeues += s.RangeDequeues
	dst.Cycles += s.Cycles
	dst.SublistReads += s.SublistReads
	dst.SublistWrites += s.SublistWrites
	dst.PtrCompares += s.PtrCompares
	dst.ElemCompares += s.ElemCompares
}

// subStats subtracts s from dst; uint64 wraparound on intermediate values
// is fine because sums re-add the same quantities.
func subStats(dst *core.Stats, s core.Stats) {
	dst.Enqueues -= s.Enqueues
	dst.Dequeues -= s.Dequeues
	dst.EmptyDequeues -= s.EmptyDequeues
	dst.FlowDequeues -= s.FlowDequeues
	dst.RangeDequeues -= s.RangeDequeues
	dst.Cycles -= s.Cycles
	dst.SublistReads -= s.SublistReads
	dst.SublistWrites -= s.SublistWrites
	dst.PtrCompares -= s.PtrCompares
	dst.ElemCompares -= s.ElemCompares
}

// CheckInvariants validates the engine-level structure on top of each
// shard's own §5 invariants: ID uniqueness across the engine, residency
// and off-home accounting, summary coherence, quarantine bookkeeping, and
// the global size counter. Entries may legitimately live away from their
// hash-home shard after degraded-mode rehashing; each such entry must be
// reflected in the offHome counter. Tests call it after mutations; it
// must be called quiescently.
func (e *Engine) CheckInvariants() error {
	total := 0
	offHome := 0
	down := 0
	halfOpen := 0
	healthyMinSend := clock.Never
	seen := make(map[uint32]int, e.Len())
	for i, sd := range e.shards {
		sd.mu.Lock()
		err := func() error {
			if err := checkRingLocked(sd.ring, i); err != nil {
				return err
			}
			// Breaker-phase coherence: down ⟺ Open; an up shard is Closed
			// or serving its half-open probation.
			switch phase := sd.brk.Phase(); {
			case sd.down && phase != backend.BreakerOpen:
				return fmt.Errorf("shard %d: down but breaker phase %v", i, phase)
			case !sd.down && phase == backend.BreakerOpen:
				return fmt.Errorf("shard %d: up but breaker phase %v", i, phase)
			case phase == backend.BreakerHalfOpen:
				halfOpen++
			}
			checkIDs := func(ents []core.Entry) error {
				off := 0
				for _, ent := range ents {
					if prev, dup := seen[ent.ID]; dup {
						return fmt.Errorf("id %d present on shards %d and %d", ent.ID, prev, i)
					}
					seen[ent.ID] = i
					if e.homeIdx(ent.ID) != i {
						off++
					}
				}
				if off != sd.offHomeResident {
					return fmt.Errorf("shard %d: %d entries live off-home, shard counter says %d", i, off, sd.offHomeResident)
				}
				offHome += off
				return nil
			}
			if sd.down {
				down++
				if sd.list != nil {
					return fmt.Errorf("shard %d: down but a list is still installed", i)
				}
				if len(sd.salvaged) != len(sd.salvagedSeqs) || len(sd.salvaged) != len(sd.salvageIDs) {
					return fmt.Errorf("shard %d: salvage bookkeeping inconsistent (%d entries, %d seqs, %d ids)",
						i, len(sd.salvaged), len(sd.salvagedSeqs), len(sd.salvageIDs))
				}
				if sd.minRank.Load() != emptyRank {
					return fmt.Errorf("shard %d: down but summary minRank %d", i, sd.minRank.Load())
				}
				if sd.resident != len(sd.salvaged) {
					return fmt.Errorf("shard %d: resident count %d, salvage holds %d", i, sd.resident, len(sd.salvaged))
				}
				if err := checkIDs(sd.salvaged); err != nil {
					return err
				}
				total += len(sd.salvaged)
				return nil
			}
			if err := sd.list.CheckInvariants(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if err := checkIDs(sd.list.Snapshot()); err != nil {
				return err
			}
			if sd.resident != sd.list.Len() {
				return fmt.Errorf("shard %d: resident count %d, list holds %d", i, sd.resident, sd.list.Len())
			}
			if r, ok := sd.list.MinRank(); ok {
				if r == emptyRank {
					r--
				}
				if sd.minRank.Load() != r {
					return fmt.Errorf("shard %d: summary minRank %d, list %d", i, sd.minRank.Load(), r)
				}
			} else if sd.minRank.Load() != emptyRank {
				return fmt.Errorf("shard %d: empty but summary minRank %d", i, sd.minRank.Load())
			}
			if t, ok := sd.list.MinSendTime(); ok {
				if bound := clock.Time(sd.minSend.Load()); bound > t {
					return fmt.Errorf("shard %d: minSend bound %v above true min %v", i, bound, t)
				} else if sd.exact && bound != t {
					// Wheel-indexed shards refresh exactly on every
					// mutation; a stale-low bound here means a mutation
					// path skipped noteMutation/noteRemoval.
					return fmt.Errorf("shard %d: wheel-indexed minSend %v, true min %v", i, bound, t)
				}
				if t < healthyMinSend {
					healthyMinSend = t
				}
			} else if clock.Time(sd.minSend.Load()) != clock.Never {
				return fmt.Errorf("shard %d: empty but minSend bound %v", i, clock.Time(sd.minSend.Load()))
			}
			total += sd.list.Len()
			return nil
		}()
		sd.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if total != e.Len() {
		return fmt.Errorf("shards hold %d elements, size counter says %d", total, e.Len())
	}
	if offHome != int(e.offHome.Load()) {
		return fmt.Errorf("%d entries live off their home shard, offHome counter says %d", offHome, e.offHome.Load())
	}
	if down != int(e.downShards.Load()) {
		return fmt.Errorf("%d shards are down, downShards counter says %d", down, e.downShards.Load())
	}
	if halfOpen != int(e.probation.Load()) {
		return fmt.Errorf("%d shards are half-open, probation counter says %d", halfOpen, e.probation.Load())
	}
	// The next-eligible index must stay a lower bound on the send times
	// actually dequeueable — elements in healthy shards. (Salvaged entries
	// may legitimately sit below a raised bound: they are unreachable
	// until rebuild, which re-tightens.)
	if ne := clock.Time(e.nextElig.Load()); ne > healthyMinSend {
		return fmt.Errorf("next-eligible bound %v above true healthy min send %v", ne, healthyMinSend)
	}
	return nil
}

var _ backend.Evictor = (*Engine)(nil)

func init() {
	backend.Register("sharded", func(n int) backend.Backend { return New(n, DefaultShards) })
	// Every registered shard backend is also reachable as a top-level
	// backend "sharded+<name>" — the engine inherits each backend's
	// speedup for free, and the registry-wide suites (invariants,
	// differential) cover every combination automatically. "sharded" is
	// the core combination, so it is not repeated as "sharded+core".
	for _, name := range backend.ShardNames() {
		if name == "core" {
			continue
		}
		name := name
		backend.Register("sharded+"+name, func(n int) backend.Backend {
			e, err := NewNamed(n, DefaultShards, name)
			if err != nil {
				panic(err)
			}
			return e
		})
	}
}
