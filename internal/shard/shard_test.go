package shard_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/shard"
)

// The engine must offer every optional capability the interface layer
// defines: consumers picked "sharded" from the registry precisely to keep
// peeking, re-ranking, invariant checks, and hardware accounting.
var (
	_ backend.Backend          = (*shard.Engine)(nil)
	_ backend.Peeker           = (*shard.Engine)(nil)
	_ backend.RankUpdater      = (*shard.Engine)(nil)
	_ backend.EligIndexed      = (*shard.Engine)(nil)
	_ backend.InvariantChecker = (*shard.Engine)(nil)
	_ backend.HardwareModeled  = (*shard.Engine)(nil)
)

func TestDefaultShardCount(t *testing.T) {
	if got := shard.New(64, 0).NumShards(); got != shard.DefaultShards {
		t.Fatalf("New(64, 0) = %d shards, want %d", got, shard.DefaultShards)
	}
	if got := shard.New(64, 3).NumShards(); got != 3 {
		t.Fatalf("New(64, 3) = %d shards, want 3", got)
	}
}

func TestCrossShardRankOrder(t *testing.T) {
	// Sequential IDs scatter across shards under the mixing hash; draining
	// must still produce global rank order with FIFO ties.
	e := shard.New(128, 8)
	for id := uint32(0); id < 100; id++ {
		rank := uint64(id % 10) // ten FIFO classes spread over all shards
		if err := e.Enqueue(core.Entry{ID: id, Rank: rank, SendTime: clock.Always}); err != nil {
			t.Fatal(err)
		}
	}
	var prev core.Entry
	lastIDByRank := map[uint64]uint32{}
	for i := 0; i < 100; i++ {
		ent, ok := e.Dequeue(0)
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		if i > 0 && ent.Rank < prev.Rank {
			t.Fatalf("rank order violated: %v after %v", ent, prev)
		}
		if last, seen := lastIDByRank[ent.Rank]; seen && ent.ID < last {
			t.Fatalf("FIFO violated within rank %d: id %d after %d", ent.Rank, ent.ID, last)
		}
		lastIDByRank[ent.Rank] = ent.ID
		prev = ent
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after drain", e.Len())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEligibilityAcrossShards(t *testing.T) {
	// The lowest-ranked element is ineligible; the tournament must skip
	// its shard and serve the best eligible one, then pick up the blocked
	// element once time passes.
	e := shard.New(16, 4)
	must(t, e.Enqueue(core.Entry{ID: 1, Rank: 1, SendTime: 100}))
	must(t, e.Enqueue(core.Entry{ID: 2, Rank: 5, SendTime: clock.Always}))
	if ent, ok := e.Dequeue(0); !ok || ent.ID != 2 {
		t.Fatalf("Dequeue(0) = %v,%v, want id 2", ent, ok)
	}
	if _, ok := e.Dequeue(99); ok {
		t.Fatal("id 1 served before its send time")
	}
	if ent, ok := e.Dequeue(100); !ok || ent.ID != 1 {
		t.Fatalf("Dequeue(100) = %v,%v, want id 1", ent, ok)
	}
}

func TestSharedCapacityAndDuplicates(t *testing.T) {
	// Capacity is a property of the engine, not of any one shard: n
	// elements must fill it regardless of how the hash spreads them.
	const n = 10
	e := shard.New(n, 4)
	for id := uint32(0); id < n; id++ {
		must(t, e.Enqueue(core.Entry{ID: id, Rank: uint64(id), SendTime: clock.Always}))
	}
	if err := e.Enqueue(core.Entry{ID: 999, Rank: 0, SendTime: clock.Always}); err != core.ErrFull {
		t.Fatalf("over-capacity enqueue = %v, want ErrFull", err)
	}
	// Full wins over duplicate, exactly like a single list.
	if err := e.Enqueue(core.Entry{ID: 3, Rank: 0, SendTime: clock.Always}); err != core.ErrFull {
		t.Fatalf("full+duplicate enqueue = %v, want ErrFull", err)
	}
	if _, ok := e.DequeueFlow(3); !ok {
		t.Fatal("DequeueFlow(3) failed")
	}
	if err := e.Enqueue(core.Entry{ID: 4, Rank: 0, SendTime: clock.Always}); err != core.ErrDuplicate {
		t.Fatalf("duplicate enqueue = %v, want ErrDuplicate", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeueRangeTouchesRightShards(t *testing.T) {
	e := shard.New(64, 8)
	for id := uint32(0); id < 32; id++ {
		must(t, e.Enqueue(core.Entry{ID: id, Rank: uint64(32 - id), SendTime: clock.Always}))
	}
	// Smallest rank within [0,7] is id 7 (rank 25).
	if ent, ok := e.DequeueRange(0, 0, 7); !ok || ent.ID != 7 {
		t.Fatalf("DequeueRange = %v,%v, want id 7", ent, ok)
	}
	if e.Contains(7) {
		t.Fatal("id 7 still present after range dequeue")
	}
	if e.Len() != 31 {
		t.Fatalf("Len = %d, want 31", e.Len())
	}
}

func TestUpdateRankMovesElement(t *testing.T) {
	e := shard.New(16, 4)
	must(t, e.Enqueue(core.Entry{ID: 1, Rank: 10, SendTime: clock.Always}))
	must(t, e.Enqueue(core.Entry{ID: 2, Rank: 20, SendTime: clock.Always}))
	if !e.UpdateRank(2, 5, clock.Always) {
		t.Fatal("UpdateRank(2) failed")
	}
	if e.UpdateRank(99, 1, clock.Always) {
		t.Fatal("UpdateRank on absent id succeeded")
	}
	if ent, ok := e.Dequeue(0); !ok || ent.ID != 2 || ent.Rank != 5 {
		t.Fatalf("Dequeue = %v,%v, want re-ranked id 2", ent, ok)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinSendTimeFromSummaries(t *testing.T) {
	e := shard.New(16, 4)
	if _, ok := e.MinSendTime(); ok {
		t.Fatal("MinSendTime on empty engine reported a value")
	}
	must(t, e.Enqueue(core.Entry{ID: 1, Rank: 1, SendTime: 500}))
	must(t, e.Enqueue(core.Entry{ID: 2, Rank: 2, SendTime: 200}))
	must(t, e.Enqueue(core.Entry{ID: 3, Rank: 3, SendTime: 900}))
	if ts, ok := e.MinSendTime(); !ok || ts != 200 {
		t.Fatalf("MinSendTime = %v,%v, want 200", ts, ok)
	}
	if _, ok := e.DequeueFlow(2); !ok {
		t.Fatal("DequeueFlow(2) failed")
	}
	if ts, ok := e.MinSendTime(); !ok || ts != 500 {
		t.Fatalf("MinSendTime after removal = %v,%v, want 500", ts, ok)
	}
}

// TestConcurrentProducersOneConsumer is the engine's reason to exist run
// under the race detector: parallel producers, one consumer, every
// element delivered exactly once and the structure intact afterwards.
func TestConcurrentProducersOneConsumer(t *testing.T) {
	const (
		producers   = 8
		perProducer = 500
		total       = producers * perProducer
	)
	e := shard.New(total, 8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := uint32(p*perProducer + i)
				if err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id % 97), SendTime: clock.Always}); err != nil {
					t.Errorf("Enqueue(%d) = %v", id, err)
					return
				}
			}
		}(p)
	}

	seen := make([]bool, total)
	var got int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < total {
			ent, ok := e.Dequeue(0)
			if !ok {
				continue
			}
			if seen[ent.ID] {
				t.Errorf("id %d delivered twice", ent.ID)
				return
			}
			seen[ent.ID] = true
			got++
		}
	}()
	wg.Wait()
	<-done

	if t.Failed() {
		return
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after full drain", e.Len())
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("id %d never delivered", id)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Enqueues != total || st.Dequeues != total {
		t.Fatalf("stats = %+v, want %d enqueues and dequeues", st, total)
	}
}

// TestConcurrentMixedOps drives every operation class at once; its only
// assertions are capacity safety and post-quiescence coherence — the
// real check is the race detector over this interleaving.
func TestConcurrentMixedOps(t *testing.T) {
	const capacity = 256
	e := shard.New(capacity, 8)
	var next atomic.Uint32
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := next.Add(1)
				err := e.Enqueue(core.Entry{ID: id, Rank: uint64(id % 31), SendTime: clock.Time(id % 4)})
				if err != nil && err != core.ErrFull {
					t.Errorf("Enqueue(%d) = %v", id, err)
					return
				}
				if id%7 == 0 {
					e.UpdateRank(id, uint64(id%13), clock.Always)
				}
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				e.Dequeue(clock.Time(i % 8))
				if i%3 == 0 {
					e.DequeueRange(clock.Never-1, uint32(i%64), uint32(i%64)+32)
				}
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := e.Len(); n > capacity {
				t.Errorf("Len = %d exceeds capacity %d", n, capacity)
				return
			}
			e.MinSendTime()
			e.Peek(clock.Never - 1)
			e.Snapshot()
			e.Stats()
		}
	}()

	wg.Wait()
	// Producers and consumers are done; halt the reader.
	close(stop)
	<-readerDone
	if t.Failed() {
		return
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCapacityNeverExceeded hammers a small shared capacity
// from many producers: successes plus current occupancy must track
// exactly, and occupancy may never overshoot.
func TestConcurrentCapacityNeverExceeded(t *testing.T) {
	const capacity = 32
	e := shard.New(capacity, 8)
	var successes atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint32(p*1000 + i)
				switch err := e.Enqueue(core.Entry{ID: id, Rank: uint64(i), SendTime: clock.Always}); err {
				case nil:
					successes.Add(1)
				case core.ErrFull:
				default:
					t.Errorf("Enqueue(%d) = %v", id, err)
					return
				}
				if i%4 == 0 {
					if _, ok := e.Dequeue(0); ok {
						successes.Add(-1)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := e.Len(); int64(got) != successes.Load() {
		t.Fatalf("Len = %d, net successful enqueues = %d", got, successes.Load())
	}
	if e.Len() > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", e.Len(), capacity)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
