// Package stats implements the measurement instruments used by the
// evaluation harness: byte-rate meters and interval series (Fig 11),
// Jain's fairness index over per-flow throughputs (Fig 12), basic summary
// statistics, and the scheduling-order deviation metric used to quantify
// the §2.3 claim that PIFO-based WF²Q+ emulation can deviate O(N) from the
// ideal order.
package stats

import (
	"fmt"
	"math"
	"sort"

	"pieo/internal/clock"
)

// RateMeter accumulates transmitted bytes and converts them to a rate over
// the observed window. Time is in simulated nanoseconds, so rates come out
// in Gbps via bits/ns.
type RateMeter struct {
	start   clock.Time
	end     clock.Time
	bytes   uint64
	packets uint64
	started bool
}

// NewRateMeter returns a meter whose window opens at start.
func NewRateMeter(start clock.Time) *RateMeter {
	return &RateMeter{start: start, end: start, started: true}
}

// Record notes that size bytes finished transmitting at instant t.
func (m *RateMeter) Record(t clock.Time, size uint32) {
	if !m.started {
		m.start = t
		m.started = true
	}
	if t > m.end {
		m.end = t
	}
	m.bytes += uint64(size)
	m.packets++
}

// Bytes returns the total bytes recorded.
func (m *RateMeter) Bytes() uint64 { return m.bytes }

// Packets returns the total packets recorded.
func (m *RateMeter) Packets() uint64 { return m.packets }

// CloseAt extends the measurement window to t, so idle tail time counts
// against the rate.
func (m *RateMeter) CloseAt(t clock.Time) {
	if t > m.end {
		m.end = t
	}
}

// Gbps returns the average rate over the window in gigabits per second,
// assuming the clock ticks in nanoseconds.
func (m *RateMeter) Gbps() float64 {
	dur := float64(m.end - m.start)
	if dur <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / dur // bits per ns == Gbps
}

// IntervalSeries buckets transmitted bytes into fixed-width time intervals
// and reports a rate per interval — the time series behind Fig 11.
type IntervalSeries struct {
	Width   clock.Time
	buckets []uint64
}

// NewIntervalSeries creates a series with the given bucket width in ticks.
func NewIntervalSeries(width clock.Time) *IntervalSeries {
	if width == 0 {
		panic("stats: IntervalSeries width must be positive")
	}
	return &IntervalSeries{Width: width}
}

// Record adds size bytes at instant t.
func (s *IntervalSeries) Record(t clock.Time, size uint32) {
	idx := int(t / s.Width)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += uint64(size)
}

// Rates returns the per-interval rates in Gbps (ns ticks assumed).
func (s *IntervalSeries) Rates() []float64 {
	rates := make([]float64, len(s.buckets))
	for i, b := range s.buckets {
		rates[i] = float64(b) * 8 / float64(s.Width)
	}
	return rates
}

// JainIndex computes Jain's fairness index over the given allocations:
// (Σx)² / (n·Σx²). It is 1.0 for perfectly equal shares and approaches
// 1/n as one allocation dominates. Returns 0 for empty or all-zero input.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Stddev         float64
	P50, P95, P99  float64
}

// Summarize computes a Summary of xs. It returns the zero Summary for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Stddev: math.Sqrt(ss / float64(len(sorted))),
		P50:    pct(0.50),
		P95:    pct(0.95),
		P99:    pct(0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f stddev=%.3f",
		s.N, s.Min, s.Mean, s.P50, s.P95, s.P99, s.Max, s.Stddev)
}

// OrderDeviation quantifies how far a measured scheduling order strays
// from an ideal order. For each element it computes |position in got −
// position in want| and returns the maximum and mean displacement.
// Elements present in only one sequence are ignored. This is the metric
// behind the §2.3 claim that two-PIFO WF²Q+ emulation can deviate O(N).
func OrderDeviation(want, got []string) (maxDev int, meanDev float64) {
	wantPos := make(map[string]int, len(want))
	for i, id := range want {
		if _, dup := wantPos[id]; dup {
			panic(fmt.Sprintf("stats: duplicate id %q in ideal order", id))
		}
		wantPos[id] = i
	}
	n := 0
	total := 0
	for i, id := range got {
		w, ok := wantPos[id]
		if !ok {
			continue
		}
		d := i - w
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
		total += d
		n++
	}
	if n > 0 {
		meanDev = float64(total) / float64(n)
	}
	return maxDev, meanDev
}
